(* End-to-end integration tests: the full offline-online DBH pipeline on
   Euclidean and non-metric workloads, model calibration, and the Figure 5
   experiment runner. *)

module Rng = Dbh_util.Rng
module Space = Dbh_space.Space
module Minkowski = Dbh_metrics.Minkowski
module Builder = Dbh.Builder
module Index = Dbh.Index
module Hierarchical = Dbh.Hierarchical
module Ground_truth = Dbh_eval.Ground_truth
module Figure5 = Dbh_eval.Figure5
module Tradeoff = Dbh_eval.Tradeoff

let small_config =
  {
    Builder.default_config with
    num_pivots = 30;
    threshold_sample = 200;
    num_sample_queries = 100;
    num_fns = 200;
    db_sample = 250;
    k_max = 20;
    l_max = 300;
  }

let run_queries_single index queries =
  Array.map (fun q -> Index.search index q) queries

let mean_cost results =
  Dbh_util.Stats.mean
    (Array.map (fun r -> float_of_int (Index.total_cost r.Index.stats)) results)

let test_l2_calibration () =
  (* The statistical model's predicted accuracy must roughly match the
     realized accuracy when test queries are drawn like sample queries
     (fresh points whose NN structure resembles db-to-db NN). *)
  let rng = Rng.create 100 in
  (* One mixture split into database and held-out queries, so the sample
     queries drawn from the database are representative of the test
     queries — the assumption Sec. V-A spells out. *)
  let all, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:15 ~dim:6 1700 in
  let db = Array.sub all 0 1500 in
  let queries = Array.sub all 1500 200 in
  let truth = Ground_truth.compute ~space:Minkowski.l2_space ~db ~queries () in
  let prepared = Builder.prepare ~rng ~space:Minkowski.l2_space ~config:small_config db in
  List.iter
    (fun target ->
      match Builder.single ~rng ~prepared ~db ~target_accuracy:target ~config:small_config () with
      | None -> Alcotest.failf "target %.2f should be feasible" target
      | Some (index, choice) ->
          let results = run_queries_single index queries in
          let acc =
            Ground_truth.accuracy truth (Array.map (fun r -> r.Index.nn) results)
          in
          (* Queries from a fresh mixture draw have farther NNs than
             database resamples, so allow a generous band; the point is
             that predictions are informative, not vacuous. *)
          Alcotest.(check bool)
            (Printf.sprintf "measured %.3f vs predicted %.3f (target %.2f)" acc
               choice.Dbh.Params.predicted_accuracy target)
            true
            (acc >= target -. 0.25);
          (* And far cheaper than brute force. *)
          Alcotest.(check bool) "cheaper than brute force" true
            (mean_cost results < 0.8 *. float_of_int (Array.length db)))
    [ 0.8; 0.9 ]

let test_hierarchical_cheaper_than_single () =
  let rng = Rng.create 110 in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:15 ~dim:6 1500 in
  let queries =
    Array.init 150 (fun i -> Dbh_datasets.Vectors.perturb ~rng ~sigma:0.08 db.(i * 9))
  in
  let truth = Ground_truth.compute ~space:Minkowski.l2_space ~db ~queries () in
  let prepared = Builder.prepare ~rng ~space:Minkowski.l2_space ~config:small_config db in
  match Builder.single ~rng ~prepared ~db ~target_accuracy:0.9 ~config:small_config () with
  | None -> Alcotest.fail "0.9 should be feasible"
  | Some (index, _) ->
      let h = Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config:small_config () in
      let single_results = run_queries_single index queries in
      let hier_results = Array.map (fun q -> Hierarchical.search h q) queries in
      let single_acc = Ground_truth.accuracy truth (Array.map (fun r -> r.Index.nn) single_results) in
      let hier_acc = Ground_truth.accuracy truth (Array.map (fun r -> r.Index.nn) hier_results) in
      let single_cost = mean_cost single_results in
      let hier_cost = mean_cost hier_results in
      Alcotest.(check bool) "both accurate" true (single_acc > 0.8 && hier_acc > 0.8);
      (* Sec. V-A: the cascade should be cheaper (easy queries exit early). *)
      Alcotest.(check bool)
        (Printf.sprintf "hier %.0f <= single %.0f" hier_cost single_cost)
        true
        (hier_cost <= 1.1 *. single_cost)

let test_dbh_on_non_metric_dtw () =
  (* The headline claim: DBH indexes a non-metric space directly. *)
  let rng = Rng.create 120 in
  let db = Dbh_datasets.Pen_digits.generate_set ~rng 400 in
  let queries = Dbh_datasets.Pen_digits.generate_set ~rng:(Rng.create 121) 60 in
  let space = Dbh_datasets.Pen_digits.space in
  let truth = Ground_truth.compute ~space ~db ~queries () in
  let config = { small_config with num_pivots = 25; num_sample_queries = 80 } in
  let prepared = Builder.prepare ~rng ~space ~config db in
  let h = Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config () in
  let results = Array.map (fun q -> Hierarchical.search h q) queries in
  let acc = Ground_truth.accuracy truth (Array.map (fun r -> r.Index.nn) results) in
  let cost = mean_cost results in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f > 0.6" acc) true (acc > 0.6);
  Alcotest.(check bool) (Printf.sprintf "cost %.0f < db size" cost) true
    (cost < 0.8 *. float_of_int (Array.length db))

let test_dbh_on_strings () =
  (* Edit distance: another black-box space, queries are mutated members. *)
  let rng = Rng.create 130 in
  let db, _ =
    Dbh_datasets.Strings.clusters ~rng ~alphabet:"abcdefgh" ~num_clusters:30 ~length:24
      ~mutation_edits:3 500
  in
  let queries = Array.init 50 (fun i -> Dbh_datasets.Strings.mutate ~rng ~alphabet:"abcdefgh" ~edits:1 db.(i * 9)) in
  let space = Dbh_metrics.Edit_distance.space in
  let truth = Ground_truth.compute ~space ~db ~queries () in
  let config = { small_config with num_pivots = 25 } in
  let prepared = Builder.prepare ~rng ~space ~config db in
  let h = Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config () in
  let results = Array.map (fun q -> Hierarchical.search h q) queries in
  let acc = Ground_truth.accuracy truth (Array.map (fun r -> r.Index.nn) results) in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f" acc) true (acc > 0.7)

let test_dbh_on_jaccard_documents () =
  (* Jaccard sets: yet another black-box space; also exercised against
     MinHash LSH in test_lsh.  Queries are fresh documents of known
     topics. *)
  let rng = Rng.create 135 in
  let db = Dbh_datasets.Documents.generate_set ~rng ~num_topics:20 600 in
  let queries = Dbh_datasets.Documents.generate_set ~rng:(Rng.create 136) ~num_topics:20 60 in
  let space = Dbh_datasets.Documents.space in
  let truth = Ground_truth.compute ~space ~db ~queries () in
  let config = { small_config with num_pivots = 25 } in
  let prepared = Builder.prepare ~rng ~space ~config db in
  let h = Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config () in
  let results = Array.map (fun q -> Hierarchical.search h q) queries in
  let acc = Ground_truth.accuracy truth (Array.map (fun r -> r.Index.nn) results) in
  let cost = mean_cost results in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f" acc) true (acc > 0.6);
  Alcotest.(check bool) (Printf.sprintf "cost %.0f < scan" cost) true
    (cost < 0.8 *. float_of_int (Array.length db))

let test_dbh_on_kl_histograms () =
  (* Symmetric KL over discrete distributions: asymmetric building block,
     no triangle inequality — the paper's canonical "non-metric measure
     used in practice".  Queries are perturbed database members. *)
  let rng = Rng.create 137 in
  let db = Dbh_datasets.Vectors.histograms ~rng ~bins:16 600 in
  let queries =
    Array.init 60 (fun i ->
        let base = db.(i * 9) in
        let noisy = Array.map (fun x -> x *. exp (Rng.gaussian ~sigma:0.1 rng)) base in
        Dbh_metrics.Divergence.normalize noisy)
  in
  let space = Dbh_metrics.Divergence.symmetric_kl_space in
  let truth = Ground_truth.compute ~space ~db ~queries () in
  let config = { small_config with num_pivots = 25 } in
  let prepared = Builder.prepare ~rng ~space ~config db in
  let h = Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config () in
  let results = Array.map (fun q -> Hierarchical.search h q) queries in
  let acc = Ground_truth.accuracy truth (Array.map (fun r -> r.Index.nn) results) in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f" acc) true (acc > 0.7)

let test_dbh_on_dna_alignment () =
  (* Biological-sequence retrieval (motivated in the paper's intro):
     Needleman–Wunsch alignment distance over mutated sequence families. *)
  let rng = Rng.create 138 in
  let db = Dbh_datasets.Dna.generate_set ~rng ~num_families:40 500 in
  let queries = Array.init 50 (fun i ->
      { Dbh_datasets.Dna.label = db.(i * 9).Dbh_datasets.Dna.label;
        sequence = Dbh_datasets.Dna.mutate ~rng db.(i * 9).Dbh_datasets.Dna.sequence }) in
  let space = Dbh_datasets.Dna.global_space in
  let truth = Ground_truth.compute ~space ~db ~queries () in
  let config = { small_config with num_pivots = 25 } in
  let prepared = Builder.prepare ~rng ~space ~config db in
  let h = Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config () in
  let results = Array.map (fun q -> Hierarchical.search h q) queries in
  let acc = Ground_truth.accuracy truth (Array.map (fun r -> r.Index.nn) results) in
  let cost = mean_cost results in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f" acc) true (acc > 0.6);
  Alcotest.(check bool) (Printf.sprintf "cost %.0f < scan" cost) true
    (cost < 0.8 *. float_of_int (Array.length db))

let test_figure5_runner_small () =
  (* The experiment harness end-to-end on a small Euclidean instance. *)
  let rng = Rng.create 140 in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:10 ~dim:5 600 in
  let queries, _ =
    Dbh_datasets.Vectors.gaussian_mixture ~rng:(Rng.create 141) ~num_clusters:10 ~dim:5 60
  in
  let config =
    {
      Figure5.targets = [| 0.8; 0.9 |];
      vp_budget_fractions = [| 0.1; 0.5 |];
      builder = small_config;
      multiprobe_probes = 4;
      multiprobe_radius = 2;
    }
  in
  let result =
    Figure5.run ~rng ~dataset:"unit-test" ~space:Minkowski.l2_space ~db ~queries ~config ()
  in
  Alcotest.(check int) "db size" 600 result.Figure5.db_size;
  Alcotest.(check int) "queries" 60 result.Figure5.num_queries;
  Alcotest.(check int) "vp points" 2 (Array.length result.Figure5.vp.Tradeoff.points);
  Alcotest.(check int) "hier points" 2
    (Array.length result.Figure5.hierarchical.Tradeoff.points);
  Array.iter
    (fun (p : Tradeoff.point) ->
      Alcotest.(check bool) "accuracy in range" true
        (p.Tradeoff.accuracy >= 0. && p.Tradeoff.accuracy <= 1.);
      Alcotest.(check bool) "cost positive" true (p.Tradeoff.mean_cost > 0.))
    result.Figure5.hierarchical.Tradeoff.points;
  Alcotest.(check int) "brute force cost" 600 result.Figure5.brute_force_cost

let test_counted_space_agrees_with_stats () =
  (* The distance bookkeeping reported in Index.stats equals the real
     number of distance evaluations observed through a counted space. *)
  let rng = Rng.create 150 in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:8 ~dim:5 400 in
  let counted, counter = Space.with_counter Minkowski.l2_space in
  let family =
    Dbh.Hash_family.make ~rng ~space:counted ~num_pivots:20 ~threshold_sample:150 db
  in
  let index = Index.build ~rng ~family ~db ~k:5 ~l:6 () in
  for i = 0 to 20 do
    let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.05 db.(i * 11) in
    Space.reset counter;
    let r = Index.search index q in
    Alcotest.(check int) "stats = real distance calls" (Space.count counter)
      (Index.total_cost r.Index.stats)
  done

let () =
  Alcotest.run "dbh_integration"
    [
      ( "integration",
        [
          Alcotest.test_case "L2 calibration" `Slow test_l2_calibration;
          Alcotest.test_case "hierarchical cheaper" `Slow test_hierarchical_cheaper_than_single;
          Alcotest.test_case "non-metric DTW" `Slow test_dbh_on_non_metric_dtw;
          Alcotest.test_case "strings" `Slow test_dbh_on_strings;
          Alcotest.test_case "jaccard documents" `Slow test_dbh_on_jaccard_documents;
          Alcotest.test_case "KL histograms" `Slow test_dbh_on_kl_histograms;
          Alcotest.test_case "DNA alignment" `Slow test_dbh_on_dna_alignment;
          Alcotest.test_case "figure5 runner" `Slow test_figure5_runner_small;
          Alcotest.test_case "counted space agrees" `Quick test_counted_space_agrees_with_stats;
        ] );
    ]
