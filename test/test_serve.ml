(* The serving tier's chaos harness.

   Three layers of attack, mirroring the persistence suites' "kill at
   every offset" discipline:

   - codec: QCheck round-trips for every message kind, plus exhaustive
     adversarial inputs — every strict prefix of a valid frame must ask
     for more bytes, every single-bit corruption must be detected (CRC
     or magic), declared lengths beyond the cap must die before any
     buffering.
   - admission: deterministic token-bucket and queue arithmetic under a
     fake clock — no sleeps, no flakes.
   - server: a live TCP server hammered with torn frames at every cut
     point, bit flips at every position, slow loris, half-open sockets,
     oversize declarations, overload floods, and concurrent well-formed
     clients whose answers must stay bit-identical to a direct
     [Shards.search_many] on a twin directory throughout.

   Parallel fan-out honors DBH_TEST_DOMAINS (default 2). *)

module Rng = Dbh_util.Rng
module Binio = Dbh_util.Binio
module Pool = Dbh_util.Pool
module Space = Dbh_space.Space
module Minkowski = Dbh_metrics.Minkowski
module Registry = Dbh_obs.Registry
module Durable = Dbh.Online.Durable
module Protocol = Dbh_serve.Protocol
module Bucket = Dbh_serve.Bucket
module Admission = Dbh_serve.Admission
module Shards = Dbh_serve.Shards
module Server = Dbh_serve.Server
module Client = Dbh_serve.Client
module Loadgen = Dbh_serve.Loadgen
module Serve_metrics = Dbh_serve.Serve_metrics

(* Chaos sockets die under us mid-write; that must fail the write, not
   the test binary. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let domains =
  match Sys.getenv_opt "DBH_TEST_DOMAINS" with
  | None -> 2
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "DBH_TEST_DOMAINS must be a positive integer")

let l2 = Minkowski.l2_space

let small_config =
  { Dbh.Builder.default_config with num_pivots = 20; num_sample_queries = 60; db_sample = 150 }

let test_db seed n =
  let rng = Rng.create seed in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:6 ~dim:4 n in
  db

let encode (v : float array) =
  let buf = Buffer.create 64 in
  Binio.write_float_array buf v;
  Buffer.contents buf

let decode s =
  let r = Binio.reader s in
  let v = Binio.read_float_array r in
  if not (Binio.at_end r) then raise (Binio.Corrupt "trailing bytes in vector");
  v

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dbh-serve-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir d 0o755;
  d

(* ----------------------------------------------------------- protocol *)

let sample_requests =
  [
    Protocol.Ping;
    Protocol.Search
      {
        tenant = "gold";
        deadline_ms = 250;
        budget = 4096;
        probes = 3;
        radius = 2;
        payload = "\x00\x01binary\xffpayload";
      };
    Protocol.Search
      { tenant = ""; deadline_ms = 0; budget = 0; probes = 0; radius = 0; payload = "" };
    Protocol.Insert { tenant = "t"; deadline_ms = 42; payload = String.make 300 '\x7f' };
    Protocol.Delete { tenant = ""; deadline_ms = 0; handle = 123456789 };
    Protocol.Stats;
  ]

let sample_responses =
  [
    Protocol.Pong;
    Protocol.Result
      { found = true; handle = 17; dist = 0.125; cost = 4242; truncated = true };
    Protocol.Result
      { found = false; handle = 0; dist = Float.infinity; cost = 0; truncated = false };
    Protocol.Inserted { handle = 99 };
    Protocol.Deleted;
    Protocol.Stats_reply "{\"shards\":[]}";
    Protocol.Overloaded { retry_after_ms = 350 };
    Protocol.Bad_request "no thanks";
    Protocol.Timed_out;
    Protocol.Server_error "boom";
  ]

let decode_all s =
  Protocol.decode_frame (Bytes.of_string s) ~off:0 ~len:(String.length s)

let test_request_roundtrip_samples () =
  List.iteri
    (fun i req ->
      let id = Int64.of_int (i + 1) in
      let wire = Protocol.encode_request ~id req in
      match decode_all wire with
      | `Frame (f, consumed) ->
          Alcotest.(check int) "consumed everything" (String.length wire) consumed;
          Alcotest.(check int64) "id echoed" id f.Protocol.id;
          (match Protocol.request_of_frame f with
          | Ok req' ->
              Alcotest.(check bool)
                (Format.asprintf "%a round-trips" Protocol.pp_request req)
                true
                (Protocol.equal_request req req')
          | Error e -> Alcotest.failf "parse failed: %s" e)
      | `Need_more -> Alcotest.fail "complete frame asked for more"
      | `Corrupt e -> Alcotest.failf "complete frame corrupt: %s" e)
    sample_requests

let test_response_roundtrip_samples () =
  List.iteri
    (fun i resp ->
      let id = Int64.of_int ((i * 7) + 3) in
      let wire = Protocol.encode_response ~id resp in
      match decode_all wire with
      | `Frame (f, consumed) ->
          Alcotest.(check int) "consumed everything" (String.length wire) consumed;
          Alcotest.(check int64) "id echoed" id f.Protocol.id;
          (match Protocol.response_of_frame f with
          | Ok resp' ->
              Alcotest.(check bool)
                (Format.asprintf "%a round-trips" Protocol.pp_response resp)
                true
                (Protocol.equal_response resp resp')
          | Error e -> Alcotest.failf "parse failed: %s" e)
      | `Need_more -> Alcotest.fail "complete frame asked for more"
      | `Corrupt e -> Alcotest.failf "complete frame corrupt: %s" e)
    sample_responses

(* QCheck: arbitrary requests round-trip through the wire codec. *)
let gen_request =
  let open QCheck.Gen in
  let tenant = string_size ~gen:printable (int_bound 32) in
  let payload = string_size (int_bound 600) in
  let small = int_bound 1_000_000 in
  oneof
    [
      return Protocol.Ping;
      return Protocol.Stats;
      (tenant >>= fun tenant ->
       small >>= fun deadline_ms ->
       small >>= fun budget ->
       int_bound 20 >>= fun probes ->
       int_bound 8 >>= fun radius ->
       payload >>= fun payload ->
       return
         (Protocol.Search { tenant; deadline_ms; budget; probes; radius; payload }));
      (tenant >>= fun tenant ->
       small >>= fun deadline_ms ->
       payload >>= fun payload ->
       return (Protocol.Insert { tenant; deadline_ms; payload }));
      (tenant >>= fun tenant ->
       small >>= fun deadline_ms ->
       small >>= fun handle ->
       return (Protocol.Delete { tenant; deadline_ms; handle }));
    ]

let arb_request =
  QCheck.make ~print:(Format.asprintf "%a" Protocol.pp_request) gen_request

let prop_request_roundtrip =
  QCheck.Test.make ~count:300 ~name:"request wire round-trip" arb_request (fun req ->
      let wire = Protocol.encode_request ~id:77L req in
      match decode_all wire with
      | `Frame (f, n) when n = String.length wire -> (
          match Protocol.request_of_frame f with
          | Ok req' -> Protocol.equal_request req req'
          | Error _ -> false)
      | _ -> false)

(* Every strict prefix of a valid frame is [`Need_more] — never an
   error, never a phantom frame. *)
let prop_truncation_needs_more =
  QCheck.Test.make ~count:120 ~name:"every strict prefix asks for more" arb_request
    (fun req ->
      let wire = Protocol.encode_request ~id:5L req in
      let ok = ref true in
      for cut = 0 to String.length wire - 1 do
        (match
           Protocol.decode_frame
             (Bytes.of_string (String.sub wire 0 cut))
             ~off:0 ~len:cut
         with
        | `Need_more -> ()
        | `Frame _ | `Corrupt _ -> ok := false);
        (* Same window inside a larger dirty buffer: must not peek past
           [len]. *)
        let padded = Bytes.make (cut + 64) '\xAA' in
        Bytes.blit_string wire 0 padded 0 cut;
        match Protocol.decode_frame padded ~off:0 ~len:cut with
        | `Need_more -> ()
        | `Frame _ | `Corrupt _ -> ok := false
      done;
      !ok)

(* Exhaustive single-bit corruption: no flipped frame may decode to the
   original message, and nothing may raise.  CRC-32 catches every 1-bit
   error in the covered span; flips in the magic die on the prefix
   check; flips in the length field either ask for more bytes or fail
   the CRC at the shifted trailer position. *)
let test_single_bit_flips_detected () =
  List.iteri
    (fun i req ->
      let id = Int64.of_int (i + 1) in
      let wire = Protocol.encode_request ~id req in
      for bit = 0 to (String.length wire * 8) - 1 do
        let b = Bytes.of_string wire in
        let byte = bit / 8 in
        Bytes.set b byte
          (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))));
        match Protocol.decode_frame b ~off:0 ~len:(Bytes.length b) with
        | `Corrupt _ | `Need_more -> ()
        | `Frame (f, _) -> (
            (* A length-field flip to a smaller frame could in principle
               re-frame; it must still never reconstruct the original. *)
            match Protocol.request_of_frame f with
            | Ok req' when Int64.equal f.Protocol.id id && Protocol.equal_request req req'
              ->
                Alcotest.failf "bit %d of %a survived corruption" bit
                  Protocol.pp_request req
            | _ -> ())
      done)
    sample_requests

let test_oversize_length_is_corrupt () =
  let wire =
    Protocol.encode_request ~id:1L
      (Protocol.Search
         {
           tenant = "";
           deadline_ms = 0;
           budget = 0;
           probes = 0;
           radius = 0;
           payload = String.make 4096 'x';
         })
  in
  (* The real frame passes under the default cap... *)
  (match decode_all wire with
  | `Frame _ -> ()
  | _ -> Alcotest.fail "4 KiB frame should decode");
  (* ...and dies instantly under a smaller one, even though the buffer
     holds only the header so far (never buffer what you won't parse). *)
  let header_only = String.sub wire 0 Protocol.header_bytes in
  match
    Protocol.decode_frame ~max_payload:1024
      (Bytes.of_string header_only)
      ~off:0 ~len:(String.length header_only)
  with
  | `Corrupt _ -> ()
  | `Need_more -> Alcotest.fail "oversize declaration must not wait for bytes"
  | `Frame _ -> Alcotest.fail "oversize declaration decoded"

let test_garbage_is_corrupt () =
  (match decode_all "GET /metrics HTTP/1.0\r\n\r\n" with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "HTTP to the data port must be corrupt");
  match decode_all "XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00" with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic must be corrupt"

let test_well_framed_garbage_keeps_framing () =
  (* A perfectly framed message of the wrong kind is a parse error, not
     a framing error: the server replies Bad_request and keeps the
     connection. *)
  let wire = Protocol.encode_request ~id:9L Protocol.Ping in
  let resp_wire = Protocol.encode_response ~id:9L Protocol.Deleted in
  (match decode_all resp_wire with
  | `Frame (f, _) -> (
      match Protocol.request_of_frame f with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "response kind parsed as request")
  | _ -> Alcotest.fail "frame should decode");
  match decode_all wire with
  | `Frame (f, _) -> (
      match Protocol.response_of_frame f with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "request kind parsed as response")
  | _ -> Alcotest.fail "frame should decode"

let test_pipelined_frames_decode_in_sequence () =
  let reqs = sample_requests in
  let wire =
    String.concat ""
      (List.mapi (fun i r -> Protocol.encode_request ~id:(Int64.of_int i) r) reqs)
  in
  let buf = Bytes.of_string wire in
  let off = ref 0 in
  List.iteri
    (fun i req ->
      match Protocol.decode_frame buf ~off:!off ~len:(String.length wire - !off) with
      | `Frame (f, n) ->
          Alcotest.(check int64) "id in sequence" (Int64.of_int i) f.Protocol.id;
          (match Protocol.request_of_frame f with
          | Ok req' ->
              Alcotest.(check bool) "payload in sequence" true
                (Protocol.equal_request req req')
          | Error e -> Alcotest.failf "parse failed: %s" e);
          off := !off + n
      | `Need_more -> Alcotest.fail "ran out mid-stream"
      | `Corrupt e -> Alcotest.failf "corrupt mid-stream: %s" e)
    reqs;
  Alcotest.(check int) "stream fully consumed" (String.length wire) !off

(* ------------------------------------------------------------- bucket *)

let test_bucket_arithmetic () =
  let b = Bucket.create ~rate:10. ~burst:5. ~now:100. in
  Alcotest.(check (float 1e-9)) "starts full" 5. (Bucket.tokens b ~now:100.);
  for _ = 1 to 5 do
    Alcotest.(check bool) "burst admits" true (Bucket.try_take b ~now:100.)
  done;
  Alcotest.(check bool) "empty sheds" false (Bucket.try_take b ~now:100.);
  Alcotest.(check (float 1e-6)) "honest retry-after" 0.1
    (Bucket.seconds_until b ~now:100.);
  (* 0.25 s at 10/s refills 2.5 tokens. *)
  Alcotest.(check bool) "refilled" true (Bucket.try_take b ~now:100.25);
  Alcotest.(check bool) "refilled twice" true (Bucket.try_take b ~now:100.25);
  Alcotest.(check bool) "but not thrice" false (Bucket.try_take b ~now:100.25);
  (* A long quiet period clamps at burst, not beyond. *)
  Alcotest.(check (float 1e-9)) "clamped at burst" 5. (Bucket.tokens b ~now:1000.);
  (* Clock going backwards must not mint tokens. *)
  let before = Bucket.tokens b ~now:1000. in
  Alcotest.(check (float 1e-9)) "backwards clock is a no-op" before
    (Bucket.tokens b ~now:999.);
  (match Bucket.create ~rate:0. ~burst:1. ~now:0. with
  | _ -> Alcotest.fail "rate 0 accepted"
  | exception Invalid_argument _ -> ());
  match Bucket.create ~rate:1. ~burst:0.5 ~now:0. with
  | _ -> Alcotest.fail "burst < 1 accepted"
  | exception Invalid_argument _ -> ()

(* ---------------------------------------------------------- admission *)

let dummy_item ?(tenant = "") ?(deadline = 1e9) t ~now =
  {
    Admission.request = Protocol.Ping;
    id = 1L;
    tenant;
    deadline;
    budget = Admission.budget_for t ~tenant ~remaining:(deadline -. now) ~requested:0;
    enqueued_at = now;
    reply = ignore;
  }

let test_admission_deadline_and_budget () =
  let cfg =
    {
      Admission.default_config with
      default_deadline = 2.0;
      max_deadline = 10.0;
      default_class = { Admission.rate = 100.; burst = 50.; max_budget = 10_000 };
    }
  in
  let t = Admission.create ~now:1000. cfg in
  Alcotest.(check (float 1e-9)) "no deadline -> default" 1002.
    (Admission.resolve_deadline t ~now:1000. ~deadline_ms:0);
  Alcotest.(check (float 1e-9)) "client deadline honored" 1000.25
    (Admission.resolve_deadline t ~now:1000. ~deadline_ms:250);
  Alcotest.(check (float 1e-9)) "clamped to max" 1010.
    (Admission.resolve_deadline t ~now:1000. ~deadline_ms:3_600_000);
  Admission.set_distances_per_second t 1000.;
  Alcotest.(check int) "requested budget wins" 123
    (Admission.budget_for t ~tenant:"" ~remaining:5. ~requested:123);
  Alcotest.(check int) "requested clamped to class cap" 10_000
    (Admission.budget_for t ~tenant:"" ~remaining:5. ~requested:1_000_000);
  Alcotest.(check int) "deadline-derived = remaining x dps" 500
    (Admission.budget_for t ~tenant:"" ~remaining:0.5 ~requested:0);
  Alcotest.(check int) "derived clamped to class cap" 10_000
    (Admission.budget_for t ~tenant:"" ~remaining:1e6 ~requested:0);
  Alcotest.(check int) "never below 1" 1
    (Admission.budget_for t ~tenant:"" ~remaining:(-3.) ~requested:0);
  Admission.set_distances_per_second t Float.nan;
  Admission.set_distances_per_second t (-5.);
  Alcotest.(check (float 1e-9)) "bogus rates ignored" 1000.
    (Admission.distances_per_second t)

let test_admission_sheds_dont_collapse () =
  let cfg =
    {
      Admission.default_config with
      queue_capacity = 2;
      default_class = { Admission.rate = 1.; burst = 10.; max_budget = 100 };
      classes = [ ("gold", { Admission.rate = 100.; burst = 100.; max_budget = 100 }) ];
    }
  in
  let t = Admission.create ~now:0. cfg in
  let admit ?tenant now = Admission.admit t ~now (dummy_item ?tenant t ~now) in
  (match admit 0. with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "first admit");
  (match admit 0. with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "second admit");
  Alcotest.(check int) "queue depth" 2 (Admission.depth t);
  (* Tokens remain (burst 10), so the refusal is the queue's — and a
     queue shed must not burn a token. *)
  (match admit 0. with
  | Admission.Shed_queue -> ()
  | _ -> Alcotest.fail "third admit must shed on queue");
  (* Pop frees capacity in arrival order. *)
  let batch = Admission.pop_batch t ~max:10 in
  Alcotest.(check int) "popped both" 2 (List.length batch);
  Alcotest.(check int) "drained" 0 (Admission.depth t);
  (* Burn the default bucket: burst 10, minus the two admits — the
     queue-shed above consumed nothing (capacity is checked before the
     bucket), so exactly 8 tokens remain. *)
  for _ = 1 to 8 do
    match admit 0. with
    | Admission.Admitted -> ignore (Admission.pop_batch t ~max:1)
    | v ->
        Alcotest.failf "unexpected verdict %s"
          (match v with
          | Admission.Shed_rate _ -> "rate"
          | Admission.Shed_queue -> "queue"
          | Admission.Shed_draining -> "drain"
          | Admission.Admitted -> "admitted")
  done;
  (match admit 0. with
  | Admission.Shed_rate retry ->
      Alcotest.(check bool) "positive retry-after" true (retry > 0.)
  | _ -> Alcotest.fail "empty bucket must shed on rate");
  (* An unconfigured tenant shares the same default bucket... *)
  (match admit ~tenant:"anonymous" 0. with
  | Admission.Shed_rate _ -> ()
  | _ -> Alcotest.fail "unknown tenants share the default bucket");
  (* ...while the configured class rides its own. *)
  (match admit ~tenant:"gold" 0. with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "gold must still be admitted");
  ignore (Admission.pop_batch t ~max:1);
  (* Time refills the default bucket. *)
  (match admit 3. with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "refilled bucket must admit");
  ignore (Admission.pop_batch t ~max:1);
  (* Draining sheds everything new, drains what is queued. *)
  (match admit ~tenant:"gold" 3. with
  | Admission.Admitted -> ()
  | _ -> Alcotest.fail "pre-drain admit");
  Admission.start_draining t;
  (match admit ~tenant:"gold" 3. with
  | Admission.Shed_draining -> ()
  | _ -> Alcotest.fail "draining must shed");
  Alcotest.(check int) "drain_remaining takes the queue" 1
    (List.length (Admission.drain_remaining t));
  Admission.close t;
  Alcotest.(check int) "closed pop returns []" 0
    (List.length (Admission.pop_batch t ~max:4))

let test_admission_tenant_tokens () =
  let cfg =
    {
      Admission.default_config with
      classes = [ ("gold", { Admission.rate = 10.; burst = 5.; max_budget = 10 }) ];
    }
  in
  let t = Admission.create ~now:0. cfg in
  let toks = Admission.tenant_tokens t ~now:0. in
  Alcotest.(check bool) "gold gauge present" true (List.mem_assoc "gold" toks);
  Alcotest.(check bool) "default gauge present" true (List.mem_assoc "default" toks);
  Alcotest.(check (float 1e-9)) "gold starts at burst" 5. (List.assoc "gold" toks)

(* ------------------------------------------------------------- server *)

let seed_data = test_db 31 150
let queries = test_db 77 25

type harness = {
  server : float array Server.t;
  shards : float array Shards.t;
  dir : string;
}

let with_server ?(shards = 2) ?(space = l2) ?admission ?(batch_max = 32)
    ?(idle_timeout = 10.) ?(metrics_port = None) ?(so_sndbuf = None)
    ?(data = seed_data) f =
  let dir = fresh_dir () in
  let sh, _ =
    Shards.open_or_create ~fsync:false ~build:small_config ~seed:42 ~shards
      ~target_accuracy:0.9 ~space ~encode ~decode ~dir ~data ()
  in
  let config =
    {
      Server.default_config with
      admission = Option.value admission ~default:Admission.default_config;
      batch_max;
      idle_timeout;
      metrics_port;
      so_sndbuf;
      drain_timeout = 2.0;
    }
  in
  let run pool =
    let server = Server.start ?pool ~decode config sh in
    Fun.protect
      ~finally:(fun () -> Server.stop server)
      (fun () -> f { server; shards = sh; dir })
  in
  if domains > 1 then Pool.with_pool ~domains (fun p -> run (Some p))
  else run None

(* A twin sharded index in another directory: the oracle for
   bit-identity. *)
let twin_shards ?(shards = 2) ?(data = seed_data) () =
  let dir = fresh_dir () in
  let sh, _ =
    Shards.open_or_create ~fsync:false ~build:small_config ~seed:42 ~shards
      ~target_accuracy:0.9 ~space:l2 ~encode ~decode ~dir ~data ()
  in
  sh

let connect h = Client.connect ~host:"127.0.0.1" ~port:(Server.port h.server) ()

let check_result_matches msg (a : Shards.answer) (resp : Protocol.response) =
  match (resp, a.Shards.nn) with
  | Protocol.Result r, Some (handle, dist) ->
      Alcotest.(check bool) (msg ^ ": found") true r.found;
      Alcotest.(check int) (msg ^ ": handle") handle r.handle;
      Alcotest.(check (float 0.)) (msg ^ ": dist") dist r.dist;
      Alcotest.(check int) (msg ^ ": cost") a.Shards.cost r.cost;
      Alcotest.(check bool) (msg ^ ": truncated") a.Shards.truncated r.truncated
  | Protocol.Result r, None ->
      Alcotest.(check bool) (msg ^ ": not found") false r.found
  | other, _ ->
      Alcotest.failf "%s: expected Result, got %a" msg Protocol.pp_response other

let test_ping_and_stats () =
  with_server (fun h ->
      let c = connect h in
      Alcotest.(check bool) "pong" true (Client.ping c);
      (match Client.stats c with
      | Protocol.Stats_reply s ->
          Alcotest.(check bool) "stats mention shards" true
            (contains ~needle:"shard" s && String.index_opt s '{' <> None)
      | other -> Alcotest.failf "expected stats, got %a" Protocol.pp_response other);
      Client.close c)

let test_search_bit_identical_to_direct () =
  let shards = 3 in
  let budget = 100_000 in
  let twin = twin_shards ~shards () in
  let direct =
    Shards.search_many twin
      (Array.map
         (fun q -> (q, { Shards.budget; probes = 0; radius = 0 }))
         queries)
  in
  with_server ~shards (fun h ->
      let c = connect h in
      Array.iteri
        (fun i q ->
          let resp =
            Client.search ~deadline_ms:30_000 ~budget c ~payload:(encode q)
          in
          check_result_matches (Printf.sprintf "query %d" i) direct.(i) resp)
        queries;
      Client.close c);
  Shards.close twin

(* The acceptance bar: several well-formed clients in parallel, while
   chaos connections spray torn and corrupt bytes at the same port —
   every well-formed answer must still be bit-identical to the direct
   search. *)
let test_concurrent_clients_with_chaos () =
  let shards = 2 in
  let budget = 100_000 in
  let twin = twin_shards ~shards () in
  let direct =
    Shards.search_many twin
      (Array.map
         (fun q -> (q, { Shards.budget; probes = 0; radius = 0 }))
         queries)
  in
  Shards.close twin;
  with_server ~shards ~idle_timeout:0.5 (fun h ->
      let port = Server.port h.server in
      let failures = Atomic.make 0 in
      let stop_chaos = Atomic.make false in
      let chaos_thread seed =
        Thread.create
          (fun () ->
            let rng = Rng.create seed in
            let wire =
              Protocol.encode_request ~id:3L
                (Protocol.Search
                   {
                     tenant = "";
                     deadline_ms = 50;
                     budget = 10;
                     probes = 0;
                     radius = 0;
                     payload = encode queries.(0);
                   })
            in
            while not (Atomic.get stop_chaos) do
              (try
                 let fd = Unix.socket PF_INET SOCK_STREAM 0 in
                 Fun.protect
                   ~finally:(fun () -> try Unix.close fd with _ -> ())
                   (fun () ->
                     Unix.connect fd
                       (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
                     match Rng.int rng 3 with
                     | 0 ->
                         (* Torn prefix. *)
                         let cut = Rng.int rng (String.length wire) in
                         ignore (Unix.write_substring fd wire 0 cut)
                     | 1 ->
                         (* Bit flip. *)
                         let b = Bytes.of_string wire in
                         let bit = Rng.int rng (Bytes.length b * 8) in
                         Bytes.set b (bit / 8)
                           (Char.chr
                              (Char.code (Bytes.get b (bit / 8))
                              lxor (1 lsl (bit mod 8))));
                         ignore (Unix.write fd b 0 (Bytes.length b))
                     | _ ->
                         (* Pure garbage. *)
                         ignore
                           (Unix.write_substring fd "\xde\xad\xbe\xef garbage" 0 16))
               with Unix.Unix_error _ -> ());
              Thread.yield ()
            done)
          ()
      in
      let client_thread k =
        Thread.create
          (fun () ->
            try
              let c = connect h in
              Array.iteri
                (fun i q ->
                  let resp =
                    Client.search ~deadline_ms:30_000 ~budget c
                      ~payload:(encode q)
                  in
                  try
                    check_result_matches
                      (Printf.sprintf "client %d query %d" k i)
                      direct.(i) resp
                  with _ -> Atomic.incr failures)
                queries;
              Client.close c
            with _ -> Atomic.incr failures)
          ()
      in
      let chaos = List.init 2 (fun i -> chaos_thread (1000 + i)) in
      let clients = List.init 3 client_thread in
      List.iter Thread.join clients;
      Atomic.set stop_chaos true;
      List.iter Thread.join chaos;
      Alcotest.(check int) "no divergent or failed well-formed request" 0
        (Atomic.get failures);
      (* The server survived it all. *)
      let c = connect h in
      Alcotest.(check bool) "still serving" true (Client.ping c);
      Client.close c)

let test_insert_delete_roundtrip () =
  with_server (fun h ->
      let c = connect h in
      let v = Array.init 4 (fun i -> 9000. +. float_of_int i) in
      let handle =
        match Client.insert c ~payload:(encode v) with
        | Protocol.Inserted { handle } -> handle
        | other -> Alcotest.failf "expected Inserted, got %a" Protocol.pp_response other
      in
      (match Client.search ~budget:1_000_000 c ~payload:(encode v) with
      | Protocol.Result { found = true; handle = h'; dist; _ } ->
          Alcotest.(check int) "finds its own insert" handle h';
          Alcotest.(check (float 1e-9)) "at distance zero" 0. dist
      | other -> Alcotest.failf "expected Result, got %a" Protocol.pp_response other);
      (match Client.delete c ~handle with
      | Protocol.Deleted -> ()
      | other -> Alcotest.failf "expected Deleted, got %a" Protocol.pp_response other);
      (match Client.delete c ~handle with
      | Protocol.Deleted -> ()  (* idempotent *)
      | other -> Alcotest.failf "expected Deleted, got %a" Protocol.pp_response other);
      (match Client.search ~budget:1_000_000 c ~payload:(encode v) with
      | Protocol.Result { handle = h'; _ } ->
          Alcotest.(check bool) "deleted handle gone" true (h' <> handle)
      | other -> Alcotest.failf "expected Result, got %a" Protocol.pp_response other);
      (* A handle that routes outside any shard is a Bad_request, not a
         dead connection. *)
      (match Client.delete c ~handle:max_int with
      | Protocol.Bad_request _ -> ()
      | other ->
          Alcotest.failf "expected Bad_request, got %a" Protocol.pp_response other);
      Alcotest.(check bool) "connection survives bad request" true (Client.ping c);
      Client.close c)

let test_pipelined_requests_all_answered () =
  with_server (fun h ->
      let c = connect h in
      let n = 20 in
      let ids =
        List.init n (fun i ->
            Client.send c
              (Protocol.Search
                 {
                   tenant = "";
                   deadline_ms = 30_000;
                   budget = 10_000;
                   probes = 0;
                   radius = 0;
                   payload = encode queries.(i mod Array.length queries);
                 }))
      in
      let replies = List.init n (fun _ -> Client.recv c) in
      let got = List.sort compare (List.map fst replies) in
      Alcotest.(check (list int64)) "every id answered exactly once"
        (List.sort compare ids) got;
      List.iter
        (fun (_, resp) ->
          match resp with
          | Protocol.Result _ -> ()
          | other ->
              Alcotest.failf "expected Result, got %a" Protocol.pp_response other)
        replies;
      Client.close c)

let test_bad_payload_gets_bad_request () =
  with_server (fun h ->
      let c = connect h in
      (match Client.search ~budget:100 c ~payload:"not a float array" with
      | Protocol.Bad_request _ -> ()
      | other ->
          Alcotest.failf "expected Bad_request, got %a" Protocol.pp_response other);
      (* Radius beyond the key width is validation, not a crash. *)
      (match
         Client.search ~budget:100 ~radius:10_000 c ~payload:(encode queries.(0))
       with
      | Protocol.Bad_request _ -> ()
      | other ->
          Alcotest.failf "expected Bad_request, got %a" Protocol.pp_response other);
      Alcotest.(check bool) "connection survives" true (Client.ping c);
      Client.close c)

(* ------------------------------------------------------------- chaos *)

let raw_connect port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let test_torn_frames_at_every_offset () =
  with_server ~idle_timeout:0.4 (fun h ->
      let port = Server.port h.server in
      let wire =
        Protocol.encode_request ~id:1L
          (Protocol.Search
             {
               tenant = "tn";
               deadline_ms = 100;
               budget = 50;
               probes = 0;
               radius = 0;
               payload = encode queries.(0);
             })
      in
      for cut = 0 to String.length wire - 1 do
        let fd = raw_connect port in
        (try ignore (Unix.write_substring fd wire 0 cut)
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
      done;
      let c = connect h in
      Alcotest.(check bool) "alive after every torn offset" true (Client.ping c);
      Client.close c)

let test_bit_flips_never_produce_results () =
  with_server ~idle_timeout:0.4 (fun h ->
      let port = Server.port h.server in
      let wire = Protocol.encode_request ~id:7L Protocol.Ping in
      let saw_result = ref false in
      for bit = 0 to (String.length wire * 8) - 1 do
        let b = Bytes.of_string wire in
        Bytes.set b (bit / 8)
          (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
        let fd = raw_connect port in
        (try
           ignore (Unix.write fd b 0 (Bytes.length b));
           Unix.setsockopt_float fd SO_RCVTIMEO 1.0;
           (* Whatever comes back, it must never be a well-formed Pong
              for our id: the corruption was detected server-side. *)
           let rbuf = Bytes.create 256 in
           let n = try Unix.read fd rbuf 0 256 with Unix.Unix_error _ -> 0 in
           if n > 0 then
             match Protocol.decode_frame rbuf ~off:0 ~len:n with
             | `Frame (f, _) -> (
                 match Protocol.response_of_frame f with
                 | Ok Protocol.Pong when Int64.equal f.Protocol.id 7L ->
                     saw_result := true
                 | _ -> ())
             | _ -> ()
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      done;
      Alcotest.(check bool) "no corrupted frame was ever served" false !saw_result;
      let m = Server.metrics h.server in
      Alcotest.(check bool) "corruption was counted" true
        (Registry.counter_value m.Serve_metrics.bad_frames_total > 0);
      let c = connect h in
      Alcotest.(check bool) "alive after every bit flip" true (Client.ping c);
      Client.close c)

let test_slow_loris_is_killed () =
  with_server ~idle_timeout:0.3 (fun h ->
      let fd = raw_connect (Server.port h.server) in
      let wire = Protocol.encode_request ~id:1L Protocol.Ping in
      (* Half a frame, then silence: the partial-frame deadline must
         reap us, not wait forever. *)
      ignore (Unix.write_substring fd wire 0 (String.length wire / 2));
      Unix.setsockopt_float fd SO_RCVTIMEO 5.0;
      let eof =
        try Unix.read fd (Bytes.create 64) 0 64 = 0 with Unix.Unix_error _ -> true
      in
      Alcotest.(check bool) "loris connection closed by server" true eof;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let m = Server.metrics h.server in
      Alcotest.(check bool) "kill was counted" true
        (Registry.counter_value m.Serve_metrics.connections_killed_total
        > 0);
      let c = connect h in
      Alcotest.(check bool) "alive after loris" true (Client.ping c);
      Client.close c)

let test_half_open_sockets_are_reaped () =
  with_server ~idle_timeout:0.3 (fun h ->
      let port = Server.port h.server in
      (* Open a pile of connections that never send a byte, and some
         that die abruptly (RST via SO_LINGER 0). *)
      let silent = List.init 8 (fun _ -> raw_connect port) in
      List.iter
        (fun _ ->
          let fd = raw_connect port in
          Unix.setsockopt_optint fd SO_LINGER (Some 0);
          Unix.close fd)
        (List.init 8 Fun.id);
      Unix.sleepf 0.6;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) silent;
      let c = connect h in
      Alcotest.(check bool) "alive after half-open flood" true (Client.ping c);
      Client.close c)

let test_oversize_declaration_kills_connection () =
  with_server (fun h ->
      let fd = raw_connect (Server.port h.server) in
      (* A header declaring a payload far over the cap: the server must
         refuse to buffer it and drop us. *)
      let b = Bytes.make Protocol.header_bytes '\x00' in
      Bytes.blit_string "DBHS" 0 b 0 4;
      Bytes.set b 4 '\x02';
      Bytes.set_int32_le b 13 0x7fff_ffffl;
      ignore (Unix.write fd b 0 (Bytes.length b));
      Unix.setsockopt_float fd SO_RCVTIMEO 5.0;
      let rbuf = Bytes.create 256 in
      (* Either an immediate close, or a best-effort Bad_request then
         close — never a hang, never a served request. *)
      let rec drain () =
        match Unix.read fd rbuf 0 256 with
        | 0 -> true
        | _ -> drain ()
        | exception Unix.Unix_error _ -> true
      in
      Alcotest.(check bool) "connection dropped" true (drain ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let c = connect h in
      Alcotest.(check bool) "alive after oversize" true (Client.ping c);
      Client.close c)

(* A slow *reader*: pipelines a torrent of admitted work but never
   drains a single reply, so its socket buffers fill and every reply
   write to it jams.  SO_SNDTIMEO must convert the jam into a shed (mark
   unwritable, shut the socket down) instead of wedging whichever thread
   holds the write mutex — the batcher, i.e. the entire serving plane —
   and [Server.stop] in the harness finally must complete rather than
   deadlock behind the stuck write (the historical failure mode:
   forget_conn locked wmutex before closing the fd).

   The test drives the real jam (batcher blocked in a reply write until
   the send timeout sheds the connection) and asserts full recovery.
   Caveat: some sandboxed network stacks apply SO_RCVTIMEO to blocked
   writes as well, so on those a server *without* the SO_SNDTIMEO fix
   self-heals too and this test cannot catch its removal; on a stock
   kernel a blocked write without the fix never returns. *)
let test_slow_reader_never_stalls_serving () =
  let admission =
    {
      Admission.default_config with
      queue_capacity = 512;
      default_class =
        { Admission.rate = 1_000_000.; burst = 100_000.; max_budget = 500 };
    }
  in
  (* idle_timeout doubles as SO_SNDTIMEO, so the batcher's jammed write
     sheds the slow reader after at most 2 s — well inside the good
     client's 3 s pipelined send phase, so by the time the good client
     stops sending and drains, the plane is unjammed again. *)
  (* A small server-side send buffer plus the tiny client receive window
     below make the jam deterministic: a few hundred replies fill both,
     regardless of kernel buffer autotuning defaults. *)
  with_server ~admission ~idle_timeout:2.0 ~so_sndbuf:(Some 4096) (fun h ->
      let port = Server.port h.server in
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      (* Tiny receive window: the reply path jams after a few KB. *)
      Unix.setsockopt_int fd SO_RCVBUF 1024;
      Unix.setsockopt_float fd SO_SNDTIMEO 5.0;
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let payload = encode queries.(0) in
      let wire i =
        Protocol.encode_request ~id:(Int64.of_int i)
          (Protocol.Search
             {
               tenant = "";
               deadline_ms = 10_000;
               budget = 50;
               probes = 0;
               radius = 0;
               payload;
             })
      in
      (* Keep the pipeline saturated until the server sheds us: enough
         bytes that the replies (results and queue sheds alike) cannot
         fit in any default socket buffer.  The writes themselves start
         failing once the server shuts our socket down — that ends the
         thread. *)
      let writer =
        Thread.create
          (fun () ->
            let t0 = Unix.gettimeofday () in
            let i = ref 0 in
            try
              while !i < 50_000 && Unix.gettimeofday () -. t0 < 1.5 do
                incr i;
                let w = wire !i in
                ignore (Unix.write_substring fd w 0 (String.length w))
              done
            with Unix.Unix_error _ | Sys_error _ -> ())
          ()
      in
      (* Meanwhile a well-formed client keeps *pipelining* — sending
         without waiting, so its connection is never idle while a jammed
         write times out — until the slow reader has provably been shed
         (the connections_open gauge drops back to just us); only then
         does it stop and drain.  Every id must come back, a result or
         an honest shed, never silence or an error. *)
      let m = Server.metrics h.server in
      let c = connect h in
      let sent = ref [] in
      let t0 = Unix.gettimeofday () in
      let elapsed () = Unix.gettimeofday () -. t0 in
      while
        (Registry.gauge_value m.Serve_metrics.connections_open > 1
        || elapsed () < 2.0)
        && elapsed () < 30.
      do
        sent :=
          Client.send c
            (Protocol.Search
               {
                 tenant = "";
                 deadline_ms = 30_000;
                 budget = 500;
                 probes = 0;
                 radius = 0;
                 payload;
               })
          :: !sent;
        Unix.sleepf 0.02
      done;
      Alcotest.(check bool) "slow reader was shed, not tolerated" true
        (Registry.gauge_value m.Serve_metrics.connections_open <= 1);
      (* Drain with keep-alive pings: pending searches may still be
         queued behind the unjammed batcher, and a silent connection
         would be idle-killed before they complete.  Ping only when no
         reply is ready — a ping per loop turn would flood the server
         with pong-writes into the deliberately tiny send buffer and
         collapse reply throughput to the TCP ack clock. *)
      let pending = Hashtbl.create 256 in
      List.iter (fun id -> Hashtbl.replace pending id ()) !sent;
      let served = ref 0 and shed = ref 0 in
      let give_up = Unix.gettimeofday () +. 60. in
      while Hashtbl.length pending > 0 && Unix.gettimeofday () < give_up do
        if Client.readable ~timeout:0.25 c then begin
          let id, resp = Client.recv c in
          if Hashtbl.mem pending id then begin
            Hashtbl.remove pending id;
            match resp with
            | Protocol.Result _ -> incr served
            | Protocol.Overloaded _ | Protocol.Timed_out -> incr shed
            | other ->
                Alcotest.failf "unexpected reply under slow-reader jam: %a"
                  Protocol.pp_response other
          end
        end
        else
          (* Idle quarter-second: refresh the server's receive clock. *)
          ignore (Client.send c Protocol.Ping)
      done;
      Alcotest.(check int) "every search answered exactly once" 0
        (Hashtbl.length pending);
      ignore !shed;
      Thread.join writer;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Alcotest.(check bool) "good client served during the jam" true (!served > 0);
      (* After the slow reader is gone the plane must be fully healthy. *)
      (match Client.search ~deadline_ms:10_000 ~budget:500 c ~payload with
      | Protocol.Result _ -> ()
      | other ->
          Alcotest.failf "expected Result after jam cleared, got %a"
            Protocol.pp_response other);
      Alcotest.(check bool) "alive after slow reader" true (Client.ping c);
      Client.close c)

let test_overload_flood_sheds_explicitly () =
  let admission =
    {
      Admission.default_config with
      queue_capacity = 4;
      default_class = { Admission.rate = 10.; burst = 4.; max_budget = 2_000 };
    }
  in
  with_server ~admission ~batch_max:2 (fun h ->
      let c = connect h in
      let n = 40 in
      let ids =
        List.init n (fun i ->
            Client.send c
              (Protocol.Search
                 {
                   tenant = "";
                   deadline_ms = 30_000;
                   budget = 500;
                   probes = 0;
                   radius = 0;
                   payload = encode queries.(i mod Array.length queries);
                 }))
      in
      let replies = List.init n (fun _ -> Client.recv c) in
      Alcotest.(check (list int64)) "every id answered exactly once"
        (List.sort compare ids)
        (List.sort compare (List.map fst replies));
      let served, shed, other =
        List.fold_left
          (fun (r, o, x) (_, resp) ->
            match resp with
            | Protocol.Result _ -> (r + 1, o, x)
            | Protocol.Overloaded { retry_after_ms } ->
                Alcotest.(check bool) "retry-after non-negative" true
                  (retry_after_ms >= 0);
                (r, o + 1, x)
            | Protocol.Timed_out -> (r, o, x)
            | _ -> (r, o, x + 1))
          (0, 0, 0) replies
      in
      Alcotest.(check int) "no error replies under flood" 0 other;
      Alcotest.(check bool) "some were served" true (served > 0);
      Alcotest.(check bool) "some were shed, explicitly" true (shed > 0);
      let m = Server.metrics h.server in
      Alcotest.(check bool) "sheds counted" true
        (Registry.counter_value m.Serve_metrics.shed_rate_total
         + Registry.counter_value m.Serve_metrics.shed_queue_total
        > 0);
      Alcotest.(check bool) "still serving after flood" true (Client.ping c);
      Client.close c)

let test_tenant_isolation_under_flood () =
  let admission =
    {
      Admission.default_config with
      queue_capacity = 512;
      default_class = { Admission.rate = 0.1; burst = 2.; max_budget = 2_000 };
      classes =
        [ ("gold", { Admission.rate = 10_000.; burst = 5_000.; max_budget = 2_000 }) ];
    }
  in
  with_server ~admission (fun h ->
      let c = connect h in
      let n = 20 in
      let send tenant =
        List.init n (fun i ->
            Client.send c
              (Protocol.Search
                 {
                   tenant;
                   deadline_ms = 30_000;
                   budget = 200;
                   probes = 0;
                   radius = 0;
                   payload = encode queries.(i mod Array.length queries);
                 }))
      in
      (* Interleave: free tenant floods, gold keeps its SLO. *)
      let free_ids = send "" and gold_ids = send "gold" in
      let replies = List.init (2 * n) (fun _ -> Client.recv c) in
      let count ids =
        List.fold_left
          (fun (ok, shed) (id, resp) ->
            if List.mem id ids then
              match resp with
              | Protocol.Result _ -> (ok + 1, shed)
              | Protocol.Overloaded _ -> (ok, shed + 1)
              | _ -> (ok, shed)
            else (ok, shed))
          (0, 0) replies
      in
      let gold_ok, gold_shed = count gold_ids in
      let free_ok, free_shed = count free_ids in
      Alcotest.(check int) "gold never shed" 0 gold_shed;
      Alcotest.(check int) "gold fully served" n gold_ok;
      Alcotest.(check bool) "free tenant was shed" true (free_shed > n / 2);
      Alcotest.(check bool) "free tenant not starved outright" true (free_ok >= 1);
      Client.close c)

(* Deadline propagation: a request whose deadline expires while an
   earlier slow batch holds the executor must come back [Timed_out]
   without costing a single distance computation.  The space sleeps per
   distance call once [slow] flips, making the first search occupy the
   batcher deterministically. *)
let test_expired_deadline_times_out () =
  let slow = Atomic.make false in
  let slow_space =
    Space.make ~name:"slow-l2" (fun a b ->
        if Atomic.get slow then Thread.delay 0.002;
        l2.Space.distance a b)
  in
  with_server ~space:slow_space ~batch_max:1 (fun h ->
      let c = connect h in
      Atomic.set slow true;
      let slow_id =
        Client.send c
          (Protocol.Search
             {
               tenant = "";
               deadline_ms = 30_000;
               budget = 100_000;
               probes = 0;
               radius = 0;
               payload = encode queries.(0);
             })
      in
      let doomed_id =
        Client.send c
          (Protocol.Search
             {
               tenant = "";
               deadline_ms = 1;
               budget = 100_000;
               probes = 0;
               radius = 0;
               payload = encode queries.(1);
             })
      in
      let r1 = Client.recv c and r2 = Client.recv c in
      Atomic.set slow false;
      let find id = List.assoc id [ r1; r2 ] in
      (match find slow_id with
      | Protocol.Result _ -> ()
      | other ->
          Alcotest.failf "slow search: expected Result, got %a" Protocol.pp_response
            other);
      (match find doomed_id with
      | Protocol.Timed_out -> ()
      | other ->
          Alcotest.failf "expired deadline: expected Timed_out, got %a"
            Protocol.pp_response other);
      let m = Server.metrics h.server in
      Alcotest.(check bool) "timeout counted" true
        (Registry.counter_value m.Serve_metrics.timed_out_total > 0);
      Client.close c)

(* ---------------------------------------------------- drain and crash *)

let test_graceful_drain_checkpoints_shards () =
  let dir = fresh_dir () in
  let sh, _ =
    Shards.open_or_create ~fsync:false ~build:small_config ~seed:42 ~shards:2
      ~target_accuracy:0.9 ~space:l2 ~encode ~decode ~dir ~data:seed_data ()
  in
  let server = Server.start ~decode Server.default_config sh in
  let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port server) () in
  let v = Array.init 4 (fun i -> 70. +. float_of_int i) in
  (match Client.insert c ~payload:(encode v) with
  | Protocol.Inserted _ -> ()
  | other -> Alcotest.failf "expected Inserted, got %a" Protocol.pp_response other);
  let size_before = Shards.size sh in
  Client.close c;
  Server.stop server;
  Server.stop server;  (* idempotent *)
  Server.wait server;
  (* Reopen: the drain checkpointed, so recovery replays nothing. *)
  let sh2, recoveries =
    Shards.open_or_create ~fsync:false ~build:small_config ~seed:42 ~shards:2
      ~target_accuracy:0.9 ~space:l2 ~encode ~decode ~dir ()
  in
  Array.iteri
    (fun i (r : Durable.recovery) ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d: no replay debt after drain" i)
        0 r.Durable.replayed_ops;
      match r.Durable.source with
      | `Snapshot _ -> ()
      | _ -> Alcotest.failf "shard %d: expected snapshot recovery" i)
    recoveries;
  Alcotest.(check int) "state survived the drain" size_before (Shards.size sh2);
  Shards.close sh2

let test_kill_during_drain_checkpoint_recovers () =
  let dir = fresh_dir () in
  let sh, _ =
    Shards.open_or_create ~fsync:false ~build:small_config ~seed:42 ~shards:2
      ~target_accuracy:0.9 ~space:l2 ~encode ~decode ~dir ~data:seed_data ()
  in
  let server = Server.start ~decode Server.default_config sh in
  let c = Client.connect ~host:"127.0.0.1" ~port:(Server.port server) () in
  let v = Array.init 4 (fun i -> 80. +. float_of_int i) in
  (match Client.insert c ~payload:(encode v) with
  | Protocol.Inserted _ -> ()
  | other -> Alcotest.failf "expected Inserted, got %a" Protocol.pp_response other);
  let size_before = Shards.size sh in
  Client.close c;
  (* Crash injected inside the drain's checkpoint: the stop must still
     tear the server down, and the directory must recover to the exact
     pre- or post-checkpoint state. *)
  (match Server.stop ~kill:Durable.After_snapshot server with
  | () -> Alcotest.fail "expected the injected crash to surface"
  | exception Durable.Killed _ -> ());
  let sh2, _ =
    Shards.open_or_create ~fsync:false ~build:small_config ~seed:42 ~shards:2
      ~target_accuracy:0.9 ~space:l2 ~encode ~decode ~dir ()
  in
  Alcotest.(check int) "no operation lost to the crash" size_before
    (Shards.size sh2);
  Shards.close sh2

let test_draining_server_sheds_with_drain_verdict () =
  with_server (fun h ->
      (* stop in another thread while we watch the draining flag. *)
      Alcotest.(check bool) "not draining yet" false (Server.draining h.server))
(* with_server's finally runs the stop; the drain path itself is
   asserted by the metrics scrape and the graceful-drain test above. *)

(* ------------------------------------------------------------ metrics *)

let test_metrics_endpoint_scrapes () =
  with_server ~metrics_port:(Some 0) (fun h ->
      let c = connect h in
      for _ = 1 to 3 do
        ignore (Client.ping c)
      done;
      ignore (Client.search ~budget:1_000 c ~payload:(encode queries.(0)));
      Client.close c;
      let mport =
        match Server.metrics_port h.server with
        | Some p -> p
        | None -> Alcotest.fail "metrics listener missing"
      in
      let fd = raw_connect mport in
      ignore
        (Unix.write_substring fd "GET /metrics HTTP/1.0\r\n\r\n" 0
           (String.length "GET /metrics HTTP/1.0\r\n\r\n"));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec slurp () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            slurp ()
      in
      slurp ();
      Unix.close fd;
      let body = Buffer.contents buf in
      Alcotest.(check bool) "HTTP 200" true
        (String.length body > 12 && String.sub body 0 12 = "HTTP/1.0 200");
      let payload =
        let sep = "\r\n\r\n" in
        let rec find i =
          if i + 4 > String.length body then
            Alcotest.fail "no body in metrics response"
          else if String.sub body i 4 = sep then
            String.sub body (i + 4) (String.length body - i - 4)
          else find (i + 1)
        in
        find 0
      in
      let samples = Registry.parse_exposition payload in
      let value name =
        match List.assoc_opt name samples with
        | Some v -> v
        | None -> Alcotest.failf "missing sample %s" name
      in
      Alcotest.(check bool) "requests counted" true
        (value "dbh_serve_requests_total" >= 4.);
      Alcotest.(check bool) "batches ran" true (value "dbh_serve_batches_total" >= 1.);
      Alcotest.(check bool) "not draining" true (value "dbh_serve_draining" = 0.))

(* ------------------------------------------------------------ loadgen *)

let test_loadgen_reports () =
  with_server (fun h ->
      let payloads = Array.map encode (test_db 99 16) in
      let report =
        Loadgen.run
          {
            Loadgen.host = "127.0.0.1";
            port = Server.port h.server;
            connections = 2;
            duration = 0.5;
            rate = None;
            tenants = [];
            deadline_ms = 5_000;
            budget = 2_000;
            probes = 0;
            radius = 0;
            payloads;
            seed = 7;
          }
      in
      Alcotest.(check bool) "sent some" true (report.Loadgen.sent > 0);
      Alcotest.(check bool) "served some" true (report.Loadgen.ok > 0);
      Alcotest.(check int) "no transport errors" 0 report.Loadgen.errors;
      Alcotest.(check bool) "accounting adds up" true
        (report.Loadgen.ok + report.Loadgen.shed + report.Loadgen.timed_out
         + report.Loadgen.errors
        <= report.Loadgen.sent);
      Alcotest.(check bool) "latency percentiles ordered" true
        (report.Loadgen.p50_ms <= report.Loadgen.p99_ms
        && report.Loadgen.p99_ms <= report.Loadgen.max_ms);
      let json = Loadgen.report_json report in
      Alcotest.(check bool) "json has goodput" true
        (contains ~needle:"goodput_qps" json))

let test_loadgen_open_loop_paces () =
  with_server (fun h ->
      let payloads = Array.map encode (test_db 98 8) in
      let report =
        Loadgen.run
          {
            Loadgen.host = "127.0.0.1";
            port = Server.port h.server;
            connections = 2;
            duration = 0.6;
            rate = Some 40.;
            tenants = [ ("gold", 3.); ("free", 1.) ];
            deadline_ms = 5_000;
            budget = 1_000;
            probes = 0;
            radius = 0;
            payloads;
            seed = 11;
          }
      in
      (* 40 rps for 0.6 s is 24 requests; the open loop must not send
         wildly more than the schedule allows. *)
      Alcotest.(check bool) "open loop holds the schedule" true
        (report.Loadgen.sent <= 40);
      Alcotest.(check bool) "both tenants exercised" true
        (List.length report.Loadgen.per_tenant = 2))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        qsuite [ prop_request_roundtrip; prop_truncation_needs_more ]
        @ [
            Alcotest.test_case "request samples round-trip" `Quick
              test_request_roundtrip_samples;
            Alcotest.test_case "response samples round-trip" `Quick
              test_response_roundtrip_samples;
            Alcotest.test_case "single-bit flips detected" `Quick
              test_single_bit_flips_detected;
            Alcotest.test_case "oversize length dies before buffering" `Quick
              test_oversize_length_is_corrupt;
            Alcotest.test_case "garbage is corrupt" `Quick test_garbage_is_corrupt;
            Alcotest.test_case "well-framed garbage keeps framing" `Quick
              test_well_framed_garbage_keeps_framing;
            Alcotest.test_case "pipelined frames decode in sequence" `Quick
              test_pipelined_frames_decode_in_sequence;
          ] );
      ("bucket", [ Alcotest.test_case "token arithmetic" `Quick test_bucket_arithmetic ]);
      ( "admission",
        [
          Alcotest.test_case "deadline and budget derivation" `Quick
            test_admission_deadline_and_budget;
          Alcotest.test_case "sheds, never collapses" `Quick
            test_admission_sheds_dont_collapse;
          Alcotest.test_case "tenant token gauges" `Quick test_admission_tenant_tokens;
        ] );
      ( "server",
        [
          Alcotest.test_case "ping and stats" `Quick test_ping_and_stats;
          Alcotest.test_case "bit-identical to direct search" `Quick
            test_search_bit_identical_to_direct;
          Alcotest.test_case "insert/delete round-trip" `Quick
            test_insert_delete_roundtrip;
          Alcotest.test_case "pipelined requests all answered" `Quick
            test_pipelined_requests_all_answered;
          Alcotest.test_case "bad payloads get Bad_request" `Quick
            test_bad_payload_gets_bad_request;
          Alcotest.test_case "expired deadlines time out" `Quick
            test_expired_deadline_times_out;
          Alcotest.test_case "not draining while serving" `Quick
            test_draining_server_sheds_with_drain_verdict;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "torn frames at every offset" `Quick
            test_torn_frames_at_every_offset;
          Alcotest.test_case "bit flips never produce results" `Quick
            test_bit_flips_never_produce_results;
          Alcotest.test_case "slow loris is killed" `Quick test_slow_loris_is_killed;
          Alcotest.test_case "half-open sockets are reaped" `Quick
            test_half_open_sockets_are_reaped;
          Alcotest.test_case "oversize declaration kills the connection" `Quick
            test_oversize_declaration_kills_connection;
          Alcotest.test_case "slow reader never stalls serving" `Quick
            test_slow_reader_never_stalls_serving;
          Alcotest.test_case "overload flood sheds explicitly" `Quick
            test_overload_flood_sheds_explicitly;
          Alcotest.test_case "tenant isolation under flood" `Quick
            test_tenant_isolation_under_flood;
          Alcotest.test_case "concurrent clients with chaos" `Quick
            test_concurrent_clients_with_chaos;
        ] );
      ( "drain",
        [
          Alcotest.test_case "graceful drain checkpoints shards" `Quick
            test_graceful_drain_checkpoints_shards;
          Alcotest.test_case "kill during drain checkpoint recovers" `Quick
            test_kill_during_drain_checkpoint_recovers;
        ] );
      ( "metrics",
        [ Alcotest.test_case "endpoint scrapes" `Quick test_metrics_endpoint_scrapes ] );
      ( "loadgen",
        [
          Alcotest.test_case "reports a load run" `Quick test_loadgen_reports;
          Alcotest.test_case "open loop paces" `Quick test_loadgen_open_loop_paces;
        ] );
    ]
