(* Chaos tests for the durability layer: every single-byte corruption of
   a snapshot must surface as [Binio.Corrupt], a WAL truncated at any
   offset must replay exactly its valid prefix, a kill at any point
   inside a checkpoint must leave the directory recoverable, and an
   index closed and reopened must answer queries bit-for-bit like one
   that never restarted — including under a domain pool
   (DBH_TEST_DOMAINS, default 2). *)

module Rng = Dbh_util.Rng
module Pool = Dbh_util.Pool
module Binio = Dbh_util.Binio
module Crc32 = Dbh_util.Crc32
module Envelope = Dbh_persist.Envelope
module Wal = Dbh_persist.Wal
module Layout = Dbh_persist.Layout
module Space = Dbh_space.Space
module Minkowski = Dbh_metrics.Minkowski
module Index = Dbh.Index
module Builder = Dbh.Builder
module Hierarchical = Dbh.Hierarchical
module Online = Dbh.Online
module Durable = Dbh.Online.Durable

let domains =
  match Sys.getenv_opt "DBH_TEST_DOMAINS" with
  | None -> 2
  | Some s -> (
      match int_of_string_opt s with
      | Some d when d >= 1 -> d
      | _ -> invalid_arg "DBH_TEST_DOMAINS must be a positive integer")

let l2 = Minkowski.l2_space

let small_config =
  { Builder.default_config with num_pivots = 20; num_sample_queries = 60; db_sample = 150 }

let test_db seed n =
  let rng = Rng.create seed in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:6 ~dim:4 n in
  db

let encode (v : float array) =
  let buf = Buffer.create 64 in
  Binio.write_float_array buf v;
  Buffer.contents buf

let decode s =
  let r = Binio.reader s in
  let v = Binio.read_float_array r in
  if not (Binio.at_end r) then raise (Binio.Corrupt "trailing bytes in vector");
  v

(* ------------------------------------------------------- file helpers *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dbh-persist-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir d 0o755;
  d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let flip_byte data i =
  let b = Bytes.of_string data in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
  Bytes.to_string b

let expect_corrupt what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Corrupt, got a value" what
  | exception Binio.Corrupt _ -> ()
  | exception e -> Alcotest.failf "%s: expected Corrupt, got %s" what (Printexc.to_string e)

(* ------------------------------------------------------------- crc32 *)

let test_crc_known_vectors () =
  Alcotest.(check int) "check vector" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "fox" 0x414FA339
    (Crc32.string "The quick brown fox jumps over the lazy dog");
  Alcotest.(check int) "empty" 0 (Crc32.string "")

let test_crc_incremental_matches_whole () =
  let s = "the incremental interface must chain like the one-shot one" in
  for cut = 0 to String.length s do
    let a = String.sub s 0 cut and b = String.sub s cut (String.length s - cut) in
    Alcotest.(check int)
      (Printf.sprintf "cut at %d" cut)
      (Crc32.string s)
      (Crc32.string ~crc:(Crc32.string a) b)
  done

let test_crc_detects_any_single_byte_flip () =
  let s = "every single corrupted byte must change the checksum" in
  let reference = Crc32.string s in
  for i = 0 to String.length s - 1 do
    if Crc32.string (flip_byte s i) = reference then
      Alcotest.failf "flip at %d not detected" i
  done

(* ---------------------------------------------------------- envelope *)

let sample_payload = String.init 100 (fun i -> Char.chr ((i * 7) land 0xFF))

let test_envelope_round_trip () =
  let image = Envelope.wrap ~kind:"test" ~version:3 sample_payload in
  let header, payload = Envelope.decode image in
  Alcotest.(check string) "payload" sample_payload payload;
  Alcotest.(check string) "kind" "test" header.Envelope.kind;
  Alcotest.(check int) "version" 3 header.Envelope.version

let test_envelope_every_byte_flip_detected () =
  let image = Envelope.wrap ~kind:"test" ~version:1 sample_payload in
  for i = 0 to String.length image - 1 do
    expect_corrupt
      (Printf.sprintf "flip at byte %d" i)
      (fun () -> Envelope.decode (flip_byte image i))
  done

let test_envelope_every_truncation_detected () =
  let image = Envelope.wrap ~kind:"test" ~version:1 sample_payload in
  for len = 0 to String.length image - 1 do
    expect_corrupt
      (Printf.sprintf "truncated to %d" len)
      (fun () -> Envelope.decode (String.sub image 0 len))
  done;
  expect_corrupt "trailing garbage" (fun () -> Envelope.decode (image ^ "x"))

let test_envelope_kind_and_version_checked () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "e.dbh" in
  Envelope.save ~path ~kind:"index" ~version:2 sample_payload;
  Alcotest.(check string) "same kind/version" sample_payload
    (Envelope.read_expect ~kind:"index" ~version:2 ~path);
  expect_corrupt "wrong kind" (fun () -> Envelope.read_expect ~kind:"online" ~version:2 ~path);
  expect_corrupt "wrong version" (fun () ->
      Envelope.read_expect ~kind:"index" ~version:1 ~path)

let test_write_atomic_replaces_and_leaves_no_temp () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "file.bin" in
  Envelope.write_atomic ~path "first";
  Envelope.write_atomic ~path "second";
  Alcotest.(check string) "replaced" "second" (read_file path);
  (* A stray temp file from an interrupted writer must not confuse
     anything: it is not the target and the next write still lands. *)
  write_file (Filename.concat dir "file.bin.stray.tmp") "junk";
  Envelope.write_atomic ~path "third";
  Alcotest.(check string) "replaced again" "third" (read_file path);
  let others =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> f <> "file.bin" && f <> "file.bin.stray.tmp")
  in
  Alcotest.(check (list string)) "no temp residue" [] others

(* --------------------------------------------------------------- wal *)

let wal_payloads =
  [| "a"; String.make 40 'b'; ""; "payload with \000 bytes \255"; String.make 7 'z' |]

let write_wal path =
  let w = Wal.create ~fsync:false ~path () in
  Array.iter (fun p -> ignore (Wal.append w p)) wal_payloads;
  Wal.close w

let test_wal_round_trip () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "w.log" in
  write_wal path;
  let scan = Wal.scan ~path in
  Alcotest.(check bool) "not torn" false scan.Wal.torn;
  Alcotest.(check (array string)) "payloads" wal_payloads scan.Wal.records

let test_wal_truncation_at_every_offset () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "w.log" in
  write_wal path;
  let full = read_file path in
  (* Offsets of record boundaries: cutting exactly there is a clean end,
     anywhere else is a torn tail losing only records at or after the cut. *)
  let boundaries =
    Array.to_list wal_payloads
    |> List.fold_left (fun acc p -> (List.hd acc + 24 + String.length p) :: acc) [ 0 ]
    |> List.rev
  in
  for cut = 0 to String.length full - 1 do
    let scan = Wal.scan_string (String.sub full 0 cut) in
    let complete = List.length (List.filter (fun b -> b <= cut) boundaries) - 1 in
    Alcotest.(check int) (Printf.sprintf "records at cut %d" cut) complete
      (Array.length scan.Wal.records);
    Alcotest.(check bool)
      (Printf.sprintf "torn at cut %d" cut)
      (not (List.mem cut boundaries))
      scan.Wal.torn
  done

let test_wal_every_byte_flip_detected () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "w.log" in
  write_wal path;
  let full = read_file path in
  for i = 0 to String.length full - 1 do
    let scan = Wal.scan_string (flip_byte full i) in
    if (not scan.Wal.torn) || Array.length scan.Wal.records >= Array.length wal_payloads
    then Alcotest.failf "flip at byte %d survived the scan" i
  done

let test_wal_append_after_torn_tail () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "w.log" in
  write_wal path;
  let full = read_file path in
  (* Tear the last record in half, then append through the normal path:
     the torn bytes must be truncated away, not buried. *)
  write_file path (String.sub full 0 (String.length full - 3));
  let w, scan = Wal.open_append ~fsync:false ~path () in
  Alcotest.(check bool) "was torn" true scan.Wal.torn;
  Alcotest.(check int) "prefix survived" (Array.length wal_payloads - 1)
    (Array.length scan.Wal.records);
  let seq = Wal.append w "appended" in
  Wal.close w;
  Alcotest.(check int) "sequence continues" (Array.length wal_payloads) seq;
  let rescan = Wal.scan ~path in
  Alcotest.(check bool) "clean after append" false rescan.Wal.torn;
  Alcotest.(check string) "appended record last" "appended"
    rescan.Wal.records.(Array.length rescan.Wal.records - 1)

(* ---------------------------------------------- index / hierarchical *)

let build_index seed n =
  let rng = Rng.create seed in
  let db = test_db (seed + 1) n in
  let prepared = Builder.prepare ~rng ~space:l2 ~config:small_config db in
  match Builder.single ~rng ~prepared ~db ~target_accuracy:0.85 ~config:small_config () with
  | Some (index, _) -> (index, db)
  | None -> Alcotest.fail "single-level build unreachable for test config"

let test_index_save_load_round_trip () =
  let index, db = build_index 11 60 in
  let dir = fresh_dir () in
  let path = Filename.concat dir "index.dbh" in
  Index.save ~encode ~path index;
  let loaded = Index.load ~decode ~space:l2 ~path in
  let queries = test_db 99 20 in
  Array.iter
    (fun q ->
      let a = Index.search index q and b = Index.search loaded q in
      if a <> b then Alcotest.fail "loaded index answers differently")
    queries;
  ignore db

let test_index_every_byte_flip_detected () =
  let index, _ = build_index 12 40 in
  let dir = fresh_dir () in
  let path = Filename.concat dir "index.dbh" in
  Index.save ~encode ~path index;
  let full = read_file path in
  for i = 0 to String.length full - 1 do
    write_file path (flip_byte full i);
    expect_corrupt
      (Printf.sprintf "flip at byte %d" i)
      (fun () -> Index.load ~decode ~space:l2 ~path)
  done

let test_index_decode_failure_is_corrupt () =
  let index, _ = build_index 13 40 in
  let dir = fresh_dir () in
  let path = Filename.concat dir "index.dbh" in
  Index.save ~encode ~path index;
  let failing_decode (_ : string) = failwith "user codec exploded" in
  expect_corrupt "raising decode" (fun () ->
      Index.load ~decode:failing_decode ~space:l2 ~path)

let build_hierarchical seed n =
  let rng = Rng.create seed in
  let db = test_db (seed + 1) n in
  let prepared = Builder.prepare ~rng ~space:l2 ~config:small_config db in
  Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config:small_config ()

let test_hierarchical_save_load_round_trip () =
  let h = build_hierarchical 21 60 in
  let dir = fresh_dir () in
  let path = Filename.concat dir "h.dbh" in
  Hierarchical.save ~encode ~path h;
  let loaded = Hierarchical.load ~decode ~space:l2 ~path in
  let queries = test_db 98 20 in
  Array.iter
    (fun q ->
      let a = Hierarchical.search h q and b = Hierarchical.search loaded q in
      if a <> b then Alcotest.fail "loaded hierarchical answers differently")
    queries

let test_hierarchical_corruption_detected () =
  let h = build_hierarchical 22 40 in
  let dir = fresh_dir () in
  let path = Filename.concat dir "h.dbh" in
  Hierarchical.save ~encode ~path h;
  let full = read_file path in
  (* Sampled offsets: the per-byte guarantee is carried by the envelope
     CRC, which the index-file test exercises exhaustively on a real
     file; this confirms the hierarchical path goes through the same
     verified decode. *)
  let stride = max 7 (String.length full / 200) in
  let i = ref 0 in
  while !i < String.length full do
    write_file path (flip_byte full !i);
    expect_corrupt
      (Printf.sprintf "flip at byte %d" !i)
      (fun () -> Hierarchical.load ~decode ~space:l2 ~path);
    i := !i + stride
  done

(* ------------------------------------------------------------ durable *)

type op = Ins of float array | Del of int

let apply_online o = function
  | Ins v -> ignore (Online.insert o v)
  | Del h -> Online.delete o h

let apply_durable d = function
  | Ins v -> ignore (Durable.insert d v)
  | Del h -> Durable.delete d h

(* An op stream over fresh vectors, with enough inserts to cross the
   1.5× rebuild threshold at least once. *)
let op_stream seed n =
  let extra = test_db (seed + 50) n in
  List.concat_map
    (fun i ->
      if i mod 4 = 3 then [ Ins extra.(i); Del (i / 2) ] else [ Ins extra.(i) ])
    (List.init n Fun.id)

let seed_db = test_db 31 50

let make_twin () =
  Online.create ~rng:(Rng.create 42) ~space:l2 ~config:small_config ~rebuild_factor:1.5
    ~target_accuracy:0.9 seed_db

let make_durable ?pool dir =
  Durable.open_or_create ?pool ~rng:(Rng.create 42) ~space:l2 ~config:small_config
    ~rebuild_factor:1.5 ~target_accuracy:0.9 ~encode ~decode ~dir ~data:seed_db ()

let reopen ?pool dir =
  Durable.open_or_create ?pool ~rng:(Rng.create 42) ~space:l2 ~config:small_config
    ~rebuild_factor:1.5 ~target_accuracy:0.9 ~encode ~decode ~dir ()

let queries = test_db 77 25

let check_equiv msg twin dur =
  Alcotest.(check int) (msg ^ ": size") (Online.size twin) (Durable.size dur);
  Alcotest.(check bool)
    (msg ^ ": alive handles")
    true
    (Online.alive_handles twin = Online.alive_handles (Durable.online dur));
  Alcotest.(check int)
    (msg ^ ": rebuilds")
    (Online.rebuilds twin)
    (Online.rebuilds (Durable.online dur));
  Array.iteri
    (fun i q ->
      let a = Online.search twin q and b = Durable.search dur q in
      if a <> b then Alcotest.failf "%s: query %d differs after restart" msg i)
    queries

let test_durable_fresh_then_reopen_equivalent () =
  let dir = fresh_dir () in
  let twin = make_twin () in
  let d, rec1 = make_durable dir in
  Alcotest.(check bool) "fresh" true (rec1.Durable.source = `Fresh);
  let ops = op_stream 61 40 in
  List.iter (apply_online twin) ops;
  List.iter (apply_durable d) ops;
  check_equiv "before close" twin d;
  Durable.close d;
  (* Close without checkpoint: reopening must replay every op. *)
  let d2, rec2 = reopen dir in
  Alcotest.(check int) "all ops replayed" (List.length ops) rec2.Durable.replayed_ops;
  Alcotest.(check bool) "no torn tail" false rec2.Durable.torn_tail;
  (match rec2.Durable.source with
  | `Snapshot _ -> ()
  | _ -> Alcotest.fail "expected recovery from a snapshot");
  check_equiv "after replay" twin d2;
  (* Keep operating after the restart: the generator state must have
     survived, so further rebuilds stay in lockstep. *)
  let more = op_stream 62 30 in
  List.iter (apply_online twin) more;
  List.iter (apply_durable d2) more;
  check_equiv "after post-restart ops" twin d2;
  Durable.close d2

let test_durable_checkpoint_then_reopen () =
  let dir = fresh_dir () in
  let twin = make_twin () in
  let d, _ = make_durable dir in
  let ops1 = op_stream 63 25 and ops2 = op_stream 64 20 in
  List.iter (apply_online twin) ops1;
  List.iter (apply_durable d) ops1;
  Durable.checkpoint d;
  Alcotest.(check int) "wal drained" 0 (Durable.wal_ops d);
  Alcotest.(check int) "generation advanced" 2 (Durable.generation d);
  List.iter (apply_online twin) ops2;
  List.iter (apply_durable d) ops2;
  Durable.close d;
  let d2, rec2 = reopen dir in
  Alcotest.(check int) "only post-checkpoint ops replayed" (List.length ops2)
    rec2.Durable.replayed_ops;
  check_equiv "after checkpoint+replay" twin d2;
  Durable.close d2

let test_durable_checkpoint_prunes_generations () =
  let dir = fresh_dir () in
  let d, _ = make_durable dir in
  List.iter (apply_durable d) (op_stream 65 10);
  Durable.checkpoint d;
  List.iter (apply_durable d) (op_stream 66 10);
  Durable.checkpoint d;
  Durable.close d;
  Alcotest.(check (list int)) "two snapshot generations" [ 2; 3 ]
    (Layout.snapshot_generations ~dir);
  Alcotest.(check (list int)) "two wal generations" [ 2; 3 ] (Layout.wal_generations ~dir)

let test_durable_corrupt_latest_falls_back () =
  let dir = fresh_dir () in
  let twin = make_twin () in
  let d, _ = make_durable dir in
  let ops1 = op_stream 67 25 and ops2 = op_stream 68 15 in
  List.iter (apply_online twin) ops1;
  List.iter (apply_durable d) ops1;
  Durable.checkpoint d;
  List.iter (apply_online twin) ops2;
  List.iter (apply_durable d) ops2;
  Durable.close d;
  (* Corrupt the newest snapshot.  Recovery must fall back to the
     previous generation and still reach the present through the log
     chain: the old generation's complete log plus the current one. *)
  let latest = Layout.snapshot_path ~dir 2 in
  write_file latest (flip_byte (read_file latest) 100);
  let d2, rec2 = reopen dir in
  (match rec2.Durable.source with
  | `Snapshot 1 -> ()
  | _ -> Alcotest.fail "expected fallback to generation 1");
  Alcotest.(check bool) "corruption reported" true (List.mem_assoc 2 rec2.Durable.skipped);
  Alcotest.(check int) "whole history replayed"
    (List.length ops1 + List.length ops2)
    rec2.Durable.replayed_ops;
  check_equiv "after fallback" twin d2;
  Durable.close d2

let test_durable_torn_wal_loses_only_the_tail () =
  let dir = fresh_dir () in
  let twin = make_twin () in
  let d, _ = make_durable dir in
  let ops = op_stream 69 30 in
  List.iter (apply_durable d) ops;
  Durable.close d;
  let wal = Layout.wal_path ~dir 1 in
  let full = read_file wal in
  write_file wal (String.sub full 0 (String.length full - 5));
  let d2, rec2 = reopen dir in
  Alcotest.(check bool) "torn tail reported" true rec2.Durable.torn_tail;
  Alcotest.(check int) "one op lost" (List.length ops - 1) rec2.Durable.replayed_ops;
  (* The twin applies everything but the final op — the only data a torn
     tail may cost. *)
  List.iter (apply_online twin) (List.filteri (fun i _ -> i < List.length ops - 1) ops);
  check_equiv "after torn replay" twin d2;
  Durable.close d2

let test_durable_kill_points_recover () =
  List.iter
    (fun kill ->
      let dir = fresh_dir () in
      let twin = make_twin () in
      let d, _ = make_durable dir in
      let ops = op_stream 70 20 in
      List.iter (apply_online twin) ops;
      List.iter (apply_durable d) ops;
      (match Durable.checkpoint ~kill d with
      | () -> Alcotest.fail "kill point did not fire"
      | exception Durable.Killed _ -> ());
      Durable.close d;
      let d2, _ = reopen dir in
      check_equiv "after killed checkpoint" twin d2;
      let more = op_stream 71 15 in
      List.iter (apply_online twin) more;
      List.iter (apply_durable d2) more;
      check_equiv "after killed checkpoint + ops" twin d2;
      Durable.close d2)
    [ Durable.After_snapshot; Durable.After_wal_switch ]

let test_durable_snapshot_every_byte_flip_detected () =
  let dir = fresh_dir () in
  let d, _ = make_durable dir in
  List.iter (apply_durable d) (op_stream 72 8);
  Durable.checkpoint d;
  Durable.close d;
  let path = Layout.snapshot_path ~dir 2 in
  let full = read_file path in
  (* Sampled offsets (see the hierarchical corruption test): the
     envelope CRC carries the exhaustive per-byte guarantee. *)
  let stride = max 7 (String.length full / 200) in
  let i = ref 0 in
  while !i < String.length full do
    write_file path (flip_byte full !i);
    expect_corrupt
      (Printf.sprintf "flip at byte %d" !i)
      (fun () -> Durable.verify_snapshot ~path);
    i := !i + stride
  done;
  write_file path full;
  let total, alive = Durable.verify_snapshot ~path in
  Alcotest.(check bool) "verify sees handles" true (total >= alive && alive > 0)

let test_durable_all_corrupt_rebuilds_or_refuses () =
  let dir = fresh_dir () in
  let d, _ = make_durable dir in
  List.iter (apply_durable d) (op_stream 73 10);
  Durable.checkpoint d;
  Durable.close d;
  List.iter
    (fun g ->
      let p = Layout.snapshot_path ~dir g in
      write_file p (flip_byte (read_file p) 50))
    (Layout.snapshot_generations ~dir);
  (* Without raw data there is nothing trustworthy to serve: refuse. *)
  expect_corrupt "no data" (fun () -> reopen dir);
  (* With raw data, degrade to a rebuild — never serve a corrupt index. *)
  let d2, rec2 = make_durable dir in
  Alcotest.(check bool) "rebuilt" true (rec2.Durable.source = `Rebuilt);
  Alcotest.(check bool) "skipped snapshots reported" true (rec2.Durable.skipped <> []);
  Alcotest.(check int) "rebuilt from data" (Array.length seed_db) (Durable.size d2);
  Durable.close d2

let test_durable_empty_dir_without_data_refused () =
  let dir = fresh_dir () in
  match reopen dir with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_durable_parallel_pool_equivalent () =
  Pool.with_pool ~domains (fun pool ->
      let dir = fresh_dir () in
      let twin = make_twin () in
      let d, _ = make_durable ~pool dir in
      let ops = op_stream 74 30 in
      List.iter (apply_online twin) ops;
      List.iter (apply_durable d) ops;
      Durable.checkpoint d;
      Durable.close d;
      let d2, _ = reopen ~pool dir in
      (* The pooled restart must match the sequential never-restarted
         twin: parallel rebuilds are bit-identical by construction, and
         recovery must preserve that. *)
      check_equiv "pooled restart vs sequential twin" twin d2;
      let batch = Durable.search_batch d2 queries in
      Array.iteri
        (fun i (r : _ Online.result) ->
          if r <> Online.search twin queries.(i) then
            Alcotest.failf "pooled batch query %d differs" i)
        batch;
      Durable.close d2)

let () =
  Alcotest.run "dbh-persist"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc_known_vectors;
          Alcotest.test_case "incremental = whole" `Quick test_crc_incremental_matches_whole;
          Alcotest.test_case "single byte flips detected" `Quick
            test_crc_detects_any_single_byte_flip;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "round trip" `Quick test_envelope_round_trip;
          Alcotest.test_case "every byte flip detected" `Quick
            test_envelope_every_byte_flip_detected;
          Alcotest.test_case "every truncation detected" `Quick
            test_envelope_every_truncation_detected;
          Alcotest.test_case "kind and version checked" `Quick
            test_envelope_kind_and_version_checked;
          Alcotest.test_case "atomic write replaces cleanly" `Quick
            test_write_atomic_replaces_and_leaves_no_temp;
        ] );
      ( "wal",
        [
          Alcotest.test_case "round trip" `Quick test_wal_round_trip;
          Alcotest.test_case "truncation at every offset" `Quick
            test_wal_truncation_at_every_offset;
          Alcotest.test_case "every byte flip detected" `Quick
            test_wal_every_byte_flip_detected;
          Alcotest.test_case "append after torn tail" `Quick test_wal_append_after_torn_tail;
        ] );
      ( "index-files",
        [
          Alcotest.test_case "index round trip" `Quick test_index_save_load_round_trip;
          Alcotest.test_case "index byte flips detected" `Slow
            test_index_every_byte_flip_detected;
          Alcotest.test_case "decode failure is Corrupt" `Quick
            test_index_decode_failure_is_corrupt;
          Alcotest.test_case "hierarchical round trip" `Quick
            test_hierarchical_save_load_round_trip;
          Alcotest.test_case "hierarchical corruption detected" `Slow
            test_hierarchical_corruption_detected;
        ] );
      ( "durable",
        [
          Alcotest.test_case "close/reopen equals never-restarted" `Quick
            test_durable_fresh_then_reopen_equivalent;
          Alcotest.test_case "checkpoint then reopen" `Quick test_durable_checkpoint_then_reopen;
          Alcotest.test_case "checkpoint prunes generations" `Quick
            test_durable_checkpoint_prunes_generations;
          Alcotest.test_case "corrupt latest falls back a generation" `Quick
            test_durable_corrupt_latest_falls_back;
          Alcotest.test_case "torn wal loses only the tail" `Quick
            test_durable_torn_wal_loses_only_the_tail;
          Alcotest.test_case "kill points recover" `Quick test_durable_kill_points_recover;
          Alcotest.test_case "snapshot byte flips detected" `Slow
            test_durable_snapshot_every_byte_flip_detected;
          Alcotest.test_case "all corrupt: rebuild or refuse" `Quick
            test_durable_all_corrupt_rebuilds_or_refuses;
          Alcotest.test_case "empty dir without data refused" `Quick
            test_durable_empty_dir_without_data_refused;
          Alcotest.test_case "pool restart equals sequential twin" `Quick
            test_durable_parallel_pool_equivalent;
        ] );
    ]
