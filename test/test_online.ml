(* Tests for the operational layer: Online (self-maintaining index),
   Diagnostics, Calibration, and the report plotting. *)

module Rng = Dbh_util.Rng
module Minkowski = Dbh_metrics.Minkowski
module Online = Dbh.Online
module Diagnostics = Dbh.Diagnostics
module Builder = Dbh.Builder
module Ground_truth = Dbh_eval.Ground_truth

let l2 = Minkowski.l2_space

let small_config =
  { Builder.default_config with num_pivots = 20; num_sample_queries = 60; db_sample = 150 }

let test_db seed n =
  let rng = Rng.create seed in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:8 ~dim:4 n in
  db

(* ----------------------------------------------------------------- Online *)

let test_online_basic_query () =
  let db = test_db 1 300 in
  let rng = Rng.create 2 in
  let t = Online.create ~rng ~space:l2 ~config:small_config ~target_accuracy:0.9 db in
  Alcotest.(check int) "size" 300 (Online.size t);
  Alcotest.(check int) "no rebuilds yet" 0 (Online.rebuilds t);
  match (Online.search t db.(5)).Online.nn with
  | Some (h, d) ->
      Alcotest.(check (float 1e-9)) "self found" 0. d;
      Alcotest.(check int) "handle is db position" 5 h
  | None -> Alcotest.fail "must answer"

let test_online_insert_and_handles () =
  let db = test_db 3 200 in
  let rng = Rng.create 4 in
  let t = Online.create ~rng ~space:l2 ~config:small_config ~target_accuracy:0.9 db in
  let obj = Array.make 4 7.5 in
  let h = Online.insert t obj in
  Alcotest.(check int) "next handle" 200 h;
  Alcotest.(check (array (float 0.))) "get returns object" obj (Online.get t h);
  (match (Online.search t obj).Online.nn with
  | Some (found, d) ->
      Alcotest.(check int) "found by handle" h found;
      Alcotest.(check (float 1e-9)) "zero" 0. d
  | None -> Alcotest.fail "inserted object must be found");
  Online.delete t h;
  Alcotest.check_raises "dead handle" (Invalid_argument "Online.get: dead or unknown handle")
    (fun () -> ignore (Online.get t h));
  match (Online.search t obj).Online.nn with
  | Some (found, _) -> Alcotest.(check bool) "not the deleted handle" true (found <> h)
  | None -> ()

let test_online_rebuild_preserves_handles () =
  let db = test_db 5 120 in
  let rng = Rng.create 6 in
  let t =
    Online.create ~rng ~space:l2 ~config:small_config ~rebuild_factor:1.5 ~target_accuracy:0.9 db
  in
  (* Push enough inserts to cross the 1.5x rebuild threshold. *)
  let handles = ref [] in
  let qrng = Rng.create 7 in
  for _ = 1 to 100 do
    let v = Array.init 4 (fun _ -> Rng.float_in qrng (-1.) 1.) in
    handles := (Online.insert t v, v) :: !handles
  done;
  Alcotest.(check bool) "rebuilt at least once" true (Online.rebuilds t >= 1);
  Alcotest.(check int) "size" 220 (Online.size t);
  (* Every handle still resolves to its own object, across generations. *)
  List.iter
    (fun (h, v) -> Alcotest.(check (array (float 0.))) "handle stable" v (Online.get t h))
    !handles;
  (* And queries return post-rebuild handles consistently. *)
  let h, v = List.nth !handles 13 in
  match (Online.search t v).Online.nn with
  | Some (found, d) ->
      Alcotest.(check (float 1e-9)) "zero distance" 0. d;
      (* Ties possible if another object coincides — distance check above
         is the real assertion; handle match is expected in practice. *)
      Alcotest.(check bool) "found a live handle" true (Online.get t found = Online.get t h)
  | None -> Alcotest.fail "must answer"

let test_online_mass_delete_triggers_rebuild () =
  let db = test_db 8 200 in
  let rng = Rng.create 9 in
  let t =
    Online.create ~rng ~space:l2 ~config:small_config ~rebuild_factor:1.5 ~target_accuracy:0.9 db
  in
  for h = 0 to 80 do
    Online.delete t h
  done;
  Alcotest.(check bool) "rebuilt after shrink" true (Online.rebuilds t >= 1);
  Alcotest.(check int) "size" 119 (Online.size t)

let test_online_accuracy_after_churn () =
  (* After heavy insert/delete churn (with rebuilds), retrieval accuracy
     against brute force over the surviving set stays high. *)
  let db = test_db 12 300 in
  let rng = Rng.create 13 in
  let t =
    Online.create ~rng ~space:l2 ~config:small_config ~rebuild_factor:1.5 ~target_accuracy:0.9 db
  in
  let qrng = Rng.create 14 in
  (* Delete a third of the originals, insert 200 fresh points. *)
  for h = 0 to 99 do
    Online.delete t (h * 3 mod 300)
  done;
  for _ = 1 to 200 do
    ignore (Online.insert t (Array.init 4 (fun _ -> Rng.float_in qrng (-1.) 1.)))
  done;
  Alcotest.(check bool) "churn caused rebuilds" true (Online.rebuilds t >= 1);
  (* Brute force over the alive set via handles 0..499. *)
  let alive =
    List.filter_map
      (fun h -> try Some (h, Online.get t h) with Invalid_argument _ -> None)
      (List.init 500 Fun.id)
  in
  let ok = ref 0 in
  let trials = 50 in
  for _ = 1 to trials do
    let q = Array.init 4 (fun _ -> Rng.float_in qrng (-1.) 1.) in
    let best_d =
      List.fold_left (fun acc (_, x) -> Float.min acc (Minkowski.l2 q x)) infinity alive
    in
    match (Online.search t q).Online.nn with
    | Some (_, d) when d <= best_d +. 1e-9 -> incr ok
    | Some _ | None -> ()
  done;
  let acc = float_of_int !ok /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.2f after churn" acc) true (acc > 0.7)

let test_online_guards () =
  let rng = Rng.create 10 in
  Alcotest.check_raises "empty" (Invalid_argument "Online.create: empty database") (fun () ->
      ignore (Online.create ~rng ~space:l2 ~target_accuracy:0.9 ([||] : float array array)));
  let db = test_db 11 150 in
  Alcotest.check_raises "factor" (Invalid_argument "Online.create: rebuild_factor must exceed 1")
    (fun () ->
      ignore (Online.create ~rng ~space:l2 ~rebuild_factor:1.0 ~target_accuracy:0.9 db))

(* ------------------------------------------------------------- Diagnostics *)

let test_diagnostics_healthy_index () =
  let db = test_db 21 400 in
  let rng = Rng.create 22 in
  let family = Dbh.Hash_family.make ~rng ~space:l2 ~num_pivots:20 ~threshold_sample:150 db in
  let index = Dbh.Index.build ~rng ~family ~db ~k:6 ~l:5 () in
  let s = Diagnostics.index_stats index in
  Alcotest.(check int) "tables" 5 s.Diagnostics.tables;
  Alcotest.(check int) "bits" 6 s.Diagnostics.bits_per_key;
  Alcotest.(check int) "objects" 400 s.Diagnostics.indexed_objects;
  Alcotest.(check bool) "many buckets" true (s.Diagnostics.non_empty_buckets > 5);
  Alcotest.(check bool) "healthy" true (Diagnostics.healthy s);
  (* The textual rendering leads with the table count. *)
  let text = Format.asprintf "%a" Diagnostics.pp_table_stats s in
  Alcotest.(check bool) "mentions l" true
    (String.length text >= 3 && String.sub text 0 3 = "l=5")

let test_diagnostics_degenerate_space () =
  (* A constant distance collapses every object into one bucket per
     table: diagnostics must flag it. *)
  let space = Dbh_space.Space.make ~name:"const" (fun (_ : int) (_ : int) -> 1.) in
  let db = Array.init 100 Fun.id in
  let rng = Rng.create 23 in
  let family = Dbh.Hash_family.make ~rng ~space ~num_pivots:10 ~threshold_sample:50 db in
  let index = Dbh.Index.build ~rng ~family ~db ~k:4 ~l:3 () in
  let s = Diagnostics.index_stats index in
  Alcotest.(check bool) "flagged" false (Diagnostics.healthy s)

let test_diagnostics_hierarchical_and_balance () =
  let db = test_db 24 300 in
  let rng = Rng.create 25 in
  let config = { small_config with levels = 3 } in
  let prepared = Builder.prepare ~rng ~space:l2 ~config db in
  let h = Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config () in
  let per_level = Diagnostics.hierarchical_stats h in
  Alcotest.(check int) "three levels" 3 (Array.length per_level);
  Array.iter
    (fun ((info : Dbh.Hierarchical.level_info), (s : Diagnostics.table_stats)) ->
      Alcotest.(check int) "l consistent" info.Dbh.Hierarchical.l s.Diagnostics.tables)
    per_level;
  let mean, mn, mx =
    Diagnostics.family_balance_profile ~rng prepared.Builder.family (Array.sub db 0 150)
  in
  Alcotest.(check bool) "balance straddles half" true (mn <= 0.5 && mx >= 0.5 && mean > 0.3 && mean < 0.7)

(* -------------------------------------------------------------- Calibration *)

let test_calibration_points () =
  let all = test_db 31 1100 in
  let db = Array.sub all 0 1000 in
  let queries = Array.sub all 1000 100 in
  let rng = Rng.create 32 in
  let truth = Ground_truth.compute ~space:l2 ~db ~queries () in
  let prepared = Builder.prepare ~rng ~space:l2 ~config:small_config db in
  let points =
    Dbh_eval.Calibration.single_level ~rng ~prepared ~db ~queries ~truth
      ~targets:[| 0.8; 0.9 |] ~config:small_config ()
  in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun (p : Dbh_eval.Calibration.point) ->
      Alcotest.(check bool) "prediction meets target" true
        (p.Dbh_eval.Calibration.predicted_accuracy >= p.Dbh_eval.Calibration.target);
      Alcotest.(check bool) "measured in [0,1]" true
        (p.Dbh_eval.Calibration.measured_accuracy >= 0.
        && p.Dbh_eval.Calibration.measured_accuracy <= 1.))
    points;
  let mae = Dbh_eval.Calibration.accuracy_mae points in
  Alcotest.(check bool) (Printf.sprintf "calibrated (MAE %.3f)" mae) true (mae < 0.25);
  let text = Format.asprintf "%a" Dbh_eval.Calibration.pp_points points in
  Alcotest.(check bool) "renders" true (String.length text > 50)

let test_calibration_guards () =
  Alcotest.check_raises "empty mae" (Invalid_argument "Calibration.accuracy_mae: no points")
    (fun () -> ignore (Dbh_eval.Calibration.accuracy_mae []))

let () =
  Alcotest.run "dbh_online"
    [
      ( "online",
        [
          Alcotest.test_case "basic query" `Quick test_online_basic_query;
          Alcotest.test_case "insert/get/delete" `Quick test_online_insert_and_handles;
          Alcotest.test_case "rebuild preserves handles" `Quick
            test_online_rebuild_preserves_handles;
          Alcotest.test_case "mass delete rebuilds" `Quick test_online_mass_delete_triggers_rebuild;
          Alcotest.test_case "accuracy after churn" `Quick test_online_accuracy_after_churn;
          Alcotest.test_case "guards" `Quick test_online_guards;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "healthy index" `Quick test_diagnostics_healthy_index;
          Alcotest.test_case "degenerate space flagged" `Quick test_diagnostics_degenerate_space;
          Alcotest.test_case "hierarchical + balance" `Quick
            test_diagnostics_hierarchical_and_balance;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "points" `Quick test_calibration_points;
          Alcotest.test_case "guards" `Quick test_calibration_guards;
        ] );
    ]
