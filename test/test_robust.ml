(* Tests for the hardened query pipeline: Guard (distance validation),
   Faulty_space (deterministic fault injection), Budget (per-query
   distance budgets) and Breaker (circuit breaker with linear-scan
   fallback). *)

module Rng = Dbh_util.Rng
module Space = Dbh_space.Space
module Minkowski = Dbh_metrics.Minkowski
module Builder = Dbh.Builder
module Online = Dbh.Online
module Budget = Dbh.Budget
module Guard = Dbh_robust.Guard
module Faulty_space = Dbh_robust.Faulty_space
module Breaker = Dbh_robust.Breaker

let l2 = Minkowski.l2_space

let small_config =
  { Builder.default_config with num_pivots = 20; num_sample_queries = 60; db_sample = 150 }

let test_db seed n =
  let rng = Rng.create seed in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:8 ~dim:4 n in
  db

(* A space whose behavior is selected by the first argument, to hit every
   anomaly class deterministically. *)
let toy_space =
  Space.make ~name:"toy" (fun a (_ : int) ->
      match a with
      | 0 -> Float.nan
      | 1 -> infinity
      | 2 -> neg_infinity
      | 3 -> -2.
      | 4 -> failwith "toy blew up"
      | _ -> 1.)

(* ------------------------------------------------------------------ Guard *)

let test_guard_passthrough () =
  let g, t = Guard.wrap l2 in
  let x = [| 0.; 0.; 0.; 0. |] and y = [| 3.; 4.; 0.; 0. |] in
  Alcotest.(check (float 1e-12)) "clean distance untouched" 5. (g.Space.distance x y);
  Alcotest.(check int) "calls counted" 1 (Guard.calls t);
  Alcotest.(check int) "no anomalies" 0 (Guard.anomalies t);
  Alcotest.(check bool) "name marked" true (g.Space.name = "guarded:" ^ l2.Space.name)

let test_guard_skip_policy () =
  let g, t = Guard.wrap ~policy:Guard.Skip toy_space in
  List.iter
    (fun a ->
      Alcotest.(check (float 0.)) "anomaly becomes +inf" infinity (g.Space.distance a 0))
    [ 0; 1; 2; 3; 4 ];
  Alcotest.(check (float 1e-12)) "clean passes" 1. (g.Space.distance 9 0);
  Alcotest.(check int) "calls" 6 (Guard.calls t);
  Alcotest.(check int) "anomalies" 5 (Guard.anomalies t);
  List.iter
    (fun kind -> Alcotest.(check int) (Guard.anomaly_name kind) 1 (Guard.count t kind))
    [ Guard.Nan; Guard.Pos_infinite; Guard.Neg_infinite; Guard.Negative; Guard.Exn ];
  Alcotest.(check (float 1e-9)) "rate" (5. /. 6.) (Guard.anomaly_rate t);
  Guard.reset t;
  Alcotest.(check int) "reset calls" 0 (Guard.calls t);
  Alcotest.(check int) "reset anomalies" 0 (Guard.anomalies t)

let test_guard_clamp_policy () =
  let g, _ = Guard.wrap ~policy:Guard.Clamp toy_space in
  Alcotest.(check (float 0.)) "nan -> +inf" infinity (g.Space.distance 0 0);
  Alcotest.(check (float 0.)) "+inf -> +inf" infinity (g.Space.distance 1 0);
  Alcotest.(check (float 0.)) "-inf -> 0" 0. (g.Space.distance 2 0);
  Alcotest.(check (float 0.)) "negative -> 0" 0. (g.Space.distance 3 0);
  Alcotest.(check (float 0.)) "exn -> +inf" infinity (g.Space.distance 4 0)

let test_guard_raise_policy () =
  let g, t = Guard.wrap ~policy:Guard.Raise toy_space in
  List.iter
    (fun a ->
      let raised =
        try
          ignore (g.Space.distance a 0);
          false
        with Guard.Invalid_distance _ -> true
      in
      Alcotest.(check bool) "raises Invalid_distance" true raised)
    [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "still tallied" 5 (Guard.anomalies t);
  Alcotest.(check (float 1e-12)) "clean still passes" 1. (g.Space.distance 9 0)

let test_guard_lets_budget_exhaustion_through () =
  (* Budget exhaustion raised below the guard (e.g. a budgeted space
     wrapper) must not be swallowed as a distance anomaly. *)
  let broke = Space.make ~name:"budgeted" (fun (_ : int) (_ : int) -> raise Budget.Exhausted) in
  let g, t = Guard.wrap ~policy:Guard.Skip broke in
  let raised = try ignore (g.Space.distance 0 0); false with Budget.Exhausted -> true in
  Alcotest.(check bool) "Exhausted propagates" true raised;
  Alcotest.(check int) "not counted as anomaly" 0 (Guard.anomalies t)

let test_guard_pp () =
  let g, t = Guard.wrap ~policy:Guard.Skip toy_space in
  ignore (g.Space.distance 0 0);
  ignore (g.Space.distance 9 0);
  let text = Format.asprintf "%a" Guard.pp t in
  Alcotest.(check bool) "mentions calls" true
    (String.length text > 0 && String.sub text 0 6 = "calls=")

(* ----------------------------------------------------------- Faulty_space *)

let classify space x y =
  match space.Space.distance x y with
  | d when Float.is_nan d -> `Nan
  | d when d < 0. -> `Negative
  | d -> `Value d
  | exception Faulty_space.Injected _ -> `Exn

let test_faulty_deterministic () =
  let cfg = Faulty_space.faults ~nan:0.1 ~exn_:0.05 ~negative:0.05 ~perturb:0.1 () in
  let run seed =
    let f, t = Faulty_space.wrap ~rng:(Rng.create seed) ~config:cfg l2 in
    let x = [| 0.; 0.; 0.; 0. |] and y = [| 1.; 0.; 0.; 0. |] in
    (Array.init 500 (fun _ -> classify f x y), t)
  in
  let a, ta = run 7 and b, tb = run 7 in
  Alcotest.(check bool) "same fault pattern at same seed" true (a = b);
  Alcotest.(check int) "same nan count" (Faulty_space.injected_nan ta)
    (Faulty_space.injected_nan tb);
  Alcotest.(check int) "same exn count" (Faulty_space.injected_exn ta)
    (Faulty_space.injected_exn tb);
  Alcotest.(check bool) "faults actually injected" true (Faulty_space.injected ta > 0);
  let c, _ = run 8 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_faulty_config_change_keeps_alignment () =
  (* Fault draws depend only on (pair, occurrence), never on the live
     configuration, so flipping the config mid-run leaves later faults
     identical to a space that had the config from the start. *)
  let cfg = Faulty_space.faults ~nan:0.1 ~exn_:0.05 ~negative:0.05 () in
  let x = [| 0.; 0.; 0.; 0. |] and y = [| 1.; 0.; 0.; 0. |] in
  let always, _ = Faulty_space.wrap ~rng:(Rng.create 9) ~config:cfg l2 in
  let toggled, handle = Faulty_space.wrap ~rng:(Rng.create 9) l2 in
  let a = Array.init 300 (fun _ -> classify always x y) in
  for _ = 1 to 100 do
    Alcotest.(check bool) "quiet space is clean" true (classify toggled x y = `Value 1.)
  done;
  Faulty_space.set_config handle cfg;
  for i = 100 to 299 do
    Alcotest.(check bool)
      (Printf.sprintf "call %d aligned" i)
      true
      (classify toggled x y = a.(i))
  done

let test_faulty_validation () =
  let bad = { Faulty_space.quiet with Faulty_space.nan_prob = 1.5 } in
  Alcotest.(check bool) "wrap rejects bad prob" true
    (try
       ignore (Faulty_space.wrap ~rng:(Rng.create 1) ~config:bad l2);
       false
     with Invalid_argument _ -> true);
  let _, t = Faulty_space.wrap ~rng:(Rng.create 1) l2 in
  Alcotest.(check bool) "set_config rejects bad prob" true
    (try
       Faulty_space.set_config t bad;
       false
     with Invalid_argument _ -> true)

let test_faulty_disable () =
  let cfg = Faulty_space.faults ~nan:1.0 () in
  let f, t = Faulty_space.wrap ~rng:(Rng.create 11) ~config:cfg l2 in
  let x = [| 0.; 0.; 0.; 0. |] in
  Alcotest.(check bool) "nan while enabled" true (classify f x x = `Nan);
  Faulty_space.disable t;
  Alcotest.(check bool) "clean after disable" true (classify f x x = `Value 0.);
  Alcotest.(check bool) "counters kept" true (Faulty_space.injected_nan t = 1)

(* ----------------------------------------------------------------- Budget *)

let test_budget_basics () =
  Alcotest.check_raises "negative limit" (Invalid_argument "Budget.create: negative limit")
    (fun () -> ignore (Budget.create (-1)));
  let b = Budget.create 3 in
  Alcotest.(check int) "limit" 3 (Budget.limit b);
  Alcotest.(check int) "spent" 0 (Budget.spent b);
  Budget.charge b;
  Budget.charge b;
  Budget.charge b;
  Alcotest.(check int) "all spent" 0 (Budget.remaining b);
  Alcotest.(check bool) "no refusal yet" false (Budget.exhausted b);
  let raised = try Budget.charge b; false with Budget.Exhausted -> true in
  Alcotest.(check bool) "fourth charge refused" true raised;
  Alcotest.(check bool) "now exhausted" true (Budget.exhausted b);
  Alcotest.(check int) "spend unchanged by refusal" 3 (Budget.spent b);
  let zero = Budget.create 0 in
  let raised = try Budget.charge zero; false with Budget.Exhausted -> true in
  Alcotest.(check bool) "zero budget refuses immediately" true raised;
  Alcotest.(check bool) "recognizer" true (Budget.is_exhausted_exn Budget.Exhausted);
  Alcotest.(check bool) "recognizer negative" false (Budget.is_exhausted_exn Not_found)

let test_index_query_budget () =
  (* Over randomized workloads the query never spends more distance
     evaluations than the budget allows, and [truncated] is set exactly
     when a charge was refused. *)
  let db = test_db 61 400 in
  let counted, counter = Space.with_counter l2 in
  let rng = Rng.create 62 in
  let family =
    Dbh.Hash_family.make ~rng ~space:counted ~num_pivots:20 ~threshold_sample:150 db
  in
  let index = Dbh.Index.build ~rng ~family ~db ~k:4 ~l:8 () in
  let qrng = Rng.create 63 in
  for _ = 1 to 100 do
    let q = Dbh_datasets.Vectors.perturb ~rng:qrng ~sigma:0.1 db.(Rng.int qrng 400) in
    let limit = 1 + Rng.int qrng 40 in
    let b = Budget.create limit in
    Space.reset counter;
    let r = Dbh.Index.query_with ~budget:b index q in
    Alcotest.(check bool)
      (Printf.sprintf "spend %d within limit %d" (Space.count counter) limit)
      true
      (Space.count counter <= limit);
    Alcotest.(check int) "every charge backed a real evaluation" (Budget.spent b)
      (Space.count counter);
    Alcotest.(check bool) "truncated iff a charge was refused" (Budget.exhausted b)
      r.Dbh.Index.truncated;
    if not r.Dbh.Index.truncated then begin
      let full = Dbh.Index.search index q in
      Alcotest.(check bool) "untruncated answer equals unbudgeted" true
        (full.Dbh.Index.nn = r.Dbh.Index.nn)
    end
  done

let test_hierarchical_query_budget () =
  let db = test_db 71 400 in
  let counted, counter = Space.with_counter l2 in
  let rng = Rng.create 72 in
  let prepared = Builder.prepare ~rng ~space:counted ~config:small_config db in
  let h = Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config:small_config () in
  let qrng = Rng.create 73 in
  for _ = 1 to 60 do
    let q = Dbh_datasets.Vectors.perturb ~rng:qrng ~sigma:0.1 db.(Rng.int qrng 400) in
    let limit = 1 + Rng.int qrng 60 in
    let b = Budget.create limit in
    Space.reset counter;
    let r = Dbh.Hierarchical.query_with ~budget:b h q in
    Alcotest.(check bool) "spend within limit" true (Space.count counter <= limit);
    Alcotest.(check bool) "truncated iff refused" (Budget.exhausted b) r.Dbh.Index.truncated;
    if not r.Dbh.Index.truncated then begin
      let full = Dbh.Hierarchical.search h q in
      Alcotest.(check bool) "untruncated = unbudgeted" true (full.Dbh.Index.nn = r.Dbh.Index.nn)
    end
  done

let test_online_query_budget () =
  let db = test_db 81 300 in
  let counted, counter = Space.with_counter l2 in
  let t = Online.create ~rng:(Rng.create 82) ~space:counted ~config:small_config
      ~target_accuracy:0.9 db
  in
  let qrng = Rng.create 83 in
  let tight_truncated = ref 0 in
  for _ = 1 to 30 do
    let q = Dbh_datasets.Vectors.perturb ~rng:qrng ~sigma:0.1 db.(Rng.int qrng 300) in
    let b = Budget.create 5 in
    Space.reset counter;
    let r = Online.query_with ~budget:b t q in
    Alcotest.(check bool) "spend within tight limit" true (Space.count counter <= 5);
    if r.Online.truncated then incr tight_truncated;
    let big = Budget.create 1_000_000 in
    let r' = Online.query_with ~budget:big t q in
    Alcotest.(check bool) "huge budget never truncates" false r'.Online.truncated;
    let full = Online.search t q in
    Alcotest.(check bool) "huge budget = unbudgeted" true (full.Online.nn = r'.Online.nn)
  done;
  Alcotest.(check bool) "tight budget truncates sometimes" true (!tight_truncated > 0)

(* ---------------------------------------------------------------- Breaker *)

let breaker_config =
  {
    Breaker.window = 10;
    anomaly_threshold = 0.02;
    max_bucket_fraction = 0.5;
    open_cooldown = 10;
    half_open_probes = 5;
    cooldown_backoff = None;
  }

let test_breaker_validation () =
  let db = test_db 91 100 in
  let online =
    Online.create ~rng:(Rng.create 92) ~space:l2 ~config:small_config ~target_accuracy:0.9 db
  in
  Alcotest.check_raises "window" (Invalid_argument "Breaker.create: window must be >= 1")
    (fun () -> ignore (Breaker.create ~config:{ breaker_config with Breaker.window = 0 } online))

(* Acceptance scenario from the issue: with 5% NaN + 1% exceptions at a
   fixed seed, a Guard(Skip)-wrapped index completes a 200-query workload
   with zero crashes, reports non-zero anomaly counters, demonstrably
   trips to linear scan, and recovers once the faults stop. *)
let test_breaker_trip_and_recover () =
  let db = test_db 101 300 in
  let faulty, faults = Faulty_space.wrap ~rng:(Rng.create 102) l2 in
  let guarded, guard = Guard.wrap ~policy:Guard.Skip faulty in
  let online =
    Online.create ~rng:(Rng.create 103) ~space:guarded ~config:small_config
      ~target_accuracy:0.9 db
  in
  let breaker = Breaker.create ~config:breaker_config ~guard online in
  let qrng = Rng.create 104 in
  let next_query () = Dbh_datasets.Vectors.perturb ~rng:qrng ~sigma:0.1 db.(Rng.int qrng 300) in
  (* Healthy phase: everything through the index, breaker stays closed. *)
  for _ = 1 to 20 do
    let out = Breaker.search breaker (next_query ()) in
    Alcotest.(check bool) "healthy served by index" true (out.Breaker.served_by = `Index)
  done;
  Alcotest.(check int) "no trips while healthy" 0 (Breaker.trips breaker);
  Alcotest.(check bool) "closed while healthy" true (Breaker.state breaker = Breaker.Closed);
  (* Fault phase: 200 queries under 5% NaN + 1% exceptions. *)
  Faulty_space.set_config faults (Faulty_space.faults ~nan:0.05 ~exn_:0.01 ());
  let linear = ref 0 and answered = ref 0 in
  for _ = 1 to 200 do
    let out = Breaker.search breaker (next_query ()) in
    (match out.Breaker.served_by with `Linear_scan -> incr linear | `Index -> ());
    if out.Breaker.result.Online.nn <> None then incr answered
  done;
  Alcotest.(check bool) "anomaly counters non-zero" true (Guard.anomalies guard > 0);
  Alcotest.(check bool) "nan anomalies seen" true (Guard.count guard Guard.Nan > 0);
  Alcotest.(check bool) "exn anomalies seen" true (Guard.count guard Guard.Exn > 0);
  Alcotest.(check bool) "breaker tripped" true (Breaker.trips breaker >= 1);
  Alcotest.(check bool) "linear fallback served queries" true (!linear > 0);
  Alcotest.(check int) "fallback counter agrees" !linear (Breaker.fallback_queries breaker);
  Alcotest.(check bool)
    (Printf.sprintf "answered %d/200 under faults" !answered)
    true (!answered > 150);
  (* Recovery phase: faults stop; the breaker must close again. *)
  Faulty_space.disable faults;
  let recovered = ref false and steps = ref 0 in
  while (not !recovered) && !steps < 200 do
    incr steps;
    ignore (Breaker.search breaker (next_query ()));
    if Breaker.state breaker = Breaker.Closed then recovered := true
  done;
  Alcotest.(check bool) "recovered to closed" true !recovered;
  Alcotest.(check bool) "recovery counted" true (Breaker.recoveries breaker >= 1);
  Alcotest.(check bool) "fault-triggered rebuild happened" true (Online.rebuilds online >= 1);
  (* Handles stayed stable across the fault-triggered rebuilds. *)
  for h = 0 to 19 do
    Alcotest.(check (array (float 0.))) "handle stable across rebuild" db.(h)
      (Online.get online h)
  done;
  (* And post-recovery retrieval is exact again. *)
  match (Breaker.search breaker db.(7)).Breaker.result.Online.nn with
  | Some (h, d) ->
      Alcotest.(check int) "self query finds itself" 7 h;
      Alcotest.(check (float 1e-9)) "zero distance" 0. d
  | None -> Alcotest.fail "recovered index must answer"

let test_breaker_fallback_budget_and_exactness () =
  let db = test_db 111 200 in
  let faulty, faults = Faulty_space.wrap ~rng:(Rng.create 112) l2 in
  let guarded, guard = Guard.wrap faulty in
  let online =
    Online.create ~rng:(Rng.create 113) ~space:guarded ~config:small_config
      ~target_accuracy:0.9 db
  in
  let cfg = { breaker_config with Breaker.window = 5 } in
  let breaker = Breaker.create ~config:cfg ~guard online in
  let qrng = Rng.create 114 in
  let next_query () = Dbh_datasets.Vectors.perturb ~rng:qrng ~sigma:0.1 db.(Rng.int qrng 200) in
  (* Saturate with NaN until the breaker opens. *)
  Faulty_space.set_config faults (Faulty_space.faults ~nan:0.9 ());
  let steps = ref 0 in
  while Breaker.state breaker <> Breaker.Open && !steps < 50 do
    incr steps;
    ignore (Breaker.search breaker (next_query ()))
  done;
  Alcotest.(check bool) "breaker open" true (Breaker.state breaker = Breaker.Open);
  Faulty_space.disable faults;
  (* The fallback honors per-query budgets. *)
  let out = Breaker.search ~opts:(Dbh.Query_opts.make ~budget:7 ()) breaker (next_query ()) in
  Alcotest.(check bool) "served by fallback" true (out.Breaker.served_by = `Linear_scan);
  Alcotest.(check bool) "truncated" true out.Breaker.result.Online.truncated;
  Alcotest.(check bool) "within budget" true
    (out.Breaker.result.Online.stats.Dbh.Index.lookup_cost <= 7);
  (* And, unbudgeted, it is exact: same nearest distance as brute force. *)
  let probe = next_query () in
  let out = Breaker.search breaker probe in
  (match out.Breaker.served_by with
  | `Linear_scan -> ()
  | `Index -> Alcotest.fail "expected fallback while open");
  let best = Array.fold_left (fun acc x -> Float.min acc (Minkowski.l2 probe x)) infinity db in
  match out.Breaker.result.Online.nn with
  | Some (_, d) -> Alcotest.(check (float 1e-9)) "fallback is exact" best d
  | None -> Alcotest.fail "fallback must answer"

let () =
  Alcotest.run "dbh_robust"
    [
      ( "guard",
        [
          Alcotest.test_case "passthrough" `Quick test_guard_passthrough;
          Alcotest.test_case "skip policy" `Quick test_guard_skip_policy;
          Alcotest.test_case "clamp policy" `Quick test_guard_clamp_policy;
          Alcotest.test_case "raise policy" `Quick test_guard_raise_policy;
          Alcotest.test_case "budget exhaustion passes through" `Quick
            test_guard_lets_budget_exhaustion_through;
          Alcotest.test_case "pp" `Quick test_guard_pp;
        ] );
      ( "faulty_space",
        [
          Alcotest.test_case "deterministic at fixed seed" `Quick test_faulty_deterministic;
          Alcotest.test_case "config change keeps alignment" `Quick
            test_faulty_config_change_keeps_alignment;
          Alcotest.test_case "validation" `Quick test_faulty_validation;
          Alcotest.test_case "disable" `Quick test_faulty_disable;
        ] );
      ( "budget",
        [
          Alcotest.test_case "basics" `Quick test_budget_basics;
          Alcotest.test_case "index query bound" `Quick test_index_query_budget;
          Alcotest.test_case "hierarchical query bound" `Quick test_hierarchical_query_budget;
          Alcotest.test_case "online query bound" `Quick test_online_query_budget;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "validation" `Quick test_breaker_validation;
          Alcotest.test_case "trip and recover under faults" `Quick test_breaker_trip_and_recover;
          Alcotest.test_case "fallback budget + exactness" `Quick
            test_breaker_fallback_budget_and_exactness;
        ] );
    ]
