(* Tests for the dynamic and persistence features: Store, insert/delete,
   multi-probe and budgeted queries, binary save/load roundtrips. *)

module Rng = Dbh_util.Rng
module Space = Dbh_space.Space
module Minkowski = Dbh_metrics.Minkowski
module Hash_family = Dbh.Hash_family
module Store = Dbh.Store
module Index = Dbh.Index
module Hierarchical = Dbh.Hierarchical
module Builder = Dbh.Builder

let l2 = Minkowski.l2_space
let check_loose tol = Alcotest.(check (float tol))

let test_db seed n =
  let rng = Rng.create seed in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:8 ~dim:4 n in
  db

(* Codec for float-array objects, for persistence tests. *)
let encode (v : float array) =
  let buf = Buffer.create 32 in
  Dbh_util.Binio.write_float_array buf v;
  Buffer.contents buf

let decode s = Dbh_util.Binio.read_float_array (Dbh_util.Binio.reader s)

(* ------------------------------------------------------------------ Store *)

let test_store_basics () =
  let s = Store.of_array [| "a"; "b"; "c" |] in
  Alcotest.(check int) "length" 3 (Store.length s);
  Alcotest.(check int) "alive" 3 (Store.alive_count s);
  Alcotest.(check string) "get" "b" (Store.get s 1);
  let id = Store.add s "d" in
  Alcotest.(check int) "new id" 3 id;
  Store.delete s 1;
  Alcotest.(check bool) "dead" false (Store.is_alive s 1);
  Alcotest.(check bool) "others alive" true (Store.is_alive s 0 && Store.is_alive s 3);
  Alcotest.(check int) "alive count" 3 (Store.alive_count s);
  Store.delete s 1;
  Alcotest.(check int) "idempotent" 3 (Store.alive_count s);
  let alive = Store.to_alive_array s in
  Alcotest.(check int) "alive array" 3 (Array.length alive);
  Alcotest.(check bool) "1 excluded" true (Array.for_all (fun (i, _) -> i <> 1) alive)

let test_store_delete_guard () =
  let s = Store.of_array [| 1 |] in
  Alcotest.check_raises "range" (Invalid_argument "Store.delete: id out of range") (fun () ->
      Store.delete s 5)

let test_online_delete_idempotent_under_rebuild () =
  (* Deleting a handle twice, with a forced rebuild in between and after,
     keeps the store consistent: size stable, handle dead, queries clean. *)
  let db = test_db 81 150 in
  let t =
    Dbh.Online.create ~rng:(Rng.create 82)
      ~config:
        { Builder.default_config with num_pivots = 20; num_sample_queries = 60; db_sample = 150 }
      ~space:l2 ~target_accuracy:0.9 db
  in
  Dbh.Online.delete t 10;
  Dbh.Online.delete t 10;
  Alcotest.(check int) "one deletion counted" 149 (Dbh.Online.size t);
  Dbh.Online.rebuild_now t;
  Dbh.Online.delete t 10;
  Alcotest.(check int) "still one deletion after rebuild" 149 (Dbh.Online.size t);
  Alcotest.(check bool) "handle stays dead" false
    (List.mem 10 (Dbh.Online.alive_handles t));
  Alcotest.check_raises "get refuses dead handle"
    (Invalid_argument "Online.get: dead or unknown handle") (fun () ->
      ignore (Dbh.Online.get t 10));
  Dbh.Online.rebuild_now t;
  Alcotest.(check int) "rebuilds counted" 2 (Dbh.Online.rebuilds t);
  (match (Dbh.Online.search t db.(10)).Dbh.Online.nn with
  | Some (found, _) -> Alcotest.(check bool) "dead handle never returned" true (found <> 10)
  | None -> ());
  (* Other handles still resolve to their original objects. *)
  Alcotest.(check (array (float 0.))) "neighbors unaffected" db.(11) (Dbh.Online.get t 11)

(* -------------------------------------------------------- insert / delete *)

let make_index ?(seed = 1) ?(n = 300) ?(k = 4) ?(l = 8) () =
  let db = test_db seed n in
  let rng = Rng.create (seed + 500) in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:20 ~threshold_sample:150 db in
  let index = Index.build ~rng ~family ~db ~k ~l () in
  (index, db, rng)

let test_store_delete_then_query_never_resurrects () =
  (* A tombstoned id must never come back from a query, no matter how
     close the query sits to the dead object. *)
  let index, db, rng = make_index ~seed:7 () in
  let dead = List.init 30 (fun i -> i * 9) in
  List.iter (fun id -> Index.delete index id) dead;
  List.iter
    (fun id ->
      (* Query exactly at the deleted object and at small perturbations. *)
      let targets =
        db.(id) :: List.init 5 (fun _ -> Dbh_datasets.Vectors.perturb ~rng ~sigma:0.01 db.(id))
      in
      List.iter
        (fun q ->
          match (Index.search index q).Index.nn with
          | Some (found, _) ->
              Alcotest.(check bool) "alive answer only" true (not (List.mem found dead))
          | None -> ())
        targets)
    dead

let test_insert_found_afterwards () =
  let index, _, rng = make_index () in
  let fresh = Array.init 20 (fun _ -> Array.init 4 (fun _ -> Rng.float_in rng (-1.) 1.)) in
  Array.iter
    (fun obj ->
      let id = Index.insert index obj in
      (* The object always collides with itself. *)
      match (Index.search index obj).Index.nn with
      | Some (found, d) ->
          Alcotest.(check int) "finds inserted object" id found;
          check_loose 1e-9 "zero distance" 0. d
      | None -> Alcotest.fail "inserted object must be retrievable")
    fresh;
  Alcotest.(check int) "size grew" 320 (Index.size index)

let test_delete_hides_object () =
  let index, db, _ = make_index () in
  (* Delete the object and verify a self-query no longer returns it. *)
  Index.delete index 7;
  (match (Index.search index db.(7)).Index.nn with
  | Some (found, _) -> Alcotest.(check bool) "not the deleted id" true (found <> 7)
  | None -> ());
  Alcotest.(check int) "size shrank" 299 (Index.size index)

let test_deleted_not_counted_in_cost () =
  let index, db, _ = make_index () in
  let before = (Index.search index db.(3)).Index.stats.Index.lookup_cost in
  (* Deleting candidates reduces (or keeps equal) the lookup cost. *)
  for i = 0 to 99 do
    Index.delete index (i * 2)
  done;
  let after = (Index.search index db.(3)).Index.stats.Index.lookup_cost in
  Alcotest.(check bool) "cost shrinks with deletions" true (after <= before)

let test_shared_store_hierarchical_updates () =
  let db = test_db 11 400 in
  let rng = Rng.create 12 in
  let config =
    { Builder.default_config with num_pivots = 20; num_sample_queries = 60; db_sample = 150 }
  in
  let prepared = Builder.prepare ~rng ~space:l2 ~config db in
  let h = Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config () in
  let obj = Array.init 4 (fun _ -> 10.) (* far away, unique *) in
  let id = Hierarchical.insert h obj in
  (match (Hierarchical.search h obj).Dbh.Index.nn with
  | Some (found, d) ->
      Alcotest.(check int) "found in cascade" id found;
      check_loose 1e-9 "zero" 0. d
  | None -> Alcotest.fail "inserted object must be retrievable");
  Hierarchical.delete h id;
  (match (Hierarchical.search h obj).Dbh.Index.nn with
  | Some (found, _) -> Alcotest.(check bool) "gone after delete" true (found <> id)
  | None -> ())

let test_incremental_equals_batch () =
  (* An index built over a prefix and grown by insertions answers exactly
     like one built over the whole database, when both draw the same hash
     functions (same rng seed, same k and l). *)
  let db = test_db 71 200 in
  let family_rng = Rng.create 72 in
  let family = Hash_family.make ~rng:family_rng ~space:l2 ~num_pivots:15 ~threshold_sample:100 db in
  let batch = Index.build ~rng:(Rng.create 73) ~family ~db ~k:4 ~l:6 () in
  let incremental =
    Index.build ~rng:(Rng.create 73) ~family ~db:(Array.sub db 0 50) ~k:4 ~l:6 ()
  in
  for i = 50 to 199 do
    ignore (Index.insert incremental db.(i))
  done;
  let qrng = Rng.create 74 in
  for _ = 1 to 30 do
    let q = Dbh_datasets.Vectors.perturb ~rng:qrng ~sigma:0.1 db.(Rng.int qrng 200) in
    let a = Index.search batch q and b = Index.search incremental q in
    Alcotest.(check bool) "same answer" true (a.Index.nn = b.Index.nn);
    Alcotest.(check int) "same lookup cost" a.Index.stats.Index.lookup_cost
      b.Index.stats.Index.lookup_cost
  done

let test_family_rejects_nan_distance () =
  let broken = Space.make ~name:"nan" (fun (_ : int) (_ : int) -> nan) in
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Hash_family.make: distance function returned NaN or a negative value")
    (fun () ->
      ignore
        (Hash_family.make ~rng:(Rng.create 1) ~space:broken ~num_pivots:4 ~threshold_sample:10
           (Array.init 10 Fun.id)))

let test_family_rejects_negative_distance () =
  let broken = Space.make ~name:"neg" (fun (a : int) b -> if a = b then 0. else -1.) in
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Hash_family.make: distance function returned NaN or a negative value")
    (fun () ->
      ignore
        (Hash_family.make ~rng:(Rng.create 1) ~space:broken ~num_pivots:4 ~threshold_sample:10
           (Array.init 10 Fun.id)))

(* -------------------------------------------------------------- multiprobe *)

let test_multiprobe_zero_equals_query () =
  let index, db, rng = make_index ~l:6 () in
  for _ = 1 to 20 do
    let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.1 db.(Rng.int rng 300) in
    let base = Index.search index q in
    let mp = Index.query_multiprobe index ~probes:0 q in
    Alcotest.(check bool) "same answer" true (base.Index.nn = mp.Index.nn);
    Alcotest.(check int) "same lookup" base.Index.stats.Index.lookup_cost
      mp.Index.stats.Index.lookup_cost
  done

let test_multiprobe_superset_candidates () =
  let index, db, rng = make_index ~l:4 () in
  for _ = 1 to 20 do
    let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.15 db.(Rng.int rng 300) in
    let base = Index.search index q in
    let mp = Index.query_multiprobe index ~probes:4 q in
    (* More probes can only add candidates, so the answer can't worsen. *)
    Alcotest.(check bool) "lookup grows" true
      (mp.Index.stats.Index.lookup_cost >= base.Index.stats.Index.lookup_cost);
    match (base.Index.nn, mp.Index.nn) with
    | Some (_, d0), Some (_, d1) -> Alcotest.(check bool) "no worse" true (d1 <= d0 +. 1e-12)
    | None, _ -> ()
    | Some _, None -> Alcotest.fail "multiprobe lost the answer"
  done

let test_multiprobe_improves_recall_vs_small_l () =
  (* With very few tables, multiprobing recovers much of the accuracy of
     a larger index at the same hashing cost. *)
  let db = test_db 21 600 in
  let rng = Rng.create 22 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:25 ~threshold_sample:200 db in
  let index = Index.build ~rng ~family ~db ~k:10 ~l:2 () in
  let queries = Array.init 100 (fun i -> Dbh_datasets.Vectors.perturb ~rng ~sigma:0.05 db.(i * 5)) in
  let truth = Dbh_eval.Ground_truth.compute ~space:l2 ~db ~queries () in
  let accuracy f =
    Dbh_eval.Ground_truth.accuracy truth (Array.map (fun q -> (f q).Index.nn) queries)
  in
  let base = accuracy (fun q -> Index.search index q) in
  let probed = accuracy (fun q -> Index.query_multiprobe index ~probes:8 q) in
  Alcotest.(check bool)
    (Printf.sprintf "probed %.3f > base %.3f" probed base)
    true
    (probed > base || base > 0.97)

let test_multiprobe_probe_count () =
  let index, db, _ = make_index ~l:5 () in
  let r = Index.query_multiprobe index ~probes:3 db.(0) in
  Alcotest.(check int) "l*(1+probes) buckets" (5 * 4) r.Index.stats.Index.probes

(* ---------------------------------------------------------------- budgeted *)

let test_budgeted_respects_budget () =
  let index, db, rng = make_index ~l:12 () in
  for _ = 1 to 20 do
    let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.1 db.(Rng.int rng 300) in
    let r = Index.query_budgeted index ~max_candidates:5 q in
    Alcotest.(check bool) "within budget" true (r.Index.stats.Index.lookup_cost <= 5)
  done

let test_budgeted_equals_query_with_big_budget () =
  let index, db, rng = make_index ~l:6 () in
  for _ = 1 to 20 do
    let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.1 db.(Rng.int rng 300) in
    let base = Index.search index q in
    let b = Index.query_budgeted index ~max_candidates:10_000 q in
    match (base.Index.nn, b.Index.nn) with
    | Some (_, d0), Some (_, d1) -> check_loose 1e-12 "same distance" d0 d1
    | None, None -> ()
    | _ -> Alcotest.fail "budget covers everything, answers must agree"
  done

let test_budgeted_collision_ranking_beats_random () =
  (* With a tight budget, collision-count ranking should usually still
     find the true NN among the top candidates. *)
  let db = test_db 31 600 in
  let rng = Rng.create 32 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:25 ~threshold_sample:200 db in
  let index = Index.build ~rng ~family ~db ~k:6 ~l:20 () in
  let queries = Array.init 80 (fun i -> Dbh_datasets.Vectors.perturb ~rng ~sigma:0.03 db.(i * 7)) in
  let truth = Dbh_eval.Ground_truth.compute ~space:l2 ~db ~queries () in
  let answers = Array.map (fun q -> (Index.query_budgeted index ~max_candidates:8 q).Index.nn) queries in
  let acc = Dbh_eval.Ground_truth.accuracy truth answers in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f with 8 candidates" acc) true (acc > 0.8)

(* -------------------------------------------------------------- persistence *)

let test_family_roundtrip () =
  let db = test_db 41 200 in
  let rng = Rng.create 42 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:15 ~threshold_sample:100 db in
  let buf = Buffer.create 1024 in
  Hash_family.write ~encode buf family;
  let family' = Hash_family.read ~decode ~space:l2 (Dbh_util.Binio.reader (Buffer.contents buf)) in
  Alcotest.(check int) "size" (Hash_family.size family) (Hash_family.size family');
  Alcotest.(check int) "pivots" (Hash_family.num_pivots family) (Hash_family.num_pivots family');
  (* Every binary function evaluates identically. *)
  for i = 0 to Hash_family.size family - 1 do
    for j = 0 to 20 do
      let x = db.(j * 7) in
      Alcotest.(check bool) "same bit" (Hash_family.eval_direct family x i)
        (Hash_family.eval_direct family' x i)
    done
  done

let test_index_roundtrip () =
  let index, db, rng = make_index ~n:250 () in
  (* Exercise dynamic state before saving. *)
  Index.delete index 3;
  let _ = Index.insert index (Array.init 4 (fun _ -> 5.)) in
  let buf = Buffer.create 4096 in
  Index.write ~encode buf index;
  let index' = Index.read ~decode ~space:l2 (Dbh_util.Binio.reader (Buffer.contents buf)) in
  Alcotest.(check int) "k" (Index.k index) (Index.k index');
  Alcotest.(check int) "l" (Index.l index) (Index.l index');
  Alcotest.(check int) "size" (Index.size index) (Index.size index');
  for _ = 1 to 30 do
    let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.1 db.(Rng.int rng 250) in
    let a = Index.search index q and b = Index.search index' q in
    Alcotest.(check bool) "same answer" true (a.Index.nn = b.Index.nn);
    Alcotest.(check int) "same lookup cost" a.Index.stats.Index.lookup_cost
      b.Index.stats.Index.lookup_cost
  done

let test_index_save_load_file () =
  let index, db, _ = make_index ~n:150 () in
  let path = Filename.temp_file "dbh_index" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Index.save ~encode ~path index;
      let index' = Index.load ~decode ~space:l2 ~path in
      let a = Index.search index db.(5) and b = Index.search index' db.(5) in
      Alcotest.(check bool) "same" true (a.Index.nn = b.Index.nn))

let test_index_read_rejects_garbage () =
  Alcotest.(check bool) "corrupt tag" true
    (try
       ignore (Index.read ~decode ~space:l2 (Dbh_util.Binio.reader "notanindex"));
       false
     with Dbh_util.Binio.Corrupt _ -> true)

let test_index_truncation_fuzz () =
  (* Every proper prefix of a valid serialized index must be rejected
     with Corrupt — never crash, hang, or mis-load. *)
  let index, _, _ = make_index ~n:60 () in
  let buf = Buffer.create 1024 in
  Index.write ~encode buf index;
  let data = Buffer.contents buf in
  let rng = Rng.create 987 in
  (* Full data loads fine. *)
  ignore (Index.read ~decode ~space:l2 (Dbh_util.Binio.reader data));
  for _ = 1 to 60 do
    let cut = Rng.int rng (String.length data) in
    let truncated = String.sub data 0 cut in
    let outcome =
      try
        ignore (Index.read ~decode ~space:l2 (Dbh_util.Binio.reader truncated));
        `Loaded
      with
      | Dbh_util.Binio.Corrupt _ -> `Corrupt
      | Invalid_argument _ -> `Corrupt (* codec rejecting a short payload *)
    in
    Alcotest.(check bool) (Printf.sprintf "prefix %d rejected" cut) true (outcome = `Corrupt)
  done

let test_hierarchical_roundtrip () =
  let db = test_db 51 400 in
  let rng = Rng.create 52 in
  let config =
    { Builder.default_config with num_pivots = 20; num_sample_queries = 60; db_sample = 150 }
  in
  let prepared = Builder.prepare ~rng ~space:l2 ~config db in
  let h = Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config () in
  let buf = Buffer.create 8192 in
  Hierarchical.write ~encode buf h;
  let h' = Hierarchical.read ~decode ~space:l2 (Dbh_util.Binio.reader (Buffer.contents buf)) in
  let levels = Hierarchical.levels h and levels' = Hierarchical.levels h' in
  Alcotest.(check int) "levels" (Array.length levels) (Array.length levels');
  Array.iteri
    (fun i (info : Hierarchical.level_info) ->
      Alcotest.(check int) "k" info.Hierarchical.k levels'.(i).Hierarchical.k;
      Alcotest.(check int) "l" info.Hierarchical.l levels'.(i).Hierarchical.l;
      check_loose 1e-12 "threshold" info.Hierarchical.d_threshold
        levels'.(i).Hierarchical.d_threshold)
    levels;
  for i = 0 to 30 do
    let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.08 db.(i * 11) in
    let a = Hierarchical.search h q and b = Hierarchical.search h' q in
    Alcotest.(check bool) "same answer" true (a.Dbh.Index.nn = b.Dbh.Index.nn)
  done

(* ----------------------------------------------------------------- margin *)

let test_margin_nonnegative_and_boundary () =
  let db = test_db 61 300 in
  let rng = Rng.create 62 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:15 ~threshold_sample:150 db in
  for i = 0 to 30 do
    let cache = Hash_family.cache family db.(i * 3) in
    for j = 0 to Hash_family.size family - 1 do
      let m = Hash_family.margin family cache j in
      Alcotest.(check bool) "nonnegative" true (m >= 0.)
    done
  done

let () =
  Alcotest.run "dbh_dynamic"
    [
      ( "store",
        [
          Alcotest.test_case "basics" `Quick test_store_basics;
          Alcotest.test_case "delete guard" `Quick test_store_delete_guard;
          Alcotest.test_case "delete never resurrects" `Quick
            test_store_delete_then_query_never_resurrects;
          Alcotest.test_case "delete idempotent under rebuild" `Quick
            test_online_delete_idempotent_under_rebuild;
        ] );
      ( "updates",
        [
          Alcotest.test_case "insert retrievable" `Quick test_insert_found_afterwards;
          Alcotest.test_case "delete hides" `Quick test_delete_hides_object;
          Alcotest.test_case "delete reduces cost" `Quick test_deleted_not_counted_in_cost;
          Alcotest.test_case "hierarchical shared store" `Quick
            test_shared_store_hierarchical_updates;
          Alcotest.test_case "incremental = batch" `Quick test_incremental_equals_batch;
          Alcotest.test_case "rejects NaN distance" `Quick test_family_rejects_nan_distance;
          Alcotest.test_case "rejects negative distance" `Quick
            test_family_rejects_negative_distance;
        ] );
      ( "multiprobe",
        [
          Alcotest.test_case "zero probes = query" `Quick test_multiprobe_zero_equals_query;
          Alcotest.test_case "superset of candidates" `Quick test_multiprobe_superset_candidates;
          Alcotest.test_case "improves recall at small l" `Quick
            test_multiprobe_improves_recall_vs_small_l;
          Alcotest.test_case "probe count" `Quick test_multiprobe_probe_count;
        ] );
      ( "budgeted",
        [
          Alcotest.test_case "respects budget" `Quick test_budgeted_respects_budget;
          Alcotest.test_case "big budget = query" `Quick test_budgeted_equals_query_with_big_budget;
          Alcotest.test_case "collision ranking effective" `Quick
            test_budgeted_collision_ranking_beats_random;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "family roundtrip" `Quick test_family_roundtrip;
          Alcotest.test_case "index roundtrip" `Quick test_index_roundtrip;
          Alcotest.test_case "save/load file" `Quick test_index_save_load_file;
          Alcotest.test_case "rejects garbage" `Quick test_index_read_rejects_garbage;
          Alcotest.test_case "truncation fuzz" `Quick test_index_truncation_fuzz;
          Alcotest.test_case "hierarchical roundtrip" `Quick test_hierarchical_roundtrip;
        ] );
      ("margin", [ Alcotest.test_case "nonnegative" `Quick test_margin_nonnegative_and_boundary ]);
    ]
