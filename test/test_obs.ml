(* Tests for the observability layer (lib/obs) and its wiring through
   the query pipeline:

   - the registry primitives (counters, gauges, histograms) and the
     Prometheus text exposition round-trip,
   - reconciliation: the ambient metric set must agree exactly with the
     per-query stats it summarizes AND with a counted space's raw
     distance-call delta on the serving path,
   - trace event ordering for a cascaded query,
   - logical counters identical between a sequential run and a 4-domain
     pool run of the same workload,
   - Query_opts carrying budgets/metrics/traces, and the deprecated
     pre-Query_opts wrappers staying source-compatible. *)

module Rng = Dbh_util.Rng
module Pool = Dbh_util.Pool
module Space = Dbh_space.Space
module Minkowski = Dbh_metrics.Minkowski
module Hash_family = Dbh.Hash_family
module Analysis = Dbh.Analysis
module Index = Dbh.Index
module Hierarchical = Dbh.Hierarchical
module Query_opts = Dbh.Query_opts
module Registry = Dbh_obs.Registry
module Metrics = Dbh_obs.Metrics
module Trace = Dbh_obs.Trace

let l2 = Minkowski.l2_space

let test_db seed n =
  let rng = Rng.create seed in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:8 ~dim:6 n in
  db

(* A single-level index over a counted space, so raw distance calls can
   be reconciled against the metric counters. *)
let make_index ?(seed = 70) () =
  let db = test_db seed 400 in
  let rng = Rng.create (seed + 1) in
  let counted, counter = Space.with_counter l2 in
  let family =
    Hash_family.make ~rng ~space:counted ~num_pivots:20 ~threshold_sample:150 db
  in
  let index = Index.build ~rng ~family ~db ~k:6 ~l:8 () in
  (index, db, counter)

let make_hier ?(seed = 80) () =
  let db = test_db seed 500 in
  let rng = Rng.create (seed + 1) in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:25 ~threshold_sample:200 db in
  let query_indices = Rng.sample_indices rng 80 500 in
  let analysis =
    Analysis.build ~rng ~family ~db ~query_indices ~num_fns:200 ~db_sample:200 ()
  in
  let h =
    Hierarchical.build ~rng ~family ~db ~analysis ~target_accuracy:0.9 ~levels:4
      ~k_max:15 ~l_max:200 ()
  in
  (h, db, rng)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let queries_for db rng n =
  Array.init n (fun _ ->
      Dbh_datasets.Vectors.perturb ~rng ~sigma:0.05 db.(Rng.int rng (Array.length db)))

(* ------------------------------------------------------------- registry *)

let test_registry_counter_gauge () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"a counter" "t_total" in
  let g = Registry.gauge reg "t_depth" in
  Registry.inc c;
  Registry.add c 4;
  Registry.set g 7;
  Registry.set g 3;
  Alcotest.(check int) "counter" 5 (Registry.counter_value c);
  Alcotest.(check int) "gauge keeps last" 3 (Registry.gauge_value g);
  Alcotest.check_raises "counters are monotone"
    (Invalid_argument "Registry.add: counters are monotone") (fun () ->
      Registry.add c (-1))

let test_registry_duplicate_rejected () =
  let reg = Registry.create () in
  let _ = Registry.counter reg "dup_total" in
  (try
     let _ = Registry.counter reg "dup_total" in
     Alcotest.fail "duplicate registration must raise"
   with Invalid_argument _ -> ());
  (* Same name with a different label set is a distinct sample. *)
  let _ = Registry.counter reg ~labels:[ ("kind", "a") ] "lab_total" in
  let _ = Registry.counter reg ~labels:[ ("kind", "b") ] "lab_total" in
  ()

let test_registry_histogram_invariants () =
  let reg = Registry.create () in
  let h = Registry.histogram reg ~buckets:[| 1.; 5.; 25. |] "t_cost" in
  List.iter (Registry.observe h) [ 0.5; 0.5; 3.; 30.; 4.; 25. ];
  Alcotest.(check int) "count" 6 (Registry.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 63. (Registry.histogram_sum h);
  let samples = Registry.parse_exposition (Registry.exposition reg) in
  let sample name =
    match List.assoc_opt name samples with
    | Some v -> v
    | None -> Alcotest.fail (Printf.sprintf "missing sample %s" name)
  in
  (* Cumulative buckets are monotone and the +Inf bucket equals count. *)
  let b1 = sample "t_cost_bucket{le=\"1\"}" in
  let b5 = sample "t_cost_bucket{le=\"5\"}" in
  let b25 = sample "t_cost_bucket{le=\"25\"}" in
  let binf = sample "t_cost_bucket{le=\"+Inf\"}" in
  Alcotest.(check (float 0.)) "le 1" 2. b1;
  Alcotest.(check (float 0.)) "le 5" 4. b5;
  Alcotest.(check (float 0.)) "le 25 includes boundary" 5. b25;
  Alcotest.(check (float 0.)) "+Inf = count" 6. binf;
  Alcotest.(check bool) "monotone" true (b1 <= b5 && b5 <= b25 && b25 <= binf);
  Alcotest.(check (float 0.)) "count sample" 6. (sample "t_cost_count");
  Alcotest.(check (float 1e-9)) "sum sample" 63. (sample "t_cost_sum")

let test_exposition_round_trip () =
  let m = Metrics.create () in
  Registry.add m.Metrics.distance_computations_total 123;
  Registry.inc m.Metrics.queries_total;
  Registry.set m.Metrics.snapshot_bytes 4096;
  Registry.observe m.Metrics.query_seconds 0.002;
  let samples = Registry.parse_exposition (Registry.exposition m.Metrics.registry) in
  let get name = List.assoc_opt name samples in
  Alcotest.(check (option (float 0.))) "counter" (Some 123.)
    (get "dbh_distance_computations_total");
  Alcotest.(check (option (float 0.))) "queries" (Some 1.) (get "dbh_queries_total");
  Alcotest.(check (option (float 0.))) "gauge" (Some 4096.) (get "dbh_snapshot_bytes");
  Alcotest.(check (option (float 0.))) "histogram count" (Some 1.)
    (get "dbh_query_seconds_count");
  (* find_sample is the same lookup. *)
  Alcotest.(check (option (float 0.))) "find_sample" (Some 123.)
    (Registry.find_sample m.Metrics.registry "dbh_distance_computations_total");
  (* JSON export mentions every family name. *)
  let json = Registry.to_json m.Metrics.registry in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in json") true (contains ~affix:name json))
    [ "dbh_queries_total"; "dbh_query_cost"; "dbh_snapshot_bytes" ]

(* ------------------------------------------------------- reconciliation *)

let test_counters_match_space_delta () =
  let index, db, counter = make_index () in
  let rng = Rng.create 71 in
  let queries = queries_for db rng 40 in
  Space.reset counter;
  let m = Metrics.create () in
  let opts = Query_opts.make ~metrics:m () in
  let results = Array.map (Index.search ~opts index) queries in
  let delta = Space.count counter in
  let reported =
    Array.fold_left (fun acc r -> acc + Index.total_cost r.Index.stats) 0 results
  in
  let counted = Registry.counter_value m.Metrics.distance_computations_total in
  Alcotest.(check int) "counter = per-query stats" reported counted;
  Alcotest.(check int) "counter = raw space delta" delta counted;
  Alcotest.(check int) "queries_total" (Array.length queries)
    (Registry.counter_value m.Metrics.queries_total);
  Alcotest.(check int) "hash + lookup = total"
    counted
    (Registry.counter_value m.Metrics.hash_distance_computations_total
    + Registry.counter_value m.Metrics.lookup_distance_computations_total);
  (* The per-query cost histogram summarizes the same numbers. *)
  Alcotest.(check int) "histogram count = queries" (Array.length queries)
    (Registry.histogram_count m.Metrics.query_cost);
  Alcotest.(check (float 1e-9)) "histogram sum = total cost" (float_of_int counted)
    (Registry.histogram_sum m.Metrics.query_cost)

let test_ambient_install_and_explicit_override () =
  let index, db, _ = make_index ~seed:72 () in
  let q = db.(0) in
  let ambient = Metrics.create () in
  let explicit = Metrics.create () in
  Metrics.with_installed ambient (fun () ->
      ignore (Index.search index q);
      ignore (Index.search ~opts:(Query_opts.make ~metrics:explicit ()) index q));
  Alcotest.(check int) "ambient saw only the bare query" 1
    (Registry.counter_value ambient.Metrics.queries_total);
  Alcotest.(check int) "explicit wins over ambient" 1
    (Registry.counter_value explicit.Metrics.queries_total);
  (* Outside with_installed nothing is recorded. *)
  ignore (Index.search index q);
  Alcotest.(check int) "uninstalled records nothing" 1
    (Registry.counter_value ambient.Metrics.queries_total)

let test_budget_via_opts () =
  let index, db, _ = make_index ~seed:73 () in
  let rng = Rng.create 74 in
  let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.05 db.(7) in
  let m = Metrics.create () in
  let tight = Index.search ~opts:(Query_opts.make ~budget:5 ~metrics:m ()) index q in
  Alcotest.(check bool) "tight budget truncates" true tight.Index.truncated;
  Alcotest.(check int) "truncation counted" 1
    (Registry.counter_value m.Metrics.queries_truncated_total);
  (* Query_opts.budgeted behaves exactly like the low-level budget. *)
  let direct = Index.query_with ~budget:(Dbh.Budget.create 5) index q in
  Alcotest.(check bool) "same nn" true (tight.Index.nn = direct.Index.nn);
  Alcotest.(check bool) "same stats" true (tight.Index.stats = direct.Index.stats);
  let loose = Index.search ~opts:(Query_opts.budgeted 100_000) index q in
  Alcotest.(check bool) "loose budget completes" false loose.Index.truncated

(* ------------------------------------------------------------- tracing *)

let test_trace_cascade_ordering () =
  let h, db, rng = make_hier () in
  let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.2 db.(11) in
  let trace = Trace.create () in
  let r = Hierarchical.search ~opts:(Query_opts.make ~trace ()) h q in
  let events = Array.map snd (Trace.events trace) in
  let times = Array.map fst (Trace.events trace) in
  Alcotest.(check bool) "non-empty" true (Array.length events > 2);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped trace);
  (* Timestamps never go backwards. *)
  Array.iteri
    (fun i t -> if i > 0 then Alcotest.(check bool) "time monotone" true (t >= times.(i - 1)))
    times;
  (match events.(0) with
  | Trace.Query_start { kind } ->
      Alcotest.(check bool) "kind names the cascade" true
        (contains ~affix:"hierarchical" kind)
  | _ -> Alcotest.fail "first event must be Query_start");
  (match events.(Array.length events - 1) with
  | Trace.Query_done { hash_cost; lookup_cost; levels_probed; truncated; _ } ->
      Alcotest.(check int) "done hash_cost" r.Index.stats.Index.hash_cost hash_cost;
      Alcotest.(check int) "done lookup_cost" r.Index.stats.Index.lookup_cost lookup_cost;
      Alcotest.(check int) "done levels" r.Index.levels_probed levels_probed;
      Alcotest.(check bool) "done truncated" r.Index.truncated truncated
  | _ -> Alcotest.fail "last event must be Query_done");
  (* Cascade structure: levels are entered in order starting at 0, every
     probe/candidate happens inside some level, and the number of levels
     entered is what the result reports. *)
  let current_level = ref (-1) in
  let entered = ref 0 in
  Array.iter
    (fun ev ->
      match ev with
      | Trace.Level_enter { level; _ } ->
          Alcotest.(check int) "levels in order" (!current_level + 1) level;
          current_level := level;
          incr entered
      | Trace.Bucket_probe { level; _ } ->
          Alcotest.(check int) "probe inside current level" !current_level level
      | Trace.Candidate _ | Trace.Pivot_hit _ | Trace.Pivot_miss _ ->
          Alcotest.(check bool) "work only inside a level" true (!current_level >= 0)
      | Trace.Level_settled { level; _ } ->
          Alcotest.(check int) "settled at current level" !current_level level
      | _ -> ())
    events;
  Alcotest.(check int) "levels entered = levels_probed" r.Index.levels_probed !entered;
  (* Candidate [improved] flags replay the best-so-far chain. *)
  let best = ref infinity in
  Array.iter
    (function
      | Trace.Candidate { distance; improved; _ } ->
          Alcotest.(check bool) "improved flag consistent" (distance < !best) improved;
          if improved then best := distance
      | _ -> ())
    events;
  (match r.Index.nn with
  | Some (_, d) -> Alcotest.(check (float 1e-9)) "final best = result" d !best
  | None -> Alcotest.fail "expected a neighbor");
  (* The timeline pretty-printer and JSON export stay total. *)
  let rendered = Format.asprintf "%a" Trace.pp trace in
  Alcotest.(check bool) "pp renders all lines" true
    (List.length (String.split_on_char '\n' (String.trim rendered))
    >= Array.length events);
  Alcotest.(check bool) "json non-empty" true (String.length (Trace.to_json trace) > 2)

let test_trace_capacity_bounded () =
  let trace = Trace.create ~clock:(fun () -> 0.) ~capacity:4 () in
  for i = 0 to 9 do
    Trace.record trace (Trace.Pivot_miss { pivot = i })
  done;
  Alcotest.(check int) "capped" 4 (Trace.length trace);
  Alcotest.(check int) "dropped the rest" 6 (Trace.dropped trace);
  Trace.clear trace;
  Alcotest.(check int) "clear empties" 0 (Trace.length trace);
  Alcotest.(check int) "clear resets dropped" 0 (Trace.dropped trace)

(* ------------------------------------------------------- multicore runs *)

let test_parallel_logical_counters_identical () =
  let h, db, rng = make_hier ~seed:81 () in
  let queries = queries_for db rng 60 in
  (* Installed (not explicit) metrics, so the pool's own physical
     instrumentation lands in the same set as the query counters. *)
  let run pool =
    let m = Metrics.create () in
    let results =
      Metrics.with_installed m (fun () ->
          Hierarchical.search_batch ~opts:(Query_opts.make ?pool ()) h queries)
    in
    (m, results)
  in
  let m_seq, r_seq = run None in
  let m_par, r_par = Pool.with_pool ~domains:4 (fun pool -> run (Some pool)) in
  Alcotest.(check bool) "answers bit-identical" true (r_seq = r_par);
  (* Every logical counter agrees; pool_* gauges/counters are physical
     and deliberately excluded. *)
  List.iter
    (fun (name, pick) ->
      Alcotest.(check int) name
        (Registry.counter_value (pick m_seq))
        (Registry.counter_value (pick m_par)))
    [
      ("queries_total", fun m -> m.Metrics.queries_total);
      ("queries_truncated_total", fun m -> m.Metrics.queries_truncated_total);
      ("distance_computations_total", fun m -> m.Metrics.distance_computations_total);
      ("hash_distance_computations_total", fun m -> m.Metrics.hash_distance_computations_total);
      ("lookup_distance_computations_total", fun m -> m.Metrics.lookup_distance_computations_total);
      ("bucket_probes_total", fun m -> m.Metrics.bucket_probes_total);
      ("levels_probed_total", fun m -> m.Metrics.levels_probed_total);
      ("pivot_cache_hits_total", fun m -> m.Metrics.pivot_cache_hits_total);
      ("pivot_cache_misses_total", fun m -> m.Metrics.pivot_cache_misses_total);
    ];
  Alcotest.(check int) "cost histogram count identical"
    (Registry.histogram_count m_seq.Metrics.query_cost)
    (Registry.histogram_count m_par.Metrics.query_cost);
  Alcotest.(check (float 1e-9)) "cost histogram sum identical"
    (Registry.histogram_sum m_seq.Metrics.query_cost)
    (Registry.histogram_sum m_par.Metrics.query_cost);
  (* The pool run did record physical pool activity. *)
  Alcotest.(check bool) "pool tasks recorded" true
    (Registry.counter_value m_par.Metrics.pool_tasks_total > 0);
  Alcotest.(check int) "sequential run used no pool" 0
    (Registry.counter_value m_seq.Metrics.pool_tasks_total)

(* ------------------------------------------------ Query_opts equivalences *)

(* The Query_opts spellings that replaced the old wrapper surface must
   agree with the explicit query_with plumbing they are built from. *)
let test_query_opts_equivalences () =
  let index, db, _ = make_index ~seed:75 () in
  let q = db.(42) in
  let old_b = Index.query_with ~budget:(Dbh.Budget.create 9) index q in
  let new_b = Index.search ~opts:(Query_opts.budgeted 9) index q in
  Alcotest.(check bool) "budgeted agree" true (old_b = new_b);
  let qs = Array.sub db 0 10 in
  Alcotest.(check bool) "batch agrees with per-query" true
    (Index.search_batch index qs = Array.map (Index.search index) qs);
  let h, hdb, _ = make_hier ~seed:82 () in
  let hq = hdb.(3) in
  let r = Hierarchical.query_with h hq in
  let s = Hierarchical.search h hq in
  Alcotest.(check bool) "query_with = search" true (r = s)

let () =
  Alcotest.run "dbh_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter and gauge" `Quick test_registry_counter_gauge;
          Alcotest.test_case "duplicate names rejected" `Quick test_registry_duplicate_rejected;
          Alcotest.test_case "histogram invariants" `Quick test_registry_histogram_invariants;
          Alcotest.test_case "exposition round-trip" `Quick test_exposition_round_trip;
        ] );
      ( "reconciliation",
        [
          Alcotest.test_case "counters = space delta = stats" `Quick
            test_counters_match_space_delta;
          Alcotest.test_case "ambient install + override" `Quick
            test_ambient_install_and_explicit_override;
          Alcotest.test_case "budget via opts" `Quick test_budget_via_opts;
        ] );
      ( "trace",
        [
          Alcotest.test_case "cascade event ordering" `Quick test_trace_cascade_ordering;
          Alcotest.test_case "capacity bounded" `Quick test_trace_capacity_bounded;
        ] );
      ( "multicore",
        [
          Alcotest.test_case "4-domain logical counters identical" `Quick
            test_parallel_logical_counters_identical;
        ] );
      ( "compat",
        [
          Alcotest.test_case "query_opts equivalences" `Quick test_query_opts_equivalences;
        ] );
    ]
