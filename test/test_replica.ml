(* Replication and failover: WAL-shipping read replicas.

   Methodology follows test_persist: a volatile [Online.t] twin is fed
   the same logical ops as the durable leader, and a caught-up replica
   must be a bit-identical twin — same size, same alive handles, same
   rng state, same answer to every probe query — across torn tails,
   leader kills at every WAL byte offset, checkpoint kill points,
   generation rollovers, shipping, and promotion.

   Parallel sections honor DBH_TEST_DOMAINS (default 2). *)

module Rng = Dbh_util.Rng
module Binio = Dbh_util.Binio
module Retry = Dbh_util.Retry
module Wal = Dbh_persist.Wal
module Layout = Dbh_persist.Layout
module Minkowski = Dbh_metrics.Minkowski
module Builder = Dbh.Builder
module Online = Dbh.Online
module Durable = Dbh.Online.Durable
module Replica = Dbh_replica.Replica
module Metrics = Dbh_obs.Metrics
module Registry = Dbh_obs.Registry

let domains =
  match Sys.getenv_opt "DBH_TEST_DOMAINS" with
  | None -> 2
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "DBH_TEST_DOMAINS must be a positive integer")

let l2 = Minkowski.l2_space

let small_config =
  { Builder.default_config with num_pivots = 20; num_sample_queries = 60; db_sample = 150 }

let test_db seed n =
  let rng = Rng.create seed in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:6 ~dim:4 n in
  db

let encode (v : float array) =
  let buf = Buffer.create 64 in
  Binio.write_float_array buf v;
  Buffer.contents buf

let decode s =
  let r = Binio.reader s in
  let v = Binio.read_float_array r in
  if not (Binio.at_end r) then raise (Binio.Corrupt "trailing bytes in vector");
  v

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dbh-replica-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  Unix.mkdir d 0o755;
  d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ------------------------------------------------------------- leader *)

type op = Ins of float array | Del of int

let apply_online o = function
  | Ins v -> ignore (Online.insert o v)
  | Del h -> Online.delete o h

let apply_durable d = function
  | Ins v -> ignore (Durable.insert d v)
  | Del h -> Durable.delete d h

(* One WAL record per op, in order — the chaos harness relies on the
   bijection between op-stream prefixes and record-count prefixes. *)
let op_stream seed n =
  let extra = test_db (seed + 50) n in
  List.concat_map
    (fun i ->
      if i mod 4 = 3 then [ Ins extra.(i); Del (i / 2) ] else [ Ins extra.(i) ])
    (List.init n Fun.id)

let seed_db = test_db 31 50

let make_twin () =
  Online.create ~rng:(Rng.create 42) ~space:l2 ~config:small_config ~rebuild_factor:1.5
    ~target_accuracy:0.9 seed_db

let make_durable dir =
  Durable.open_or_create ~rng:(Rng.create 42) ~space:l2 ~config:small_config
    ~rebuild_factor:1.5 ~target_accuracy:0.9 ~encode ~decode ~dir ~data:seed_db ()

let open_replica dir =
  Replica.open_ ~config:small_config ~rebuild_factor:1.5
    ~retry:(Retry.make ~initial:0.001 ~max_delay:0.01 ())
    ~space:l2 ~target_accuracy:0.9 ~decode ~dir ()

let queries = test_db 77 25

(* Bit-identity: the whole point of the exercise. *)
let check_twin msg (twin : _ Online.t) (r : _ Replica.t) =
  Alcotest.(check int) (msg ^ ": size") (Online.size twin) (Replica.size r);
  Alcotest.(check bool)
    (msg ^ ": alive handles")
    true
    (Online.alive_handles twin = Online.alive_handles (Replica.online r));
  Alcotest.(check bool)
    (msg ^ ": rng state")
    true
    (Online.rng_state twin = Replica.rng_state r);
  Array.iteri
    (fun i q ->
      let a = Online.search twin q and b = Replica.search r q in
      if a <> b then Alcotest.failf "%s: query %d diverges from the twin" msg i)
    queries

(* --------------------------------------------------------- retry unit *)

let test_retry_deterministic_geometric () =
  let p = Retry.make ~initial:0.1 ~multiplier:2.0 ~max_delay:1.0 ~jitter:0. () in
  let delays = List.map (fun a -> Retry.backoff p ~attempt:a) [ 1; 2; 3; 4; 5; 6 ] in
  List.iter2
    (fun got want ->
      if Float.abs (got -. want) > 1e-9 then Alcotest.failf "backoff %f <> %f" got want)
    delays
    [ 0.1; 0.2; 0.4; 0.8; 1.0; 1.0 ]

let test_retry_jitter_bounded () =
  let p = Retry.make ~initial:0.1 ~multiplier:2.0 ~max_delay:1.0 ~jitter:0.25 () in
  let rng = Rng.create 7 in
  for attempt = 1 to 20 do
    let base = Retry.backoff p ~attempt in
    for _ = 1 to 50 do
      let d = Retry.backoff ~rng p ~attempt in
      if d < base *. 0.75 -. 1e-9 || d > base *. 1.25 +. 1e-9 then
        Alcotest.failf "jittered %f outside 25%% of %f" d base
    done
  done

let test_retry_rejects_bad_policies () =
  let bad f = match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () -> Retry.make ~initial:0. ());
  bad (fun () -> Retry.make ~multiplier:0.5 ());
  bad (fun () -> Retry.make ~initial:2.0 ~max_delay:1.0 ());
  bad (fun () -> Retry.make ~jitter:1.0 ())

let test_retry_backoff_within_caps_and_stops () =
  let p = Retry.make ~initial:0.1 ~multiplier:2.0 ~max_delay:1.0 ~jitter:0. () in
  (match Retry.backoff_within ~deadline:10. ~elapsed:0. p ~attempt:3 with
  | Some d -> Alcotest.(check (float 1e-9)) "uncapped = backoff" 0.4 d
  | None -> Alcotest.fail "expected Some inside the budget");
  (match Retry.backoff_within ~deadline:1.0 ~elapsed:0.85 p ~attempt:3 with
  | Some d -> Alcotest.(check (float 1e-9)) "clamped to remaining" 0.15 d
  | None -> Alcotest.fail "expected Some while budget remains");
  (match Retry.backoff_within ~deadline:1.0 ~elapsed:1.0 p ~attempt:1 with
  | None -> ()
  | Some _ -> Alcotest.fail "expected None at the deadline");
  (match Retry.backoff_within ~deadline:1.0 ~elapsed:2.5 p ~attempt:1 with
  | None -> ()
  | Some _ -> Alcotest.fail "expected None past the deadline");
  let bad f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () -> Retry.backoff_within ~deadline:0. ~elapsed:0. p ~attempt:1);
  bad (fun () -> Retry.backoff_within ~deadline:1. ~elapsed:(-0.1) p ~attempt:1);
  bad (fun () -> Retry.backoff_within ~deadline:1. ~elapsed:0. p ~attempt:0)

(* The deadline cap must not change how jitter is drawn: ladders that
   stay inside the budget are bit-identical to the uncapped ones, and
   even a capped-out call consumes the rng exactly once. *)
let test_retry_backoff_within_preserves_jitter_stream () =
  let p = Retry.make ~initial:0.1 ~multiplier:2.0 ~max_delay:1.0 ~jitter:0.25 () in
  let r1 = Rng.create 11 and r2 = Rng.create 11 in
  for attempt = 1 to 12 do
    let plain = Retry.backoff ~rng:r1 p ~attempt in
    match Retry.backoff_within ~rng:r2 ~deadline:1e6 ~elapsed:0. p ~attempt with
    | Some capped ->
        if plain <> capped then
          Alcotest.failf "attempt %d: %.17g <> %.17g" attempt plain capped
    | None -> Alcotest.fail "huge budget must not exhaust"
  done;
  let r3 = Rng.create 12 and r4 = Rng.create 12 in
  ignore (Retry.backoff ~rng:r3 p ~attempt:1);
  (match Retry.backoff_within ~rng:r4 ~deadline:1. ~elapsed:5. p ~attempt:1 with
  | None -> ()
  | Some _ -> Alcotest.fail "expected None");
  Alcotest.(check bool) "rng advanced identically" true
    (Rng.int r3 1_000_000 = Rng.int r4 1_000_000)

(* ------------------------------------------------- read-only tailing *)

let wal_payloads = [ "alpha"; "bravo"; "charlie"; "delta"; "echo" ]

let write_wal path =
  let w = Wal.create ~fsync:false ~path () in
  List.iter (fun p -> ignore (Wal.append w p)) wal_payloads;
  Wal.close w

let test_prefix_resumable_cursor () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "w.log" in
  write_wal path;
  let p1 = Wal.read_valid_prefix ~path () in
  Alcotest.(check int) "all records" (List.length wal_payloads)
    (Array.length p1.Wal.payloads);
  Alcotest.(check bool) "intact" false p1.Wal.prefix_torn;
  (* Re-read from the cursor: nothing new. *)
  let p2 = Wal.read_valid_prefix ~from:(p1.Wal.next_offset, p1.Wal.next_seq) ~path () in
  Alcotest.(check int) "drained" 0 (Array.length p2.Wal.payloads);
  (* Append more and resume mid-stream: only the new records surface,
     with sequence continuity enforced. *)
  let w, _ = Wal.open_append ~fsync:false ~path () in
  ignore (Wal.append w "foxtrot");
  Wal.close w;
  let p3 = Wal.read_valid_prefix ~from:(p1.Wal.next_offset, p1.Wal.next_seq) ~path () in
  Alcotest.(check bool) "resumed intact" false p3.Wal.prefix_torn;
  Alcotest.(check (array string)) "new records only" [| "foxtrot" |] p3.Wal.payloads

let test_prefix_never_truncates () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "w.log" in
  write_wal path;
  let full = read_file path in
  write_file path (full ^ "garbage tail");
  let before = (Unix.stat path).Unix.st_size in
  let p = Wal.read_valid_prefix ~path () in
  Alcotest.(check bool) "torn reported" true p.Wal.prefix_torn;
  Alcotest.(check int) "valid prefix readable" (List.length wal_payloads)
    (Array.length p.Wal.payloads);
  Alcotest.(check int) "file untouched" before (Unix.stat path).Unix.st_size;
  (* Contrast with the writer-side open, which does truncate. *)
  let w, _ = Wal.open_append ~fsync:false ~path () in
  Wal.close w;
  Alcotest.(check int) "writer truncated" (String.length full)
    (Unix.stat path).Unix.st_size

let test_prefix_detects_shrink () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "w.log" in
  write_wal path;
  let full = read_file path in
  write_file path (String.sub full 0 30);
  let p = Wal.read_valid_prefix ~from:(String.length full, 6) ~path () in
  Alcotest.(check bool) "shrink is torn" true p.Wal.prefix_torn;
  Alcotest.(check int) "nothing applied" 0 (Array.length p.Wal.payloads)

(* ------------------------------------------------- layout properties *)

let stray_name_gen =
  QCheck.Gen.(
    let fragment =
      string_size ~gen:(oneofl [ 'a'; 'z'; '0'; '9'; '-'; '.'; '_'; 'X' ]) (1 -- 12)
    in
    oneof
      [
        fragment;
        map (fun s -> "snapshot-" ^ s) fragment;
        map (fun s -> "wal-" ^ s) fragment;
        map (fun s -> "snapshot-" ^ s ^ ".dbh") fragment;
        map (fun s -> "wal-" ^ s ^ ".log") fragment;
        map (fun s -> s ^ ".dbh") fragment;
        return "snapshot-.dbh";
        return "wal-.log";
        return "snapshot-000001.dbh.tmp";
        return "wal-0x0001.log";
        return "snapshot--00001.dbh";
      ])

(* A name the layout would legitimately claim: exact prefix+suffix with
   an all-digit positive generation. *)
let is_valid_layout_name name ~prefix ~suffix =
  String.length name > String.length prefix + String.length suffix
  && String.sub name 0 (String.length prefix) = prefix
  && String.sub name (String.length name - String.length suffix) (String.length suffix)
     = suffix
  &&
  let mid =
    String.sub name (String.length prefix)
      (String.length name - String.length prefix - String.length suffix)
  in
  String.length mid > 0
  && String.for_all (fun c -> c >= '0' && c <= '9') mid
  && match int_of_string_opt mid with Some g -> g > 0 | None -> false

let arb_strays =
  QCheck.make
    ~print:(fun l -> String.concat ", " l)
    QCheck.Gen.(list_size (1 -- 8) stray_name_gen)

let test_layout_strays_never_discovered =
  QCheck.Test.make ~name:"stray files never enter generation discovery" ~count:100
    arb_strays (fun strays ->
      let strays =
        List.filter
          (fun n ->
            n <> "." && n <> ".."
            && (not (is_valid_layout_name n ~prefix:"snapshot-" ~suffix:".dbh"))
            && not (is_valid_layout_name n ~prefix:"wal-" ~suffix:".log"))
          strays
      in
      let dir = fresh_dir () in
      write_file (Layout.snapshot_path ~dir 3) "snap";
      write_file (Layout.wal_path ~dir 3) "wal";
      List.iter (fun n -> write_file (Filename.concat dir n) "stray") strays;
      Layout.snapshot_generations ~dir = [ 3 ] && Layout.wal_generations ~dir = [ 3 ])

let test_layout_checkpoint_gc_spares_strays () =
  let dir = fresh_dir () in
  let strays = [ "snapshot-.dbh"; "wal-99x.log"; "snapshot-000002.dbh.tmp"; "notes.txt" ] in
  List.iter (fun n -> write_file (Filename.concat dir n) "keep me") strays;
  let d, _ = make_durable dir in
  List.iter (apply_durable d) (op_stream 80 6);
  Durable.checkpoint d;
  List.iter (apply_durable d) (op_stream 81 6);
  Durable.checkpoint d;
  Durable.checkpoint d;
  Durable.close d;
  List.iter
    (fun n ->
      let p = Filename.concat dir n in
      Alcotest.(check bool) (n ^ " survives GC") true (Sys.file_exists p);
      Alcotest.(check string) (n ^ " content intact") "keep me" (read_file p))
    strays;
  (* And discovery still sees only the real generations. *)
  Alcotest.(check bool)
    "generations are numeric" true
    (List.for_all (fun g -> g >= 1) (Layout.snapshot_generations ~dir))

(* ------------------------------------------------------------ replica *)

let leader_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun n ->
         let st = Unix.stat (Filename.concat dir n) in
         (n, st.Unix.st_size, st.Unix.st_mtime))

let test_catch_up_is_twin () =
  let dir = fresh_dir () in
  let twin = make_twin () in
  let d, _ = make_durable dir in
  let ops = op_stream 90 30 in
  List.iter (apply_online twin) ops;
  List.iter (apply_durable d) ops;
  Durable.close d;
  let r = open_replica dir in
  Alcotest.(check int) "lag before" (List.length ops) (Replica.lag_records r);
  let applied = Replica.catch_up r in
  Alcotest.(check int) "all applied" (List.length ops) applied;
  Alcotest.(check int) "lag after" 0 (Replica.lag_records r);
  Alcotest.(check bool) "lag seconds settled" true (Replica.lag_seconds r = 0.);
  check_twin "caught up" twin r

let test_tailing_never_modifies_leader_files () =
  let dir = fresh_dir () in
  let d, _ = make_durable dir in
  List.iter (apply_durable d) (op_stream 91 20);
  Durable.checkpoint d;
  List.iter (apply_durable d) (op_stream 92 10);
  Durable.close d;
  let before = leader_files dir in
  let r = open_replica dir in
  ignore (Replica.catch_up r);
  ignore (Replica.poll r);
  ignore (Replica.lag_records r);
  ignore (Replica.lag_seconds r);
  ignore (Replica.search r queries.(0));
  Alcotest.(check bool)
    "file names, sizes and mtimes unchanged" true
    (leader_files dir = before)

let test_live_tailing_follows_rollover () =
  let dir = fresh_dir () in
  let twin = make_twin () in
  let d, _ = make_durable dir in
  let r = open_replica dir in
  let ops1 = op_stream 93 15 in
  List.iter (apply_online twin) ops1;
  List.iter (apply_durable d) ops1;
  Alcotest.(check int) "first batch" (List.length ops1) (Replica.poll r);
  check_twin "mid-stream" twin r;
  (* Leader checkpoints: generation rolls over under the replica. *)
  Durable.checkpoint d;
  let ops2 = op_stream 94 12 in
  List.iter (apply_online twin) ops2;
  List.iter (apply_durable d) ops2;
  Alcotest.(check int) "post-rollover batch" (List.length ops2) (Replica.poll r);
  let s = Replica.status r in
  Alcotest.(check int) "no reopen needed" 0 s.Replica.reopens;
  Alcotest.(check int) "tailing the new generation" (Durable.generation d)
    s.Replica.generation;
  check_twin "after rollover" twin r;
  Durable.close d

(* Regression: the leader appends tail records to the tailed log and
   checkpoints in the window between the replica's read of that log and
   its rollover decision.  A rollover decided on a post-read observation
   of wal-(g+1) would switch logs without the tail records — silent
   divergence; drain must re-read the closed log before switching. *)
let test_rollover_race_does_not_skip_tail_records () =
  let dir = fresh_dir () in
  let twin = make_twin () in
  let d, _ = make_durable dir in
  let r = open_replica dir in
  let ops1 = op_stream 105 10 in
  List.iter (apply_online twin) ops1;
  List.iter (apply_durable d) ops1;
  Alcotest.(check int) "first batch" (List.length ops1) (Replica.poll r);
  let tail = op_stream 106 5 in
  let fired = ref false in
  Replica.set_after_read_hook_for_testing r
    (Some
       (fun () ->
         if not !fired then begin
           fired := true;
           List.iter (apply_online twin) tail;
           List.iter (apply_durable d) tail;
           Durable.checkpoint d
         end));
  let n = Replica.poll r in
  Replica.set_after_read_hook_for_testing r None;
  Alcotest.(check bool) "race fired" true !fired;
  Alcotest.(check int) "tail records applied, not skipped" (List.length tail) n;
  let s = Replica.status r in
  Alcotest.(check int) "rolled to the new generation" (Durable.generation d)
    s.Replica.generation;
  Alcotest.(check int) "no reopen needed" 0 s.Replica.reopens;
  check_twin "twin across racy rollover" twin r;
  Durable.close d

(* Same race, but generation GC deletes the tailed log before the
   re-read: the tail records are only reachable through the newer
   snapshot, so the replica must fall back to a full reopen — detected
   recovery, never silent loss. *)
let test_rollover_race_with_gc_forces_reopen () =
  let dir = fresh_dir () in
  let twin = make_twin () in
  let d, _ = make_durable dir in
  let r = open_replica dir in
  let ops1 = op_stream 107 10 in
  List.iter (apply_online twin) ops1;
  List.iter (apply_durable d) ops1;
  ignore (Replica.poll r);
  let tail = op_stream 108 5 in
  let fired = ref false in
  Replica.set_after_read_hook_for_testing r
    (Some
       (fun () ->
         if not !fired then begin
           fired := true;
           List.iter (apply_online twin) tail;
           List.iter (apply_durable d) tail;
           (* Two checkpoints: the second GCs the log the replica is
              mid-decision on. *)
           Durable.checkpoint d;
           Durable.checkpoint d
         end));
  ignore (Replica.poll r);
  Replica.set_after_read_hook_for_testing r None;
  Alcotest.(check bool) "race fired" true !fired;
  Alcotest.(check int) "reopened" 1 (Replica.status r).Replica.reopens;
  check_twin "twin after GC'd rollover" twin r;
  Durable.close d

let test_torn_tail_applies_valid_prefix_then_resumes () =
  let dir = fresh_dir () in
  let d, _ = make_durable dir in
  let ops = op_stream 95 8 in
  List.iter (apply_durable d) ops;
  Durable.close d;
  let wal_path = Layout.wal_path ~dir 1 in
  let full = read_file wal_path in
  (* Simulate an append in flight: half a record past a valid prefix. *)
  let scan = Wal.scan ~path:wal_path in
  let cut = scan.Wal.valid_bytes - 11 in
  write_file wal_path (String.sub full 0 cut);
  let r = open_replica dir in
  let n1 = Replica.catch_up r in
  Alcotest.(check bool) "partial apply" true (n1 < List.length ops && n1 > 0);
  Alcotest.(check bool) "torn reported" true ((Replica.status r).Replica.last_error <> None);
  (* The missing bytes land (leader finished the write): resume from the
     cursor without reopening. *)
  write_file wal_path full;
  let n2 = Replica.poll r in
  Alcotest.(check int) "resumed the rest" (List.length ops - n1) n2;
  Alcotest.(check int) "no reopen" 0 (Replica.status r).Replica.reopens;
  let twin = make_twin () in
  List.iter (apply_online twin) ops;
  check_twin "after torn resume" twin r

let test_shrunken_wal_forces_reopen () =
  let dir = fresh_dir () in
  let d, _ = make_durable dir in
  let ops = op_stream 96 10 in
  List.iter (apply_durable d) ops;
  Durable.close d;
  let wal_path = Layout.wal_path ~dir 1 in
  let full = read_file wal_path in
  let r = open_replica dir in
  ignore (Replica.catch_up r);
  (* A recovering leader truncated history below our cursor: keep only
     the first 4 records (header is 24 bytes per record). *)
  let keep =
    let p = Wal.read_valid_prefix ~path:wal_path () in
    let off = ref 0 in
    Array.iteri
      (fun i payload -> if i < 4 then off := !off + 24 + String.length payload)
      p.Wal.payloads;
    !off
  in
  write_file wal_path (String.sub full 0 keep);
  ignore (Replica.poll r);
  Alcotest.(check int) "reopened" 1 (Replica.status r).Replica.reopens;
  let twin = make_twin () in
  List.iteri (fun i op -> if i < 4 then apply_online twin op) ops;
  check_twin "rewound to truncated history" twin r

let test_ship_and_tail_copy () =
  let ldir = fresh_dir () and fdir = fresh_dir () in
  let twin = make_twin () in
  let d, _ = make_durable ldir in
  let ops1 = op_stream 97 15 in
  List.iter (apply_online twin) ops1;
  List.iter (apply_durable d) ops1;
  Alcotest.(check bool) "first ship copies bytes" true
    (Replica.ship ~src:ldir ~dst:fdir () > 0);
  let r = open_replica fdir in
  ignore (Replica.catch_up r);
  check_twin "shipped copy" twin r;
  (* Incremental: leader keeps writing and checkpoints; shipping again
     appends the delta and picks up the new generation's files. *)
  Durable.checkpoint d;
  let ops2 = op_stream 98 10 in
  List.iter (apply_online twin) ops2;
  List.iter (apply_durable d) ops2;
  let before = leader_files ldir in
  ignore (Replica.ship ~src:ldir ~dst:fdir ());
  ignore (Replica.catch_up r);
  check_twin "after incremental ship" twin r;
  Alcotest.(check bool) "shipping never touched the leader" true
    (leader_files ldir = before);
  Durable.close d

(* Regression: the leader crash-recovers between two ship calls —
   truncates a torn tail and re-appends new records past the previously
   shipped length.  Treating the growth as pure append would leave the
   follower's copy with mixed old/new bytes and a permanently torn
   tail; ship must notice the diverged prefix and recopy wholesale. *)
let test_ship_detects_rewritten_history () =
  let ldir = fresh_dir () and fdir = fresh_dir () in
  let src_wal = Layout.wal_path ~dir:ldir 1 in
  let dst_wal = Layout.wal_path ~dir:fdir 1 in
  let w = Wal.create ~fsync:false ~path:src_wal () in
  List.iter (fun p -> ignore (Wal.append w p)) [ "alpha"; "bravo"; "charlie" ];
  Wal.close w;
  let valid = read_file src_wal in
  write_file src_wal (valid ^ "half-written record torn by the crash");
  ignore (Replica.ship ~src:ldir ~dst:fdir ());
  Alcotest.(check string) "first ship mirrors src" (read_file src_wal)
    (read_file dst_wal);
  (* Crash recovery on the leader: torn tail truncated, then new records
     re-appended well past the shipped length before the next ship. *)
  write_file src_wal valid;
  let w, _ = Wal.open_append ~fsync:false ~path:src_wal () in
  List.iter
    (fun p -> ignore (Wal.append w p))
    [ "delta-replacement-one"; "echo-replacement-two"; "foxtrot-replacement-three" ];
  Wal.close w;
  Alcotest.(check bool) "src grew past the shipped length" true
    (String.length (read_file src_wal) > String.length (read_file dst_wal));
  ignore (Replica.ship ~src:ldir ~dst:fdir ());
  Alcotest.(check string) "diverged log recopied wholesale" (read_file src_wal)
    (read_file dst_wal);
  let p = Wal.read_valid_prefix ~path:dst_wal () in
  Alcotest.(check bool) "follower copy is clean" false p.Wal.prefix_torn;
  Alcotest.(check int) "all records present" 6 (Array.length p.Wal.payloads)

(* The heart of the failover harness: kill the leader at every WAL byte
   offset; whatever survives on disk, the replica must come up as the
   twin of exactly the surviving valid-record prefix.  Expected twins
   are cached per record count — there are only n_ops+1 distinct
   states for len(wal)+1 cut points. *)
let test_kill_at_every_wal_offset () =
  let dir = fresh_dir () in
  let d, _ = make_durable dir in
  let ops = op_stream 99 6 in
  List.iter (apply_durable d) ops;
  Durable.close d;
  let snap = read_file (Layout.snapshot_path ~dir 1) in
  let full = read_file (Layout.wal_path ~dir 1) in
  let ops = Array.of_list ops in
  let twins = Hashtbl.create 8 in
  let twin_for n =
    match Hashtbl.find_opt twins n with
    | Some t -> t
    | None ->
        let t = make_twin () in
        for i = 0 to n - 1 do
          apply_online t ops.(i)
        done;
        Hashtbl.add twins n t;
        t
  in
  for cut = 0 to String.length full do
    let cdir = fresh_dir () in
    write_file (Layout.snapshot_path ~dir:cdir 1) snap;
    write_file (Layout.wal_path ~dir:cdir 1) (String.sub full 0 cut);
    let r = open_replica cdir in
    ignore (Replica.catch_up r);
    let survived = (Replica.status r).Replica.applied in
    check_twin (Printf.sprintf "kill at wal byte %d" cut) (twin_for survived) r
  done;
  (* Sanity: the harness exercised both the empty and the full prefix. *)
  Alcotest.(check bool) "cuts covered both extremes" true
    (Hashtbl.mem twins 0 && Hashtbl.mem twins (Array.length ops))

let test_kill_points_during_checkpoint () =
  List.iter
    (fun kill ->
      let dir = fresh_dir () in
      let twin = make_twin () in
      let d, _ = make_durable dir in
      let ops = op_stream 100 12 in
      List.iter (apply_online twin) ops;
      List.iter (apply_durable d) ops;
      (match Durable.checkpoint ~kill d with
      | () -> Alcotest.fail "kill point did not fire"
      | exception Durable.Killed _ -> ());
      Durable.close d;
      (* No leader recovery ran: the replica faces the half-finished
         checkpoint exactly as the crash left it. *)
      let r = open_replica dir in
      ignore (Replica.catch_up r);
      check_twin "replica over killed checkpoint" twin r)
    [ Durable.After_snapshot; Durable.After_wal_switch ]

let test_promote_fences_and_leads () =
  let dir = fresh_dir () in
  let twin = make_twin () in
  let d, _ = make_durable dir in
  let ops = op_stream 101 15 in
  List.iter (apply_online twin) ops;
  List.iter (apply_durable d) ops;
  let old_generation = Durable.generation d in
  Durable.close d;
  let m = Metrics.create () in
  Metrics.with_installed m (fun () ->
      let r = open_replica dir in
      ignore (Replica.catch_up r);
      let promoted = Replica.promote ~fsync:false ~encode r in
      Alcotest.(check bool)
        "fenced above the old timeline" true
        (Durable.generation promoted > old_generation);
      Alcotest.(check int) "promotion counted" 1
        (Registry.counter_value m.Metrics.replica_promotions_total);
      (match Replica.poll r with
      | _ -> Alcotest.fail "poll after promote must raise"
      | exception Invalid_argument _ -> ());
      (* The new leader keeps writing; the twin follows. *)
      let more = op_stream 102 10 in
      List.iter (apply_online twin) more;
      List.iter (apply_durable promoted) more;
      Alcotest.(check int) "twin size after promotion" (Online.size twin)
        (Durable.size promoted);
      Alcotest.(check bool)
        "twin rng after promotion" true
        (Online.rng_state twin = Online.rng_state (Durable.online promoted));
      Array.iteri
        (fun i q ->
          if Online.search twin q <> Durable.search promoted q then
            Alcotest.failf "query %d diverges after promotion" i)
        queries;
      Durable.close promoted);
  (* A later recovery starts from the promoted timeline, not the old
     one — zombie appends to the fenced generation are unreachable. *)
  let d2, recovery =
    Durable.open_or_create ~rng:(Rng.create 42) ~space:l2 ~config:small_config
      ~rebuild_factor:1.5 ~target_accuracy:0.9 ~encode ~decode ~dir ()
  in
  (match recovery.Durable.source with
  | `Snapshot g ->
      Alcotest.(check bool) "recovered from the fence or later" true (g > old_generation)
  | _ -> Alcotest.fail "expected snapshot recovery");
  Alcotest.(check int) "promoted history replayed" (Online.size twin) (Durable.size d2);
  Durable.close d2

let test_replica_metrics_wired () =
  let dir = fresh_dir () in
  let d, _ = make_durable dir in
  let ops = op_stream 103 10 in
  List.iter (apply_durable d) ops;
  Durable.close d;
  let m = Metrics.create () in
  Metrics.with_installed m (fun () ->
      let r = open_replica dir in
      ignore (Replica.catch_up r);
      Alcotest.(check int) "applied counter" (List.length ops)
        (Registry.counter_value m.Metrics.replica_applied_total);
      Alcotest.(check int) "lag gauge settled" 0
        (Registry.gauge_value m.Metrics.replica_lag_records))

(* Readers hammer the replica from [domains] domains while the main
   domain applies records — the lock-free publication path must keep
   every concurrently observed answer coherent (a valid prefix of
   history), and the final state must still be the twin. *)
let test_concurrent_reads_while_applying () =
  let dir = fresh_dir () in
  let twin = make_twin () in
  let d, _ = make_durable dir in
  let r = open_replica dir in
  let stop = Atomic.make false in
  let readers =
    List.init domains (fun k ->
        Domain.spawn (fun () ->
            let n = ref 0 in
            while not (Atomic.get stop) do
              let q = queries.(!n mod Array.length queries) in
              (match Replica.search r q with
              | { Online.nn = Some (_, dist); _ } ->
                  if Float.is_nan dist then failwith "nan distance"
              | { Online.nn = None; _ } -> ());
              (* Handle reads race the applier's deletes: a dead handle
                 must raise cleanly, never crash or misbehave (the dead
                 set is a monotone byte map, not a resizing table). *)
              (match Replica.get r (!n mod Array.length seed_db) with
              | (_ : float array) -> ()
              | exception Invalid_argument _ -> ());
              incr n
            done;
            (k, !n)))
  in
  let ops = op_stream 104 40 in
  List.iter
    (fun op ->
      apply_online twin op;
      apply_durable d op;
      ignore (Replica.poll r))
    ops;
  Atomic.set stop true;
  let counts = List.map Domain.join readers in
  Alcotest.(check int) "all readers ran" domains (List.length counts);
  Durable.close d;
  ignore (Replica.catch_up r);
  check_twin "twin despite concurrent readers" twin r

(* A permanently torn tail behind a dead leader used to stall catch_up
   for the full stall_limit ladder; ~deadline must cap the whole loop
   regardless of how generous stall_limit is. *)
let test_catch_up_deadline_bounds_stall () =
  let dir = fresh_dir () in
  let d, _ = make_durable dir in
  let ops = op_stream 111 8 in
  List.iter (apply_durable d) ops;
  Durable.close d;
  let wal_path = Layout.wal_path ~dir 1 in
  let full = read_file wal_path in
  let scan = Wal.scan ~path:wal_path in
  write_file wal_path (String.sub full 0 (scan.Wal.valid_bytes - 7));
  let r = open_replica dir in
  let t0 = Unix.gettimeofday () in
  let applied = Replica.catch_up ~stall_limit:1_000_000 ~deadline:0.25 r in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "valid prefix applied" true
    (applied > 0 && applied < List.length ops);
  Alcotest.(check bool)
    (Printf.sprintf "deadline held (%.2fs)" elapsed)
    true (elapsed < 2.0);
  Alcotest.(check bool) "torn tail reported" true
    ((Replica.status r).Replica.last_error <> None)

(* dbh-cli replicate --follow regression: a follow loop told to stop
   (the CLI flips an atomic from its SIGINT/SIGTERM handler) must exit
   promptly, having shipped + applied what the leader wrote, and leave
   the replica closed with the lag gauges flushed to 0. *)
let test_follow_stops_cleanly () =
  let ldir = fresh_dir () and fdir = fresh_dir () in
  let twin = make_twin () in
  let d, _ = make_durable ldir in
  let ops = op_stream 112 12 in
  List.iter (apply_online twin) ops;
  List.iter (apply_durable d) ops;
  ignore (Replica.ship ~src:ldir ~dst:fdir ());
  let m = Metrics.create () in
  Metrics.with_installed m (fun () ->
      let r = open_replica fdir in
      let stop = Atomic.make false in
      let rounds = Atomic.make 0 and applied = Atomic.make 0 in
      let follower =
        Thread.create
          (fun () ->
            Replica.follow ~ship_from:ldir ~interval:0.02
              ~should_stop:(fun () -> Atomic.get stop)
              ~on_round:(fun ~shipped:_ ~applied:n ->
                Atomic.incr rounds;
                ignore (Atomic.fetch_and_add applied n))
              r)
          ()
      in
      (* The leader keeps writing while the loop runs; wait until the
         follower has observed everything, then ask it to stop. *)
      let tail = op_stream 113 6 in
      List.iter (apply_online twin) tail;
      List.iter (apply_durable d) tail;
      let want = Online.size twin in
      let t0 = Unix.gettimeofday () in
      while Replica.size r <> want && Unix.gettimeofday () -. t0 < 10. do
        Thread.yield ();
        Unix.sleepf 0.01
      done;
      Atomic.set stop true;
      Thread.join follower;
      Alcotest.(check bool) "rounds ran" true (Atomic.get rounds > 0);
      Alcotest.(check int) "every record applied through follow"
        (List.length ops + List.length tail)
        (Atomic.get applied);
      Alcotest.(check bool) "replica closed on exit" true (Replica.closed r);
      Alcotest.(check int) "lag gauge flushed" 0
        (Registry.gauge_value m.Metrics.replica_lag_records);
      (* Reads survive close; the applied state is the twin. *)
      check_twin "twin after follow stop" twin r;
      (match Replica.poll r with
      | _ -> Alcotest.fail "poll after close must raise"
      | exception Invalid_argument _ -> ()));
  Durable.close d

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "replica"
    [
      ( "retry",
        [
          Alcotest.test_case "deterministic geometric backoff" `Quick
            test_retry_deterministic_geometric;
          Alcotest.test_case "jitter stays bounded" `Quick test_retry_jitter_bounded;
          Alcotest.test_case "bad policies rejected" `Quick test_retry_rejects_bad_policies;
          Alcotest.test_case "backoff_within caps and stops" `Quick
            test_retry_backoff_within_caps_and_stops;
          Alcotest.test_case "backoff_within preserves the jitter stream" `Quick
            test_retry_backoff_within_preserves_jitter_stream;
        ] );
      ( "wal-tailing",
        [
          Alcotest.test_case "resumable cursor" `Quick test_prefix_resumable_cursor;
          Alcotest.test_case "read path never truncates" `Quick test_prefix_never_truncates;
          Alcotest.test_case "shrink detected" `Quick test_prefix_detects_shrink;
        ] );
      ( "layout",
        qsuite [ test_layout_strays_never_discovered ]
        @ [
            Alcotest.test_case "checkpoint GC spares strays" `Quick
              test_layout_checkpoint_gc_spares_strays;
          ] );
      ( "replica",
        [
          Alcotest.test_case "catch-up is a bit-identical twin" `Quick test_catch_up_is_twin;
          Alcotest.test_case "tailing never modifies leader files" `Quick
            test_tailing_never_modifies_leader_files;
          Alcotest.test_case "live tailing follows rollover" `Quick
            test_live_tailing_follows_rollover;
          Alcotest.test_case "rollover race does not skip tail records" `Quick
            test_rollover_race_does_not_skip_tail_records;
          Alcotest.test_case "rollover race with GC forces reopen" `Quick
            test_rollover_race_with_gc_forces_reopen;
          Alcotest.test_case "torn tail: apply prefix, then resume" `Quick
            test_torn_tail_applies_valid_prefix_then_resumes;
          Alcotest.test_case "shrunken wal forces reopen" `Quick
            test_shrunken_wal_forces_reopen;
          Alcotest.test_case "ship and tail a copy" `Quick test_ship_and_tail_copy;
          Alcotest.test_case "ship detects rewritten history" `Quick
            test_ship_detects_rewritten_history;
          Alcotest.test_case "metrics wired" `Quick test_replica_metrics_wired;
          Alcotest.test_case "concurrent reads while applying" `Quick
            test_concurrent_reads_while_applying;
          Alcotest.test_case "catch-up deadline bounds a stall" `Quick
            test_catch_up_deadline_bounds_stall;
          Alcotest.test_case "follow stops cleanly" `Quick test_follow_stops_cleanly;
        ] );
      ( "failover",
        [
          Alcotest.test_case "kill at every wal byte offset" `Slow
            test_kill_at_every_wal_offset;
          Alcotest.test_case "kill points during checkpoint" `Quick
            test_kill_points_during_checkpoint;
          Alcotest.test_case "promote fences and leads" `Quick
            test_promote_fences_and_leads;
        ] );
    ]
