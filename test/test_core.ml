(* Tests for the DBH core: projections, hash family, collision model,
   statistical analysis, parameter search, index, hierarchical index. *)

module Rng = Dbh_util.Rng
module Space = Dbh_space.Space
module Minkowski = Dbh_metrics.Minkowski
module Projection = Dbh.Projection
module Hash_family = Dbh.Hash_family
module Collision = Dbh.Collision
module Analysis = Dbh.Analysis
module Params = Dbh.Params
module Index = Dbh.Index
module Scratch = Dbh.Scratch
module Hierarchical = Dbh.Hierarchical
module Builder = Dbh.Builder

let check_float = Alcotest.(check (float 1e-9))
let check_loose tol = Alcotest.(check (float tol))

let l2 = Minkowski.l2_space

(* Shared small Euclidean test universe: clustered points in R^4. *)
let test_db seed n =
  let rng = Rng.create seed in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:8 ~dim:4 n in
  db

(* ------------------------------------------------------------ Projection *)

let test_projection_euclidean_exact () =
  (* In Euclidean space F^{A,B}(X) is the scalar projection of X-A on B-A. *)
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    let v () = Array.init 3 (fun _ -> Rng.float_in rng (-5.) 5.) in
    let a = v () and b = v () and x = v () in
    let d12 = Minkowski.l2 a b in
    if d12 > 1e-6 then begin
      let line = Projection.line l2 a b in
      let f = Projection.project l2 line x in
      let dot = ref 0. in
      Array.iteri (fun i ai -> dot := !dot +. ((x.(i) -. ai) *. (b.(i) -. ai))) a;
      let expected = !dot /. d12 in
      check_loose 1e-6 "scalar projection" expected f
    end
  done

let test_projection_endpoints () =
  let a = [| 0.; 0. |] and b = [| 4.; 0. |] in
  let line = Projection.line l2 a b in
  check_float "F(A) = 0" 0. (Projection.project l2 line a);
  check_float "F(B) = d12" 4. (Projection.project l2 line b)

let test_projection_zero_distance_rejected () =
  Alcotest.check_raises "degenerate line"
    (Invalid_argument "Projection.line: reference objects at distance 0")
    (fun () -> ignore (Projection.line l2 [| 1. |] [| 1. |]))

let test_project_with_formula () =
  check_float "formula" 0.75 (Projection.project_with ~d1:1. ~d2:1. ~d12:1.5);
  (* (1 + 2.25 - 1) / 3 = 0.75 *)
  check_float "midpoint" 1. (Projection.project_with ~d1:1. ~d2:1. ~d12:2.)

(* ----------------------------------------------------------- Hash family *)

let make_family ?(seed = 2) ?(n = 300) ?(num_pivots = 20) ?max_functions () =
  let db = test_db seed n in
  let rng = Rng.create (seed + 1000) in
  let family =
    Hash_family.make ~rng ~space:l2 ~num_pivots ~threshold_sample:200 ?max_functions db
  in
  (family, db)

let test_family_size_all_pairs () =
  let family, _ = make_family () in
  Alcotest.(check int) "pivots" 20 (Hash_family.num_pivots family);
  (* C(20,2) = 190 (all pivot pairs distinct in a continuous space). *)
  Alcotest.(check int) "functions" 190 (Hash_family.size family)

let test_family_max_functions () =
  let family, _ = make_family ~max_functions:37 () in
  Alcotest.(check int) "capped" 37 (Hash_family.size family)

let test_family_more_pivots_than_data () =
  let db = test_db 3 10 in
  let rng = Rng.create 4 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:100 ~threshold_sample:50 db in
  Alcotest.(check int) "clamped to data" 10 (Hash_family.num_pivots family)

let test_family_balance () =
  (* Each binary function should split a held-out sample from the same
     distribution roughly in half. *)
  let all = test_db 2 700 in
  let rng = Rng.create 1002 in
  let family =
    Hash_family.make ~rng ~space:l2 ~num_pivots:20 ~threshold_sample:200 (Array.sub all 0 400)
  in
  let holdout = Array.sub all 400 300 in
  let balances =
    Array.init (Hash_family.size family) (fun i -> Hash_family.balance family i holdout)
  in
  let mean = Dbh_util.Stats.mean balances in
  check_loose 0.06 "mean balance ~ 0.5" 0.5 mean;
  (* No function may be grossly unbalanced. *)
  Array.iter
    (fun b -> Alcotest.(check bool) "individual balance" true (b > 0.2 && b < 0.8))
    balances

let test_family_eval_cache_consistent () =
  let family, db = make_family () in
  let rng = Rng.create 77 in
  for _ = 1 to 50 do
    let x = db.(Rng.int rng (Array.length db)) in
    let cache = Hash_family.cache family x in
    let i = Rng.int rng (Hash_family.size family) in
    Alcotest.(check bool) "cached = direct" (Hash_family.eval_direct family x i)
      (Hash_family.eval family cache i)
  done

let test_family_cache_cost_counts_distinct_pivots () =
  let family, db = make_family () in
  let q = db.(0) in
  let cache = Hash_family.cache family q in
  Alcotest.(check int) "no cost before eval" 0 (Hash_family.cache_cost cache);
  ignore (Hash_family.eval family cache 0);
  let f0 = Hash_family.fn family 0 in
  let expected = if f0.Hash_family.p1 = f0.Hash_family.p2 then 1 else 2 in
  Alcotest.(check int) "two pivots after one eval" expected (Hash_family.cache_cost cache);
  (* Re-evaluating the same function costs nothing more. *)
  ignore (Hash_family.eval family cache 0);
  Alcotest.(check int) "memoized" expected (Hash_family.cache_cost cache);
  (* Evaluating everything can never exceed the pivot count. *)
  for i = 0 to Hash_family.size family - 1 do
    ignore (Hash_family.eval family cache i)
  done;
  Alcotest.(check bool) "bounded by pivots" true
    (Hash_family.cache_cost cache <= Hash_family.num_pivots family)

let test_family_hash_cost_realized_via_counter () =
  (* The realized distance count through a counted space equals the
     cache-cost bookkeeping. *)
  let db = test_db 5 200 in
  let build_rng = Rng.create 6 in
  let counted, counter = Space.with_counter l2 in
  let family =
    Hash_family.make ~rng:build_rng ~space:counted ~num_pivots:15 ~threshold_sample:100 db
  in
  Space.reset counter;
  let q = test_db 123 1 in
  let cache = Hash_family.cache family q.(0) in
  for i = 0 to Hash_family.size family - 1 do
    ignore (Hash_family.eval family cache i)
  done;
  Alcotest.(check int) "counter = cache_cost" (Hash_family.cache_cost cache)
    (Space.count counter)

let test_family_signature () =
  let family, db = make_family () in
  let rng = Rng.create 8 in
  let fn_indices = Hash_family.sample_fn_indices ~rng family 64 in
  let s = Hash_family.signature family ~fn_indices db.(3) in
  Alcotest.(check int) "signature length" 64 (Dbh_util.Bitvec.length s);
  (* Signature bits match individual evaluations. *)
  Array.iteri
    (fun pos i ->
      Alcotest.(check bool) "bit matches" (Hash_family.eval_direct family db.(3) i)
        (Dbh_util.Bitvec.get s pos))
    fn_indices

let test_family_interval_validity () =
  let family, _ = make_family () in
  for i = 0 to Hash_family.size family - 1 do
    let f = Hash_family.fn family i in
    Alcotest.(check bool) "t1 < t2" true (f.Hash_family.t1 < f.Hash_family.t2);
    Alcotest.(check bool) "d12 > 0" true (f.Hash_family.d12 > 0.)
  done

let test_family_median_split_strategy () =
  (* The ablation knob of DESIGN.md §5: one-sided median thresholds.  The
     family must stay balanced and usable end-to-end. *)
  let all = test_db 2 700 in
  let rng = Rng.create 1003 in
  let db = Array.sub all 0 400 in
  let family =
    Hash_family.make ~rng ~space:l2 ~num_pivots:20 ~threshold_sample:200
      ~selector:(Dbh.Selector.uniform ~threshold_strategy:Dbh.Selector.Median_split ()) db
  in
  (* Every interval is one-sided. *)
  for i = 0 to Hash_family.size family - 1 do
    let f = Hash_family.fn family i in
    Alcotest.(check bool) "lower side open" true (f.Hash_family.t1 = neg_infinity);
    Alcotest.(check bool) "finite median" true (Float.is_finite f.Hash_family.t2)
  done;
  (* Balance holds on held-out data. *)
  let holdout = Array.sub all 400 300 in
  let balances =
    Array.init (Hash_family.size family) (fun i -> Hash_family.balance family i holdout)
  in
  check_loose 0.06 "median balance ~ 0.5" 0.5 (Dbh_util.Stats.mean balances);
  (* And retrieval works through the normal index machinery. *)
  let index = Index.build ~rng ~family ~db ~k:5 ~l:8 () in
  let hits = ref 0 in
  for i = 0 to 30 do
    match (Index.search index db.(i * 7)).Index.nn with
    | Some (_, d) when d = 0. -> incr hits
    | _ -> ()
  done;
  Alcotest.(check bool) "self queries resolve" true (!hits >= 28)

let test_family_rejects_tiny () =
  Alcotest.check_raises "one object"
    (Invalid_argument "Hash_family.make: need at least 2 objects")
    (fun () ->
      ignore (Hash_family.make ~rng:(Rng.create 1) ~space:l2 [| [| 1. |] |]))

let test_family_rejects_degenerate () =
  (* All objects identical: every pivot pair is at distance zero. *)
  let db = Array.make 10 [| 1.; 1. |] in
  Alcotest.check_raises "no usable line"
    (Invalid_argument "Hash_family.make: all pivot pairs are at distance 0")
    (fun () ->
      ignore
        (Hash_family.make ~rng:(Rng.create 1) ~space:l2 ~num_pivots:5 ~threshold_sample:10 db))

(* -------------------------------------------------------------- Collision *)

let test_collision_closed_forms () =
  check_float "c_k" 0.25 (Collision.c_k 0.5 2);
  check_float "c_k zero power" 1. (Collision.c_k 0.3 0);
  check_float "c_kl single" 0.25 (Collision.c_kl 0.5 ~k:2 ~l:1);
  check_float "c_kl union" (1. -. (0.75 ** 3.)) (Collision.c_kl 0.5 ~k:2 ~l:3);
  check_float "c=1 collides always" 1. (Collision.c_kl 1. ~k:10 ~l:1);
  check_float "c=0 never" 0. (Collision.c_kl 0. ~k:1 ~l:100)

let test_collision_monotonicity () =
  let c = 0.7 in
  for l = 1 to 20 do
    Alcotest.(check bool) "increasing in l" true
      (Collision.c_kl c ~k:5 ~l:(l + 1) >= Collision.c_kl c ~k:5 ~l)
  done;
  for k = 1 to 20 do
    Alcotest.(check bool) "decreasing in k" true
      (Collision.c_kl c ~k:(k + 1) ~l:7 <= Collision.c_kl c ~k ~l:7)
  done

let test_collision_l_for_target () =
  let c = 0.6 and k = 3 in
  (match Collision.l_for_target c ~k ~target:0.9 with
  | None -> Alcotest.fail "should be reachable"
  | Some l ->
      Alcotest.(check bool) "reaches target" true (Collision.c_kl c ~k ~l >= 0.9);
      if l > 1 then
        Alcotest.(check bool) "minimal" true (Collision.c_kl c ~k ~l:(l - 1) < 0.9));
  Alcotest.(check bool) "unreachable when c=0" true
    (Collision.l_for_target 0. ~k:2 ~target:0.5 = None)

let test_collision_estimate_self () =
  let family, db = make_family () in
  let rng = Rng.create 9 in
  check_float "self collision" 1. (Collision.estimate ~rng family db.(0) db.(0))

let test_collision_estimate_range_and_exact () =
  let family, db = make_family () in
  let rng = Rng.create 10 in
  for i = 1 to 10 do
    let c = Collision.estimate ~rng ~num_fns:150 family db.(0) db.(i) in
    Alcotest.(check bool) "in [0,1]" true (c >= 0. && c <= 1.);
    let exact = Collision.estimate_exact family db.(0) db.(i) in
    check_loose 0.15 "sampled approximates exact" exact c
  done

let test_collision_close_pairs_collide_more () =
  (* Collision rate should decrease with distance, on average, in a
     clustered Euclidean space. *)
  let family, db = make_family ~n:400 () in
  let q = db.(0) in
  let others = Array.sub db 1 200 in
  let dists = Array.map (fun x -> Minkowski.l2 q x) others in
  let rates = Array.map (fun x -> Collision.estimate_exact family q x) others in
  let corr = Dbh_util.Stats.pearson dists rates in
  Alcotest.(check bool) "anti-correlated" true (corr < -0.4)

let test_collision_random_matrix_is_half () =
  (* Paper Sec. IV-B: on a random metric distance matrix the collision
     rate hovers near 0.5 regardless of the pair's distance — the family
     is not locality sensitive. *)
  let rng = Rng.create 11 in
  let n = 120 in
  let m = Space.random_metric_matrix rng n in
  let space = Space.of_matrix m in
  let db = Array.init n (fun i -> i) in
  let family = Hash_family.make ~rng ~space ~num_pivots:30 ~threshold_sample:100 db in
  let rates = ref [] in
  for i = 40 to 59 do
    for j = 60 to 79 do
      rates := Collision.estimate_exact family i j :: !rates
    done
  done;
  let rates = Array.of_list !rates in
  check_loose 0.05 "mean rate ~ 0.5" 0.5 (Dbh_util.Stats.mean rates);
  (* And distance explains almost none of the variance. *)
  let dists = ref [] in
  for i = 40 to 59 do
    for j = 60 to 79 do
      dists := m.(i).(j) :: !dists
    done
  done;
  let corr = Dbh_util.Stats.pearson (Array.of_list !dists) rates in
  Alcotest.(check bool) "uninformative distances" true (Float.abs corr < 0.3)

let test_pairwise_matrix () =
  let family, db = make_family () in
  let rng = Rng.create 12 in
  let sample = Array.sub db 0 10 in
  let m = Collision.pairwise_matrix ~rng ~num_fns:100 family sample in
  for i = 0 to 9 do
    check_float "diag" 1. m.(i).(i);
    for j = 0 to 9 do
      check_float "symmetric" m.(i).(j) m.(j).(i)
    done
  done

let test_collision_closed_form_matches_simulation () =
  (* Eq. 9/10 against the real machinery: draw many (k,l) indexes over a
     small database and check that the fraction of draws in which a fixed
     pair collides in >= 1 table matches 1 - (1 - C^k)^l. *)
  let family, db = make_family ~n:200 () in
  let x1 = db.(0) and x2 = db.(1) in
  let c = Collision.estimate_exact family x1 x2 in
  let k = 3 and l = 4 in
  let trials = 400 in
  let rng = Rng.create 555 in
  let collided = ref 0 in
  for _ = 1 to trials do
    (* Simulate the index's function draw directly on the pair. *)
    let one_table_collides () =
      let fns = Hash_family.sample_fn_indices ~rng family k in
      Array.for_all
        (fun i -> Hash_family.eval_direct family x1 i = Hash_family.eval_direct family x2 i)
        fns
    in
    let rec any_table t = t < l && (one_table_collides () || any_table (t + 1)) in
    if any_table 0 then incr collided
  done;
  let simulated = float_of_int !collided /. float_of_int trials in
  let predicted = Collision.c_kl c ~k ~l in
  (* Binomial noise at 400 trials: allow a generous band. *)
  check_loose 0.08
    (Printf.sprintf "simulated %.3f vs predicted %.3f" simulated predicted)
    predicted simulated

(* --------------------------------------------------------------- Analysis *)

let make_analysis ?(seed = 20) ?(n = 400) ?(queries = 60) () =
  let db = test_db seed n in
  let rng = Rng.create (seed + 1) in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:25 ~threshold_sample:200 db in
  let query_indices = Rng.sample_indices rng queries n in
  let analysis = Analysis.build ~rng ~family ~db ~query_indices ~num_fns:200 ~db_sample:200 () in
  (analysis, family, db, query_indices)

let test_analysis_shapes () =
  let analysis, family, db, query_indices = make_analysis () in
  Alcotest.(check int) "queries" 60 (Analysis.num_queries analysis);
  Alcotest.(check int) "db size" (Array.length db) (Analysis.db_size analysis);
  ignore family;
  ignore query_indices

let test_analysis_accuracy_monotone () =
  let analysis, _, _, _ = make_analysis () in
  for l = 1 to 15 do
    Alcotest.(check bool) "acc up in l" true
      (Analysis.accuracy analysis ~k:4 ~l:(l + 1) >= Analysis.accuracy analysis ~k:4 ~l -. 1e-12)
  done;
  for k = 1 to 15 do
    Alcotest.(check bool) "acc down in k" true
      (Analysis.accuracy analysis ~k:(k + 1) ~l:5 <= Analysis.accuracy analysis ~k ~l:5 +. 1e-12)
  done

let test_analysis_lookup_monotone_and_bounded () =
  let analysis, _, _, _ = make_analysis () in
  for l = 1 to 15 do
    Alcotest.(check bool) "lookup up in l" true
      (Analysis.lookup_cost analysis ~k:4 ~l:(l + 1)
      >= Analysis.lookup_cost analysis ~k:4 ~l -. 1e-9)
  done;
  let full = Analysis.lookup_cost analysis ~k:1 ~l:500 in
  Alcotest.(check bool) "bounded by db size" true
    (full <= float_of_int (Analysis.db_size analysis) +. 1e-6)

let test_analysis_hash_cost_bounds () =
  let analysis, family, _, _ = make_analysis () in
  let m = float_of_int (Hash_family.num_pivots family) in
  Alcotest.(check bool) "small kl small cost" true (Analysis.hash_cost analysis ~k:1 ~l:1 <= 2.01);
  Alcotest.(check bool) "bounded by pivots" true
    (Analysis.hash_cost analysis ~k:30 ~l:1000 <= m +. 1e-6);
  Alcotest.(check bool) "monotone" true
    (Analysis.hash_cost analysis ~k:4 ~l:10 >= Analysis.hash_cost analysis ~k:4 ~l:2 -. 1e-9)

let test_analysis_hash_cost_upper_bounds () =
  (* Sec. V-B: HashCost <= min(2·k·l, |X_small|), also in expectation. *)
  let analysis, family, _, _ = make_analysis () in
  let m = float_of_int (Hash_family.num_pivots family) in
  let rng = Rng.create 3210 in
  for _ = 1 to 50 do
    let k = 1 + Rng.int rng 30 and l = 1 + Rng.int rng 200 in
    let h = Analysis.hash_cost analysis ~k ~l in
    Alcotest.(check bool) "<= 2kl" true (h <= (2. *. float_of_int (k * l)) +. 1e-9);
    Alcotest.(check bool) "<= pivots" true (h <= m +. 1e-9);
    Alcotest.(check bool) "nonnegative" true (h >= 0.)
  done

let test_analysis_nn_collision_high () =
  (* Nearest neighbors collide much more often than random pairs. *)
  let analysis, _, _, _ = make_analysis () in
  let rates = Array.init (Analysis.num_queries analysis) (Analysis.nn_collision analysis) in
  Alcotest.(check bool) "nn collision > 0.6 on average" true
    (Dbh_util.Stats.mean rates > 0.6)

let test_analysis_restrict () =
  let analysis, _, _, _ = make_analysis () in
  let all = Array.init (Analysis.num_queries analysis) (fun i -> i) in
  let whole = Analysis.restrict analysis all in
  check_float "restrict to all = same accuracy"
    (Analysis.accuracy analysis ~k:5 ~l:10)
    (Analysis.accuracy whole ~k:5 ~l:10);
  let half = Analysis.restrict analysis (Array.sub all 0 30) in
  Alcotest.(check int) "half size" 30 (Analysis.num_queries half)

let test_analysis_order () =
  let analysis, _, _, _ = make_analysis () in
  let order = Analysis.queries_by_nn_distance analysis in
  for i = 0 to Array.length order - 2 do
    Alcotest.(check bool) "sorted by nn distance" true
      (Analysis.nn_distance analysis order.(i) <= Analysis.nn_distance analysis order.(i + 1))
  done

let test_analysis_ground_truth_override () =
  let db = test_db 33 100 in
  let rng = Rng.create 34 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:10 ~threshold_sample:50 db in
  let query_indices = [| 0; 1 |] in
  let gt = [| (5, 0.25); (7, 0.5) |] in
  let analysis =
    Analysis.build ~rng ~family ~db ~query_indices ~ground_truth:gt ~num_fns:50 ~db_sample:50 ()
  in
  check_float "nn distance passed through" 0.25 (Analysis.nn_distance analysis 0);
  check_float "nn distance passed through 2" 0.5 (Analysis.nn_distance analysis 1)

(* ----------------------------------------------------------------- Params *)

let test_params_min_l_matches_scan () =
  let analysis, _, _, _ = make_analysis () in
  List.iter
    (fun (k, target) ->
      let binary = Params.min_l_for_accuracy analysis ~k ~target ~l_max:200 in
      (* Linear scan reference. *)
      let rec scan l =
        if l > 200 then None
        else if Analysis.accuracy analysis ~k ~l >= target then Some l
        else scan (l + 1)
      in
      Alcotest.(check (option int)) "binary = linear" (scan 1) binary)
    [ (2, 0.8); (5, 0.9); (8, 0.95); (3, 0.99) ]

let test_params_optimize_feasible () =
  let analysis, _, _, _ = make_analysis () in
  match Params.optimize analysis ~target_accuracy:0.9 ~k_max:15 ~l_max:300 () with
  | None -> Alcotest.fail "should find parameters"
  | Some c ->
      Alcotest.(check bool) "meets target" true (c.Params.predicted_accuracy >= 0.9);
      Alcotest.(check bool) "positive cost" true (c.Params.predicted_cost > 0.);
      (* No k in the landscape beats the winner. *)
      let choices = Params.landscape analysis ~target_accuracy:0.9 ~k_max:15 ~l_max:300 () in
      Array.iter
        (fun c' ->
          Alcotest.(check bool) "optimal" true
            (c.Params.predicted_cost <= c'.Params.predicted_cost +. 1e-9))
        choices

let test_params_unreachable () =
  let analysis, _, _, _ = make_analysis () in
  (* l_max=1 with big k: accuracy can't reach 0.999. *)
  Alcotest.(check bool) "unreachable" true
    (Params.optimize analysis ~target_accuracy:0.9999 ~k_min:25 ~k_max:30 ~l_max:1 () = None)

let test_params_rejects_bad_target () =
  let analysis, _, _, _ = make_analysis () in
  Alcotest.check_raises "target 1.0"
    (Invalid_argument "Params: target accuracy must lie in [0, 1)")
    (fun () -> ignore (Params.optimize analysis ~target_accuracy:1.0 ()))

(* ------------------------------------------------------------------ Index *)

let test_index_build_and_query () =
  let db = test_db 40 500 in
  let rng = Rng.create 41 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:25 ~threshold_sample:200 db in
  let index = Index.build ~rng ~family ~db ~k:6 ~l:8 () in
  Alcotest.(check int) "k" 6 (Index.k index);
  Alcotest.(check int) "l" 8 (Index.l index);
  let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.02 db.(17) in
  let r = Index.search index q in
  (match r.Index.nn with
  | None -> Alcotest.fail "expected a neighbor"
  | Some (idx, d) ->
      Alcotest.(check bool) "valid id" true (idx >= 0 && idx < 500);
      check_loose 1e-9 "distance recomputes" (Minkowski.l2 q db.(idx)) d);
  Alcotest.(check bool) "hash cost bounded" true
    (r.Index.stats.Index.hash_cost <= Hash_family.num_pivots family);
  Alcotest.(check bool) "lookup cost positive" true (r.Index.stats.Index.lookup_cost >= 0);
  Alcotest.(check int) "probes = l" 8 r.Index.stats.Index.probes

let test_index_query_is_min_of_candidates () =
  (* The returned neighbor must be the distance-minimal candidate. *)
  let db = test_db 42 300 in
  let rng = Rng.create 43 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:20 ~threshold_sample:150 db in
  let index = Index.build ~rng ~family ~db ~k:4 ~l:6 () in
  for t = 0 to 20 do
    let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.1 db.(t * 7) in
    let cache = Hash_family.cache family q in
    let scratch = Scratch.create () in
    Scratch.ensure scratch 300;
    Index.candidates_into index cache ~scratch;
    let cands = Scratch.to_list scratch in
    let r = Index.search index q in
    match (r.Index.nn, cands) with
    | None, [] -> ()
    | None, _ :: _ -> Alcotest.fail "candidates but no answer"
    | Some _, [] -> Alcotest.fail "answer but no candidates"
    | Some (idx, d), cands ->
        let best =
          List.fold_left (fun acc c -> Float.min acc (Minkowski.l2 q db.(c))) infinity cands
        in
        check_loose 1e-9 "minimum over candidates" best d;
        Alcotest.(check bool) "answer among candidates" true (List.mem idx cands);
        Alcotest.(check int) "lookup = #candidates" (List.length cands)
          r.Index.stats.Index.lookup_cost
  done

let test_index_self_query_finds_self () =
  (* A database object always collides with itself in every table. *)
  let db = test_db 44 200 in
  let rng = Rng.create 45 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:15 ~threshold_sample:100 db in
  let index = Index.build ~rng ~family ~db ~k:5 ~l:4 () in
  for i = 0 to 30 do
    let r = Index.search index db.(i) in
    match r.Index.nn with
    | Some (_, d) -> check_loose 1e-9 "zero distance" 0. d
    | None -> Alcotest.fail "self must collide"
  done

let test_index_candidates_into_dedupes () =
  let db = test_db 46 200 in
  let rng = Rng.create 47 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:15 ~threshold_sample:100 db in
  let index = Index.build ~rng ~family ~db ~k:3 ~l:10 () in
  let q = db.(5) in
  let cache = Hash_family.cache family q in
  let scratch = Scratch.create () in
  Scratch.ensure scratch 200;
  Index.candidates_into index cache ~scratch;
  let first = Scratch.to_list scratch in
  let sorted = List.sort_uniq compare first in
  Alcotest.(check int) "no duplicates" (List.length sorted) (List.length first);
  (* Second pass with the same seen mask yields nothing new. *)
  Index.candidates_into index cache ~scratch;
  Alcotest.(check int) "already seen" (List.length first) (Scratch.count scratch)

let test_index_knn () =
  let db = test_db 48 300 in
  let rng = Rng.create 49 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:20 ~threshold_sample:150 db in
  let index = Index.build ~rng ~family ~db ~k:3 ~l:12 () in
  let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.05 db.(10) in
  let knn, _stats = Index.query_knn index 5 q in
  Alcotest.(check bool) "at most 5" true (Array.length knn <= 5);
  for i = 0 to Array.length knn - 2 do
    Alcotest.(check bool) "sorted" true (snd knn.(i) <= snd knn.(i + 1))
  done;
  (* First k-NN element agrees with plain query. *)
  let r = Index.search index q in
  (match (r.Index.nn, Array.length knn) with
  | Some (_, d), n when n > 0 -> check_loose 1e-9 "same best" d (snd knn.(0))
  | None, 0 -> ()
  | _ -> Alcotest.fail "inconsistent")

let test_index_range () =
  let db = test_db 50 300 in
  let rng = Rng.create 51 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:20 ~threshold_sample:150 db in
  let index = Index.build ~rng ~family ~db ~k:3 ~l:12 () in
  let q = db.(20) in
  let hits, _ = Index.query_range index 0.3 q in
  List.iter (fun (_, d) -> Alcotest.(check bool) "within radius" true (d <= 0.3)) hits;
  let sorted = List.map snd hits in
  Alcotest.(check (list (float 1e-12))) "sorted" (List.sort compare sorted) sorted

let test_index_empty_buckets_consistent () =
  (* With k large and a single table, most far-away queries hit an empty
     bucket; the result must be None with zero lookup cost (never a stale
     or fabricated answer). *)
  let db = test_db 56 10 in
  let rng = Rng.create 57 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:8 ~threshold_sample:10 db in
  let index = Index.build ~rng ~family ~db ~k:28 ~l:1 () in
  let none_seen = ref 0 in
  for i = 0 to 30 do
    let q = Array.make 4 (100. +. float_of_int i) in
    let r = Index.search index q in
    match r.Index.nn with
    | None ->
        incr none_seen;
        Alcotest.(check int) "no lookups on empty bucket" 0 r.Index.stats.Index.lookup_cost
    | Some (idx, d) ->
        Alcotest.(check bool) "valid" true (idx >= 0 && idx < 10 && d > 0.)
  done;
  Alcotest.(check bool) "far queries mostly miss" true (!none_seen > 0)

let test_index_single_object_db () =
  let db = [| [| 1.; 2.; 3.; 4. |]; [| 1.1; 2.; 3.; 4. |] |] in
  let rng = Rng.create 58 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:2 ~threshold_sample:2 db in
  let index = Index.build ~rng ~family ~db ~k:1 ~l:2 () in
  match (Index.search index db.(0)).Index.nn with
  | Some (_, d) -> check_loose 1e-12 "self" 0. d
  | None -> Alcotest.fail "tiny db must still self-collide"

let test_index_rejects_bad_k () =
  let db = test_db 52 50 in
  let rng = Rng.create 53 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:10 ~threshold_sample:50 db in
  Alcotest.check_raises "k too large" (Invalid_argument "Index.build: k must be in [1, 62]")
    (fun () -> ignore (Index.build ~rng ~family ~db ~k:63 ~l:1 ()))

let test_index_bucket_diagnostics () =
  let db = test_db 54 300 in
  let rng = Rng.create 55 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:20 ~threshold_sample:150 db in
  let index = Index.build ~rng ~family ~db ~k:4 ~l:3 () in
  Alcotest.(check bool) "some buckets" true (Index.bucket_count index > 0);
  Alcotest.(check bool) "bucket within db" true
    (Index.largest_bucket index >= 1 && Index.largest_bucket index <= 300)

let test_index_stats_arithmetic () =
  let a = { Index.hash_cost = 3; lookup_cost = 4; probes = 2 } in
  let b = { Index.hash_cost = 1; lookup_cost = 2; probes = 5 } in
  Alcotest.(check int) "total" 7 (Index.total_cost a);
  let s = Index.add_stats a b in
  Alcotest.(check int) "sum hash" 4 s.Index.hash_cost;
  Alcotest.(check int) "sum lookup" 6 s.Index.lookup_cost;
  Alcotest.(check int) "sum probes" 7 s.Index.probes

(* ------------------------------------------------------------ Hierarchical *)

let make_hier ?(seed = 60) ?(target = 0.9) () =
  let db = test_db seed 500 in
  let rng = Rng.create (seed + 1) in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:25 ~threshold_sample:200 db in
  let query_indices = Rng.sample_indices rng 80 500 in
  let analysis = Analysis.build ~rng ~family ~db ~query_indices ~num_fns:200 ~db_sample:200 () in
  let h =
    Hierarchical.build ~rng ~family ~db ~analysis ~target_accuracy:target ~levels:4
      ~k_max:15 ~l_max:200 ()
  in
  (h, db, rng)

let test_hier_levels () =
  let h, _, _ = make_hier () in
  let levels = Hierarchical.levels h in
  Alcotest.(check int) "levels" 4 (Array.length levels);
  (* Thresholds are non-decreasing across strata. *)
  for i = 0 to Array.length levels - 2 do
    Alcotest.(check bool) "monotone thresholds" true
      (levels.(i).Hierarchical.d_threshold <= levels.(i + 1).Hierarchical.d_threshold)
  done

let test_hier_query_valid () =
  let h, db, rng = make_hier () in
  for t = 0 to 30 do
    ignore t;
    let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.05 db.(Rng.int rng 500) in
    let r = Hierarchical.search h q in
    let levels_probed = r.Index.levels_probed in
    Alcotest.(check bool) "probed >= 1" true (levels_probed >= 1 && levels_probed <= 4);
    match r.Index.nn with
    | None -> Alcotest.fail "expected neighbor"
    | Some (idx, d) -> check_loose 1e-9 "distance valid" (Minkowski.l2 q db.(idx)) d
  done

let test_hier_early_exit_close_queries () =
  (* Queries identical to database objects hit distance 0 <= D_1 and must
     stop at the first level. *)
  let h, db, _ = make_hier () in
  let r = Hierarchical.search h db.(3) in
  let levels_probed = r.Index.levels_probed in
  (match r.Index.nn with
  | Some (_, d) -> check_loose 1e-9 "found itself" 0. d
  | None -> Alcotest.fail "self must collide");
  Alcotest.(check int) "stopped immediately" 1 levels_probed

let test_hier_rejects_too_many_levels () =
  let db = test_db 61 100 in
  let rng = Rng.create 62 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:10 ~threshold_sample:50 db in
  let query_indices = Rng.sample_indices rng 3 100 in
  let analysis = Analysis.build ~rng ~family ~db ~query_indices ~num_fns:50 ~db_sample:50 () in
  Alcotest.check_raises "levels > queries"
    (Invalid_argument "Hierarchical.build: fewer sample queries than levels")
    (fun () ->
      ignore
        (Hierarchical.build ~rng ~family ~db ~analysis ~target_accuracy:0.9 ~levels:5 ()))

(* ---------------------------------------------------------------- Builder *)

let test_builder_auto () =
  let db = test_db 70 400 in
  let rng = Rng.create 71 in
  let config =
    { Builder.default_config with num_pivots = 20; num_sample_queries = 60; db_sample = 150 }
  in
  let h = Builder.auto ~rng ~space:l2 ~config ~target_accuracy:0.85 db in
  let q = Dbh_datasets.Vectors.perturb ~rng ~sigma:0.05 db.(0) in
  match (Hierarchical.search h q).Index.nn with
  | Some _ -> ()
  | None -> Alcotest.fail "auto index answers queries"

let test_builder_prepared_reuse () =
  let db = test_db 72 400 in
  let rng = Rng.create 73 in
  let config =
    { Builder.default_config with num_pivots = 20; num_sample_queries = 60; db_sample = 150 }
  in
  let prepared = Builder.prepare ~rng ~space:l2 ~config db in
  (* One prepared serves multiple targets and both flavours. *)
  (match Builder.single ~rng ~prepared ~db ~target_accuracy:0.8 ~config () with
  | Some (index, choice) ->
      Alcotest.(check bool) "accuracy >= target" true
        (choice.Params.predicted_accuracy >= 0.8);
      ignore (Index.search index db.(0))
  | None -> Alcotest.fail "0.8 should be reachable");
  let h = Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:0.9 ~config () in
  ignore (Hierarchical.search h db.(1))

let () =
  Alcotest.run "dbh_core"
    [
      ( "projection",
        [
          Alcotest.test_case "euclidean exactness" `Quick test_projection_euclidean_exact;
          Alcotest.test_case "endpoints" `Quick test_projection_endpoints;
          Alcotest.test_case "degenerate rejected" `Quick test_projection_zero_distance_rejected;
          Alcotest.test_case "formula" `Quick test_project_with_formula;
        ] );
      ( "hash_family",
        [
          Alcotest.test_case "all-pairs size" `Quick test_family_size_all_pairs;
          Alcotest.test_case "max_functions cap" `Quick test_family_max_functions;
          Alcotest.test_case "pivot clamp" `Quick test_family_more_pivots_than_data;
          Alcotest.test_case "balance ~ 0.5" `Quick test_family_balance;
          Alcotest.test_case "cache = direct" `Quick test_family_eval_cache_consistent;
          Alcotest.test_case "cache cost" `Quick test_family_cache_cost_counts_distinct_pivots;
          Alcotest.test_case "realized hash cost" `Quick test_family_hash_cost_realized_via_counter;
          Alcotest.test_case "signature" `Quick test_family_signature;
          Alcotest.test_case "interval validity" `Quick test_family_interval_validity;
          Alcotest.test_case "median split strategy" `Quick test_family_median_split_strategy;
          Alcotest.test_case "rejects tiny" `Quick test_family_rejects_tiny;
          Alcotest.test_case "rejects degenerate" `Quick test_family_rejects_degenerate;
        ] );
      ( "collision",
        [
          Alcotest.test_case "closed forms" `Quick test_collision_closed_forms;
          Alcotest.test_case "monotonicity" `Quick test_collision_monotonicity;
          Alcotest.test_case "l_for_target" `Quick test_collision_l_for_target;
          Alcotest.test_case "self = 1" `Quick test_collision_estimate_self;
          Alcotest.test_case "estimate vs exact" `Quick test_collision_estimate_range_and_exact;
          Alcotest.test_case "close pairs collide more" `Quick test_collision_close_pairs_collide_more;
          Alcotest.test_case "random matrix ~ 0.5 (Sec IV-B)" `Quick
            test_collision_random_matrix_is_half;
          Alcotest.test_case "pairwise matrix" `Quick test_pairwise_matrix;
          Alcotest.test_case "closed form = simulation (Eq 9/10)" `Quick
            test_collision_closed_form_matches_simulation;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "shapes" `Quick test_analysis_shapes;
          Alcotest.test_case "accuracy monotone" `Quick test_analysis_accuracy_monotone;
          Alcotest.test_case "lookup monotone+bounded" `Quick test_analysis_lookup_monotone_and_bounded;
          Alcotest.test_case "hash cost bounds" `Quick test_analysis_hash_cost_bounds;
          Alcotest.test_case "hash cost upper bounds (Sec V-B)" `Quick
            test_analysis_hash_cost_upper_bounds;
          Alcotest.test_case "nn collision high" `Quick test_analysis_nn_collision_high;
          Alcotest.test_case "restrict" `Quick test_analysis_restrict;
          Alcotest.test_case "order by nn distance" `Quick test_analysis_order;
          Alcotest.test_case "ground truth override" `Quick test_analysis_ground_truth_override;
        ] );
      ( "params",
        [
          Alcotest.test_case "binary search = scan" `Quick test_params_min_l_matches_scan;
          Alcotest.test_case "optimize feasible+optimal" `Quick test_params_optimize_feasible;
          Alcotest.test_case "unreachable" `Quick test_params_unreachable;
          Alcotest.test_case "bad target rejected" `Quick test_params_rejects_bad_target;
        ] );
      ( "index",
        [
          Alcotest.test_case "build and query" `Quick test_index_build_and_query;
          Alcotest.test_case "query = min of candidates" `Quick test_index_query_is_min_of_candidates;
          Alcotest.test_case "self query" `Quick test_index_self_query_finds_self;
          Alcotest.test_case "candidates dedupe" `Quick test_index_candidates_into_dedupes;
          Alcotest.test_case "knn" `Quick test_index_knn;
          Alcotest.test_case "range" `Quick test_index_range;
          Alcotest.test_case "empty buckets consistent" `Quick test_index_empty_buckets_consistent;
          Alcotest.test_case "single object db" `Quick test_index_single_object_db;
          Alcotest.test_case "rejects bad k" `Quick test_index_rejects_bad_k;
          Alcotest.test_case "bucket diagnostics" `Quick test_index_bucket_diagnostics;
          Alcotest.test_case "stats arithmetic" `Quick test_index_stats_arithmetic;
        ] );
      ( "hierarchical",
        [
          Alcotest.test_case "levels" `Quick test_hier_levels;
          Alcotest.test_case "query valid" `Quick test_hier_query_valid;
          Alcotest.test_case "early exit" `Quick test_hier_early_exit_close_queries;
          Alcotest.test_case "rejects too many levels" `Quick test_hier_rejects_too_many_levels;
        ] );
      ( "builder",
        [
          Alcotest.test_case "auto" `Quick test_builder_auto;
          Alcotest.test_case "prepared reuse" `Quick test_builder_prepared_reuse;
        ] );
    ]
