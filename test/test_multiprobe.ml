(* Multi-probe query path tests.

   The Hamming layer (Key popcount/distance/ball enumeration), the
   penalty-ordered probe-sequence generator and the CSR Hamming-range
   scans are each checked against naive bit-list models by QCheck; on
   top of them, engine-level properties pin what multi-probing may and
   may not change: extra probes add candidates but never hash cost, the
   probe counter is exactly l * (1 + min(probes - 1, ball)), and the
   default knobs (probes_per_table = 1, hamming_radius = 0) — as well
   as probes without radius — are bit-identical to the single-probe
   engine, sequentially and fanned over a pool.  The extended collision
   model must dominate the plain one and collapse to it exactly at the
   defaults. *)

module Rng = Dbh_util.Rng
module Pool = Dbh_util.Pool
module Pen = Dbh_datasets.Pen_digits
module Key = Dbh.Key
module Csr = Dbh.Csr
module Probe_seq = Dbh.Probe_seq
module Collision = Dbh.Collision
module Index = Dbh.Index
module Hash_family = Dbh.Hash_family
module Hierarchical = Dbh.Hierarchical
module Builder = Dbh.Builder
module Online = Dbh.Online
module Query_opts = Dbh.Query_opts

let domains =
  match Sys.getenv_opt "DBH_TEST_DOMAINS" with
  | None -> 2
  | Some s -> (
      match int_of_string_opt s with
      | Some d when d >= 1 -> d
      | _ -> invalid_arg "DBH_TEST_DOMAINS must be a positive integer")

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* ------------------------------------------------- naive bit models *)

let count_ones bits = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits

let naive_hamming a b =
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d

(* Every width-bit key at Hamming distance in [1, radius] of [center],
   by exhaustive scan of the cube — ascending by construction. *)
let naive_ball ~width ~radius center =
  let cbits = Key.to_bits ~width center in
  let keys = ref [] in
  for v = (1 lsl width) - 1 downto 0 do
    let k = Key.of_int ~width v in
    let d = naive_hamming cbits (Key.to_bits ~width k) in
    if d >= 1 && d <= radius then keys := k :: !keys
  done;
  Array.of_list !keys

let arb_bits =
  QCheck.Gen.(1 -- Key.max_bits >>= fun w -> array_size (return w) bool)
  |> QCheck.make ~print:(fun bits ->
         String.concat ""
           (Array.to_list (Array.map (fun b -> if b then "1" else "0") bits)))

(* (width, key) over cubes small enough to enumerate exhaustively. *)
let arb_small_key =
  QCheck.Gen.(2 -- 12 >>= fun w -> map (fun v -> (w, v)) (0 -- ((1 lsl w) - 1)))
  |> QCheck.make ~print:(fun (w, v) -> Printf.sprintf "width=%d key=%d" w v)

let popcount_matches_model =
  QCheck.Test.make ~name:"popcount = number of set bits" ~count:500 arb_bits
    (fun bits -> Key.popcount (Key.of_bits bits) = count_ones bits)

let hamming_matches_model =
  QCheck.Test.make ~name:"hamming = differing-bit count" ~count:500
    (QCheck.pair arb_bits arb_bits) (fun (a, b) ->
      let w = max (Array.length a) (Array.length b) in
      let pad bits = Array.append (Array.make (w - Array.length bits) false) bits in
      let a = pad a and b = pad b in
      Key.hamming (Key.of_bits a) (Key.of_bits b) = naive_hamming a b)

let enumerate_matches_model =
  QCheck.Test.make ~name:"enumerate_within = exhaustive cube scan, sorted" ~count:300
    (QCheck.pair arb_small_key (QCheck.make QCheck.Gen.(0 -- Key.max_radius)))
    (fun ((w, v), radius) ->
      let center = Key.of_int ~width:w v in
      let got = Key.enumerate_within ~width:w ~radius center in
      got = naive_ball ~width:w ~radius center
      && Array.length got = Key.ball_size ~width:w ~radius)

let test_hamming_edges () =
  Alcotest.(check int) "popcount zero" 0 (Key.popcount Key.zero);
  Alcotest.(check int) "max radius is 2" 2 Key.max_radius;
  Alcotest.(check int) "radius-0 ball empty" 0 (Key.ball_size ~width:10 ~radius:0);
  Alcotest.(check int) "radius-1 ball = width" 10 (Key.ball_size ~width:10 ~radius:1);
  Alcotest.(check int) "radius-2 ball = w + w(w-1)/2" 55 (Key.ball_size ~width:10 ~radius:2);
  Alcotest.check_raises "radius 3 rejected"
    (Invalid_argument "Key: Hamming radius must be in [0, 2], got 3") (fun () ->
      ignore (Key.ball_size ~width:10 ~radius:3))

(* --------------------------------------------------- probe sequences *)

let arb_probe_case =
  let gen =
    QCheck.Gen.(
      2 -- 12 >>= fun w ->
      0 -- ((1 lsl w) - 1) >>= fun base ->
      0 -- Key.max_radius >>= fun radius ->
      0 -- 70 >>= fun max_probes ->
      array_size (return w) (float_bound_inclusive 10.) >>= fun pen ->
      return (w, base, radius, max_probes, pen))
  in
  QCheck.make
    ~print:(fun (w, base, radius, max_probes, pen) ->
      Printf.sprintf "w=%d base=%d r=%d m=%d pen=[%s]" w base radius max_probes
        (String.concat ";" (Array.to_list (Array.map string_of_float pen))))
    gen

let collect_probes ps ~width ~base ~radius ~max_probes ~pen =
  let out = ref [] in
  Probe_seq.generate ps ~base ~width ~radius ~max_probes
    ~penalty:(fun j -> pen.(j))
    ~emit:(fun k -> out := k :: !out);
  List.rev !out

let probe_seq_is_sound =
  QCheck.Test.make
    ~name:"probe_seq: distinct keys in the ball, penalty-sorted, exact count"
    ~count:500 arb_probe_case (fun (w, base_v, radius, max_probes, pen) ->
      let ps = Probe_seq.create () in
      let base = Key.of_int ~width:w base_v in
      let probes = collect_probes ps ~width:w ~base ~radius ~max_probes ~pen in
      let ball = Key.ball_size ~width:w ~radius in
      let expected = if radius = 0 || max_probes <= 0 then 0 else min max_probes ball in
      let base_bits = Key.to_bits ~width:w base in
      let cost k =
        let bits = Key.to_bits ~width:w k in
        let s = ref 0. in
        Array.iteri (fun j b -> if b <> base_bits.(j) then s := !s +. pen.(j)) bits;
        !s
      in
      let in_ball k =
        let d = Key.hamming base k in
        d >= 1 && d <= radius
      in
      let rec sorted = function
        | a :: (b :: _ as rest) -> cost a <= cost b && sorted rest
        | _ -> true
      in
      List.length probes = expected
      && List.length (List.sort_uniq Key.compare probes) = expected
      && List.for_all in_ball probes
      && (not (List.mem base probes))
      && sorted probes)

let probe_seq_reuse_is_pure =
  QCheck.Test.make ~name:"probe_seq: workspace reuse changes nothing" ~count:200
    arb_probe_case (fun (w, base_v, radius, max_probes, pen) ->
      let base = Key.of_int ~width:w base_v in
      let shared = Probe_seq.create () in
      (* Dirty the shared workspace with an unrelated generation first. *)
      ignore
        (collect_probes shared ~width:12 ~base:(Key.of_int ~width:12 0) ~radius:2
           ~max_probes:30 ~pen:(Array.make 12 1.));
      let fresh = collect_probes (Probe_seq.create ()) ~width:w ~base ~radius ~max_probes ~pen in
      let reused = collect_probes shared ~width:w ~base ~radius ~max_probes ~pen in
      fresh = reused)

(* ------------------------------------------- CSR Hamming-range scans *)

let arb_csr_case =
  let gen =
    QCheck.Gen.(
      2 -- 10 >>= fun w ->
      0 -- ((1 lsl w) - 1) >>= fun center ->
      1 -- Key.max_radius >>= fun radius ->
      int_bound 200 >>= fun n_frozen ->
      int_bound 40 >>= fun n_delta ->
      int_bound 1000 >>= fun seed -> return (w, center, radius, n_frozen, n_delta, seed))
  in
  QCheck.make
    ~print:(fun (w, c, r, nf, nd, seed) ->
      Printf.sprintf "w=%d center=%d r=%d frozen=%d delta=%d seed=%d" w c r nf nd seed)
    gen

let iter_within_equals_per_key_probing =
  QCheck.Test.make ~name:"csr iter_within = union of per-key bucket probes" ~count:300
    arb_csr_case (fun (w, center, radius, n_frozen, n_delta, seed) ->
      let rng = Rng.create seed in
      let buckets = Hashtbl.create 32 in
      for id = 0 to n_frozen - 1 do
        let key = Rng.int rng (1 lsl w) in
        Hashtbl.replace buckets key (id :: Option.value ~default:[] (Hashtbl.find_opt buckets key))
      done;
      let table = Csr.freeze buckets in
      for id = 0 to n_delta - 1 do
        Csr.add table (Rng.int rng (1 lsl w)) (n_frozen + id)
      done;
      let got = ref [] in
      Csr.iter_within table ~width:w ~radius center (fun key id -> got := (key, id) :: !got);
      let expected =
        Key.enumerate_within ~width:w ~radius (Key.of_int ~width:w center)
        |> Array.to_list
        |> List.concat_map (fun (k : Key.t) ->
               let ids = ref [] in
               Csr.iter_bucket table (k :> int) (fun id -> ids := id :: !ids);
               List.rev_map (fun id -> ((k :> int), id)) !ids)
      in
      List.rev !got = expected)

(* ------------------------------------------------- engine properties *)

let small_workload () =
  let db = Pen.generate_set ~rng:(Rng.create 21) 300 in
  let queries = Pen.generate_set ~rng:(Rng.create 22) 20 in
  let family =
    Hash_family.make ~rng:(Rng.create 23) ~space:Pen.space ~num_pivots:30
      ~threshold_sample:100 db
  in
  let index = Index.build ~rng:(Rng.create 24) ~family ~db ~k:10 ~l:5 () in
  (db, queries, index)

let test_probing_is_superset_and_hash_free () =
  let _, queries, index = small_workload () in
  let opts = Query_opts.multiprobe ~hamming_radius:2 8 in
  Array.iter
    (fun q ->
      let plain = Index.search index q in
      let mp = Index.search ~opts index q in
      Alcotest.(check int) "probing adds no hash distances"
        plain.Index.stats.Index.hash_cost mp.Index.stats.Index.hash_cost;
      Alcotest.(check bool) "probing never drops candidates" true
        (mp.Index.stats.Index.lookup_cost >= plain.Index.stats.Index.lookup_cost);
      match (plain.Index.nn, mp.Index.nn) with
      | None, _ -> ()
      | Some _, None -> Alcotest.fail "multi-probe lost the plain nearest neighbor"
      | Some (_, dp), Some (_, dm) ->
          Alcotest.(check bool) "multi-probe nn at least as close" true (dm <= dp))
    queries

let test_probe_counter_is_deterministic () =
  let _, queries, index = small_workload () in
  let l = 5 and k = 10 in
  let check ~probes ~radius =
    let opts = Query_opts.make ~probes_per_table:probes ~hamming_radius:radius () in
    let expected =
      if probes > 1 && radius > 0 then
        l * (1 + min (probes - 1) (Key.ball_size ~width:k ~radius))
      else l
    in
    Array.iter
      (fun q ->
        let r = Index.search ~opts index q in
        Alcotest.(check int)
          (Printf.sprintf "probes for p=%d r=%d" probes radius)
          expected r.Index.stats.Index.probes)
      queries
  in
  check ~probes:1 ~radius:0;
  (* heap path: 7 extras < the 55-key radius-2 ball *)
  check ~probes:8 ~radius:2;
  (* range path: 99 extras cover the whole ball *)
  check ~probes:100 ~radius:2;
  (* radius-1 ball is just k keys; 99 extras cover it *)
  check ~probes:100 ~radius:1

let test_noop_knobs_are_bit_identical () =
  let _, queries, index = small_workload () in
  let base = Array.map (fun q -> Index.search index q) queries in
  let same label opts =
    let got = Array.map (fun q -> Index.search ~opts index q) queries in
    Alcotest.(check bool) label true (got = base)
  in
  same "explicit defaults" (Query_opts.make ~probes_per_table:1 ~hamming_radius:0 ());
  same "probes without radius" (Query_opts.make ~probes_per_table:16 ~hamming_radius:0 ());
  same "radius without probes" (Query_opts.make ~probes_per_table:1 ~hamming_radius:2 ());
  let batch_seq =
    Index.search_batch
      ~opts:(Query_opts.make ~probes_per_table:1 ~hamming_radius:0 ())
      index queries
  in
  Alcotest.(check bool) "sequential batch bit-identical" true (batch_seq = base);
  Pool.with_pool ~domains (fun pool ->
      let batch_par =
        Index.search_batch
          ~opts:(Query_opts.make ~pool ~probes_per_table:1 ~hamming_radius:0 ())
          index queries
      in
      Alcotest.(check bool) "pooled batch bit-identical" true (batch_par = base))

let test_layers_agree_under_probing () =
  (* The same probe knobs must mean the same thing through Hierarchical
     and Online: identical per-level probing semantics, and defaults
     bit-identical to plain search at every layer. *)
  let db = Pen.generate_set ~rng:(Rng.create 25) 300 in
  let queries = Pen.generate_set ~rng:(Rng.create 26) 10 in
  let config =
    {
      Builder.default_config with
      num_pivots = 30;
      threshold_sample = 100;
      num_sample_queries = 60;
      num_fns = 100;
      db_sample = 100;
      levels = 3;
    }
  in
  let prepared = Builder.prepare ~rng:(Rng.create 27) ~space:Pen.space ~config db in
  let hier =
    Builder.hierarchical ~rng:(Rng.create 28) ~prepared ~db ~target_accuracy:0.9 ~config ()
  in
  let online =
    Online.create ~rng:(Rng.create 29) ~space:Pen.space ~config ~target_accuracy:0.9 db
  in
  let mp_opts = Query_opts.multiprobe ~hamming_radius:2 4 in
  let noop = Query_opts.make ~probes_per_table:1 ~hamming_radius:0 () in
  Array.iter
    (fun q ->
      let hp = Hierarchical.search hier q in
      let hn = Hierarchical.search ~opts:noop hier q in
      Alcotest.(check bool) "hierarchical defaults bit-identical" true (hn = hp);
      let hm = Hierarchical.search ~opts:mp_opts hier q in
      Alcotest.(check int) "hierarchical probing adds no hash distances"
        hp.Index.stats.Index.hash_cost hm.Index.stats.Index.hash_cost;
      Alcotest.(check bool) "hierarchical probing never shrinks lookups" true
        (hm.Index.stats.Index.lookup_cost >= hp.Index.stats.Index.lookup_cost);
      let op = Online.search online q in
      let on = Online.search ~opts:noop online q in
      Alcotest.(check bool) "online defaults bit-identical" true (on = op);
      let om = Online.search ~opts:mp_opts online q in
      Alcotest.(check bool) "online probing never shrinks lookups" true
        (om.Online.stats.Index.lookup_cost >= op.Online.stats.Index.lookup_cost))
    queries

let test_knob_validation () =
  let _, queries, index = small_workload () in
  let q = queries.(0) in
  Alcotest.check_raises "probes 0 rejected"
    (Invalid_argument "Index: probes_per_table must be >= 1") (fun () ->
      ignore (Index.search ~opts:(Query_opts.make ~probes_per_table:0 ()) index q));
  Alcotest.check_raises "radius 3 rejected"
    (Invalid_argument "Index: hamming_radius must be in [0, 2]") (fun () ->
      ignore (Index.search ~opts:(Query_opts.make ~hamming_radius:3 ()) index q))

(* --------------------------------------------- extended cost model *)

let arb_model_case =
  let gen =
    QCheck.Gen.(
      float_bound_inclusive 1. >>= fun c ->
      2 -- 20 >>= fun k ->
      1 -- 100 >>= fun probes ->
      0 -- Key.max_radius >>= fun radius -> return (c, k, probes, radius))
  in
  QCheck.make
    ~print:(fun (c, k, p, r) -> Printf.sprintf "c=%g k=%d probes=%d radius=%d" c k p r)
    gen

let probed_model_dominates =
  QCheck.Test.make ~name:"c_k_probed >= c_k, <= 1, monotone in probes" ~count:500
    arb_model_case (fun (c, k, probes, radius) ->
      let base = Collision.c_k c k in
      let p1 = Collision.c_k_probed c ~k ~probes ~radius in
      let p2 = Collision.c_k_probed c ~k ~probes:(probes + 1) ~radius in
      p1 >= base && p1 <= 1. && p2 >= p1)

let probed_model_collapses_at_defaults =
  QCheck.Test.make ~name:"probed model = plain model at the defaults" ~count:500
    arb_model_case (fun (c, k, probes, radius) ->
      Collision.c_k_probed c ~k ~probes:1 ~radius = Collision.c_k c k
      && Collision.c_k_probed c ~k ~probes ~radius:0 = Collision.c_k c k
      && Collision.c_kl_probed c ~k ~l:7 ~probes:1 ~radius = Collision.c_kl c ~k ~l:7
      && Collision.l_for_target_probed c ~k ~probes:1 ~radius ~target:0.9
         = Collision.l_for_target c ~k ~target:0.9)

let probed_model_saves_tables =
  QCheck.Test.make ~name:"l_for_target_probed <= l_for_target" ~count:500 arb_model_case
    (fun (c, k, probes, radius) ->
      match
        ( Collision.l_for_target c ~k ~target:0.9,
          Collision.l_for_target_probed c ~k ~probes ~radius ~target:0.9 )
      with
      | Some plain, Some probed -> probed <= plain
      | None, Some _ | None, None -> true
      | Some _, None -> false)

let probe_split_is_well_formed =
  QCheck.Test.make ~name:"probe_split honours the shell capacities" ~count:500
    arb_model_case (fun (_, k, probes, radius) ->
      let n1, n2 = Collision.probe_split ~k ~probes ~radius in
      n1 >= 0 && n2 >= 0
      && n1 + n2 <= probes - 1
      && n1 <= k
      && n2 <= k * (k - 1) / 2
      && (radius >= 2 || n2 = 0)
      && (radius >= 1 || n1 = 0))

let () =
  Alcotest.run "dbh_multiprobe"
    [
      ( "key hamming",
        Alcotest.test_case "ball edges" `Quick test_hamming_edges
        :: qsuite [ popcount_matches_model; hamming_matches_model; enumerate_matches_model ]
      );
      ("probe_seq", qsuite [ probe_seq_is_sound; probe_seq_reuse_is_pure ]);
      ("csr ranges", qsuite [ iter_within_equals_per_key_probing ]);
      ( "engine",
        [
          Alcotest.test_case "probing is superset + hash-free" `Quick
            test_probing_is_superset_and_hash_free;
          Alcotest.test_case "probe counter deterministic" `Quick
            test_probe_counter_is_deterministic;
          Alcotest.test_case "no-op knobs bit-identical (seq + pool)" `Quick
            test_noop_knobs_are_bit_identical;
          Alcotest.test_case "hierarchical + online agree" `Slow
            test_layers_agree_under_probing;
          Alcotest.test_case "knob validation" `Quick test_knob_validation;
        ] );
      ( "cost model",
        qsuite
          [
            probed_model_dominates;
            probed_model_collapses_at_defaults;
            probed_model_saves_tables;
            probe_split_is_well_formed;
          ] );
    ]
