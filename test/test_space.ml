(* Tests for Dbh_space.Space. *)

module Space = Dbh_space.Space
module Rng = Dbh_util.Rng

let l2 (a : float array) (b : float array) =
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) *. (x -. b.(i)))) a;
  sqrt !acc

let l2_space = Space.make ~name:"l2" l2

let test_counting () =
  let counted, counter = Space.with_counter l2_space in
  Alcotest.(check int) "fresh" 0 (Space.count counter);
  ignore (counted.Space.distance [| 0. |] [| 1. |]);
  ignore (counted.Space.distance [| 0. |] [| 2. |]);
  Alcotest.(check int) "two calls" 2 (Space.count counter);
  Space.reset counter;
  Alcotest.(check int) "reset" 0 (Space.count counter)

let test_shared_counter () =
  let counter = Space.counter () in
  let a = Space.counted counter l2_space in
  let b = Space.counted counter l2_space in
  ignore (a.Space.distance [| 0. |] [| 1. |]);
  ignore (b.Space.distance [| 0. |] [| 1. |]);
  Alcotest.(check int) "shared tally" 2 (Space.count counter)

let test_counted_preserves_distance () =
  let counted, _ = Space.with_counter l2_space in
  Alcotest.(check (float 1e-12))
    "same value" (l2 [| 1.; 2. |] [| 4.; 6. |])
    (counted.Space.distance [| 1.; 2. |] [| 4.; 6. |])

let test_of_matrix () =
  let m = [| [| 0.; 1.; 2. |]; [| 1.; 0.; 3. |]; [| 2.; 3.; 0. |] |] in
  let s = Space.of_matrix m in
  Alcotest.(check (float 0.)) "lookup" 3. (s.Space.distance 1 2);
  Alcotest.(check (float 0.)) "diag" 0. (s.Space.distance 0 0)

let test_of_matrix_ragged () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Space.of_matrix: matrix not square")
    (fun () -> ignore (Space.of_matrix [| [| 0. |]; [| 1.; 2. |] |]))

let test_of_matrix_rejects_nan () =
  Alcotest.check_raises "nan entry" (Invalid_argument "Space.of_matrix: NaN entry") (fun () ->
      ignore (Space.of_matrix [| [| 0.; Float.nan |]; [| 1.; 0. |] |]))

let test_of_matrix_rejects_negative () =
  Alcotest.check_raises "negative entry" (Invalid_argument "Space.of_matrix: negative entry")
    (fun () -> ignore (Space.of_matrix [| [| 0.; -1. |]; [| -1.; 0. |] |]))

let test_random_metric_matrix () =
  let rng = Rng.create 1 in
  let m = Space.random_metric_matrix rng 20 in
  for i = 0 to 19 do
    Alcotest.(check (float 0.)) "zero diagonal" 0. m.(i).(i);
    for j = 0 to 19 do
      if i <> j then begin
        Alcotest.(check (float 0.)) "symmetric" m.(i).(j) m.(j).(i);
        Alcotest.(check bool) "in [1,2]" true (m.(i).(j) >= 1. && m.(i).(j) <= 2.)
      end
    done
  done;
  (* Distances in [1,2] always satisfy the triangle inequality. *)
  let s = Space.of_matrix m in
  let sample = Array.init 20 (fun i -> i) in
  Alcotest.(check int) "metric" 0 (Space.triangle_violations s sample)

let test_transform () =
  let s = Space.transform ~name:"len" (fun str -> [| float_of_int (String.length str) |]) l2_space in
  Alcotest.(check (float 0.)) "pullback" 2. (s.Space.distance "a" "abc")

let test_products () =
  let pair_space_max = Space.max_product l2_space l2_space in
  let pair_space_sum = Space.sum_product l2_space l2_space in
  let x = ([| 0. |], [| 0. |]) and y = ([| 3. |], [| 4. |]) in
  Alcotest.(check (float 1e-12)) "max product" 4. (pair_space_max.Space.distance x y);
  Alcotest.(check (float 1e-12)) "sum product" 7. (pair_space_sum.Space.distance x y)

let test_is_symmetric () =
  let asym = Space.make ~name:"asym" (fun a b -> if a < b then 1. else 2.) in
  Alcotest.(check bool) "detects asymmetry" false (Space.is_symmetric asym [| 1; 2; 3 |]);
  Alcotest.(check bool) "l2 symmetric" true
    (Space.is_symmetric l2_space [| [| 0. |]; [| 1. |]; [| 5. |] |])

let test_triangle_violations () =
  (* d(a,c)=10 > d(a,b)+d(b,c)=2: a blatant violation. *)
  let m = [| [| 0.; 1.; 10. |]; [| 1.; 0.; 1. |]; [| 10.; 1.; 0. |] |] in
  let s = Space.of_matrix m in
  Alcotest.(check bool) "violations found" true
    (Space.triangle_violations s [| 0; 1; 2 |] > 0)

let test_rename () =
  let s = Space.rename "other" l2_space in
  Alcotest.(check string) "renamed" "other" s.Space.name;
  Alcotest.(check string) "original intact" "l2" l2_space.Space.name

let () =
  Alcotest.run "dbh_space"
    [
      ( "space",
        [
          Alcotest.test_case "counting" `Quick test_counting;
          Alcotest.test_case "shared counter" `Quick test_shared_counter;
          Alcotest.test_case "counted preserves distance" `Quick test_counted_preserves_distance;
          Alcotest.test_case "of_matrix" `Quick test_of_matrix;
          Alcotest.test_case "of_matrix ragged" `Quick test_of_matrix_ragged;
          Alcotest.test_case "of_matrix rejects NaN" `Quick test_of_matrix_rejects_nan;
          Alcotest.test_case "of_matrix rejects negative" `Quick test_of_matrix_rejects_negative;
          Alcotest.test_case "random metric matrix" `Quick test_random_metric_matrix;
          Alcotest.test_case "transform" `Quick test_transform;
          Alcotest.test_case "products" `Quick test_products;
          Alcotest.test_case "is_symmetric" `Quick test_is_symmetric;
          Alcotest.test_case "triangle violations" `Quick test_triangle_violations;
          Alcotest.test_case "rename" `Quick test_rename;
        ] );
    ]
