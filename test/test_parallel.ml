(* Tests for the domain pool and the parallel DBH paths: every parallel
   entry point must be bit-identical to its sequential counterpart for
   the same seed, batched budgets must never exceed the per-query cap,
   and the pool itself must survive edge cases (width 1, empty input,
   task failure).

   DBH_TEST_DOMAINS picks the pool width (default 2, so the parallel
   code paths are exercised even on default runs; CI also runs with 4). *)

module Rng = Dbh_util.Rng
module Pool = Dbh_util.Pool
module Space = Dbh_space.Space
module Minkowski = Dbh_metrics.Minkowski
module Hash_family = Dbh.Hash_family
module Collision = Dbh.Collision
module Analysis = Dbh.Analysis
module Index = Dbh.Index
module Hierarchical = Dbh.Hierarchical
module Builder = Dbh.Builder
module Online = Dbh.Online
module Ground_truth = Dbh_eval.Ground_truth

let domains =
  match Sys.getenv_opt "DBH_TEST_DOMAINS" with
  | None -> 2
  | Some s -> (
      match int_of_string_opt s with
      | Some d when d >= 1 -> d
      | _ -> invalid_arg "DBH_TEST_DOMAINS must be a positive integer")

let l2 = Minkowski.l2_space

let test_db seed n =
  let rng = Rng.create seed in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:8 ~dim:6 n in
  db

let encode (v : float array) =
  let buf = Buffer.create 32 in
  Dbh_util.Binio.write_float_array buf v;
  Buffer.contents buf

let serialized index =
  let buf = Buffer.create 4096 in
  Index.write ~encode buf index;
  Buffer.contents buf

(* ------------------------------------------------------------- pool core *)

let test_pool_map_matches_sequential () =
  Pool.with_pool ~domains (fun pool ->
      let arr = Array.init 1000 (fun i -> i) in
      let f i = (i * 37) mod 101 in
      Alcotest.(check (array int))
        "map identical" (Array.map f arr)
        (Pool.parallel_map_array pool f arr))

let test_pool_for_covers_every_index_once () =
  Pool.with_pool ~domains (fun pool ->
      let n = 777 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.parallel_for pool n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i c ->
          if Atomic.get c <> 1 then
            Alcotest.failf "index %d ran %d times" i (Atomic.get c))
        hits)

let test_pool_reduce_is_chunk_ordered () =
  Pool.with_pool ~domains (fun pool ->
      let n = 500 in
      (* String concatenation is non-commutative: only a chunk-ordered
         merge reproduces the sequential fold. *)
      let expected = String.concat "" (List.init n string_of_int) in
      let got =
        Pool.map_reduce_chunks pool ~n
          ~map:(fun ~lo ~hi ->
            String.concat "" (List.init (hi - lo) (fun i -> string_of_int (lo + i))))
          ~fold:(fun acc s -> acc ^ s)
          ~init:""
      in
      Alcotest.(check string) "ordered merge" expected got)

let test_pool_size_one_and_empty () =
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "size" 1 (Pool.size pool);
      Alcotest.(check (array int))
        "width-1 map" [| 2; 4; 6 |]
        (Pool.parallel_map_array pool (fun x -> 2 * x) [| 1; 2; 3 |]));
  Pool.with_pool ~domains (fun pool ->
      Alcotest.(check (array int)) "empty map" [||]
        (Pool.parallel_map_array pool (fun x -> 2 * x) [||]);
      Pool.parallel_for pool 0 (fun _ -> Alcotest.fail "task ran on empty range"))

exception Boom

let test_pool_exception_propagates_and_pool_survives () =
  Pool.with_pool ~domains (fun pool ->
      (try
         Pool.parallel_for pool 100 (fun i -> if i = 43 then raise Boom);
         Alcotest.fail "exception was swallowed"
       with Boom -> ());
      (* The same pool keeps working after a failed batch. *)
      let sum = Atomic.make 0 in
      Pool.parallel_for pool 100 (fun i -> ignore (Atomic.fetch_and_add sum i));
      Alcotest.(check int) "pool usable after failure" 4950 (Atomic.get sum))

let test_pool_rejects_bad_widths () =
  Alcotest.check_raises "zero domains" (Invalid_argument "Pool.create: domains must be >= 1")
    (fun () -> ignore (Pool.create ~domains:0))

(* ------------------------------------------------- atomic space counters *)

let test_counter_exact_under_parallelism () =
  Pool.with_pool ~domains (fun pool ->
      let counted, counter = Space.with_counter l2 in
      let db = test_db 11 64 in
      Pool.parallel_for pool 300 (fun i ->
          ignore (counted.Space.distance db.(i mod 64) db.((i * 7) mod 64)));
      Alcotest.(check int) "every call counted" 300 (Space.count counter))

(* ------------------------------------------------ bit-identical pipeline *)

let build_index ?pool seed =
  let db = test_db 21 400 in
  let rng = Rng.create seed in
  let family =
    Hash_family.make ?pool ~rng ~space:l2 ~num_pivots:30 ~threshold_sample:100 db
  in
  let pivot_table = Hash_family.pivot_table ?pool family db in
  (db, family, Index.build ?pool ~rng ~family ~db ~pivot_table ~k:6 ~l:8 ())

let test_parallel_build_bit_identical () =
  let _, _, seq_index = build_index 31 in
  Pool.with_pool ~domains (fun pool ->
      let _, _, par_index = build_index ~pool 31 in
      Alcotest.(check string)
        "serialized indexes equal" (serialized seq_index) (serialized par_index))

let test_parallel_prepare_bit_identical () =
  let db = test_db 22 300 in
  let config =
    { Builder.default_config with num_pivots = 25; num_sample_queries = 40; db_sample = 80 }
  in
  let seq = Builder.prepare ~rng:(Rng.create 41) ~space:l2 ~config db in
  Pool.with_pool ~domains (fun pool ->
      let par = Builder.prepare ~pool ~rng:(Rng.create 41) ~space:l2 ~config db in
      Alcotest.(check bool) "pivot tables equal" true (seq.Builder.pivot_table = par.Builder.pivot_table);
      (* compare, not (=): the analysis carries nan self-match markers,
         and (=) makes nan unequal to itself. *)
      Alcotest.(check bool)
        "analyses equal" true
        (compare seq.Builder.analysis par.Builder.analysis = 0);
      (* Same family ⇒ same serialized bytes. *)
      let fam f =
        let buf = Buffer.create 1024 in
        Hash_family.write ~encode buf f;
        Buffer.contents buf
      in
      Alcotest.(check string) "families equal" (fam seq.Builder.family) (fam par.Builder.family))

let test_parallel_collision_matrix_bit_identical () =
  let db = test_db 23 200 in
  let family =
    Hash_family.make ~rng:(Rng.create 51) ~space:l2 ~num_pivots:25 ~threshold_sample:80 db
  in
  let sample = Array.sub db 0 60 in
  let seq = Collision.pairwise_matrix ~rng:(Rng.create 52) ~num_fns:150 family sample in
  Pool.with_pool ~domains (fun pool ->
      let par =
        Collision.pairwise_matrix ~pool ~rng:(Rng.create 52) ~num_fns:150 family sample
      in
      Alcotest.(check bool) "matrices equal" true (seq = par))

(* --------------------------------------------------------- batch queries *)

let test_query_batch_matches_per_query () =
  let db, _, index = build_index 31 in
  let queries = Array.sub db 0 50 in
  let per_query = Array.map (fun q -> Index.search index q) queries in
  Alcotest.(check bool) "unbudgeted batch equal" true (Index.search_batch index queries = per_query);
  Pool.with_pool ~domains (fun pool ->
      Alcotest.(check bool)
        "parallel batch equal" true
        (Index.search_batch ~opts:(Dbh.Query_opts.make ~pool ()) index queries = per_query);
      let budgeted = Array.map (fun q -> Index.query_with ~budget:(Dbh.Budget.create 60) index q) queries in
      Alcotest.(check bool)
        "parallel budgeted batch equal" true
        (Index.search_batch ~opts:(Dbh.Query_opts.make ~pool ~budget:60 ()) index queries = budgeted))

let test_query_batch_budget_never_exceeded () =
  let db, _, index = build_index 31 in
  let queries = Array.sub db 100 60 in
  Pool.with_pool ~domains (fun pool ->
      List.iter
        (fun budget ->
          let results = Index.search_batch ~opts:(Dbh.Query_opts.make ~pool ~budget ()) index queries in
          Array.iter
            (fun (r : _ Index.result) ->
              let spent = Index.total_cost r.Index.stats in
              if spent > budget then
                Alcotest.failf "query spent %d with budget %d" spent budget)
            results)
        [ 1; 10; 50; 200 ])

let test_hierarchical_batch_matches_per_query () =
  let db = test_db 24 300 in
  let config =
    { Builder.default_config with num_pivots = 25; num_sample_queries = 40; db_sample = 80; levels = 3 }
  in
  let h = Builder.auto ~rng:(Rng.create 61) ~space:l2 ~config ~target_accuracy:0.9 db in
  let queries = Array.sub db 0 40 in
  let per_query = Array.map (fun q -> Hierarchical.search h q) queries in
  Pool.with_pool ~domains (fun pool ->
      Alcotest.(check bool)
        "hierarchical batch equal" true
        (Hierarchical.search_batch ~opts:(Dbh.Query_opts.make ~pool ()) h queries = per_query))

let test_online_parallel_generation_matches () =
  let db = test_db 25 250 in
  let config =
    { Builder.default_config with num_pivots = 20; num_sample_queries = 30; db_sample = 60; levels = 2 }
  in
  let queries = test_db 26 30 in
  let seq = Online.create ~rng:(Rng.create 71) ~space:l2 ~config ~target_accuracy:0.9 db in
  let seq_answers = Array.map (fun q -> (Online.search seq q).Online.nn) queries in
  Pool.with_pool ~domains (fun pool ->
      let par =
        Online.create ~pool ~rng:(Rng.create 71) ~space:l2 ~config ~target_accuracy:0.9 db
      in
      (* The remembered pool drives query_batch; answers must match the
         sequential per-query run. *)
      let par_answers = Array.map (fun (r : _ Online.result) -> r.Online.nn) (Online.search_batch par queries) in
      Alcotest.(check bool) "online answers equal" true (seq_answers = par_answers))

let test_ground_truth_parallel_identical () =
  let db = test_db 27 200 in
  let queries = test_db 28 30 in
  let seq = Ground_truth.compute ~space:l2 ~db ~queries () in
  Pool.with_pool ~domains (fun pool ->
      let par = Ground_truth.compute ~pool ~space:l2 ~db ~queries () in
      Alcotest.(check bool) "ground truth equal" true (seq = par))

(* ------------------------------------------------------- skew and stealing *)

(* Deterministic busy-work: burns ~[units] fixed quanta of float math and
   returns a value that depends on the seed, so the work is both
   schedulable (costly) and checkable (bit-identical across widths). *)
let spin units seed =
  let acc = ref seed in
  for _ = 1 to units do
    for _ = 1 to 5_000 do
      acc := (!acc *. 1.000000119) +. 1e-9
    done
  done;
  !acc

(* One index ~100x the rest — the pathological skew the cost-aware
   layout exists for. *)
let skew_cost ~heavy i = if i = heavy then 100 else 1

let skew_case =
  QCheck.make
    QCheck.Gen.(pair (int_range 10 300) (int_range 0 10_000))
    ~print:(fun (n, h) -> Printf.sprintf "n=%d heavy=%d" n (h mod n))

let prop_skew_bit_identical =
  QCheck.Test.make ~name:"skewed cost bit-identical across 1/2/4 domains" ~count:12 skew_case
    (fun (n, h) ->
      let heavy = h mod n in
      let cost = skew_cost ~heavy in
      let f i = spin (cost i / 10) (float_of_int i) in
      let arr = Array.init n (fun i -> i) in
      let expected = Array.map f arr in
      let reduce pool =
        (* Non-commutative fold: only a chunk-ordered merge with a
           width-independent layout reproduces it at every width. *)
        Pool.map_reduce_chunks ~cost pool ~n
          ~map:(fun ~lo ~hi -> Printf.sprintf "[%d,%d)" lo hi)
          ~fold:( ^ ) ~init:""
      in
      let expected_reduce = reduce Pool.sequential in
      List.for_all
        (fun width ->
          Pool.with_pool ~domains:width (fun pool ->
              Pool.parallel_map_array ~cost pool f arr = expected
              && reduce pool = expected_reduce))
        [ 1; 2; 4 ])

let chunk_case =
  QCheck.make
    QCheck.Gen.(
      triple (int_range 0 400) (option (int_range 1 50))
        (array_size (return 400) (int_range (-5) 1_000)))
    ~print:(fun (n, c, _) ->
      Printf.sprintf "n=%d chunk=%s" n
        (match c with None -> "-" | Some c -> string_of_int c))

let prop_cost_chunks_tile =
  QCheck.Test.make ~name:"cost chunks tile [0,n) in order" ~count:300 chunk_case
    (fun (n, chunk, costs) ->
      let cost i = costs.(i) in
      let cs = Pool.chunks ?chunk ~cost n in
      let pos = ref 0 and ok = ref true in
      Array.iter
        (fun (lo, hi) ->
          if lo <> !pos || hi <= lo then ok := false;
          (match chunk with Some c when hi - lo > c -> ok := false | _ -> ());
          pos := hi)
        cs;
      !ok && !pos = n)

(* The steal/pop tally must account for every task exactly once, at any
   width (sequential fast-path runs count as local pops of slot 0). *)
let test_telemetry_accounts_every_task () =
  Pool.with_pool ~domains (fun pool ->
      let n = 400 in
      let heavy = 17 in
      let cost = skew_cost ~heavy in
      Pool.reset_telemetry pool;
      let rounds = 3 in
      let sink = Array.make n 0. in
      for _ = 1 to rounds do
        Pool.parallel_for ~cost pool n (fun i -> sink.(i) <- spin (cost i / 10) 1.)
      done;
      let tel = Pool.telemetry pool in
      let sum = Array.fold_left ( + ) 0 in
      Alcotest.(check int)
        "pops + steals = chunks run"
        (rounds * Array.length (Pool.chunks ~cost n))
        (sum tel.Pool.local_pops + sum tel.Pool.steals))

(* With 4 domains on the synthetic skew workload, cost-aware placement
   plus stealing must keep every domain at >= 50% of the busiest
   domain's task time.  Only meaningful when 4 hardware cores exist:
   oversubscribed domains are scheduled too erratically to assert on. *)
let test_skew_busy_balance () =
  Pool.with_pool ~domains:4 (fun pool ->
      let n = 400 in
      let heavy = 41 in
      let cost = skew_cost ~heavy in
      Pool.reset_telemetry pool;
      let sink = Array.make n 0. in
      for _ = 1 to 5 do
        Pool.parallel_for ~cost pool n (fun i -> sink.(i) <- spin (cost i) (float_of_int i))
      done;
      let tel = Pool.telemetry pool in
      let mx = Array.fold_left Float.max 0. tel.Pool.busy_seconds in
      let mn = Array.fold_left Float.min infinity tel.Pool.busy_seconds in
      if Domain.recommended_domain_count () >= 4 then begin
        if mx <= 0. then Alcotest.fail "no busy time recorded";
        if mn < 0.5 *. mx then
          Alcotest.failf "imbalanced busy times: min %.4fs < 50%% of max %.4fs" mn mx
      end
      else if mx <= 0. then Alcotest.fail "no busy time recorded")

let () =
  Alcotest.run "dbh-parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_pool_map_matches_sequential;
          Alcotest.test_case "for covers indices once" `Quick test_pool_for_covers_every_index_once;
          Alcotest.test_case "reduce is chunk-ordered" `Quick test_pool_reduce_is_chunk_ordered;
          Alcotest.test_case "size one and empty input" `Quick test_pool_size_one_and_empty;
          Alcotest.test_case "exception propagates, pool survives" `Quick
            test_pool_exception_propagates_and_pool_survives;
          Alcotest.test_case "rejects bad widths" `Quick test_pool_rejects_bad_widths;
        ] );
      ( "counters",
        [
          Alcotest.test_case "atomic distance counter exact" `Quick
            test_counter_exact_under_parallelism;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "index build" `Quick test_parallel_build_bit_identical;
          Alcotest.test_case "builder prepare" `Quick test_parallel_prepare_bit_identical;
          Alcotest.test_case "collision matrix" `Quick
            test_parallel_collision_matrix_bit_identical;
          Alcotest.test_case "ground truth" `Quick test_ground_truth_parallel_identical;
        ] );
      ( "batch",
        [
          Alcotest.test_case "index batch equals per-query" `Quick
            test_query_batch_matches_per_query;
          Alcotest.test_case "budget never exceeded" `Quick
            test_query_batch_budget_never_exceeded;
          Alcotest.test_case "hierarchical batch equals per-query" `Quick
            test_hierarchical_batch_matches_per_query;
          Alcotest.test_case "online parallel generation" `Quick
            test_online_parallel_generation_matches;
        ] );
      ( "skew",
        QCheck_alcotest.to_alcotest prop_skew_bit_identical
        :: QCheck_alcotest.to_alcotest prop_cost_chunks_tile
        :: [
             Alcotest.test_case "telemetry accounts every task" `Quick
               test_telemetry_accounts_every_task;
             Alcotest.test_case "skewed busy times balanced" `Quick test_skew_busy_balance;
           ] );
    ]
