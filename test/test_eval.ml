(* Tests for Dbh_eval: ground truth, tradeoff measurement, classification,
   report rendering. *)

module Rng = Dbh_util.Rng
module Space = Dbh_space.Space
module Minkowski = Dbh_metrics.Minkowski
module Ground_truth = Dbh_eval.Ground_truth
module Tradeoff = Dbh_eval.Tradeoff
module Classification = Dbh_eval.Classification
module Report = Dbh_eval.Report

let l2 = Minkowski.l2_space
let check_loose tol = Alcotest.(check (float tol))

let tiny_db = [| [| 0.; 0. |]; [| 1.; 0. |]; [| 0.; 1. |]; [| 5.; 5. |] |]

let test_ground_truth_basic () =
  let queries = [| [| 0.1; 0. |]; [| 4.9; 5. |] |] in
  let t = Ground_truth.compute ~space:l2 ~db:tiny_db ~queries () in
  Alcotest.(check int) "q0 nn" 0 t.Ground_truth.nn_index.(0);
  Alcotest.(check int) "q1 nn" 3 t.Ground_truth.nn_index.(1);
  check_loose 1e-9 "q0 dist" 0.1 t.Ground_truth.nn_distance.(0);
  Alcotest.(check int) "cost" 4 t.Ground_truth.cost_per_query

let test_ground_truth_self () =
  let t = Ground_truth.compute_self ~space:l2 ~db:tiny_db ~query_indices:[| 0; 3 |] in
  (* NN of (0,0) excluding itself is (1,0) or (0,1), distance 1. *)
  check_loose 1e-9 "self excluded" 1. t.Ground_truth.nn_distance.(0);
  Alcotest.(check bool) "nn is not self" true (t.Ground_truth.nn_index.(0) <> 0);
  Alcotest.(check int) "cost excludes self" 3 t.Ground_truth.cost_per_query

let test_is_correct_ties () =
  let db = [| [| 0. |]; [| 2. |]; [| -2. |] |] in
  let t = Ground_truth.compute ~space:l2 ~db ~queries:[| [| 1. |] |] () in
  (* Both index 0 and index 1 are at distance 1: ties count as correct. *)
  Alcotest.(check bool) "named nn" true (Ground_truth.is_correct t 0 (Some (t.Ground_truth.nn_index.(0), 1.)));
  let other = if t.Ground_truth.nn_index.(0) = 0 then 1 else 0 in
  Alcotest.(check bool) "tied alternative" true (Ground_truth.is_correct t 0 (Some (other, 1.)));
  Alcotest.(check bool) "wrong answer" false (Ground_truth.is_correct t 0 (Some (2, 3.)));
  Alcotest.(check bool) "no answer" false (Ground_truth.is_correct t 0 None)

let test_accuracy () =
  let queries = [| [| 0.1; 0. |]; [| 4.9; 5. |] |] in
  let t = Ground_truth.compute ~space:l2 ~db:tiny_db ~queries () in
  let answers = [| Some (0, 0.1); Some (1, 9.9) |] in
  check_loose 1e-9 "half right" 0.5 (Ground_truth.accuracy t answers)

let test_knn_ground_truth () =
  let db = [| [| 0. |]; [| 1. |]; [| 2. |]; [| 10. |] |] in
  let t = Ground_truth.compute_knn ~space:l2 ~db ~queries:[| [| 0.4 |] |] ~k:2 in
  Alcotest.(check (array int)) "two nearest" [| 0; 1 |] t.Ground_truth.neighbor_ids.(0);
  check_loose 1e-9 "first distance" 0.4 t.Ground_truth.neighbor_distances.(0).(0);
  check_loose 1e-9 "second distance" 0.6 t.Ground_truth.neighbor_distances.(0).(1);
  (* k clamps to the database size. *)
  let t = Ground_truth.compute_knn ~space:l2 ~db ~queries:[| [| 0. |] |] ~k:100 in
  Alcotest.(check int) "clamped" 4 (Array.length t.Ground_truth.neighbor_ids.(0))

let test_recall_at_k () =
  let db = [| [| 0. |]; [| 1. |]; [| 2. |]; [| 10. |] |] in
  let t = Ground_truth.compute_knn ~space:l2 ~db ~queries:[| [| 0. |]; [| 10. |] |] ~k:2 in
  (* Query 0: truth {0,1}. Found both -> 1.0. Query 1: truth {3,2};
     found only 3 -> 0.5. *)
  let answers = [| [| (0, 0.); (1, 1.) |]; [| (3, 0.) |] |] in
  check_loose 1e-9 "mean recall" 0.75 (Ground_truth.recall_at_k t answers);
  (* Empty answers give zero recall. *)
  let answers = [| [||]; [||] |] in
  check_loose 1e-9 "zero" 0. (Ground_truth.recall_at_k t answers)

let test_recall_ties () =
  (* Two objects at the same distance: either counts as a hit. *)
  let db = [| [| 1. |]; [| -1. |]; [| 5. |] |] in
  let t = Ground_truth.compute_knn ~space:l2 ~db ~queries:[| [| 0. |] |] ~k:1 in
  let other = if t.Ground_truth.neighbor_ids.(0).(0) = 0 then 1 else 0 in
  check_loose 1e-9 "tie counts" 1. (Ground_truth.recall_at_k t [| [| (other, 1.) |] |])

let test_range_ground_truth () =
  let db = [| [| 0. |]; [| 1. |]; [| 2. |]; [| 10. |] |] in
  let truth = Ground_truth.compute_range ~space:l2 ~db ~queries:[| [| 0.5 |]; [| 20. |] |] ~radius:1.5 in
  Alcotest.(check (list int)) "q0 hits" [ 0; 1; 2 ] truth.(0);
  Alcotest.(check (list int)) "q1 empty" [] truth.(1)

let test_range_recall () =
  let truth = [| [ 0; 1; 2 ]; []; [ 3 ] |] in
  let returned = [| [ (0, 0.1); (2, 0.3) ]; []; [ (3, 0.2) ] |] in
  (* q0: 2/3; q1 skipped; q2: 1. Mean over counted = (2/3 + 1)/2. *)
  check_loose 1e-9 "recall" ((2. /. 3.) +. 1.) (2. *. Ground_truth.range_recall truth returned);
  check_loose 1e-9 "all empty defined as 1" 1. (Ground_truth.range_recall [| [] |] [| [] |])

let test_range_through_index () =
  (* End-to-end: DBH range queries return a subset of the true range set
     (never false positives) with decent recall at a generous l. *)
  let rng = Dbh_util.Rng.create 91 in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:6 ~dim:4 500 in
  let queries = Array.init 40 (fun i -> Dbh_datasets.Vectors.perturb ~rng ~sigma:0.05 db.(i * 11)) in
  let radius = 0.3 in
  let truth = Ground_truth.compute_range ~space:l2 ~db ~queries ~radius in
  let family =
    Dbh.Hash_family.make ~rng ~space:l2 ~num_pivots:25 ~threshold_sample:200 db
  in
  let index = Dbh.Index.build ~rng ~family ~db ~k:4 ~l:20 () in
  let returned = Array.map (fun q -> fst (Dbh.Index.query_range index radius q)) queries in
  (* No false positives: every returned id is in the truth set. *)
  Array.iteri
    (fun qi hits ->
      List.iter
        (fun (id, _) ->
          Alcotest.(check bool) "returned within radius" true (List.mem id truth.(qi)))
        hits)
    returned;
  let recall = Ground_truth.range_recall truth returned in
  Alcotest.(check bool) (Printf.sprintf "recall %.3f" recall) true (recall > 0.7)

let test_tradeoff_measure () =
  let queries = [| [| 0.1; 0. |]; [| 4.9; 5. |]; [| 0.; 0.9 |] |] in
  let truth = Ground_truth.compute ~space:l2 ~db:tiny_db ~queries () in
  (* A fake method: answers brute force for even queries, nothing for odd,
     charging 7 distances each. *)
  let state = ref 0 in
  let m =
    {
      Tradeoff.label = "fake";
      setting = "s";
      run =
        (fun q ->
          incr state;
          if !state mod 2 = 1 then begin
            let best = ref (0, l2.Space.distance q tiny_db.(0)) in
            Array.iteri
              (fun i x ->
                let d = l2.Space.distance q x in
                if d < snd !best then best := (i, d))
              tiny_db;
            (Some !best, 7)
          end
          else (None, 7));
    }
  in
  let p = Tradeoff.measure ~queries ~truth m in
  check_loose 1e-9 "two of three" (2. /. 3.) p.Tradeoff.accuracy;
  check_loose 1e-9 "mean cost" 7. p.Tradeoff.mean_cost;
  Alcotest.(check string) "label" "fake" p.Tradeoff.method_label

let test_tradeoff_sort () =
  let s =
    {
      Tradeoff.series_label = "x";
      points =
        [|
          { Tradeoff.method_label = "m"; setting = "a"; accuracy = 0.9; mean_cost = 1.; cost_ci95 = 0.; total_cost = 1 };
          { Tradeoff.method_label = "m"; setting = "b"; accuracy = 0.5; mean_cost = 2.; cost_ci95 = 0.; total_cost = 2 };
        |];
    }
  in
  let sorted = Tradeoff.sort_by_accuracy s in
  check_loose 1e-12 "ascending" 0.5 sorted.Tradeoff.points.(0).Tradeoff.accuracy

let test_classification_error () =
  let db_labels = [| 0; 1; 0; 1 |] in
  let query_labels = [| 0; 1; 1 |] in
  let answers = [| Some (0, 0.1); Some (2, 0.1); None |] in
  (* q0: label 0 = 0 ok; q1: db 2 has label 0 <> 1 error; q2: none error. *)
  check_loose 1e-9 "error rate" (2. /. 3.)
    (Classification.error_rate ~db_labels ~query_labels answers)

let test_classification_knn_majority () =
  let db_labels = [| 0; 0; 1; 1; 1 |] in
  let query_labels = [| 1; 0 |] in
  let answers =
    [|
      [| (2, 0.1); (3, 0.2); (0, 0.3) |] (* votes: 1,1,0 -> 1 correct *);
      [| (2, 0.1); (0, 0.2); (1, 0.3) |] (* votes: 1,0,0 -> 0 correct *);
    |]
  in
  check_loose 1e-9 "majority vote" 0.
    (Classification.knn_error_rate ~db_labels ~query_labels answers)

let test_classification_knn_tie_break () =
  let db_labels = [| 0; 1 |] in
  let query_labels = [| 1 |] in
  (* One vote each: tie broken towards the nearer neighbor (label 1). *)
  let answers = [| [| (1, 0.1); (0, 0.5) |] |] in
  check_loose 1e-9 "tie to nearest" 0.
    (Classification.knn_error_rate ~db_labels ~query_labels answers)

let test_confusion_matrix () =
  let db_labels = [| 0; 1 |] in
  let query_labels = [| 0; 0; 1 |] in
  let answers = [| Some (0, 0.); Some (1, 0.); None |] in
  let m = Classification.confusion_matrix ~num_classes:2 ~db_labels ~query_labels answers in
  Alcotest.(check int) "true 0 pred 0" 1 m.(0).(0);
  Alcotest.(check int) "true 0 pred 1" 1 m.(0).(1);
  Alcotest.(check int) "unanswered dropped" 0 (m.(1).(0) + m.(1).(1))

let test_csv_format () =
  let s =
    {
      Tradeoff.series_label = "x";
      points =
        [|
          {
            Tradeoff.method_label = "m";
            setting = "t=0.9";
            accuracy = 0.925;
            mean_cost = 120.5;
            total_cost = 241;
            cost_ci95 = 3.25;
          };
        |];
    }
  in
  let csv = Report.csv_of_series [ s ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + row" 2 (List.length lines);
  Alcotest.(check string) "header" "method,setting,accuracy,mean_cost,cost_ci95,total_cost"
    (List.nth lines 0);
  Alcotest.(check string) "row" "m,t=0.9,0.925000,120.500,3.250,241" (List.nth lines 1)

let test_ascii_plot_smoke () =
  (* Pure smoke: the plot must render any series without raising,
     including degenerate single-point input. *)
  let mk label pts =
    {
      Tradeoff.series_label = label;
      points =
        Array.of_list
          (List.map
             (fun (a, c) ->
               {
                 Tradeoff.method_label = label;
                 setting = "";
                 accuracy = a;
                 mean_cost = c;
                 cost_ci95 = 0.;
                 total_cost = 0;
               })
             pts);
    }
  in
  Report.ascii_plot [ mk "one" [ (0.8, 100.); (0.9, 150.); (0.99, 400.) ]; mk "two" [ (0.85, 90.) ] ];
  Report.ascii_plot [ mk "degenerate" [ (0.5, 10.) ] ];
  Report.ascii_plot []

let () =
  Alcotest.run "dbh_eval"
    [
      ( "ground_truth",
        [
          Alcotest.test_case "basic" `Quick test_ground_truth_basic;
          Alcotest.test_case "self queries" `Quick test_ground_truth_self;
          Alcotest.test_case "tie handling" `Quick test_is_correct_ties;
          Alcotest.test_case "accuracy" `Quick test_accuracy;
          Alcotest.test_case "knn ground truth" `Quick test_knn_ground_truth;
          Alcotest.test_case "recall@k" `Quick test_recall_at_k;
          Alcotest.test_case "recall ties" `Quick test_recall_ties;
          Alcotest.test_case "range ground truth" `Quick test_range_ground_truth;
          Alcotest.test_case "range recall" `Quick test_range_recall;
          Alcotest.test_case "range through index" `Quick test_range_through_index;
        ] );
      ( "tradeoff",
        [
          Alcotest.test_case "measure" `Quick test_tradeoff_measure;
          Alcotest.test_case "sort" `Quick test_tradeoff_sort;
        ] );
      ( "classification",
        [
          Alcotest.test_case "1-nn error" `Quick test_classification_error;
          Alcotest.test_case "knn majority" `Quick test_classification_knn_majority;
          Alcotest.test_case "knn tie break" `Quick test_classification_knn_tie_break;
          Alcotest.test_case "confusion matrix" `Quick test_confusion_matrix;
        ] );
      ( "report",
        [
          Alcotest.test_case "csv format" `Quick test_csv_format;
          Alcotest.test_case "ascii plot smoke" `Quick test_ascii_plot_smoke;
        ] );
    ]
