(* Storage-engine tests: the compact layout (packed keys, frozen CSR
   tables, reusable query scratch) must be invisible from the outside.

   The centrepiece is a golden diff — a pinned pen-digit/DTW workload
   whose per-query answers, hex-float distances and logical cost
   counters were recorded before the storage refactor
   (test/fixtures/golden_storage.txt); any layout change that perturbs a
   single bit of any answer fails here.  Around it: Key codec
   properties, CSR freeze/compaction invariants fuzzed against fresh
   rebuilds, scratch-reuse equivalence, and migration of a pinned
   pre-refactor (v1) durable directory to the packed v2 snapshot
   format. *)

module Rng = Dbh_util.Rng
module Pool = Dbh_util.Pool
module Binio = Dbh_util.Binio
module Envelope = Dbh_persist.Envelope
module Layout = Dbh_persist.Layout
module Pen = Dbh_datasets.Pen_digits
module Minkowski = Dbh_metrics.Minkowski
module Key = Dbh.Key
module Csr = Dbh.Csr
module Scratch = Dbh.Scratch
module Index = Dbh.Index
module Hash_family = Dbh.Hash_family
module Hierarchical = Dbh.Hierarchical
module Builder = Dbh.Builder
module Online = Dbh.Online
module Durable = Dbh.Online.Durable
module Query_opts = Dbh.Query_opts
module Diagnostics = Dbh.Diagnostics

let domains =
  match Sys.getenv_opt "DBH_TEST_DOMAINS" with
  | None -> 2
  | Some s -> (
      match int_of_string_opt s with
      | Some d when d >= 1 -> d
      | _ -> invalid_arg "DBH_TEST_DOMAINS must be a positive integer")

let l2 = Minkowski.l2_space

(* ------------------------------------------------- golden workload
   Copied verbatim from the one-shot generator that produced
   test/fixtures/golden_storage.txt on the pre-refactor engine.  Do not
   edit without regenerating the fixture. *)

let golden_workload () =
  let db = Pen.generate_set ~rng:(Rng.create 7) 300 in
  let queries = Pen.generate_set ~rng:(Rng.create 8) 25 in
  let family =
    Hash_family.make ~rng:(Rng.create 9) ~space:Pen.space ~num_pivots:40
      ~threshold_sample:150 db
  in
  let index = Index.build ~rng:(Rng.create 10) ~family ~db ~k:8 ~l:6 () in
  let config =
    {
      Builder.default_config with
      num_pivots = 40;
      threshold_sample = 150;
      num_sample_queries = 60;
      num_fns = 120;
      db_sample = 150;
      levels = 3;
    }
  in
  let prepared = Builder.prepare ~rng:(Rng.create 11) ~space:Pen.space ~config db in
  let hier =
    Builder.hierarchical ~rng:(Rng.create 12) ~prepared ~db ~target_accuracy:0.9
      ~config ()
  in
  (queries, index, hier)

let golden_result_line tag qi (r : _ Index.result) =
  let nn =
    match r.Index.nn with
    | None -> "- -"
    | Some (id, d) -> Printf.sprintf "%d %h" id d
  in
  Printf.sprintf "%s %d %s %d %d %d %d %b" tag qi nn r.Index.stats.Index.hash_cost
    r.Index.stats.Index.lookup_cost r.Index.stats.Index.probes r.Index.levels_probed
    r.Index.truncated

let golden_knn_line qi (hits : (int * float) array) (stats : Index.stats) =
  let hits =
    Array.to_list hits
    |> List.map (fun (id, d) -> Printf.sprintf "%d:%h" id d)
    |> String.concat ","
  in
  Printf.sprintf "knn5 %d [%s] %d %d %d" qi
    (if hits = "" then "-" else hits)
    stats.Index.hash_cost stats.Index.lookup_cost stats.Index.probes

let golden_range_line qi (hits : (int * float) list) (stats : Index.stats) =
  let hits =
    List.map (fun (id, d) -> Printf.sprintf "%d:%h" id d) hits |> String.concat ","
  in
  Printf.sprintf "range %d [%s] %d %d %d" qi
    (if hits = "" then "-" else hits)
    stats.Index.hash_cost stats.Index.lookup_cost stats.Index.probes

let golden_lines ?opts () =
  let queries, index, hier = golden_workload () in
  let budgeted =
    match opts with
    | None -> Query_opts.budgeted 40
    | Some o -> { o with Query_opts.budget = Some 40 }
  in
  let lines = ref [] in
  let emit l = lines := l :: !lines in
  Array.iteri
    (fun qi q ->
      emit (golden_result_line "single" qi (Index.search ?opts index q));
      emit (golden_result_line "single-b40" qi (Index.search ~opts:budgeted index q));
      emit (golden_result_line "multi2" qi (Index.query_multiprobe index ~probes:2 q));
      emit (golden_result_line "budg10" qi (Index.query_budgeted index ~max_candidates:10 q));
      (let hits, stats = Index.query_knn index 5 q in
       emit (golden_knn_line qi hits stats));
      (let hits, stats = Index.query_range index 1.5 q in
       emit (golden_range_line qi hits stats));
      emit (golden_result_line "hier" qi (Hierarchical.search ?opts hier q));
      emit (golden_result_line "hier-b40" qi (Hierarchical.search ~opts:budgeted hier q)))
    queries;
  List.rev !lines

(* ------------------------------------------------------ fixture diff *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

(* Fixtures are declared as test deps, so they sit next to the test
   executable in _build — resolve them there, not via the cwd. *)
let fixture_path name =
  Filename.concat (Filename.concat (Filename.dirname Sys.executable_name) "fixtures") name

let check_against_golden label actual =
  let expected = read_lines (fixture_path "golden_storage.txt") in
  Alcotest.(check int) (label ^ ": line count") (List.length expected) (List.length actual);
  List.iteri
    (fun i (e, a) ->
      if e <> a then
        Alcotest.failf "%s: line %d diverges from golden fixture\nexpected: %s\nactual:   %s"
          label (i + 1) e a)
    (List.combine expected actual)

let test_golden_bit_identity () = check_against_golden "fresh scratch" (golden_lines ())

let test_golden_with_shared_scratch () =
  (* Same workload through one long-lived scratch: zero-alloc reuse must
     not change a bit of any answer. *)
  let scratch = Scratch.create () in
  let opts = Query_opts.make ~scratch () in
  check_against_golden "shared scratch" (golden_lines ~opts ())

let test_golden_batches_match_pool () =
  (* search_batch — sequential (shared scratch inside) and fanned over a
     pool — must agree with the golden per-query "single"/"hier" lines. *)
  let queries, index, hier = golden_workload () in
  let golden = read_lines (fixture_path "golden_storage.txt") in
  let expect tag =
    List.filter (fun l -> String.length l > String.length tag
                          && String.sub l 0 (String.length tag + 1) = tag ^ " ")
      golden
  in
  let check label tag lines =
    List.iteri
      (fun i (e, a) ->
        if e <> a then
          Alcotest.failf "%s: %s query %d diverges\nexpected: %s\nactual:   %s" label tag i
            e a)
      (List.combine (expect tag) lines)
  in
  let run opts =
    let single =
      Index.search_batch ~opts index queries
      |> Array.to_list
      |> List.mapi (fun qi r -> golden_result_line "single" qi r)
    in
    let hier_lines =
      Hierarchical.search_batch ~opts hier queries
      |> Array.to_list
      |> List.mapi (fun qi r -> golden_result_line "hier" qi r)
    in
    (single, hier_lines)
  in
  let s_seq, h_seq = run (Query_opts.make ()) in
  check "sequential batch" "single" s_seq;
  check "sequential batch" "hier" h_seq;
  Pool.with_pool ~domains (fun pool ->
      let s_par, h_par = run (Query_opts.make ~pool ()) in
      check (Printf.sprintf "%d-domain batch" domains) "single" s_par;
      check (Printf.sprintf "%d-domain batch" domains) "hier" h_par)

(* ------------------------------------------------------- Key properties *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let arb_bits =
  QCheck.Gen.(1 -- Key.max_bits >>= fun w -> array_size (return w) bool)
  |> QCheck.make ~print:(fun bits ->
         String.concat "" (Array.to_list (Array.map (fun b -> if b then "1" else "0") bits)))

let key_roundtrip =
  QCheck.Test.make ~name:"of_bits |> to_bits round-trips at every width <= 62" ~count:500
    arb_bits (fun bits ->
      let w = Array.length bits in
      let key = Key.of_bits bits in
      let back = Key.to_bits ~width:w key in
      back = bits
      && Key.of_int ~width:w (Key.to_int key) = key
      && Key.equal key (Array.fold_left Key.push_bit Key.zero bits))

let key_order_is_lexicographic =
  QCheck.Test.make ~name:"int order = lexicographic bit order" ~count:500
    (QCheck.pair arb_bits arb_bits) (fun (a, b) ->
      (* Compare at equal width only — pad the shorter to the longer. *)
      let w = max (Array.length a) (Array.length b) in
      let pad bits = Array.append (Array.make (w - Array.length bits) false) bits in
      let a = pad a and b = pad b in
      let lex = compare a b in
      compare (Key.compare (Key.of_bits a) (Key.of_bits b)) 0 = compare lex 0)

let test_key_width_limits () =
  Alcotest.check_raises "width 63 rejected"
    (Invalid_argument "Key: width must be in [1, 62], got 63") (fun () ->
      Key.check_width 63);
  Alcotest.check_raises "width 0 rejected"
    (Invalid_argument "Key: width must be in [1, 62], got 0") (fun () ->
      Key.check_width 0);
  Key.check_width 1;
  Key.check_width Key.max_bits;
  (try
     ignore (Key.of_bits (Array.make 63 true));
     Alcotest.fail "63-bit code accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Key.of_int ~width:4 16);
     Alcotest.fail "out-of-range int accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Key.of_int ~width:4 (-1));
     Alcotest.fail "negative int accepted"
   with Invalid_argument _ -> ());
  (* All-ones max-width code survives intact — no sign-bit trouble. *)
  let all = Array.make Key.max_bits true in
  Alcotest.(check bool) "62 ones round-trip" true
    (Key.to_bits ~width:Key.max_bits (Key.of_bits all) = all)

let test_index_rejects_wide_k () =
  let db = Array.init 20 (fun i -> [| float_of_int i; 0. |]) in
  let rng = Rng.create 3 in
  let family = Hash_family.make ~rng ~space:l2 ~num_pivots:8 ~threshold_sample:20 db in
  try
    ignore (Index.build ~rng ~family ~db ~k:63 ~l:1 ());
    Alcotest.fail "k = 63 accepted"
  with Invalid_argument msg ->
    Alcotest.(check bool) "message names the limit" true
      (String.length msg > 0 && msg = Printf.sprintf "Index.build: k must be in [1, %d]" Key.max_bits)

(* ------------------------------------------------------------ CSR fuzz *)

(* Reference model: plain cons-list buckets.  The CSR (frozen base +
   delta + compaction) must present exactly the same buckets in exactly
   the same query order. *)
let csr_fuzz =
  QCheck.Test.make ~name:"csr = cons-list model under inserts/deletes/compaction" ~count:60
    QCheck.(small_int) (fun seed ->
      let rng = Rng.create (1000 + seed) in
      let n_initial = 1 + Rng.int rng 60 in
      let n_ops = Rng.int rng 120 in
      let key_space = 1 + Rng.int rng 16 in
      let model : (int, int list) Hashtbl.t = Hashtbl.create 16 in
      let next_id = ref 0 in
      let dead = Hashtbl.create 16 in
      let model_add key id =
        let b = try Hashtbl.find model key with Not_found -> [] in
        Hashtbl.replace model key (id :: b)
      in
      (* Seed the frozen base. *)
      let base = Hashtbl.create 16 in
      for _ = 1 to n_initial do
        let key = Rng.int rng key_space and id = !next_id in
        incr next_id;
        let b = try Hashtbl.find base key with Not_found -> [] in
        Hashtbl.replace base key (id :: b);
        model_add key id
      done;
      let csr = Csr.freeze base in
      let is_alive id = not (Hashtbl.mem dead id) in
      (* Random deltas, deletions and occasional compactions. *)
      for _ = 1 to n_ops do
        match Rng.int rng 4 with
        | 0 | 1 ->
            let key = Rng.int rng key_space and id = !next_id in
            incr next_id;
            Csr.add csr key id;
            model_add key id
        | 2 -> if !next_id > 0 then Hashtbl.replace dead (Rng.int rng !next_id) ()
        | _ -> Csr.compact ~is_alive csr
      done;
      (* Same buckets, same live contents, same iteration order. *)
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) model [] |> List.sort compare in
      List.for_all
        (fun key ->
          let expect = Hashtbl.find model key |> List.filter is_alive in
          let got = ref [] in
          Csr.iter_bucket csr key (fun id -> if is_alive id then got := id :: !got);
          List.rev !got = expect)
        keys
      && Csr.bucket_size csr (key_space + 1) = 0)

let test_online_compaction_vs_rebuild () =
  (* An online index after insert/delete churn + compact answers every
     query identically to the same index without compaction, and its
     diagnostics report the reclaimed space. *)
  let rng = Rng.create 77 in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:6 ~dim:4 200 in
  let config =
    { Builder.default_config with num_pivots = 20; num_sample_queries = 60; db_sample = 150 }
  in
  let make () =
    Online.create ~rng:(Rng.create 78) ~space:l2 ~config ~rebuild_factor:100.
      ~target_accuracy:0.9 db
  in
  let a = make () and b = make () in
  let churn t =
    let rng = Rng.create 79 in
    for i = 0 to 59 do
      let v = Array.init 4 (fun _ -> Rng.float_in rng (-1.) 1.) in
      let h = Online.insert t v in
      if i mod 4 = 3 then Online.delete t (h - 1)
    done
  in
  churn a;
  churn b;
  Alcotest.(check bool) "delta pending" true (Online.delta_size a > 0);
  Alcotest.(check bool) "tombstones pending" true (Online.tombstones a > 0);
  let stats = Diagnostics.online_stats a in
  Alcotest.(check int) "live" (Online.size a) stats.Diagnostics.live;
  Alcotest.(check int) "tombstones" (Online.tombstones a) stats.Diagnostics.tombstones;
  Alcotest.(check int) "delta" (Online.delta_size a) stats.Diagnostics.delta_size;
  Online.compact a;
  Alcotest.(check int) "delta folded" 0 (Online.delta_size a);
  let qrng = Rng.create 80 in
  for _ = 1 to 40 do
    let q = Array.init 4 (fun _ -> Rng.float_in qrng (-1.) 1.) in
    let ra = Online.search a q and rb = Online.search b q in
    if ra.Online.nn <> rb.Online.nn then Alcotest.fail "compaction changed the neighbor";
    Alcotest.(check int) "hash cost" rb.Online.stats.Index.hash_cost
      ra.Online.stats.Index.hash_cost
  done

(* -------------------------------------------------------- scratch reuse *)

let test_scratch_reuse_is_clean () =
  let s = Scratch.create () in
  Scratch.ensure s 100;
  Alcotest.(check bool) "first mark" true (Scratch.mark s 7);
  Alcotest.(check bool) "repeat mark" false (Scratch.mark s 7);
  Alcotest.(check bool) "mem" true (Scratch.mem s 7);
  ignore (Scratch.mark s 42);
  Alcotest.(check int) "count" 2 (Scratch.count s);
  Alcotest.(check (list int)) "discovery order" [ 7; 42 ] (Scratch.to_list s);
  Scratch.reset s;
  Alcotest.(check int) "reset clears count" 0 (Scratch.count s);
  Alcotest.(check bool) "reset clears marks" true (Scratch.mark s 7);
  Scratch.reset s;
  (* Growth keeps the mask clean. *)
  Scratch.ensure s 10_000;
  for i = 0 to 9_999 do
    if not (Scratch.mark s i) then Alcotest.failf "stale mark at %d after growth" i
  done;
  Scratch.reset s;
  let row = Scratch.pivot_dists s 32 in
  Alcotest.(check bool) "pivot row big enough" true (Array.length row >= 32)

let test_scratch_exception_safety () =
  (* A budget blow-up mid-query must still leave a shared scratch clean
     for the next query. *)
  let db = Pen.generate_set ~rng:(Rng.create 21) 120 in
  let family =
    Hash_family.make ~rng:(Rng.create 22) ~space:Pen.space ~num_pivots:15
      ~threshold_sample:80 db
  in
  let index = Index.build ~rng:(Rng.create 23) ~family ~db ~k:4 ~l:5 () in
  let scratch = Scratch.create () in
  let q = Pen.generate_set ~rng:(Rng.create 24) 1 in
  let tight = Query_opts.make ~budget:3 ~scratch () in
  let r1 = Index.search ~opts:tight index q.(0) in
  Alcotest.(check bool) "budget truncated" true r1.Index.truncated;
  Alcotest.(check int) "scratch clean after truncation" 0 (Scratch.count scratch);
  let free = Query_opts.make ~scratch () in
  let r2 = Index.search ~opts:free index q.(0) in
  let r3 = Index.search index q.(0) in
  if r2.Index.nn <> r3.Index.nn then Alcotest.fail "shared scratch changed the answer"

(* ------------------------------------------------- v1 -> v2 migration *)

let fresh_dir =
  let dir_counter = ref 0 in
  fun () ->
    incr dir_counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dbh-storage-%d-%d" (Unix.getpid ()) !dir_counter)
    in
    Unix.mkdir d 0o755;
    d

let copy_file src dst =
  let ic = open_in_bin src in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

let encode (v : float array) =
  let buf = Buffer.create 64 in
  Binio.write_float_array buf v;
  Buffer.contents buf

let decode s =
  let r = Binio.reader s in
  let v = Binio.read_float_array r in
  if not (Binio.at_end r) then raise (Binio.Corrupt "trailing bytes in vector");
  v

let test_v1_snapshot_migrates_to_v2 () =
  (* The pinned fixture directory was written by the pre-refactor engine
     (snapshot version 1, bit-packed key blocks) via
     `dbh-cli persist <dir> -n 120 --ops 30 -q 5 -s 42`.  It must open
     cleanly, replay its WAL, serve queries, and migrate to a packed v2
     snapshot on the first checkpoint. *)
  let src = fixture_path "v1_online" in
  let dir = fresh_dir () in
  List.iter
    (fun f -> copy_file (Filename.concat src f) (Filename.concat dir f))
    [ "snapshot-000001.dbh"; "wal-000001.log" ];
  let v1_path = Layout.snapshot_path ~dir 1 in
  let hdr, _ = Envelope.read ~path:v1_path in
  Alcotest.(check int) "fixture is version 1" 1 hdr.Envelope.version;
  let info = Durable.inspect_snapshot ~path:v1_path in
  Alcotest.(check int) "inspect sees v1" 1 info.Durable.format_version;
  (* Same open parameters as dbh-cli's durable subcommands. *)
  let t, recovery =
    Durable.open_or_create ~rng:(Rng.create 42) ~space:l2
      ~config:
        { Builder.default_config with num_pivots = 50; num_sample_queries = 100 }
      ~target_accuracy:0.9 ~encode ~decode ~dir ()
  in
  (match recovery.Durable.source with
  | `Snapshot 1 -> ()
  | _ -> Alcotest.fail "expected recovery from the v1 snapshot");
  Alcotest.(check (list (pair int string))) "no generation skipped" []
    recovery.Durable.skipped;
  Alcotest.(check int) "WAL replayed" 36 recovery.Durable.replayed_ops;
  Alcotest.(check int) "alive objects" (120 + 30 - 6) (Durable.size t);
  let q = Array.init 16 (fun i -> float_of_int i /. 16.) in
  let r = Durable.search t q in
  Alcotest.(check bool) "v1-recovered index answers" true (r.Online.nn <> None);
  Durable.checkpoint t;
  let gen = Durable.generation t in
  let v2_path = Layout.snapshot_path ~dir gen in
  let hdr2, _ = Envelope.read ~path:v2_path in
  Alcotest.(check int) "first checkpoint writes version 2" 2 hdr2.Envelope.version;
  let total, alive = Durable.verify_snapshot ~path:v2_path in
  Alcotest.(check int) "v2 verifies: total handles" 150 total;
  Alcotest.(check int) "v2 verifies: alive" 144 alive;
  let info2 = Durable.inspect_snapshot ~path:v2_path in
  Alcotest.(check int) "inspect sees v2" 2 info2.Durable.format_version;
  Alcotest.(check int) "registry carried over" 150 info2.Durable.registry_len;
  Alcotest.(check int) "tombstones carried over" 6 info2.Durable.dead_handles;
  Durable.close t;
  (* Reopen from the migrated snapshot: answers must match the handle. *)
  let t2, recovery2 =
    Durable.open_or_create ~rng:(Rng.create 42) ~space:l2
      ~config:
        { Builder.default_config with num_pivots = 50; num_sample_queries = 100 }
      ~target_accuracy:0.9 ~encode ~decode ~dir ()
  in
  (match recovery2.Durable.source with
  | `Snapshot g when g = gen -> ()
  | _ -> Alcotest.fail "expected recovery from the migrated v2 snapshot");
  let r2 = Durable.search t2 q in
  if r.Online.nn <> r2.Online.nn then Alcotest.fail "v2 reopen changed the answer";
  Durable.close t2

(* ------------------------------------------------------- diagnostics *)

let test_diagnostics_storage_fields () =
  let db = Pen.generate_set ~rng:(Rng.create 31) 150 in
  let family =
    Hash_family.make ~rng:(Rng.create 32) ~space:Pen.space ~num_pivots:15
      ~threshold_sample:80 db
  in
  let index = Index.build ~rng:(Rng.create 33) ~family ~db ~k:4 ~l:5 () in
  let s = Diagnostics.index_stats index in
  Alcotest.(check int) "no delta right after build" 0 s.Diagnostics.delta_entries;
  Alcotest.(check bool) "fill in (0,1]" true
    (s.Diagnostics.directory_fill > 0. && s.Diagnostics.directory_fill <= 1.);
  Alcotest.(check bool) "memory estimate positive" true (s.Diagnostics.approx_table_bytes > 0);
  let hist = Diagnostics.bucket_histogram index in
  Alcotest.(check bool) "histogram non-empty" true (Array.length hist > 0);
  let buckets = Array.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  Alcotest.(check int) "histogram covers every bucket" s.Diagnostics.non_empty_buckets
    buckets;
  let entries = Array.fold_left (fun acc (sz, n) -> acc + (sz * n)) 0 hist in
  Alcotest.(check int) "histogram mass = l * n" (5 * 150) entries

let () =
  Alcotest.run "dbh_storage"
    [
      ( "golden",
        [
          Alcotest.test_case "bit-identical to pre-refactor engine" `Slow
            test_golden_bit_identity;
          Alcotest.test_case "shared scratch changes nothing" `Slow
            test_golden_with_shared_scratch;
          Alcotest.test_case "batches (sequential + pool) match" `Slow
            test_golden_batches_match_pool;
        ] );
      ( "key",
        Alcotest.test_case "width limits" `Quick test_key_width_limits
        :: Alcotest.test_case "index rejects wide k" `Quick test_index_rejects_wide_k
        :: qsuite [ key_roundtrip; key_order_is_lexicographic ] );
      ( "csr",
        Alcotest.test_case "online compaction vs uncompacted twin" `Quick
          test_online_compaction_vs_rebuild
        :: qsuite [ csr_fuzz ] );
      ( "scratch",
        [
          Alcotest.test_case "reuse stays clean" `Quick test_scratch_reuse_is_clean;
          Alcotest.test_case "exception safety" `Quick test_scratch_exception_safety;
        ] );
      ( "migration",
        [
          Alcotest.test_case "v1 fixture opens and migrates to v2" `Slow
            test_v1_snapshot_migrates_to_v2;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "storage fields" `Quick test_diagnostics_storage_fields;
        ] );
    ]
