(* Tests for the Selector redesign: golden-fixture bit-identity of the
   default build, the Eq. 6 balance invariant for every selector,
   pooled-vs-sequential bit-identity per selector, the versioned
   family-envelope read path (v1 and v2), and the Online.retune
   hot-swap under concurrent readers.

   DBH_TEST_DOMAINS picks the pool width (default 2; CI also runs 4). *)

module Rng = Dbh_util.Rng
module Pool = Dbh_util.Pool
module Binio = Dbh_util.Binio
module Minkowski = Dbh_metrics.Minkowski
module Selector = Dbh.Selector
module Hash_family = Dbh.Hash_family
module Builder = Dbh.Builder
module Online = Dbh.Online

let domains =
  match Sys.getenv_opt "DBH_TEST_DOMAINS" with
  | None -> 2
  | Some s -> (
      match int_of_string_opt s with
      | Some d when d >= 1 -> d
      | _ -> invalid_arg "DBH_TEST_DOMAINS must be a positive integer")

let l2 = Minkowski.l2_space

let test_db seed n =
  let rng = Rng.create seed in
  let db, _ = Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:8 ~dim:4 n in
  db

let encode (v : float array) =
  let buf = Buffer.create 32 in
  Binio.write_float_array buf v;
  Buffer.contents buf

let decode s = Binio.read_float_array (Binio.reader s)

(* Bit-level float comparison: NaN-safe and distinguishes -0. *)
let check_float_bits what a b =
  if Int64.bits_of_float a <> Int64.bits_of_float b then
    Alcotest.failf "%s: %h <> %h" what a b

let check_families_identical label a b =
  Alcotest.(check int) (label ^ ": size") (Hash_family.size a) (Hash_family.size b);
  Alcotest.(check int) (label ^ ": num_pivots") (Hash_family.num_pivots a)
    (Hash_family.num_pivots b);
  let pa = Hash_family.pivots a and pb = Hash_family.pivots b in
  Array.iteri
    (fun i v ->
      Array.iteri
        (fun j x -> check_float_bits (Printf.sprintf "%s: pivot %d.%d" label i j) x pb.(i).(j))
        v)
    pa;
  for i = 0 to Hash_family.size a - 1 do
    let fa = Hash_family.fn a i and fb = Hash_family.fn b i in
    let ctx = Printf.sprintf "%s: fn %d" label i in
    Alcotest.(check int) (ctx ^ " p1") fa.Hash_family.p1 fb.Hash_family.p1;
    Alcotest.(check int) (ctx ^ " p2") fa.Hash_family.p2 fb.Hash_family.p2;
    check_float_bits (ctx ^ " d12") fa.Hash_family.d12 fb.Hash_family.d12;
    check_float_bits (ctx ^ " t1") fa.Hash_family.t1 fb.Hash_family.t1;
    check_float_bits (ctx ^ " t2") fa.Hash_family.t2 fb.Hash_family.t2;
    check_float_bits (ctx ^ " spread") fa.Hash_family.spread fb.Hash_family.spread
  done

(* ----------------------------------------------------- golden fixture *)

(* fixtures/family_v1_uniform.bin was written by the pre-Selector code
   (v1 envelopes, no selector tag) with exactly this recipe.  Today's
   Selector.uniform builds must reproduce those families bit-for-bit:
   the redesign may not move a single rng draw on the default path. *)
let fixture_db () = test_db 42 300

let fixture_path =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "fixtures")
    "family_v1_uniform.bin"

let test_golden_fixture_bit_identity () =
  let data =
    let ic = open_in_bin fixture_path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let r = Binio.reader data in
  let old1 = Hash_family.read ~decode ~space:l2 r in
  let old2 = Hash_family.read ~decode ~space:l2 r in
  (* v1 envelopes predate selector tags and report the default. *)
  Alcotest.(check string) "v1 selector tag" "uniform" (Hash_family.selector_tag old1);
  Alcotest.(check string) "v1 selector tag (median family)" "uniform"
    (Hash_family.selector_tag old2);
  let db = fixture_db () in
  let fresh1 =
    Hash_family.make ~rng:(Rng.create 4242) ~space:l2 ~num_pivots:24
      ~threshold_sample:200 ~max_functions:150 db
  in
  let fresh2 =
    Hash_family.make ~rng:(Rng.create 777) ~space:l2 ~num_pivots:12
      ~threshold_sample:150
      ~selector:(Selector.uniform ~threshold_strategy:Selector.Median_split ())
      db
  in
  Alcotest.(check int) "fixture family 1 size" 150 (Hash_family.size old1);
  Alcotest.(check int) "fixture family 2 size" 66 (Hash_family.size old2);
  check_families_identical "random-interval family" old1 fresh1;
  check_families_identical "median-split family" old2 fresh2

(* ------------------------------------------------------------- balance *)

let all_selectors =
  [
    ("uniform", Selector.uniform ());
    ("median", Selector.uniform ~threshold_strategy:Selector.Median_split ());
    ("density", Selector.density_sensitive ());
    ("nsh", Selector.neighbor_sensitive ());
  ]

(* Eq. 6: every interval carves out half the projection mass, so each
   function should map about half of held-out data to 0 — for every
   selector (data-dependent ones only pick WHICH half-mass interval to
   use, never leave V).  QCheck varies the build seed. *)
let prop_balance =
  let all = test_db 7 900 in
  let db = Array.sub all 0 600 in
  let holdout = Array.sub all 600 300 in
  QCheck.Test.make ~count:8 ~name:"every selector balances (Eq. 6)"
    QCheck.(pair (oneofl all_selectors) small_nat)
    (fun ((tag, selector), seed) ->
      let family =
        Hash_family.make ~rng:(Rng.create (1000 + seed)) ~space:l2 ~num_pivots:16
          ~threshold_sample:250 ~max_functions:60 ~selector db
      in
      let ok = ref true in
      for i = 0 to Hash_family.size family - 1 do
        let b = Hash_family.balance family i holdout in
        (* generous: the quantiles come from a 250-point sample *)
        if b < 0.25 || b > 0.75 then begin
          Printf.eprintf "selector %s seed %d fn %d balance %.3f\n" tag seed i b;
          ok := false
        end
      done;
      !ok)

(* --------------------------------------- pooled/sequential bit-identity *)

let test_pooled_bit_identity () =
  let db = test_db 11 500 in
  List.iter
    (fun (tag, selector) ->
      let build pool =
        Hash_family.make ?pool ~rng:(Rng.create 31) ~space:l2 ~num_pivots:20
          ~threshold_sample:200 ~max_functions:80 ~selector db
      in
      let seq = build None in
      Alcotest.(check string) (tag ^ ": tag") tag (Hash_family.selector_tag seq);
      Pool.with_pool ~domains (fun pool ->
          check_families_identical (tag ^ ": pooled = sequential") seq
            (build (Some pool))))
    all_selectors

(* --------------------------------------------------- versioned envelopes *)

let test_v2_roundtrip_preserves_selector () =
  let db = test_db 13 400 in
  List.iter
    (fun (tag, selector) ->
      let family =
        Hash_family.make ~rng:(Rng.create 17) ~space:l2 ~num_pivots:14
          ~threshold_sample:150 ~max_functions:40 ~selector db
      in
      let buf = Buffer.create 4096 in
      Hash_family.write ~encode buf family;
      let back = Hash_family.read ~decode ~space:l2 (Binio.reader (Buffer.contents buf)) in
      Alcotest.(check string) (tag ^ ": round-trip tag") tag (Hash_family.selector_tag back);
      check_families_identical (tag ^ ": round-trip") family back)
    all_selectors

let test_corrupt_selector_tag_rejected () =
  let db = test_db 13 200 in
  let family =
    Hash_family.make ~rng:(Rng.create 19) ~space:l2 ~num_pivots:10 ~threshold_sample:100 db
  in
  let buf = Buffer.create 4096 in
  Hash_family.write ~encode buf family;
  let s = Buffer.contents buf in
  (* Corrupt the selector tag: "uniform" -> "unifxrm". *)
  let rec find_sub i =
    if i + 7 > String.length s then Alcotest.fail "tag not found in envelope"
    else if String.sub s i 7 = "uniform" then i
    else find_sub (i + 1)
  in
  let i = find_sub 0 in
  let bad = Bytes.of_string s in
  Bytes.set bad (i + 4) 'x';
  match Hash_family.read ~decode ~space:l2 (Binio.reader (Bytes.to_string bad)) with
  | exception Binio.Corrupt _ -> ()
  | _ -> Alcotest.fail "corrupt selector tag must be rejected"

(* -------------------------------------------------------------- retune *)

let test_retune_from_metrics () =
  let db = test_db 23 500 in
  let m = Dbh_obs.Metrics.create () in
  let config =
    { Builder.default_config with num_pivots = 20; num_sample_queries = 50; db_sample = 100 }
  in
  let t = Online.create ~rng:(Rng.create 29) ~space:l2 ~config ~target_accuracy:0.9 db in
  (* Drive observed traffic through the metric set so the nn-distance
     histogram fills. *)
  let opts = Dbh.Query_opts.make ~metrics:m () in
  Array.iter (fun q -> ignore (Online.search ~opts t q)) (Array.sub db 0 80);
  let obs = Hash_family.observations_of_metrics m in
  Alcotest.(check bool) "observed strata nonempty" true
    (Array.length obs.Hash_family.nn_distance_strata > 0);
  let rebuilds_before = Online.rebuilds t in
  let used = Online.retune ~metrics:m ~selector:(Selector.density_sensitive ()) t in
  Alcotest.(check bool) "retune consumed the strata" true
    (Array.length used.Hash_family.nn_distance_strata > 0);
  Alcotest.(check int) "retune counts as a rebuild" (rebuilds_before + 1)
    (Online.rebuilds t);
  (* The swapped-in generation answers correctly and reports the new
     selector. *)
  (match (Online.search t db.(3)).Online.nn with
  | Some (h, d) ->
      Alcotest.(check int) "self found" 3 h;
      Alcotest.(check (float 1e-9)) "zero distance" 0. d
  | None -> Alcotest.fail "retuned index must answer");
  ()

let test_retune_hot_swap_chaos () =
  (* Reader domains hammer search while the writer retunes repeatedly:
     readers must never crash, block, or see a torn generation — every
     answer must be a live handle with a finite distance. *)
  let db = test_db 37 400 in
  let config =
    { Builder.default_config with num_pivots = 16; num_sample_queries = 40; db_sample = 80 }
  in
  let m = Dbh_obs.Metrics.create () in
  let t = Online.create ~rng:(Rng.create 41) ~space:l2 ~config ~target_accuracy:0.9 db in
  let opts = Dbh.Query_opts.make ~metrics:m () in
  Array.iter (fun q -> ignore (Online.search ~opts t q)) (Array.sub db 0 40);
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let readers =
    List.init (max 2 domains) (fun r ->
        Domain.spawn (fun () ->
            let i = ref 0 in
            while not (Atomic.get stop) do
              let q = db.((!i * 7) + r) in
              (match (Online.search t q).Online.nn with
              | Some (h, d) ->
                  if h < 0 || h >= 400 || not (Float.is_finite d) then
                    Atomic.incr failures
              | None -> Atomic.incr failures);
              i := (!i + 1) mod 50
            done))
  in
  let selectors =
    [| Selector.density_sensitive (); Selector.uniform (); Selector.neighbor_sensitive () |]
  in
  for round = 0 to 2 do
    ignore (Online.retune ~metrics:m ~selector:selectors.(round) t)
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check int) "no torn reads" 0 (Atomic.get failures);
  Alcotest.(check bool) "retunes counted" true (Online.rebuilds t >= 3)

(* ------------------------------------------------- data-dependent shape *)

let test_data_dependent_selection_differs () =
  (* Sanity: density/nsh actually change which pairs are kept relative
     to uniform under the same seed — the scoring is not a no-op. *)
  let db = test_db 43 500 in
  let build selector =
    Hash_family.make ~rng:(Rng.create 47) ~space:l2 ~num_pivots:18 ~threshold_sample:200
      ~max_functions:50 ~selector db
  in
  let pairs fam =
    List.init (Hash_family.size fam) (fun i ->
        let f = Hash_family.fn fam i in
        (f.Hash_family.p1, f.Hash_family.p2))
  in
  let uni = pairs (build (Selector.uniform ())) in
  let den = pairs (build (Selector.density_sensitive ())) in
  let nsh = pairs (build (Selector.neighbor_sensitive ())) in
  Alcotest.(check bool) "density selection differs from uniform" true (uni <> den);
  Alcotest.(check bool) "nsh selection differs from uniform" true (uni <> nsh)

let () =
  Alcotest.run "dbh_selector"
    [
      ( "golden",
        [ Alcotest.test_case "v1 fixture bit-identity" `Quick test_golden_fixture_bit_identity ] );
      ("balance", [ QCheck_alcotest.to_alcotest prop_balance ]);
      ( "parallel",
        [ Alcotest.test_case "pooled = sequential per selector" `Slow test_pooled_bit_identity ] );
      ( "persistence",
        [
          Alcotest.test_case "v2 round-trip keeps selector" `Quick
            test_v2_roundtrip_preserves_selector;
          Alcotest.test_case "corrupt selector tag rejected" `Quick
            test_corrupt_selector_tag_rejected;
        ] );
      ( "retune",
        [
          Alcotest.test_case "retune from live metrics" `Slow test_retune_from_metrics;
          Alcotest.test_case "hot swap under concurrent readers" `Slow
            test_retune_hot_swap_chaos;
        ] );
      ( "selection",
        [
          Alcotest.test_case "data-dependent selection differs" `Quick
            test_data_dependent_selection_differs;
        ] );
    ]
