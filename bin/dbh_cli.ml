(* dbh-cli: command-line front end for the DBH library.

   Subcommands:
     demo        build an index on a synthetic dataset and run queries
     experiment  run one accuracy-vs-cost panel (Figure 5 of the paper)
     tune        print the (k,l) parameter landscape for a dataset
     health      report family balance, index structure, model calibration
     render      print ASCII renderings of the synthetic digit images
     stress      query through guard + circuit breaker while injecting faults
     trace       print one query's full event timeline (pivots, probes, candidates)
     persist     run a durable index in a directory: journaled updates + crash-safe close
     checkpoint  snapshot a durable index directory and truncate its log
     verify      check snapshot/log files for corruption without opening an index
     index-stats print storage-layout statistics of a snapshot (buckets, deltas, bytes)

   `experiment --metrics` and `stress --metrics` install a Dbh_obs metric
   set for the run and print its Prometheus exposition afterwards;
   `experiment --metrics` additionally reconciles the
   dbh_distance_computations_total counter against the per-query costs
   the run itself reported and fails on any mismatch. *)

module Rng = Dbh_util.Rng
module Binio = Dbh_util.Binio
module Space = Dbh_space.Space
module Ground_truth = Dbh_eval.Ground_truth
module Durable = Dbh.Online.Durable
module Envelope = Dbh_persist.Envelope
module Wal = Dbh_persist.Wal
module Layout = Dbh_persist.Layout

(* A dataset bundle erases the element type so the CLI can treat all
   workloads uniformly. *)
type bundle =
  | Bundle : {
      space : 'a Space.t;
      db : 'a array;
      queries : 'a array;
    }
      -> bundle

let make_bundle name ~seed ~db_size ~num_queries =
  let rng = Rng.create seed in
  let qrng = Rng.create (seed + 1) in
  match name with
  | "pen" ->
      Bundle
        {
          space = Dbh_datasets.Pen_digits.space;
          db = Dbh_datasets.Pen_digits.generate_set ~rng db_size;
          queries = Dbh_datasets.Pen_digits.generate_set ~rng:qrng num_queries;
        }
  | "mnist" ->
      Bundle
        {
          space = Dbh_datasets.Image_digits.space;
          db = Dbh_datasets.Image_digits.generate_set ~rng db_size;
          queries = Dbh_datasets.Image_digits.generate_set ~rng:qrng num_queries;
        }
  | "hands" ->
      let rotations = max 1 (db_size / Dbh_datasets.Hand_shapes.num_classes) in
      Bundle
        {
          space = Dbh_datasets.Hand_shapes.space;
          db = Dbh_datasets.Hand_shapes.database ~rng ~rotations_per_class:rotations;
          queries = Dbh_datasets.Hand_shapes.queries ~rng:qrng num_queries;
        }
  | "vectors" ->
      let all, _ =
        Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:25 ~dim:16
          (db_size + num_queries)
      in
      Bundle
        {
          space = Dbh_metrics.Minkowski.l2_space;
          db = Array.sub all 0 db_size;
          queries = Array.sub all db_size num_queries;
        }
  | "strings" ->
      let all, _ =
        Dbh_datasets.Strings.clusters ~rng ~alphabet:"abcdefgh" ~num_clusters:40 ~length:24
          ~mutation_edits:3 (db_size + num_queries)
      in
      Bundle
        {
          space = Dbh_metrics.Edit_distance.space;
          db = Array.sub all 0 db_size;
          queries = Array.sub all db_size num_queries;
        }
  | other -> invalid_arg (Printf.sprintf "unknown dataset %S" other)

let builder_config ~pivots ~sample_queries =
  { Dbh.Builder.default_config with num_pivots = pivots; num_sample_queries = sample_queries }

(* Run [f] with the pool implied by --domains: none for 1 (fully
   sequential, the default), a properly shut-down pool otherwise.
   Results are bit-identical either way; only wall time changes. *)
let with_domains domains f =
  if domains < 1 then begin
    Printf.eprintf "dbh-cli: --domains must be >= 1 (got %d)\n" domains;
    1
  end
  else if domains = 1 then f None
  else Dbh_util.Pool.with_pool ~domains (fun pool -> f (Some pool))

(* ------------------------------------------------------------------ demo *)

let run_demo dataset seed db_size num_queries target pivots =
  let (Bundle { space; db; queries }) = make_bundle dataset ~seed ~db_size ~num_queries in
  Printf.printf "dataset=%s  db=%d  queries=%d  space=%s  target=%.2f\n%!" dataset
    (Array.length db) (Array.length queries) space.Space.name target;
  let rng = Rng.create (seed + 2) in
  let config = builder_config ~pivots ~sample_queries:(min 200 (Array.length db / 2)) in
  let prepared = Dbh.Builder.prepare ~rng ~space ~config db in
  let index = Dbh.Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:target ~config () in
  let truth = Ground_truth.compute ~space ~db ~queries () in
  let results = Array.map (fun q -> Dbh.Hierarchical.search index q) queries in
  let acc =
    Ground_truth.accuracy truth (Array.map (fun r -> r.Dbh.Index.nn) results)
  in
  let cost =
    Dbh_util.Stats.mean
      (Array.map (fun r -> float_of_int (Dbh.Index.total_cost r.Dbh.Index.stats)) results)
  in
  Printf.printf "accuracy           : %.3f\n" acc;
  Printf.printf "distances per query: %.1f (brute force %d, speedup %.1fx)\n" cost
    (Array.length db)
    (float_of_int (Array.length db) /. cost);
  Array.iteri
    (fun i info ->
      Printf.printf "level %d: k=%d l=%d radius<=%.4f\n" i info.Dbh.Hierarchical.k
        info.Dbh.Hierarchical.l info.Dbh.Hierarchical.d_threshold)
    (Dbh.Hierarchical.levels index);
  0

(* ------------------------------------------------------------ experiment *)

let sum_reported_cost (s : Dbh_eval.Tradeoff.series) =
  Array.fold_left
    (fun acc (p : Dbh_eval.Tradeoff.point) -> acc + p.Dbh_eval.Tradeoff.total_cost)
    0 s.Dbh_eval.Tradeoff.points

let run_experiment dataset seed db_size num_queries csv_path domains metrics selector =
  with_domains domains @@ fun pool ->
  let (Bundle { space; db; queries }) = make_bundle dataset ~seed ~db_size ~num_queries in
  let rng = Rng.create (seed + 2) in
  let mset = if metrics then Some (Dbh_obs.Metrics.create ()) else None in
  Printf.printf "selector=%s\n%!" (Dbh.Selector.tag selector);
  let config =
    {
      Dbh_eval.Figure5.default_config with
      builder = { Dbh.Builder.default_config with selector };
    }
  in
  let run () = Dbh_eval.Figure5.run ?pool ~rng ~dataset ~space ~db ~queries ~config () in
  let result =
    match mset with
    | None -> run ()
    | Some m -> Dbh_obs.Metrics.with_installed m run
  in
  Dbh_eval.Report.print_figure5 result;
  (match csv_path with
  | None -> ()
  | Some path ->
      let csv =
        Dbh_eval.Report.csv_of_series
          [
            result.Dbh_eval.Figure5.vp;
            result.Dbh_eval.Figure5.single;
            result.Dbh_eval.Figure5.multiprobe;
            result.Dbh_eval.Figure5.hierarchical;
          ]
      in
      let oc = open_out path in
      output_string oc csv;
      close_out oc;
      Printf.printf "\nwrote %s\n" path);
  match mset with
  | None -> 0
  | Some m ->
      print_newline ();
      print_string (Dbh_obs.Registry.exposition m.Dbh_obs.Metrics.registry);
      (* Reconcile the counter with the run's own per-query cost report.
         Only the DBH methods query through the instrumented entry
         points — the VP-tree baseline and ground truth never touch
         them — so the two integers must match exactly, at any domain
         count. *)
      let reported =
        sum_reported_cost result.Dbh_eval.Figure5.single
        + sum_reported_cost result.Dbh_eval.Figure5.multiprobe
        + sum_reported_cost result.Dbh_eval.Figure5.hierarchical
      in
      let counted =
        Dbh_obs.Registry.counter_value m.Dbh_obs.Metrics.distance_computations_total
      in
      if counted = reported then begin
        Printf.printf "\nmetrics check: dbh_distance_computations_total = %d = sum of \
                       reported per-query costs\n"
          counted;
        0
      end
      else begin
        Printf.eprintf
          "dbh-cli: metrics mismatch: dbh_distance_computations_total = %d but the run \
           reported %d distance computations\n"
          counted reported;
        1
      end

(* ------------------------------------------------------------------ tune *)

let run_tune dataset seed db_size target =
  let (Bundle { space; db; queries = _ }) =
    make_bundle dataset ~seed ~db_size ~num_queries:1
  in
  let rng = Rng.create (seed + 2) in
  let config = builder_config ~pivots:100 ~sample_queries:(min 200 (Array.length db / 2)) in
  let prepared = Dbh.Builder.prepare ~rng ~space ~config db in
  let choices =
    Dbh.Params.landscape prepared.Dbh.Builder.analysis ~target_accuracy:target ()
  in
  Printf.printf "(k,l) landscape for %s at target %.2f (n=%d)\n" dataset target
    (Array.length db);
  Printf.printf "%4s %6s %10s %10s %10s %10s\n" "k" "l" "accuracy" "lookup" "hash" "cost";
  Array.iter
    (fun (c : Dbh.Params.choice) ->
      Printf.printf "%4d %6d %10.4f %10.1f %10.1f %10.1f\n" c.Dbh.Params.k c.Dbh.Params.l
        c.Dbh.Params.predicted_accuracy c.Dbh.Params.predicted_lookup
        c.Dbh.Params.predicted_hash c.Dbh.Params.predicted_cost)
    choices;
  (match Dbh.Params.optimize prepared.Dbh.Builder.analysis ~target_accuracy:target () with
  | Some c -> Printf.printf "chosen: %s\n" (Format.asprintf "%a" Dbh.Params.pp_choice c)
  | None -> print_endline "no feasible (k,l) at this target");
  0

(* ---------------------------------------------------------------- health *)

let run_health dataset seed db_size num_queries target =
  let (Bundle { space; db; queries }) = make_bundle dataset ~seed ~db_size ~num_queries in
  let rng = Rng.create (seed + 2) in
  let config = builder_config ~pivots:100 ~sample_queries:(min 200 (Array.length db / 2)) in
  let prepared = Dbh.Builder.prepare ~rng ~space ~config db in
  (* Family balance. *)
  let mean, mn, mx =
    Dbh.Diagnostics.family_balance_profile ~rng prepared.Dbh.Builder.family
      (Dbh_util.Rng.subsample rng 200 db)
  in
  Printf.printf "family: %d functions over %d pivots; balance mean %.3f [%.3f, %.3f]\n"
    (Dbh.Hash_family.size prepared.Dbh.Builder.family)
    (Dbh.Hash_family.num_pivots prepared.Dbh.Builder.family)
    mean mn mx;
  (* Per-level structure at the chosen target. *)
  let h = Dbh.Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:target ~config () in
  Array.iteri
    (fun i ((info : Dbh.Hierarchical.level_info), stats) ->
      Printf.printf "level %d (radius<=%.4f): %s -> %s\n" i info.Dbh.Hierarchical.d_threshold
        (Format.asprintf "%a" Dbh.Diagnostics.pp_table_stats stats)
        (if Dbh.Diagnostics.healthy stats then "healthy" else "DEGENERATE"))
    (Dbh.Diagnostics.hierarchical_stats h);
  (* Calibration against held-out queries. *)
  let truth = Ground_truth.compute ~space ~db ~queries () in
  let points =
    Dbh_eval.Calibration.single_level ~rng ~prepared ~db ~queries ~truth
      ~targets:[| 0.8; 0.9; target |] ~config ()
  in
  print_string (Format.asprintf "%a" Dbh_eval.Calibration.pp_points points);
  if points <> [] then
    Printf.printf "accuracy MAE %.4f, cost MRE %.3f\n"
      (Dbh_eval.Calibration.accuracy_mae points)
      (Dbh_eval.Calibration.cost_mre points);
  0

(* ---------------------------------------------------------------- stress *)

module Guard = Dbh_robust.Guard
module Faulty_space = Dbh_robust.Faulty_space
module Breaker = Dbh_robust.Breaker

(* Three phases over the same query set: healthy, faulted, restored.  The
   breaker should serve phase 1 from the index, trip to the linear-scan
   fallback during phase 2, and recover during phase 3. *)
let run_stress dataset seed db_size num_queries target nan exn_p negative perturb policy
    budget domains metrics selector =
  with_domains domains @@ fun pool ->
  let mset = if metrics then Some (Dbh_obs.Metrics.create ()) else None in
  let with_mset f = match mset with None -> f () | Some m -> Dbh_obs.Metrics.with_installed m f in
  with_mset @@ fun () ->
  try
  let (Bundle { space = base; db; queries }) = make_bundle dataset ~seed ~db_size ~num_queries in
  (* Validate the fault mix before spending time building the index. *)
  let fault_config = Faulty_space.faults ~nan ~exn_:exn_p ~negative ~perturb () in
  let faulty_space, faults = Faulty_space.wrap ~rng:(Rng.create (seed + 3)) base in
  Faulty_space.set_config faults fault_config;
  Faulty_space.disable faults;
  let guarded, guard = Guard.wrap ~policy faulty_space in
  let config =
    {
      (builder_config ~pivots:50 ~sample_queries:(min 100 (Array.length db / 2))) with
      selector;
    }
  in
  let online =
    Dbh.Online.create ?pool ~rng:(Rng.create (seed + 2)) ~space:guarded ~config
      ~target_accuracy:target db
  in
  let breaker = Breaker.create ~guard online in
  let truth = Ground_truth.compute ?pool ~space:base ~db ~queries () in
  Printf.printf "dataset=%s  db=%d  queries/phase=%d  space=%s  budget=%s  selector=%s\n%!"
    dataset (Array.length db) (Array.length queries) guarded.Space.name
    (if budget > 0 then string_of_int budget else "none")
    (Dbh.Selector.tag selector);
  let run_phase label =
    let nns = Array.make (Array.length queries) None in
    let linear = ref 0 and truncated = ref 0 and cost = ref 0 in
    let opts =
      if budget > 0 then Dbh.Query_opts.budgeted budget else Dbh.Query_opts.default
    in
    Array.iteri
      (fun i q ->
        let out = Breaker.search ~opts breaker q in
        nns.(i) <- out.Breaker.result.Dbh.Online.nn;
        (match out.Breaker.served_by with `Linear_scan -> incr linear | `Index -> ());
        if out.Breaker.result.Dbh.Online.truncated then incr truncated;
        cost := !cost + Dbh.Index.total_cost out.Breaker.result.Dbh.Online.stats)
      queries;
    Printf.printf
      "%-20s accuracy=%.3f  cost/query=%.1f  index=%d linear=%d truncated=%d  state=%s trips=%d recoveries=%d\n%!"
      label
      (Ground_truth.accuracy truth nns)
      (float_of_int !cost /. float_of_int (Array.length queries))
      (Array.length queries - !linear)
      !linear !truncated
      (Format.asprintf "%a" Breaker.pp_state (Breaker.state breaker))
      (Breaker.trips breaker) (Breaker.recoveries breaker)
  in
  run_phase "phase 1 (healthy)";
  Faulty_space.set_config faults fault_config;
  run_phase "phase 2 (faulted)";
  Faulty_space.disable faults;
  run_phase "phase 3 (restored)";
  Printf.printf "guard : %s\n" (Format.asprintf "%a" Guard.pp guard);
  Printf.printf "faults: calls=%d injected=%d (nan=%d exn=%d negative=%d perturbed=%d)\n"
    (Faulty_space.calls faults) (Faulty_space.injected faults) (Faulty_space.injected_nan faults)
    (Faulty_space.injected_exn faults)
    (Faulty_space.injected_negative faults)
    (Faulty_space.perturbed faults);
  Printf.printf "index : rebuilds=%d  fallback queries total=%d\n" (Dbh.Online.rebuilds online)
    (Breaker.fallback_queries breaker);
  (match mset with
  | None -> ()
  | Some m ->
      print_newline ();
      print_string (Dbh_obs.Registry.exposition m.Dbh_obs.Metrics.registry));
  0
  with Invalid_argument msg ->
    Printf.eprintf "dbh-cli: %s\n" msg;
    1

(* ----------------------------------------------------------------- trace *)

(* Build a hierarchical index, run one query with a trace recorder
   attached, and print the full event timeline: pivot-distance cache
   activity, per-table bucket probes, candidate comparisons, level
   transitions and the end-of-query cost summary. *)
let run_trace dataset seed db_size target pivots query_index budget =
  let (Bundle { space; db; queries }) =
    make_bundle dataset ~seed ~db_size ~num_queries:(max 1 (query_index + 1))
  in
  if query_index < 0 || query_index >= Array.length queries then begin
    Printf.eprintf "dbh-cli: --query must be in [0, %d)\n" (Array.length queries);
    1
  end
  else begin
    let rng = Rng.create (seed + 2) in
    let config = builder_config ~pivots ~sample_queries:(min 200 (Array.length db / 2)) in
    let prepared = Dbh.Builder.prepare ~rng ~space ~config db in
    let index =
      Dbh.Builder.hierarchical ~rng ~prepared ~db ~target_accuracy:target ~config ()
    in
    let trace = Dbh_obs.Trace.create () in
    let opts =
      Dbh.Query_opts.make ?budget:(if budget > 0 then Some budget else None) ~trace ()
    in
    let q = queries.(query_index) in
    let r = Dbh.Hierarchical.search ~opts index q in
    Printf.printf "dataset=%s  db=%d  space=%s  target=%.2f  query #%d\n" dataset
      (Array.length db) space.Space.name target query_index;
    (match r.Dbh.Index.nn with
    | Some (id, d) -> Printf.printf "answer : id=%d distance=%g\n" id d
    | None -> print_endline "answer : none (all probed buckets empty)");
    Printf.printf
      "cost   : %d distances (%d hash + %d lookup), %d bucket probes, %d/%d levels%s\n\n"
      (Dbh.Index.total_cost r.Dbh.Index.stats)
      r.Dbh.Index.stats.Dbh.Index.hash_cost r.Dbh.Index.stats.Dbh.Index.lookup_cost
      r.Dbh.Index.stats.Dbh.Index.probes r.Dbh.Index.levels_probed
      (Array.length (Dbh.Hierarchical.levels index))
      (if r.Dbh.Index.truncated then "  [budget exhausted]" else "");
    print_string (Format.asprintf "%a" Dbh_obs.Trace.pp trace);
    0
  end

(* ---------------------------------------------------------------- render *)

let run_render seed =
  let rng = Rng.create seed in
  for d = 0 to 9 do
    Printf.printf "--- digit %d ---\n%s\n" d
      (Dbh_datasets.Raster.to_ascii (Dbh_datasets.Image_digits.render ~rng d))
  done;
  0

(* ----------------------------------------------------------- durability *)

(* The durable subcommands fix the workload to float vectors under L2 so
   the object codec is known; a directory written by [persist] can be
   checkpointed and verified by the other two. *)

let encode_vec (v : float array) =
  let buf = Buffer.create 64 in
  Binio.write_float_array buf v;
  Buffer.contents buf

let decode_vec s =
  let r = Binio.reader s in
  let v = Binio.read_float_array r in
  if not (Binio.at_end r) then raise (Binio.Corrupt "trailing bytes in vector");
  v

let describe_recovery (r : Durable.recovery) =
  (match r.Durable.source with
  | `Fresh -> Printf.printf "state    : fresh build\n"
  | `Snapshot g -> Printf.printf "state    : recovered from snapshot generation %d\n" g
  | `Rebuilt -> Printf.printf "state    : all snapshots corrupt — rebuilt from raw data\n");
  Printf.printf "generation: %d   replayed ops: %d%s\n" r.Durable.generation
    r.Durable.replayed_ops
    (if r.Durable.torn_tail then "   (torn log tail truncated)" else "");
  List.iter
    (fun (g, why) -> Printf.printf "skipped  : snapshot generation %d: %s\n" g why)
    r.Durable.skipped

let open_durable ?pool ?data ~seed dir =
  Durable.open_or_create ?pool ~rng:(Rng.create seed) ~space:Dbh_metrics.Minkowski.l2_space
    ~config:(builder_config ~pivots:50 ~sample_queries:100)
    ~target_accuracy:0.9 ~encode:encode_vec ~decode:decode_vec ~dir ?data ()

let run_persist dir seed db_size num_ops num_queries domains =
  with_domains domains (fun pool ->
      let rng = Rng.create (seed + 1) in
      let data, _ =
        Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:25 ~dim:16 db_size
      in
      let t, recovery = open_durable ?pool ~data ~seed dir in
      describe_recovery recovery;
      Printf.printf "size     : %d alive objects\n%!" (Durable.size t);
      (* Journal a burst of updates: inserts with an occasional delete. *)
      let extra, _ =
        Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:25 ~dim:16 num_ops
      in
      Array.iteri
        (fun i v ->
          let h = Durable.insert t v in
          if i mod 5 = 4 then Durable.delete t (h - 1))
        extra;
      Printf.printf "journaled: %d ops (generation %d)\n" (Durable.wal_ops t)
        (Durable.generation t);
      let qrng = Rng.create (seed + 2) in
      let queries, _ =
        Dbh_datasets.Vectors.gaussian_mixture ~rng:qrng ~num_clusters:25 ~dim:16 num_queries
      in
      let results = Durable.search_batch t queries in
      let cost =
        Dbh_util.Stats.mean
          (Array.map
             (fun (r : _ Dbh.Online.result) ->
               float_of_int (Dbh.Index.total_cost r.Dbh.Online.stats))
             results)
      in
      Printf.printf "queries  : %d, %.1f distances each\n" num_queries cost;
      (* Close without checkpointing: the journal keeps the updates, and
         `dbh-cli checkpoint` (or the next open) replays them. *)
      let pending = Durable.wal_ops t in
      Durable.close t;
      Printf.printf "closed without checkpoint — %d ops await replay; run `dbh-cli \
                     checkpoint %s` to fold them into a snapshot\n"
        pending dir;
      0)

let run_checkpoint dir seed =
  match open_durable ~seed dir with
  | t, recovery ->
      describe_recovery recovery;
      Durable.checkpoint t;
      Printf.printf "checkpointed to generation %d (%d alive objects)\n"
        (Durable.generation t) (Durable.size t);
      Durable.close t;
      0
  | exception Binio.Corrupt msg ->
      Printf.eprintf "dbh-cli: corrupt state in %s: %s\n" dir msg;
      1
  | exception Invalid_argument msg ->
      Printf.eprintf "dbh-cli: %s\n" msg;
      1

(* WAL shipping: mirror a leader directory into a follower directory and
   tail the copy.  The leader's files are only ever read; the follower
   directory receives shipped bytes and (under --verify) nothing else. *)
let run_replicate leader_dir follower_dir seed follow verify num_queries =
  let module Replica = Dbh_replica.Replica in
  if follow && verify then begin
    (* --follow never returns, so a trailing verify step would be dead
       code (and its exit-1-on-divergence contract unreachable). *)
    Printf.eprintf
      "dbh-cli: --follow and --verify cannot be combined: --follow tails forever, so \
       the verify step would never run; stop following first, then run with --verify\n";
    exit 2
  end;
  let same_dir = leader_dir = follower_dir in
  let ship () =
    if same_dir then 0 else Replica.ship ~src:leader_dir ~dst:follower_dir ()
  in
  match
    let shipped = ship () in
    if not same_dir then Printf.printf "shipped  : %d bytes\n%!" shipped;
    let r =
      Replica.open_
        ~config:(builder_config ~pivots:50 ~sample_queries:100)
        ~space:Dbh_metrics.Minkowski.l2_space ~target_accuracy:0.9 ~decode:decode_vec
        ~dir:follower_dir ()
    in
    let report () =
      let s = Replica.status r in
      Printf.printf
        "follower : generation %d, %d objects, %d records applied, lag %d records\n%!"
        s.Replica.generation (Replica.size r) s.Replica.applied s.Replica.lag_records
    in
    ignore (Replica.catch_up r);
    report ();
    if follow then begin
      (* Tail until SIGINT/SIGTERM, then shut down cleanly: close the
         WAL cursor, flush the lag gauges to zero, exit 0 — so process
         managers see an orderly stop, not a kill. *)
      let stop = Atomic.make false in
      let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
      let previous =
        List.map
          (fun s -> (s, Sys.signal s handler))
          [ Sys.sigint; Sys.sigterm ]
      in
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun (s, b) -> Sys.set_signal s b) previous)
        (fun () ->
          Replica.follow
            ?ship_from:(if same_dir then None else Some leader_dir)
            ~interval:1.0
            ~should_stop:(fun () -> Atomic.get stop)
            ~on_round:(fun ~shipped ~applied ->
              if shipped > 0 || applied > 0 then report ())
            r);
      Printf.printf "stopped  : follow loop closed cleanly\n%!"
    end;
    if not verify then 0
    else begin
      (* Twin check: recover the leader's directory the way the leader
         itself would, and demand bit-identity — same rng state, same
         size, same answer to every probe query. *)
      let t, _recovery = open_durable ~seed leader_dir in
      let qrng = Rng.create (seed + 2) in
      let queries, _ =
        Dbh_datasets.Vectors.gaussian_mixture ~rng:qrng ~num_clusters:25 ~dim:16
          num_queries
      in
      let leader_results = Durable.search_batch t queries in
      let follower_results = Replica.search_batch r queries in
      let mismatches = ref [] in
      if Durable.size t <> Replica.size r then
        mismatches :=
          Printf.sprintf "size: leader %d, follower %d" (Durable.size t)
            (Replica.size r)
          :: !mismatches;
      if Dbh.Online.rng_state (Durable.online t) <> Replica.rng_state r then
        mismatches := "rng state differs" :: !mismatches;
      Array.iteri
        (fun i (lr : _ Dbh.Online.result) ->
          let fr = follower_results.(i) in
          if lr.Dbh.Online.nn <> fr.Dbh.Online.nn then
            mismatches := Printf.sprintf "query %d: nearest neighbor differs" i
                          :: !mismatches)
        leader_results;
      Durable.close t;
      match List.rev !mismatches with
      | [] ->
          Printf.printf "verify   : follower is a bit-identical twin (%d queries)\n"
            num_queries;
          0
      | ms ->
          List.iter (fun m -> Printf.eprintf "dbh-cli: divergence: %s\n" m) ms;
          1
    end
  with
  | code -> code
  | exception Binio.Corrupt msg ->
      Printf.eprintf "dbh-cli: corrupt state: %s\n" msg;
      1
  | exception Failure msg ->
      Printf.eprintf "dbh-cli: %s\n" msg;
      1

(* ------------------------------------------------------------- loadgen *)

(* Drive a running dbh-serve with the shared generator: synthetic vector
   payloads matching the durable fixture codec, a weighted tenant mix,
   open or closed loop.  Prints a summary and the report as one JSON
   line (also written to --out for the bench/CI artifact). *)
let run_loadgen host port connections duration rate tenants deadline_ms budget
    probes radius dim payload_count seed out =
  let rate = if rate <= 0. then None else Some rate in
  let tenant_mix =
    match String.trim tenants with
    | "" -> []
    | spec ->
        List.map
          (fun part ->
            match String.index_opt part '=' with
            | Some i ->
                ( String.sub part 0 i,
                  float_of_string (String.sub part (i + 1) (String.length part - i - 1))
                )
            | None -> (part, 1.))
          (String.split_on_char ',' spec)
  in
  let rng = Rng.create (seed + 2) in
  let qs, _ =
    Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:25 ~dim payload_count
  in
  let payloads = Array.map encode_vec qs in
  match
    Dbh_serve.Loadgen.run
      {
        Dbh_serve.Loadgen.host;
        port;
        connections;
        duration;
        rate;
        tenants = tenant_mix;
        deadline_ms;
        budget;
        probes;
        radius;
        payloads;
        seed;
      }
  with
  | exception Invalid_argument msg ->
      Printf.eprintf "dbh-cli: %s\n" msg;
      2
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "dbh-cli: cannot reach %s:%d: %s\n" host port
        (Unix.error_message e);
      1
  | r ->
      let open Dbh_serve.Loadgen in
      Printf.printf
        "sent     : %d in %.2fs (%.1f qps, %d connections, %s loop)\n"
        r.sent r.duration r.qps connections
        (match rate with Some _ -> "open" | None -> "closed");
      Printf.printf "served   : %d (%.1f qps goodput)\n" r.ok r.goodput_qps;
      Printf.printf "shed     : %d overloaded, %d timed out, %d errors\n" r.shed
        r.timed_out r.errors;
      if r.ok > 0 then
        Printf.printf "latency  : p50 %.2fms  p90 %.2fms  p99 %.2fms  p99.9 %.2fms  max %.2fms\n"
          r.p50_ms r.p90_ms r.p99_ms r.p999_ms r.max_ms;
      List.iter
        (fun (tenant, sent, ok) ->
          Printf.printf "tenant   : %-12s sent %6d  served %6d\n"
            (if tenant = "" then "(anonymous)" else tenant)
            sent ok)
        r.per_tenant;
      let json = report_json r in
      (match out with
      | Some path ->
          let oc = open_out path in
          output_string oc json;
          output_string oc "\n";
          close_out oc
      | None -> ());
      Printf.printf "%s\n" json;
      if r.ok > 0 then 0 else 1

let verify_file path =
  let read_all () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match read_all () with
  | exception Sys_error msg ->
      Printf.printf "%-40s UNREADABLE  %s\n" path msg;
      false
  | data when Envelope.looks_like_envelope data -> (
      let structural (header : Envelope.header) payload =
        (* Decode the full structure with an identity codec and a space
           that must never be called: catches corruption past the
           checksums (impossible ids, broken invariants) without
           touching user code. *)
        let space = Space.make ~name:"verify" (fun (_ : string) _ -> 0.) in
        match header.Envelope.kind with
        | "index" ->
            let r = Binio.reader payload in
            ignore (Dbh.Index.read ~decode:Fun.id ~space r);
            if not (Binio.at_end r) then raise (Binio.Corrupt "trailing bytes")
        | "hierarchical" ->
            let r = Binio.reader payload in
            ignore (Dbh.Hierarchical.read ~decode:Fun.id ~space r);
            if not (Binio.at_end r) then raise (Binio.Corrupt "trailing bytes")
        | "online" -> ignore (Durable.verify_snapshot ~path)
        | other -> Printf.printf "%-40s note: unknown kind %S, checksums only\n" path other
      in
      match Envelope.decode data with
      | header, payload -> (
          match structural header payload with
          | () ->
              Printf.printf "%-40s OK  %s snapshot v%d, %d payload bytes\n" path
                header.Envelope.kind header.Envelope.version header.Envelope.payload_length;
              true
          | exception Binio.Corrupt msg ->
              Printf.printf "%-40s CORRUPT  %s\n" path msg;
              false)
      | exception Binio.Corrupt msg ->
          Printf.printf "%-40s CORRUPT  %s\n" path msg;
          false)
  | _ -> (
      let scan = Wal.scan ~path in
      if scan.Wal.torn then begin
        Printf.printf "%-40s TORN  %d valid records (%d bytes), then: %s\n" path
          (Array.length scan.Wal.records)
          scan.Wal.valid_bytes
          (Option.value ~default:"?" scan.Wal.torn_reason);
        false
      end
      else begin
        Printf.printf "%-40s OK  write-ahead log, %d records\n" path
          (Array.length scan.Wal.records);
        true
      end)

let run_verify path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "dbh-cli: no such file or directory: %s\n" path;
    1
  end
  else if Sys.is_directory path then begin
    let files =
      List.map (Layout.snapshot_path ~dir:path) (Layout.snapshot_generations ~dir:path)
      @ List.map (Layout.wal_path ~dir:path) (Layout.wal_generations ~dir:path)
    in
    if files = [] then begin
      Printf.eprintf "dbh-cli: %s holds no snapshot or log files\n" path;
      1
    end
    else begin
      let ok = List.fold_left (fun acc f -> verify_file f && acc) true files in
      Printf.printf "%d file(s) checked: %s\n" (List.length files)
        (if ok then "all clean" else "CORRUPTION FOUND");
      if ok then 0 else 1
    end
  end
  else if verify_file path then 0
  else 1

(* --------------------------------------------------------- index-stats *)

module Diagnostics = Dbh.Diagnostics

(* Bucket-size histogram, compacted: small sizes verbatim, the tail as
   its extremes, so a million-bucket directory still prints in a few
   lines. *)
let print_histogram hist =
  let total_buckets = Array.fold_left (fun acc (_, c) -> acc + c) 0 hist in
  let total_entries = Array.fold_left (fun acc (s, c) -> acc + (s * c)) 0 hist in
  Printf.printf "  bucket histogram (%d buckets, %d entries):\n" total_buckets
    total_entries;
  let shown = min 8 (Array.length hist) in
  Array.iteri
    (fun i (size, count) ->
      if i < shown then Printf.printf "    size %6d  x %d\n" size count)
    hist;
  if Array.length hist > shown then begin
    let largest, _ = hist.(Array.length hist - 1) in
    Printf.printf "    ... %d more distinct sizes, largest bucket %d\n"
      (Array.length hist - shown) largest
  end

let print_level_stats label index =
  let s = Diagnostics.index_stats index in
  Printf.printf "%s\n" label;
  Format.printf "  %a@." Diagnostics.pp_table_stats s;
  Printf.printf "  delta entries: %d, directory fill: %.4f%%, approx tables: %d KiB\n"
    s.Diagnostics.delta_entries
    (100. *. s.Diagnostics.directory_fill)
    (s.Diagnostics.approx_table_bytes / 1024);
  Array.iter
    (fun p -> Format.printf "  %a@." Diagnostics.pp_table_profile p)
    (Diagnostics.table_profiles index);
  print_histogram (Diagnostics.bucket_histogram index)

let print_family_line family =
  Printf.printf "family: %d functions, %d pivots, selector %s\n"
    (Dbh.Hash_family.size family)
    (Dbh.Hash_family.num_pivots family)
    (Dbh.Hash_family.selector_tag family)

let stats_of_cascade h =
  print_family_line (Dbh.Hierarchical.family h);
  let indexes = Dbh.Hierarchical.indexes h in
  let levels = Dbh.Hierarchical.levels h in
  Array.iteri
    (fun i index ->
      let info = levels.(i) in
      print_level_stats
        (Printf.sprintf "level %d (k=%d, l=%d, D=%g):" i info.Dbh.Hierarchical.k
           info.Dbh.Hierarchical.l info.Dbh.Hierarchical.d_threshold)
        index)
    indexes

let stats_file path =
  let read_all () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let data = read_all () in
  if not (Envelope.looks_like_envelope data) then begin
    Printf.eprintf "dbh-cli: %s is not a snapshot file (index-stats reads snapshots, \
                    not write-ahead logs)\n" path;
    1
  end
  else begin
    let header, payload = Envelope.decode data in
    Printf.printf "%s: %s snapshot v%d, %d payload bytes\n" path header.Envelope.kind
      header.Envelope.version header.Envelope.payload_length;
    (* Structural decode with an identity codec and a space whose
       distance must never run: statistics need the table layout, not
       the user's objects. *)
    let space = Space.make ~name:"index-stats" (fun (_ : string) _ -> 0.) in
    match header.Envelope.kind with
    | "index" ->
        let index = Dbh.Index.read ~decode:Fun.id ~space (Binio.reader payload) in
        print_family_line (Dbh.Index.family index);
        print_level_stats "single-level index:" index;
        0
    | "hierarchical" ->
        let h = Dbh.Hierarchical.read ~decode:Fun.id ~space (Binio.reader payload) in
        stats_of_cascade h;
        0
    | "online" ->
        let info = Durable.inspect_snapshot ~path in
        Printf.printf
          "online index: format v%d, %d handles issued, %d alive, %d tombstones\n"
          info.Durable.format_version info.Durable.registry_len
          (info.Durable.registry_len - info.Durable.dead_handles)
          info.Durable.dead_handles;
        stats_of_cascade info.Durable.cascade;
        0
    | other ->
        Printf.eprintf "dbh-cli: unknown snapshot kind %S\n" other;
        1
  end

let run_index_stats path =
  match
    if not (Sys.file_exists path) then begin
      Printf.eprintf "dbh-cli: no such file or directory: %s\n" path;
      1
    end
    else if Sys.is_directory path then begin
      match Layout.snapshot_generations ~dir:path with
      | [] ->
          Printf.eprintf "dbh-cli: %s holds no snapshot files\n" path;
          1
      | gens ->
          let newest = List.fold_left max (List.hd gens) gens in
          let wal_debt =
            List.length (List.filter (fun g -> g >= newest) (Layout.wal_generations ~dir:path))
          in
          Printf.printf "directory %s: newest snapshot generation %d, %d live log(s)\n"
            path newest wal_debt;
          stats_file (Layout.snapshot_path ~dir:path newest)
    end
    else stats_file path
  with
  | code -> code
  | exception Binio.Corrupt msg ->
      Printf.eprintf "dbh-cli: corrupt snapshot: %s\n" msg;
      1
  | exception Sys_error msg ->
      Printf.eprintf "dbh-cli: %s\n" msg;
      1

(* ------------------------------------------------------------- cmdliner *)

open Cmdliner

let dataset_arg =
  let doc = "Dataset: pen | mnist | hands | vectors | strings." in
  Arg.(value & opt string "pen" & info [ "d"; "dataset" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "Random seed (all output is deterministic given the seed)." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let db_size_arg default =
  let doc = "Database size." in
  Arg.(value & opt int default & info [ "n"; "db-size" ] ~docv:"N" ~doc)

let queries_arg default =
  let doc = "Number of test queries." in
  Arg.(value & opt int default & info [ "q"; "queries" ] ~docv:"Q" ~doc)

let target_arg =
  let doc = "Target retrieval accuracy in [0,1)." in
  Arg.(value & opt float 0.9 & info [ "t"; "target" ] ~docv:"ACC" ~doc)

let pivots_arg =
  let doc = "Number of pivot objects |X_small|." in
  Arg.(value & opt int 100 & info [ "p"; "pivots" ] ~docv:"P" ~doc)

let csv_arg =
  let doc = "Write the measured series to this CSV file." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PATH" ~doc)

let domains_arg =
  let doc =
    "Domains for parallel build/estimation/queries (1 = sequential; results are \
     bit-identical at any width)."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let demo_cmd =
  let doc = "build a DBH index on a synthetic dataset and query it" in
  Cmd.v
    (Cmd.info "demo" ~doc)
    Term.(
      const run_demo $ dataset_arg $ seed_arg $ db_size_arg 2000 $ queries_arg 200
      $ target_arg $ pivots_arg)

let metrics_arg =
  let doc =
    "Install an observability metric set for the run and print its Prometheus text \
     exposition afterwards."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let selector_arg =
  let doc =
    "Pivot-pair/threshold selection strategy for the hash family: $(b,uniform) (the \
     paper's random draws), $(b,median) (uniform pairs, one-sided median thresholds), \
     $(b,density) (density-sensitive interval scoring) or $(b,nsh) (neighbor-sensitive \
     pair scoring)."
  in
  let selectors =
    List.filter_map
      (fun tag -> Option.map (fun s -> (tag, s)) (Dbh.Selector.of_tag tag))
      Dbh.Selector.known_tags
  in
  Arg.(value & opt (enum selectors) Dbh.Selector.default
       & info [ "selector" ] ~docv:"SELECTOR" ~doc)

let experiment_cmd =
  let doc = "run a full accuracy-vs-cost comparison (paper Figure 5 panel)" in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(
      const run_experiment $ dataset_arg $ seed_arg $ db_size_arg 2000 $ queries_arg 200
      $ csv_arg $ domains_arg $ metrics_arg $ selector_arg)

let tune_cmd =
  let doc = "print the offline (k,l) parameter landscape" in
  Cmd.v
    (Cmd.info "tune" ~doc)
    Term.(const run_tune $ dataset_arg $ seed_arg $ db_size_arg 2000 $ target_arg)

let render_cmd =
  let doc = "print ASCII renderings of the ten synthetic digits" in
  Cmd.v (Cmd.info "render" ~doc) Term.(const run_render $ seed_arg)

let nan_arg =
  let doc = "Probability that a distance evaluation returns NaN." in
  Arg.(value & opt float 0.05 & info [ "nan" ] ~docv:"P" ~doc)

let exn_arg =
  let doc = "Probability that a distance evaluation raises an exception." in
  Arg.(value & opt float 0.01 & info [ "exn" ] ~docv:"P" ~doc)

let negative_arg =
  let doc = "Probability that a distance evaluation returns a negative value." in
  Arg.(value & opt float 0. & info [ "negative" ] ~docv:"P" ~doc)

let perturb_arg =
  let doc = "Probability that a distance value is multiplicatively perturbed." in
  Arg.(value & opt float 0. & info [ "perturb" ] ~docv:"P" ~doc)

let policy_arg =
  let doc = "Guard policy for anomalous distances: $(b,raise), $(b,skip) or $(b,clamp)." in
  let policies = [ ("raise", Guard.Raise); ("skip", Guard.Skip); ("clamp", Guard.Clamp) ] in
  Arg.(value & opt (enum policies) Guard.Skip & info [ "policy" ] ~docv:"POLICY" ~doc)

let budget_arg =
  let doc = "Per-query distance budget (0 = unlimited)." in
  Arg.(value & opt int 0 & info [ "b"; "budget" ] ~docv:"N" ~doc)

let stress_cmd =
  let doc = "run a three-phase fault-injection workload through the hardened pipeline" in
  Cmd.v
    (Cmd.info "stress" ~doc)
    Term.(
      const run_stress $ dataset_arg $ seed_arg $ db_size_arg 1000 $ queries_arg 200
      $ target_arg $ nan_arg $ exn_arg $ negative_arg $ perturb_arg $ policy_arg
      $ budget_arg $ domains_arg $ metrics_arg $ selector_arg)

let query_index_arg =
  let doc = "Index of the (generated) query to trace." in
  Arg.(value & opt int 0 & info [ "query" ] ~docv:"I" ~doc)

let trace_cmd =
  let doc = "print one query's full event timeline through a hierarchical index" in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const run_trace $ dataset_arg $ seed_arg $ db_size_arg 2000 $ target_arg
      $ pivots_arg $ query_index_arg $ budget_arg)

let health_cmd =
  let doc = "report hash-family balance, index structure and model calibration" in
  Cmd.v
    (Cmd.info "health" ~doc)
    Term.(
      const run_health $ dataset_arg $ seed_arg $ db_size_arg 2000 $ queries_arg 150
      $ target_arg)

let dir_pos_arg =
  let doc = "Durable index directory (snapshots + write-ahead logs)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let path_pos_arg =
  let doc = "Snapshot file, log file, or a durable index directory." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc)

let ops_arg =
  let doc = "Number of updates to journal through the write-ahead log." in
  Arg.(value & opt int 300 & info [ "ops" ] ~docv:"N" ~doc)

let leader_pos_arg =
  let doc = "Leader durable index directory (read-only source)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LEADER" ~doc)

let follower_pos_arg =
  let doc = "Follower directory the leader's files are shipped into and tailed from." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"FOLLOWER" ~doc)

let follow_arg =
  let doc =
    "Keep shipping and tailing forever instead of exiting once caught up.  Cannot be \
     combined with $(b,--verify), which only runs after tailing stops."
  in
  Arg.(value & flag & info [ "follow" ] ~doc)

let replicate_verify_arg =
  let doc =
    "After catching up, recover the leader directory and check the follower is a \
     bit-identical twin (rng state, size, probe query answers); exit 1 on divergence.  \
     Cannot be combined with $(b,--follow)."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let replicate_cmd =
  let doc =
    "ship a leader's snapshots and write-ahead logs into a follower directory and tail \
     them into a read-only replica"
  in
  Cmd.v
    (Cmd.info "replicate" ~doc)
    Term.(
      const run_replicate $ leader_pos_arg $ follower_pos_arg $ seed_arg $ follow_arg
      $ replicate_verify_arg $ queries_arg 50)

let host_arg =
  let doc = "Server host to connect to." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let port_arg =
  let doc = "Server port." in
  Arg.(value & opt int 7471 & info [ "port" ] ~docv:"PORT" ~doc)

let connections_arg =
  let doc = "Concurrent client connections." in
  Arg.(value & opt int 8 & info [ "c"; "connections" ] ~docv:"N" ~doc)

let duration_arg =
  let doc = "Seconds to run." in
  Arg.(value & opt float 5. & info [ "duration" ] ~docv:"SECONDS" ~doc)

let rate_arg =
  let doc =
    "Open-loop target QPS across all connections (0 = closed loop: each \
     connection fires as soon as the previous reply lands)."
  in
  Arg.(value & opt float 0. & info [ "rate" ] ~docv:"QPS" ~doc)

let tenants_arg =
  let doc =
    "Weighted tenant mix, e.g. $(b,gold=3,free=1).  Empty = anonymous requests \
     (the server's shared default bucket)."
  in
  Arg.(value & opt string "" & info [ "tenants" ] ~docv:"MIX" ~doc)

let deadline_ms_arg =
  let doc = "Per-request deadline in milliseconds sent to the server (0 = server default)." in
  Arg.(value & opt int 200 & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let probes_arg =
  let doc = "Probes per table sent with each search (0 = server default)." in
  Arg.(value & opt int 0 & info [ "probes" ] ~docv:"N" ~doc)

let radius_arg =
  let doc = "Hamming radius sent with each search (0 = single-probe)." in
  Arg.(value & opt int 0 & info [ "radius" ] ~docv:"R" ~doc)

let dim_arg =
  let doc = "Dimensionality of generated query vectors (must match the served index)." in
  Arg.(value & opt int 16 & info [ "dim" ] ~docv:"D" ~doc)

let payloads_arg =
  let doc = "Distinct query payloads generated and cycled through." in
  Arg.(value & opt int 128 & info [ "payloads" ] ~docv:"N" ~doc)

let out_arg =
  let doc = "Also write the JSON report to this file." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"PATH" ~doc)

let loadgen_cmd =
  let doc =
    "drive a running dbh-serve: open/closed loop, weighted tenant mix, latency \
     percentiles, JSON report"
  in
  Cmd.v
    (Cmd.info "loadgen" ~doc)
    Term.(
      const run_loadgen $ host_arg $ port_arg $ connections_arg $ duration_arg
      $ rate_arg $ tenants_arg $ deadline_ms_arg $ budget_arg $ probes_arg
      $ radius_arg $ dim_arg $ payloads_arg $ seed_arg $ out_arg)

let persist_cmd =
  let doc = "run a durable index in a directory: journaled updates, crash-safe close" in
  Cmd.v
    (Cmd.info "persist" ~doc)
    Term.(
      const run_persist $ dir_pos_arg $ seed_arg $ db_size_arg 1000 $ ops_arg
      $ queries_arg 100 $ domains_arg)

let checkpoint_cmd =
  let doc = "fold a durable index's journal into a fresh snapshot generation" in
  Cmd.v (Cmd.info "checkpoint" ~doc) Term.(const run_checkpoint $ dir_pos_arg $ seed_arg)

let verify_cmd =
  let doc =
    "verify snapshot and log files (checksums + structure) without opening an index; \
     exits non-zero on any corruption"
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run_verify $ path_pos_arg)

let index_stats_cmd =
  let doc =
    "print storage-layout statistics of a snapshot file or durable directory: bucket \
     histogram, directory fill, delta and tombstone counts, approximate table bytes"
  in
  Cmd.v (Cmd.info "index-stats" ~doc) Term.(const run_index_stats $ path_pos_arg)

let main_cmd =
  let doc = "distance-based hashing for nearest neighbor retrieval (ICDE 2008)" in
  Cmd.group (Cmd.info "dbh-cli" ~version:"1.0.0" ~doc)
    [
      demo_cmd; experiment_cmd; tune_cmd; render_cmd; health_cmd; stress_cmd; trace_cmd;
      persist_cmd; checkpoint_cmd; verify_cmd; index_stats_cmd; replicate_cmd;
      loadgen_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
