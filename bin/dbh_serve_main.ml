(* dbh-serve: the network tier over a sharded durable DBH index.

   Opens (or bootstraps) N durable shards under DIR, binds the framed
   TCP endpoint plus a Prometheus /metrics listener, and serves until
   SIGTERM/SIGINT — then drains gracefully: stop accepting, shed new
   work with OVERLOADED, finish the admitted queue, checkpoint every
   shard, exit 0. *)

module Rng = Dbh_util.Rng
module Binio = Dbh_util.Binio
module Serve = Dbh_serve

let encode_vec (v : float array) =
  let buf = Buffer.create 64 in
  Binio.write_float_array buf v;
  Buffer.contents buf

let decode_vec s =
  let r = Binio.reader s in
  let v = Binio.read_float_array r in
  if not (Binio.at_end r) then raise (Binio.Corrupt "trailing bytes in vector");
  v

let builder_config ~pivots ~sample_queries =
  { Dbh.Builder.default_config with num_pivots = pivots; num_sample_queries = sample_queries }

let parse_tenant spec =
  (* "gold=200:100:80000" → class gold, rate 200/s, burst 100, budget cap *)
  match String.split_on_char '=' spec with
  | [ name; params ] -> (
      match String.split_on_char ':' params with
      | [ rate; burst; max_budget ] ->
          ( name,
            {
              Serve.Admission.rate = float_of_string rate;
              burst = float_of_string burst;
              max_budget = int_of_string max_budget;
            } )
      | _ -> failwith ("bad tenant spec (want name=rate:burst:max_budget): " ^ spec))
  | _ -> failwith ("bad tenant spec (want name=rate:burst:max_budget): " ^ spec)

let run dir port metrics_port shards domains seed db_size dim no_fsync
    queue_capacity default_deadline_ms max_deadline_ms rate burst max_budget
    tenants batch_max idle_timeout drain_timeout =
  let tenants =
    try List.map parse_tenant tenants
    with Failure msg ->
      Printf.eprintf "dbh-serve: %s\n" msg;
      exit 2
  in
  let admission =
    {
      Serve.Admission.queue_capacity;
      default_deadline = float_of_int default_deadline_ms /. 1000.;
      max_deadline = float_of_int max_deadline_ms /. 1000.;
      default_class = { Serve.Admission.rate; burst; max_budget };
      classes = tenants;
    }
  in
  let config =
    {
      Serve.Server.default_config with
      port;
      metrics_port = (if metrics_port < 0 then None else Some metrics_port);
      admission;
      batch_max;
      idle_timeout;
      drain_timeout;
    }
  in
  let data =
    if db_size <= 0 then None
    else begin
      let rng = Rng.create (seed + 1) in
      let d, _ =
        Dbh_datasets.Vectors.gaussian_mixture ~rng ~num_clusters:25 ~dim db_size
      in
      Some d
    end
  in
  let run_with pool =
    let index, recoveries =
      Serve.Shards.open_or_create ~fsync:(not no_fsync)
        ~build:(builder_config ~pivots:50 ~sample_queries:100)
        ~seed ~shards ~target_accuracy:0.9 ~space:Dbh_metrics.Minkowski.l2_space
        ~encode:encode_vec ~decode:decode_vec ~dir ?data ()
    in
    Array.iteri
      (fun i (r : Dbh.Online.Durable.recovery) ->
        Printf.printf "shard %02d : %s generation %d, %d ops replayed%s\n" i
          (match r.source with
          | `Fresh -> "fresh build,"
          | `Snapshot g -> Printf.sprintf "recovered from snapshot %d," g
          | `Rebuilt -> "rebuilt from data,")
          r.generation r.replayed_ops
          (if r.torn_tail then " (torn log tail truncated)" else ""))
      recoveries;
    let srv = Serve.Server.start ?pool ~decode:decode_vec config index in
    Printf.printf "listening: %s:%d (%d shards, %d objects, %d domains)\n"
      config.host (Serve.Server.port srv) shards (Serve.Shards.size index)
      domains;
    (match Serve.Server.metrics_port srv with
    | Some p -> Printf.printf "metrics  : http://%s:%d/metrics\n" config.host p
    | None -> ());
    print_string "ready\n";
    flush stdout;
    let stop = Atomic.make false in
    let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
    Sys.set_signal Sys.sigterm handler;
    Sys.set_signal Sys.sigint handler;
    while not (Atomic.get stop) do
      Unix.sleepf 0.1
    done;
    Printf.printf "draining : finishing admitted work, then checkpointing\n%!";
    Serve.Server.stop srv;
    Printf.printf "stopped  : all shards checkpointed and closed\n%!";
    0
  in
  if domains > 1 then
    Dbh_util.Pool.with_pool ~domains (fun pool -> run_with (Some pool))
  else run_with None

open Cmdliner

let dir_arg =
  let doc = "Durable index directory; shards live in DIR/shard-NN." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let port_arg =
  let doc = "TCP port to serve on (0 = ephemeral)." in
  Arg.(value & opt int 7471 & info [ "port" ] ~docv:"PORT" ~doc)

let metrics_port_arg =
  let doc = "Prometheus /metrics port (0 = ephemeral, negative = disabled)." in
  Arg.(value & opt int 7472 & info [ "metrics-port" ] ~docv:"PORT" ~doc)

let shards_arg =
  let doc = "In-process shards (each its own durable directory and breaker)." in
  Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)

let domains_arg =
  let doc = "Domains for fanning searches across shards (1 = sequential)." in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed for fresh builds." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let db_size_arg =
  let doc = "Bootstrap a fresh directory with this many synthetic vectors (ignored when snapshots exist)." in
  Arg.(value & opt int 1000 & info [ "n"; "db-size" ] ~docv:"N" ~doc)

let dim_arg =
  let doc = "Dimensionality of bootstrap vectors." in
  Arg.(value & opt int 16 & info [ "dim" ] ~docv:"D" ~doc)

let no_fsync_arg =
  let doc = "Skip per-operation fsync (faster, loses the power-failure guarantee)." in
  Arg.(value & flag & info [ "no-fsync" ] ~doc)

let queue_capacity_arg =
  let doc = "Admission queue capacity; beyond it requests are shed with OVERLOADED." in
  Arg.(value & opt int 512 & info [ "queue-capacity" ] ~docv:"N" ~doc)

let default_deadline_arg =
  let doc = "Deadline granted to requests that carry none, milliseconds." in
  Arg.(value & opt int 1000 & info [ "default-deadline-ms" ] ~docv:"MS" ~doc)

let max_deadline_arg =
  let doc = "Hard cap on client deadlines, milliseconds." in
  Arg.(value & opt int 30000 & info [ "max-deadline-ms" ] ~docv:"MS" ~doc)

let rate_arg =
  let doc = "Default tenant class: admissions per second (shared by all unconfigured tenants)." in
  Arg.(value & opt float 500. & info [ "rate" ] ~docv:"QPS" ~doc)

let burst_arg =
  let doc = "Default tenant class: token burst." in
  Arg.(value & opt float 250. & info [ "burst" ] ~docv:"N" ~doc)

let max_budget_arg =
  let doc = "Default tenant class: cap on one query's distance budget." in
  Arg.(value & opt int 50000 & info [ "max-budget" ] ~docv:"N" ~doc)

let tenant_arg =
  let doc =
    "Add a tenant class with its own token bucket: $(b,name=rate:burst:max_budget).  \
     Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "tenant" ] ~docv:"SPEC" ~doc)

let batch_max_arg =
  let doc = "Micro-batch size cap for the execution worker." in
  Arg.(value & opt int 32 & info [ "batch-max" ] ~docv:"N" ~doc)

let idle_timeout_arg =
  let doc = "Seconds before an idle or slow-loris connection is killed." in
  Arg.(value & opt float 10. & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)

let drain_timeout_arg =
  let doc = "Seconds graceful shutdown waits for the queue before shedding it." in
  Arg.(value & opt float 5. & info [ "drain-timeout" ] ~docv:"SECONDS" ~doc)

let cmd =
  let doc =
    "overload-safe network tier for a sharded durable DBH index: framed TCP \
     protocol, per-tenant admission control, deadline-derived budgets, \
     Prometheus metrics, graceful drain on SIGTERM"
  in
  Cmd.v
    (Cmd.info "dbh-serve" ~version:"1.0.0" ~doc)
    Term.(
      const run $ dir_arg $ port_arg $ metrics_port_arg $ shards_arg
      $ domains_arg $ seed_arg $ db_size_arg $ dim_arg $ no_fsync_arg
      $ queue_capacity_arg $ default_deadline_arg $ max_deadline_arg $ rate_arg
      $ burst_arg $ max_budget_arg $ tenant_arg $ batch_max_arg
      $ idle_timeout_arg $ drain_timeout_arg)

let () = exit (Cmd.eval' cmd)
