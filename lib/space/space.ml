type 'a t = {
  name : string;
  distance : 'a -> 'a -> float;
  item_cost : ('a -> int) option;
}

let make ?item_cost ~name distance = { name; distance; item_cost }
let rename name t = { t with name }

let item_cost t x = match t.item_cost with None -> 1 | Some c -> max 1 (c x)
let has_item_cost t = Option.is_some t.item_cost
let cost_estimator t arr = Option.map (fun c i -> max 1 (c arr.(i))) t.item_cost

(* Atomic so that parallel paths (Dbh_util.Pool fan-outs hashing and
   candidate evaluation across domains) never undercount: the tally is
   exact under concurrent use, not just under single-domain use. *)
type counter = int Atomic.t

let counter () = Atomic.make 0
let count c = Atomic.get c
let reset c = Atomic.set c 0

let counted c t =
  let distance x y =
    Atomic.incr c;
    t.distance x y
  in
  { t with distance }

let with_counter t =
  let c = counter () in
  (counted c t, c)

(* The ambient-metrics lookup is one Atomic.get per call; with nothing
   installed the only cost over the raw space is that load. *)
let observed t =
  let distance x y =
    (match Dbh_obs.Metrics.get () with
    | None -> ()
    | Some m -> Dbh_obs.Registry.inc m.Dbh_obs.Metrics.space_distance_calls_total);
    t.distance x y
  in
  { t with distance }

let of_matrix ?(name = "matrix") m =
  let n = Array.length m in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Space.of_matrix: matrix not square";
      Array.iter
        (fun d ->
          if Float.is_nan d then invalid_arg "Space.of_matrix: NaN entry";
          if d < 0. then invalid_arg "Space.of_matrix: negative entry")
        row)
    m;
  let distance i j = m.(i).(j) in
  { name; distance; item_cost = None }

let random_metric_matrix rng n =
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = Dbh_util.Rng.float_in rng 1. 2. in
      m.(i).(j) <- d;
      m.(j).(i) <- d
    done
  done;
  m

let transform ~name f s =
  let distance x y = s.distance (f x) (f y) in
  (* Pull the cost estimate back along the feature map too. *)
  { name; distance; item_cost = Option.map (fun c x -> c (f x)) s.item_cost }

(* Component costs add: evaluating the product distance evaluates both
   component distances.  With neither side annotated the product stays
   unannotated (constant cost). *)
let product_cost a b =
  match (a.item_cost, b.item_cost) with
  | None, None -> None
  | ca, cb ->
      let get c x = match c with None -> 1 | Some c -> max 1 (c x) in
      Some (fun (x, y) -> get ca x + get cb y)

let max_product a b =
  let distance (xa, xb) (ya, yb) = Float.max (a.distance xa ya) (b.distance xb yb) in
  { name = Printf.sprintf "max(%s,%s)" a.name b.name; distance; item_cost = product_cost a b }

let sum_product a b =
  let distance (xa, xb) (ya, yb) = a.distance xa ya +. b.distance xb yb in
  { name = Printf.sprintf "sum(%s,%s)" a.name b.name; distance; item_cost = product_cost a b }

let is_symmetric ?(tol = 1e-9) t sample =
  let n = Array.length sample in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d1 = t.distance sample.(i) sample.(j)
      and d2 = t.distance sample.(j) sample.(i) in
      if Float.abs (d1 -. d2) > tol then ok := false
    done
  done;
  !ok

let triangle_violations ?(tol = 1e-9) t sample =
  let n = Array.length sample in
  (* Cache pairwise distances to avoid O(n^3) distance evaluations. *)
  let d = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then d.(i).(j) <- t.distance sample.(i) sample.(j)
    done
  done;
  let violations = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        if i <> j && j <> k && i <> k && d.(i).(k) > d.(i).(j) +. d.(j).(k) +. tol then
          incr violations
      done
    done
  done;
  !violations
