(** Spaces with black-box distance measures.

    DBH's defining property is that it treats the distance measure as a
    black box: no metric or Euclidean structure is assumed.  A space is
    therefore just a name plus a distance function.  Indexing structures in
    this library are polymorphic over the element type and take a space as
    a first-class value, which keeps non-metric measures (DTW, chamfer,
    shape context, KL...) and ad-hoc test spaces equally easy to plug in.

    {!with_counter} wraps a space so that every distance evaluation is
    counted — the unit of cost throughout the paper's evaluation ("number
    of distance computations per query"). *)

type 'a t = {
  name : string;  (** Human-readable identifier used in reports. *)
  distance : 'a -> 'a -> float;  (** The black-box distance measure. *)
  item_cost : ('a -> int) option;
      (** Optional relative cost of one distance evaluation touching
          this element, in arbitrary units (see {!item_cost}).  [None]
          means every evaluation costs about the same. *)
}

val make : ?item_cost:('a -> int) -> name:string -> ('a -> 'a -> float) -> 'a t
(** [make ?item_cost ~name d] is the space measuring with [d].
    [item_cost x] should scale like the work of [d x _] — e.g. the
    sequence length for DTW or edit distance, whose cost is the product
    of the two lengths — so pool fan-outs can balance chunks by
    estimated distance cost instead of element count.  It must be cheap
    (it is called once per element per fan-out) and pure. *)

val rename : string -> 'a t -> 'a t
(** [rename name t] is [t] answering to a different name. *)

(** {1 Cost estimation} *)

val item_cost : 'a t -> 'a -> int
(** The declared relative cost of [x], clamped to [>= 1]; [1] when the
    space carries no estimator.  Only ratios matter: the pool uses
    these to equalize per-chunk totals. *)

val has_item_cost : 'a t -> bool

val cost_estimator : 'a t -> 'a array -> (int -> int) option
(** [cost_estimator t arr] is [Some (fun i -> item_cost t arr.(i))]
    when [t] carries an estimator, else [None] — shaped for direct use
    as the [?cost] argument of the {!Dbh_util.Pool} combinators. *)

(** {1 Distance counting} *)

type counter
(** Mutable tally of distance evaluations.  Atomic: counts stay exact
    when the space is called from several domains at once (parallel
    build, batched queries). *)

val counter : unit -> counter
val count : counter -> int
val reset : counter -> unit

val with_counter : 'a t -> 'a t * counter
(** [with_counter s] is a space computing the same distances as [s] but
    bumping the returned counter on every call. *)

val counted : counter -> 'a t -> 'a t
(** Like {!with_counter} but instrumenting with an existing counter, so
    several spaces can share one tally. *)

val observed : 'a t -> 'a t
(** A space that additionally bumps the ambient
    [dbh_space_distance_calls_total] metric ({!Dbh_obs.Metrics}) on
    every call — the raw call tally, wider than the per-query cost
    counters (it also sees build-time and baseline distances).  When no
    metric set is installed the wrapper costs one atomic load per
    call. *)

(** {1 Derived and ad-hoc spaces} *)

val of_matrix : ?name:string -> float array array -> int t
(** [of_matrix m] is the finite space whose elements are indices
    [0 .. n-1] and whose distance is the matrix lookup [m.(i).(j)].  The
    matrix must be square with no NaN or negative entries (the checks
    downstream index construction relies on); it is {e not} copied — but
    also not re-validated, so don't mutate entries to invalid values
    afterwards.  This realizes the paper's Section IV-B construction
    (random distance matrices) used to show that the DBH family need not
    be locality sensitive. *)

val random_metric_matrix : Dbh_util.Rng.t -> int -> float array array
(** [random_metric_matrix rng n] draws a symmetric [n]×[n] matrix with
    zero diagonal and off-diagonal entries uniform in [\[1,2\]] — exactly
    the paper's example of a metric space (symmetry plus triangle
    inequality hold because all distances live in [\[1,2\]]) where
    distances carry no mutual information. *)

val transform : name:string -> ('b -> 'a) -> 'a t -> 'b t
(** [transform ~name f s] measures distance between [x] and [y] as
    [s.distance (f x) (f y)] — pullback of a space along a feature map. *)

val max_product : 'a t -> 'b t -> ('a * 'b) t
(** L∞-style product: distance of pairs is the max of component
    distances.  Preserves metric axioms of the components. *)

val sum_product : 'a t -> 'b t -> ('a * 'b) t
(** L1-style product: distance of pairs is the sum of component
    distances. *)

(** {1 Checks (for tests and diagnostics)} *)

val is_symmetric : ?tol:float -> 'a t -> 'a array -> bool
(** Checks [d(x,y) = d(y,x)] for all pairs of the given sample. *)

val triangle_violations : ?tol:float -> 'a t -> 'a array -> int
(** Number of ordered sample triples [(x,y,z)] with
    [d(x,z) > d(x,y) + d(y,z) + tol].  Zero on a metric sample;
    positive counts witness non-metricity (expected for DTW, chamfer...). *)
