let snapshot_path ~dir gen = Filename.concat dir (Printf.sprintf "snapshot-%06d.dbh" gen)
let wal_path ~dir gen = Filename.concat dir (Printf.sprintf "wal-%06d.log" gen)

let parse ~prefix ~suffix name =
  let plen = String.length prefix and slen = String.length suffix in
  let n = String.length name in
  if n <= plen + slen
     || String.sub name 0 plen <> prefix
     || String.sub name (n - slen) slen <> suffix
  then None
  else
    let digits = String.sub name plen (n - plen - slen) in
    match int_of_string_opt digits with
    | Some g when g > 0 && String.for_all (fun c -> c >= '0' && c <= '9') digits -> Some g
    | _ -> None

let generations ~prefix ~suffix dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (parse ~prefix ~suffix)
    |> List.sort_uniq compare

let snapshot_generations ~dir = generations ~prefix:"snapshot-" ~suffix:".dbh" dir
let wal_generations ~dir = generations ~prefix:"wal-" ~suffix:".log" dir

let ensure_dir dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      invalid_arg (Printf.sprintf "Layout.ensure_dir: %s exists and is not a directory" dir)
  end
  else Unix.mkdir dir 0o755

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()
