module Crc32 = Dbh_util.Crc32

(* Record layout: seq (8 bytes LE) | payload length (8 bytes LE) |
   crc (8 bytes LE) | payload.  The CRC covers the seq bytes chained
   with the payload bytes, so a record cannot be replayed under the
   wrong sequence number.  Sequence numbers start at 1 and increase by
   one per record; a gap or repeat marks the log invalid from that
   point on. *)

let header_bytes = 24

type scan_result = {
  records : string array;
  valid_bytes : int;
  torn : bool;
  torn_reason : string option;
}

let le64_to_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Bytes.unsafe_to_string b

let bytes_to_le64 s off = Bytes.get_int64_le (Bytes.unsafe_of_string s) off

let encode_record ~seq payload =
  let seq_bytes = le64_to_bytes (Int64.of_int seq) in
  let crc = Crc32.string ~crc:(Crc32.string seq_bytes) payload in
  let buf = Buffer.create (header_bytes + String.length payload) in
  Buffer.add_string buf seq_bytes;
  Buffer.add_string buf (le64_to_bytes (Int64.of_int (String.length payload)));
  Buffer.add_string buf (le64_to_bytes (Int64.of_int crc));
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Validate records in [data] starting at [off] (absolute offsets are
   [base] + relative position, for resumable reads), expecting sequence
   numbers from [seq] on.  Returns the payloads in order plus where and
   why scanning stopped. *)
let scan_chunk data ~base ~seq0 =
  let total = String.length data in
  let records = ref [] in
  let rec loop off seq =
    let remaining = total - off in
    if remaining = 0 then (off, false, None)
    else if remaining < header_bytes then
      (off, true, Some (Printf.sprintf "torn record header at offset %d" (base + off)))
    else
      let rseq = Int64.to_int (bytes_to_le64 data off) in
      let len = Int64.to_int (bytes_to_le64 data (off + 8)) in
      let crc = Int64.to_int (bytes_to_le64 data (off + 16)) in
      if rseq <> seq then
        (off, true, Some (Printf.sprintf "sequence gap at offset %d: expected %d, found %d" (base + off) seq rseq))
      else if len < 0 || len > remaining - header_bytes then
        (off, true, Some (Printf.sprintf "torn or invalid record length %d at offset %d" len (base + off)))
      else
        let seq_crc = Crc32.sub data ~pos:off ~len:8 in
        let actual = Crc32.sub data ~crc:seq_crc ~pos:(off + header_bytes) ~len in
        if actual <> crc then
          (off, true, Some (Printf.sprintf "checksum mismatch in record %d at offset %d" seq (base + off)))
        else begin
          records := String.sub data (off + header_bytes) len :: !records;
          loop (off + header_bytes + len) (seq + 1)
        end
  in
  let valid_rel, torn, torn_reason = loop 0 seq0 in
  (Array.of_list (List.rev !records), valid_rel, torn, torn_reason)

let scan_string data =
  let records, valid_bytes, torn, torn_reason = scan_chunk data ~base:0 ~seq0:1 in
  { records; valid_bytes; torn; torn_reason }

let scan ~path =
  if not (Sys.file_exists path) then
    { records = [||]; valid_bytes = 0; torn = false; torn_reason = None }
  else
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    scan_string data

(* ------------------------------------------------- read-only tailing *)

type prefix = {
  payloads : string array;
  next_offset : int;
  next_seq : int;
  file_bytes : int;
  prefix_torn : bool;
  prefix_torn_reason : string option;
}

let read_valid_prefix ?(from = (0, 1)) ~path () =
  let offset, seq0 = from in
  if offset < 0 then invalid_arg "Wal.read_valid_prefix: negative offset";
  if seq0 < 1 then invalid_arg "Wal.read_valid_prefix: next_seq must be >= 1";
  if not (Sys.file_exists path) then
    {
      payloads = [||];
      next_offset = offset;
      next_seq = seq0;
      file_bytes = 0;
      prefix_torn = false;
      prefix_torn_reason = None;
    }
  else begin
    (* Strictly read-only: the file may belong to a live leader still
       appending to it, so — unlike [open_append] — a torn tail is
       reported, never truncated, and the caller resumes from
       [next_offset] once more bytes land. *)
    let ic = open_in_bin path in
    let file_bytes, data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let total = in_channel_length ic in
          if offset >= total then (total, "")
          else begin
            seek_in ic offset;
            (total, really_input_string ic (total - offset))
          end)
    in
    if offset > file_bytes then
      (* The file shrank below our cursor: a new writer truncated or
         replaced it.  Nothing here can be applied incrementally. *)
      {
        payloads = [||];
        next_offset = offset;
        next_seq = seq0;
        file_bytes;
        prefix_torn = true;
        prefix_torn_reason =
          Some (Printf.sprintf "file shrank to %d bytes below read offset %d" file_bytes offset);
      }
    else
      let payloads, valid_rel, torn, torn_reason = scan_chunk data ~base:offset ~seq0 in
      {
        payloads;
        next_offset = offset + valid_rel;
        next_seq = seq0 + Array.length payloads;
        file_bytes;
        prefix_torn = torn;
        prefix_torn_reason = torn_reason;
      }
  end

type t = {
  path : string;
  oc : out_channel;
  fsync : bool;
  mutable next_seq : int;
  mutable closed : bool;
}

let sync t =
  flush t.oc;
  if t.fsync then begin
    match Dbh_obs.Metrics.get () with
    | None -> Unix.fsync (Unix.descr_of_out_channel t.oc)
    | Some m ->
        let t0 = Dbh_obs.Metrics.now () in
        Unix.fsync (Unix.descr_of_out_channel t.oc);
        Dbh_obs.Registry.observe m.Dbh_obs.Metrics.fsync_seconds
          (Dbh_obs.Metrics.now () -. t0)
  end

let create ?(fsync = true) ~path () =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
  let t = { path; oc; fsync; next_seq = 1; closed = false } in
  sync t;
  t

let open_append ?(fsync = true) ~path () =
  let result = scan ~path in
  if result.torn then
    (* Drop the torn tail so new records extend a valid prefix instead of
       being buried behind garbage that every future scan stops at. *)
    Unix.truncate path result.valid_bytes;
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path in
  ({ path; oc; fsync; next_seq = Array.length result.records + 1; closed = false }, result)

let append t payload =
  if t.closed then invalid_arg "Wal.append: log is closed";
  let seq = t.next_seq in
  output_string t.oc (encode_record ~seq payload);
  t.next_seq <- seq + 1;
  sync t;
  (match Dbh_obs.Metrics.get () with
  | None -> ()
  | Some m -> Dbh_obs.Registry.inc m.Dbh_obs.Metrics.wal_appends_total);
  seq

let record_count t = t.next_seq - 1
let path t = t.path

let close t =
  if not t.closed then begin
    sync t;
    t.closed <- true;
    close_out_noerr t.oc
  end
