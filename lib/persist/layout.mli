(** On-disk layout of a durable index directory.

    A directory holds numbered snapshot generations and their
    write-ahead logs: [snapshot-000007.dbh] is the state after
    checkpoint 7, and [wal-000007.log] journals every operation applied
    since.  Recovery loads the newest snapshot that verifies and
    replays the WAL chain from its generation forward. *)

val snapshot_path : dir:string -> int -> string
val wal_path : dir:string -> int -> string

val snapshot_generations : dir:string -> int list
(** Generation numbers of snapshot files present, sorted ascending.
    A missing directory yields []. *)

val wal_generations : dir:string -> int list
(** Generation numbers of WAL files present, sorted ascending. *)

val ensure_dir : string -> unit
(** Create the directory if missing.  Raises [Invalid_argument] when the
    path exists but is not a directory. *)

val remove_if_exists : string -> unit
(** Delete a file, ignoring a missing one. *)
