(** Append-only write-ahead log with per-record checksums.

    Each record carries a sequence number, its length and a CRC-32 over
    sequence plus payload.  Scanning stops at the first record that
    fails any check — a torn tail from a crash mid-append loses at most
    the record being written, and {!open_append} truncates it away so
    the log returns to a valid prefix.  A log that ends exactly at a
    record boundary scans as not torn. *)

type t

type scan_result = {
  records : string array;  (** Payloads of all valid records, in order. *)
  valid_bytes : int;  (** Length of the valid prefix of the file. *)
  torn : bool;  (** Whether bytes after the valid prefix were discarded. *)
  torn_reason : string option;  (** Why scanning stopped, when [torn]. *)
}

val scan : path:string -> scan_result
(** Read and validate a log.  A missing file scans as empty and intact;
    garbage never raises — it only marks the log torn at that point. *)

val scan_string : string -> scan_result
(** {!scan} over in-memory bytes (for tests and verification tools). *)

type prefix = {
  payloads : string array;  (** newly validated records, in order *)
  next_offset : int;  (** where the next read should resume *)
  next_seq : int;  (** sequence the next record must carry *)
  file_bytes : int;  (** file size observed by this read *)
  prefix_torn : bool;
      (** bytes past [next_offset] failed validation — possibly just a
          record the writer is mid-append on *)
  prefix_torn_reason : string option;
}

val read_valid_prefix : ?from:int * int -> path:string -> unit -> prefix
(** Incrementally read the valid records of a log that another process
    may still be appending to.  [from] is the [(next_offset, next_seq)]
    cursor of a previous call (default [(0, 1)] — the whole file).

    Strictly read-only: unlike {!open_append} this never truncates a
    torn tail — a follower tailing a leader's live log must not modify
    it, and an incomplete record at EOF is usually just an append in
    flight, valid on the next read.  A missing file reads as empty and
    intact; a file shorter than [from]'s offset reads as torn with no
    payloads (the log was truncated or replaced — restart from scratch).
    Raises [Invalid_argument] on a negative offset or a sequence below
    1. *)

val create : ?fsync:bool -> path:string -> unit -> t
(** Create or truncate a log for appending.  [fsync] (default [true])
    makes every {!append} durable before returning; turn it off only
    for benchmarks. *)

val open_append : ?fsync:bool -> path:string -> unit -> t * scan_result
(** Open an existing log (creating it if missing) for appending,
    truncating any torn tail first.  Returns the scan of the valid
    prefix so the caller can replay it. *)

val append : t -> string -> int
(** Append one record and (when [fsync]) force it to disk.  Returns the
    record's sequence number, starting at 1. *)

val sync : t -> unit
(** Flush (and fsync when enabled) without appending. *)

val record_count : t -> int
(** Records written through this handle plus valid records found on
    open. *)

val path : t -> string

val close : t -> unit
(** Flush, sync and close.  Idempotent. *)
