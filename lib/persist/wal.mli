(** Append-only write-ahead log with per-record checksums.

    Each record carries a sequence number, its length and a CRC-32 over
    sequence plus payload.  Scanning stops at the first record that
    fails any check — a torn tail from a crash mid-append loses at most
    the record being written, and {!open_append} truncates it away so
    the log returns to a valid prefix.  A log that ends exactly at a
    record boundary scans as not torn. *)

type t

type scan_result = {
  records : string array;  (** Payloads of all valid records, in order. *)
  valid_bytes : int;  (** Length of the valid prefix of the file. *)
  torn : bool;  (** Whether bytes after the valid prefix were discarded. *)
  torn_reason : string option;  (** Why scanning stopped, when [torn]. *)
}

val scan : path:string -> scan_result
(** Read and validate a log.  A missing file scans as empty and intact;
    garbage never raises — it only marks the log torn at that point. *)

val scan_string : string -> scan_result
(** {!scan} over in-memory bytes (for tests and verification tools). *)

val create : ?fsync:bool -> path:string -> unit -> t
(** Create or truncate a log for appending.  [fsync] (default [true])
    makes every {!append} durable before returning; turn it off only
    for benchmarks. *)

val open_append : ?fsync:bool -> path:string -> unit -> t * scan_result
(** Open an existing log (creating it if missing) for appending,
    truncating any torn tail first.  Returns the scan of the valid
    prefix so the caller can replay it. *)

val append : t -> string -> int
(** Append one record and (when [fsync]) force it to disk.  Returns the
    record's sequence number, starting at 1. *)

val sync : t -> unit
(** Flush (and fsync when enabled) without appending. *)

val record_count : t -> int
(** Records written through this handle plus valid records found on
    open. *)

val path : t -> string

val close : t -> unit
(** Flush, sync and close.  Idempotent. *)
