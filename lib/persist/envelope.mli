(** Checksummed snapshot envelope and atomic file writes.

    Every on-disk snapshot is wrapped in a small header — magic tag,
    kind, format version, payload length, payload CRC-32, and a CRC-32
    over the header itself — so that corruption anywhere in the file is
    reported as {!Dbh_util.Binio.Corrupt} with a reason, never decoded
    into a wrong index.  Files reach disk through {!write_atomic}:
    a temp file in the same directory, fsync, rename, directory fsync —
    a crash at any point leaves either the old file or the new one,
    never a torn mix. *)

type header = {
  kind : string;  (** What the payload is, e.g. ["index"] or ["online"]. *)
  version : int;  (** Payload format version, starting at 1. *)
  payload_length : int;
  payload_crc : int;
}

val wrap : kind:string -> version:int -> string -> string
(** [wrap ~kind ~version payload] is the full file image: header followed
    by payload.  Raises [Invalid_argument] on an empty/oversized kind or
    a version below 1. *)

val decode : string -> header * string
(** Parse and verify a file image produced by {!wrap}.  Raises
    {!Dbh_util.Binio.Corrupt} when the magic, header checksum, length or
    payload checksum does not hold — including truncation and trailing
    garbage, since the payload length must match the file exactly. *)

val looks_like_envelope : string -> bool
(** Whether the bytes start with the snapshot magic — used to tell
    snapshots from write-ahead logs when sniffing an arbitrary file. *)

val read : path:string -> header * string
(** Read a file and {!decode} it.  Raises [Sys_error] on I/O failure in
    addition to [Corrupt] on verification failure. *)

val read_expect : kind:string -> version:int -> path:string -> string
(** Like {!read} but also checks kind and version, raising [Corrupt] on
    mismatch (a version we do not read is indistinguishable from
    corruption as far as the caller's decoder is concerned). *)

val write_atomic : path:string -> string -> unit
(** [write_atomic ~path data] atomically replaces [path] with [data]:
    the bytes are written and fsynced to a temporary file in the same
    directory, renamed over [path], and the directory entry is fsynced.
    On failure the temporary file is removed and [path] is untouched. *)

val save : path:string -> kind:string -> version:int -> string -> unit
(** [save ~path ~kind ~version payload] = [write_atomic ~path (wrap ...)]. *)
