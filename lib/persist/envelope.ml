module Binio = Dbh_util.Binio
module Crc32 = Dbh_util.Crc32

let magic = "DBHSNAP1"

type header = {
  kind : string;
  version : int;
  payload_length : int;
  payload_crc : int;
}

let corrupt fmt = Printf.ksprintf (fun s -> raise (Binio.Corrupt s)) fmt

let wrap ~kind ~version payload =
  if String.length kind = 0 || String.length kind > 64 then
    invalid_arg "Envelope.wrap: kind must be 1-64 bytes";
  if version < 1 then invalid_arg "Envelope.wrap: version must be >= 1";
  let head = Buffer.create 64 in
  Binio.write_string head magic;
  Binio.write_string head kind;
  Binio.write_int head version;
  Binio.write_int head (String.length payload);
  Binio.write_int head (Crc32.string payload);
  (* Header checksum over everything written so far, so that a flipped
     bit in any header field — not just the payload — is caught as a
     checksum mismatch rather than decoded as nonsense. *)
  Binio.write_int head (Crc32.string (Buffer.contents head));
  Buffer.contents head ^ payload

let decode data =
  let r = Binio.reader data in
  let m = try Binio.read_string r with Binio.Corrupt _ -> corrupt "not a DBH snapshot (no magic)" in
  if m <> magic then corrupt "not a DBH snapshot (bad magic)";
  let kind = Binio.read_string r in
  let version = Binio.read_int r in
  let payload_length = Binio.read_int r in
  let payload_crc = Binio.read_int r in
  let expected = Crc32.sub data ~pos:0 ~len:(Binio.pos r) in
  let header_crc = Binio.read_int r in
  if header_crc <> expected then corrupt "envelope header checksum mismatch";
  if version < 1 then corrupt "invalid envelope version %d" version;
  if payload_length < 0 then corrupt "negative payload length";
  let off = Binio.pos r in
  let actual_length = String.length data - off in
  if actual_length <> payload_length then
    corrupt "payload length mismatch: header says %d bytes, file has %d" payload_length
      actual_length;
  if Crc32.sub data ~pos:off ~len:payload_length <> payload_crc then
    corrupt "payload checksum mismatch";
  ({ kind; version; payload_length; payload_crc }, String.sub data off payload_length)

let looks_like_envelope data =
  (* Length-prefixed magic: 8-byte little-endian length 8, then the tag. *)
  let prefix = "\008\000\000\000\000\000\000\000" ^ magic in
  String.length data >= String.length prefix && String.sub data 0 (String.length prefix) = prefix

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read ~path = decode (read_file path)

let read_expect ~kind ~version ~path =
  let header, payload = read ~path in
  if header.kind <> kind then
    corrupt "snapshot kind mismatch: expected %S, found %S" kind header.kind;
  if header.version <> version then
    corrupt "unsupported %s snapshot version %d (this build reads version %d)" kind
      header.version version;
  payload

(* ------------------------------------------------------- atomic writes *)

let fsync_dir dir =
  (* Persist the rename itself.  Some filesystems refuse fsync on a
     directory fd; that weakens the guarantee but is not an error we can
     act on. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_atomic ~path data =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  (try
     let oc = open_out_bin tmp in
     (try
        output_string oc data;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc);
        close_out oc
      with e ->
        close_out_noerr oc;
        raise e)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (try Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  fsync_dir dir

let save ~path ~kind ~version payload = write_atomic ~path (wrap ~kind ~version payload)
