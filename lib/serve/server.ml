module Registry = Dbh_obs.Registry
module Pool = Dbh_util.Pool

type config = {
  host : string;
  port : int;
  metrics_port : int option;
  admission : Admission.config;
  max_payload : int;
  idle_timeout : float;
  max_connections : int;
  batch_max : int;
  drain_timeout : float;
  so_sndbuf : int option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    metrics_port = None;
    admission = Admission.default_config;
    max_payload = Protocol.default_max_payload;
    idle_timeout = 10.;
    max_connections = 256;
    batch_max = 32;
    drain_timeout = 5.;
    so_sndbuf = None;
  }

type conn = {
  cid : int;
  fd : Unix.file_descr;
  wmutex : Mutex.t;
  mutable writable : bool;  (* guarded by wmutex *)
}

type 'a t = {
  config : config;
  shards : 'a Shards.t;
  pool : Pool.t option;
  decode : string -> 'a;
  admission : Admission.t;
  sm : Serve_metrics.t;
  reg : Registry.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  metrics_fd : Unix.file_descr option;
  metrics_bound : int option;
  stop_flag : bool Atomic.t;
  conns : (int, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable conn_seq : int;
  mutable live_conn_threads : int;  (* guarded by conns_mutex *)
  conn_threads_done : Condition.t;  (* signalled when live_conn_threads drops *)
  mutable accept_thread : Thread.t option;
  mutable batcher_domain : unit Domain.t option;
  mutable metrics_thread : Thread.t option;
  stop_mutex : Mutex.t;
  stopped : Condition.t;
  mutable stop_started : bool;
  mutable stop_done : bool;
}

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* Best-effort reply: the peer may be gone, mid-kill, half-open, or a
   slow reader whose socket buffer filled until SO_SNDTIMEO fired — a
   failed write must never take a server thread down.  Once a reply
   cannot be delivered the stream is useless (the peer would see a gap),
   so the socket is shut down too: that unblocks the connection thread's
   read so the connection gets reaped instead of lingering. *)
let send_response c ~id resp =
  Mutex.lock c.wmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.wmutex)
    (fun () ->
      if c.writable then
        try write_all c.fd (Protocol.encode_response ~id resp)
        with Unix.Unix_error _ | Sys_error _ ->
          c.writable <- false;
          (try Unix.shutdown c.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ()))

let listen_on ~host ~port =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd SO_REUSEADDR true;
     Unix.bind fd addr;
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, bound)

let register_conn srv fd =
  Mutex.lock srv.conns_mutex;
  let c =
    srv.conn_seq <- srv.conn_seq + 1;
    { cid = srv.conn_seq; fd; wmutex = Mutex.create (); writable = true }
  in
  Hashtbl.replace srv.conns c.cid c;
  let open_now = Hashtbl.length srv.conns in
  Mutex.unlock srv.conns_mutex;
  Registry.set srv.sm.connections_open open_now;
  c

let forget_conn srv c =
  Mutex.lock srv.conns_mutex;
  Hashtbl.remove srv.conns c.cid;
  let open_now = Hashtbl.length srv.conns in
  Mutex.unlock srv.conns_mutex;
  Registry.set srv.sm.connections_open open_now;
  (* Shutdown BEFORE taking wmutex: a reply write blocked on a slow
     reader holds wmutex, and shutdown is what forces that write to fail
     (EPIPE) — locking first would deadlock behind it with the fd never
     closed.  After shutdown the in-flight write errors out and releases
     the lock; once we hold it no new write can start (writable is
     checked under wmutex), so the close below cannot race a writer. *)
  (try Unix.shutdown c.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Mutex.lock c.wmutex;
  c.writable <- false;
  Mutex.unlock c.wmutex;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let conn_count srv =
  Mutex.lock srv.conns_mutex;
  let n = Hashtbl.length srv.conns in
  Mutex.unlock srv.conns_mutex;
  n

(* Admission-side handling of one decoded frame, on the connection
   thread.  Cheap requests are answered inline; work is offered to the
   queue and shed with an explicit reason when it cannot be taken. *)
let handle_frame srv c (frame : Protocol.frame) =
  Registry.inc srv.sm.requests_total;
  let reply resp = send_response c ~id:frame.id resp in
  let bad msg =
    Registry.inc srv.sm.bad_requests_total;
    reply (Protocol.Bad_request msg)
  in
  match Protocol.request_of_frame frame with
  | Error msg -> bad msg
  | Ok Protocol.Ping -> reply Protocol.Pong
  | Ok Protocol.Stats -> reply (Protocol.Stats_reply (Shards.stats_json srv.shards))
  | Ok req -> (
      let tenant, deadline_ms, requested =
        match req with
        | Protocol.Search s -> (s.tenant, s.deadline_ms, s.budget)
        | Protocol.Insert i -> (i.tenant, i.deadline_ms, 0)
        | Protocol.Delete d -> (d.tenant, d.deadline_ms, 0)
        | Protocol.Ping | Protocol.Stats -> assert false
      in
      let decodes payload =
        match srv.decode payload with _ -> true | exception _ -> false
      in
      let invalid =
        match req with
        | Protocol.Search s ->
            if s.radius > Dbh.Key.max_radius then
              Some
                (Printf.sprintf "radius %d exceeds max %d" s.radius
                   Dbh.Key.max_radius)
            else if not (decodes s.payload) then Some "payload does not decode"
            else None
        | Protocol.Insert i ->
            if not (decodes i.payload) then Some "payload does not decode"
            else None
        | _ -> None
      in
      match invalid with
      | Some msg -> bad msg
      | None -> (
          let now = Unix.gettimeofday () in
          let deadline = Admission.resolve_deadline srv.admission ~now ~deadline_ms in
          let budget =
            Admission.budget_for srv.admission ~tenant ~remaining:(deadline -. now)
              ~requested
          in
          let item =
            {
              Admission.request = req;
              id = frame.id;
              tenant;
              deadline;
              budget;
              enqueued_at = now;
              reply;
            }
          in
          match Admission.admit srv.admission ~now item with
          | Admission.Admitted ->
              Registry.inc srv.sm.accepted_total;
              Registry.set srv.sm.queue_depth (Admission.depth srv.admission)
          | Admission.Shed_rate wait ->
              Registry.inc srv.sm.shed_rate_total;
              reply
                (Protocol.Overloaded
                   { retry_after_ms = max 1 (int_of_float (ceil (wait *. 1000.))) })
          | Admission.Shed_queue ->
              Registry.inc srv.sm.shed_queue_total;
              reply (Protocol.Overloaded { retry_after_ms = 50 })
          | Admission.Shed_draining ->
              Registry.inc srv.sm.shed_drain_total;
              reply (Protocol.Overloaded { retry_after_ms = 1000 })))

(* One thread per connection: read, deframe, dispatch.  The receive
   timeout (SO_RCVTIMEO) plus the partial-frame deadline kill idlers and
   slow-loris writers; corrupt framing kills the stream. *)
let conn_loop srv c () =
  let cap = Protocol.header_bytes + srv.config.max_payload + 64 in
  let buf = ref (Bytes.create 16384) in
  let len = ref 0 in
  let partial_since = ref None in
  let alive = ref true in
  let kill () =
    Registry.inc srv.sm.connections_killed_total;
    alive := false
  in
  (while !alive do
     if !len = Bytes.length !buf then
       if Bytes.length !buf >= cap then kill ()
       else begin
         let nbuf = Bytes.create (min cap (2 * Bytes.length !buf)) in
         Bytes.blit !buf 0 nbuf 0 !len;
         buf := nbuf
       end;
     if !alive then begin
       match Unix.read c.fd !buf !len (Bytes.length !buf - !len) with
       | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
           kill ()
       | exception Unix.Unix_error _ -> alive := false
       | exception Sys_error _ -> alive := false
       | 0 -> alive := false
       | n ->
           len := !len + n;
           let off = ref 0 in
           let continue = ref true in
           while !continue do
             match
               Protocol.decode_frame ~max_payload:srv.config.max_payload !buf
                 ~off:!off ~len:(!len - !off)
             with
             | `Frame (frame, consumed) ->
                 off := !off + consumed;
                 handle_frame srv c frame
             | `Need_more -> continue := false
             | `Corrupt msg ->
                 Registry.inc srv.sm.bad_frames_total;
                 send_response c ~id:0L (Protocol.Bad_request msg);
                 kill ();
                 continue := false
           done;
           if !off > 0 then begin
             Bytes.blit !buf !off !buf 0 (!len - !off);
             len := !len - !off
           end;
           if !len = 0 then partial_since := None
           else if !off > 0 then partial_since := Some (Unix.gettimeofday ())
           else begin
             match !partial_since with
             | None -> partial_since := Some (Unix.gettimeofday ())
             | Some t0 ->
                 if Unix.gettimeofday () -. t0 > srv.config.idle_timeout then
                   kill ()
           end
     end
   done;
   forget_conn srv c)

let accept_loop srv () =
  while not (Atomic.get srv.stop_flag) do
    match Unix.select [ srv.listen_fd ] [] [] 0.2 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept srv.listen_fd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
            Registry.inc srv.sm.connections_total;
            if
              Atomic.get srv.stop_flag
              || conn_count srv >= srv.config.max_connections
            then begin
              Registry.inc srv.sm.connections_killed_total;
              try Unix.close fd with Unix.Unix_error _ -> ()
            end
            else begin
              (try Unix.setsockopt fd TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              Unix.setsockopt_float fd SO_RCVTIMEO srv.config.idle_timeout;
              (* The send timeout bounds every reply write: a client
                 that pipelines requests but never reads fills the
                 kernel send buffer, and without this the batcher would
                 block forever inside its reply — one slow reader
                 stalling the whole serving plane. *)
              Unix.setsockopt_float fd SO_SNDTIMEO srv.config.idle_timeout;
              (match srv.config.so_sndbuf with
              | Some b -> (
                  try Unix.setsockopt_int fd SO_SNDBUF b
                  with Unix.Unix_error _ -> ())
              | None -> ());
              let c = register_conn srv fd in
              Mutex.lock srv.conns_mutex;
              srv.live_conn_threads <- srv.live_conn_threads + 1;
              Mutex.unlock srv.conns_mutex;
              (* Threads are counted, not retained: OCaml systhreads
                 need no join to be reclaimed, and keeping a Thread.t
                 per connection for the server's lifetime leaks memory
                 proportional to total connections ever accepted. *)
              ignore
                (Thread.create
                   (fun () ->
                     Fun.protect (conn_loop srv c)
                       ~finally:(fun () ->
                         Mutex.lock srv.conns_mutex;
                         srv.live_conn_threads <- srv.live_conn_threads - 1;
                         Condition.broadcast srv.conn_threads_done;
                         Mutex.unlock srv.conns_mutex))
                   ())
            end)
  done;
  try Unix.close srv.listen_fd with Unix.Unix_error _ -> ()

let refresh_tenant_gauges srv ~now =
  let tokens = Admission.tenant_tokens srv.admission ~now in
  List.iter
    (fun (name, g) ->
      match List.assoc_opt name tokens with
      | Some v -> Registry.set g (int_of_float v)
      | None -> ())
    srv.sm.tenant_tokens

let finish srv item resp =
  item.Admission.reply resp;
  Registry.observe srv.sm.request_seconds
    (Unix.gettimeofday () -. item.Admission.enqueued_at)

(* Execute one micro-batch.  Writes run first, in arrival order, so a
   client pipelining insert-then-search on one connection observes its
   own write; searches then run as one fan-out over the shards. *)
let run_batch srv items =
  Registry.inc srv.sm.batches_total;
  Registry.observe srv.sm.batch_size (float_of_int (List.length items));
  let now = Unix.gettimeofday () in
  let live, dead =
    List.partition (fun it -> it.Admission.deadline > now) items
  in
  List.iter
    (fun it ->
      Registry.inc srv.sm.timed_out_total;
      finish srv it Protocol.Timed_out)
    dead;
  let searches, writes =
    List.partition
      (fun it ->
        match it.Admission.request with Protocol.Search _ -> true | _ -> false)
      live
  in
  List.iter
    (fun it ->
      match it.Admission.request with
      | Protocol.Insert { payload; _ } -> (
          match Shards.insert srv.shards (srv.decode payload) with
          | handle -> finish srv it (Protocol.Inserted { handle })
          | exception e ->
              finish srv it (Protocol.Server_error (Printexc.to_string e)))
      | Protocol.Delete { handle; _ } -> (
          match Shards.delete srv.shards handle with
          | () -> finish srv it Protocol.Deleted
          | exception Invalid_argument msg ->
              Registry.inc srv.sm.bad_requests_total;
              finish srv it (Protocol.Bad_request msg)
          | exception e ->
              finish srv it (Protocol.Server_error (Printexc.to_string e)))
      | _ -> assert false)
    writes;
  match searches with
  | [] -> ()
  | _ ->
      let items_arr = Array.of_list searches in
      let specs =
        Array.map
          (fun it ->
            match it.Admission.request with
            | Protocol.Search s ->
                let remaining = it.Admission.deadline -. now in
                let budget =
                  min it.Admission.budget
                    (Admission.budget_for srv.admission ~tenant:it.Admission.tenant
                       ~remaining ~requested:s.budget)
                in
                ( srv.decode s.payload,
                  { Shards.budget; probes = s.probes; radius = s.radius } )
            | _ -> assert false)
          items_arr
      in
      let t0 = Unix.gettimeofday () in
      let answers = Shards.search_many ?pool:srv.pool srv.shards specs in
      let elapsed = Unix.gettimeofday () -. t0 in
      let total_cost =
        Array.fold_left (fun acc (a : Shards.answer) -> acc + a.cost) 0 answers
      in
      (* EWMA of measured distance throughput drives deadline→budget. *)
      if elapsed > 1e-6 && total_cost > 0 then begin
        let measured = float_of_int total_cost /. elapsed in
        let old = Admission.distances_per_second srv.admission in
        Admission.set_distances_per_second srv.admission
          ((0.2 *. measured) +. (0.8 *. old))
      end;
      Array.iteri
        (fun i (a : Shards.answer) ->
          let resp =
            match a.nn with
            | Some (handle, dist) ->
                Protocol.Result
                  { found = true; handle; dist; cost = a.cost; truncated = a.truncated }
            | None ->
                Protocol.Result
                  {
                    found = false;
                    handle = 0;
                    dist = 0.;
                    cost = a.cost;
                    truncated = a.truncated;
                  }
          in
          finish srv items_arr.(i) resp)
        answers

(* The batcher runs on its own domain, not a systhread: every systhread
   of a domain shares that domain's runtime lock, so a batcher thread on
   the accept domain would compete for CPU with the connection threads —
   under a shed storm the serving path would starve and goodput would
   collapse even though the work queue is full.  On a separate domain
   the admission plane (reads, deframing, sheds) and the serving plane
   (search, replies) degrade independently; everything they share —
   admission queue, registry, per-connection write mutexes, the domain
   pool — is mutex- or atomic-protected. *)
let batch_loop srv () =
  let rec loop () =
    match Admission.pop_batch srv.admission ~max:srv.config.batch_max with
    | [] -> ()  (* queue closed and empty: drain complete *)
    | items ->
        Registry.set srv.sm.queue_depth (Admission.depth srv.admission);
        (try run_batch srv items
         with e ->
           (* A batch must never kill the worker: fail its items loudly. *)
           let msg = Printexc.to_string e in
           List.iter
             (fun it -> finish srv it (Protocol.Server_error msg))
             items);
        refresh_tenant_gauges srv ~now:(Unix.gettimeofday ());
        loop ()
  in
  loop ()

(* Minimal HTTP/1.0 responder for GET /metrics — enough for a
   Prometheus scrape or curl, not a web server. *)
let metrics_loop srv fd () =
  while not (Atomic.get srv.stop_flag) do
    match Unix.select [ fd ] [] [] 0.2 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept fd with
        | exception Unix.Unix_error _ -> ()
        | cfd, _ ->
            (try
               Unix.setsockopt_float cfd SO_RCVTIMEO 2.;
               (* Send timeout too: a scraper that connects and never
                  reads must not wedge the single metrics thread. *)
               Unix.setsockopt_float cfd SO_SNDTIMEO 2.;
               let buf = Bytes.create 4096 in
               let n = try Unix.read cfd buf 0 4096 with _ -> 0 in
               let req = Bytes.sub_string buf 0 (max n 0) in
               let body, status =
                 if n > 0 && String.length req >= 3 && String.sub req 0 3 = "GET"
                 then (Registry.exposition srv.reg, "200 OK")
                 else ("bad request\n", "400 Bad Request")
               in
               write_all cfd
                 (Printf.sprintf
                    "HTTP/1.0 %s\r\n\
                     Content-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: %d\r\n\
                     Connection: close\r\n\
                     \r\n\
                     %s"
                    status (String.length body) body)
             with Unix.Unix_error _ | Sys_error _ -> ());
            (try Unix.close cfd with Unix.Unix_error _ -> ()))
  done;
  try Unix.close fd with Unix.Unix_error _ -> ()

let start ?pool ?registry ~decode config shards =
  if config.max_payload < 1 || config.max_payload > Protocol.default_max_payload
  then invalid_arg "Server: max_payload out of range";
  if config.idle_timeout <= 0. then invalid_arg "Server: idle_timeout must be > 0";
  if config.max_connections < 1 then
    invalid_arg "Server: max_connections must be >= 1";
  if config.batch_max < 1 then invalid_arg "Server: batch_max must be >= 1";
  if config.drain_timeout < 0. then
    invalid_arg "Server: drain_timeout must be >= 0";
  (match config.so_sndbuf with
  | Some b when b < 1 -> invalid_arg "Server: so_sndbuf must be >= 1"
  | _ -> ());
  (match Sys.os_type with
  | "Unix" -> (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ());
  let reg = match registry with Some r -> r | None -> Registry.create () in
  let sm =
    Serve_metrics.on reg ~tenants:(List.map fst config.admission.classes)
  in
  let admission = Admission.create config.admission in
  let listen_fd, bound_port = listen_on ~host:config.host ~port:config.port in
  let metrics_fd, metrics_bound =
    match config.metrics_port with
    | None -> (None, None)
    | Some p ->
        let fd, bound =
          try listen_on ~host:config.host ~port:p
          with e ->
            (try Unix.close listen_fd with _ -> ());
            raise e
        in
        (Some fd, Some bound)
  in
  let srv =
    {
      config;
      shards;
      pool;
      decode;
      admission;
      sm;
      reg;
      listen_fd;
      bound_port;
      metrics_fd;
      metrics_bound;
      stop_flag = Atomic.make false;
      conns = Hashtbl.create 64;
      conns_mutex = Mutex.create ();
      conn_seq = 0;
      live_conn_threads = 0;
      conn_threads_done = Condition.create ();
      accept_thread = None;
      batcher_domain = None;
      metrics_thread = None;
      stop_mutex = Mutex.create ();
      stopped = Condition.create ();
      stop_started = false;
      stop_done = false;
    }
  in
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  srv.batcher_domain <- Some (Domain.spawn (batch_loop srv));
  (match metrics_fd with
  | Some fd -> srv.metrics_thread <- Some (Thread.create (metrics_loop srv fd) ())
  | None -> ());
  srv

let port srv = srv.bound_port
let metrics_port srv = srv.metrics_bound
let registry srv = srv.reg
let metrics srv = srv.sm
let draining srv = Atomic.get srv.stop_flag

let rec wait srv =
  Mutex.lock srv.stop_mutex;
  while not srv.stop_done do
    Condition.wait srv.stopped srv.stop_mutex
  done;
  Mutex.unlock srv.stop_mutex

and stop ?kill srv =
  Mutex.lock srv.stop_mutex;
  if srv.stop_started then begin
    Mutex.unlock srv.stop_mutex;
    ignore kill;
    wait srv
  end
  else begin
    srv.stop_started <- true;
    Mutex.unlock srv.stop_mutex;
    (* 1. Stop accepting; shed everything newly offered. *)
    Atomic.set srv.stop_flag true;
    Registry.set srv.sm.draining 1;
    Admission.start_draining srv.admission;
    (* 2. Let the batcher finish what was admitted, within the window. *)
    let give_up = Unix.gettimeofday () +. srv.config.drain_timeout in
    while Admission.depth srv.admission > 0 && Unix.gettimeofday () < give_up do
      Thread.yield ();
      Unix.sleepf 0.01
    done;
    List.iter
      (fun it ->
        Registry.inc srv.sm.shed_drain_total;
        it.Admission.reply (Protocol.Overloaded { retry_after_ms = 1000 }))
      (Admission.drain_remaining srv.admission);
    Admission.close srv.admission;
    (match srv.batcher_domain with Some d -> Domain.join d | None -> ());
    (* 3. Take the connections down: no more admissions are possible, so
       shutting the sockets only interrupts reads.  Join the accept
       thread first so no new connection thread can appear after the
       snapshot below; shutdown before touching wmutex, because a conn
       thread blocked writing a shed reply to a slow reader holds it. *)
    (match srv.accept_thread with Some th -> Thread.join th | None -> ());
    Mutex.lock srv.conns_mutex;
    let open_conns = Hashtbl.fold (fun _ c acc -> c :: acc) srv.conns [] in
    Mutex.unlock srv.conns_mutex;
    List.iter
      (fun c ->
        (try Unix.shutdown c.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        Mutex.lock c.wmutex;
        c.writable <- false;
        Mutex.unlock c.wmutex)
      open_conns;
    Mutex.lock srv.conns_mutex;
    while srv.live_conn_threads > 0 do
      Condition.wait srv.conn_threads_done srv.conns_mutex
    done;
    Mutex.unlock srv.conns_mutex;
    (match srv.metrics_thread with Some th -> Thread.join th | None -> ());
    (* 4. Make the on-disk state cheap to reopen, then close it. *)
    Fun.protect
      ~finally:(fun () ->
        Shards.close srv.shards;
        Registry.set srv.sm.draining 0;
        Mutex.lock srv.stop_mutex;
        srv.stop_done <- true;
        Condition.broadcast srv.stopped;
        Mutex.unlock srv.stop_mutex)
      (fun () -> Shards.checkpoint ?kill srv.shards)
  end
