(** Admission control: per-tenant token buckets in front of one bounded
    queue, with deadline-derived distance budgets.

    The design goal is {e shed, don't collapse}: every request is either
    admitted into a queue whose depth is hard-capped, or refused
    immediately with an explicit reason — never parked on an unbounded
    backlog that grows until latency (and memory) destroy goodput for
    everyone.  Refusals cost one mutex acquisition and no distance
    computation, which is what keeps goodput flat beyond saturation.

    {b Deadline → budget.}  The paper's cost model prices a query in
    distance computations, so a wall-clock deadline converts directly
    into a [Dbh.Query_opts] budget: [remaining × distances_per_second],
    clamped to the tenant class's [max_budget].  The server keeps the
    [distances_per_second] estimate fresh from measured batch
    throughput; a request arriving with little time left is admitted
    with a small budget and returns a truncated-but-useful answer
    instead of blowing its deadline. *)

type tenant_class = {
  rate : float;  (** admissions per second *)
  burst : float;  (** token reserve *)
  max_budget : int;  (** hard cap on the distance budget of one query *)
}

type config = {
  queue_capacity : int;
  default_deadline : float;  (** seconds granted to requests without one *)
  max_deadline : float;  (** client deadlines are clamped to this *)
  default_class : tenant_class;  (** all unconfigured tenants {e share} one bucket *)
  classes : (string * tenant_class) list;  (** per-tenant overrides, own buckets *)
}

val default_class : tenant_class
val default_config : config

(** One admitted unit of work.  [reply] must be called exactly once —
    with the result, or with the shed/timeout response. *)
type item = {
  request : Protocol.request;
  id : int64;
  tenant : string;
  deadline : float;  (** absolute, same clock as [now] arguments *)
  budget : int;  (** distance budget derived at admission *)
  enqueued_at : float;
  reply : Protocol.response -> unit;
}

type verdict =
  | Admitted
  | Shed_rate of float  (** seconds until the tenant's bucket allows one *)
  | Shed_queue  (** queue at capacity *)
  | Shed_draining

type t

val create : ?now:float -> config -> t
(** Raises [Invalid_argument] on a non-positive capacity, deadline or
    tenant-class field. *)

val resolve_deadline : t -> now:float -> deadline_ms:int -> float
(** Absolute deadline for a request: [now] + the client's deadline
    clamped to [max_deadline], or [default_deadline] when the client
    sent none (0). *)

val budget_for : t -> tenant:string -> remaining:float -> requested:int -> int
(** Distance budget for a query with [remaining] seconds to live:
    [requested] when positive, else [remaining × distances_per_second] —
    both clamped to the tenant class's [max_budget], and at least 1. *)

val set_distances_per_second : t -> float -> unit
(** Update the deadline→budget conversion rate (ignored unless positive
    and finite).  Called by the server from measured batch throughput. *)

val distances_per_second : t -> float

val admit : t -> now:float -> item -> verdict
(** Queue capacity, then token bucket, under one lock — a [Shed_queue]
    consumes no token, so queue-full overload cannot also drain the
    tenant's rate allowance.  On [Admitted] the item is queued and a
    waiting worker is woken; on any shed verdict the item is {e not}
    queued and the caller owns the reply. *)

val start_draining : t -> unit
(** All further {!admit} calls return [Shed_draining]; queued items
    remain and workers keep draining them. *)

val pop_batch : t -> max:int -> item list
(** Block until at least one item is available (or the queue is closed),
    then return up to [max] items in arrival order.  Returns [] only
    after {!close} with an empty queue — the worker's signal to exit. *)

val close : t -> unit
(** Wake all waiting workers; {!pop_batch} drains what remains, then
    returns []. *)

val drain_remaining : t -> item list
(** Take everything still queued (for shedding at shutdown). *)

val depth : t -> int

val tenant_tokens : t -> now:float -> (string * float) list
(** Current token reserve per configured class, plus ["default"] — for
    the per-tenant gauges. *)
