(** The [dbh_serve_*] metric set: network-tier counters and gauges
    registered next to the library's own [dbh_*] metrics on one
    {!Dbh_obs.Registry}, so a single [/metrics] scrape shows queries,
    WAL activity and admission behavior together. *)

type t = {
  registry : Dbh_obs.Registry.t;
  connections_total : Dbh_obs.Registry.counter;
  connections_open : Dbh_obs.Registry.gauge;
  connections_killed_total : Dbh_obs.Registry.counter;
      (** idle/slow-loris/oversize/corrupt-stream kills *)
  requests_total : Dbh_obs.Registry.counter;  (** every decoded request frame *)
  accepted_total : Dbh_obs.Registry.counter;  (** admitted into the queue *)
  shed_rate_total : Dbh_obs.Registry.counter;  (** token bucket refusals *)
  shed_queue_total : Dbh_obs.Registry.counter;  (** queue-at-capacity refusals *)
  shed_drain_total : Dbh_obs.Registry.counter;  (** refused while draining *)
  timed_out_total : Dbh_obs.Registry.counter;  (** deadline expired pre-execution *)
  bad_frames_total : Dbh_obs.Registry.counter;  (** unrecoverable framing *)
  bad_requests_total : Dbh_obs.Registry.counter;  (** parse/validation failures *)
  queue_depth : Dbh_obs.Registry.gauge;
  batches_total : Dbh_obs.Registry.counter;
  batch_size : Dbh_obs.Registry.histogram;
  request_seconds : Dbh_obs.Registry.histogram;  (** admission → reply written *)
  draining : Dbh_obs.Registry.gauge;  (** 1 during graceful shutdown *)
  tenant_tokens : (string * Dbh_obs.Registry.gauge) list;
      (** token reserve per configured tenant class, plus ["default"] *)
}

val on : Dbh_obs.Registry.t -> tenants:string list -> t
(** Register the set (names prefixed [dbh_serve_]).  [tenants] are the
    configured class names; a ["default"] gauge is always added.  Raises
    [Invalid_argument] when names are already taken. *)
