module Rng = Dbh_util.Rng

type config = {
  host : string;
  port : int;
  connections : int;
  duration : float;
  rate : float option;
  tenants : (string * float) list;
  deadline_ms : int;
  budget : int;
  probes : int;
  radius : int;
  payloads : string array;
  seed : int;
}

type report = {
  duration : float;
  sent : int;
  ok : int;
  shed : int;
  timed_out : int;
  errors : int;
  qps : float;
  goodput_qps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
  per_tenant : (string * int * int) list;
}

let percentile samples p =
  let n = Array.length samples in
  if n = 0 then Float.nan
  else begin
    let s = Array.copy samples in
    Array.sort compare s;
    let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
    s.(max 0 (min (n - 1) i))
  end

type worker = {
  mutable w_sent : int;
  mutable w_ok : int;
  mutable w_shed : int;
  mutable w_timed_out : int;
  mutable w_errors : int;
  latencies : float list ref;  (* Result replies, seconds *)
  by_tenant : (string, int * int) Hashtbl.t;
}

let pick_tenant rng tenants total_weight =
  if tenants = [] then ""
  else begin
    let r = float_of_int (Rng.int rng 1_000_000) /. 1_000_000. *. total_weight in
    let rec walk acc = function
      | [] -> fst (List.hd tenants)
      | (name, w) :: rest ->
          let acc = acc +. w in
          if r < acc then name else walk acc rest
    in
    walk 0. tenants
  end

let run config =
  if config.connections < 1 then invalid_arg "Loadgen: connections must be >= 1";
  if config.duration <= 0. then invalid_arg "Loadgen: duration must be > 0";
  if Array.length config.payloads = 0 then invalid_arg "Loadgen: no payloads";
  List.iter
    (fun (_, w) ->
      if w <= 0. || Float.is_nan w then
        invalid_arg "Loadgen: tenant weights must be positive")
    config.tenants;
  let total_weight = List.fold_left (fun a (_, w) -> a +. w) 0. config.tenants in
  let per_conn_interval =
    Option.map (fun r -> float_of_int config.connections /. r) config.rate
  in
  let started = Unix.gettimeofday () in
  let t_end = started +. config.duration in
  let workers =
    Array.init config.connections (fun _ ->
        {
          w_sent = 0;
          w_ok = 0;
          w_shed = 0;
          w_timed_out = 0;
          w_errors = 0;
          latencies = ref [];
          by_tenant = Hashtbl.create 8;
        })
  in
  let body i w () =
    let rng = Rng.create (config.seed + (i * 7919)) in
    match
      Client.connect ~host:config.host ~port:config.port
        ~deadline:(Float.min 5. config.duration) ()
    with
    | exception _ -> w.w_errors <- w.w_errors + 1
    | client ->
        let payload_at = ref (Rng.int rng (Array.length config.payloads)) in
        let tick = ref 0 in
        (try
           let continue = ref true in
           while !continue do
             let now = Unix.gettimeofday () in
             if now >= t_end then continue := false
             else begin
               (match per_conn_interval with
               | Some interval ->
                   (* Open loop: hold the arrival schedule; when behind,
                      fire immediately rather than compressing future
                      ticks (no catching up in bursts). *)
                   let due = started +. (float_of_int !tick *. interval) in
                   incr tick;
                   if due > now then Unix.sleepf (Float.min (due -. now) (t_end -. now))
               | None -> ());
               if Unix.gettimeofday () < t_end then begin
                 let tenant = pick_tenant rng config.tenants total_weight in
                 let payload =
                   config.payloads.(!payload_at mod Array.length config.payloads)
                 in
                 incr payload_at;
                 let t0 = Unix.gettimeofday () in
                 w.w_sent <- w.w_sent + 1;
                 let s, o = try Hashtbl.find w.by_tenant tenant with Not_found -> (0, 0) in
                 (match
                    Client.search ~tenant ~deadline_ms:config.deadline_ms
                      ~budget:config.budget ~probes:config.probes
                      ~radius:config.radius client ~payload
                  with
                 | Protocol.Result _ ->
                     w.w_ok <- w.w_ok + 1;
                     Hashtbl.replace w.by_tenant tenant (s + 1, o + 1);
                     w.latencies := (Unix.gettimeofday () -. t0) :: !(w.latencies)
                 | Protocol.Overloaded _ ->
                     w.w_shed <- w.w_shed + 1;
                     Hashtbl.replace w.by_tenant tenant (s + 1, o)
                 | Protocol.Timed_out ->
                     w.w_timed_out <- w.w_timed_out + 1;
                     Hashtbl.replace w.by_tenant tenant (s + 1, o)
                 | _ ->
                     w.w_errors <- w.w_errors + 1;
                     Hashtbl.replace w.by_tenant tenant (s + 1, o)
                 | exception _ ->
                     w.w_errors <- w.w_errors + 1;
                     Hashtbl.replace w.by_tenant tenant (s + 1, o);
                     continue := false)
               end
             end
           done
         with _ -> w.w_errors <- w.w_errors + 1);
        Client.close client
  in
  let threads =
    Array.to_list (Array.mapi (fun i w -> Thread.create (body i w) ()) workers)
  in
  List.iter Thread.join threads;
  let duration = Unix.gettimeofday () -. started in
  let sum f = Array.fold_left (fun a w -> a + f w) 0 workers in
  let sent = sum (fun w -> w.w_sent)
  and ok = sum (fun w -> w.w_ok)
  and shed = sum (fun w -> w.w_shed)
  and timed_out = sum (fun w -> w.w_timed_out)
  and errors = sum (fun w -> w.w_errors) in
  let latencies =
    Array.of_list
      (Array.fold_left (fun acc w -> List.rev_append !(w.latencies) acc) [] workers)
  in
  let ms p = percentile latencies p *. 1000. in
  let per_tenant =
    let merged = Hashtbl.create 8 in
    Array.iter
      (fun w ->
        Hashtbl.iter
          (fun tenant (s, o) ->
            let s0, o0 = try Hashtbl.find merged tenant with Not_found -> (0, 0) in
            Hashtbl.replace merged tenant (s0 + s, o0 + o))
          w.by_tenant)
      workers;
    List.sort compare
      (Hashtbl.fold (fun tenant (s, o) acc -> (tenant, s, o) :: acc) merged [])
  in
  {
    duration;
    sent;
    ok;
    shed;
    timed_out;
    errors;
    qps = float_of_int sent /. duration;
    goodput_qps = float_of_int ok /. duration;
    p50_ms = ms 0.5;
    p90_ms = ms 0.9;
    p99_ms = ms 0.99;
    p999_ms = ms 0.999;
    max_ms =
      (if Array.length latencies = 0 then Float.nan
       else Array.fold_left Float.max neg_infinity latencies *. 1000.);
    per_tenant;
  }

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.3f" f

let report_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"duration\":%.3f,\"sent\":%d,\"ok\":%d,\"shed\":%d,\"timed_out\":%d,\
        \"errors\":%d,\"qps\":%.1f,\"goodput_qps\":%.1f,\"p50_ms\":%s,\
        \"p90_ms\":%s,\"p99_ms\":%s,\"p999_ms\":%s,\"max_ms\":%s,\"per_tenant\":["
       r.duration r.sent r.ok r.shed r.timed_out r.errors r.qps r.goodput_qps
       (json_float r.p50_ms) (json_float r.p90_ms) (json_float r.p99_ms)
       (json_float r.p999_ms) (json_float r.max_ms));
  List.iteri
    (fun i (tenant, s, o) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"tenant\":%S,\"sent\":%d,\"ok\":%d}" tenant s o))
    r.per_tenant;
  Buffer.add_string b "]}";
  Buffer.contents b
