(* Bounded admission queue with per-tenant token buckets.

   One mutex guards the buckets and the queue together: an admission
   decision (refill bucket, take token, check capacity, enqueue) is
   atomic, so the queue bound is exact even with hundreds of connection
   threads admitting concurrently.  Unknown tenants share a single
   default bucket — per-tenant state is bounded by the configuration,
   not by whatever names clients invent. *)

type tenant_class = { rate : float; burst : float; max_budget : int }

type config = {
  queue_capacity : int;
  default_deadline : float;
  max_deadline : float;
  default_class : tenant_class;
  classes : (string * tenant_class) list;
}

let default_class = { rate = 500.; burst = 250.; max_budget = 50_000 }

let default_config =
  {
    queue_capacity = 512;
    default_deadline = 1.0;
    max_deadline = 30.0;
    default_class;
    classes = [];
  }

type item = {
  request : Protocol.request;
  id : int64;
  tenant : string;
  deadline : float;
  budget : int;
  enqueued_at : float;
  reply : Protocol.response -> unit;
}

type verdict = Admitted | Shed_rate of float | Shed_queue | Shed_draining

type t = {
  config : config;
  mutex : Mutex.t;
  not_empty : Condition.t;
  queue : item Queue.t;
  buckets : (string * tenant_class * Bucket.t) list;  (* configured tenants *)
  default_bucket : Bucket.t;
  mutable draining : bool;
  mutable closed : bool;
  dps : float Atomic.t;  (* distances per second, for deadline→budget *)
}

let check_class name (c : tenant_class) =
  if c.rate <= 0. || Float.is_nan c.rate then
    invalid_arg (Printf.sprintf "Admission: class %s: rate must be > 0" name);
  if c.burst < 1. || Float.is_nan c.burst then
    invalid_arg (Printf.sprintf "Admission: class %s: burst must be >= 1" name);
  if c.max_budget < 1 then
    invalid_arg (Printf.sprintf "Admission: class %s: max_budget must be >= 1" name)

let create ?(now = Unix.gettimeofday ()) config =
  if config.queue_capacity < 1 then
    invalid_arg "Admission: queue_capacity must be >= 1";
  if config.default_deadline <= 0. then
    invalid_arg "Admission: default_deadline must be > 0";
  if config.max_deadline < config.default_deadline then
    invalid_arg "Admission: max_deadline must be >= default_deadline";
  check_class "default" config.default_class;
  List.iter (fun (n, c) -> check_class n c) config.classes;
  {
    config;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    queue = Queue.create ();
    buckets =
      List.map
        (fun (n, c) -> (n, c, Bucket.create ~rate:c.rate ~burst:c.burst ~now))
        config.classes;
    default_bucket =
      Bucket.create ~rate:config.default_class.rate ~burst:config.default_class.burst
        ~now;
    draining = false;
    closed = false;
    dps = Atomic.make 50_000.;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let class_and_bucket t tenant =
  match List.find_opt (fun (n, _, _) -> String.equal n tenant) t.buckets with
  | Some (_, c, b) -> (c, b)
  | None -> (t.config.default_class, t.default_bucket)

let resolve_deadline t ~now ~deadline_ms =
  let d =
    if deadline_ms <= 0 then t.config.default_deadline
    else Float.min (float_of_int deadline_ms /. 1000.) t.config.max_deadline
  in
  now +. d

let set_distances_per_second t dps =
  if dps > 0. && Float.is_finite dps then Atomic.set t.dps dps

let distances_per_second t = Atomic.get t.dps

let budget_for t ~tenant ~remaining ~requested =
  let cls, _ = class_and_bucket t tenant in
  let derived =
    if requested > 0 then requested
    else begin
      let by_time = Float.max 0. remaining *. Atomic.get t.dps in
      if by_time >= float_of_int cls.max_budget then cls.max_budget
      else int_of_float by_time
    end
  in
  max 1 (min derived cls.max_budget)

let admit t ~now item =
  locked t (fun () ->
      if t.draining || t.closed then Shed_draining
      else if Queue.length t.queue >= t.config.queue_capacity then
        (* Capacity before the bucket: a queue shed must not burn the
           tenant's token, or sustained queue-full overload would
           double-penalize tenants whose work was never executed. *)
        Shed_queue
      else begin
        let _, bucket = class_and_bucket t item.tenant in
        if not (Bucket.try_take bucket ~now) then
          Shed_rate (Bucket.seconds_until bucket ~now)
        else begin
          Queue.push item t.queue;
          Condition.signal t.not_empty;
          Admitted
        end
      end)

let start_draining t = locked t (fun () -> t.draining <- true)

let pop_batch t ~max =
  locked t (fun () ->
      while Queue.is_empty t.queue && not t.closed do
        Condition.wait t.not_empty t.mutex
      done;
      let rec take acc n =
        if n = 0 || Queue.is_empty t.queue then List.rev acc
        else take (Queue.pop t.queue :: acc) (n - 1)
      in
      take [] (max : int))

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_empty)

let drain_remaining t =
  locked t (fun () ->
      let rec take acc =
        if Queue.is_empty t.queue then List.rev acc else take (Queue.pop t.queue :: acc)
      in
      take [])

let depth t = locked t (fun () -> Queue.length t.queue)

let tenant_tokens t ~now =
  locked t (fun () ->
      List.map (fun (n, _, b) -> (n, Bucket.tokens b ~now)) t.buckets
      @ [ ("default", Bucket.tokens t.default_bucket ~now) ])
