module Durable = Dbh.Online.Durable
module Breaker = Dbh_robust.Breaker
module Pool = Dbh_util.Pool
module Crc32 = Dbh_util.Crc32
module Rng = Dbh_util.Rng

type query = { budget : int; probes : int; radius : int }

type answer = {
  nn : (int * float) option;
  cost : int;
  truncated : bool;
  degraded : bool;
}

type 'a shard = {
  idx : int;
  durable : 'a Durable.t;
  breaker : 'a Breaker.t;
  lock : Mutex.t;  (* serializes writers (and breaker rebuilds) per shard *)
}

type 'a t = {
  shards : 'a shard array;
  n : int;
  encode : 'a -> string;
  mutable closed : bool;
}

let shard_dir dir i = Filename.concat dir (Printf.sprintf "shard-%02d" i)

let open_or_create ?fsync ?breaker_config ?build ?rebuild_factor ~seed ~shards
    ~target_accuracy ~space ~encode ~decode ~dir ?data () =
  if shards < 1 then invalid_arg "Shards: shard count must be >= 1";
  (match data with
  | Some d when Array.length d < shards ->
      invalid_arg
        (Printf.sprintf "Shards: %d data points cannot seed %d shards"
           (Array.length d) shards)
  | _ -> ());
  (* The shard directories create themselves; their parent must exist
     first or a fresh `dbh-serve DIR` dies on mkdir. *)
  Dbh_persist.Layout.ensure_dir dir;
  let rngs = Rng.split_n (Rng.create seed) shards in
  let recoveries = Array.make shards None in
  let open_one i =
    (* Round-robin deal: shard i gets data.(i), data.(i+n), … so every
       fresh shard starts non-empty and the initial global handle of
       data.(j) is exactly j (local j/n interleaved back with shard
       j mod n). *)
    let data_i =
      Option.map
        (fun d ->
          let len = Array.length d in
          Array.init ((len - i + shards - 1) / shards) (fun k ->
              d.((k * shards) + i)))
        data
    in
    let durable, recovery =
      Durable.open_or_create ?fsync ~rng:rngs.(i) ~space ?config:build
        ?rebuild_factor ~target_accuracy ~encode ~decode ~dir:(shard_dir dir i)
        ?data:data_i ()
    in
    recoveries.(i) <- Some recovery;
    {
      idx = i;
      durable;
      breaker = Breaker.create ?config:breaker_config (Durable.online durable);
      lock = Mutex.create ();
    }
  in
  let t =
    {
      shards = Array.init shards open_one;
      n = shards;
      encode;
      closed = false;
    }
  in
  (t, Array.map Option.get recoveries)

let count t = t.n
let size t = Array.fold_left (fun acc s -> acc + Durable.size s.durable) 0 t.shards

let ensure_open t = if t.closed then invalid_arg "Shards: closed"

let global ~n ~shard local = (local * n) + shard
let shard_of t handle = handle mod t.n
let local_of t handle = handle / t.n

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let search_many ?pool t items =
  ensure_open t;
  let m = Array.length items in
  let outcomes = Array.make_matrix t.n m None in
  let run_shard s =
    (* The breaker may force a rebuild mid-search (a write), so the
       whole per-shard query run holds the shard's writer lock. *)
    locked s (fun () ->
        Array.iteri
          (fun q (obj, spec) ->
            let opts =
              Dbh.Query_opts.make ~budget:(max 1 spec.budget)
                ~probes_per_table:(max 1 spec.probes)
                ~hamming_radius:(max 0 spec.radius) ()
            in
            outcomes.(s.idx).(q) <- Some (Breaker.search ~opts s.breaker obj))
          items)
  in
  (match pool with
  | Some pool when t.n > 1 && Pool.size pool > 1 ->
      (* One task per shard, weighted by shard population: the pool
         schedules hot shards first instead of letting one of them gate
         the whole batch from the tail of a size-only layout. *)
      Pool.parallel_for ~chunk:1
        ~cost:(fun i -> Durable.size t.shards.(i).durable)
        pool t.n
        (fun i -> run_shard t.shards.(i))
  | _ -> Array.iter run_shard t.shards);
  Array.init m (fun q ->
      let nn = ref None and cost = ref 0 in
      let truncated = ref false and degraded = ref false in
      Array.iter
        (fun s ->
          match outcomes.(s.idx).(q) with
          | None -> assert false
          | Some (o : _ Breaker.outcome) ->
              cost := !cost + Dbh.Index.total_cost o.result.stats;
              if o.result.truncated then truncated := true;
              if o.served_by = `Linear_scan then degraded := true;
              (match o.result.nn with
              | None -> ()
              | Some (local, d) ->
                  let h = global ~n:t.n ~shard:s.idx local in
                  let better =
                    match !nn with
                    | None -> true
                    | Some (bh, bd) -> d < bd || (d = bd && h < bh)
                  in
                  if better then nn := Some (h, d)))
        t.shards;
      { nn = !nn; cost = !cost; truncated = !truncated; degraded = !degraded })

let insert t obj =
  ensure_open t;
  let i = Crc32.string (t.encode obj) mod t.n in
  let i = if i < 0 then i + t.n else i in
  let s = t.shards.(i) in
  locked s (fun () -> global ~n:t.n ~shard:i (Durable.insert s.durable obj))

let delete t handle =
  ensure_open t;
  if handle < 0 then invalid_arg "Shards.delete: negative handle";
  let s = t.shards.(shard_of t handle) in
  locked s (fun () -> Durable.delete s.durable (local_of t handle))

let get t handle =
  ensure_open t;
  if handle < 0 then invalid_arg "Shards.get: negative handle";
  Durable.get t.shards.(shard_of t handle).durable (local_of t handle)

let checkpoint ?kill t =
  ensure_open t;
  Array.iter
    (fun s ->
      let kill = if s.idx = 0 then kill else None in
      locked s (fun () -> Durable.checkpoint ?kill s.durable))
    t.shards

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter (fun s -> locked s (fun () -> Durable.close s.durable)) t.shards
  end

let wal_ops t =
  Array.fold_left (fun acc s -> acc + Durable.wal_ops s.durable) 0 t.shards

let stats_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"shards\":[";
  Array.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      let online = Durable.online s.durable in
      Buffer.add_string b
        (Printf.sprintf
           "{\"shard\":%d,\"size\":%d,\"generation\":%d,\"wal_ops\":%d,\
            \"rebuilds\":%d,\"breaker\":\"%s\",\"trips\":%d,\"recoveries\":%d,\
            \"fallback_queries\":%d}"
           i (Durable.size s.durable)
           (Durable.generation s.durable)
           (Durable.wal_ops s.durable)
           (Dbh.Online.rebuilds online)
           (Format.asprintf "%a" Breaker.pp_state (Breaker.state s.breaker))
           (Breaker.trips s.breaker)
           (Breaker.recoveries s.breaker)
           (Breaker.fallback_queries s.breaker)))
    t.shards;
  Buffer.add_string b
    (Printf.sprintf "],\"size\":%d,\"wal_ops\":%d}" (size t) (wal_ops t));
  Buffer.contents b
