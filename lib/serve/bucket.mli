(** Token bucket for per-tenant admission.

    Pure arithmetic over an explicit clock — the caller passes [now], so
    admission decisions are deterministic under test and need no
    background refill thread.  Not thread-safe on its own: the admission
    layer serializes access under its queue lock. *)

type t

val create : rate:float -> burst:float -> now:float -> t
(** [rate] tokens accrue per second up to [burst] in reserve; the bucket
    starts full.  Raises [Invalid_argument] unless [rate > 0] and
    [burst >= 1]. *)

val try_take : ?cost:float -> t -> now:float -> bool
(** Refill to [now], then take [cost] (default 1) tokens if available.
    False = shed. *)

val tokens : t -> now:float -> float
(** Current reserve after refilling to [now]. *)

val seconds_until : ?cost:float -> t -> now:float -> float
(** Time until [cost] tokens will be available — the honest
    [retry_after] for an [Overloaded] reply.  0 when available now. *)
