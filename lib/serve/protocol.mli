(** Wire protocol of [dbh-serve]: length-prefixed, CRC'd binary frames.

    Every message travels as one frame:

    {v
    offset 0   magic "DBHS"                      (4 bytes)
    offset 4   kind                              (1 byte)
    offset 5   correlation id, little endian     (8 bytes)
    offset 13  payload length, u32 little endian (4 bytes)
    offset 17  payload                           (length bytes)
    then       CRC-32 of bytes [4, 17+length)    (4 bytes little endian)
    v}

    The CRC covers kind, id, length and payload ({!Dbh_util.Crc32}, the
    same polynomial as the persistence layer), so a flipped bit anywhere
    past the magic fails verification before anything is decoded.  The
    correlation id is chosen by the client and echoed verbatim in the
    response, which lets clients pipeline requests and match replies out
    of order.

    Decoding distinguishes three outcomes with different blast radii:

    - [`Need_more]: the buffer holds a valid frame prefix — keep
      reading.  Every strict prefix of a valid frame decodes to this,
      never to an error and never to a bogus message.
    - [`Corrupt]: framing is unrecoverable (bad magic, CRC mismatch,
      declared length over the limit) — the server replies
      [Bad_request] best-effort and closes the connection, because the
      stream can no longer be resynchronized.
    - A complete frame whose {e payload} fails to parse ({!request_of_frame}
      returns [Error]) — framing is intact, so the server replies
      [Bad_request] and keeps the connection. *)

(** {1 Messages} *)

type request =
  | Ping
  | Search of {
      tenant : string;
      deadline_ms : int;  (** 0 = server default; relative to receipt *)
      budget : int;  (** requested distance budget; 0 = derive from deadline *)
      probes : int;  (** probes per table; 0 = server default *)
      radius : int;  (** Hamming radius; 0 = single-probe *)
      payload : string;  (** object bytes for the server's codec *)
    }
  | Insert of { tenant : string; deadline_ms : int; payload : string }
  | Delete of { tenant : string; deadline_ms : int; handle : int }
  | Stats  (** JSON snapshot of server/shard state *)

type response =
  | Pong
  | Result of {
      found : bool;
      handle : int;  (** global (shard-routed) stable handle *)
      dist : float;
      cost : int;  (** distance computations spent, all shards *)
      truncated : bool;  (** a budget ran out mid-query *)
    }
  | Inserted of { handle : int }
  | Deleted
  | Stats_reply of string
  | Overloaded of { retry_after_ms : int }
      (** Shed by admission control (token bucket, full queue, drain) —
          the request was {e not} executed. *)
  | Bad_request of string
  | Timed_out  (** deadline expired before execution *)
  | Server_error of string

val equal_request : request -> request -> bool
val equal_response : response -> response -> bool
val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit

(** {1 Limits} *)

val header_bytes : int  (** bytes before the payload (17) *)

val overhead_bytes : int  (** header + trailing CRC (21) *)

val default_max_payload : int  (** 1 MiB *)

(** {1 Encoding} *)

val encode_request : id:int64 -> request -> string
val encode_response : id:int64 -> response -> string

(** {1 Decoding} *)

type frame = { kind : int; id : int64; payload : string }

val decode_frame :
  ?max_payload:int ->
  Bytes.t ->
  off:int ->
  len:int ->
  [ `Frame of frame * int  (** consumed bytes *) | `Need_more | `Corrupt of string ]
(** Decode one frame from [bytes[off .. off+len)].  Never raises on any
    input; never reads outside the given window.  [`Frame (f, n)]
    consumed [n] bytes.  A declared payload length above [max_payload]
    is [`Corrupt] immediately — the oversized payload is never
    buffered. *)

val request_of_frame : frame -> (request, string) result
val response_of_frame : frame -> (response, string) result
