(** Hash sharding across N in-process {!Dbh.Online.Durable} shards.

    Each shard lives in its own subdirectory ([shard-00], [shard-01],
    …) with its own WAL, snapshot generations, rng stream and
    {!Dbh_robust.Breaker} — so one shard whose tables go bad degrades to
    its breaker's exact linear scan while the others keep serving from
    their indexes, and a crash recovers shard by shard.

    Writes route by content hash (CRC-32 of the encoded object) so
    resharding is deterministic from the bytes alone; searches fan out
    to {e every} shard and merge the per-shard nearest neighbors, which
    is what nearest-neighbor retrieval under hash placement requires.
    Global handles interleave shard-local ones ([local × n + shard]), so
    a handle names its shard without a lookup table.

    Thread discipline: one writer at a time ({!insert}/{!delete}/
    {!checkpoint} lock per-shard mutexes); {!search_many} may fan shards
    out over a pool, each shard's queries served sequentially on one
    task (the breaker is stateful).  The pool is {e not} handed to the
    shards' own indexes, so a breaker-forced rebuild inside a pool task
    can never re-enter the pool it runs on. *)

type query = {
  budget : int;  (** distance budget for this query (>= 1) *)
  probes : int;  (** probes per table; 0 = default single probe *)
  radius : int;  (** Hamming radius; 0 = single-probe *)
}

type answer = {
  nn : (int * float) option;  (** global handle and exact distance *)
  cost : int;  (** distance computations summed over shards *)
  truncated : bool;  (** some shard ran out of budget *)
  degraded : bool;  (** some shard served by its breaker's linear scan *)
}

type 'a t

val open_or_create :
  ?fsync:bool ->
  ?breaker_config:Dbh_robust.Breaker.config ->
  ?build:Dbh.Builder.config ->
  ?rebuild_factor:float ->
  seed:int ->
  shards:int ->
  target_accuracy:float ->
  space:'a Dbh_space.Space.t ->
  encode:('a -> string) ->
  decode:(string -> 'a) ->
  dir:string ->
  ?data:'a array ->
  unit ->
  'a t * Dbh.Online.Durable.recovery array
(** Open (or create from [data], dealt round-robin so every shard gets a
    non-empty start) [shards] durable shards under [dir].  Raises
    [Invalid_argument] when [shards < 1], or when creating fresh shards
    with fewer data points than shards. *)

val count : 'a t -> int
val size : 'a t -> int  (** alive objects, all shards *)

val search_many : ?pool:Dbh_util.Pool.t -> 'a t -> ('a * query) array -> answer array
(** One merged nearest-neighbor answer per input, in input order.  With
    a pool, shards run in parallel (one task per shard); answers are
    bit-identical to the sequential run. *)

val insert : 'a t -> 'a -> int
(** Journaled insert into the content-hash shard; returns the global
    handle. *)

val delete : 'a t -> int -> unit
(** Journaled delete by global handle (idempotent).  Raises
    [Invalid_argument] on a handle from a different shard count. *)

val get : 'a t -> int -> 'a

val checkpoint : ?kill:Dbh.Online.Durable.kill_point -> 'a t -> unit
(** Checkpoint every shard (compact + snapshot + fresh WAL).  [kill]
    injects a crash inside the {e first} shard's checkpoint, for
    recovery tests. *)

val close : 'a t -> unit  (** close every shard's WAL; idempotent *)

val wal_ops : 'a t -> int  (** replay debt summed over shards *)

val stats_json : 'a t -> string
(** Per-shard JSON: size, generation, WAL debt, rebuilds, breaker
    state/trips/fallbacks. *)
