(** The TCP tier: framed requests over {!Shards}, behind {!Admission}.

    One accept thread hands each connection to its own (OS) thread; the
    connection thread decodes frames under strict limits (payload cap,
    receive timeout, partial-frame deadline against slow loris) and
    either answers trivial requests inline (ping, stats) or offers the
    work to the admission queue.  A single batcher thread pops
    micro-batches, drops entries whose deadline already passed, executes
    searches through {!Shards.search_many} (fanning shards over the
    domain pool) and writes replies back on the owning connection.  The
    measured distance throughput of each batch feeds the admission
    queue's deadline→budget conversion.

    Corrupt streams close the connection; well-framed garbage gets a
    [Bad_request] and the connection lives on; overload gets an explicit
    [Overloaded] with honest retry-after.  {!stop} is the graceful
    drain: stop accepting, let the queue empty (shedding whatever
    outlives the drain window), checkpoint every shard, close. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port — see {!port} *)
  metrics_port : int option;  (** serve Prometheus [/metrics] when set (0 ok) *)
  admission : Admission.config;
  max_payload : int;  (** frame payload cap; larger frames kill the connection *)
  idle_timeout : float;
      (** receive window, seconds: no bytes, or a frame still incomplete,
          for this long kills the connection *)
  max_connections : int;  (** accepted sockets beyond this are closed at once *)
  batch_max : int;  (** micro-batch size cap *)
  drain_timeout : float;  (** seconds {!stop} waits before shedding the queue *)
  so_sndbuf : int option;
      (** per-connection kernel send buffer ([SO_SNDBUF]), bytes.  [None]
          keeps the kernel default.  A small value bounds the kernel
          memory a slow-reading client can pin and makes the send
          timeout trip sooner when a client stops draining replies. *)
}

val default_config : config
(** Loopback, ephemeral port, no metrics listener, default admission,
    1 MiB payloads, 10 s idle, 256 connections, batches of 32, 5 s
    drain, kernel-default send buffer. *)

type 'a t

val start :
  ?pool:Dbh_util.Pool.t ->
  ?registry:Dbh_obs.Registry.t ->
  decode:(string -> 'a) ->
  config ->
  'a Shards.t ->
  'a t
(** Bind, start the accept / batcher / metrics threads, return
    immediately.  [decode] turns request payloads into query objects
    (failures become [Bad_request]).  [registry] receives the
    [dbh_serve_*] metric set (default: a fresh registry); the metrics
    listener exposes whatever else is registered on it too.  The server
    owns [pool] while running: nothing else may submit to it until
    {!stop} returns.  Raises [Unix.Unix_error] when the bind fails. *)

val port : 'a t -> int  (** the bound port (useful with [port = 0]) *)

val metrics_port : 'a t -> int option

val registry : 'a t -> Dbh_obs.Registry.t

val metrics : 'a t -> Serve_metrics.t

val draining : 'a t -> bool

val stop : ?kill:Dbh.Online.Durable.kill_point -> 'a t -> unit
(** Graceful drain, idempotent: stop accepting, shed new work with
    [Overloaded], wait up to [drain_timeout] for the queue to empty then
    shed the rest, join the batcher, close every connection, checkpoint
    every shard ([kill] injects a crash there, for recovery tests) and
    close them.  Returns when everything is down. *)

val wait : 'a t -> unit
(** Block until {!stop} (called from another thread or a signal handler
    flag) has completed. *)
