(** Load generator for [dbh-serve] — shared by [dbh-cli loadgen], the
    serve bench section and the CI smoke job.

    Runs [connections] synchronous clients for [duration] seconds,
    either {e closed-loop} (each connection fires its next search the
    moment the previous reply lands — measures capacity) or {e open-loop}
    ([rate] target QPS spread over the connections, each holding its
    arrival schedule even when replies lag — measures behavior at an
    offered load, which is what saturation and overload tests need).
    Tenants are drawn per-request from the weighted [tenants] mix, so
    one loadgen run exercises several token buckets at once.

    Deterministic given [seed] {e on the generator's side} (tenant and
    payload choices); timings are real. *)

type config = {
  host : string;
  port : int;
  connections : int;
  duration : float;  (** seconds *)
  rate : float option;  (** total target QPS; [None] = closed loop *)
  tenants : (string * float) list;  (** weighted mix; [[]] = anonymous *)
  deadline_ms : int;  (** per-request deadline sent to the server; 0 = default *)
  budget : int;  (** explicit distance budget; 0 = server derives from deadline *)
  probes : int;
  radius : int;
  payloads : string array;  (** encoded query objects, cycled per connection *)
  seed : int;
}

type report = {
  duration : float;  (** wall-clock actually measured *)
  sent : int;
  ok : int;  (** [Result] replies (goodput) *)
  shed : int;  (** [Overloaded] replies *)
  timed_out : int;  (** [Timed_out] replies *)
  errors : int;  (** bad/error replies and transport failures *)
  qps : float;  (** sent / duration *)
  goodput_qps : float;  (** ok / duration *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;  (** latency of [Result] replies only *)
  per_tenant : (string * int * int) list;  (** tenant, sent, ok *)
}

val run : config -> report
(** Raises [Invalid_argument] on a non-positive connection count,
    duration or empty [payloads]; [Unix.Unix_error] when no connection
    can be established at all. *)

val report_json : report -> string
(** One JSON object, keys as in {!report}. *)

val percentile : float array -> float -> float
(** [percentile samples p] with [p] in [0,1]; sorts a copy; [nan] on an
    empty array.  Exposed for the bench's aggregation. *)
