module Retry = Dbh_util.Retry

type t = {
  mutable fd : Unix.file_descr option;
  mutable id : int64;
  mutable buf : Bytes.t;
  mutable len : int;
  mutable parked : (int64 * Protocol.response) list;  (* out-of-order replies *)
}

let connect ?(timeout = 10.) ?(retry = Retry.default) ?deadline ~host ~port () =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let attempt_connect () =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    try
      Unix.connect fd addr;
      (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
      Unix.setsockopt_float fd SO_RCVTIMEO timeout;
      fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  let fd =
    match deadline with
    | None -> attempt_connect ()
    | Some deadline ->
        let started = Unix.gettimeofday () in
        let rec go attempt =
          try attempt_connect ()
          with Unix.Unix_error ((ECONNREFUSED | ENETUNREACH | ETIMEDOUT), _, _) as e
          -> (
            let elapsed = Unix.gettimeofday () -. started in
            match
              Retry.backoff_within ~deadline ~elapsed:(Float.max 0. elapsed)
                retry ~attempt
            with
            | None -> raise e
            | Some d ->
                Unix.sleepf d;
                go (attempt + 1))
        in
        go 1
  in
  { fd = Some fd; id = 1L; buf = Bytes.create 16384; len = 0; parked = [] }

let the_fd t =
  match t.fd with Some fd -> fd | None -> invalid_arg "Client: closed"

let fd t = the_fd t
let next_id t = t.id

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let send_raw t s = write_all (the_fd t) s

let send t req =
  let id = t.id in
  t.id <- Int64.add t.id 1L;
  write_all (the_fd t) (Protocol.encode_request ~id req);
  id

let recv t =
  let fd = the_fd t in
  match t.parked with
  | (id, resp) :: rest ->
      t.parked <- rest;
      (id, resp)
  | [] ->
      let rec read_frame () =
        match
          Protocol.decode_frame t.buf ~off:0 ~len:t.len
        with
        | `Frame (frame, consumed) ->
            Bytes.blit t.buf consumed t.buf 0 (t.len - consumed);
            t.len <- t.len - consumed;
            (match Protocol.response_of_frame frame with
            | Ok resp -> (frame.id, resp)
            | Error msg -> failwith ("Client: bad response: " ^ msg))
        | `Corrupt msg -> failwith ("Client: corrupt stream: " ^ msg)
        | `Need_more ->
            if t.len = Bytes.length t.buf then begin
              let nbuf = Bytes.create (2 * Bytes.length t.buf) in
              Bytes.blit t.buf 0 nbuf 0 t.len;
              t.buf <- nbuf
            end;
            let n = Unix.read fd t.buf t.len (Bytes.length t.buf - t.len) in
            if n = 0 then raise End_of_file;
            t.len <- t.len + n;
            read_frame ()
      in
      read_frame ()

let readable ?(timeout = 0.) t =
  match t.parked with
  | _ :: _ -> true
  | [] -> (
      match Protocol.decode_frame t.buf ~off:0 ~len:t.len with
      | `Frame _ | `Corrupt _ -> true  (* recv returns (or raises) at once *)
      | `Need_more -> (
          match Unix.select [ the_fd t ] [] [] timeout with
          | [], _, _ -> false
          | _ -> true
          | exception Unix.Unix_error (EINTR, _, _) -> false))

let request t req =
  let id = send t req in
  let rec await () =
    let rid, resp = recv t in
    if Int64.equal rid id then resp
    else begin
      t.parked <- t.parked @ [ (rid, resp) ];
      await ()
    end
  in
  await ()

let ping t =
  match request t Protocol.Ping with
  | Protocol.Pong -> true
  | _ -> false
  | exception _ -> false

let search ?(tenant = "") ?(deadline_ms = 0) ?(budget = 0) ?(probes = 0)
    ?(radius = 0) t ~payload =
  request t (Protocol.Search { tenant; deadline_ms; budget; probes; radius; payload })

let insert ?(tenant = "") ?(deadline_ms = 0) t ~payload =
  request t (Protocol.Insert { tenant; deadline_ms; payload })

let delete ?(tenant = "") ?(deadline_ms = 0) t ~handle =
  request t (Protocol.Delete { tenant; deadline_ms; handle })

let stats t = request t Protocol.Stats

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
