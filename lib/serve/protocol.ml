(* Binary wire framing for dbh-serve.

   Reuses the persistence layer's primitives — Crc32 for the frame
   checksum, Binio for payload bodies — so the server's corruption
   detection is the same machinery the snapshot chaos tests already
   hammer.  Decoding is total: any byte string yields `Need_more,
   `Corrupt or a verified frame, never an exception. *)

module Binio = Dbh_util.Binio
module Crc32 = Dbh_util.Crc32

let magic = "DBHS"
let header_bytes = 17 (* magic 4 + kind 1 + id 8 + length 4 *)
let overhead_bytes = header_bytes + 4
let default_max_payload = 1 lsl 20

type request =
  | Ping
  | Search of {
      tenant : string;
      deadline_ms : int;
      budget : int;
      probes : int;
      radius : int;
      payload : string;
    }
  | Insert of { tenant : string; deadline_ms : int; payload : string }
  | Delete of { tenant : string; deadline_ms : int; handle : int }
  | Stats

type response =
  | Pong
  | Result of { found : bool; handle : int; dist : float; cost : int; truncated : bool }
  | Inserted of { handle : int }
  | Deleted
  | Stats_reply of string
  | Overloaded of { retry_after_ms : int }
  | Bad_request of string
  | Timed_out
  | Server_error of string

let equal_request (a : request) (b : request) = a = b
let equal_response (a : response) (b : response) = a = b

let pp_request ppf = function
  | Ping -> Format.fprintf ppf "Ping"
  | Search { tenant; deadline_ms; budget; probes; radius; payload } ->
      Format.fprintf ppf
        "Search{tenant=%S; deadline_ms=%d; budget=%d; probes=%d; radius=%d; %d payload \
         bytes}"
        tenant deadline_ms budget probes radius (String.length payload)
  | Insert { tenant; deadline_ms; payload } ->
      Format.fprintf ppf "Insert{tenant=%S; deadline_ms=%d; %d payload bytes}" tenant
        deadline_ms (String.length payload)
  | Delete { tenant; deadline_ms; handle } ->
      Format.fprintf ppf "Delete{tenant=%S; deadline_ms=%d; handle=%d}" tenant deadline_ms
        handle
  | Stats -> Format.fprintf ppf "Stats"

let pp_response ppf = function
  | Pong -> Format.fprintf ppf "Pong"
  | Result { found; handle; dist; cost; truncated } ->
      Format.fprintf ppf "Result{found=%b; handle=%d; dist=%g; cost=%d; truncated=%b}"
        found handle dist cost truncated
  | Inserted { handle } -> Format.fprintf ppf "Inserted{handle=%d}" handle
  | Deleted -> Format.fprintf ppf "Deleted"
  | Stats_reply s -> Format.fprintf ppf "Stats_reply(%d bytes)" (String.length s)
  | Overloaded { retry_after_ms } ->
      Format.fprintf ppf "Overloaded{retry_after_ms=%d}" retry_after_ms
  | Bad_request msg -> Format.fprintf ppf "Bad_request(%S)" msg
  | Timed_out -> Format.fprintf ppf "Timed_out"
  | Server_error msg -> Format.fprintf ppf "Server_error(%S)" msg

(* ------------------------------------------------------------- kinds *)

let kind_ping = 0x01
let kind_search = 0x02
let kind_insert = 0x03
let kind_delete = 0x04
let kind_stats = 0x05
let kind_pong = 0x11
let kind_result = 0x12
let kind_inserted = 0x13
let kind_deleted = 0x14
let kind_stats_reply = 0x15
let kind_overloaded = 0x21
let kind_bad_request = 0x22
let kind_timed_out = 0x23
let kind_server_error = 0x24

(* ---------------------------------------------------- payload bodies *)

(* Tenant names are bounded so a hostile client cannot smuggle a huge
   allocation through an otherwise small frame. *)
let max_tenant_bytes = 256

let body_of_request = function
  | Ping -> (kind_ping, "")
  | Search { tenant; deadline_ms; budget; probes; radius; payload } ->
      let buf = Buffer.create (String.length payload + 64) in
      Binio.write_string buf tenant;
      Binio.write_int buf deadline_ms;
      Binio.write_int buf budget;
      Binio.write_int buf probes;
      Binio.write_int buf radius;
      Binio.write_string buf payload;
      (kind_search, Buffer.contents buf)
  | Insert { tenant; deadline_ms; payload } ->
      let buf = Buffer.create (String.length payload + 32) in
      Binio.write_string buf tenant;
      Binio.write_int buf deadline_ms;
      Binio.write_string buf payload;
      (kind_insert, Buffer.contents buf)
  | Delete { tenant; deadline_ms; handle } ->
      let buf = Buffer.create 32 in
      Binio.write_string buf tenant;
      Binio.write_int buf deadline_ms;
      Binio.write_int buf handle;
      (kind_delete, Buffer.contents buf)
  | Stats -> (kind_stats, "")

let body_of_response = function
  | Pong -> (kind_pong, "")
  | Result { found; handle; dist; cost; truncated } ->
      let buf = Buffer.create 40 in
      Binio.write_int buf (if found then 1 else 0);
      Binio.write_int buf handle;
      Binio.write_float buf dist;
      Binio.write_int buf cost;
      Binio.write_int buf (if truncated then 1 else 0);
      (kind_result, Buffer.contents buf)
  | Inserted { handle } ->
      let buf = Buffer.create 8 in
      Binio.write_int buf handle;
      (kind_inserted, Buffer.contents buf)
  | Deleted -> (kind_deleted, "")
  | Stats_reply s ->
      let buf = Buffer.create (String.length s + 8) in
      Binio.write_string buf s;
      (kind_stats_reply, Buffer.contents buf)
  | Overloaded { retry_after_ms } ->
      let buf = Buffer.create 8 in
      Binio.write_int buf retry_after_ms;
      (kind_overloaded, Buffer.contents buf)
  | Bad_request msg ->
      let buf = Buffer.create (String.length msg + 8) in
      Binio.write_string buf msg;
      (kind_bad_request, Buffer.contents buf)
  | Timed_out -> (kind_timed_out, "")
  | Server_error msg ->
      let buf = Buffer.create (String.length msg + 8) in
      Binio.write_string buf msg;
      (kind_server_error, Buffer.contents buf)

(* Body parsers run under Binio's reader, which raises Corrupt on any
   truncation or impossible length — caught at the [of_frame] boundary
   and converted into a per-request error, never an exception. *)

let read_tenant r =
  let tenant = Binio.read_string r in
  if String.length tenant > max_tenant_bytes then
    raise (Binio.Corrupt "tenant name too long");
  tenant

let finish r v =
  if not (Binio.at_end r) then raise (Binio.Corrupt "trailing bytes in body");
  v

let non_negative what n = if n < 0 then raise (Binio.Corrupt (what ^ " negative")) else n

let request_of_body kind body =
  let r = Binio.reader body in
  if kind = kind_ping then finish r Ping
  else if kind = kind_search then begin
    let tenant = read_tenant r in
    let deadline_ms = non_negative "deadline_ms" (Binio.read_int r) in
    let budget = non_negative "budget" (Binio.read_int r) in
    let probes = non_negative "probes" (Binio.read_int r) in
    let radius = non_negative "radius" (Binio.read_int r) in
    let payload = Binio.read_string r in
    finish r (Search { tenant; deadline_ms; budget; probes; radius; payload })
  end
  else if kind = kind_insert then begin
    let tenant = read_tenant r in
    let deadline_ms = non_negative "deadline_ms" (Binio.read_int r) in
    let payload = Binio.read_string r in
    finish r (Insert { tenant; deadline_ms; payload })
  end
  else if kind = kind_delete then begin
    let tenant = read_tenant r in
    let deadline_ms = non_negative "deadline_ms" (Binio.read_int r) in
    let handle = non_negative "handle" (Binio.read_int r) in
    finish r (Delete { tenant; deadline_ms; handle })
  end
  else if kind = kind_stats then finish r Stats
  else raise (Binio.Corrupt (Printf.sprintf "unknown request kind 0x%02x" kind))

let response_of_body kind body =
  let r = Binio.reader body in
  if kind = kind_pong then finish r Pong
  else if kind = kind_result then begin
    let found = Binio.read_int r <> 0 in
    let handle = Binio.read_int r in
    let dist = Binio.read_float r in
    let cost = non_negative "cost" (Binio.read_int r) in
    let truncated = Binio.read_int r <> 0 in
    finish r (Result { found; handle; dist; cost; truncated })
  end
  else if kind = kind_inserted then begin
    let handle = non_negative "handle" (Binio.read_int r) in
    finish r (Inserted { handle })
  end
  else if kind = kind_deleted then finish r Deleted
  else if kind = kind_stats_reply then finish r (Stats_reply (Binio.read_string r))
  else if kind = kind_overloaded then begin
    let retry_after_ms = non_negative "retry_after_ms" (Binio.read_int r) in
    finish r (Overloaded { retry_after_ms })
  end
  else if kind = kind_bad_request then finish r (Bad_request (Binio.read_string r))
  else if kind = kind_timed_out then finish r Timed_out
  else if kind = kind_server_error then finish r (Server_error (Binio.read_string r))
  else raise (Binio.Corrupt (Printf.sprintf "unknown response kind 0x%02x" kind))

(* ------------------------------------------------------------ framing *)

let encode_frame ~kind ~id body =
  let len = String.length body in
  let b = Bytes.create (overhead_bytes + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr (kind land 0xff));
  Bytes.set_int64_le b 5 id;
  Bytes.set_int32_le b 13 (Int32.of_int len);
  Bytes.blit_string body 0 b header_bytes len;
  let s = Bytes.unsafe_to_string b in
  (* CRC over kind..payload; the trailer slot is still zero here, which
     is fine because the checksum stops before it. *)
  let crc = Crc32.sub s ~pos:4 ~len:(header_bytes - 4 + len) in
  Bytes.set_int32_le b (header_bytes + len) (Int32.of_int crc);
  Bytes.unsafe_to_string b

let encode_request ~id req =
  let kind, body = body_of_request req in
  encode_frame ~kind ~id body

let encode_response ~id resp =
  let kind, body = body_of_response resp in
  encode_frame ~kind ~id body

type frame = { kind : int; id : int64; payload : string }

let decode_frame ?(max_payload = default_max_payload) buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    `Corrupt "decode window out of bounds"
  else begin
    (* Check whatever prefix of the magic is visible first, so garbage
       streams die immediately instead of stalling on `Need_more. *)
    let magic_visible = min len 4 in
    let magic_ok = ref true in
    for i = 0 to magic_visible - 1 do
      if Bytes.get buf (off + i) <> magic.[i] then magic_ok := false
    done;
    if not !magic_ok then `Corrupt "bad magic"
    else if len < header_bytes then `Need_more
    else begin
      let plen = Int32.to_int (Bytes.get_int32_le buf (off + 13)) land 0xffffffff in
      if plen > max_payload then
        `Corrupt (Printf.sprintf "declared payload %d exceeds limit %d" plen max_payload)
      else begin
        let total = overhead_bytes + plen in
        if len < total then `Need_more
        else begin
          let crc_stored =
            Int32.to_int (Bytes.get_int32_le buf (off + header_bytes + plen))
            land 0xffffffff
          in
          let crc =
            Crc32.sub
              (Bytes.unsafe_to_string buf)
              ~pos:(off + 4)
              ~len:(header_bytes - 4 + plen)
          in
          if crc <> crc_stored then `Corrupt "frame checksum mismatch"
          else begin
            let kind = Char.code (Bytes.get buf (off + 4)) in
            let id = Bytes.get_int64_le buf (off + 5) in
            let payload = Bytes.sub_string buf (off + header_bytes) plen in
            `Frame ({ kind; id; payload }, total)
          end
        end
      end
    end
  end

let request_of_frame f =
  match request_of_body f.kind f.payload with
  | req -> Ok req
  | exception Binio.Corrupt msg -> Error msg

let response_of_frame f =
  match response_of_body f.kind f.payload with
  | resp -> Ok resp
  | exception Binio.Corrupt msg -> Error msg
