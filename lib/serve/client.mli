(** Blocking client for the [dbh-serve] wire protocol — used by the CLI,
    the load generator and the test suites.

    One connection, synchronous by default ({!request} = send + wait for
    the matching correlation id), with the pipelined primitives
    ({!send}/{!recv}) exposed for tests that interleave.  Also exposes
    {!send_raw} and {!fd} so chaos tests can write torn, truncated or
    bit-flipped bytes on a real connection. *)

type t

val connect :
  ?timeout:float ->
  ?retry:Dbh_util.Retry.policy ->
  ?deadline:float ->
  host:string ->
  port:int ->
  unit ->
  t
(** TCP connect.  [timeout] (default 10 s) is the per-reply receive
    window.  When [deadline] (seconds of connect budget) is given,
    refused connections are retried under [retry] (default
    {!Dbh_util.Retry.default}) with {!Dbh_util.Retry.backoff_within}
    capping every sleep to the remaining budget — so a client racing a
    server's bind never waits past its deadline.  Raises the last
    [Unix.Unix_error] when the budget runs out. *)

val request : t -> Protocol.request -> Protocol.response
(** Send and wait for the reply with the matching id (out-of-order
    replies for other ids are parked, not lost).  Raises [End_of_file]
    when the server closes mid-reply and [Failure] on framing errors. *)

val ping : t -> bool
(** [request Ping] returned [Pong]; false on connection failure. *)

val search :
  ?tenant:string ->
  ?deadline_ms:int ->
  ?budget:int ->
  ?probes:int ->
  ?radius:int ->
  t ->
  payload:string ->
  Protocol.response

val insert : ?tenant:string -> ?deadline_ms:int -> t -> payload:string -> Protocol.response
val delete : ?tenant:string -> ?deadline_ms:int -> t -> handle:int -> Protocol.response
val stats : t -> Protocol.response

(** {1 Pipelining} *)

val send : t -> Protocol.request -> int64
(** Write one request frame, returning its correlation id. *)

val recv : t -> int64 * Protocol.response
(** Next reply off the wire (or parked), in arrival order. *)

val readable : ?timeout:float -> t -> bool
(** Would {!recv} return promptly?  True when a parked reply or a
    buffered frame is already in hand, or the socket becomes readable
    within [timeout] (default 0, a pure poll).  Lets a pipelining caller
    interleave sends without committing to a blocking read. *)

(** {1 Chaos hooks} *)

val send_raw : t -> string -> unit
(** Write raw bytes as-is. *)

val fd : t -> Unix.file_descr
val next_id : t -> int64  (** the id {!send} would use next *)

val close : t -> unit  (** idempotent *)
