module Registry = Dbh_obs.Registry

type t = {
  registry : Registry.t;
  connections_total : Registry.counter;
  connections_open : Registry.gauge;
  connections_killed_total : Registry.counter;
  requests_total : Registry.counter;
  accepted_total : Registry.counter;
  shed_rate_total : Registry.counter;
  shed_queue_total : Registry.counter;
  shed_drain_total : Registry.counter;
  timed_out_total : Registry.counter;
  bad_frames_total : Registry.counter;
  bad_requests_total : Registry.counter;
  queue_depth : Registry.gauge;
  batches_total : Registry.counter;
  batch_size : Registry.histogram;
  request_seconds : Registry.histogram;
  draining : Registry.gauge;
  tenant_tokens : (string * Registry.gauge) list;
}

let on registry ~tenants =
  let c name help = Registry.counter registry ~help ("dbh_serve_" ^ name) in
  let g name help = Registry.gauge registry ~help ("dbh_serve_" ^ name) in
  let tenant_names =
    (* "default" is the shared bucket of every unconfigured tenant. *)
    List.filter (fun n -> n <> "default") tenants @ [ "default" ]
  in
  {
    registry;
    connections_total = c "connections_total" "connections ever accepted";
    connections_open = g "connections_open" "connections currently open";
    connections_killed_total =
      c "connections_killed_total"
        "connections killed for idling, slow frames, oversize frames or corrupt streams";
    requests_total = c "requests_total" "request frames decoded";
    accepted_total = c "accepted_total" "requests admitted into the work queue";
    shed_rate_total = c "shed_rate_total" "requests shed by a tenant token bucket";
    shed_queue_total = c "shed_queue_total" "requests shed because the queue was full";
    shed_drain_total = c "shed_drain_total" "requests shed during graceful drain";
    timed_out_total = c "timed_out_total" "requests whose deadline expired before execution";
    bad_frames_total = c "bad_frames_total" "unrecoverable framing errors (connection closed)";
    bad_requests_total = c "bad_requests_total" "well-framed requests that failed to parse";
    queue_depth = g "queue_depth" "admitted requests waiting for a worker";
    batches_total = c "batches_total" "micro-batches executed";
    batch_size =
      Registry.histogram registry ~help:"requests per micro-batch"
        ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
        "dbh_serve_batch_size";
    request_seconds =
      Registry.histogram registry ~help:"admission to reply-written latency"
        "dbh_serve_request_seconds";
    draining = g "draining" "1 while gracefully draining";
    tenant_tokens =
      List.map
        (fun n ->
          ( n,
            Registry.gauge registry ~help:"token reserve (rounded down)"
              ~labels:[ ("tenant", n) ] "dbh_serve_tenant_tokens" ))
        tenant_names;
  }
