type t = {
  rate : float;
  burst : float;
  mutable level : float;
  mutable last : float;  (* clock of the last refill *)
}

let create ~rate ~burst ~now =
  if rate <= 0. || Float.is_nan rate then invalid_arg "Bucket.create: rate must be > 0";
  if burst < 1. || Float.is_nan burst then invalid_arg "Bucket.create: burst must be >= 1";
  { rate; burst; level = burst; last = now }

let refill t ~now =
  (* A clock that jumped backwards must not mint tokens or freeze the
     bucket: clamp the elapsed time at zero and adopt the new clock. *)
  let elapsed = Float.max 0. (now -. t.last) in
  t.level <- Float.min t.burst (t.level +. (elapsed *. t.rate));
  t.last <- now

let try_take ?(cost = 1.) t ~now =
  refill t ~now;
  if t.level >= cost then begin
    t.level <- t.level -. cost;
    true
  end
  else false

let tokens t ~now =
  refill t ~now;
  t.level

let seconds_until ?(cost = 1.) t ~now =
  refill t ~now;
  if t.level >= cost then 0. else (cost -. t.level) /. t.rate
