module Rng = Dbh_util.Rng
module Geom = Dbh_metrics.Geom
module Space = Dbh_space.Space

type instance = {
  label : int;
  points : Geom.point array;
}

type params = {
  num_points : int;
  control_jitter : float;
  rotation_sigma : float;
  log_scale_sigma : float;
  translation_sigma : float;
  warp_strength : float;
  noise_sigma : float;
}

let default_params =
  {
    num_points = 32;
    control_jitter = 0.03;
    rotation_sigma = 0.12;
    log_scale_sigma = 0.12;
    translation_sigma = 0.04;
    warp_strength = 0.25;
    noise_sigma = 0.012;
  }

(* A smooth random monotone warp of [0,1]: u + a·sin(π f u)/(π f) stays
   monotone for |a| < 1.  Composing two such terms gives varied profiles
   while preserving monotonicity. *)
let make_time_warp rng strength =
  let a1 = Rng.float_in rng (-.strength) strength in
  let f1 = float_of_int (Rng.int_in rng 1 3) in
  let a2 = Rng.float_in rng (-.strength) strength in
  let f2 = float_of_int (Rng.int_in rng 2 5) in
  fun u ->
    let v =
      u
      +. (a1 /. (Float.pi *. f1) *. sin (Float.pi *. f1 *. u))
      +. (a2 /. (Float.pi *. f2) *. sin (Float.pi *. f2 *. u))
    in
    Float.max 0. (Float.min 1. v)

let generate ~rng ?(params = default_params) label =
  if params.num_points < 4 then invalid_arg "Pen_digits.generate: num_points too small";
  let template = Digit_templates.flattened label in
  (* Jitter control points, then apply a random similarity transform. *)
  let theta = Rng.gaussian ~sigma:params.rotation_sigma rng in
  let scale = exp (Rng.gaussian ~sigma:params.log_scale_sigma rng) in
  let dx = Rng.gaussian ~sigma:params.translation_sigma rng in
  let dy = Rng.gaussian ~sigma:params.translation_sigma rng in
  let center = Geom.point 0.5 0.5 in
  let controls =
    Array.map
      (fun pt ->
        let jittered =
          Geom.point
            (pt.Geom.x +. Rng.gaussian ~sigma:params.control_jitter rng)
            (pt.Geom.y +. Rng.gaussian ~sigma:params.control_jitter rng)
        in
        let rel = Geom.sub jittered center in
        let placed = Geom.add center (Geom.scale scale (Geom.rotate theta rel)) in
        Geom.point (placed.Geom.x +. dx) (placed.Geom.y +. dy))
      template
  in
  (* Dense arc-length resampling, then a monotone time warp picks the
     actual pen positions: same shape, different speed profile. *)
  let dense_n = 4 * params.num_points in
  let dense = Geom.resample dense_n controls in
  let warp = make_time_warp rng params.warp_strength in
  let points =
    Array.init params.num_points (fun i ->
        let u = float_of_int i /. float_of_int (params.num_points - 1) in
        let w = warp u in
        let pos = w *. float_of_int (dense_n - 1) in
        let lo = int_of_float (Float.floor pos) in
        let hi = min (lo + 1) (dense_n - 1) in
        let frac = pos -. float_of_int lo in
        let pt = Geom.add dense.(lo) (Geom.scale frac (Geom.sub dense.(hi) dense.(lo))) in
        Geom.point
          (pt.Geom.x +. Rng.gaussian ~sigma:params.noise_sigma rng)
          (pt.Geom.y +. Rng.gaussian ~sigma:params.noise_sigma rng))
  in
  { label; points }

let generate_set ~rng ?(params = default_params) count =
  if count < 1 then invalid_arg "Pen_digits.generate_set: count must be positive";
  Array.init count (fun i -> generate ~rng ~params (i mod Digit_templates.num_classes))

let trajectory_cost d = Array.length d.points

let space =
  Space.make ~item_cost:trajectory_cost ~name:"pen-digits/DTW" (fun a b ->
      Dbh_metrics.Dtw.points a.points b.points)

let space_banded w =
  Space.make ~item_cost:trajectory_cost
    ~name:(Printf.sprintf "pen-digits/DTW(band=%d)" w)
    (fun a b -> Dbh_metrics.Dtw.points ~band:w a.points b.points)
