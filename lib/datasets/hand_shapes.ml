module Rng = Dbh_util.Rng
module Geom = Dbh_metrics.Geom
module Space = Dbh_space.Space

type instance = {
  label : int;
  orientation : float;
  points : Geom.point array;
}

let num_classes = 20

type finger_state = Extended | Half | Folded

(* 20 hand-shape classes: thumb state plus four finger states, chosen for
   variety (counting poses, fist, open hand, pointing...). *)
let configurations =
  [|
    (Extended, [| Extended; Extended; Extended; Extended |]);
    (Folded, [| Folded; Folded; Folded; Folded |]);
    (Folded, [| Extended; Folded; Folded; Folded |]);
    (Folded, [| Extended; Extended; Folded; Folded |]);
    (Folded, [| Extended; Extended; Extended; Folded |]);
    (Folded, [| Extended; Extended; Extended; Extended |]);
    (Extended, [| Folded; Folded; Folded; Folded |]);
    (Extended, [| Extended; Folded; Folded; Folded |]);
    (Extended, [| Folded; Folded; Folded; Extended |]);
    (Half, [| Half; Half; Half; Half |]);
    (Extended, [| Half; Half; Half; Half |]);
    (Folded, [| Half; Extended; Extended; Half |]);
    (Extended, [| Extended; Half; Half; Extended |]);
    (Folded, [| Folded; Extended; Extended; Folded |]);
    (Half, [| Extended; Extended; Extended; Extended |]);
    (Half, [| Extended; Folded; Extended; Folded |]);
    (Folded, [| Half; Half; Folded; Folded |]);
    (Extended, [| Extended; Extended; Folded; Extended |]);
    (Half, [| Folded; Half; Half; Folded |]);
    (Extended, [| Half; Extended; Half; Folded |]);
  |]

let finger_length = function Extended -> 0.5 | Half -> 0.28 | Folded -> 0.1

let palm_rx = 0.32
let palm_ry = 0.4

(* Contour points of one hand at the canonical orientation, in drawing
   order (palm boundary counterclockwise, then fingers base-to-tip). *)
let canonical_points label =
  if label < 0 || label >= num_classes then invalid_arg "Hand_shapes: label out of range";
  let thumb, fingers = configurations.(label) in
  let palm =
    Array.init 26 (fun i ->
        let t = 2. *. Float.pi *. float_of_int i /. 26. in
        Geom.point (palm_rx *. cos t) (palm_ry *. sin t))
  in
  (* Finger base angles measured from +x axis: four fingers fan over the
     top of the palm, thumb off the side. *)
  let finger_angles = [| 0.30 *. Float.pi; 0.42 *. Float.pi; 0.55 *. Float.pi; 0.68 *. Float.pi |] in
  let thumb_angle = -0.05 *. Float.pi in
  let finger_pts angle state extra_bend =
    let len = finger_length state in
    let base = Geom.point (palm_rx *. cos angle) (palm_ry *. sin angle) in
    let dir = Geom.point (cos angle) (sin angle) in
    let n = match state with Extended -> 8 | Half -> 5 | Folded -> 2 in
    Array.init n (fun i ->
        let t = float_of_int (i + 1) /. float_of_int n in
        let along = Geom.add base (Geom.scale (t *. len) dir) in
        (* Slight sideways bend grows towards the tip. *)
        let side = Geom.point (-.sin angle) (cos angle) in
        Geom.add along (Geom.scale (extra_bend *. t *. t) side))
  in
  let finger_arrays =
    Array.to_list
      (Array.mapi
         (fun i state -> finger_pts finger_angles.(i) state (0.03 *. float_of_int (i - 1)))
         fingers)
  in
  let thumb_pts = finger_pts thumb_angle thumb (-0.08) in
  Array.concat (palm :: thumb_pts :: finger_arrays)

let clean ~rng ~label ~orientation =
  ignore rng;
  { label; orientation; points = Geom.rotate_all orientation (canonical_points label) }

let database ~rng ~rotations_per_class =
  if rotations_per_class < 1 then invalid_arg "Hand_shapes.database: need >= 1 rotation";
  let out =
    Array.init (num_classes * rotations_per_class) (fun idx ->
        let label = idx / rotations_per_class in
        let r = idx mod rotations_per_class in
        let orientation = 2. *. Float.pi *. float_of_int r /. float_of_int rotations_per_class in
        clean ~rng ~label ~orientation)
  in
  out

type noise = {
  jitter_sigma : float;
  occlusion : float;
  clutter : float;
}

let default_noise = { jitter_sigma = 0.02; occlusion = 0.15; clutter = 0.15 }

let query ~rng ?(noise = default_noise) () =
  let label = Rng.int rng num_classes in
  let orientation = Rng.float rng (2. *. Float.pi) in
  let base = Geom.rotate_all orientation (canonical_points label) in
  let n = Array.length base in
  (* Occlusion: drop a contiguous run of contour points. *)
  let dropped = int_of_float (noise.occlusion *. float_of_int n) in
  let start = Rng.int rng n in
  let keep =
    Array.of_list
      (List.filteri
         (fun i _ ->
           let offset = (i - start + n) mod n in
           offset >= dropped)
         (Array.to_list base))
  in
  let jittered =
    Array.map
      (fun (p : Geom.point) ->
        Geom.point
          (p.Geom.x +. Rng.gaussian ~sigma:noise.jitter_sigma rng)
          (p.Geom.y +. Rng.gaussian ~sigma:noise.jitter_sigma rng))
      keep
  in
  let clutter_n = int_of_float (noise.clutter *. float_of_int n) in
  let clutter =
    Array.init clutter_n (fun _ ->
        Geom.point (Rng.float_in rng (-1.1) 1.1) (Rng.float_in rng (-1.1) 1.1))
  in
  { label; orientation; points = Array.append jittered clutter }

let queries ~rng ?(noise = default_noise) count =
  if count < 1 then invalid_arg "Hand_shapes.queries: count must be positive";
  Array.init count (fun _ -> query ~rng ~noise ())

let space =
  Space.make
    ~item_cost:(fun s -> Array.length s.points)
    ~name:"hands/chamfer"
    (fun a b -> Dbh_metrics.Chamfer.symmetric a.points b.points)
