module Rng = Dbh_util.Rng

type instance = {
  label : int;
  sequence : string;
}

type params = {
  length : int;
  point_mutations : int;
  indels : int;
}

let default_params = { length = 80; point_mutations = 6; indels = 2 }

let alphabet = "ACGT"

let random_base rng = alphabet.[Rng.int rng 4]

let random_sequence rng len = String.init len (fun _ -> random_base rng)

let mutate ~rng ?(params = default_params) seq =
  let buf = Bytes.of_string seq in
  for _ = 1 to params.point_mutations do
    if Bytes.length buf > 0 then
      Bytes.set buf (Rng.int rng (Bytes.length buf)) (random_base rng)
  done;
  let s = ref (Bytes.to_string buf) in
  for _ = 1 to params.indels do
    let n = String.length !s in
    if Rng.bool rng || n = 0 then begin
      (* insertion *)
      let pos = Rng.int rng (n + 1) in
      s := String.sub !s 0 pos ^ String.make 1 (random_base rng) ^ String.sub !s pos (n - pos)
    end
    else begin
      (* deletion *)
      let pos = Rng.int rng n in
      s := String.sub !s 0 pos ^ String.sub !s (pos + 1) (n - pos - 1)
    end
  done;
  !s

let generate_set ~rng ?(params = default_params) ~num_families count =
  if num_families < 1 || count < 1 then invalid_arg "Dna.generate_set";
  if params.length < 4 then invalid_arg "Dna.generate_set: ancestor too short";
  let ancestors = Array.init num_families (fun _ -> random_sequence rng params.length) in
  Array.init count (fun i ->
      let label = i mod num_families in
      { label; sequence = mutate ~rng ~params ancestors.(label) })

let sequence_cost s = String.length s.sequence

let global_space =
  Dbh_space.Space.make ~item_cost:sequence_cost ~name:"dna/nw-global" (fun a b ->
      Dbh_metrics.Alignment.global_distance a.sequence b.sequence)

let local_space =
  Dbh_space.Space.make ~item_cost:sequence_cost ~name:"dna/sw-local" (fun a b ->
      Dbh_metrics.Alignment.local_distance a.sequence b.sequence)
