module Space = Dbh_space.Space

type policy = Raise | Skip | Clamp

type anomaly = Nan | Pos_infinite | Neg_infinite | Negative | Exn

exception Invalid_distance of string

type t = {
  policy : policy;
  space_name : string;
  mutable calls : int;
  mutable nan : int;
  mutable pos_inf : int;
  mutable neg_inf : int;
  mutable negative : int;
  mutable exn : int;
}

let policy t = t.policy
let calls t = t.calls

let count t = function
  | Nan -> t.nan
  | Pos_infinite -> t.pos_inf
  | Neg_infinite -> t.neg_inf
  | Negative -> t.negative
  | Exn -> t.exn

let anomalies t = t.nan + t.pos_inf + t.neg_inf + t.negative + t.exn

let anomaly_rate t =
  if t.calls = 0 then 0. else float_of_int (anomalies t) /. float_of_int t.calls

let reset t =
  t.calls <- 0;
  t.nan <- 0;
  t.pos_inf <- 0;
  t.neg_inf <- 0;
  t.negative <- 0;
  t.exn <- 0

let anomaly_name = function
  | Nan -> "nan"
  | Pos_infinite -> "+inf"
  | Neg_infinite -> "-inf"
  | Negative -> "negative"
  | Exn -> "exn"

let tally t = function
  | Nan -> t.nan <- t.nan + 1
  | Pos_infinite -> t.pos_inf <- t.pos_inf + 1
  | Neg_infinite -> t.neg_inf <- t.neg_inf + 1
  | Negative -> t.negative <- t.negative + 1
  | Exn -> t.exn <- t.exn + 1

(* Value substituted for an anomalous distance, per policy.  Skip makes
   the pair maximally far apart; Clamp repairs sign errors but cannot
   invent a value for NaN or a raised exception. *)
let resolve t kind detail =
  tally t kind;
  match (t.policy, kind) with
  | Raise, _ ->
      raise
        (Invalid_distance
           (Printf.sprintf "%s: %s distance (%s)" t.space_name (anomaly_name kind) detail))
  | Skip, _ -> infinity
  | Clamp, (Neg_infinite | Negative) -> 0.
  | Clamp, (Nan | Pos_infinite | Exn) -> infinity

let wrap ?(policy = Skip) space =
  let t =
    {
      policy;
      space_name = space.Space.name;
      calls = 0;
      nan = 0;
      pos_inf = 0;
      neg_inf = 0;
      negative = 0;
      exn = 0;
    }
  in
  let distance x y =
    t.calls <- t.calls + 1;
    match space.Space.distance x y with
    | d when Float.is_nan d -> resolve t Nan "NaN"
    | d when d = infinity -> resolve t Pos_infinite "+infinity"
    | d when d = neg_infinity -> resolve t Neg_infinite "-infinity"
    | d when d < 0. -> resolve t Negative (Printf.sprintf "%g" d)
    | d -> d
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception e when Dbh.Budget.is_exhausted_exn e -> raise e
    | exception e -> resolve t Exn (Printexc.to_string e)
  in
  ({ Space.name = "guarded:" ^ space.Space.name; distance }, t)

let pp ppf t =
  Format.fprintf ppf "calls=%d anomalies=%d (%.1f%%)" t.calls (anomalies t)
    (100. *. anomaly_rate t);
  let parts =
    List.filter
      (fun (_, n) -> n > 0)
      [
        ("nan", t.nan);
        ("+inf", t.pos_inf);
        ("-inf", t.neg_inf);
        ("negative", t.negative);
        ("exn", t.exn);
      ]
  in
  if parts <> [] then begin
    Format.fprintf ppf ":";
    List.iter (fun (name, n) -> Format.fprintf ppf " %s=%d" name n) parts
  end
