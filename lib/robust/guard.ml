module Space = Dbh_space.Space

type policy = Raise | Skip | Clamp

type anomaly = Nan | Pos_infinite | Neg_infinite | Negative | Exn

exception Invalid_distance of string

(* Counters are atomic so guarded spaces stay exact when distance calls
   come from several domains at once (parallel build, batched queries);
   the breaker's windowed deltas rely on these tallies never
   undercounting. *)
type t = {
  policy : policy;
  space_name : string;
  calls_ : int Atomic.t;
  nan_ : int Atomic.t;
  pos_inf_ : int Atomic.t;
  neg_inf_ : int Atomic.t;
  negative_ : int Atomic.t;
  exn_ : int Atomic.t;
}

let policy t = t.policy
let calls t = Atomic.get t.calls_

let count t = function
  | Nan -> Atomic.get t.nan_
  | Pos_infinite -> Atomic.get t.pos_inf_
  | Neg_infinite -> Atomic.get t.neg_inf_
  | Negative -> Atomic.get t.negative_
  | Exn -> Atomic.get t.exn_

let anomalies t =
  Atomic.get t.nan_ + Atomic.get t.pos_inf_ + Atomic.get t.neg_inf_
  + Atomic.get t.negative_ + Atomic.get t.exn_

let anomaly_rate t =
  if calls t = 0 then 0. else float_of_int (anomalies t) /. float_of_int (calls t)

let reset t =
  Atomic.set t.calls_ 0;
  Atomic.set t.nan_ 0;
  Atomic.set t.pos_inf_ 0;
  Atomic.set t.neg_inf_ 0;
  Atomic.set t.negative_ 0;
  Atomic.set t.exn_ 0

let anomaly_name = function
  | Nan -> "nan"
  | Pos_infinite -> "+inf"
  | Neg_infinite -> "-inf"
  | Negative -> "negative"
  | Exn -> "exn"

let tally t kind =
  (match kind with
  | Nan -> Atomic.incr t.nan_
  | Pos_infinite -> Atomic.incr t.pos_inf_
  | Neg_infinite -> Atomic.incr t.neg_inf_
  | Negative -> Atomic.incr t.negative_
  | Exn -> Atomic.incr t.exn_);
  match Dbh_obs.Metrics.get () with
  | None -> ()
  | Some m ->
      Dbh_obs.Registry.inc
        (match kind with
        | Nan -> m.Dbh_obs.Metrics.guard_anomalies_nan_total
        | Pos_infinite -> m.Dbh_obs.Metrics.guard_anomalies_pos_inf_total
        | Neg_infinite -> m.Dbh_obs.Metrics.guard_anomalies_neg_inf_total
        | Negative -> m.Dbh_obs.Metrics.guard_anomalies_negative_total
        | Exn -> m.Dbh_obs.Metrics.guard_anomalies_exn_total)

(* Value substituted for an anomalous distance, per policy.  Skip makes
   the pair maximally far apart; Clamp repairs sign errors but cannot
   invent a value for NaN or a raised exception. *)
let resolve t kind detail =
  tally t kind;
  match (t.policy, kind) with
  | Raise, _ ->
      raise
        (Invalid_distance
           (Printf.sprintf "%s: %s distance (%s)" t.space_name (anomaly_name kind) detail))
  | Skip, _ -> infinity
  | Clamp, (Neg_infinite | Negative) -> 0.
  | Clamp, (Nan | Pos_infinite | Exn) -> infinity

let wrap ?(policy = Skip) space =
  let t =
    {
      policy;
      space_name = space.Space.name;
      calls_ = Atomic.make 0;
      nan_ = Atomic.make 0;
      pos_inf_ = Atomic.make 0;
      neg_inf_ = Atomic.make 0;
      negative_ = Atomic.make 0;
      exn_ = Atomic.make 0;
    }
  in
  let distance x y =
    Atomic.incr t.calls_;
    (match Dbh_obs.Metrics.get () with
    | None -> ()
    | Some m -> Dbh_obs.Registry.inc m.Dbh_obs.Metrics.guard_calls_total);
    match space.Space.distance x y with
    | d when Float.is_nan d -> resolve t Nan "NaN"
    | d when d = infinity -> resolve t Pos_infinite "+infinity"
    | d when d = neg_infinity -> resolve t Neg_infinite "-infinity"
    | d when d < 0. -> resolve t Negative (Printf.sprintf "%g" d)
    | d -> d
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception e when Dbh.Budget.is_exhausted_exn e -> raise e
    | exception e -> resolve t Exn (Printexc.to_string e)
  in
  ({ Space.name = "guarded:" ^ space.Space.name; distance; item_cost = space.Space.item_cost }, t)

let pp ppf t =
  Format.fprintf ppf "calls=%d anomalies=%d (%.1f%%)" (calls t) (anomalies t)
    (100. *. anomaly_rate t);
  let parts =
    List.filter
      (fun (_, n) -> n > 0)
      [
        ("nan", Atomic.get t.nan_);
        ("+inf", Atomic.get t.pos_inf_);
        ("-inf", Atomic.get t.neg_inf_);
        ("negative", Atomic.get t.negative_);
        ("exn", Atomic.get t.exn_);
      ]
  in
  if parts <> [] then begin
    Format.fprintf ppf ":";
    List.iter (fun (name, n) -> Format.fprintf ppf " %s=%d" name n) parts
  end
