(** Circuit breaker with graceful degradation for a self-maintaining DBH
    index.

    A DBH index is only as good as its hash tables: a spell of anomalous
    distances (see {!Guard}) pollutes bucket keys at insert time and can
    collapse retrieval quality long after the distance service recovers,
    and a degenerate distance collapses the tables structurally
    ({!Dbh.Diagnostics.healthy}).  Rather than serve silently bad
    answers, the breaker watches both signals and degrades gracefully:

    {v Closed ──(anomaly rate / unhealthy tables)──► Open
       Open ──(cooldown elapsed; index rebuilt)──► Half_open
       Half_open ──(probes clean)──► Closed   (recovery)
       Half_open ──(probes still bad)──► Open v}

    - {b Closed}: queries go to the index.  Every [window] queries the
      guard's anomaly rate over that window and the index's structural
      health are evaluated; a breach trips the breaker.
    - {b Open}: queries are served by an {e exact linear scan} over the
      alive objects through the (guarded) space — expensive but correct,
      and immune to table pollution.  After [open_cooldown] fallback
      queries the breaker forces a full {!Dbh.Online.rebuild_now} and
      moves to Half_open.
    - {b Half_open}: the next [half_open_probes] queries are served by
      the rebuilt index while being watched; a clean run closes the
      breaker (recovery), further anomalies re-open it.

    All transitions are driven by query traffic — no background thread,
    consistent with the library's deterministic, single-threaded style. *)

type state = Closed | Open | Half_open

type config = {
  window : int;  (** closed-state queries per health evaluation (default 20) *)
  anomaly_threshold : float;
      (** trip when the windowed per-distance-call anomaly rate exceeds
          this (default 0.02) *)
  max_bucket_fraction : float;
      (** structural-health knob forwarded to
          {!Dbh.Diagnostics.healthy} (default 0.5) *)
  open_cooldown : int;
      (** fallback queries served before attempting a rebuild (default 20) *)
  half_open_probes : int;  (** probe queries that must run clean (default 10) *)
  cooldown_backoff : Dbh_util.Retry.policy option;
      (** when set, the open cooldown is {!Dbh_util.Retry.backoff} of
          the policy at the number of trips since the last recovery
          (read as fallback queries, rounded, at least 1) instead of the
          fixed [open_cooldown] — a relapsing index earns exponentially
          longer cooldowns before the next rebuild-and-probe.  Default
          [None] (historical fixed cooldown). *)
}

val default_config : config

type 'a t

type 'a outcome = {
  result : 'a Dbh.Online.result;
  served_by : [ `Index | `Linear_scan ];
  state_after : state;
}

val create : ?config:config -> ?guard:Guard.t -> 'a Dbh.Online.t -> 'a t
(** Wrap an online index.  [guard] is the counter handle of the guarded
    space the index was created over; without it only structural health
    can trip the breaker.  Raises [Invalid_argument] on non-positive
    window/cooldown/probe counts or thresholds outside ([0,1]). *)

val search : ?opts:Dbh.Query_opts.t -> 'a t -> 'a -> 'a outcome
(** Serve one query according to the current state (see above).
    [opts.budget] applies to whichever path serves the query, including
    the linear-scan fallback; [opts.metrics]/[opts.trace] instrument
    both paths (fallback queries report [levels_probed = 0] and record
    a [Linear_fallback] trace event; state transitions record
    [Breaker_state]).  [opts.scratch] is reused by index-served queries
    (the linear-scan fallback needs no scratch).  [opts.pool] is
    ignored. *)

val state : 'a t -> state
val trips : 'a t -> int
(** Transitions into [Open] (including Half_open relapses). *)

val recoveries : 'a t -> int
(** Transitions from [Half_open] back to [Closed]. *)

val fallback_queries : 'a t -> int
(** Queries served by the exact linear scan. *)

val pp_state : Format.formatter -> state -> unit

val search_batch : ?opts:Dbh.Query_opts.t -> 'a t -> 'a array -> 'a outcome array
(** One {!search} per element, in input order, sharing the breaker's
    state machine: outcome [i] reflects transitions caused by queries
    [0..i-1], exactly as a hand-written loop over {!search} would.
    Deliberately sequential ([opts.pool] is ignored): the breaker is a
    stateful health monitor, not a data-parallel kernel. *)
