(** Hardened wrapper over a black-box distance measure.

    DBH treats the distance as a black box (paper Sec. III), and a
    production black box misbehaves: DTW on a malformed series returns
    NaN, a chamfer kernel raises, a buggy feature pipeline yields
    negative or infinite values.  Raw anomalies are poison — a single NaN
    silently corrupts bucket keys and candidate ranking, and one raised
    exception aborts a whole query.

    [Guard] validates {e every} distance evaluation, tallies anomalies in
    per-kind counters (cheap enough to leave on in production — the
    observability the breaker and health endpoints read), and applies a
    configurable policy to each offending value. *)

type policy =
  | Raise  (** fail fast: raise {!Invalid_distance} on the first anomaly *)
  | Skip
      (** substitute [+∞]: the pair is treated as maximally far apart, so
          anomalous candidates can never win a ranking — the safe default
          for serving *)
  | Clamp
      (** salvage what has an obvious repair: negative and [-∞] values
          clamp to [0.] (preserving the "close" signal of a sign bug);
          NaN and exceptions still map to [+∞] like [Skip] *)

type anomaly = Nan | Pos_infinite | Neg_infinite | Negative | Exn

exception Invalid_distance of string
(** Raised under the [Raise] policy; the message names the space and the
    anomaly.  Counters are updated before raising. *)

type t
(** Shared mutable counters of one guarded space (thread through
    observability endpoints). *)

val wrap : ?policy:policy -> 'a Dbh_space.Space.t -> 'a Dbh_space.Space.t * t
(** [wrap ~policy space] is a space computing the same distances but
    validating every result, plus the counter handle.  Default policy is
    [Skip].  [Out_of_memory] and [Stack_overflow] are never swallowed,
    and budget-exhaustion signals ({!Dbh.Budget.Exhausted}) pass through
    untouched. *)

val policy : t -> policy
val calls : t -> int
(** Total distance evaluations requested through the guard. *)

val count : t -> anomaly -> int
val anomalies : t -> int
(** Sum over all anomaly kinds. *)

val anomaly_rate : t -> float
(** [anomalies / calls] over the guard's lifetime ([0.] before any
    call).  Windowed rates are the caller's job: snapshot {!calls} and
    {!anomalies} and difference them. *)

val reset : t -> unit
(** Zero every counter. *)

val pp : Format.formatter -> t -> unit
(** One-line counter rendering, e.g.
    ["calls=812 anomalies=49 (6.0%): nan=41 exn=8"]. *)

val anomaly_name : anomaly -> string
