(** Deterministic fault injection for black-box distance measures.

    Wraps a space so that each distance evaluation may — with configured
    probabilities, driven by an explicit RNG so runs are reproducible from
    a seed — return NaN, raise an exception, return a negative value,
    perturb the true value, or stall (a bounded busy-loop standing in for
    a slow remote call).  Tests and benchmarks use it to exercise the
    whole pipeline (guards, budgets, the circuit breaker) under realistic
    failure, with the same failures on every run.

    The configuration is mutable at runtime ({!set_config}), which models
    a transient outage: create the index while healthy, flip faults on to
    watch the breaker trip, flip them off to watch it recover. *)

type config = {
  nan_prob : float;  (** P(return NaN) *)
  exn_prob : float;  (** P(raise {!Injected}) *)
  negative_prob : float;  (** P(return a negative value) *)
  perturb_prob : float;  (** P(multiplicatively perturb the true value) *)
  perturb_scale : float;
      (** relative perturbation amplitude: value scales by a factor
          uniform in [1 ± perturb_scale] *)
  latency_prob : float;  (** P(stall before answering) *)
  latency_spin : int;  (** busy-loop iterations per injected stall *)
}

val quiet : config
(** All fault probabilities zero (perturb_scale 0.25, latency_spin 10_000
    as defaults for when the knobs are turned up). *)

val faults :
  ?nan:float -> ?exn_:float -> ?negative:float -> ?perturb:float -> ?latency:float ->
  unit -> config
(** {!quiet} with the given probabilities switched on. *)

exception Injected of string
(** The exception thrown by injected failures. *)

type t
(** Handle to one wrapped space: its live configuration and injection
    counters. *)

val wrap : rng:Dbh_util.Rng.t -> ?config:config -> 'a Dbh_space.Space.t -> 'a Dbh_space.Space.t * t
(** [wrap ~rng space] is the fault-injecting space plus its handle.
    Default config is {!quiet} — wrap early, enable faults when the test
    wants them.  The fault assigned to a call is a pure function of a
    seed drawn from [rng] at wrap time, the argument pair, and how many
    times that pair has been evaluated — not of global call order — so
    the fault pattern is reproducible even when the space is shared
    across domains and evaluations interleave differently from run to
    run. *)

val config : t -> config
val set_config : t -> config -> unit
val disable : t -> unit
(** [disable t] is [set_config t quiet] (keeps counters). *)

val calls : t -> int
val injected : t -> int
(** Total faults injected (all kinds, including stalls and
    perturbations). *)

val injected_nan : t -> int
val injected_exn : t -> int
val injected_negative : t -> int
val perturbed : t -> int
val stalled : t -> int
