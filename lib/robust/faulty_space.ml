module Rng = Dbh_util.Rng
module Space = Dbh_space.Space

type config = {
  nan_prob : float;
  exn_prob : float;
  negative_prob : float;
  perturb_prob : float;
  perturb_scale : float;
  latency_prob : float;
  latency_spin : int;
}

let quiet =
  {
    nan_prob = 0.;
    exn_prob = 0.;
    negative_prob = 0.;
    perturb_prob = 0.;
    perturb_scale = 0.25;
    latency_prob = 0.;
    latency_spin = 10_000;
  }

let faults ?(nan = 0.) ?(exn_ = 0.) ?(negative = 0.) ?(perturb = 0.) ?(latency = 0.) () =
  {
    quiet with
    nan_prob = nan;
    exn_prob = exn_;
    negative_prob = negative;
    perturb_prob = perturb;
    latency_prob = latency;
  }

exception Injected of string

(* [lock] serializes the occurrence table and counters, so tallies stay
   exact even when the wrapped space is called from several domains (the
   underlying distance itself runs outside the lock). *)
type t = {
  base : int64;
  lock : Mutex.t;
  seen : (int * int, int) Hashtbl.t;
  mutable config : config;
  mutable calls : int;
  mutable nan : int;
  mutable exn : int;
  mutable negative : int;
  mutable perturbed : int;
  mutable stalled : int;
}

let check_prob name p =
  if Float.is_nan p || p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Faulty_space: %s must be in [0,1]" name)

let validate c =
  check_prob "nan_prob" c.nan_prob;
  check_prob "exn_prob" c.exn_prob;
  check_prob "negative_prob" c.negative_prob;
  check_prob "perturb_prob" c.perturb_prob;
  check_prob "latency_prob" c.latency_prob

let config t = t.config

let set_config t c =
  validate c;
  t.config <- c

let disable t = t.config <- quiet
let calls t = t.calls
let injected t = t.nan + t.exn + t.negative + t.perturbed + t.stalled
let injected_nan t = t.nan
let injected_exn t = t.exn
let injected_negative t = t.negative
let perturbed t = t.perturbed
let stalled t = t.stalled

let spin n =
  (* Deterministic stand-in for a stalled remote distance service; the
     accumulator escapes through opaque_identity so the loop survives
     optimization. *)
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i
  done;
  ignore (Sys.opaque_identity !acc)

(* splitmix64 finalizer: full-avalanche scramble of one 64-bit word. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

(* Uniform in [0,1) as a pure function of (seed, argument pair, how many
   times that pair has been evaluated, stream).  Because no shared rng
   stream is consumed, the fault assigned to a given call does not depend
   on how calls from concurrent domains interleave: parallel and
   sequential runs of the same workload fault the same evaluations. *)
let uniform t ~hx ~hy ~occurrence ~stream =
  let open Int64 in
  let z = t.base in
  let z = mix64 (add z (mul (of_int hx) 0x9E3779B97F4A7C15L)) in
  let z = mix64 (add z (mul (of_int hy) 0xBF58476D1CE4E5B9L)) in
  let z = mix64 (add z (mul (of_int occurrence) 0x94D049BB133111EBL)) in
  let z = mix64 (add z (of_int stream)) in
  to_float (shift_right_logical z 11) *. 0x1p-53

(* What one call should do, decided under the lock so the occurrence
   table and counters stay serialized; the actual distance work happens
   outside. *)
type outcome = Pass | Return_nan | Raise_exn | Negate | Perturb of float

let wrap ~rng ?(config = quiet) space =
  validate config;
  let t =
    {
      base = Rng.bits64 rng;
      lock = Mutex.create ();
      seen = Hashtbl.create 1024;
      config;
      calls = 0;
      nan = 0;
      exn = 0;
      negative = 0;
      perturbed = 0;
      stalled = 0;
    }
  in
  let distance x y =
    let hx = Hashtbl.hash x and hy = Hashtbl.hash y in
    Mutex.lock t.lock;
    t.calls <- t.calls + 1;
    let occurrence =
      match Hashtbl.find_opt t.seen (hx, hy) with None -> 0 | Some n -> n
    in
    Hashtbl.replace t.seen (hx, hy) (occurrence + 1);
    let c = t.config in
    (* The draws depend only on (pair, occurrence), never on the live
       configuration, so the fault pattern stays aligned with the call
       sequence even when the config changes mid-run. *)
    let u_latency = uniform t ~hx ~hy ~occurrence ~stream:0 in
    let u = uniform t ~hx ~hy ~occurrence ~stream:1 in
    let stall = u_latency < c.latency_prob in
    if stall then t.stalled <- t.stalled + 1;
    let outcome =
      if u < c.nan_prob then begin
        t.nan <- t.nan + 1;
        Return_nan
      end
      else if u < c.nan_prob +. c.exn_prob then begin
        t.exn <- t.exn + 1;
        Raise_exn
      end
      else if u < c.nan_prob +. c.exn_prob +. c.negative_prob then begin
        t.negative <- t.negative + 1;
        Negate
      end
      else if u < c.nan_prob +. c.exn_prob +. c.negative_prob +. c.perturb_prob then begin
        t.perturbed <- t.perturbed + 1;
        let u_p = uniform t ~hx ~hy ~occurrence ~stream:2 in
        Perturb (1. +. (c.perturb_scale *. ((2. *. u_p) -. 1.)))
      end
      else Pass
    in
    Mutex.unlock t.lock;
    if stall then spin c.latency_spin;
    match outcome with
    | Return_nan -> Float.nan
    | Raise_exn -> raise (Injected (Printf.sprintf "injected failure in %s" space.Space.name))
    | Negate -> -.Float.abs (space.Space.distance x y) -. 1.
    | Perturb factor -> space.Space.distance x y *. Float.abs factor
    | Pass -> space.Space.distance x y
  in
  ({ Space.name = "faulty:" ^ space.Space.name; distance; item_cost = space.Space.item_cost }, t)
