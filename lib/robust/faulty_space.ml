module Rng = Dbh_util.Rng
module Space = Dbh_space.Space

type config = {
  nan_prob : float;
  exn_prob : float;
  negative_prob : float;
  perturb_prob : float;
  perturb_scale : float;
  latency_prob : float;
  latency_spin : int;
}

let quiet =
  {
    nan_prob = 0.;
    exn_prob = 0.;
    negative_prob = 0.;
    perturb_prob = 0.;
    perturb_scale = 0.25;
    latency_prob = 0.;
    latency_spin = 10_000;
  }

let faults ?(nan = 0.) ?(exn_ = 0.) ?(negative = 0.) ?(perturb = 0.) ?(latency = 0.) () =
  {
    quiet with
    nan_prob = nan;
    exn_prob = exn_;
    negative_prob = negative;
    perturb_prob = perturb;
    latency_prob = latency;
  }

exception Injected of string

type t = {
  rng : Rng.t;
  mutable config : config;
  mutable calls : int;
  mutable nan : int;
  mutable exn : int;
  mutable negative : int;
  mutable perturbed : int;
  mutable stalled : int;
}

let check_prob name p =
  if Float.is_nan p || p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Faulty_space: %s must be in [0,1]" name)

let validate c =
  check_prob "nan_prob" c.nan_prob;
  check_prob "exn_prob" c.exn_prob;
  check_prob "negative_prob" c.negative_prob;
  check_prob "perturb_prob" c.perturb_prob;
  check_prob "latency_prob" c.latency_prob

let config t = t.config

let set_config t c =
  validate c;
  t.config <- c

let disable t = t.config <- quiet
let calls t = t.calls
let injected t = t.nan + t.exn + t.negative + t.perturbed + t.stalled
let injected_nan t = t.nan
let injected_exn t = t.exn
let injected_negative t = t.negative
let perturbed t = t.perturbed
let stalled t = t.stalled

let spin n =
  (* Deterministic stand-in for a stalled remote distance service; the
     accumulator escapes through opaque_identity so the loop survives
     optimization. *)
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i
  done;
  ignore (Sys.opaque_identity !acc)

let wrap ~rng ?(config = quiet) space =
  validate config;
  let t = { rng; config; calls = 0; nan = 0; exn = 0; negative = 0; perturbed = 0; stalled = 0 } in
  let distance x y =
    t.calls <- t.calls + 1;
    let c = t.config in
    (* Two draws per call regardless of configuration, so the fault
       pattern stays aligned with the call sequence even when the config
       changes mid-run. *)
    let u_latency = Rng.float t.rng 1. in
    let u = Rng.float t.rng 1. in
    if u_latency < c.latency_prob then begin
      t.stalled <- t.stalled + 1;
      spin c.latency_spin
    end;
    if u < c.nan_prob then begin
      t.nan <- t.nan + 1;
      Float.nan
    end
    else if u < c.nan_prob +. c.exn_prob then begin
      t.exn <- t.exn + 1;
      raise (Injected (Printf.sprintf "injected failure in %s" space.Space.name))
    end
    else if u < c.nan_prob +. c.exn_prob +. c.negative_prob then begin
      t.negative <- t.negative + 1;
      -.Float.abs (space.Space.distance x y) -. 1.
    end
    else if u < c.nan_prob +. c.exn_prob +. c.negative_prob +. c.perturb_prob then begin
      t.perturbed <- t.perturbed + 1;
      let factor = 1. +. (c.perturb_scale *. Rng.float_in t.rng (-1.) 1.) in
      space.Space.distance x y *. Float.abs factor
    end
    else space.Space.distance x y
  in
  ({ Space.name = "faulty:" ^ space.Space.name; distance }, t)
