module Space = Dbh_space.Space
module Online = Dbh.Online
module Budget = Dbh.Budget
module Diagnostics = Dbh.Diagnostics

type state = Closed | Open | Half_open

type config = {
  window : int;
  anomaly_threshold : float;
  max_bucket_fraction : float;
  open_cooldown : int;
  half_open_probes : int;
  cooldown_backoff : Dbh_util.Retry.policy option;
}

let default_config =
  {
    window = 20;
    anomaly_threshold = 0.02;
    max_bucket_fraction = 0.5;
    open_cooldown = 20;
    half_open_probes = 10;
    cooldown_backoff = None;
  }

type 'a t = {
  online : 'a Online.t;
  guard : Guard.t option;
  config : config;
  mutable state : state;
  mutable trips : int;
  mutable recoveries : int;
  mutable fallbacks : int;
  (* Trips since the last recovery — the attempt number the cooldown
     backoff policy (when configured) is evaluated at. *)
  mutable consecutive_trips : int;
  (* Closed: guard counters at the start of the current window. *)
  mutable window_queries : int;
  mutable window_calls0 : int;
  mutable window_anoms0 : int;
  (* Open: fallback queries left before attempting a rebuild. *)
  mutable cooldown_left : int;
  (* Half_open: probes left and guard counters at probing start. *)
  mutable probes_left : int;
  mutable probe_calls0 : int;
  mutable probe_anoms0 : int;
}

type 'a outcome = {
  result : 'a Online.result;
  served_by : [ `Index | `Linear_scan ];
  state_after : state;
}

let state t = t.state
let trips t = t.trips
let recoveries t = t.recoveries
let fallback_queries t = t.fallbacks

let pp_state ppf s =
  Format.pp_print_string ppf
    (match s with Closed -> "closed" | Open -> "open" | Half_open -> "half-open")

let guard_snapshot t =
  match t.guard with None -> (0, 0) | Some g -> (Guard.calls g, Guard.anomalies g)

(* Anomalies per distance evaluation since the given snapshot. *)
let rate_since t (calls0, anoms0) =
  match t.guard with
  | None -> 0.
  | Some g ->
      let dc = Guard.calls g - calls0 in
      let da = Guard.anomalies g - anoms0 in
      if dc <= 0 then 0. else float_of_int da /. float_of_int dc

let structurally_unhealthy t =
  Diagnostics.hierarchical_stats (Online.index t.online)
  |> Array.exists (fun (_, s) ->
         not (Diagnostics.healthy ~max_bucket_fraction:t.config.max_bucket_fraction s))

let begin_window t =
  t.window_queries <- 0;
  let calls, anoms = guard_snapshot t in
  t.window_calls0 <- calls;
  t.window_anoms0 <- anoms

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let record_state ?trace t =
  match trace with
  | Some tr ->
      Dbh_obs.Trace.record tr (Dbh_obs.Trace.Breaker_state { state = state_name t.state })
  | None -> ()

let record_counter pick =
  match Dbh_obs.Metrics.get () with
  | None -> ()
  | Some m -> Dbh_obs.Registry.inc (pick m)

let trip ?trace t =
  t.state <- Open;
  t.trips <- t.trips + 1;
  t.consecutive_trips <- t.consecutive_trips + 1;
  (* A relapsing index earns exponentially longer cooldowns (in
     fallback queries) before the next rebuild-and-probe attempt; the
     default policy-free config keeps the historical fixed cooldown. *)
  t.cooldown_left <-
    (match t.config.cooldown_backoff with
    | None -> t.config.open_cooldown
    | Some policy ->
        max 1
          (int_of_float
             (Float.round (Dbh_util.Retry.backoff policy ~attempt:t.consecutive_trips))));
  record_counter (fun m -> m.Dbh_obs.Metrics.breaker_trips_total);
  record_state ?trace t

let create ?(config = default_config) ?guard online =
  if config.window < 1 then invalid_arg "Breaker.create: window must be >= 1";
  if config.open_cooldown < 1 then invalid_arg "Breaker.create: open_cooldown must be >= 1";
  if config.half_open_probes < 1 then
    invalid_arg "Breaker.create: half_open_probes must be >= 1";
  if
    Float.is_nan config.anomaly_threshold
    || config.anomaly_threshold < 0. || config.anomaly_threshold >= 1.
  then invalid_arg "Breaker.create: anomaly_threshold must be in [0,1)";
  let t =
    {
      online;
      guard;
      config;
      state = Closed;
      trips = 0;
      recoveries = 0;
      fallbacks = 0;
      consecutive_trips = 0;
      window_queries = 0;
      window_calls0 = 0;
      window_anoms0 = 0;
      cooldown_left = 0;
      probes_left = 0;
      probe_calls0 = 0;
      probe_anoms0 = 0;
    }
  in
  begin_window t;
  t

(* Exact scan over the alive objects, through the (guarded) space: slow
   but structurally immune — bucket pollution cannot touch it, and under
   a Skip guard anomalous pairs simply rank last.  The scan still counts
   as a served query in the metrics (levels_probed 0 marks that the
   index was bypassed), so cost accounting covers degraded traffic. *)
let serve_linear ?budget ?metrics ?trace t q =
  t.fallbacks <- t.fallbacks + 1;
  record_counter (fun m -> m.Dbh_obs.Metrics.breaker_fallback_queries_total);
  let metrics = Dbh_obs.Metrics.resolve metrics in
  let t0 = match metrics with Some _ -> Dbh_obs.Metrics.now () | None -> 0. in
  let space = Online.space t.online in
  let best = ref None in
  let scanned = ref 0 in
  (try
     List.iter
       (fun h ->
         (match budget with Some b -> Budget.charge b | None -> ());
         incr scanned;
         let d = space.Space.distance q (Online.get t.online h) in
         match !best with
         | Some (_, bd) when bd <= d -> ()
         | _ -> best := Some (h, d))
       (Online.alive_handles t.online)
   with e when Budget.is_exhausted_exn e -> ());
  let truncated = match budget with Some b -> Budget.exhausted b | None -> false in
  (match trace with
  | Some tr ->
      Dbh_obs.Trace.record tr (Dbh_obs.Trace.Linear_fallback { scanned = !scanned })
  | None -> ());
  let stats = { Dbh.Index.hash_cost = 0; lookup_cost = !scanned; probes = 0 } in
  let seconds =
    match metrics with Some _ -> Some (Dbh_obs.Metrics.now () -. t0) | None -> None
  in
  Dbh.Index.observe_query ?metrics ?seconds ?nn_distance:(Option.map snd !best) ~stats
    ~truncated ~levels_probed:0 ();
  {
    result = { Online.nn = !best; stats; truncated; levels_probed = 0 };
    served_by = `Linear_scan;
    state_after = t.state;
  }

let breached t snapshot = rate_since t snapshot > t.config.anomaly_threshold

let rec query_probed ?budget ?metrics ?trace ?scratch ~probes ~radius t q =
  match t.state with
  | Closed ->
      let result =
        Online.query_probed ?budget ?metrics ?trace ?scratch ~probes ~radius t.online q
      in
      t.window_queries <- t.window_queries + 1;
      if t.window_queries >= t.config.window then
        if breached t (t.window_calls0, t.window_anoms0) || structurally_unhealthy t then
          trip ?trace t
        else begin_window t;
      { result; served_by = `Index; state_after = t.state }
  | Open ->
      if t.cooldown_left > 0 then begin
        t.cooldown_left <- t.cooldown_left - 1;
        serve_linear ?budget ?metrics ?trace t q
      end
      else begin
        (* Cooldown over: refresh the index (its tables may be polluted
           by the anomalies that tripped us) and probe it. *)
        Online.rebuild_now t.online;
        t.state <- Half_open;
        record_state ?trace t;
        t.probes_left <- t.config.half_open_probes;
        let calls, anoms = guard_snapshot t in
        t.probe_calls0 <- calls;
        t.probe_anoms0 <- anoms;
        query_probed ?budget ?metrics ?trace ?scratch ~probes ~radius t q
      end
  | Half_open ->
      let result =
        Online.query_probed ?budget ?metrics ?trace ?scratch ~probes ~radius t.online q
      in
      t.probes_left <- t.probes_left - 1;
      if t.probes_left <= 0 then
        if breached t (t.probe_calls0, t.probe_anoms0) || structurally_unhealthy t then
          trip ?trace t
        else begin
          t.state <- Closed;
          t.recoveries <- t.recoveries + 1;
          t.consecutive_trips <- 0;
          record_counter (fun m -> m.Dbh_obs.Metrics.breaker_recoveries_total);
          record_state ?trace t;
          begin_window t
        end;
      { result; served_by = `Index; state_after = t.state }

let search ?(opts = Dbh.Query_opts.default) t q =
  let budget = Option.map Budget.create opts.Dbh.Query_opts.budget in
  query_probed ?budget ?metrics:opts.Dbh.Query_opts.metrics
    ?trace:opts.Dbh.Query_opts.trace ?scratch:opts.Dbh.Query_opts.scratch
    ~probes:opts.Dbh.Query_opts.probes_per_table
    ~radius:opts.Dbh.Query_opts.hamming_radius t q

let search_batch ?opts t qs =
  (* Sequential on purpose: every query may advance the breaker's state
     machine, and transitions must observe queries in order — the
     outcome sequence is identical to calling {search} in a loop. *)
  Array.map (fun q -> search ?opts t q) qs
