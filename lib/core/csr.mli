(** A hash table frozen into CSR form + a mutable insert delta.

    The frozen base is three flat int arrays — sorted key directory,
    bucket offsets, concatenated bucket ids — giving cache-friendly
    binary-search lookup with zero per-bucket boxing.  Post-freeze
    inserts accumulate in a small delta hashtable; {!compact} folds them
    (and drops dead ids) back into a fresh base.

    A bucket iterates delta first (newest first), then the frozen
    segment in frozen order.  Tables frozen from cons-built bucket lists
    therefore iterate in exactly the historical list order — the
    bit-identity guarantee the query layer depends on.

    {b Single-writer concurrent reads.}  The frozen base is one
    immutable record behind a mutable field and the delta is a
    persistent map, so a reader racing a single writer sees, per field,
    either the before or the after value — both valid bucket sets (an
    insert pointer-swaps the delta; {!compact} pointer-swaps the base,
    and a reader pairing an old delta with a new base merely revisits
    ids the query layer's seen-mask dedups).  Writers must still be
    serialized externally, and concurrency-sensitive callers should
    prefer publishing {!compacted} tables over in-place {!compact}. *)

type t

val freeze : (int, int list) Hashtbl.t -> t
(** Freeze build-time buckets.  Each list is laid out in list order. *)

val empty : unit -> t

val add : t -> int -> int -> unit
(** [add t key id] prepends [id] to [key]'s delta bucket. *)

val iter_bucket : t -> int -> (int -> unit) -> unit
(** Iterate one combined bucket in query order (delta newest-first, then
    frozen segment).  No-op for an absent key. *)

val iter_range : t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [iter_range t ~lo ~hi f] calls [f key id] for every entry of every
    combined bucket whose key lies in [\[lo, hi\]], keys ascending, each
    bucket in query order (delta newest-first, then frozen).  One binary
    search plus a contiguous walk of the sorted directory (merged with
    the delta's sorted keys when a delta exists) — the sorted-prefix
    scan the multi-probe Hamming path is built on.  No-op when the
    range is empty. *)

val iter_within : t -> width:int -> radius:int -> int -> (int -> int -> unit) -> unit
(** [iter_within t ~width ~radius key f]: every entry of every bucket
    whose [width]-bit key lies at Hamming distance in [\[1, radius\]] of
    [key] — code-only candidate generation over the packed directory.
    The sorted ball enumeration ({!Key.enumerate_within}) coalesces into
    maximal consecutive-key runs, each served by one {!iter_range}; the
    center bucket itself is not visited.  Raises [Invalid_argument] when
    [key] does not fit [width] or the radius exceeds
    {!Key.max_radius}. *)

val bucket_size : t -> int -> int
(** Combined entries under a key, dead included (trace/diagnostics). *)

val bucket_count : t -> int
(** Non-empty combined buckets — O(1). *)

val largest_bucket : t -> int
(** Max combined bucket size ever reached since the last freeze or
    {!compact} (dead entries included, like the list tables before) —
    O(1). *)

val entry_count : t -> int
(** Total entries, frozen + delta, dead included. *)

val delta_size : t -> int
(** Entries sitting in the delta — the compaction-pressure signal. *)

val iter_buckets : t -> (int -> int list -> unit) -> unit
(** Every combined bucket in ascending key order; each bucket
    materialised as a list in query order.  Allocates — cold paths only
    (persistence, diagnostics, rebuild). *)

val compact : is_alive:(int -> bool) -> t -> unit
(** Fold the delta into a fresh frozen base, dropping ids for which
    [is_alive] is false and then-empty buckets.  Bucket-internal order
    is preserved, so queries see identical candidates before and after
    (dead ids were skipped, and never charged, either way). *)

val compacted : is_alive:(int -> bool) -> t -> t
(** Pure {!compact}: a fresh fully-frozen table with an empty delta,
    leaving [t] untouched — for callers that publish the result through
    an atomic pointer while concurrent readers drain the old table. *)

val approx_words : t -> int
(** Rough resident heap words (arrays + delta estimate). *)

val write : Buffer.t -> is_alive:(int -> bool) -> t -> unit
(** Serialize the live view (delta folded, dead dropped). *)

val read :
  Dbh_util.Binio.reader ->
  validate_key:(int -> unit) ->
  max_id:int ->
  seen:Bytes.t ->
  t
(** Read and validate one frozen table: directory strictly sorted and
    every key accepted by [validate_key]; offsets monotone and covering;
    ids in [0, max_id) with no duplicate inside the table ([seen] is a
    caller-provided store-length workspace, reset here).  Raises
    [Dbh_util.Binio.Corrupt] on any violation. *)
