(** Offline search for optimal (k, l) (paper Section IV-D).

    For a fixed [k], accuracy grows and efficiency shrinks with [l], so
    the smallest [l] reaching the accuracy target is found by binary
    search; scanning [k] and keeping the cheapest [(k,l)] pair yields the
    operating point.  All evaluation goes through the {!Analysis} model —
    no online cost is incurred. *)

type choice = {
  k : int;
  l : int;
  predicted_accuracy : float;
  predicted_lookup : float;
  predicted_hash : float;
  predicted_cost : float;  (** lookup + hash (Eq. 13/14) *)
}

val pp_choice : Format.formatter -> choice -> unit

val min_l_for_accuracy :
  ?probes:int -> ?radius:int -> Analysis.t -> k:int -> target:float -> l_max:int -> int option
(** Smallest [l <= l_max] whose predicted accuracy reaches [target]
    (binary search over the monotone accuracy-in-[l] curve), or [None].
    [probes]/[radius] (defaults [1]/[0]) evaluate the multi-probe model
    instead — the analytical handle on the tables multi-probing saves. *)

val choice_of : ?probes:int -> ?radius:int -> Analysis.t -> k:int -> l:int -> choice
(** The model's full prediction at a fixed [(k,l)]. *)

val optimize :
  ?probes:int ->
  ?radius:int ->
  Analysis.t ->
  target_accuracy:float ->
  ?k_min:int ->
  ?k_max:int ->
  ?l_max:int ->
  unit ->
  choice option
(** Best [(k,l)] under the model: for each [k] in [\[k_min, k_max\]]
    (defaults 1–30) find the minimal feasible [l] ([l_max] default 1000)
    and keep the choice minimizing predicted total cost.  [None] when no
    [(k,l)] reaches the target.  Requires [0 <= target_accuracy < 1]
    (an exact 1.0 target is unreachable under the model whenever any
    query has a collision rate below 1).  With [probes]/[radius] the
    whole search runs under the multi-probe model, so the returned
    choice is the operating point for an engine that will actually
    probe that way. *)

val landscape :
  ?probes:int ->
  ?radius:int ->
  Analysis.t ->
  target_accuracy:float ->
  ?k_min:int ->
  ?k_max:int ->
  ?l_max:int ->
  unit ->
  choice array
(** The per-[k] minimal-[l] choices (only feasible [k]s) — the raw data
    behind the paper's observation that cost is U-shaped in [k]. *)
