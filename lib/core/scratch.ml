(* Reusable per-query workspace.  The three pieces the query hot path
   used to allocate fresh every time — the seen mask, the candidate
   accumulator and the pivot-distance cache array — live here and are
   recycled: [reset] clears only the bytes actually touched, so a query
   over a million-object store that saw forty candidates pays for forty,
   not a million. *)

type t = {
  mutable seen : Bytes.t;  (* one byte per store id; '\000' = unseen *)
  mutable buf : int array;  (* ids marked seen, in discovery order *)
  mutable len : int;
  mutable dists : float array;  (* pivot-distance workspace *)
  mutable bits : Bytes.t;  (* hash-bit workspace, one byte per distinct fn *)
  mutable margins : float array;  (* per-bit flip margins, one per distinct fn *)
  probe : Probe_seq.t;  (* reusable multi-probe heap *)
}

let create ?(capacity = 0) () =
  {
    seen = Bytes.make capacity '\000';
    buf = Array.make 64 0;
    len = 0;
    dists = [||];
    bits = Bytes.empty;
    margins = [||];
    probe = Probe_seq.create ();
  }

(* Invariant: every non-'\000' byte of [seen] is listed in [buf.(0..len)],
   so growth can discard the old mask — it is all zeroes after reset, and
   [ensure] is only called at query start, when the scratch is clean. *)
let ensure t n =
  if Bytes.length t.seen < n then t.seen <- Bytes.make n '\000'

let capacity t = Bytes.length t.seen

let mem t id = Bytes.unsafe_get t.seen id <> '\000'

let mark t id =
  if Bytes.unsafe_get t.seen id <> '\000' then false
  else begin
    Bytes.unsafe_set t.seen id '\001';
    if t.len = Array.length t.buf then begin
      let bigger = Array.make (2 * t.len) 0 in
      Array.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    t.buf.(t.len) <- id;
    t.len <- t.len + 1;
    true
  end

let count t = t.len
let get t i = t.buf.(i)

let reset t =
  for i = 0 to t.len - 1 do
    Bytes.unsafe_set t.seen t.buf.(i) '\000'
  done;
  t.len <- 0

let to_list t = List.init t.len (fun i -> t.buf.(i))

(* Pivot-distance rows are nan-initialised by the cache constructor
   (Hash_family.cache_in), so handing out a dirty array is fine. *)
let pivot_dists t m =
  if Array.length t.dists < m then t.dists <- Array.make m nan;
  t.dists

(* Bit rows are fully overwritten before being read (Index.eval_bits),
   so a dirty buffer is fine here too. *)
let bit_row t m =
  if Bytes.length t.bits < m then t.bits <- Bytes.create m;
  t.bits

(* Margin rows likewise: the multi-probe path fills every slot it reads
   (Index.eval_margins) before handing penalties to the probe heap. *)
let margin_row t m =
  if Array.length t.margins < m then t.margins <- Array.make m 0.;
  t.margins

let probe_seq t = t.probe
