type t = {
  budget : int option;
  pool : Dbh_util.Pool.t option;
  metrics : Dbh_obs.Metrics.t option;
  trace : Dbh_obs.Trace.t option;
}

let default = { budget = None; pool = None; metrics = None; trace = None }

let make ?budget ?pool ?metrics ?trace () = { budget; pool; metrics; trace }

let budgeted n = { default with budget = Some n }
