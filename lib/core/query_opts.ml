type t = {
  budget : int option;
  pool : Dbh_util.Pool.t option;
  metrics : Dbh_obs.Metrics.t option;
  trace : Dbh_obs.Trace.t option;
  scratch : Scratch.t option;
  probes_per_table : int;
  hamming_radius : int;
}

let default =
  {
    budget = None;
    pool = None;
    metrics = None;
    trace = None;
    scratch = None;
    probes_per_table = 1;
    hamming_radius = 0;
  }

let make ?budget ?pool ?metrics ?trace ?scratch ?(probes_per_table = 1)
    ?(hamming_radius = 0) () =
  { budget; pool; metrics; trace; scratch; probes_per_table; hamming_radius }

let budgeted n = { default with budget = Some n }

let multiprobe ?(hamming_radius = 2) probes_per_table =
  { default with probes_per_table; hamming_radius }
