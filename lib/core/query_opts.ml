type t = {
  budget : int option;
  pool : Dbh_util.Pool.t option;
  metrics : Dbh_obs.Metrics.t option;
  trace : Dbh_obs.Trace.t option;
  scratch : Scratch.t option;
}

let default = { budget = None; pool = None; metrics = None; trace = None; scratch = None }

let make ?budget ?pool ?metrics ?trace ?scratch () =
  { budget; pool; metrics; trace; scratch }

let budgeted n = { default with budget = Some n }
