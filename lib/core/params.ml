type choice = {
  k : int;
  l : int;
  predicted_accuracy : float;
  predicted_lookup : float;
  predicted_hash : float;
  predicted_cost : float;
}

let pp_choice ppf c =
  Format.fprintf ppf "k=%d l=%d acc=%.4f cost=%.1f (lookup=%.1f hash=%.1f)" c.k c.l
    c.predicted_accuracy c.predicted_cost c.predicted_lookup c.predicted_hash

let min_l_for_accuracy ?(probes = 1) ?(radius = 0) analysis ~k ~target ~l_max =
  if Analysis.accuracy ~probes ~radius analysis ~k ~l:l_max < target then None
  else begin
    (* Accuracy is monotone non-decreasing in l: bisect. *)
    let lo = ref 1 and hi = ref l_max in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Analysis.accuracy ~probes ~radius analysis ~k ~l:mid >= target then hi := mid
      else lo := mid + 1
    done;
    Some !lo
  end

let choice_of ?(probes = 1) ?(radius = 0) analysis ~k ~l =
  let lookup = Analysis.lookup_cost ~probes ~radius analysis ~k ~l in
  let hash = Analysis.hash_cost analysis ~k ~l in
  {
    k;
    l;
    predicted_accuracy = Analysis.accuracy ~probes ~radius analysis ~k ~l;
    predicted_lookup = lookup;
    predicted_hash = hash;
    predicted_cost = lookup +. hash;
  }

let check_target target =
  if target < 0. || target >= 1. then
    invalid_arg "Params: target accuracy must lie in [0, 1)"

let landscape ?(probes = 1) ?(radius = 0) analysis ~target_accuracy ?(k_min = 1)
    ?(k_max = 30) ?(l_max = 1000) () =
  check_target target_accuracy;
  if k_min < 1 || k_max < k_min then invalid_arg "Params.landscape: bad k range";
  let choices = ref [] in
  for k = k_max downto k_min do
    match min_l_for_accuracy ~probes ~radius analysis ~k ~target:target_accuracy ~l_max with
    | None -> ()
    | Some l -> choices := choice_of ~probes ~radius analysis ~k ~l :: !choices
  done;
  Array.of_list !choices

let optimize ?probes ?radius analysis ~target_accuracy ?k_min ?k_max ?l_max () =
  let choices = landscape ?probes ?radius analysis ~target_accuracy ?k_min ?k_max ?l_max () in
  if Array.length choices = 0 then None
  else begin
    let best = ref choices.(0) in
    Array.iter (fun c -> if c.predicted_cost < !best.predicted_cost then best := c) choices;
    Some !best
  end
