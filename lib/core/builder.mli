(** One-call construction of tuned DBH indexes.

    Wires together the full offline pipeline of the paper: sample X_small
    and build the hash family (Sec. V-B), draw sample queries from the
    database, fit the statistical model (Sec. IV-C), search for the
    optimal [(k,l)] at the desired accuracy (Sec. IV-D), and build either
    a single-level index or the hierarchical cascade (Sec. V-A). *)

type config = {
  num_pivots : int;  (** |X_small| (default 100) *)
  threshold_sample : int;  (** sample projected per line (default 500) *)
  max_functions : int option;  (** cap on family size (default: all pairs) *)
  selector : Selector.t;
      (** how pivot pairs and thresholds are chosen (default
          {!Selector.default} — the paper's uniform draws) *)
  num_sample_queries : int;  (** database objects used as sample queries (default 200) *)
  num_fns : int;  (** functions sampled for collision estimates (default 250) *)
  db_sample : int;  (** database sample for lookup-cost estimates (default 500) *)
  k_min : int;
  k_max : int;
  l_max : int;
  levels : int;  (** strata for the hierarchical variant (default 5) *)
}

val default_config : config
(** The paper's settings where it states them (100 pivots, 5 levels),
    sensible defaults elsewhere. *)

type 'a prepared = {
  family : 'a Hash_family.t;
  analysis : Analysis.t;
  sample_query_indices : int array;
  pivot_table : float array array;
      (** database × pivot distances, computed once so subsequent index
          builds are distance-free *)
}
(** The reusable offline artifacts: one [prepared] can serve many target
    accuracies and both index flavours. *)

val prepare :
  ?pool:Dbh_util.Pool.t ->
  ?observations:'a Hash_family.t * Hash_family.observations ->
  rng:Dbh_util.Rng.t ->
  space:'a Dbh_space.Space.t ->
  ?config:config ->
  'a array ->
  'a prepared
(** Build family + model from a database.  This is the expensive offline
    step (it brute-forces the sample queries' true nearest neighbors).
    [pool] fans it across domains; the artifacts are bit-identical to the
    sequential run for the same seed.

    [observations] switches the family build to {!Hash_family.retune}:
    the given prior family and live-traffic observation set anchor the
    data-dependent scoring — the re-tuning entry used by
    [Online.retune]. *)

val single :
  ?pool:Dbh_util.Pool.t ->
  ?probes:int ->
  ?radius:int ->
  rng:Dbh_util.Rng.t ->
  prepared:'a prepared ->
  db:'a array ->
  target_accuracy:float ->
  ?config:config ->
  unit ->
  ('a Index.t * Params.choice) option
(** Tuned single-level index, or [None] when the target accuracy is
    unreachable under the model within [l_max].  [probes]/[radius]
    (defaults [1]/[0]) tune under the multi-probe model
    ({!Params.optimize}): the returned choice typically needs fewer
    tables, on the understanding that queries will run with
    [Query_opts.multiprobe] knobs to make up the recall. *)

val hierarchical :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  prepared:'a prepared ->
  db:'a array ->
  target_accuracy:float ->
  ?config:config ->
  unit ->
  'a Hierarchical.t

val auto :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  space:'a Dbh_space.Space.t ->
  ?config:config ->
  target_accuracy:float ->
  'a array ->
  'a Hierarchical.t
(** The quickstart entry point: [auto ~rng ~space ~target_accuracy db]
    runs {!prepare} and {!hierarchical} in one call. *)
