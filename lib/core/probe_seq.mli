(** Multi-probe sequences over packed keys (multi-probe LSH, Lv et al.,
    the paper's citation [11], transplanted to DBH codes).

    Given per-bit flip penalties — how decisively each of a key's [k]
    projections cleared its [t1, t2] thresholds — the generator
    enumerates perturbed keys in non-decreasing order of summed penalty
    using the shift/expand heap walk, visiting every non-empty bit
    subset of size at most [radius] exactly once.  The cheapest probes
    flip only the lowest-margin bits: the buckets a near-miss neighbor
    most likely fell into. *)

type t
(** Reusable workspace (penalty-sorted positions + the probe heap).
    Single-domain state, like {!Scratch.t}: share across sequential
    queries only. *)

val create : unit -> t
(** Empty workspace; grows on first use and is then allocation-free for
    any query of the same or smaller width/probe count. *)

val generate :
  t ->
  base:Key.t ->
  width:int ->
  radius:int ->
  max_probes:int ->
  penalty:(int -> float) ->
  emit:(Key.t -> unit) ->
  unit
(** [generate t ~base ~width ~radius ~max_probes ~penalty ~emit] calls
    [emit] on up to [max_probes] distinct keys obtained by XOR-flipping
    non-empty subsets of at most [radius] bits of [base], in
    non-decreasing order of summed flip penalty ([penalty j] is the
    cost of flipping code bit [j], [0 <= j < width]; ties resolve to
    lower bit positions first, so the sequence is deterministic).
    [base] itself is never emitted.  Emits fewer than [max_probes] keys
    when the radius-[radius] ball is smaller ({!Key.ball_size}); emits
    nothing when [max_probes <= 0] or [radius = 0].  Raises
    [Invalid_argument] on a bad width or a radius outside
    [\[0, Key.max_radius\]]. *)
