type t = int

let max_bits = 62

let check_width k =
  if k < 1 || k > max_bits then
    invalid_arg (Printf.sprintf "Key: width must be in [1, %d], got %d" max_bits k)

let zero = 0
let push_bit key b = (key lsl 1) lor (if b then 1 else 0)

let of_bits bits =
  let k = Array.length bits in
  check_width k;
  Array.fold_left push_bit zero bits

let to_bits ~width key =
  check_width width;
  if key < 0 || (width < max_bits && key lsr width <> 0) then
    invalid_arg "Key.to_bits: key does not fit in width";
  Array.init width (fun j -> (key lsr (width - 1 - j)) land 1 = 1)

let to_int key = key
let of_int ~width key =
  check_width width;
  if key < 0 || (width < max_bits && key lsr width <> 0) then
    invalid_arg "Key.of_int: key does not fit in width";
  key

let compare : t -> t -> int = Int.compare
let equal : t -> t -> bool = Int.equal

let popcount key =
  let n = ref 0 and x = ref key in
  while !x <> 0 do
    incr n;
    x := !x land (!x - 1)
  done;
  !n

let hamming a b = popcount (a lxor b)

let max_radius = 2

let check_radius radius =
  if radius < 0 || radius > max_radius then
    invalid_arg
      (Printf.sprintf "Key: Hamming radius must be in [0, %d], got %d" max_radius radius)

let ball_size ~width ~radius =
  check_width width;
  check_radius radius;
  match radius with
  | 0 -> 0
  | 1 -> width
  | _ -> width + (width * (width - 1) / 2)

let enumerate_within ~width ~radius key =
  ignore (of_int ~width key : t);
  check_radius radius;
  if radius = 0 then [||]
  else begin
    let out = Array.make (ball_size ~width ~radius) 0 in
    let n = ref 0 in
    for j = 0 to width - 1 do
      let m1 = 1 lsl j in
      out.(!n) <- key lxor m1;
      incr n;
      if radius >= 2 then
        for j2 = j + 1 to width - 1 do
          out.(!n) <- key lxor m1 lxor (1 lsl j2);
          incr n
        done
    done;
    Array.sort Int.compare out;
    out
  end
