type t = int

let max_bits = 62

let check_width k =
  if k < 1 || k > max_bits then
    invalid_arg (Printf.sprintf "Key: width must be in [1, %d], got %d" max_bits k)

let zero = 0
let push_bit key b = (key lsl 1) lor (if b then 1 else 0)

let of_bits bits =
  let k = Array.length bits in
  check_width k;
  Array.fold_left push_bit zero bits

let to_bits ~width key =
  check_width width;
  if key < 0 || (width < max_bits && key lsr width <> 0) then
    invalid_arg "Key.to_bits: key does not fit in width";
  Array.init width (fun j -> (key lsr (width - 1 - j)) land 1 = 1)

let to_int key = key
let of_int ~width key =
  check_width width;
  if key < 0 || (width < max_bits && key lsr width <> 0) then
    invalid_arg "Key.of_int: key does not fit in width";
  key

let compare : t -> t -> int = Int.compare
let equal : t -> t -> bool = Int.equal
