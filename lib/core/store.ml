module Vec = Dbh_util.Vec

(* Tombstones live in a growable byte map rather than a hash table:
   query-time [is_alive] probes race with writer-side [delete]s under
   concurrent readers, and single-byte monotone 0->1 flips are benign
   where a hash-table resize is not.  A reader observing the stale
   value linearizes its query before the delete. *)
type 'a t = {
  objects : 'a Vec.t;
  mutable tombs : Bytes.t;
  mutable n_dead : int;
}

let create () = { objects = Vec.create (); tombs = Bytes.empty; n_dead = 0 }
let of_array arr = { objects = Vec.of_array arr; tombs = Bytes.empty; n_dead = 0 }
let length t = Vec.length t.objects
let alive_count t = Vec.length t.objects - t.n_dead
let get t i = Vec.get t.objects i

let dead t i = i < Bytes.length t.tombs && Bytes.get t.tombs i = '\001'
let is_alive t i = i >= 0 && i < Vec.length t.objects && not (dead t i)
let add t obj = Vec.push t.objects obj

let delete t i =
  if i < 0 || i >= Vec.length t.objects then invalid_arg "Store.delete: id out of range";
  if not (dead t i) then begin
    if i >= Bytes.length t.tombs then begin
      let grown = Bytes.make (max 16 (max (i + 1) (2 * Bytes.length t.tombs))) '\000' in
      Bytes.blit t.tombs 0 grown 0 (Bytes.length t.tombs);
      t.tombs <- grown
    end;
    Bytes.set t.tombs i '\001';
    t.n_dead <- t.n_dead + 1
  end

let to_alive_array t =
  let out = ref [] in
  Vec.iteri (fun i obj -> if not (dead t i) then out := (i, obj) :: !out) t.objects;
  Array.of_list (List.rev !out)
