(** Self-maintaining DBH index for evolving databases.

    The offline artifacts (hash family, statistical model, (k,l) choices)
    are fitted to a snapshot of the database; as objects are inserted and
    deleted they gradually go stale.  This wrapper owns a hierarchical
    index and transparently re-runs the whole offline pipeline once the
    database has grown or shrunk by a configurable factor since the last
    build — the standard doubling strategy, amortizing the rebuild cost
    over the updates that triggered it.

    Object handles returned by {!insert} (and inside query results) are
    {e stable}: they survive rebuilds. *)

type 'a t

type 'a result = {
  nn : (int * float) option;
      (** stable handle and exact distance of the best neighbor *)
  stats : Index.stats;
  truncated : bool;  (** a distance budget ran out mid-query *)
  levels_probed : int;
      (** cascade levels probed (0 when a degraded path bypassed the
          index entirely, e.g. a circuit breaker's linear scan) *)
}

val create :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  space:'a Dbh_space.Space.t ->
  ?config:Builder.config ->
  ?rebuild_factor:float ->
  target_accuracy:float ->
  'a array ->
  'a t
(** Build over an initial non-empty database.  [rebuild_factor] (default
    2.0, must exceed 1.0) triggers a rebuild when the alive count leaves
    [(built / factor, built · factor)].

    [pool] is remembered: the initial build, every automatic rebuild and
    {!search_batch} fan out over it.  The pool must outlive this index (or
    rather, every rebuild and batch run through it).  Indexes built with
    and without a pool are bit-identical for the same seed. *)

val size : 'a t -> int
(** Alive objects. *)

val tombstones : 'a t -> int
(** Handles deleted since the last rebuild but still occupying registry
    slots (and, until {!compact}, table entries) — the space a rebuild
    or compaction would reclaim. *)

val delta_size : 'a t -> int
(** Table entries inserted since the last rebuild/compaction, still in
    the levels' mutable deltas ({!Hierarchical.delta_size}). *)

val compact : 'a t -> unit
(** Fold the insert deltas into the frozen table bases and drop
    tombstoned entries, without a rebuild (hash functions and handles
    are untouched; query answers are identical).  [Durable.checkpoint]
    runs this automatically before writing a snapshot. *)

val rebuilds : 'a t -> int
(** How many times the offline pipeline has re-run (0 right after
    {!create}). *)

val get : 'a t -> int -> 'a
(** Object behind a stable handle.  Raises [Invalid_argument] for dead or
    unknown handles. *)

val insert : 'a t -> 'a -> int
(** Add an object, returning its stable handle.  May trigger a rebuild
    (cost O(offline pipeline)); otherwise costs one incremental index
    insertion. *)

val delete : 'a t -> int -> unit
(** Remove by stable handle (idempotent).  May trigger a rebuild. *)

val search : ?opts:Query_opts.t -> 'a t -> 'a -> 'a result
(** Approximate nearest neighbor among alive objects.  [opts.budget]
    bounds the distance computations spent, as in {!Index.search};
    [opts.metrics]/[opts.trace] instrument the query.  [opts.pool] is
    ignored (single query).

    Reads are {e lock-free}: the whole query-visible generation (the
    cascade and the handle map) sits behind one atomic pointer, loaded
    once per query, and the single writer re-publishes it after every
    {!insert}/{!delete}/{!compact}/rebuild — so reader domains may call
    {!search}/{!search_batch} concurrently with one updating domain and
    always see an internally consistent generation, linearized at the
    pointer load.  Writers must still be serialized by the caller. *)

val search_batch : ?opts:Query_opts.t -> 'a t -> 'a array -> 'a result array
(** One {!search} per element, in input order, each under its own fresh
    budget of [opts.budget] distance computations.  Fans out over
    [opts.pool] when given, else over the pool remembered at {!create},
    else runs sequentially.  [opts.trace] is ignored.  The generation
    is pinned once for the whole batch (see {!search} on lock-free
    reads); a concurrent writer's updates land in later batches. *)

(** {1 Introspection and control}

    Hooks for operational wrappers (health monitors, circuit breakers)
    that need to look inside the running index or force maintenance. *)

val space : 'a t -> 'a Dbh_space.Space.t
(** The space this index was created over (queries and rebuilds go
    through it — wrap it before {!create} to instrument every distance). *)

val index : 'a t -> 'a Hierarchical.t
(** The current-generation hierarchical index (replaced wholesale on
    rebuild — do not cache across updates; read-only). *)

val alive_handles : 'a t -> int list
(** All alive stable handles, ascending. *)

val rng_state : 'a t -> int64 array
(** The four state words of the index's generator
    ({!Dbh_util.Rng.state}) — the bit-identity fingerprint: two indexes
    that evolved through the same operations (including replayed or
    replicated ones) have equal rng states exactly when their stochastic
    histories matched draw for draw. *)

val rebuild_now : 'a t -> unit
(** Re-run the whole offline pipeline immediately on the alive snapshot,
    regardless of the growth thresholds; counts toward {!rebuilds}.
    Handles remain stable.  Used by degradation wrappers to refresh an
    index whose structure went bad (e.g. after a spell of anomalous
    distances polluted its tables). *)

val retune :
  ?metrics:Dbh_obs.Metrics.t -> ?selector:Selector.t -> 'a t -> Hash_family.observations
(** Close the production loop: distill the observed [D(Q,N(Q))] strata
    and table hit rate from [metrics] (default: the installed set) via
    {!Hash_family.observations_of_metrics}, rebuild family + model +
    cascade with {!Hash_family.retune} — optionally switching
    [selector] — and hot-swap the new generation behind the published
    pointer.  Readers are never blocked and never see a torn state: one
    atomic store publishes the whole generation, exactly as
    {!compact}/rebuild do.  Handles remain stable; counts toward
    {!rebuilds}.  Returns the observation set the rebuild used (empty
    when no metrics were available).  Writer-side call — serialize it
    with other mutations. *)

type 'a online = 'a t

(** {1 Crash-safe durability}

    A durable index lives in a directory of numbered generations: each
    checkpoint writes a checksummed snapshot atomically and starts a
    fresh write-ahead log; every {!Durable.insert}/{!Durable.delete} is
    journaled (and fsynced) before it touches memory.  Reopening after a
    crash loads the newest snapshot that verifies — falling back to the
    previous generation when the newest is corrupt — and replays the log
    chain, truncating a torn tail.  The snapshot carries the generator
    state, so a reopened index answers queries {e bit-for-bit}
    identically to one that never restarted, including any rebuilds the
    replay triggers.

    The object codec must round-trip: [decode (encode x)] must behave
    exactly like [x] under the space's distance (and re-encode to the
    same bytes for the equivalence guarantee to be exact).  The same
    [config], [rebuild_factor] and [target_accuracy] must be passed on
    every open — they are intentionally not stored, so deployments can
    retune them, at the cost of exact replay equivalence when they
    change. *)

module Durable : sig
  type 'a t
  (** A durable handle: an {!type:online} index plus its directory, log
      and generation bookkeeping. *)

  type kill_point = After_snapshot | After_wal_switch

  exception Killed of kill_point
  (** Raised by {!checkpoint} at the requested {!kill_point} — a crash
      injected between the checkpoint's steps, for recovery tests. *)

  type recovery = {
    source : [ `Fresh | `Snapshot of int | `Rebuilt ];
        (** Where the state came from: a brand-new index over [~data], a
            verified snapshot generation, or a rebuild from [~data]
            after every snapshot failed verification. *)
    generation : int;  (** Active generation after recovery. *)
    replayed_ops : int;  (** WAL records re-applied. *)
    torn_tail : bool;  (** A log ended mid-record and was truncated. *)
    skipped : (int * string) list;
        (** Snapshot generations that failed verification, with why. *)
  }

  val open_or_create :
    ?pool:Dbh_util.Pool.t ->
    ?fsync:bool ->
    rng:Dbh_util.Rng.t ->
    space:'a Dbh_space.Space.t ->
    ?config:Builder.config ->
    ?rebuild_factor:float ->
    target_accuracy:float ->
    encode:('a -> string) ->
    decode:(string -> 'a) ->
    dir:string ->
    ?data:'a array ->
    unit ->
    'a t * recovery
  (** Open the index stored in [dir], creating [dir] if needed.  With no
      loadable snapshot, builds a fresh index from [~data] (raising
      [Invalid_argument] when [dir] is empty and no data is given, and
      [Dbh_util.Binio.Corrupt] when snapshots exist but all fail
      verification and no data is given — degraded recovery never
      silently serves wrong answers).  [rng] seeds a fresh build only;
      a loaded snapshot restores its own generator state.  [fsync]
      (default [true]) controls per-operation log durability. *)

  val insert : ?trace:Dbh_obs.Trace.t -> 'a t -> 'a -> int
  (** Journal the insert to the WAL (durably, when [fsync]) and then
      apply it.  Same contract as {!val:insert} otherwise.  [trace]
      records a [Wal_append] event with the journaled record size. *)

  val delete : ?trace:Dbh_obs.Trace.t -> 'a t -> int -> unit
  (** Journal and apply a delete; idempotent like {!val:delete}. *)

  val search : ?opts:Query_opts.t -> 'a t -> 'a -> 'a result
  val search_batch : ?opts:Query_opts.t -> 'a t -> 'a array -> 'a result array

  val get : 'a t -> int -> 'a
  val size : 'a t -> int

  val checkpoint : ?kill:kill_point -> ?trace:Dbh_obs.Trace.t -> 'a t -> unit
  (** Write a new snapshot generation atomically, switch to a fresh WAL,
      and prune generations older than the previous one.  A crash at any
      point (exercised via [?kill]) leaves the directory recoverable to
      exactly the pre- or post-checkpoint state.  When a metric set is
      installed, records checkpoint count, duration and snapshot size;
      [trace] adds a [Checkpoint] event. *)

  val close : 'a t -> unit
  (** Flush and close the WAL.  Deliberately does {e not} checkpoint, so
      reopening exercises replay; call {!checkpoint} first to make
      reopening cheap.  Idempotent; other operations raise after. *)

  val online : 'a t -> 'a online
  (** The live in-memory index — read-only access; mutate only through
      this module or the journal will miss operations. *)

  val generation : 'a t -> int
  val wal_ops : 'a t -> int
  (** Operations sitting in the current WAL since the last checkpoint —
      the replay debt a reopen would pay. *)

  val dir : 'a t -> string

  val verify_snapshot : path:string -> int * int
  (** Structurally verify a snapshot file without opening the index or
      computing any distance: envelope checksums, then every internal
      invariant (handle maps, liveness agreement, level structure).
      Accepts both snapshot formats — version 1 (bit-packed key blocks)
      and version 2 (packed CSR arrays); new snapshots are written as
      version 2, so opening a v1 directory and checkpointing migrates it.
      Returns [(total_handles, alive)].  Raises [Dbh_util.Binio.Corrupt]
      on any failure. *)

  type snapshot_info = {
    format_version : int;  (** 1 (legacy key blocks) or 2 (packed CSR) *)
    registry_len : int;  (** total handles ever issued *)
    dead_handles : int;  (** tombstoned handles at snapshot time *)
    cascade : string Hierarchical.t;
        (** the snapshot's cascade, structurally decoded with an identity
            codec and a space whose distance must never be called — for
            table statistics only, never for queries *)
  }

  val inspect_snapshot : path:string -> snapshot_info
  (** Decode a snapshot for offline diagnostics ([dbh-cli index-stats])
      without the real codec or space.  Same validation as
      {!verify_snapshot}.  Raises [Dbh_util.Binio.Corrupt] on any
      corruption. *)

  (**/**)

  (* Internal hooks for the replica layer (dbh.replica) — not a stable
     API.  [online_of_snapshot] loads one snapshot file (full structural
     validation, raises Corrupt); [apply_record] applies one WAL record
     exactly as recovery replay would; [attach] turns an online index
     into a leader over [dir] by writing snapshot [generation] plus a
     fresh WAL — the promotion fence. *)

  val online_of_snapshot :
    ?pool:Dbh_util.Pool.t ->
    space:'a Dbh_space.Space.t ->
    ?config:Builder.config ->
    ?rebuild_factor:float ->
    target_accuracy:float ->
    decode:(string -> 'a) ->
    path:string ->
    unit ->
    'a online

  val apply_record : decode:(string -> 'a) -> 'a online -> string -> unit

  val attach :
    ?fsync:bool ->
    encode:('a -> string) ->
    decode:(string -> 'a) ->
    dir:string ->
    generation:int ->
    'a online ->
    'a t

  (**/**)
end

(**/**)

(* Query core taking a caller-managed Budget.t plus explicit
   observability hooks — what the robust layer (circuit breaker) builds
   on without paying Query_opts construction per query. *)
val query_with :
  ?budget:Budget.t ->
  ?metrics:Dbh_obs.Metrics.t ->
  ?trace:Dbh_obs.Trace.t ->
  ?scratch:Scratch.t ->
  ?probes:int ->
  ?radius:int ->
  'a t ->
  'a ->
  'a result

(* Same core with the probe knobs as required labels — hot callers
   holding plain ints (the robust layer's breaker) avoid boxing a
   [Some] per knob per query. *)
val query_probed :
  ?budget:Budget.t ->
  ?metrics:Dbh_obs.Metrics.t ->
  ?trace:Dbh_obs.Trace.t ->
  ?scratch:Scratch.t ->
  probes:int ->
  radius:int ->
  'a t ->
  'a ->
  'a result
