(** Self-maintaining DBH index for evolving databases.

    The offline artifacts (hash family, statistical model, (k,l) choices)
    are fitted to a snapshot of the database; as objects are inserted and
    deleted they gradually go stale.  This wrapper owns a hierarchical
    index and transparently re-runs the whole offline pipeline once the
    database has grown or shrunk by a configurable factor since the last
    build — the standard doubling strategy, amortizing the rebuild cost
    over the updates that triggered it.

    Object handles returned by {!insert} (and inside query results) are
    {e stable}: they survive rebuilds. *)

type 'a t

type 'a result = {
  nn : (int * float) option;
      (** stable handle and exact distance of the best neighbor *)
  stats : Index.stats;
  truncated : bool;  (** a distance budget ran out mid-query *)
}

val create :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  space:'a Dbh_space.Space.t ->
  ?config:Builder.config ->
  ?rebuild_factor:float ->
  target_accuracy:float ->
  'a array ->
  'a t
(** Build over an initial non-empty database.  [rebuild_factor] (default
    2.0, must exceed 1.0) triggers a rebuild when the alive count leaves
    [(built / factor, built · factor)].

    [pool] is remembered: the initial build, every automatic rebuild and
    {!query_batch} fan out over it.  The pool must outlive this index (or
    rather, every rebuild and batch run through it).  Indexes built with
    and without a pool are bit-identical for the same seed. *)

val size : 'a t -> int
(** Alive objects. *)

val rebuilds : 'a t -> int
(** How many times the offline pipeline has re-run (0 right after
    {!create}). *)

val get : 'a t -> int -> 'a
(** Object behind a stable handle.  Raises [Invalid_argument] for dead or
    unknown handles. *)

val insert : 'a t -> 'a -> int
(** Add an object, returning its stable handle.  May trigger a rebuild
    (cost O(offline pipeline)); otherwise costs one incremental index
    insertion. *)

val delete : 'a t -> int -> unit
(** Remove by stable handle (idempotent).  May trigger a rebuild. *)

val query : ?budget:Budget.t -> 'a t -> 'a -> 'a result
(** Approximate nearest neighbor among alive objects.  [budget] bounds
    the distance computations spent, as in {!Index.query}. *)

val query_batch : ?pool:Dbh_util.Pool.t -> ?budget:int -> 'a t -> 'a array -> 'a result array
(** One {!query} per element, in input order, each under its own fresh
    budget of [budget] distance computations.  Fans out over [pool] when
    given, else over the pool remembered at {!create}, else runs
    sequentially.  Do not interleave with {!insert}/{!delete}. *)

(** {1 Introspection and control}

    Hooks for operational wrappers (health monitors, circuit breakers)
    that need to look inside the running index or force maintenance. *)

val space : 'a t -> 'a Dbh_space.Space.t
(** The space this index was created over (queries and rebuilds go
    through it — wrap it before {!create} to instrument every distance). *)

val index : 'a t -> 'a Hierarchical.t
(** The current-generation hierarchical index (replaced wholesale on
    rebuild — do not cache across updates; read-only). *)

val alive_handles : 'a t -> int list
(** All alive stable handles, ascending. *)

val rebuild_now : 'a t -> unit
(** Re-run the whole offline pipeline immediately on the alive snapshot,
    regardless of the growth thresholds; counts toward {!rebuilds}.
    Handles remain stable.  Used by degradation wrappers to refresh an
    index whose structure went bad (e.g. after a spell of anomalous
    distances polluted its tables). *)
