(** Options shared by every query entry point.

    One record carries everything a query may be threaded with — a
    per-query distance budget, a domain pool for batches, the
    observability hooks and a reusable scratch — instead of each entry
    point growing its own spelling of the same optional arguments.
    [Index.search], [Hierarchical.search], [Online.search] (and their
    [_batch] variants, plus [Dbh_robust.Breaker.search]) all take
    [?opts].

    Fields an entry point cannot use are ignored: single-query [search]
    ignores [pool]; batch entry points ignore [trace] (a trace is
    single-domain by design — attach it to one query at a time). *)

type t = {
  budget : int option;
      (** Cap on distance computations {e per query} — each query gets a
          fresh [Budget.t] of this many computations, in batches too.
          Results whose budget ran out carry [truncated = true]. *)
  pool : Dbh_util.Pool.t option;
      (** Fan a [_batch] call's queries across these domains.  Answers
          and logical stats are identical to the sequential run. *)
  metrics : Dbh_obs.Metrics.t option;
      (** Record into this metric set instead of the ambient installed
          one ({!Dbh_obs.Metrics.install}). *)
  trace : Dbh_obs.Trace.t option;
      (** Record this query's event timeline.  Single-query entry points
          only. *)
  scratch : Scratch.t option;
      (** Reuse this workspace (seen mask, candidate buffer, pivot row)
          across queries instead of allocating per query.  Purely an
          allocation optimisation — answers and stats are identical.
          Single-domain: sequential entry points and sequential batches
          use it; pooled batches ignore it (each query allocates its
          own). *)
  probes_per_table : int;
      (** Buckets probed per table, base bucket included (default [1]).
          Values above 1 enable the multi-probe path: after each table's
          own bucket, up to [probes_per_table - 1] Hamming-adjacent
          buckets are probed in increasing flip-penalty order, flipping
          the bits whose projections landed nearest their thresholds.
          Requires [hamming_radius >= 1] to take effect. *)
  hamming_radius : int;
      (** Largest Hamming distance of probed keys from the base key
          (default [0] = multi-probe off; at most {!Key.max_radius}).
          With [probes_per_table = 1] {e and} [hamming_radius = 0] —
          the defaults — every query path is bit-identical to the
          single-probe engine. *)
}

val default : t
(** All fields [None] — plain, unobserved, unbounded queries — and the
    single-probe knobs ([probes_per_table = 1], [hamming_radius = 0]). *)

val make :
  ?budget:int ->
  ?pool:Dbh_util.Pool.t ->
  ?metrics:Dbh_obs.Metrics.t ->
  ?trace:Dbh_obs.Trace.t ->
  ?scratch:Scratch.t ->
  ?probes_per_table:int ->
  ?hamming_radius:int ->
  unit ->
  t

val budgeted : int -> t
(** [budgeted n] is [make ~budget:n ()] — the most common non-default. *)

val multiprobe : ?hamming_radius:int -> int -> t
(** [multiprobe n] is [make ~probes_per_table:n ~hamming_radius:2 ()] —
    the standard multi-probe setting (radius defaults to
    {!Key.max_radius}). *)
