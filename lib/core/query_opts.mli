(** Options shared by every query entry point.

    One record carries everything a query may be threaded with — a
    per-query distance budget, a domain pool for batches, the
    observability hooks and a reusable scratch — instead of each entry
    point growing its own spelling of the same optional arguments.
    [Index.search], [Hierarchical.search], [Online.search] (and their
    [_batch] variants, plus [Dbh_robust.Breaker.search]) all take
    [?opts].

    Fields an entry point cannot use are ignored: single-query [search]
    ignores [pool]; batch entry points ignore [trace] (a trace is
    single-domain by design — attach it to one query at a time). *)

type t = {
  budget : int option;
      (** Cap on distance computations {e per query} — each query gets a
          fresh [Budget.t] of this many computations, in batches too.
          Results whose budget ran out carry [truncated = true]. *)
  pool : Dbh_util.Pool.t option;
      (** Fan a [_batch] call's queries across these domains.  Answers
          and logical stats are identical to the sequential run. *)
  metrics : Dbh_obs.Metrics.t option;
      (** Record into this metric set instead of the ambient installed
          one ({!Dbh_obs.Metrics.install}). *)
  trace : Dbh_obs.Trace.t option;
      (** Record this query's event timeline.  Single-query entry points
          only. *)
  scratch : Scratch.t option;
      (** Reuse this workspace (seen mask, candidate buffer, pivot row)
          across queries instead of allocating per query.  Purely an
          allocation optimisation — answers and stats are identical.
          Single-domain: sequential entry points and sequential batches
          use it; pooled batches ignore it (each query allocates its
          own). *)
}

val default : t
(** All fields [None] — plain, unobserved, unbounded queries. *)

val make :
  ?budget:int ->
  ?pool:Dbh_util.Pool.t ->
  ?metrics:Dbh_obs.Metrics.t ->
  ?trace:Dbh_obs.Trace.t ->
  ?scratch:Scratch.t ->
  unit ->
  t

val budgeted : int -> t
(** [budgeted n] is [make ~budget:n ()] — the most common non-default. *)
