(* Multi-probe sequence generation over packed keys (in the spirit of
   Lv et al.'s multi-probe LSH, cited as [11] in the paper).

   A table key is k bits; each bit j carries a flip penalty — the margin
   by which its projection cleared the [t1, t2] thresholds.  The probe
   sequence enumerates the non-empty subsets of bit positions (up to
   [radius] bits per subset) in non-decreasing order of summed penalty,
   so the buckets most likely to hold the missed neighbor are probed
   first.

   Enumeration is the classic shift/expand walk: sort positions by
   penalty, seed a min-heap with the singleton {0} (cheapest bit), and
   on every pop of a subset whose largest sorted position is [last]
   push its two successors —

     shift   {.., last} -> {.., last+1}          (same size)
     expand  {.., last} -> {.., last, last+1}    (one bit more)

   Every subset of consecutive-or-not sorted positions is reached
   exactly once, both successors cost at least their parent (positions
   are penalty-sorted), so pops come out in non-decreasing total
   penalty.  The walk touches only the subsets it emits plus at most two
   pending successors each — O(probes log probes) for any k.

   The workspace (sort rows + heap arrays) is owned by the caller and
   reused across queries; [generate] allocates nothing beyond growing
   those arrays the first time a larger k or probe count shows up. *)

type t = {
  mutable order : int array;  (* bit positions sorted by (penalty, position) *)
  mutable pens : float array;  (* pens.(i) = penalty of position order.(i) *)
  (* Min-heap on hpen; parallel payload arrays. *)
  mutable hpen : float array;
  mutable hmask : int array;  (* key-space XOR mask of the subset *)
  mutable hlast : int array;  (* largest sorted position in the subset *)
  mutable hsize : int array;  (* subset cardinality *)
  mutable hn : int;
}

let create () =
  {
    order = [||];
    pens = [||];
    hpen = [||];
    hmask = [||];
    hlast = [||];
    hsize = [||];
    hn = 0;
  }

let ensure_width t w =
  if Array.length t.order < w then begin
    t.order <- Array.make w 0;
    t.pens <- Array.make w 0.
  end

let ensure_heap t n =
  if Array.length t.hpen < n then begin
    let m = max 8 (2 * n) in
    let grow_f a = Array.append a (Array.make (m - Array.length a) 0.) in
    let grow_i a = Array.append a (Array.make (m - Array.length a) 0) in
    t.hpen <- grow_f t.hpen;
    t.hmask <- grow_i t.hmask;
    t.hlast <- grow_i t.hlast;
    t.hsize <- grow_i t.hsize
  end

let swap t i j =
  let fp = t.hpen.(i) in
  t.hpen.(i) <- t.hpen.(j);
  t.hpen.(j) <- fp;
  let im = t.hmask.(i) in
  t.hmask.(i) <- t.hmask.(j);
  t.hmask.(j) <- im;
  let il = t.hlast.(i) in
  t.hlast.(i) <- t.hlast.(j);
  t.hlast.(j) <- il;
  let is = t.hsize.(i) in
  t.hsize.(i) <- t.hsize.(j);
  t.hsize.(j) <- is

let push t pen mask last size =
  ensure_heap t (t.hn + 1);
  let i = ref t.hn in
  t.hpen.(!i) <- pen;
  t.hmask.(!i) <- mask;
  t.hlast.(!i) <- last;
  t.hsize.(!i) <- size;
  t.hn <- t.hn + 1;
  while !i > 0 && t.hpen.((!i - 1) / 2) > t.hpen.(!i) do
    swap t ((!i - 1) / 2) !i;
    i := (!i - 1) / 2
  done

(* Pop the minimum into the caller's view; the payload is read out of
   slot [t.hn] (one past the live heap) right after. *)
let pop t =
  t.hn <- t.hn - 1;
  swap t 0 t.hn;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < t.hn && t.hpen.(l) < t.hpen.(!m) then m := l;
    if r < t.hn && t.hpen.(r) < t.hpen.(!m) then m := r;
    if !m = !i then continue := false
    else begin
      swap t !i !m;
      i := !m
    end
  done

let generate t ~base ~width ~radius ~max_probes ~penalty ~emit =
  Key.check_width width;
  if radius < 0 || radius > Key.max_radius then
    invalid_arg
      (Printf.sprintf "Probe_seq.generate: radius must be in [0, %d]" Key.max_radius);
  if max_probes > 0 && radius > 0 then begin
    ensure_width t width;
    let order = t.order and pens = t.pens in
    (* Insertion sort by (penalty, position): stable, so equal margins
       keep bit order and the sequence is deterministic. *)
    for j = 0 to width - 1 do
      let p = penalty j in
      let i = ref j in
      while !i > 0 && pens.(!i - 1) > p do
        order.(!i) <- order.(!i - 1);
        pens.(!i) <- pens.(!i - 1);
        decr i
      done;
      order.(!i) <- j;
      pens.(!i) <- p
    done;
    (* Bit j of the code sits at int bit (width - 1 - j). *)
    let mask_of i = 1 lsl (width - 1 - order.(i)) in
    t.hn <- 0;
    push t pens.(0) (mask_of 0) 0 1;
    let base = (base : Key.t :> int) in
    let emitted = ref 0 in
    while !emitted < max_probes && t.hn > 0 do
      pop t;
      let pen = t.hpen.(t.hn)
      and mask = t.hmask.(t.hn)
      and last = t.hlast.(t.hn)
      and size = t.hsize.(t.hn) in
      emit (Key.of_int ~width (base lxor mask));
      incr emitted;
      if last + 1 < width then begin
        push t
          (pen -. pens.(last) +. pens.(last + 1))
          (mask lxor mask_of last lxor mask_of (last + 1))
          (last + 1) size;
        if size < radius then
          push t (pen +. pens.(last + 1)) (mask lor mask_of (last + 1)) (last + 1) (size + 1)
      end
    done
  end
