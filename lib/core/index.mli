(** Single-level DBH index (paper Section IV-A, retrieval protocol of
    Section III applied to the DBH family).

    [l] hash tables, each keyed by the concatenation of [k] binary
    functions drawn uniformly with replacement from the family.  A query
    is hashed into each table; the union of the colliding buckets is the
    candidate set, which is then ranked by exact distance.  Reported cost
    follows the paper: distances to pivots actually computed (hash cost,
    bounded by |X_small|) plus distances to distinct candidates (lookup
    cost).

    Indexes are dynamic: objects live in a {!Store.t} that may be shared
    between several indexes (the hierarchical cascade shares one), and
    {!insert} / {!delete} maintain the tables incrementally. *)

type stats = {
  hash_cost : int;  (** distinct pivot distances computed for hashing *)
  lookup_cost : int;  (** distinct candidates compared exactly *)
  probes : int;  (** hash-table buckets inspected *)
}

val total_cost : stats -> int
(** [hash_cost + lookup_cost] — the paper's per-query number of distance
    computations. *)

val add_stats : stats -> stats -> stats

type 'a result = {
  nn : (int * float) option;
      (** Best candidate found: database id and exact distance; [None]
          when every bucket was empty. *)
  stats : stats;
  truncated : bool;
      (** [true] exactly when a distance budget ran out before the query
          completed — [nn] is then the best answer the paid-for
          computations could certify.  Always [false] without a budget. *)
  levels_probed : int;
      (** Cascade levels this query went through: always [1] for a
          single-level index; the hierarchical index reports how deep
          the cascade actually probed. *)
}

type 'a t

val build :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  family:'a Hash_family.t ->
  db:'a array ->
  ?pivot_table:float array array ->
  k:int ->
  l:int ->
  unit ->
  'a t
(** Construct the [l] [k]-bit tables over a fresh store seeded with [db].
    [1 <= k <= 62] (bucket keys are packed into an int) and [l >= 1].

    [pivot_table] — the output of [Hash_family.pivot_table family db] —
    supplies precomputed database-to-pivot distances, making construction
    distance-free; without it each database object pays up to one
    distance computation per pivot.

    [pool] fans the per-object hashing across domains; bucket insertion
    stays sequential in id order, so the resulting index is bit-identical
    to the sequential build for the same seed. *)

val build_on :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  family:'a Hash_family.t ->
  store:'a Store.t ->
  ?pivot_table:float array array ->
  k:int ->
  l:int ->
  unit ->
  'a t
(** Like {!build} over an existing (possibly shared) store.  When given,
    [pivot_table] must have one row per store id. *)

val k : 'a t -> int
val l : 'a t -> int
val store : 'a t -> 'a Store.t
val family : 'a t -> 'a Hash_family.t

val size : 'a t -> int
(** Number of alive indexed objects. *)

val bucket_count : 'a t -> int
(** Total number of non-empty buckets across tables (diagnostic).
    O(1): maintained by the CSR tables.  Counts dead (tombstoned)
    entries until {!compact}, as the list tables always did. *)

val largest_bucket : 'a t -> int
(** Size of the fullest bucket (diagnostic for balance) — O(1), dead
    entries included until {!compact}. *)

val delta_size : 'a t -> int
(** Entries inserted since the last freeze/{!compact}, still sitting in
    the tables' mutable deltas — the compaction-pressure signal. *)

val approx_table_words : 'a t -> int
(** Rough resident heap words of the tables (directory + offsets + ids
    + delta estimate); excludes store, family and pivots. *)

val compact : 'a t -> unit
(** Fold every table's insert delta into its frozen CSR base and drop
    tombstoned ids.  Queries see identical candidates before and after
    (dead ids were skipped, and never charged, either way); only the
    diagnostics change — deltas empty, dead entries no longer counted. *)

val compacted : 'a t -> 'a t
(** Pure {!compact}: an index with freshly compacted tables sharing the
    store, family and function choices of [t], which is left untouched.
    For publishing through an atomic pointer while concurrent readers
    drain the old tables. *)

val iter_buckets : 'a t -> (int -> int -> int list -> unit) -> unit
(** [iter_buckets t f] calls [f table key bucket] for every non-empty
    bucket, tables in order, keys ascending, each bucket in query
    iteration order (dead ids included).  Allocates the lists — cold
    paths only (diagnostics, migration, reference implementations). *)

(** {1 Queries}

    The canonical entry points are {!search} and {!search_batch},
    driven by one {!Query_opts.t} record (budget, pool, metrics,
    trace).

    When a metric set is reachable (explicit [opts.metrics] or an
    installed ambient set), every completed query records its logical
    cost — see {!Dbh_obs.Metrics}; with [opts.trace] the query also
    records its full event timeline. *)

val search : ?opts:Query_opts.t -> 'a t -> 'a -> 'a result
(** Approximate nearest neighbor of a query object.

    [opts.budget] caps the total distance computations (hashing +
    candidate comparisons) this query may spend.  The budget is charged
    before every evaluation, so the cap is never exceeded; when it runs
    out the result carries the best candidate found so far and
    [truncated = true].  [opts.pool] is ignored (single query).

    [opts.probes_per_table] with [opts.hamming_radius] turns on the
    multi-probe path ({!Query_opts.multiprobe}): each table also probes
    its lowest-flip-penalty Hamming-adjacent buckets, trading a few
    extra bucket reads for recall that would otherwise require more
    tables.  At the defaults the query is bit-identical to the
    single-probe engine. *)

val search_batch : ?opts:Query_opts.t -> 'a t -> 'a array -> 'a result array
(** One {!search} per element, in input order.  [opts.budget] caps the
    distance computations of {e each} query separately (a fresh budget
    per query), so batched results — answers, stats, truncation flags —
    are exactly what the same per-query calls would return.
    [opts.pool] fans the queries across domains; queries only read the
    index, so the batch is safe and the results identical to the
    sequential run.  [opts.trace] is ignored: traces are single-domain
    by design. *)

val query_knn : ?opts:Query_opts.t -> 'a t -> int -> 'a -> (int * float) array * stats
(** [query_knn t m q]: the [m] best candidates (sorted by distance) from
    the colliding buckets; may return fewer when buckets are sparse.
    Only [opts.metrics]/[opts.trace] apply (this path has no budget or
    batch machinery). *)

val query_range : ?opts:Query_opts.t -> 'a t -> float -> 'a -> (int * float) list * stats
(** Candidates within the given distance of the query (the near-neighbor
    flavour of Section III), sorted by distance.  Options as in
    {!query_knn}. *)

val query_multiprobe : ?opts:Query_opts.t -> 'a t -> probes:int -> 'a -> 'a result
(** Multi-probe retrieval (in the spirit of Lv et al., cited as [11] in
    the paper): besides the query's own bucket, each table also probes
    the [probes] buckets obtained by flipping the lowest-margin bits —
    the binary functions whose projection value falls closest to a
    threshold.  Recovers recall comparable to a larger [l] without
    building more tables; hashing cost is unchanged.  Options as in
    {!query_knn}. *)

val query_budgeted : ?opts:Query_opts.t -> 'a t -> max_candidates:int -> 'a -> 'a result
(** Like {!search}, but evaluates exact distances for at most
    [max_candidates] candidates, preferring those that collide in the
    most tables (higher empirical collision rate ⇒ higher model
    probability of being the nearest neighbor).  Caps the lookup cost at
    a known constant per query.  Options as in {!query_knn}. *)

(** {1 Dynamic updates} *)

val insert : 'a t -> 'a -> int
(** Append a new object to the store and index it; returns its id.
    Costs at most one distance computation per pivot.  When the store is
    shared, other indexes do {e not} see the object until they
    {!index_existing} it. *)

val index_existing : 'a t -> int -> unit
(** Index an object already present in the (shared) store.  Idempotence
    is not checked — indexing twice duplicates the bucket entry. *)

val delete : 'a t -> int -> unit
(** Tombstone an id in the store: it stops being returned by {e any}
    index over that store.  O(1); table entries are skipped lazily. *)

(** {1 Plumbing shared with the hierarchical index} *)

val candidates_into :
  ?trace:Dbh_obs.Trace.t ->
  ?level:int ->
  ?limit:int ->
  ?probes:int ->
  ?radius:int ->
  ?probe_counter:int ref ->
  'a t ->
  'a Hash_family.cache ->
  scratch:Scratch.t ->
  unit
(** Mark this index's fresh alive candidates into [scratch]: ids not yet
    marked are marked (in bucket-iteration order) and readable from the
    scratch's candidate buffer; already-marked ids are skipped.  The
    scratch capacity must cover the store ([Scratch.ensure]).  Exposed so
    multi-index schemes can share the candidate dedup across indexes —
    record [Scratch.count] before the call to delimit the fresh range.
    [trace] records one [Bucket_probe] per table, tagged with [level]
    (default 0).  [limit] (default unbounded) drops ids at or past it —
    the visibility bound concurrent readers pin before probing, so ids a
    racing writer published mid-query never enter the candidate set.

    [probes] (default [1]) and [radius] (default [0]) enable the
    multi-probe path when [probes > 1] and [radius > 0]: after the base
    buckets, each table probes up to [probes - 1] extra keys within
    [radius] bit flips of its base key, cheapest flips first (the bits
    whose projections landed nearest their thresholds); when the probe
    budget covers the whole Hamming ball the ball is served by sorted
    range scans over the table directory instead.  At the defaults the
    marked set is bit-identical to the historical single-probe walk.
    [probe_counter] accumulates probed buckets: the base [l] claimed
    upfront (before any hash evaluation, so a budget that dies mid-hash
    still counts them — the historical accounting), plus one per extra
    probed key (the full ball when range scans serve it). *)

(** {1 Persistence}

    The structural part of an index (family, objects, tables) is written
    in a versioned binary format; objects go through a caller-supplied
    codec, and the space is re-attached on load (it cannot be
    serialized).  Loading costs no distance computations. *)

val write : encode:('a -> string) -> Buffer.t -> 'a t -> unit

val read :
  decode:(string -> 'a) ->
  space:'a Dbh_space.Space.t ->
  Dbh_util.Binio.reader ->
  'a t
(** Raises [Dbh_util.Binio.Corrupt] on malformed input. *)

val save : encode:('a -> string) -> path:string -> 'a t -> unit
(** Write the index atomically: the serialized form is wrapped in a
    checksummed envelope ({!Dbh_persist.Envelope}) and reaches [path]
    via temp-file + fsync + rename, so a crash mid-save leaves any
    previous file at [path] intact. *)

val load : decode:(string -> 'a) -> space:'a Dbh_space.Space.t -> path:string -> 'a t
(** Verify the envelope checksums and decode.  Raises
    [Dbh_util.Binio.Corrupt] on any corruption — flipped bytes,
    truncation, trailing garbage, or a [decode] failure — and never
    returns a partially-read index. *)

(**/**)

(* Query plumbing shared with Hierarchical, Online and the robust layer:
   the core query taking a caller-managed Budget.t plus explicit
   observability hooks (what the layered search functions are built
   from), and the one-stop metrics recording for a completed query. *)
val query_with :
  ?budget:Budget.t ->
  ?metrics:Dbh_obs.Metrics.t ->
  ?trace:Dbh_obs.Trace.t ->
  ?scratch:Scratch.t ->
  ?probes:int ->
  ?radius:int ->
  'a t ->
  'a ->
  'a result

val observe_query :
  ?metrics:Dbh_obs.Metrics.t ->
  ?seconds:float ->
  ?cache_hits:int ->
  ?nn_distance:float ->
  stats:stats ->
  truncated:bool ->
  levels_probed:int ->
  unit ->
  unit

(* Plumbing for composite indexes' persistence (used by Hierarchical):
   table structure without the family and store.  The v1 body packs keys
   at k bits per object and re-buckets on load; the packed (v2) body
   dumps the live CSR arrays and loads without re-bucketing. *)
val write_body : Buffer.t -> 'a t -> unit
val read_body :
  family:'a Hash_family.t -> store:'a Store.t -> Dbh_util.Binio.reader -> 'a t
val write_body_packed : Buffer.t -> 'a t -> unit
val read_body_packed :
  family:'a Hash_family.t -> store:'a Store.t -> Dbh_util.Binio.reader -> 'a t
val write_store : encode:('a -> string) -> Buffer.t -> 'a Store.t -> unit
val read_store : decode:(string -> 'a) -> Dbh_util.Binio.reader -> 'a Store.t
