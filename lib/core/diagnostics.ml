type table_stats = {
  tables : int;
  bits_per_key : int;
  indexed_objects : int;
  non_empty_buckets : int;
  largest_bucket : int;
  mean_bucket : float;
  largest_bucket_fraction : float;
  delta_entries : int;
  directory_fill : float;
  approx_table_bytes : int;
}

let index_stats index =
  let objects = Index.size index in
  let buckets = Index.bucket_count index in
  let largest = Index.largest_bucket index in
  let l = Index.l index in
  let k = Index.k index in
  (* Mean fraction of each table's 2^k key space that holds a bucket.
     Computed in floats: 2^k overflows no further than the exponent. *)
  let directory_fill =
    float_of_int buckets /. (float_of_int l *. (2. ** float_of_int k))
  in
  {
    tables = l;
    bits_per_key = k;
    indexed_objects = objects;
    non_empty_buckets = buckets;
    largest_bucket = largest;
    mean_bucket =
      (if buckets = 0 then 0. else float_of_int (objects * l) /. float_of_int buckets);
    largest_bucket_fraction =
      (if objects = 0 then 0. else float_of_int largest /. float_of_int objects);
    delta_entries = Index.delta_size index;
    directory_fill;
    approx_table_bytes = Index.approx_table_words index * (Sys.word_size / 8);
  }

(* Bucket-size histogram across every table of an index: sorted
   [(size, how_many_buckets)], dead entries included. *)
let bucket_histogram index =
  let counts = Hashtbl.create 64 in
  Index.iter_buckets index (fun _table _key bucket ->
      let size = List.length bucket in
      Hashtbl.replace counts size (1 + Option.value ~default:0 (Hashtbl.find_opt counts size)));
  let hist = Hashtbl.fold (fun size n acc -> (size, n) :: acc) counts [] in
  Array.of_list (List.sort compare hist)

type table_profile = {
  table : int;
  directory_keys : int;
  key_density : float;
  empty_bucket_rate : float;
  mean_alive_bucket : float;
}

(* Per-table bucket census in one pass over the directories.  A bucket
   whose entries are all tombstoned still occupies its key (entries are
   skipped lazily at query time), so the empty-bucket rate is the
   fraction of directory keys a probe can hit and find nothing alive —
   exactly the sparsity signal that makes extra Hamming probes pay. *)
let table_profiles index =
  let l = Index.l index and k = Index.k index in
  let keys = Array.make l 0 in
  let dead = Array.make l 0 in
  let alive = Array.make l 0 in
  let store = Index.store index in
  Index.iter_buckets index (fun table _key bucket ->
      keys.(table) <- keys.(table) + 1;
      let live =
        List.fold_left
          (fun acc id -> if Store.is_alive store id then acc + 1 else acc)
          0 bucket
      in
      if live = 0 then dead.(table) <- dead.(table) + 1;
      alive.(table) <- alive.(table) + live);
  let key_space = 2. ** float_of_int k in
  Array.init l (fun t ->
      {
        table = t;
        directory_keys = keys.(t);
        key_density = float_of_int keys.(t) /. key_space;
        empty_bucket_rate =
          (if keys.(t) = 0 then 0. else float_of_int dead.(t) /. float_of_int keys.(t));
        mean_alive_bucket =
          (if keys.(t) = 0 then 0. else float_of_int alive.(t) /. float_of_int keys.(t));
      })

let pp_table_profile ppf p =
  Format.fprintf ppf
    "table %d: keys=%d density=%.2e empty=%.1f%% mean alive bucket=%.2f" p.table
    p.directory_keys p.key_density
    (100. *. p.empty_bucket_rate)
    p.mean_alive_bucket

let pp_table_stats ppf s =
  Format.fprintf ppf
    "l=%d k=%d objects=%d buckets=%d largest=%d (%.1f%% of objects) mean occupancy=%.2f"
    s.tables s.bits_per_key s.indexed_objects s.non_empty_buckets s.largest_bucket
    (100. *. s.largest_bucket_fraction)
    s.mean_bucket

let hierarchical_stats h =
  let infos = Hierarchical.levels h in
  let indexes = Hierarchical.indexes h in
  Array.mapi (fun i info -> (info, index_stats indexes.(i))) infos

let family_balance_profile ~rng ?(num_fns = 200) family sample =
  if Array.length sample = 0 then
    invalid_arg "Diagnostics.family_balance_profile: empty sample";
  let fn_ids = Hash_family.sample_fn_indices ~rng family (min num_fns (Hash_family.size family)) in
  let balances = Array.map (fun i -> Hash_family.balance family i sample) fn_ids in
  ( Dbh_util.Stats.mean balances,
    Dbh_util.Stats.minimum balances,
    Dbh_util.Stats.maximum balances )

let healthy ?(max_bucket_fraction = 0.5) s =
  s.indexed_objects = 0
  || (s.non_empty_buckets > 1 && s.largest_bucket_fraction <= max_bucket_fraction)

type online_stats = {
  live : int;
  tombstones : int;
  delta_size : int;
}

let online_stats o =
  { live = Online.size o; tombstones = Online.tombstones o; delta_size = Online.delta_size o }

let pp_online_stats ppf s =
  Format.fprintf ppf "live=%d tombstones=%d delta=%d" s.live s.tombstones s.delta_size
