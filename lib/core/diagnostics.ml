type table_stats = {
  tables : int;
  bits_per_key : int;
  indexed_objects : int;
  non_empty_buckets : int;
  largest_bucket : int;
  mean_bucket : float;
  largest_bucket_fraction : float;
  delta_entries : int;
  directory_fill : float;
  approx_table_bytes : int;
}

let index_stats index =
  let objects = Index.size index in
  let buckets = Index.bucket_count index in
  let largest = Index.largest_bucket index in
  let l = Index.l index in
  let k = Index.k index in
  (* Mean fraction of each table's 2^k key space that holds a bucket.
     Computed in floats: 2^k overflows no further than the exponent. *)
  let directory_fill =
    float_of_int buckets /. (float_of_int l *. (2. ** float_of_int k))
  in
  {
    tables = l;
    bits_per_key = k;
    indexed_objects = objects;
    non_empty_buckets = buckets;
    largest_bucket = largest;
    mean_bucket =
      (if buckets = 0 then 0. else float_of_int (objects * l) /. float_of_int buckets);
    largest_bucket_fraction =
      (if objects = 0 then 0. else float_of_int largest /. float_of_int objects);
    delta_entries = Index.delta_size index;
    directory_fill;
    approx_table_bytes = Index.approx_table_words index * (Sys.word_size / 8);
  }

(* Bucket-size histogram across every table of an index: sorted
   [(size, how_many_buckets)], dead entries included. *)
let bucket_histogram index =
  let counts = Hashtbl.create 64 in
  Index.iter_buckets index (fun _table _key bucket ->
      let size = List.length bucket in
      Hashtbl.replace counts size (1 + Option.value ~default:0 (Hashtbl.find_opt counts size)));
  let hist = Hashtbl.fold (fun size n acc -> (size, n) :: acc) counts [] in
  Array.of_list (List.sort compare hist)

let pp_table_stats ppf s =
  Format.fprintf ppf
    "l=%d k=%d objects=%d buckets=%d largest=%d (%.1f%% of objects) mean occupancy=%.2f"
    s.tables s.bits_per_key s.indexed_objects s.non_empty_buckets s.largest_bucket
    (100. *. s.largest_bucket_fraction)
    s.mean_bucket

let hierarchical_stats h =
  let infos = Hierarchical.levels h in
  let indexes = Hierarchical.indexes h in
  Array.mapi (fun i info -> (info, index_stats indexes.(i))) infos

let family_balance_profile ~rng ?(num_fns = 200) family sample =
  if Array.length sample = 0 then
    invalid_arg "Diagnostics.family_balance_profile: empty sample";
  let fn_ids = Hash_family.sample_fn_indices ~rng family (min num_fns (Hash_family.size family)) in
  let balances = Array.map (fun i -> Hash_family.balance family i sample) fn_ids in
  ( Dbh_util.Stats.mean balances,
    Dbh_util.Stats.minimum balances,
    Dbh_util.Stats.maximum balances )

let healthy ?(max_bucket_fraction = 0.5) s =
  s.indexed_objects = 0
  || (s.non_empty_buckets > 1 && s.largest_bucket_fraction <= max_bucket_fraction)

type online_stats = {
  live : int;
  tombstones : int;
  delta_size : int;
}

let online_stats o =
  { live = Online.size o; tombstones = Online.tombstones o; delta_size = Online.delta_size o }

let pp_online_stats ppf s =
  Format.fprintf ppf "live=%d tombstones=%d delta=%d" s.live s.tombstones s.delta_size
