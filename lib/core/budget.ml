type t = {
  limit : int;
  mutable spent : int;
  mutable exhausted : bool;
}

exception Exhausted

let create limit =
  if limit < 0 then invalid_arg "Budget.create: negative limit";
  { limit; spent = 0; exhausted = false }

let limit t = t.limit
let spent t = t.spent
let remaining t = t.limit - t.spent
let exhausted t = t.exhausted

let charge t =
  if t.spent >= t.limit then begin
    t.exhausted <- true;
    raise Exhausted
  end;
  t.spent <- t.spent + 1

let is_exhausted_exn = function Exhausted -> true | _ -> false
