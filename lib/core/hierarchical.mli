(** Hierarchical DBH (paper Section V-A).

    Sample queries are ranked by their nearest-neighbor distance
    [D(Q, N(Q))] and split into [s] strata; a separate [(k_i, l_i)] pair
    is optimized for each stratum (queries with close neighbors tolerate
    much cheaper indexes) and a DBH index built for each, all sharing one
    hash family — and therefore one pivot-distance cache per query.

    Retrieval cascades through the strata in increasing [D_i] order and
    stops as soon as the best distance found is within the current
    stratum's radius [D_i], which certifies (statistically) that later,
    more expensive indexes are unnecessary for this query. *)

type level_info = {
  k : int;
  l : int;
  d_threshold : float;
      (** [D_i]: largest sample-query NN distance in stratum [i]. *)
  predicted_accuracy : float;
  predicted_cost : float;
}

type 'a t

val build :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  family:'a Hash_family.t ->
  db:'a array ->
  analysis:Analysis.t ->
  target_accuracy:float ->
  ?pivot_table:float array array ->
  ?levels:int ->
  ?k_min:int ->
  ?k_max:int ->
  ?l_max:int ->
  unit ->
  'a t
(** Build the cascade.  [levels] (the paper's [s]) defaults to 5, the
    value used in all the paper's experiments.  Strata whose accuracy
    target is unreachable within [l_max] fall back to the most accurate
    reachable setting.  Raises when [analysis] has fewer sample queries
    than [levels].

    [pool] fans each level's per-object hashing across domains (levels
    themselves stay sequential — they share the rng stream); the cascade
    is bit-identical to the sequential build for the same seed. *)

val levels : 'a t -> level_info array

val family : 'a t -> 'a Hash_family.t
(** The hash family shared by every level — the prior handed to
    {!Hash_family.retune} when re-tuning from live traffic. *)

val store : 'a t -> 'a Store.t
(** The object store shared by all levels. *)

val indexes : 'a t -> 'a Index.t array
(** The per-level single-level indexes, in cascade order (shared with the
    cascade — do not mutate through both views concurrently). *)

val search : ?opts:Query_opts.t -> 'a t -> 'a -> 'a Index.result
(** Cascaded retrieval.  Stats aggregate across probed levels: hash cost
    counts distinct pivots overall (the family cache is shared), lookup
    cost counts distinct candidates overall (candidates reappearing in
    later levels are not recharged).  The result's
    [Index.levels_probed] reports how deep the cascade went.

    [opts.budget] caps total distance computations across the whole
    cascade (charged before each evaluation, so never exceeded); on
    exhaustion the result is best-so-far with [truncated = true].
    [opts.metrics]/[opts.trace] instrument the query — the cascade
    records once (per query, not per level); [opts.pool] is ignored. *)

val search_batch : ?opts:Query_opts.t -> 'a t -> 'a array -> 'a Index.result array
(** One cascaded {!search} per element, in input order, each under its
    own fresh budget of [opts.budget] distance computations — semantics
    identical to the per-query calls.  [opts.pool] fans the queries
    across domains; [opts.trace] is ignored (traces are single-domain
    by design). *)

(** {1 Dynamic updates} *)

val insert : 'a t -> 'a -> int
(** Append an object to the shared store and index it in every level;
    returns its id. *)

val delete : 'a t -> int -> unit
(** Tombstone an id; it disappears from every level at once. *)

val compact : 'a t -> unit
(** Fold every level's insert delta into its frozen base and drop
    tombstoned ids from the tables ({!Index.compact} per level).
    Queries see identical candidates before and after. *)

val compacted : 'a t -> 'a t
(** Pure {!compact}: a cascade with freshly compacted tables
    ({!Index.compacted} per level) sharing the store and family of [t],
    which is left untouched — for atomic publication. *)

val delta_size : 'a t -> int
(** Entries sitting in the levels' insert deltas — the compaction
    pressure across the cascade. *)

(** {1 Persistence}

    Same conventions as {!Index.write}: one family and one store are
    written, followed by each level's tables; the space is re-attached on
    load. *)

val write : encode:('a -> string) -> Buffer.t -> 'a t -> unit

val write_packed : encode:('a -> string) -> Buffer.t -> 'a t -> unit
(** The v2 body: each level's live CSR arrays verbatim (delta folded,
    tombstones dropped) instead of the v1 bit-packed key blocks.  Loads
    without any re-bucketing.  Used by version-2 [Online.Durable]
    snapshots. *)

val read :
  decode:(string -> 'a) ->
  space:'a Dbh_space.Space.t ->
  Dbh_util.Binio.reader ->
  'a t

val read_any :
  decode:(string -> 'a) ->
  space:'a Dbh_space.Space.t ->
  Dbh_util.Binio.reader ->
  'a t
(** Accept a v1 or a v2 body by its format tag — the migration read
    path for durable snapshots. *)

val save : encode:('a -> string) -> path:string -> 'a t -> unit
(** Atomic, checksummed save — same guarantees as {!Index.save}. *)

val load : decode:(string -> 'a) -> space:'a Dbh_space.Space.t -> path:string -> 'a t
(** Envelope-verified load — raises [Dbh_util.Binio.Corrupt] on any
    corruption, like {!Index.load}. *)

(**/**)

(* Cascade query core taking a caller-managed Budget.t plus explicit
   observability hooks — what Online and the robust layer build on. *)
val query_with :
  ?budget:Budget.t ->
  ?metrics:Dbh_obs.Metrics.t ->
  ?trace:Dbh_obs.Trace.t ->
  ?scratch:Scratch.t ->
  ?limit:int ->
  ?probes:int ->
  ?radius:int ->
  'a t ->
  'a ->
  'a Index.result

(* Same core with the probe knobs as required labels: hot callers that
   already hold plain ints (Online, the robust layer) use this to avoid
   boxing a [Some] per knob per query. *)
val query_probed :
  ?budget:Budget.t ->
  ?metrics:Dbh_obs.Metrics.t ->
  ?trace:Dbh_obs.Trace.t ->
  ?scratch:Scratch.t ->
  ?limit:int ->
  probes:int ->
  radius:int ->
  'a t ->
  'a ->
  'a Index.result
(* [limit] bounds candidate admission to ids below it — the visibility
   bound a concurrent reader pins before probing (see
   [Index.candidates_into]).  Sequential callers omit it. *)
