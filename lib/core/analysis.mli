(** Statistical performance model of DBH (paper Section IV-C).

    Everything DBH knows about a space it learns from samples: for sample
    queries [Q] (drawn from the database, as in the paper's experiments)
    it estimates the collision rate [C(Q, N(Q))] with the true nearest
    neighbor and the rates [C(Q, X)] against a database sample.  Accuracy
    (Eq. 11) and lookup cost (Eq. 12) for any [(k,l)] then follow from
    the closed forms of {!Collision}, and the hashing cost from the pivot
    usage of the family.  All of this is offline; none of it touches the
    cost of online retrieval (Sec. IV-D). *)

type t
(** The fitted model: pure numbers, detached from the space. *)

val build :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  family:'a Hash_family.t ->
  db:'a array ->
  query_indices:int array ->
  ?num_fns:int ->
  ?db_sample:int ->
  ?ground_truth:(int * float) array ->
  unit ->
  t
(** [build ~rng ~family ~db ~query_indices ()] fits the model using the
    database objects at [query_indices] as sample queries.

    - [num_fns] (default 250): functions sampled (with replacement) from
      the family to estimate collision rates.
    - [db_sample] (default 500): database objects sampled to estimate the
      lookup-cost sum of Eq. 12 (scaled to the full database size).
    - [ground_truth]: optional precomputed [(nn_index, nn_distance)] per
      sample query (self-matches excluded); brute force is used otherwise.

    Offline cost: O((|queries| + db_sample) · num_pivots) distances for
    signatures plus O(|queries| · |db|) for ground truth when not
    supplied.  [pool] fans the ground-truth scans, signatures and
    per-query collision rows across domains; the fitted model is
    bit-identical to the sequential build for the same seed. *)

val num_queries : t -> int
val db_size : t -> int

val nn_distance : t -> int -> float
(** Distance from sample query [i] to its true nearest neighbor. *)

val nn_collision : t -> int -> float
(** Estimated [C(Q_i, N(Q_i))]. *)

val accuracy : ?probes:int -> ?radius:int -> t -> k:int -> l:int -> float
(** Predicted retrieval accuracy (Eq. 11): mean over sample queries of
    [C_{k,l}(Q, N(Q))].  [probes]/[radius] (defaults [1]/[0]) switch the
    per-rate map to {!Collision.c_kl_probed} — the multi-probe cascade;
    at the defaults the estimate is bit-identical to the historical
    one. *)

val accuracy_of_query : ?probes:int -> ?radius:int -> t -> int -> k:int -> l:int -> float
(** Per-query success probability [C_{k,l}(Q_i, N(Q_i))]. *)

val lookup_cost : ?probes:int -> ?radius:int -> t -> k:int -> l:int -> float
(** Predicted mean lookup cost (Eq. 12), scaled to the full database.
    Multi-probe raises it: probed buckets admit extra candidates at the
    probed per-table rate. *)

val hash_cost : t -> k:int -> l:int -> float
(** Expected number of distinct pivots referenced by [k·l] functions
    drawn with replacement — the expected [HashCost_{k,l}] (Sec. V-B),
    never exceeding the number of pivots.  Multi-probe leaves this
    unchanged: extra probes reuse the base key's cached pivot
    distances. *)

val total_cost : ?probes:int -> ?radius:int -> t -> k:int -> l:int -> float
(** [lookup_cost + hash_cost] (Eq. 13/14, averaged over queries). *)

val lookup_cost_of_query : ?probes:int -> ?radius:int -> t -> int -> k:int -> l:int -> float
(** Per-query Eq. 12 term (scaled to the full database). *)

val restrict : t -> int array -> t
(** Model restricted to a subset of its sample queries (by position,
    [0 .. num_queries-1]) — used by hierarchical DBH to fit per-stratum
    parameters. *)

val queries_by_nn_distance : t -> int array
(** Sample-query positions sorted by increasing [nn_distance] — the
    ranking used to stratify queries in Sec. V-A. *)
