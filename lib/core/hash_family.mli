(** The distance-based family of binary hash functions H_DBH
    (paper Section IV-A and V-B).

    Each binary function is a thresholded line projection

    {v h(x) = 1  iff  F^{X1,X2}(x) ∈ [t1, t2] v}

    where [X1, X2] are {e pivots} drawn from a small subset X_small of the
    database (Sec. V-B bounds the hashing cost by |X_small|), and the
    interval [\[t1,t2\]] is drawn from V(X1,X2) — the set of intervals
    capturing half the data mass (Eq. 6) — using the quantiles of the
    projections of a data sample.

    {e Which} pairs and intervals make it into the family is decided by a
    pluggable {!Selector.t}: the default reproduces the paper's uniform
    draws bit-for-bit, while the data-dependent selectors score candidate
    functions against the construction sample.  Every selector emits the
    same [binary_fn]s, so the collision model, optimal-(k,l) machinery,
    multi-probe margins and persistence are selector-agnostic.

    Query-time evaluations share a {!cache} of distances from the query to
    the pivots, so evaluating any number of binary functions costs at most
    [num_pivots] distance computations — the paper's [HashCost]. *)

type binary_fn = private {
  p1 : int;  (** index of X1 in {!pivots} *)
  p2 : int;  (** index of X2 in {!pivots} *)
  d12 : float;  (** D(X1, X2), cached at construction *)
  t1 : float;  (** lower threshold (may be [neg_infinity]) *)
  t2 : float;  (** upper threshold (may be [infinity]) *)
  spread : float;
      (** interquartile range of the sample projections on this line —
          the scale used to normalize multi-probe bit margins *)
}

type 'a t

val make :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  space:'a Dbh_space.Space.t ->
  ?num_pivots:int ->
  ?threshold_sample:int ->
  ?max_functions:int ->
  ?selector:Selector.t ->
  'a array ->
  'a t
(** [make ~rng ~space data] builds the family from a database sample.

    - [num_pivots] (default 100): size of X_small, drawn uniformly from
      [data] without replacement (all of [data] when smaller).  The paper
      reports 100 pivots → C(100,2) = 4950 functions.
    - [threshold_sample] (default 500): how many objects are projected on
      each line to estimate the quantiles defining V(X1,X2).
    - [max_functions]: build only this many functions.  Under the uniform
      selector they sit on distinct random pivot pairs; under a
      data-dependent selector they are the top-scoring pairs of all
      C(m,2) candidates.
    - [selector] (default {!Selector.default}): how pairs and intervals
      are chosen — see {!Selector}.  [Selector.uniform] is bit-identical
      to the pre-selector builds for the same seed.

    Construction cost: at most [num_pivots · threshold_sample] distance
    computations (pivot–sample distances are computed once and shared by
    every pair), plus C(m,2) pivot–pivot distances.  Data-dependent
    selectors pay extra {e arithmetic} (scoring) but no extra distance
    computations.

    [pool] parallelizes the pivot–sample distance matrix and the per-pair
    projection/sort/scoring work across domains; anything that consumes
    [rng] stays sequential in pair order, so for every selector the
    family is bit-identical to the sequential build for the same seed.

    Raises [Invalid_argument] when [data] has fewer than 2 distinct-
    distance objects (no usable projection line exists). *)

val space : 'a t -> 'a Dbh_space.Space.t
val size : 'a t -> int
(** Number of binary functions in the family. *)

val num_pivots : 'a t -> int
val pivots : 'a t -> 'a array
(** The X_small array; do not mutate. *)

val fn : 'a t -> int -> binary_fn
(** The i-th binary function's definition. *)

val selector : 'a t -> Selector.t
(** The selector this family was built (or loaded) with.  Families loaded
    from v1 envelopes report {!Selector.default}. *)

val selector_tag : 'a t -> string
(** [Selector.tag (selector t)] — the tag recorded in the envelope. *)

(** {1 Re-tuning from live traffic}

    The production loop: serving records per-query observations in the
    {!Dbh_obs.Metrics} registry; {!observations_of_metrics} distills them
    into the observed [D(Q,N(Q))] strata and table hit rate; {!retune}
    rebuilds the family with the data-dependent scoring anchored to the
    {e observed} distance scale instead of the construction sample's own
    spread.  [Online.retune] wraps this and hot-swaps the result behind
    its atomic snapshot pointer. *)

type observations = {
  nn_distance_strata : (float * int) array;
      (** observed query→nearest-neighbor distances, as
          [(representative distance, query count)] strata (histogram
          buckets of [dbh_query_nn_distance]) *)
  table_hit_rate : float;
      (** candidate comparisons per bucket probe — how much lookup work
          an average probe yields; a trigger signal for when re-tuning
          is worth it *)
}

val no_observations : observations
(** Empty strata; {!retune} with it degrades to a plain rebuild. *)

val observations_of_metrics : Dbh_obs.Metrics.t -> observations
(** Distill the live-traffic strata out of a metric set's
    [dbh_query_nn_distance] histogram and probe/lookup counters. *)

val retune :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  ?num_pivots:int ->
  ?threshold_sample:int ->
  ?max_functions:int ->
  ?selector:Selector.t ->
  observations:observations ->
  'a t ->
  'a array ->
  'a t
(** [retune ~rng ~observations t data] builds a replacement family over
    [data] (same space as [t]).  [selector] defaults to [t]'s selector;
    [num_pivots] to [t]'s pivot count.  The weighted median of the
    observed strata becomes the distance scale data-dependent scoring
    anchors to: boundaries count as safe once their local gap clears the
    distance at which live queries actually meet their neighbors, and
    neighbor-sensitive neighborhoods adapt to that radius.  With empty
    strata (or the uniform selector) this is a plain rebuild. *)

(** {1 Evaluation} *)

type 'a cache
(** Per-object memo of distances to pivots.  The number of distances
    actually computed is the realized hashing cost for that object. *)

val cache : ?budget:Budget.t -> ?trace:Dbh_obs.Trace.t -> 'a t -> 'a -> 'a cache
(** [budget] makes [Budget.charge budget] run before every uncached
    pivot distance, so hashing stops (with [Budget.Exhausted]) the
    moment the budget runs out — partial hashing never overshoots.
    [trace] records a [Pivot_miss]/[Pivot_hit] event per lookup. *)

val cache_in :
  ?budget:Budget.t ->
  ?trace:Dbh_obs.Trace.t ->
  'a t ->
  dists:float array ->
  'a ->
  'a cache
(** Like {!cache} over a caller-owned workspace row of at least
    {!num_pivots} floats (re-initialised here), so repeated queries can
    recycle one allocation.  The row is borrowed until the cache is
    dropped.  Raises [Invalid_argument] when the row is too short. *)

val cache_cost : 'a cache -> int
(** Distinct pivot distances computed through this cache so far. *)

val cache_hits : 'a cache -> int
(** Pivot-distance lookups served from the cache (no distance paid). *)

val pivot_distance : 'a t -> 'a cache -> int -> float
(** Distance from the cached object to pivot [i], memoized. *)

val eval : 'a t -> 'a cache -> int -> bool
(** [eval family cache i] applies binary function [i]; costs at most two
    uncached distance computations. *)

val cache_with_distances : 'a t -> 'a -> float array -> 'a cache
(** A cache whose pivot distances are already known (one float per pivot,
    in pivot order).  Evaluations through it cost no distance
    computations and {!cache_cost} stays 0.  Used to share the database×
    pivot distance table across many index constructions. *)

val pivot_table : ?pool:Dbh_util.Pool.t -> 'a t -> 'a array -> float array array
(** [pivot_table t objs] computes the distances from every object to every
    pivot — [|objs|·|pivots|] distance computations, done once and reused
    via {!cache_with_distances} by every subsequent index build over the
    same database.  [pool] spreads the rows (one per object) across
    domains; the table is identical either way. *)

val eval_direct : 'a t -> 'a -> int -> bool
(** Uncached evaluation (exactly two distance computations); for tests. *)

val project : 'a t -> 'a cache -> int -> float
(** The raw projection value F^{X1,X2}(x) under function [i]'s line. *)

val margin : 'a t -> 'a cache -> int -> float
(** Distance from F(x) to the nearest threshold of function [i],
    normalized by the function's projection {!binary_fn.spread} — how
    close the object is to flipping this bit.  Small margins identify the
    bits a multi-probe query should perturb first. *)

(** {1 Sampling and signatures} *)

val sample_fn_indices : rng:Dbh_util.Rng.t -> 'a t -> int -> int array
(** [sample_fn_indices ~rng t n] draws [n] function indices uniformly
    {e with} replacement — how the index construction picks its k·l
    functions (Sec. IV-C). *)

val signature : 'a t -> fn_indices:int array -> 'a -> Dbh_util.Bitvec.t
(** Bits of the given functions applied to one object — the raw material
    for empirical collision rates C(X1,X2) (Eq. 8). *)

val balance : 'a t -> int -> 'a array -> float
(** [balance t i sample] is the fraction of [sample] that function [i]
    maps to 0 — should be close to 0.5 by construction (Eq. 6), for
    {e every} selector: data-dependent selectors only choose {e which}
    half-mass interval of V(X1,X2) to use, never leave V. *)

(** {1 Persistence}

    Families are written in a versioned binary format; objects go through
    a caller-supplied codec since the library cannot know their
    representation.  The space itself is not stored — supply an equivalent
    space when reading (using a different distance silently produces a
    different index).

    v2 envelopes record the selector tag; v1 envelopes (written before
    the Selector redesign) are still readable and report
    {!Selector.default}. *)

val write : encode:('a -> string) -> Buffer.t -> 'a t -> unit

val read :
  decode:(string -> 'a) -> space:'a Dbh_space.Space.t -> Dbh_util.Binio.reader -> 'a t
(** Raises [Dbh_util.Binio.Corrupt] on malformed input. *)
