(** The distance-based family of binary hash functions H_DBH
    (paper Section IV-A and V-B).

    Each binary function is a thresholded line projection

    {v h(x) = 1  iff  F^{X1,X2}(x) ∈ [t1, t2] v}

    where [X1, X2] are {e pivots} drawn from a small subset X_small of the
    database (Sec. V-B bounds the hashing cost by |X_small|), and the
    interval [\[t1,t2\]] is drawn from V(X1,X2) — the set of intervals
    capturing half the data mass (Eq. 6) — using the quantiles of the
    projections of a data sample.

    Query-time evaluations share a {!cache} of distances from the query to
    the pivots, so evaluating any number of binary functions costs at most
    [num_pivots] distance computations — the paper's [HashCost]. *)

type binary_fn = private {
  p1 : int;  (** index of X1 in {!pivots} *)
  p2 : int;  (** index of X2 in {!pivots} *)
  d12 : float;  (** D(X1, X2), cached at construction *)
  t1 : float;  (** lower threshold (may be [neg_infinity]) *)
  t2 : float;  (** upper threshold (may be [infinity]) *)
  spread : float;
      (** interquartile range of the sample projections on this line —
          the scale used to normalize multi-probe bit margins *)
}

type 'a t

type threshold_strategy =
  | Random_interval
      (** draw [t1,t2] uniformly from (a discretization of) V(X1,X2) —
          the paper's formulation (Eq. 6) and the default *)
  | Median_split
      (** always use the one-sided interval [(−∞, median)] — the simplest
          member of V(X1,X2); deterministic given the sample, less
          diverse *)

val make :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  space:'a Dbh_space.Space.t ->
  ?num_pivots:int ->
  ?threshold_sample:int ->
  ?max_functions:int ->
  ?threshold_strategy:threshold_strategy ->
  'a array ->
  'a t
(** [make ~rng ~space data] builds the family from a database sample.

    - [num_pivots] (default 100): size of X_small, drawn uniformly from
      [data] without replacement (all of [data] when smaller).  The paper
      reports 100 pivots → C(100,2) = 4950 functions.
    - [threshold_sample] (default 500): how many objects are projected on
      each line to estimate the quantiles defining V(X1,X2).
    - [max_functions]: build only this many functions on distinct random
      pivot pairs instead of all C(m,2) pairs.
    - [threshold_strategy] (default {!Random_interval}): how the interval
      of Eq. 6 is chosen per line; {!Median_split} is the ablation knob
      for the design choice discussed in DESIGN.md §5.

    Construction cost: at most [num_pivots · threshold_sample] distance
    computations (pivot–sample distances are computed once and shared by
    every pair), plus C(m,2) pivot–pivot distances.

    [pool] parallelizes the pivot–sample distance matrix and the per-pair
    projection/sort work across domains; threshold intervals are still
    drawn from [rng] sequentially in pair order, so the family is
    bit-identical to the sequential build for the same seed.

    Raises [Invalid_argument] when [data] has fewer than 2 distinct-
    distance objects (no usable projection line exists). *)

val space : 'a t -> 'a Dbh_space.Space.t
val size : 'a t -> int
(** Number of binary functions in the family. *)

val num_pivots : 'a t -> int
val pivots : 'a t -> 'a array
(** The X_small array; do not mutate. *)

val fn : 'a t -> int -> binary_fn
(** The i-th binary function's definition. *)

(** {1 Evaluation} *)

type 'a cache
(** Per-object memo of distances to pivots.  The number of distances
    actually computed is the realized hashing cost for that object. *)

val cache : ?budget:Budget.t -> ?trace:Dbh_obs.Trace.t -> 'a t -> 'a -> 'a cache
(** [budget] makes [Budget.charge budget] run before every uncached
    pivot distance, so hashing stops (with [Budget.Exhausted]) the
    moment the budget runs out — partial hashing never overshoots.
    [trace] records a [Pivot_miss]/[Pivot_hit] event per lookup. *)

val cache_in :
  ?budget:Budget.t ->
  ?trace:Dbh_obs.Trace.t ->
  'a t ->
  dists:float array ->
  'a ->
  'a cache
(** Like {!cache} over a caller-owned workspace row of at least
    {!num_pivots} floats (re-initialised here), so repeated queries can
    recycle one allocation.  The row is borrowed until the cache is
    dropped.  Raises [Invalid_argument] when the row is too short. *)

val cache_cost : 'a cache -> int
(** Distinct pivot distances computed through this cache so far. *)

val cache_hits : 'a cache -> int
(** Pivot-distance lookups served from the cache (no distance paid). *)

val cache_budgeted : 'a t -> budget:Budget.t -> 'a -> 'a cache
(** [cache_budgeted t ~budget obj] is [cache ~budget t obj]. *)

val pivot_distance : 'a t -> 'a cache -> int -> float
(** Distance from the cached object to pivot [i], memoized. *)

val eval : 'a t -> 'a cache -> int -> bool
(** [eval family cache i] applies binary function [i]; costs at most two
    uncached distance computations. *)

val cache_with_distances : 'a t -> 'a -> float array -> 'a cache
(** A cache whose pivot distances are already known (one float per pivot,
    in pivot order).  Evaluations through it cost no distance
    computations and {!cache_cost} stays 0.  Used to share the database×
    pivot distance table across many index constructions. *)

val pivot_table : ?pool:Dbh_util.Pool.t -> 'a t -> 'a array -> float array array
(** [pivot_table t objs] computes the distances from every object to every
    pivot — [|objs|·|pivots|] distance computations, done once and reused
    via {!cache_with_distances} by every subsequent index build over the
    same database.  [pool] spreads the rows (one per object) across
    domains; the table is identical either way. *)

val eval_direct : 'a t -> 'a -> int -> bool
(** Uncached evaluation (exactly two distance computations); for tests. *)

val project : 'a t -> 'a cache -> int -> float
(** The raw projection value F^{X1,X2}(x) under function [i]'s line. *)

val margin : 'a t -> 'a cache -> int -> float
(** Distance from F(x) to the nearest threshold of function [i],
    normalized by the function's projection {!binary_fn.spread} — how
    close the object is to flipping this bit.  Small margins identify the
    bits a multi-probe query should perturb first. *)

(** {1 Sampling and signatures} *)

val sample_fn_indices : rng:Dbh_util.Rng.t -> 'a t -> int -> int array
(** [sample_fn_indices ~rng t n] draws [n] function indices uniformly
    {e with} replacement — how the index construction picks its k·l
    functions (Sec. IV-C). *)

val signature : 'a t -> fn_indices:int array -> 'a -> Dbh_util.Bitvec.t
(** Bits of the given functions applied to one object — the raw material
    for empirical collision rates C(X1,X2) (Eq. 8). *)

val balance : 'a t -> int -> 'a array -> float
(** [balance t i sample] is the fraction of [sample] that function [i]
    maps to 0 — should be close to 0.5 by construction (Eq. 6). *)

(** {1 Persistence}

    Families are written in a versioned binary format; objects go through
    a caller-supplied codec since the library cannot know their
    representation.  The space itself is not stored — supply an equivalent
    space when reading (using a different distance silently produces a
    different index). *)

val write : encode:('a -> string) -> Buffer.t -> 'a t -> unit

val read :
  decode:(string -> 'a) -> space:'a Dbh_space.Space.t -> Dbh_util.Binio.reader -> 'a t
(** Raises [Dbh_util.Binio.Corrupt] on malformed input. *)
