module Rng = Dbh_util.Rng

let log_src = Logs.Src.create "dbh.builder" ~doc:"DBH offline pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  num_pivots : int;
  threshold_sample : int;
  max_functions : int option;
  selector : Selector.t;
  num_sample_queries : int;
  num_fns : int;
  db_sample : int;
  k_min : int;
  k_max : int;
  l_max : int;
  levels : int;
}

let default_config =
  {
    num_pivots = 100;
    threshold_sample = 500;
    max_functions = None;
    selector = Selector.default;
    num_sample_queries = 200;
    num_fns = 250;
    db_sample = 500;
    k_min = 1;
    k_max = 30;
    l_max = 1000;
    levels = 5;
  }

type 'a prepared = {
  family : 'a Hash_family.t;
  analysis : Analysis.t;
  sample_query_indices : int array;
  pivot_table : float array array;
}

let prepare ?pool ?observations ~rng ~space ?(config = default_config) db =
  Log.info (fun m ->
      m "preparing family over %d objects (space %s, %d pivots, selector %s)"
        (Array.length db) space.Dbh_space.Space.name config.num_pivots
        (Selector.tag config.selector));
  let family =
    match observations with
    | None ->
        Hash_family.make ?pool ~rng ~space ~num_pivots:config.num_pivots
          ~threshold_sample:config.threshold_sample ?max_functions:config.max_functions
          ~selector:config.selector db
    | Some (prior, obs) ->
        (* Re-tuning path: anchor the data-dependent scoring to the
           observed traffic strata instead of the sample's own spread. *)
        Hash_family.retune ?pool ~rng ~num_pivots:config.num_pivots
          ~threshold_sample:config.threshold_sample ?max_functions:config.max_functions
          ~selector:config.selector ~observations:obs prior db
  in
  let n = Array.length db in
  let query_indices = Rng.sample_indices rng (min config.num_sample_queries n) n in
  let analysis =
    Analysis.build ?pool ~rng ~family ~db ~query_indices ~num_fns:config.num_fns
      ~db_sample:config.db_sample ()
  in
  let pivot_table = Hash_family.pivot_table ?pool family db in
  Log.info (fun m ->
      m "prepared: %d binary functions, %d sample queries, pivot table %dx%d"
        (Hash_family.size family) (Array.length query_indices) (Array.length pivot_table)
        (Hash_family.num_pivots family));
  { family; analysis; sample_query_indices = query_indices; pivot_table }

let single ?pool ?probes ?radius ~rng ~prepared ~db ~target_accuracy
    ?(config = default_config) () =
  match
    Params.optimize ?probes ?radius prepared.analysis ~target_accuracy
      ~k_min:config.k_min ~k_max:config.k_max ~l_max:config.l_max ()
  with
  | None -> None
  | Some choice ->
      Log.info (fun m -> m "single-level: %a" Params.pp_choice choice);
      let index =
        Index.build ?pool ~rng ~family:prepared.family ~db
          ~pivot_table:prepared.pivot_table ~k:choice.Params.k ~l:choice.Params.l ()
      in
      Some (index, choice)

let hierarchical ?pool ~rng ~prepared ~db ~target_accuracy ?(config = default_config) () =
  Hierarchical.build ?pool ~rng ~family:prepared.family ~db ~analysis:prepared.analysis
    ~target_accuracy ~pivot_table:prepared.pivot_table ~levels:config.levels
    ~k_min:config.k_min ~k_max:config.k_max ~l_max:config.l_max ()

let auto ?pool ~rng ~space ?(config = default_config) ~target_accuracy db =
  let prepared = prepare ?pool ~rng ~space ~config db in
  hierarchical ?pool ~rng ~prepared ~db ~target_accuracy ~config ()
