type threshold_strategy = Random_interval | Median_split

type t =
  | Uniform of threshold_strategy
  | Density of { grid : int }
  | Neighbor of { neighbors : int; grid : int }

let uniform ?(threshold_strategy = Random_interval) () = Uniform threshold_strategy

let density_sensitive ?(grid = 16) () =
  if grid < 2 then invalid_arg "Selector.density_sensitive: grid must be at least 2";
  Density { grid }

let neighbor_sensitive ?(neighbors = 8) ?(grid = 16) () =
  if neighbors < 1 then invalid_arg "Selector.neighbor_sensitive: neighbors must be positive";
  if grid < 2 then invalid_arg "Selector.neighbor_sensitive: grid must be at least 2";
  Neighbor { neighbors; grid }

let default = Uniform Random_interval

let tag = function
  | Uniform Random_interval -> "uniform"
  | Uniform Median_split -> "median"
  | Density _ -> "density"
  | Neighbor _ -> "nsh"

let of_tag = function
  | "uniform" -> Some (uniform ())
  | "median" -> Some (uniform ~threshold_strategy:Median_split ())
  | "density" -> Some (density_sensitive ())
  | "nsh" -> Some (neighbor_sensitive ())
  | _ -> None

let known_tags = [ "uniform"; "median"; "density"; "nsh" ]

let pp fmt t = Format.pp_print_string fmt (tag t)
