(** Packed bucket keys: a k-bit hash code in one tagged OCaml int.

    The concatenated codes h1..hk of a table row (paper Section III) are
    folded MSB-first into a single non-negative int — bit j of the code
    lands at position [width - 1 - j] — so keys sort like the
    lexicographic order of their bit strings and need no boxing, no
    hashing and no structural comparison.  Width is capped at
    {!max_bits} (= 62, one bit lost to the int tag, one to the sign);
    wider codes are an explicit [Invalid_argument], never a silent
    wrap. *)

type t = private int
(** A packed key.  The [private] row makes provenance explicit — keys
    enter through {!push_bit}/{!of_bits}/{!of_int} only — while letting
    consumers compare, hash and store them as plain ints for free. *)

val max_bits : int
(** 62: the widest code a tagged 63-bit int can hold without touching
    the sign bit. *)

val check_width : int -> unit
(** Raises [Invalid_argument] unless the width lies in [1, max_bits]. *)

val zero : t
(** The empty code — the fold seed for {!push_bit}. *)

val push_bit : t -> bool -> t
(** [push_bit key b] appends one code bit at the low end:
    [(key lsl 1) lor b].  Folding a row's bits MSB-first through this is
    the canonical (and historical) key construction; the caller is
    responsible for pushing at most {!max_bits} bits. *)

val of_bits : bool array -> t
(** Pack a full code at once.  Raises [Invalid_argument] when the code
    is empty or wider than {!max_bits}. *)

val to_bits : width:int -> t -> bool array
(** Unpack to [width] bits, MSB first.  Raises [Invalid_argument] on a
    bad width or a key that does not fit in it. *)

val to_int : t -> int
(** The identity, made explicit — e.g. for serialization. *)

val of_int : width:int -> int -> t
(** Revalidate an external int (e.g. from disk) as a [width]-bit key.
    Raises [Invalid_argument] when negative or out of range. *)

val compare : t -> t -> int
(** Plain int compare — by construction also the lexicographic order of
    the underlying bit strings. *)

val equal : t -> t -> bool

(** {1 Hamming geometry}

    Codes are points of the k-bit Hamming cube; the multi-probe query
    path perturbs them.  All of these are pure bit arithmetic — no
    allocation except the array {!enumerate_within} returns. *)

val popcount : t -> int
(** Number of set bits. *)

val hamming : t -> t -> int
(** Hamming distance between two codes (callers are responsible for
    comparing codes of the same width, as with {!compare}). *)

val max_radius : int
(** 2: the largest supported Hamming-ball radius.  Balls grow as
    [O(width^radius)]; radius 2 already covers every probe budget the
    multi-probe model optimises over. *)

val ball_size : width:int -> radius:int -> int
(** Number of distinct codes at Hamming distance in [\[1, radius\]] of
    any [width]-bit code: [0], [width], or [width + width(width-1)/2].
    Raises [Invalid_argument] on a bad width or a radius outside
    [\[0, max_radius\]]. *)

val enumerate_within : width:int -> radius:int -> t -> t array
(** All codes at Hamming distance in [\[1, radius\]] of [key] (the
    center itself is excluded), sorted ascending — i.e. in directory
    order, so consecutive runs of the result coalesce into CSR range
    scans.  Raises [Invalid_argument] when [key] does not fit [width] or
    the radius is outside [\[0, max_radius\]]. *)
