(* One hash table frozen into CSR (compressed sparse row) form, plus a
   small mutable delta for post-freeze inserts.

   The frozen part is three flat int arrays: a sorted key directory,
   offsets into the id array (offsets.(i) .. offsets.(i+1) is the
   bucket of keys.(i)), and the concatenated bucket ids.  Lookup is a
   binary search — no hashing, no boxing, no cons cells, and the whole
   structure is three contiguous allocations however many buckets
   exist.

   Inserts after the freeze go to [delta], newest first, exactly like
   the old cons-onto-bucket tables.  A bucket's query-iteration order is
   delta first (newest first), then the frozen segment in frozen order —
   for tables frozen from cons-built buckets that is precisely the old
   all-list iteration order, which the bit-identity tests rely on.
   [compact] folds the delta into a fresh frozen base and drops dead
   ids.

   Concurrent reads: the frozen base lives behind a single [base]
   record and the delta is a persistent map in a mutable field, so a
   reader that loads each field once sees an internally consistent
   value whatever a concurrent single writer does — an insert swaps the
   delta pointer (old map = before, new map = after, both valid), and a
   compaction swaps the base pointer (a reader pairing the old delta
   with the new base sees ids twice, which the query layer's seen-mask
   dedups; the reverse pairing sees the pre-compaction view).  The
   bookkeeping counters ([delta_size] etc.) are diagnostics and are not
   read on the query path. *)

module Intmap = Map.Make (Int)

type base = {
  keys : int array;  (* sorted ascending, distinct *)
  offsets : int array;  (* |keys| + 1, offsets.(0) = 0 *)
  ids : int array;  (* concatenated bucket segments *)
}

type t = {
  mutable base : base;
  mutable delta : int list Intmap.t;  (* key -> ids, newest first *)
  mutable delta_size : int;  (* total ids across delta buckets *)
  mutable extra_keys : int;  (* delta keys absent from the directory *)
  mutable largest : int;  (* max combined bucket size (incl. dead) *)
}

(* Index of [key] in the directory, or -1. *)
let find_key base key =
  let keys = base.keys in
  let lo = ref 0 and hi = ref (Array.length keys - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let k = Array.unsafe_get keys mid in
    if k = key then found := mid else if k < key then lo := mid + 1 else hi := mid - 1
  done;
  !found

let base_segment base key =
  match find_key base key with
  | -1 -> (0, 0)
  | i -> (base.offsets.(i), base.offsets.(i + 1))

let freeze tbl =
  let keys = Array.of_seq (Hashtbl.to_seq_keys tbl) in
  Array.sort Int.compare keys;
  let nk = Array.length keys in
  let offsets = Array.make (nk + 1) 0 in
  let largest = ref 0 in
  for i = 0 to nk - 1 do
    let len = List.length (Hashtbl.find tbl keys.(i)) in
    if len > !largest then largest := len;
    offsets.(i + 1) <- offsets.(i) + len
  done;
  let ids = Array.make offsets.(nk) 0 in
  for i = 0 to nk - 1 do
    (* Frozen segment keeps the bucket's list order (newest first). *)
    let pos = ref offsets.(i) in
    List.iter
      (fun id ->
        ids.(!pos) <- id;
        incr pos)
      (Hashtbl.find tbl keys.(i))
  done;
  {
    base = { keys; offsets; ids };
    delta = Intmap.empty;
    delta_size = 0;
    extra_keys = 0;
    largest = !largest;
  }

let empty () = freeze (Hashtbl.create 1)

let add t key id =
  let old = try Intmap.find key t.delta with Not_found -> [] in
  (* Persistent-map update: readers holding the old map still see a
     valid (pre-insert) bucket; the pointer swap is the publication. *)
  t.delta <- Intmap.add key (id :: old) t.delta;
  t.delta_size <- t.delta_size + 1;
  let lo, hi = base_segment t.base key in
  let combined = hi - lo + 1 + List.length old in
  if old = [] && hi = lo then t.extra_keys <- t.extra_keys + 1;
  if combined > t.largest then t.largest <- combined

(* Combined bucket iteration: delta (newest first), then frozen.  Each
   mutable field is loaded exactly once (see the header note). *)
let iter_bucket t key f =
  let delta = t.delta in
  if not (Intmap.is_empty delta) then
    (match Intmap.find_opt key delta with Some l -> List.iter f l | None -> ());
  let base = t.base in
  let lo, hi = base_segment base key in
  let ids = base.ids in
  for i = lo to hi - 1 do
    f (Array.unsafe_get ids i)
  done

(* First directory index with keys.(i) >= key (= length when none). *)
let lower_bound keys key =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get keys mid < key then lo := mid + 1 else hi := mid
  done;
  !lo

(* Range scan over the sorted directory: every combined bucket with key
   in [lo, hi], keys ascending, each bucket in query order (delta
   newest-first, then the frozen segment).  One binary search plus a
   contiguous directory walk — the point of keeping keys sorted: a
   Hamming ball's consecutive key runs cost one search each, not one
   per key.  Same single-load concurrency discipline as [iter_bucket]. *)
let iter_range t ~lo ~hi f =
  let delta = t.delta in
  let base = t.base in
  let keys = base.keys and offsets = base.offsets and ids = base.ids in
  let nk = Array.length keys in
  let emit_base i =
    let key = Array.unsafe_get keys i in
    for p = Array.unsafe_get offsets i to Array.unsafe_get offsets (i + 1) - 1 do
      f key (Array.unsafe_get ids p)
    done
  in
  let i = ref (lower_bound keys lo) in
  if Intmap.is_empty delta then
    while !i < nk && Array.unsafe_get keys !i <= hi do
      emit_base !i;
      incr i
    done
  else begin
    (* Merge the directory walk with the delta's sorted key sequence,
       emitting a shared key's delta ids before its frozen segment. *)
    let dseq = ref (Intmap.to_seq_from lo delta) in
    let next_delta () =
      match !dseq () with
      | Seq.Nil -> None
      | Seq.Cons ((dk, dids), rest) ->
          dseq := rest;
          Some (dk, dids)
    in
    let pending = ref (next_delta ()) in
    let continue = ref true in
    while !continue do
      match !pending with
      | Some (dk, dids) when dk <= hi ->
          if !i < nk && Array.unsafe_get keys !i < dk then begin
            emit_base !i;
            incr i
          end
          else begin
            List.iter (f dk) dids;
            if !i < nk && Array.unsafe_get keys !i = dk then begin
              emit_base !i;
              incr i
            end;
            pending := next_delta ()
          end
      | _ ->
          if !i < nk && Array.unsafe_get keys !i <= hi then begin
            emit_base !i;
            incr i
          end
          else continue := false
    done
  end

(* All buckets at Hamming distance 1..radius of [key]: the sorted ball
   enumeration coalesces into maximal consecutive-key runs, each served
   by one range scan.  The center bucket is not visited (the caller
   already probed it). *)
let iter_within t ~width ~radius key f =
  if radius > 0 then begin
    let ball = Key.enumerate_within ~width ~radius (Key.of_int ~width key) in
    let at i = (ball.(i) : Key.t :> int) in
    let n = Array.length ball in
    let i = ref 0 in
    while !i < n do
      let j = ref !i in
      while !j + 1 < n && at (!j + 1) = at !j + 1 do
        incr j
      done;
      iter_range t ~lo:(at !i) ~hi:(at !j) f;
      i := !j + 1
    done
  end

let bucket_size t key =
  let delta = t.delta in
  let base = t.base in
  let lo, hi = base_segment base key in
  let d =
    match Intmap.find_opt key delta with Some l -> List.length l | None -> 0
  in
  hi - lo + d

let bucket_count t = Array.length t.base.keys + t.extra_keys
let largest_bucket t = t.largest
let entry_count t = Array.length t.base.ids + t.delta_size
let delta_size t = t.delta_size

(* Every combined bucket in ascending key order (allocates the lists;
   cold paths only: persistence, diagnostics, rebuilds). *)
let iter_buckets t f =
  let base = t.base in
  let delta = t.delta in
  let extra =
    Intmap.fold
      (fun key _ acc -> if find_key base key = -1 then key :: acc else acc)
      delta []
    |> List.rev (* fold ascends, so reversing the consed list re-sorts *)
  in
  let bucket_of key =
    let d = match Intmap.find_opt key delta with Some l -> l | None -> [] in
    let lo, hi = base_segment base key in
    let b = ref [] in
    for i = hi - 1 downto lo do
      b := base.ids.(i) :: !b
    done;
    d @ !b
  in
  (* Merge the sorted directory with the sorted extra delta keys. *)
  let rec go i extra =
    match extra with
    | e :: rest when i >= Array.length base.keys || e < base.keys.(i) ->
        f e (bucket_of e);
        go i rest
    | _ ->
        if i < Array.length base.keys then begin
          f base.keys.(i) (bucket_of base.keys.(i));
          go (i + 1) extra
        end
  in
  go 0 extra

(* The live frozen view: delta folded in, dead ids dropped, empty
   buckets removed.  Bucket-internal order is the combined iteration
   order, so compaction never changes what a query sees (dead ids were
   already skipped before any cost was charged). *)
let live_view ~is_alive t =
  let rev_buckets = ref [] and nk = ref 0 and total = ref 0 in
  iter_buckets t (fun key bucket ->
      let live = List.filter is_alive bucket in
      if live <> [] then begin
        rev_buckets := (key, live) :: !rev_buckets;
        incr nk;
        total := !total + List.length live
      end);
  let keys = Array.make !nk 0 in
  let offsets = Array.make (!nk + 1) 0 in
  let ids = Array.make !total 0 in
  List.iteri
    (fun i (key, seg) ->
      keys.(i) <- key;
      let pos = ref offsets.(i) in
      List.iter
        (fun id ->
          ids.(!pos) <- id;
          incr pos)
        seg;
      offsets.(i + 1) <- !pos)
    (List.rev !rev_buckets);
  { keys; offsets; ids }

let largest_of base =
  let largest = ref 0 in
  for i = 0 to Array.length base.keys - 1 do
    let len = base.offsets.(i + 1) - base.offsets.(i) in
    if len > !largest then largest := len
  done;
  !largest

(* Pure compaction: a fresh table the caller can publish atomically
   while readers keep using [t]. *)
let compacted ~is_alive t =
  let base = live_view ~is_alive t in
  {
    base;
    delta = Intmap.empty;
    delta_size = 0;
    extra_keys = 0;
    largest = largest_of base;
  }

let compact ~is_alive t =
  let c = compacted ~is_alive t in
  t.base <- c.base;
  t.delta <- Intmap.empty;
  t.delta_size <- 0;
  t.extra_keys <- 0;
  t.largest <- c.largest

(* Rough resident size in words: the three arrays plus ~5 words per
   delta entry (cons cell + amortised map node share). *)
let approx_words t =
  let base = t.base in
  Array.length base.keys + Array.length base.offsets + Array.length base.ids + 9
  + (5 * t.delta_size)

(* ------------------------------------------------------------- binary io *)

module Binio = Dbh_util.Binio

let write buf ~is_alive t =
  let base = live_view ~is_alive t in
  Binio.write_int_array buf base.keys;
  Binio.write_int_array buf base.offsets;
  Binio.write_int_array buf base.ids

(* [validate_key] checks directory entries (packed-key range); [max_id]
   bounds bucket ids; [seen] (caller-provided, store-length, reset here)
   catches duplicate ids within one table. *)
let read r ~validate_key ~max_id ~seen =
  let keys = Binio.read_int_array r in
  let offsets = Binio.read_int_array r in
  let ids = Binio.read_int_array r in
  let nk = Array.length keys in
  if Array.length offsets <> nk + 1 then raise (Binio.Corrupt "csr: offsets/keys mismatch");
  if nk > 0 && offsets.(0) <> 0 then raise (Binio.Corrupt "csr: offsets must start at 0");
  if (nk = 0) <> (Array.length ids = 0) then
    raise (Binio.Corrupt "csr: ids without keys");
  for i = 0 to nk - 1 do
    validate_key keys.(i);
    if i > 0 && keys.(i) <= keys.(i - 1) then
      raise (Binio.Corrupt "csr: key directory not strictly sorted");
    if offsets.(i + 1) <= offsets.(i) then raise (Binio.Corrupt "csr: empty or negative segment")
  done;
  if nk > 0 && offsets.(nk) <> Array.length ids then
    raise (Binio.Corrupt "csr: offsets do not cover ids");
  Bytes.fill seen 0 (Bytes.length seen) '\000';
  Array.iter
    (fun id ->
      if id < 0 || id >= max_id then raise (Binio.Corrupt "csr: object id out of range");
      if Bytes.get seen id <> '\000' then raise (Binio.Corrupt "csr: duplicate id in table");
      Bytes.set seen id '\001')
    ids;
  let base = { keys; offsets; ids } in
  {
    base;
    delta = Intmap.empty;
    delta_size = 0;
    extra_keys = 0;
    largest = largest_of base;
  }
