(* One hash table frozen into CSR (compressed sparse row) form, plus a
   small mutable delta for post-freeze inserts.

   The frozen part is three flat int arrays: a sorted key directory,
   offsets into the id array (offsets.(i) .. offsets.(i+1) is the
   bucket of keys.(i)), and the concatenated bucket ids.  Lookup is a
   binary search — no hashing, no boxing, no cons cells, and the whole
   structure is three contiguous allocations however many buckets
   exist.

   Inserts after the freeze go to [delta], newest first, exactly like
   the old cons-onto-bucket tables.  A bucket's query-iteration order is
   delta first (newest first), then the frozen segment in frozen order —
   for tables frozen from cons-built buckets that is precisely the old
   all-list iteration order, which the bit-identity tests rely on.
   [compact] folds the delta into a fresh frozen base and drops dead
   ids. *)

type t = {
  mutable keys : int array;  (* sorted ascending, distinct *)
  mutable offsets : int array;  (* |keys| + 1, offsets.(0) = 0 *)
  mutable ids : int array;  (* concatenated bucket segments *)
  delta : (int, int list) Hashtbl.t;  (* key -> ids, newest first *)
  mutable delta_size : int;  (* total ids across delta buckets *)
  mutable extra_keys : int;  (* delta keys absent from the directory *)
  mutable largest : int;  (* max combined bucket size (incl. dead) *)
}

(* Index of [key] in the directory, or -1. *)
let find_key t key =
  let lo = ref 0 and hi = ref (Array.length t.keys - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let k = Array.unsafe_get t.keys mid in
    if k = key then found := mid else if k < key then lo := mid + 1 else hi := mid - 1
  done;
  !found

let base_segment t key =
  match find_key t key with
  | -1 -> (0, 0)
  | i -> (t.offsets.(i), t.offsets.(i + 1))

let freeze tbl =
  let keys = Array.of_seq (Hashtbl.to_seq_keys tbl) in
  Array.sort Int.compare keys;
  let nk = Array.length keys in
  let offsets = Array.make (nk + 1) 0 in
  let largest = ref 0 in
  for i = 0 to nk - 1 do
    let len = List.length (Hashtbl.find tbl keys.(i)) in
    if len > !largest then largest := len;
    offsets.(i + 1) <- offsets.(i) + len
  done;
  let ids = Array.make offsets.(nk) 0 in
  for i = 0 to nk - 1 do
    (* Frozen segment keeps the bucket's list order (newest first). *)
    let pos = ref offsets.(i) in
    List.iter
      (fun id ->
        ids.(!pos) <- id;
        incr pos)
      (Hashtbl.find tbl keys.(i))
  done;
  {
    keys;
    offsets;
    ids;
    delta = Hashtbl.create 16;
    delta_size = 0;
    extra_keys = 0;
    largest = !largest;
  }

let empty () = freeze (Hashtbl.create 1)

let add t key id =
  let old = try Hashtbl.find t.delta key with Not_found -> [] in
  Hashtbl.replace t.delta key (id :: old);
  t.delta_size <- t.delta_size + 1;
  let lo, hi = base_segment t key in
  let combined = hi - lo + 1 + List.length old in
  if old = [] && hi = lo then t.extra_keys <- t.extra_keys + 1;
  if combined > t.largest then t.largest <- combined

(* Combined bucket iteration: delta (newest first), then frozen. *)
let iter_bucket t key f =
  if t.delta_size > 0 then
    List.iter f (try Hashtbl.find t.delta key with Not_found -> []);
  let lo, hi = base_segment t key in
  for i = lo to hi - 1 do
    f (Array.unsafe_get t.ids i)
  done

let bucket_size t key =
  let lo, hi = base_segment t key in
  let d =
    if t.delta_size = 0 then 0
    else List.length (try Hashtbl.find t.delta key with Not_found -> [])
  in
  hi - lo + d

let bucket_count t = Array.length t.keys + t.extra_keys
let largest_bucket t = t.largest
let entry_count t = Array.length t.ids + t.delta_size
let delta_size t = t.delta_size

(* Every combined bucket in ascending key order (allocates the lists;
   cold paths only: persistence, diagnostics, rebuilds). *)
let iter_buckets t f =
  let extra =
    Hashtbl.fold (fun key _ acc -> if find_key t key = -1 then key :: acc else acc) t.delta []
    |> List.sort Int.compare
  in
  let bucket_of key =
    let d = try Hashtbl.find t.delta key with Not_found -> [] in
    let lo, hi = base_segment t key in
    let base = ref [] in
    for i = hi - 1 downto lo do
      base := t.ids.(i) :: !base
    done;
    d @ !base
  in
  (* Merge the sorted directory with the sorted extra delta keys. *)
  let rec go i extra =
    match extra with
    | e :: rest when i >= Array.length t.keys || e < t.keys.(i) ->
        f e (bucket_of e);
        go i rest
    | _ ->
        if i < Array.length t.keys then begin
          f t.keys.(i) (bucket_of t.keys.(i));
          go (i + 1) extra
        end
  in
  go 0 extra

(* The live frozen view: delta folded in, dead ids dropped, empty
   buckets removed.  Bucket-internal order is the combined iteration
   order, so compaction never changes what a query sees (dead ids were
   already skipped before any cost was charged). *)
let live_view ~is_alive t =
  let rev_buckets = ref [] and nk = ref 0 and total = ref 0 in
  iter_buckets t (fun key bucket ->
      let live = List.filter is_alive bucket in
      if live <> [] then begin
        rev_buckets := (key, live) :: !rev_buckets;
        incr nk;
        total := !total + List.length live
      end);
  let keys = Array.make !nk 0 in
  let offsets = Array.make (!nk + 1) 0 in
  let ids = Array.make !total 0 in
  List.iteri
    (fun i (key, seg) ->
      keys.(i) <- key;
      let pos = ref offsets.(i) in
      List.iter
        (fun id ->
          ids.(!pos) <- id;
          incr pos)
        seg;
      offsets.(i + 1) <- !pos)
    (List.rev !rev_buckets);
  (keys, offsets, ids)

let compact ~is_alive t =
  let keys, offsets, ids = live_view ~is_alive t in
  t.keys <- keys;
  t.offsets <- offsets;
  t.ids <- ids;
  Hashtbl.reset t.delta;
  t.delta_size <- 0;
  t.extra_keys <- 0;
  let largest = ref 0 in
  for i = 0 to Array.length keys - 1 do
    let len = offsets.(i + 1) - offsets.(i) in
    if len > !largest then largest := len
  done;
  t.largest <- !largest

(* Rough resident size in words: the three arrays plus ~4 words per
   delta entry (cons cell + amortised hashtable slot). *)
let approx_words t =
  Array.length t.keys + Array.length t.offsets + Array.length t.ids + 9
  + (4 * t.delta_size)

(* ------------------------------------------------------------- binary io *)

module Binio = Dbh_util.Binio

let write buf ~is_alive t =
  let keys, offsets, ids = live_view ~is_alive t in
  Binio.write_int_array buf keys;
  Binio.write_int_array buf offsets;
  Binio.write_int_array buf ids

(* [validate_key] checks directory entries (packed-key range); [max_id]
   bounds bucket ids; [seen] (caller-provided, store-length, reset here)
   catches duplicate ids within one table. *)
let read r ~validate_key ~max_id ~seen =
  let keys = Binio.read_int_array r in
  let offsets = Binio.read_int_array r in
  let ids = Binio.read_int_array r in
  let nk = Array.length keys in
  if Array.length offsets <> nk + 1 then raise (Binio.Corrupt "csr: offsets/keys mismatch");
  if nk > 0 && offsets.(0) <> 0 then raise (Binio.Corrupt "csr: offsets must start at 0");
  if (nk = 0) <> (Array.length ids = 0) then
    raise (Binio.Corrupt "csr: ids without keys");
  for i = 0 to nk - 1 do
    validate_key keys.(i);
    if i > 0 && keys.(i) <= keys.(i - 1) then
      raise (Binio.Corrupt "csr: key directory not strictly sorted");
    if offsets.(i + 1) <= offsets.(i) then raise (Binio.Corrupt "csr: empty or negative segment")
  done;
  if nk > 0 && offsets.(nk) <> Array.length ids then
    raise (Binio.Corrupt "csr: offsets do not cover ids");
  Bytes.fill seen 0 (Bytes.length seen) '\000';
  let largest = ref 0 in
  Array.iter
    (fun id ->
      if id < 0 || id >= max_id then raise (Binio.Corrupt "csr: object id out of range");
      if Bytes.get seen id <> '\000' then raise (Binio.Corrupt "csr: duplicate id in table");
      Bytes.set seen id '\001')
    ids;
  for i = 0 to nk - 1 do
    let len = offsets.(i + 1) - offsets.(i) in
    if len > !largest then largest := len
  done;
  {
    keys;
    offsets;
    ids;
    delta = Hashtbl.create 16;
    delta_size = 0;
    extra_keys = 0;
    largest = !largest;
  }
