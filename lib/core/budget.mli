(** Per-query distance-computation budgets.

    Queries over a black-box distance measure have no intrinsic latency
    bound: one adversarial bucket can cost thousands of expensive distance
    evaluations.  A budget caps the number of distance computations a
    single query (or a shared pool of queries) may spend; query functions
    accepting a [?budget] terminate early with the best answer found so
    far and report [truncated = true] instead of exhibiting unbounded tail
    latency.

    The protocol is charge-before-compute: {!charge} is called immediately
    before every distance evaluation, so the spend can {e never} exceed
    the limit — not even by one computation.  A refused charge marks the
    budget {!exhausted} and raises {!Exhausted}, which the query machinery
    catches to return its best-so-far result. *)

type t

exception Exhausted
(** Raised by {!charge} when the budget has no computations left. *)

val create : int -> t
(** [create limit] is a fresh budget allowing at most [limit] distance
    computations ([limit >= 0]; a zero budget refuses the first charge). *)

val limit : t -> int

val spent : t -> int
(** Computations charged so far; invariant: [spent t <= limit t]. *)

val remaining : t -> int

val exhausted : t -> bool
(** Whether a charge has ever been refused — i.e. whether the bound was
    actually hit.  This is exactly the [truncated] flag query results
    report.  Finishing with [spent = limit] but never needing more does
    {e not} set it. *)

val charge : t -> unit
(** Consume one computation.  Raises {!Exhausted} (after marking the
    budget exhausted) when none remain; the caller must then skip the
    distance evaluation it was about to perform. *)

val is_exhausted_exn : exn -> bool
(** Recognize {!Exhausted} without naming the exception (for wrappers that
    must not swallow budget signals). *)
