(** Collision probabilities (paper Eq. 8–10).

    [C(X1,X2)] is the probability that a binary function drawn uniformly
    from the family hashes [X1] and [X2] to the same bit.  From it follow
    the k-bit table collision probability [C_k = C^k] (Eq. 9) and the
    probability of colliding in at least one of [l] tables
    [C_{k,l} = 1 − (1 − C^k)^l] (Eq. 10).  These close-form maps plus
    empirical estimates of [C] are the entire performance model of DBH. *)

val c_k : float -> int -> float
(** [c_k c k] = [c^k] (Eq. 9).  Requires [c ∈ \[0,1\]], [k >= 0]. *)

val c_kl : float -> k:int -> l:int -> float
(** [c_kl c ~k ~l] = [1 − (1 − c^k)^l] (Eq. 10).  Requires [l >= 0]. *)

val l_for_target : float -> k:int -> target:float -> int option
(** Smallest [l] with [c_kl c ~k ~l >= target], or [None] if unreachable
    ([c_k c k = 0] with positive target).  Closed form:
    [l = ceil (log(1−target) / log(1−c^k))]. *)

(** {1 Multi-probe extension}

    With [probes] buckets probed per table within Hamming radius
    [radius] of the base key, a probed bucket at flip distance [m]
    collides with the query's neighbor exactly when the [m] flipped bits
    all disagree and the remaining [k − m] agree — disjoint events
    across distinct flip subsets, so the per-table rate is a sum of
    closed-form terms.  The model assumes the radius-1 shell fills
    before any radius-2 key (single flips are weakly cheaper than any
    pair containing them in the penalty order).  At [probes = 1] or
    [radius = 0] these collapse to the plain {!c_k}/{!c_kl}/
    {!l_for_target} — bit-identical floats. *)

val probe_split : k:int -> probes:int -> radius:int -> int * int
(** [(n1, n2)]: how many of the [probes − 1] extra probes land on 1-flip
    and 2-flip keys.  [n1 = min (probes−1) k] when [radius >= 1];
    [n2 = min (probes−1−n1) (k(k−1)/2)] when [radius = 2]. *)

val c_k_probed : float -> k:int -> probes:int -> radius:int -> float
(** Per-table collision probability with multi-probe (Eq. 9 extended):
    [c^k + n1·c^(k−1)(1−c) + n2·c^(k−2)(1−c)²], clamped to 1. *)

val c_kl_probed : float -> k:int -> l:int -> probes:int -> radius:int -> float
(** Eq. 10 over the probed per-table rate:
    [1 − (1 − c_k_probed)^l]. *)

val l_for_target_probed :
  float -> k:int -> probes:int -> radius:int -> target:float -> int option
(** Smallest [l] whose probed cascade reaches [target] — the analytical
    handle on how many tables multi-probing saves at equal accuracy. *)

val estimate :
  rng:Dbh_util.Rng.t -> ?num_fns:int -> 'a Hash_family.t -> 'a -> 'a -> float
(** Empirical [C(X1,X2)]: fraction of agreeing bits over [num_fns]
    functions sampled with replacement (default 200), per Eq. 8. *)

val estimate_exact : 'a Hash_family.t -> 'a -> 'a -> float
(** Exact [C(X1,X2)] over the whole (finite) family — O(size) distance-
    cached evaluations.  Usable when the family is small. *)

val pairwise_matrix :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  ?num_fns:int ->
  'a Hash_family.t ->
  'a array ->
  float array array
(** Empirical collision-rate matrix of a sample (shared function draw so
    rates are comparable); diagonal is 1.  [pool] fans the per-object
    signature computations — the expensive step, up to [num_pivots]
    distances each — and the pairwise agreement rows across domains;
    the matrix is bit-identical to the sequential run for the same
    seed. *)
