module Rng = Dbh_util.Rng
module Space = Dbh_space.Space
module Binio = Dbh_util.Binio

type level_info = {
  k : int;
  l : int;
  d_threshold : float;
  predicted_accuracy : float;
  predicted_cost : float;
}

type 'a level = {
  info : level_info;
  index : 'a Index.t;
}

type 'a t = {
  store : 'a Store.t;
  family : 'a Hash_family.t;
  levels : 'a level array;
}

let levels t = Array.map (fun lev -> lev.info) t.levels
let indexes t = Array.map (fun lev -> lev.index) t.levels
let store t = t.store
let family t = t.family

(* When no (k,l) reaches the target within l_max, retarget to just below
   the best accuracy any (k, l_max) achieves and optimize for cost there —
   never blindly build l_max tables, which would make the hard stratum
   dominate every cascaded query. *)
let fallback_choice analysis ~k_min ~k_max ~l_max =
  if k_min > k_max then invalid_arg "Hierarchical.build: empty k range";
  let best_acc = ref 0. in
  for k = k_min to k_max do
    let acc = Analysis.accuracy analysis ~k ~l:l_max in
    if acc > !best_acc then best_acc := acc
  done;
  let target = Float.min 0.9999 (Float.max 0. (!best_acc -. 0.005)) in
  match Params.optimize analysis ~target_accuracy:target ~k_min ~k_max ~l_max () with
  | Some c -> c
  | None ->
      (* Only reachable when accuracy is ~0 everywhere; one cheap table. *)
      {
        Params.k = k_min;
        l = 1;
        predicted_accuracy = !best_acc;
        predicted_lookup = Analysis.lookup_cost analysis ~k:k_min ~l:1;
        predicted_hash = Analysis.hash_cost analysis ~k:k_min ~l:1;
        predicted_cost = Analysis.total_cost analysis ~k:k_min ~l:1;
      }

let build ?pool ~rng ~family ~db ~analysis ~target_accuracy ?pivot_table ?(levels = 5)
    ?(k_min = 1) ?(k_max = 30) ?(l_max = 1000) () =
  if levels < 1 then invalid_arg "Hierarchical.build: need at least one level";
  let nq = Analysis.num_queries analysis in
  if nq < levels then invalid_arg "Hierarchical.build: fewer sample queries than levels";
  let store = Store.of_array db in
  let order = Analysis.queries_by_nn_distance analysis in
  let level_array =
    Array.init levels (fun i ->
        (* Contiguous percentile stratum of the NN-distance ranking. *)
        let lo = i * nq / levels in
        let hi = ((i + 1) * nq / levels) - 1 in
        let positions = Array.sub order lo (hi - lo + 1) in
        let stratum = Analysis.restrict analysis positions in
        let d_threshold = Analysis.nn_distance analysis order.(hi) in
        let choice =
          match Params.optimize stratum ~target_accuracy ~k_min ~k_max ~l_max () with
          | Some c -> c
          | None -> fallback_choice stratum ~k_min ~k_max ~l_max
        in
        (* Levels stay sequential — each consumes rng draws in level
           order — but every level's own build fans out over the pool. *)
        let index =
          Index.build_on ?pool ~rng ~family ~store ?pivot_table ~k:choice.Params.k
            ~l:choice.Params.l ()
        in
        {
          info =
            {
              k = choice.Params.k;
              l = choice.Params.l;
              d_threshold;
              predicted_accuracy = choice.Params.predicted_accuracy;
              predicted_cost = choice.Params.predicted_cost;
            };
          index;
        })
  in
  { store; family; levels = level_array }

(* The cascade query core.  The budget is charged before every distance
   evaluation — pivot distances through the shared cache and candidate
   comparisons here — so exhaustion mid-cascade stops cleanly with the
   best answer the paid-for computations found.  Trace events and the
   end-of-query metrics recording follow the same conventions as
   [Index.query_with]; this entry point records the query (not the
   per-level indexes), so cascaded queries count once. *)
(* As in [Index], the probe knobs are required labels on the core so the
   single-probe path never boxes a [Some] per query; [query_with] below
   is the optional-argument wrapper. *)
let query_probed ?budget ?metrics ?trace ?scratch ?limit ~probes ~radius t q =
  let metrics = Dbh_obs.Metrics.resolve metrics in
  let t0 = match metrics with Some _ -> Dbh_obs.Metrics.now () | None -> 0. in
  (match trace with
  | Some tr ->
      Dbh_obs.Trace.record tr
        (Dbh_obs.Trace.Query_start
           { kind = Printf.sprintf "hierarchical(%d levels)" (Array.length t.levels) })
  | None -> ());
  let space = Hash_family.space t.family in
  let scratch = match scratch with Some s -> s | None -> Scratch.create () in
  Scratch.ensure scratch (Store.length t.store);
  let cache =
    Hash_family.cache_in ?budget ?trace t.family
      ~dists:(Scratch.pivot_dists scratch (Hash_family.num_pivots t.family))
      q
  in
  let best_id = ref (-1) in
  let best_d = ref infinity in
  let lookup = ref 0 in
  let probed = ref 0 in
  let levels_probed = ref 0 in
  Fun.protect
    ~finally:(fun () -> Scratch.reset scratch)
    (fun () ->
      try
        Array.iteri
          (fun li lev ->
            incr levels_probed;
            (match trace with
            | Some tr ->
                Dbh_obs.Trace.record tr
                  (Dbh_obs.Trace.Level_enter { level = li; threshold = lev.info.d_threshold })
            | None -> ());
            (* The scratch dedups across levels: only this level's fresh
               marks (from [start]) are ranked here, newest first — the
               order the consed per-level lists were visited in.
               [candidates_into] claims the level's l base probes into
               [probes] before evaluating any hash, preserving the
               historical accounting under mid-hash budget death. *)
            let start = Scratch.count scratch in
            Index.candidates_into ?trace ~level:li ?limit ~probes ~radius
              ~probe_counter:probed lev.index cache ~scratch;
            for i = Scratch.count scratch - 1 downto start do
              let id = Scratch.get scratch i in
              (match budget with Some b -> Budget.charge b | None -> ());
              incr lookup;
              let d = space.Space.distance q (Store.get t.store id) in
              let improved = d < !best_d in
              (match trace with
              | Some tr ->
                  Dbh_obs.Trace.record tr
                    (Dbh_obs.Trace.Candidate { id; distance = d; improved })
              | None -> ());
              if improved then begin
                best_id := id;
                best_d := d
              end
            done;
            if !best_id >= 0 && !best_d <= lev.info.d_threshold then begin
              (match trace with
              | Some tr ->
                  Dbh_obs.Trace.record tr
                    (Dbh_obs.Trace.Level_settled { level = li; best = !best_d })
              | None -> ());
              raise Exit
            end)
          t.levels
      with
      | Exit -> ()
      | Budget.Exhausted ->
          (match trace with
          | Some tr ->
              Dbh_obs.Trace.record tr
                (Dbh_obs.Trace.Budget_exhausted
                   { spent = (match budget with Some b -> Budget.spent b | None -> 0) })
          | None -> ()));
  let stats =
    {
      Index.hash_cost = Hash_family.cache_cost cache;
      lookup_cost = !lookup;
      probes = !probed;
    }
  in
  let truncated = match budget with Some b -> Budget.exhausted b | None -> false in
  (match trace with
  | Some tr ->
      Dbh_obs.Trace.record tr
        (Dbh_obs.Trace.Query_done
           {
             hash_cost = stats.Index.hash_cost;
             lookup_cost = stats.Index.lookup_cost;
             probes = stats.Index.probes;
             levels_probed = !levels_probed;
             truncated;
           })
  | None -> ());
  let seconds =
    match metrics with Some _ -> Some (Dbh_obs.Metrics.now () -. t0) | None -> None
  in
  Index.observe_query ?metrics ?seconds ~cache_hits:(Hash_family.cache_hits cache)
    ?nn_distance:(if !best_id < 0 then None else Some !best_d)
    ~stats ~truncated ~levels_probed:!levels_probed ();
  {
    Index.nn = (if !best_id < 0 then None else Some (!best_id, !best_d));
    stats;
    truncated;
    levels_probed = !levels_probed;
  }

let query_with ?budget ?metrics ?trace ?scratch ?limit ?(probes = 1) ?(radius = 0) t q =
  query_probed ?budget ?metrics ?trace ?scratch ?limit ~probes ~radius t q

let search ?(opts = Query_opts.default) t q =
  let budget = Option.map Budget.create opts.Query_opts.budget in
  query_probed ?budget ?metrics:opts.Query_opts.metrics ?trace:opts.Query_opts.trace
    ?scratch:opts.Query_opts.scratch ~probes:opts.Query_opts.probes_per_table
    ~radius:opts.Query_opts.hamming_radius t q

let search_batch ?(opts = Query_opts.default) t qs =
  let metrics = Dbh_obs.Metrics.resolve opts.Query_opts.metrics in
  let probes = opts.Query_opts.probes_per_table in
  let radius = opts.Query_opts.hamming_radius in
  match opts.Query_opts.pool with
  | None ->
      let scratch =
        match opts.Query_opts.scratch with Some s -> s | None -> Scratch.create ()
      in
      Array.map
        (fun q ->
          let budget = Option.map Budget.create opts.Query_opts.budget in
          query_probed ?budget ?metrics ~scratch ~probes ~radius t q)
        qs
  | Some pool ->
      Dbh_util.Pool.parallel_map_array
        ?cost:(Space.cost_estimator (Hash_family.space t.family) qs)
        pool
        (fun q ->
          let budget = Option.map Budget.create opts.Query_opts.budget in
          query_probed ?budget ?metrics ~probes ~radius t q)
        qs

let insert t obj =
  let id = Store.add t.store obj in
  Array.iter (fun lev -> Index.index_existing lev.index id) t.levels;
  id

let delete t id = Store.delete t.store id

let compact t = Array.iter (fun lev -> Index.compact lev.index) t.levels

let compacted t =
  { t with levels = Array.map (fun lev -> { lev with index = Index.compacted lev.index }) t.levels }
let delta_size t = Array.fold_left (fun acc lev -> acc + Index.delta_size lev.index) 0 t.levels

(* ----------------------------------------------------------- persistence *)

let format_tag = "DBH-hierarchical-v1"
let format_tag_packed = "DBH-hierarchical-v2"

let write_with ~tag ~write_body ~encode buf t =
  Binio.write_string buf tag;
  Hash_family.write ~encode buf t.family;
  Index.write_store ~encode buf t.store;
  Binio.write_int buf (Array.length t.levels);
  Array.iter
    (fun lev ->
      Binio.write_float buf lev.info.d_threshold;
      Binio.write_float buf lev.info.predicted_accuracy;
      Binio.write_float buf lev.info.predicted_cost;
      write_body buf lev.index)
    t.levels

let write ~encode buf t = write_with ~tag:format_tag ~write_body:Index.write_body ~encode buf t

let write_packed ~encode buf t =
  write_with ~tag:format_tag_packed ~write_body:Index.write_body_packed ~encode buf t

let read_with ~read_body ~decode ~space r =
  let family = Hash_family.read ~decode ~space r in
  let store = Index.read_store ~decode r in
  let num_levels = Binio.read_int r in
  if num_levels < 1 then raise (Binio.Corrupt "no levels");
  let levels =
    Array.init num_levels (fun _ ->
        let d_threshold = Binio.read_float r in
        let predicted_accuracy = Binio.read_float r in
        let predicted_cost = Binio.read_float r in
        let index = read_body ~family ~store r in
        {
          info =
            {
              k = Index.k index;
              l = Index.l index;
              d_threshold;
              predicted_accuracy;
              predicted_cost;
            };
          index;
        })
  in
  { store; family; levels }

let read ~decode ~space r =
  let tag = Binio.read_string r in
  if tag <> format_tag then
    raise (Binio.Corrupt (Printf.sprintf "expected %s, found %S" format_tag tag));
  read_with ~read_body:Index.read_body ~decode ~space r

(* Accept either body format by tag — the durable layer reads v1 and v2
   snapshots through this single entry point. *)
let read_any ~decode ~space r =
  let tag = Binio.read_string r in
  if tag = format_tag then read_with ~read_body:Index.read_body ~decode ~space r
  else if tag = format_tag_packed then
    read_with ~read_body:Index.read_body_packed ~decode ~space r
  else
    raise
      (Binio.Corrupt
         (Printf.sprintf "expected %s or %s, found %S" format_tag format_tag_packed tag))

let snapshot_kind = "hierarchical"
let snapshot_version = 1

let save ~encode ~path t =
  let buf = Buffer.create 4096 in
  write ~encode buf t;
  Dbh_persist.Envelope.save ~path ~kind:snapshot_kind ~version:snapshot_version
    (Buffer.contents buf)

let load ~decode ~space ~path =
  let payload =
    Dbh_persist.Envelope.read_expect ~kind:snapshot_kind ~version:snapshot_version ~path
  in
  let r = Binio.reader payload in
  let t = read ~decode ~space r in
  if not (Binio.at_end r) then
    raise (Binio.Corrupt "trailing bytes after hierarchical payload");
  t
