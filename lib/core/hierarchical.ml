module Rng = Dbh_util.Rng
module Space = Dbh_space.Space
module Binio = Dbh_util.Binio

type level_info = {
  k : int;
  l : int;
  d_threshold : float;
  predicted_accuracy : float;
  predicted_cost : float;
}

type 'a level = {
  info : level_info;
  index : 'a Index.t;
}

type 'a t = {
  store : 'a Store.t;
  family : 'a Hash_family.t;
  levels : 'a level array;
}

let levels t = Array.map (fun lev -> lev.info) t.levels
let indexes t = Array.map (fun lev -> lev.index) t.levels
let store t = t.store

(* When no (k,l) reaches the target within l_max, retarget to just below
   the best accuracy any (k, l_max) achieves and optimize for cost there —
   never blindly build l_max tables, which would make the hard stratum
   dominate every cascaded query. *)
let fallback_choice analysis ~k_min ~k_max ~l_max =
  if k_min > k_max then invalid_arg "Hierarchical.build: empty k range";
  let best_acc = ref 0. in
  for k = k_min to k_max do
    let acc = Analysis.accuracy analysis ~k ~l:l_max in
    if acc > !best_acc then best_acc := acc
  done;
  let target = Float.min 0.9999 (Float.max 0. (!best_acc -. 0.005)) in
  match Params.optimize analysis ~target_accuracy:target ~k_min ~k_max ~l_max () with
  | Some c -> c
  | None ->
      (* Only reachable when accuracy is ~0 everywhere; one cheap table. *)
      {
        Params.k = k_min;
        l = 1;
        predicted_accuracy = !best_acc;
        predicted_lookup = Analysis.lookup_cost analysis ~k:k_min ~l:1;
        predicted_hash = Analysis.hash_cost analysis ~k:k_min ~l:1;
        predicted_cost = Analysis.total_cost analysis ~k:k_min ~l:1;
      }

let build ?pool ~rng ~family ~db ~analysis ~target_accuracy ?pivot_table ?(levels = 5)
    ?(k_min = 1) ?(k_max = 30) ?(l_max = 1000) () =
  if levels < 1 then invalid_arg "Hierarchical.build: need at least one level";
  let nq = Analysis.num_queries analysis in
  if nq < levels then invalid_arg "Hierarchical.build: fewer sample queries than levels";
  let store = Store.of_array db in
  let order = Analysis.queries_by_nn_distance analysis in
  let level_array =
    Array.init levels (fun i ->
        (* Contiguous percentile stratum of the NN-distance ranking. *)
        let lo = i * nq / levels in
        let hi = ((i + 1) * nq / levels) - 1 in
        let positions = Array.sub order lo (hi - lo + 1) in
        let stratum = Analysis.restrict analysis positions in
        let d_threshold = Analysis.nn_distance analysis order.(hi) in
        let choice =
          match Params.optimize stratum ~target_accuracy ~k_min ~k_max ~l_max () with
          | Some c -> c
          | None -> fallback_choice stratum ~k_min ~k_max ~l_max
        in
        (* Levels stay sequential — each consumes rng draws in level
           order — but every level's own build fans out over the pool. *)
        let index =
          Index.build_on ?pool ~rng ~family ~store ?pivot_table ~k:choice.Params.k
            ~l:choice.Params.l ()
        in
        {
          info =
            {
              k = choice.Params.k;
              l = choice.Params.l;
              d_threshold;
              predicted_accuracy = choice.Params.predicted_accuracy;
              predicted_cost = choice.Params.predicted_cost;
            };
          index;
        })
  in
  { store; family; levels = level_array }

let query_verbose ?budget t q =
  let space = Hash_family.space t.family in
  let cache =
    match budget with
    | None -> Hash_family.cache t.family q
    | Some b -> Hash_family.cache_budgeted t.family ~budget:b q
  in
  let seen = Bytes.make (Store.length t.store) '\000' in
  let best = ref None in
  let lookup = ref 0 in
  let probes = ref 0 in
  let levels_probed = ref 0 in
  (* The budget is charged before every distance evaluation — pivot
     distances through the shared cache and candidate comparisons here —
     so exhaustion mid-cascade stops cleanly with the best answer the
     paid-for computations found. *)
  (try
     Array.iter
       (fun lev ->
         incr levels_probed;
         probes := !probes + Index.l lev.index;
         let fresh = Index.candidates_into lev.index cache ~seen in
         List.iter
           (fun id ->
             (match budget with Some b -> Budget.charge b | None -> ());
             incr lookup;
             let d = space.Space.distance q (Store.get t.store id) in
             match !best with
             | Some (_, bd) when bd <= d -> ()
             | _ -> best := Some (id, d))
           fresh;
         match !best with
         | Some (_, bd) when bd <= lev.info.d_threshold -> raise Exit
         | _ -> ())
       t.levels
   with
  | Exit -> ()
  | Budget.Exhausted -> ());
  let stats =
    {
      Index.hash_cost = Hash_family.cache_cost cache;
      lookup_cost = !lookup;
      probes = !probes;
    }
  in
  let truncated = match budget with Some b -> Budget.exhausted b | None -> false in
  ({ Index.nn = !best; stats; truncated }, !levels_probed)

let query ?budget t q = fst (query_verbose ?budget t q)

let query_batch ?pool ?budget t qs =
  let run q =
    let budget = Option.map Budget.create budget in
    query ?budget t q
  in
  match pool with
  | None -> Array.map run qs
  | Some pool -> Dbh_util.Pool.parallel_map_array pool run qs

let insert t obj =
  let id = Store.add t.store obj in
  Array.iter (fun lev -> Index.index_existing lev.index id) t.levels;
  id

let delete t id = Store.delete t.store id

(* ----------------------------------------------------------- persistence *)

let format_tag = "DBH-hierarchical-v1"

let write ~encode buf t =
  Binio.write_string buf format_tag;
  Hash_family.write ~encode buf t.family;
  Index.write_store ~encode buf t.store;
  Binio.write_int buf (Array.length t.levels);
  Array.iter
    (fun lev ->
      Binio.write_float buf lev.info.d_threshold;
      Binio.write_float buf lev.info.predicted_accuracy;
      Binio.write_float buf lev.info.predicted_cost;
      Index.write_body buf lev.index)
    t.levels

let read ~decode ~space r =
  let tag = Binio.read_string r in
  if tag <> format_tag then
    raise (Binio.Corrupt (Printf.sprintf "expected %s, found %S" format_tag tag));
  let family = Hash_family.read ~decode ~space r in
  let store = Index.read_store ~decode r in
  let num_levels = Binio.read_int r in
  if num_levels < 1 then raise (Binio.Corrupt "no levels");
  let levels =
    Array.init num_levels (fun _ ->
        let d_threshold = Binio.read_float r in
        let predicted_accuracy = Binio.read_float r in
        let predicted_cost = Binio.read_float r in
        let index = Index.read_body ~family ~store r in
        {
          info =
            {
              k = Index.k index;
              l = Index.l index;
              d_threshold;
              predicted_accuracy;
              predicted_cost;
            };
          index;
        })
  in
  { store; family; levels }

let snapshot_kind = "hierarchical"
let snapshot_version = 1

let save ~encode ~path t =
  let buf = Buffer.create 4096 in
  write ~encode buf t;
  Dbh_persist.Envelope.save ~path ~kind:snapshot_kind ~version:snapshot_version
    (Buffer.contents buf)

let load ~decode ~space ~path =
  let payload =
    Dbh_persist.Envelope.read_expect ~kind:snapshot_kind ~version:snapshot_version ~path
  in
  let r = Binio.reader payload in
  let t = read ~decode ~space r in
  if not (Binio.at_end r) then
    raise (Binio.Corrupt "trailing bytes after hierarchical payload");
  t
