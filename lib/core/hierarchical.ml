module Rng = Dbh_util.Rng
module Space = Dbh_space.Space
module Binio = Dbh_util.Binio

type level_info = {
  k : int;
  l : int;
  d_threshold : float;
  predicted_accuracy : float;
  predicted_cost : float;
}

type 'a level = {
  info : level_info;
  index : 'a Index.t;
}

type 'a t = {
  store : 'a Store.t;
  family : 'a Hash_family.t;
  levels : 'a level array;
}

let levels t = Array.map (fun lev -> lev.info) t.levels
let indexes t = Array.map (fun lev -> lev.index) t.levels
let store t = t.store

(* When no (k,l) reaches the target within l_max, retarget to just below
   the best accuracy any (k, l_max) achieves and optimize for cost there —
   never blindly build l_max tables, which would make the hard stratum
   dominate every cascaded query. *)
let fallback_choice analysis ~k_min ~k_max ~l_max =
  if k_min > k_max then invalid_arg "Hierarchical.build: empty k range";
  let best_acc = ref 0. in
  for k = k_min to k_max do
    let acc = Analysis.accuracy analysis ~k ~l:l_max in
    if acc > !best_acc then best_acc := acc
  done;
  let target = Float.min 0.9999 (Float.max 0. (!best_acc -. 0.005)) in
  match Params.optimize analysis ~target_accuracy:target ~k_min ~k_max ~l_max () with
  | Some c -> c
  | None ->
      (* Only reachable when accuracy is ~0 everywhere; one cheap table. *)
      {
        Params.k = k_min;
        l = 1;
        predicted_accuracy = !best_acc;
        predicted_lookup = Analysis.lookup_cost analysis ~k:k_min ~l:1;
        predicted_hash = Analysis.hash_cost analysis ~k:k_min ~l:1;
        predicted_cost = Analysis.total_cost analysis ~k:k_min ~l:1;
      }

let build ?pool ~rng ~family ~db ~analysis ~target_accuracy ?pivot_table ?(levels = 5)
    ?(k_min = 1) ?(k_max = 30) ?(l_max = 1000) () =
  if levels < 1 then invalid_arg "Hierarchical.build: need at least one level";
  let nq = Analysis.num_queries analysis in
  if nq < levels then invalid_arg "Hierarchical.build: fewer sample queries than levels";
  let store = Store.of_array db in
  let order = Analysis.queries_by_nn_distance analysis in
  let level_array =
    Array.init levels (fun i ->
        (* Contiguous percentile stratum of the NN-distance ranking. *)
        let lo = i * nq / levels in
        let hi = ((i + 1) * nq / levels) - 1 in
        let positions = Array.sub order lo (hi - lo + 1) in
        let stratum = Analysis.restrict analysis positions in
        let d_threshold = Analysis.nn_distance analysis order.(hi) in
        let choice =
          match Params.optimize stratum ~target_accuracy ~k_min ~k_max ~l_max () with
          | Some c -> c
          | None -> fallback_choice stratum ~k_min ~k_max ~l_max
        in
        (* Levels stay sequential — each consumes rng draws in level
           order — but every level's own build fans out over the pool. *)
        let index =
          Index.build_on ?pool ~rng ~family ~store ?pivot_table ~k:choice.Params.k
            ~l:choice.Params.l ()
        in
        {
          info =
            {
              k = choice.Params.k;
              l = choice.Params.l;
              d_threshold;
              predicted_accuracy = choice.Params.predicted_accuracy;
              predicted_cost = choice.Params.predicted_cost;
            };
          index;
        })
  in
  { store; family; levels = level_array }

(* The cascade query core.  The budget is charged before every distance
   evaluation — pivot distances through the shared cache and candidate
   comparisons here — so exhaustion mid-cascade stops cleanly with the
   best answer the paid-for computations found.  Trace events and the
   end-of-query metrics recording follow the same conventions as
   [Index.query_with]; this entry point records the query (not the
   per-level indexes), so cascaded queries count once. *)
let query_with ?budget ?metrics ?trace t q =
  let metrics = Dbh_obs.Metrics.resolve metrics in
  let t0 = match metrics with Some _ -> Dbh_obs.Metrics.now () | None -> 0. in
  (match trace with
  | Some tr ->
      Dbh_obs.Trace.record tr
        (Dbh_obs.Trace.Query_start
           { kind = Printf.sprintf "hierarchical(%d levels)" (Array.length t.levels) })
  | None -> ());
  let space = Hash_family.space t.family in
  let cache = Hash_family.cache ?budget ?trace t.family q in
  let seen = Bytes.make (Store.length t.store) '\000' in
  let best = ref None in
  let lookup = ref 0 in
  let probes = ref 0 in
  let levels_probed = ref 0 in
  (try
     Array.iteri
       (fun li lev ->
         incr levels_probed;
         (match trace with
         | Some tr ->
             Dbh_obs.Trace.record tr
               (Dbh_obs.Trace.Level_enter { level = li; threshold = lev.info.d_threshold })
         | None -> ());
         probes := !probes + Index.l lev.index;
         let fresh = Index.candidates_into ?trace ~level:li lev.index cache ~seen in
         List.iter
           (fun id ->
             (match budget with Some b -> Budget.charge b | None -> ());
             incr lookup;
             let d = space.Space.distance q (Store.get t.store id) in
             let improved = match !best with Some (_, bd) -> d < bd | None -> true in
             (match trace with
             | Some tr ->
                 Dbh_obs.Trace.record tr
                   (Dbh_obs.Trace.Candidate { id; distance = d; improved })
             | None -> ());
             if improved then best := Some (id, d))
           fresh;
         match !best with
         | Some (_, bd) when bd <= lev.info.d_threshold ->
             (match trace with
             | Some tr ->
                 Dbh_obs.Trace.record tr
                   (Dbh_obs.Trace.Level_settled { level = li; best = bd })
             | None -> ());
             raise Exit
         | _ -> ())
       t.levels
   with
  | Exit -> ()
  | Budget.Exhausted ->
      (match trace with
      | Some tr ->
          Dbh_obs.Trace.record tr
            (Dbh_obs.Trace.Budget_exhausted
               { spent = (match budget with Some b -> Budget.spent b | None -> 0) })
      | None -> ()));
  let stats =
    {
      Index.hash_cost = Hash_family.cache_cost cache;
      lookup_cost = !lookup;
      probes = !probes;
    }
  in
  let truncated = match budget with Some b -> Budget.exhausted b | None -> false in
  (match trace with
  | Some tr ->
      Dbh_obs.Trace.record tr
        (Dbh_obs.Trace.Query_done
           {
             hash_cost = stats.Index.hash_cost;
             lookup_cost = stats.Index.lookup_cost;
             probes = stats.Index.probes;
             levels_probed = !levels_probed;
             truncated;
           })
  | None -> ());
  let seconds =
    match metrics with Some _ -> Some (Dbh_obs.Metrics.now () -. t0) | None -> None
  in
  Index.observe_query ?metrics ?seconds ~cache_hits:(Hash_family.cache_hits cache) ~stats
    ~truncated ~levels_probed:!levels_probed ();
  { Index.nn = !best; stats; truncated; levels_probed = !levels_probed }

let search ?(opts = Query_opts.default) t q =
  let budget = Option.map Budget.create opts.Query_opts.budget in
  query_with ?budget ?metrics:opts.Query_opts.metrics ?trace:opts.Query_opts.trace t q

let search_batch ?(opts = Query_opts.default) t qs =
  let metrics = Dbh_obs.Metrics.resolve opts.Query_opts.metrics in
  let run q =
    let budget = Option.map Budget.create opts.Query_opts.budget in
    query_with ?budget ?metrics t q
  in
  match opts.Query_opts.pool with
  | None -> Array.map run qs
  | Some pool -> Dbh_util.Pool.parallel_map_array pool run qs

let query ?budget t q = query_with ?budget t q

let query_batch ?pool ?budget t qs =
  search_batch ~opts:(Query_opts.make ?budget ?pool ()) t qs

let query_verbose ?budget t q =
  let r = query_with ?budget t q in
  (r, r.Index.levels_probed)

let insert t obj =
  let id = Store.add t.store obj in
  Array.iter (fun lev -> Index.index_existing lev.index id) t.levels;
  id

let delete t id = Store.delete t.store id

(* ----------------------------------------------------------- persistence *)

let format_tag = "DBH-hierarchical-v1"

let write ~encode buf t =
  Binio.write_string buf format_tag;
  Hash_family.write ~encode buf t.family;
  Index.write_store ~encode buf t.store;
  Binio.write_int buf (Array.length t.levels);
  Array.iter
    (fun lev ->
      Binio.write_float buf lev.info.d_threshold;
      Binio.write_float buf lev.info.predicted_accuracy;
      Binio.write_float buf lev.info.predicted_cost;
      Index.write_body buf lev.index)
    t.levels

let read ~decode ~space r =
  let tag = Binio.read_string r in
  if tag <> format_tag then
    raise (Binio.Corrupt (Printf.sprintf "expected %s, found %S" format_tag tag));
  let family = Hash_family.read ~decode ~space r in
  let store = Index.read_store ~decode r in
  let num_levels = Binio.read_int r in
  if num_levels < 1 then raise (Binio.Corrupt "no levels");
  let levels =
    Array.init num_levels (fun _ ->
        let d_threshold = Binio.read_float r in
        let predicted_accuracy = Binio.read_float r in
        let predicted_cost = Binio.read_float r in
        let index = Index.read_body ~family ~store r in
        {
          info =
            {
              k = Index.k index;
              l = Index.l index;
              d_threshold;
              predicted_accuracy;
              predicted_cost;
            };
          index;
        })
  in
  { store; family; levels }

let snapshot_kind = "hierarchical"
let snapshot_version = 1

let save ~encode ~path t =
  let buf = Buffer.create 4096 in
  write ~encode buf t;
  Dbh_persist.Envelope.save ~path ~kind:snapshot_kind ~version:snapshot_version
    (Buffer.contents buf)

let load ~decode ~space ~path =
  let payload =
    Dbh_persist.Envelope.read_expect ~kind:snapshot_kind ~version:snapshot_version ~path
  in
  let r = Binio.reader payload in
  let t = read ~decode ~space r in
  if not (Binio.at_end r) then
    raise (Binio.Corrupt "trailing bytes after hierarchical payload");
  t
