module Rng = Dbh_util.Rng
module Bitvec = Dbh_util.Bitvec

let check_rate c = if c < 0. || c > 1. then invalid_arg "Collision: rate outside [0,1]"

let c_k c k =
  check_rate c;
  if k < 0 then invalid_arg "Collision.c_k: negative k";
  c ** float_of_int k

let c_kl c ~k ~l =
  if l < 0 then invalid_arg "Collision.c_kl: negative l";
  let ck = c_k c k in
  1. -. ((1. -. ck) ** float_of_int l)

let l_for_target c ~k ~target =
  check_rate target;
  let ck = c_k c k in
  if ck >= 1. then Some 1
  else if target <= 0. then Some 0
  else if ck <= 0. then None
  else begin
    (* 1 - (1-ck)^l >= target  <=>  l >= log(1-target)/log(1-ck) *)
    let l = Float.ceil (log (1. -. target) /. log (1. -. ck)) in
    if Float.is_integer l && l >= 0. && l < 1e9 then Some (max 1 (int_of_float l)) else None
  end

(* How many extra probes land on 1-flip vs 2-flip keys.  The probe
   sequence visits cheapest subsets first, but which mix of sizes a
   margin-driven walk picks is query-dependent; the model assumes the
   radius-1 shell fills before any radius-2 key — the dominant regime,
   since single flips are (weakly) cheaper than any pair containing
   them.  The range-scan path probes the full ball, which this same
   split covers with extra >= ball. *)
let probe_split ~k ~probes ~radius =
  if probes < 1 then invalid_arg "Collision: probes must be >= 1";
  if radius < 0 || radius > 2 then invalid_arg "Collision: radius must be in [0, 2]";
  if k < 0 then invalid_arg "Collision: negative k";
  let extra = probes - 1 in
  let n1 = if radius >= 1 then min extra k else 0 in
  let n2 = if radius >= 2 then min (extra - n1) (k * (k - 1) / 2) else 0 in
  (n1, n2)

(* Eq. 9 extended to multi-probe: a probed bucket at Hamming distance m
   from the base key collides with the query's neighbor exactly when the
   m flipped bits all disagree (probability (1-c) each) and the other
   k-m agree.  The events are disjoint across distinct flip subsets, so
   the per-table collision probability is the plain c^k plus one term
   per probed key. *)
let c_k_probed c ~k ~probes ~radius =
  check_rate c;
  let n1, n2 = probe_split ~k ~probes ~radius in
  let base = c_k c k in
  let miss = 1. -. c in
  let one = if n1 = 0 then 0. else float_of_int n1 *. (c ** float_of_int (k - 1)) *. miss in
  let two =
    if n2 = 0 then 0.
    else float_of_int n2 *. (c ** float_of_int (k - 2)) *. miss *. miss
  in
  Float.min 1. (base +. one +. two)

(* Eq. 10 with the probed per-table rate. *)
let c_kl_probed c ~k ~l ~probes ~radius =
  if l < 0 then invalid_arg "Collision.c_kl_probed: negative l";
  let ck = c_k_probed c ~k ~probes ~radius in
  1. -. ((1. -. ck) ** float_of_int l)

let l_for_target_probed c ~k ~probes ~radius ~target =
  check_rate target;
  let ck = c_k_probed c ~k ~probes ~radius in
  if ck >= 1. then Some 1
  else if target <= 0. then Some 0
  else if ck <= 0. then None
  else begin
    let l = Float.ceil (log (1. -. target) /. log (1. -. ck)) in
    if Float.is_integer l && l >= 0. && l < 1e9 then Some (max 1 (int_of_float l)) else None
  end

let estimate ~rng ?(num_fns = 200) family x1 x2 =
  let fn_indices = Hash_family.sample_fn_indices ~rng family num_fns in
  let s1 = Hash_family.signature family ~fn_indices x1 in
  let s2 = Hash_family.signature family ~fn_indices x2 in
  Bitvec.agreement s1 s2

let estimate_exact family x1 x2 =
  let n = Hash_family.size family in
  let fn_indices = Array.init n (fun i -> i) in
  let s1 = Hash_family.signature family ~fn_indices x1 in
  let s2 = Hash_family.signature family ~fn_indices x2 in
  Bitvec.agreement s1 s2

let pairwise_matrix ?pool ~rng ?(num_fns = 200) family sample =
  let fn_indices = Hash_family.sample_fn_indices ~rng family num_fns in
  (* Signatures dominate the cost (each pays up to num_pivots distances);
     they are independent per object, so they fan out across the pool.
     The function draw happens before, so the matrix is bit-identical to
     the sequential run for the same seed. *)
  let sig_of = Hash_family.signature family ~fn_indices in
  let signatures =
    match pool with
    | None -> Array.map sig_of sample
    | Some pool ->
        (* One signature pays pivot distances against a fixed pivot set,
           so an object's share scales with its own declared cost. *)
        Dbh_util.Pool.parallel_map_array
          ?cost:(Dbh_space.Space.cost_estimator (Hash_family.space family) sample)
          pool sig_of sample
  in
  let n = Array.length sample in
  let m = Array.make_matrix n n 1. in
  let fill_row i =
    for j = i + 1 to n - 1 do
      let c = Bitvec.agreement signatures.(i) signatures.(j) in
      m.(i).(j) <- c;
      m.(j).(i) <- c
    done
  in
  (match pool with
  | None ->
      for i = 0 to n - 1 do
        fill_row i
      done
  | Some pool ->
      (* Rows write disjoint cells: row task i writes m.(i).(j>i) and the
         mirror cells m.(j>i).(i), never a cell another row task touches.
         The triangular loop makes row i cost n-1-i agreements, so chunk
         by that instead of row count. *)
      Dbh_util.Pool.parallel_for ~cost:(fun i -> n - i) pool n fill_row);
  m
