module Rng = Dbh_util.Rng
module Bitvec = Dbh_util.Bitvec

let check_rate c = if c < 0. || c > 1. then invalid_arg "Collision: rate outside [0,1]"

let c_k c k =
  check_rate c;
  if k < 0 then invalid_arg "Collision.c_k: negative k";
  c ** float_of_int k

let c_kl c ~k ~l =
  if l < 0 then invalid_arg "Collision.c_kl: negative l";
  let ck = c_k c k in
  1. -. ((1. -. ck) ** float_of_int l)

let l_for_target c ~k ~target =
  check_rate target;
  let ck = c_k c k in
  if ck >= 1. then Some 1
  else if target <= 0. then Some 0
  else if ck <= 0. then None
  else begin
    (* 1 - (1-ck)^l >= target  <=>  l >= log(1-target)/log(1-ck) *)
    let l = Float.ceil (log (1. -. target) /. log (1. -. ck)) in
    if Float.is_integer l && l >= 0. && l < 1e9 then Some (max 1 (int_of_float l)) else None
  end

let estimate ~rng ?(num_fns = 200) family x1 x2 =
  let fn_indices = Hash_family.sample_fn_indices ~rng family num_fns in
  let s1 = Hash_family.signature family ~fn_indices x1 in
  let s2 = Hash_family.signature family ~fn_indices x2 in
  Bitvec.agreement s1 s2

let estimate_exact family x1 x2 =
  let n = Hash_family.size family in
  let fn_indices = Array.init n (fun i -> i) in
  let s1 = Hash_family.signature family ~fn_indices x1 in
  let s2 = Hash_family.signature family ~fn_indices x2 in
  Bitvec.agreement s1 s2

let pairwise_matrix ?pool ~rng ?(num_fns = 200) family sample =
  let fn_indices = Hash_family.sample_fn_indices ~rng family num_fns in
  (* Signatures dominate the cost (each pays up to num_pivots distances);
     they are independent per object, so they fan out across the pool.
     The function draw happens before, so the matrix is bit-identical to
     the sequential run for the same seed. *)
  let sig_of = Hash_family.signature family ~fn_indices in
  let signatures =
    match pool with
    | None -> Array.map sig_of sample
    | Some pool -> Dbh_util.Pool.parallel_map_array pool sig_of sample
  in
  let n = Array.length sample in
  let m = Array.make_matrix n n 1. in
  let fill_row i =
    for j = i + 1 to n - 1 do
      let c = Bitvec.agreement signatures.(i) signatures.(j) in
      m.(i).(j) <- c;
      m.(j).(i) <- c
    done
  in
  (match pool with
  | None ->
      for i = 0 to n - 1 do
        fill_row i
      done
  | Some pool ->
      (* Rows write disjoint cells: row task i writes m.(i).(j>i) and the
         mirror cells m.(j>i).(i), never a cell another row task touches. *)
      Dbh_util.Pool.parallel_for pool n fill_row);
  m
