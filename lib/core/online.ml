module Rng = Dbh_util.Rng
module Vec = Dbh_util.Vec

(* Dead-handle set as a growable monotone byte map, mirroring [Store]'s
   tombstones: membership probes from reader domains ([get],
   [alive_handles], [size]) race writer-side deletes, and single-byte
   0->1 flips over a grow-by-copy [Bytes.t] are benign where a
   hash-table resize is not.  A reader observing a stale '\000'
   linearizes its call before the delete; the map pointer is published
   only after the old contents are copied in, and maps only ever grow,
   so a bounds check against one observed map stays valid for any
   later-observed one. *)
module Deadmap = struct
  type t = { mutable map : Bytes.t; mutable count : int }

  let create () = { map = Bytes.empty; count = 0 }

  let mem t h =
    let m = t.map in
    h >= 0 && h < Bytes.length m && Bytes.get m h = '\001'

  (* Writer-only. *)
  let add t h =
    if not (mem t h) then begin
      if h >= Bytes.length t.map then begin
        let grown = Bytes.make (max 16 (max (h + 1) (2 * Bytes.length t.map))) '\000' in
        Bytes.blit t.map 0 grown 0 (Bytes.length t.map);
        t.map <- grown
      end;
      Bytes.set t.map h '\001';
      t.count <- t.count + 1
    end

  let count t = t.count

  (* Ascending handle order; writer-side only. *)
  let iter f t = Bytes.iteri (fun h c -> if c = '\001' then f h) t.map
end

type 'a result = {
  nn : (int * float) option;
  stats : Index.stats;
  truncated : bool;
  levels_probed : int;
}

(* One generation of query-visible state, published wholesale through
   an [Atomic.t]: readers load the pointer once and work against an
   internally consistent generation however many rebuilds, compactions
   or updates the (single) writer performs meanwhile.  The writer
   re-publishes after every in-place mutation — the atomic store is the
   release fence that makes the mutation visible to subsequent reader
   loads. *)
type 'a state = {
  index : 'a Hierarchical.t;
  external_of_internal : int Vec.t;  (* internal id -> handle *)
  internal_of_external : (int, int) Hashtbl.t;  (* writer-only *)
  (* Internal ids fully published in this generation.  The writer
     release-stores the new count as the LAST step of an insert;
     readers acquire-load it before probing and skip any id at or past
     it.  The resulting happens-before edge is what makes every
     store/table/handle-map write for an admitted id visible — a plain
     [Vec.length] read would race with the push it is meant to cover. *)
  visible : int Atomic.t;
}

type 'a t = {
  rng : Rng.t;
  space : 'a Dbh_space.Space.t;
  pool : Dbh_util.Pool.t option;  (* used by every (re)build and batched query *)
  config : Builder.config;
  rebuild_factor : float;
  target_accuracy : float;
  (* Stable registry: external handles never change. *)
  registry : 'a Vec.t;
  dead : Deadmap.t;
  (* Current generation, swapped RCU-style. *)
  published : 'a state Atomic.t;
  mutable built_size : int;
  mutable rebuild_count : int;
}

let current t = Atomic.get t.published

let size t = Vec.length t.registry - Deadmap.count t.dead
let tombstones t = Deadmap.count t.dead
let delta_size t = Hierarchical.delta_size (current t).index

let compact t =
  (* Publish a freshly compacted cascade instead of compacting in
     place: concurrent readers drain the old tables while new queries
     see the folded ones — both answer identically. *)
  let s = current t in
  Atomic.set t.published { s with index = Hierarchical.compacted s.index }

let rebuilds t = t.rebuild_count
let space t = t.space
let index t = (current t).index
let rng_state t = Rng.state t.rng

let get t handle =
  if handle < 0 || handle >= Vec.length t.registry || Deadmap.mem t.dead handle then
    invalid_arg "Online.get: dead or unknown handle";
  Vec.get t.registry handle

let alive_handles t =
  let out = ref [] in
  for h = Vec.length t.registry - 1 downto 0 do
    if not (Deadmap.mem t.dead h) then out := h :: !out
  done;
  !out

(* Run the full offline pipeline on a snapshot of alive handles. *)
let build_generation ?pool ?observations ~rng ~space ~config ~target_accuracy registry
    handles =
  if Array.length handles = 0 then invalid_arg "Online: cannot build an empty database";
  let db = Array.map (Vec.get registry) handles in
  let prepared = Builder.prepare ?pool ?observations ~rng ~space ~config db in
  let index = Builder.hierarchical ?pool ~rng ~prepared ~db ~target_accuracy ~config () in
  let external_of_internal = Vec.create () in
  let internal_of_external = Hashtbl.create (Array.length handles) in
  Array.iteri
    (fun internal handle ->
      ignore (Vec.push external_of_internal handle);
      Hashtbl.replace internal_of_external handle internal)
    handles;
  {
    index;
    external_of_internal;
    internal_of_external;
    visible = Atomic.make (Array.length handles);
  }

let rebuild t =
  let handles = Array.of_list (alive_handles t) in
  let s =
    build_generation ?pool:t.pool ~rng:t.rng ~space:t.space ~config:t.config
      ~target_accuracy:t.target_accuracy t.registry handles
  in
  Atomic.set t.published s;
  t.built_size <- Array.length handles

let create ?pool ~rng ~space ?(config = Builder.default_config) ?(rebuild_factor = 2.0)
    ~target_accuracy db =
  if Array.length db = 0 then invalid_arg "Online.create: empty database";
  if rebuild_factor <= 1.0 then invalid_arg "Online.create: rebuild_factor must exceed 1";
  let registry = Vec.of_array db in
  let handles = Array.init (Array.length db) Fun.id in
  let state = build_generation ?pool ~rng ~space ~config ~target_accuracy registry handles in
  {
    rng;
    space;
    pool;
    config;
    rebuild_factor;
    target_accuracy;
    registry;
    dead = Deadmap.create ();
    published = Atomic.make state;
    built_size = Array.length db;
    rebuild_count = 0;
  }

let record_counter pick =
  match Dbh_obs.Metrics.get () with
  | None -> ()
  | Some m -> Dbh_obs.Registry.inc (pick m)

let rebuild_now t =
  rebuild t;
  t.rebuild_count <- t.rebuild_count + 1;
  record_counter (fun m -> m.Dbh_obs.Metrics.online_rebuilds_total)

let retune ?metrics ?selector t =
  (* Observation-driven generation: distill the live-traffic strata from
     the metrics registry, rebuild the family against them
     (Hash_family.retune via Builder.prepare), re-fit the collision model
     and optimal (k,l), and hot-swap the result exactly like [compact] —
     one atomic store publishes the whole new generation, so concurrent
     readers see either the old cascade or the new one, never a mix. *)
  let observations =
    match Dbh_obs.Metrics.resolve metrics with
    | Some m -> Hash_family.observations_of_metrics m
    | None -> Hash_family.no_observations
  in
  let config =
    match selector with
    | None -> t.config
    | Some selector -> { t.config with Builder.selector }
  in
  let prior = Hierarchical.family (current t).index in
  let handles = Array.of_list (alive_handles t) in
  let s =
    build_generation ?pool:t.pool ~observations:(prior, observations) ~rng:t.rng
      ~space:t.space ~config ~target_accuracy:t.target_accuracy t.registry handles
  in
  Atomic.set t.published s;
  t.built_size <- Array.length handles;
  t.rebuild_count <- t.rebuild_count + 1;
  record_counter (fun m -> m.Dbh_obs.Metrics.online_rebuilds_total);
  observations

let maybe_rebuild t =
  let alive = size t in
  let hi = t.rebuild_factor *. float_of_int t.built_size in
  let lo = float_of_int t.built_size /. t.rebuild_factor in
  if float_of_int alive >= hi || float_of_int alive <= lo then begin
    rebuild t;
    t.rebuild_count <- t.rebuild_count + 1;
    record_counter (fun m -> m.Dbh_obs.Metrics.online_rebuilds_total)
  end

let insert t obj =
  let handle = Vec.push t.registry obj in
  let s = current t in
  let internal = Hierarchical.insert s.index obj in
  ignore (Vec.push s.external_of_internal handle);
  Hashtbl.replace s.internal_of_external handle internal;
  (* Last step: release the new id to readers.  Everything above —
     registry slot, store slot, bucket entry, handle-map slot — is
     sequenced before this store, so a reader whose acquire load covers
     [internal] sees all of it. *)
  Atomic.set s.visible (internal + 1);
  (* Republish the same generation: the atomic store releases the
     in-place delta/store/map writes above to reader domains. *)
  Atomic.set t.published s;
  record_counter (fun m -> m.Dbh_obs.Metrics.online_inserts_total);
  maybe_rebuild t;
  handle

let delete t handle =
  if handle < 0 || handle >= Vec.length t.registry then
    invalid_arg "Online.delete: unknown handle";
  if not (Deadmap.mem t.dead handle) then begin
    Deadmap.add t.dead handle;
    let s = current t in
    (match Hashtbl.find_opt s.internal_of_external handle with
    | Some internal -> Hierarchical.delete s.index internal
    | None -> ());
    Atomic.set t.published s;
    record_counter (fun m -> m.Dbh_obs.Metrics.online_deletes_total);
    maybe_rebuild t
  end

let translate s (r : 'a Index.result) =
  let nn =
    Option.map
      (fun (internal, d) -> (Vec.get s.external_of_internal internal, d))
      r.Index.nn
  in
  {
    nn;
    stats = r.Index.stats;
    truncated = r.Index.truncated;
    levels_probed = r.Index.levels_probed;
  }

let query_probed ?budget ?metrics ?trace ?scratch ~probes ~radius t q =
  (* One pointer load pins the whole generation — the cascade queried
     and the handle map translated against can never mix generations,
     whatever the writer does concurrently.  The acquire load of the
     visibility bound then makes every admitted id's state readable. *)
  let s = current t in
  let limit = Atomic.get s.visible in
  translate s
    (Hierarchical.query_probed ?budget ?metrics ?trace ?scratch ~limit ~probes ~radius
       s.index q)

let query_with ?budget ?metrics ?trace ?scratch ?(probes = 1) ?(radius = 0) t q =
  query_probed ?budget ?metrics ?trace ?scratch ~probes ~radius t q

let search ?(opts = Query_opts.default) t q =
  let budget = Option.map Budget.create opts.Query_opts.budget in
  query_probed ?budget ?metrics:opts.Query_opts.metrics ?trace:opts.Query_opts.trace
    ?scratch:opts.Query_opts.scratch ~probes:opts.Query_opts.probes_per_table
    ~radius:opts.Query_opts.hamming_radius t q

let search_batch ?(opts = Query_opts.default) t qs =
  let pool = match opts.Query_opts.pool with Some _ as p -> p | None -> t.pool in
  let metrics = Dbh_obs.Metrics.resolve opts.Query_opts.metrics in
  let probes = opts.Query_opts.probes_per_table in
  let radius = opts.Query_opts.hamming_radius in
  (* The generation is pinned once for the whole batch; handle
     translation then reads the same state the queries ran against. *)
  let s = current t in
  let limit = Atomic.get s.visible in
  let results =
    match pool with
    | None ->
        let scratch =
          match opts.Query_opts.scratch with Some s -> s | None -> Scratch.create ()
        in
        Array.map
          (fun q ->
            let budget = Option.map Budget.create opts.Query_opts.budget in
            Hierarchical.query_probed ?budget ?metrics ~scratch ~limit ~probes ~radius
              s.index q)
          qs
    | Some pool ->
        Dbh_util.Pool.parallel_map_array
          ?cost:(Dbh_space.Space.cost_estimator t.space qs)
          pool
          (fun q ->
            let budget = Option.map Budget.create opts.Query_opts.budget in
            Hierarchical.query_probed ?budget ?metrics ~limit ~probes ~radius s.index q)
          qs
  in
  Array.map (translate s) results

(* ------------------------------------------------------------ durability *)

type 'a online = 'a t

module Durable = struct
  module Binio = Dbh_util.Binio
  module Envelope = Dbh_persist.Envelope
  module Wal = Dbh_persist.Wal
  module Layout = Dbh_persist.Layout

  let snapshot_kind = "online"

  (* Version 2 snapshots embed the packed (CSR) hierarchical body; v1
     snapshots (bit-packed key blocks) are still read, so a pre-packed
     directory opens cleanly and its first checkpoint migrates it. *)
  let snapshot_version = 2
  let readable_versions = [ 1; 2 ]

  let read_expect_any ~path =
    let header, payload = Envelope.read ~path in
    if header.Envelope.kind <> snapshot_kind then
      raise
        (Dbh_util.Binio.Corrupt
           (Printf.sprintf "expected a %S envelope, found %S" snapshot_kind
              header.Envelope.kind));
    if not (List.mem header.Envelope.version readable_versions) then
      raise
        (Dbh_util.Binio.Corrupt
           (Printf.sprintf "unreadable %S version %d" snapshot_kind
              header.Envelope.version));
    (header.Envelope.version, payload)

  let corrupt fmt = Printf.ksprintf (fun s -> raise (Binio.Corrupt s)) fmt

  (* ------------------------------------------------- snapshot payload *)

  (* rng state | registry length | dead handles | external_of_internal |
     built_size | rebuild_count | hierarchical index.  The rng state is
     part of the snapshot so that rebuilds triggered during WAL replay
     consume exactly the random draws of the original run — restart
     equivalence is bit-for-bit, not approximate. *)

  let write_payload ~encode (o : 'a online) =
    let s = current o in
    let buf = Buffer.create 4096 in
    Array.iter (Binio.write_int64 buf) (Rng.state o.rng);
    Binio.write_int buf (Vec.length o.registry);
    let dead = ref [] in
    Deadmap.iter (fun h -> dead := h :: !dead) o.dead;
    Binio.write_int_array buf (Array.of_list (List.rev !dead));
    Binio.write_int_array buf (Vec.to_array s.external_of_internal);
    Binio.write_int buf o.built_size;
    Binio.write_int buf o.rebuild_count;
    Hierarchical.write_packed ~encode buf s.index;
    Buffer.contents buf

  (* Structural decode shared by recovery and [verify_snapshot]: every
     invariant the live structure maintains is re-checked here, so a
     snapshot that passes cannot put the index into a state the normal
     API could not have produced. *)
  let read_payload ~decode ~space payload =
    let r = Binio.reader payload in
    let rng_words = Array.init 4 (fun _ -> Binio.read_int64 r) in
    let rng =
      try Rng.of_state rng_words
      with Invalid_argument _ -> corrupt "invalid rng state in snapshot"
    in
    let registry_len = Binio.read_int r in
    if registry_len < 1 then corrupt "implausible registry length %d" registry_len;
    let dead_handles = Binio.read_int_array r in
    Array.iteri
      (fun i h ->
        if h < 0 || h >= registry_len then corrupt "dead handle %d out of range" h;
        if i > 0 && dead_handles.(i - 1) >= h then corrupt "dead handles not strictly ascending")
      dead_handles;
    if Array.length dead_handles >= registry_len then corrupt "no alive objects in snapshot";
    let eoi = Binio.read_int_array r in
    let built_size = Binio.read_int r in
    if built_size < 1 then corrupt "implausible built size %d" built_size;
    let rebuild_count = Binio.read_int r in
    if rebuild_count < 0 then corrupt "negative rebuild count";
    let index = Hierarchical.read_any ~decode ~space r in
    if not (Binio.at_end r) then corrupt "trailing bytes after online payload";
    let store = Hierarchical.store index in
    if Array.length eoi <> Store.length store then
      corrupt "handle map covers %d ids but store has %d" (Array.length eoi)
        (Store.length store);
    let dead = Deadmap.create () in
    Array.iter (Deadmap.add dead) dead_handles;
    let internal_of_external = Hashtbl.create (Array.length eoi) in
    Array.iteri
      (fun internal h ->
        if h < 0 || h >= registry_len then corrupt "mapped handle %d out of range" h;
        if Hashtbl.mem internal_of_external h then corrupt "handle %d mapped twice" h;
        Hashtbl.replace internal_of_external h internal;
        if Deadmap.mem dead h = Store.is_alive store internal then
          corrupt "liveness of handle %d disagrees between registry and store" h)
      eoi;
    for h = 0 to registry_len - 1 do
      if not (Hashtbl.mem internal_of_external h) && not (Deadmap.mem dead h) then
        corrupt "alive handle %d missing from the index" h
    done;
    (rng, registry_len, dead, eoi, internal_of_external, built_size, rebuild_count, index)

  let verify_snapshot ~path =
    let _version, payload = read_expect_any ~path in
    let space = Dbh_space.Space.make ~name:"verify" (fun (_ : string) _ -> 0.) in
    let _, registry_len, dead, _, _, _, _, _ = read_payload ~decode:Fun.id ~space payload in
    (registry_len, registry_len - Deadmap.count dead)

  (* Structural open for diagnostics (dbh-cli index-stats): the payload
     decoded with an identity codec and a distance that must never run.
     Returns the snapshot's format version, registry occupancy and the
     decoded cascade for table statistics. *)
  type snapshot_info = {
    format_version : int;
    registry_len : int;
    dead_handles : int;
    cascade : string Hierarchical.t;
  }

  let inspect_snapshot ~path =
    let version, payload = read_expect_any ~path in
    let space = Dbh_space.Space.make ~name:"inspect" (fun (_ : string) _ -> 0.) in
    let _, registry_len, dead, _, _, _, _, index =
      read_payload ~decode:Fun.id ~space payload
    in
    {
      format_version = version;
      registry_len;
      dead_handles = Deadmap.count dead;
      cascade = index;
    }

  let online_of_payload ?pool ~space ~config ~rebuild_factor ~target_accuracy ~decode payload =
    let rng, registry_len, dead, eoi, internal_of_external, built_size, rebuild_count, index =
      read_payload ~decode ~space payload
    in
    let store = Hierarchical.store index in
    (* The registry is not stored twice: rebuild it from the index's
       object store through the handle map.  Handles that died before
       the last rebuild have no internal id; their slots get a filler
       that [get] can never reach (the dead-handle check fires first). *)
    let registry = Vec.create () in
    let filler = Store.get store 0 in
    for _ = 1 to registry_len do
      ignore (Vec.push registry filler)
    done;
    Array.iteri (fun internal h -> Vec.set registry h (Store.get store internal)) eoi;
    let external_of_internal = Vec.create () in
    Array.iter (fun h -> ignore (Vec.push external_of_internal h)) eoi;
    {
      rng;
      space;
      pool;
      config;
      rebuild_factor;
      target_accuracy;
      registry;
      dead;
      published =
        Atomic.make
          {
            index;
            external_of_internal;
            internal_of_external;
            visible = Atomic.make (Vec.length external_of_internal);
          };
      built_size;
      rebuild_count;
    }

  (* ------------------------------------------------- WAL op encoding *)

  let encode_insert encoded_obj =
    let buf = Buffer.create (String.length encoded_obj + 16) in
    Buffer.add_char buf 'I';
    Binio.write_string buf encoded_obj;
    Buffer.contents buf

  let encode_delete handle =
    let buf = Buffer.create 16 in
    Buffer.add_char buf 'D';
    Binio.write_int buf handle;
    Buffer.contents buf

  let apply_op ~decode online payload =
    if String.length payload < 1 then corrupt "empty wal record";
    let r = Binio.reader (String.sub payload 1 (String.length payload - 1)) in
    (match payload.[0] with
    | 'I' ->
        let obj = Binio.guard_decode decode (Binio.read_string r) in
        if not (Binio.at_end r) then corrupt "trailing bytes in wal insert";
        ignore (insert online obj)
    | 'D' ->
        let h = Binio.read_int r in
        if not (Binio.at_end r) then corrupt "trailing bytes in wal delete";
        if h < 0 || h >= Vec.length online.registry then
          corrupt "wal deletes unknown handle %d" h;
        delete online h
    | c -> corrupt "unknown wal op %C" c)

  (* ------------------------------------------------------- the handle *)

  type nonrec 'a t = {
    online : 'a online;
    dir : string;
    encode : 'a -> string;
    decode : string -> 'a;
    fsync : bool;
    mutable generation : int;
    mutable wal : Wal.t;
    mutable wal_ops : int;
    mutable closed : bool;
  }

  type kill_point = After_snapshot | After_wal_switch

  exception Killed of kill_point

  type recovery = {
    source : [ `Fresh | `Snapshot of int | `Rebuilt ];
    generation : int;
    replayed_ops : int;
    torn_tail : bool;
    skipped : (int * string) list;
  }

  let online (t : 'a t) = t.online
  let generation (t : 'a t) = t.generation
  let wal_ops (t : 'a t) = t.wal_ops
  let dir (t : 'a t) = t.dir

  let ensure_open t = if t.closed then invalid_arg "Online.Durable: handle is closed"

  let save_snapshot_raw ~dir ~encode o gen =
    Envelope.save
      ~path:(Layout.snapshot_path ~dir gen)
      ~kind:snapshot_kind ~version:snapshot_version
      (write_payload ~encode o)

  let save_snapshot t gen = save_snapshot_raw ~dir:t.dir ~encode:t.encode t.online gen

  let cleanup_before t gen =
    (* Keep the current and previous generation of both files: the
       previous snapshot plus its complete WAL are the fallback when the
       current snapshot is lost or corrupted. *)
    List.iter
      (fun g -> if g < gen - 1 then Layout.remove_if_exists (Layout.snapshot_path ~dir:t.dir g))
      (Layout.snapshot_generations ~dir:t.dir);
    List.iter
      (fun g -> if g < gen - 1 then Layout.remove_if_exists (Layout.wal_path ~dir:t.dir g))
      (Layout.wal_generations ~dir:t.dir)

  let file_size path =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)

  let observe_checkpoint ?trace ~gen ~seconds t =
    (match Dbh_obs.Metrics.get () with
    | None -> ()
    | Some m ->
        Dbh_obs.Registry.inc m.Dbh_obs.Metrics.checkpoints_total;
        Dbh_obs.Registry.observe m.Dbh_obs.Metrics.checkpoint_seconds seconds;
        (match file_size (Layout.snapshot_path ~dir:t.dir gen) with
        | bytes -> Dbh_obs.Registry.set m.Dbh_obs.Metrics.snapshot_bytes bytes
        | exception Sys_error _ -> ()));
    match trace with
    | Some tr ->
        Dbh_obs.Trace.record tr (Dbh_obs.Trace.Checkpoint { generation = gen; seconds })
    | None -> ()

  let checkpoint ?kill ?trace t =
    ensure_open t;
    let t0 = Dbh_obs.Metrics.now () in
    (* Fold the tables' insert deltas and drop tombstones before writing:
       the snapshot then IS the compact frozen layout, and the in-memory
       index sheds its delta at the same time.  Query-visible behavior is
       unchanged. *)
    compact t.online;
    let gen = t.generation + 1 in
    save_snapshot t gen;
    (match kill with Some After_snapshot -> raise (Killed After_snapshot) | _ -> ());
    Wal.close t.wal;
    t.wal <- Wal.create ~fsync:t.fsync ~path:(Layout.wal_path ~dir:t.dir gen) ();
    t.generation <- gen;
    t.wal_ops <- 0;
    observe_checkpoint ?trace ~gen ~seconds:(Dbh_obs.Metrics.now () -. t0) t;
    (match kill with Some After_wal_switch -> raise (Killed After_wal_switch) | _ -> ());
    cleanup_before t gen

  let record_wal_append ?trace record =
    match trace with
    | Some tr ->
        Dbh_obs.Trace.record tr
          (Dbh_obs.Trace.Wal_append { bytes = String.length record })
    | None -> ()

  let insert ?trace t obj =
    ensure_open t;
    (* WAL first: once [append] returns the op is durable, and replay
       re-applies it deterministically if we crash before (or during)
       the in-memory update. *)
    let record = encode_insert (t.encode obj) in
    ignore (Wal.append t.wal record);
    record_wal_append ?trace record;
    t.wal_ops <- t.wal_ops + 1;
    insert t.online obj

  let delete ?trace t handle =
    ensure_open t;
    if handle < 0 || handle >= Vec.length t.online.registry then
      invalid_arg "Online.Durable.delete: unknown handle";
    let record = encode_delete handle in
    ignore (Wal.append t.wal record);
    record_wal_append ?trace record;
    t.wal_ops <- t.wal_ops + 1;
    delete t.online handle

  let search ?opts t q = search ?opts t.online q
  let search_batch ?opts t qs = search_batch ?opts t.online qs
  let get t handle = get t.online handle
  let size t = size t.online

  let close t =
    if not t.closed then begin
      t.closed <- true;
      Wal.close t.wal
    end

  (* --------------------------------------------------------- recovery *)

  let open_or_create ?pool ?(fsync = true) ~rng ~space ?(config = Builder.default_config)
      ?(rebuild_factor = 2.0) ~target_accuracy ~encode ~decode ~dir ?data () =
    Layout.ensure_dir dir;
    let snapshot_gens = Layout.snapshot_generations ~dir in
    let wal_gens = Layout.wal_generations ~dir in
    let max_gen = List.fold_left max 0 (snapshot_gens @ wal_gens) in
    (* Newest snapshot that verifies wins; corrupt ones are recorded and
       skipped — degrade to an older generation rather than fail. *)
    let rec try_load skipped = function
      | [] -> (None, List.rev skipped)
      | g :: rest -> (
          let path = Layout.snapshot_path ~dir g in
          match
            let _version, payload = read_expect_any ~path in
            online_of_payload ?pool ~space ~config ~rebuild_factor ~target_accuracy ~decode
              payload
          with
          | o -> (Some (g, o), List.rev skipped)
          | exception Binio.Corrupt msg -> try_load ((g, msg) :: skipped) rest
          | exception Sys_error msg -> try_load ((g, msg) :: skipped) rest)
    in
    let loaded, skipped = try_load [] (List.rev snapshot_gens) in
    match loaded with
    | Some (g, o) ->
        (* Replay the WAL chain from the loaded generation forward: wal g
           journals the ops after snapshot g, and ends exactly at the
           state snapshot g+1 captured — so when snapshot g+1 was the
           corrupt one, its wal still carries us to the present. *)
        let replayed = ref 0 in
        let rec replay g =
          let path = Layout.wal_path ~dir g in
          if not (Sys.file_exists path) then (g, false)
          else begin
            let scan = Wal.scan ~path in
            Array.iter
              (fun op ->
                (try apply_op ~decode o op with
                | Binio.Corrupt _ as e -> raise e
                | exn -> corrupt "wal replay failed: %s" (Printexc.to_string exn));
                incr replayed)
              scan.Wal.records;
            if scan.Wal.torn then (g, true)
            else if g < max_gen && Sys.file_exists (Layout.wal_path ~dir (g + 1)) then
              replay (g + 1)
            else (g, false)
          end
        in
        let last_gen, torn = replay g in
        (match Dbh_obs.Metrics.get () with
        | Some m when !replayed > 0 ->
            Dbh_obs.Registry.add m.Dbh_obs.Metrics.wal_records_replayed_total !replayed
        | _ -> ());
        let gen, wal, wal_ops =
          if last_gen = max_gen && not torn then begin
            (* Everything on disk is accounted for: keep appending to
               the current generation's log. *)
            let wal, scan = Wal.open_append ~fsync ~path:(Layout.wal_path ~dir last_gen) () in
            (last_gen, wal, Array.length scan.Wal.records)
          end
          else begin
            (* The chain broke (torn log, or generations above the one
               that loaded): logs past the break are unreachable junk —
               drop them and checkpoint to a fresh generation so the
               on-disk state is verified end-to-end before accepting new
               writes. *)
            for g' = last_gen + 1 to max_gen do
              Layout.remove_if_exists (Layout.wal_path ~dir g')
            done;
            let gen = max_gen + 1 in
            save_snapshot_raw ~dir ~encode o gen;
            (gen, Wal.create ~fsync ~path:(Layout.wal_path ~dir gen) (), 0)
          end
        in
        let t =
          { online = o; dir; encode; decode; fsync; generation = gen; wal; wal_ops;
            closed = false }
        in
        if gen > last_gen then cleanup_before t gen;
        ( t,
          {
            source = `Snapshot g;
            generation = t.generation;
            replayed_ops = !replayed;
            torn_tail = torn;
            skipped;
          } )
    | None -> (
        match data with
        | Some db when Array.length db > 0 ->
            let o = create ?pool ~rng ~space ~config ~rebuild_factor ~target_accuracy db in
            let gen = max_gen + 1 in
            save_snapshot_raw ~dir ~encode o gen;
            let t =
              {
                online = o;
                dir;
                encode;
                decode;
                fsync;
                generation = gen;
                wal = Wal.create ~fsync ~path:(Layout.wal_path ~dir gen) ();
                wal_ops = 0;
                closed = false;
              }
            in
            cleanup_before t gen;
            let source = if skipped = [] then `Fresh else `Rebuilt in
            ( t,
              { source; generation = gen; replayed_ops = 0; torn_tail = false; skipped } )
        | _ ->
            if skipped = [] then
              invalid_arg
                (Printf.sprintf
                   "Online.Durable.open_or_create: %s holds no snapshot and no ~data was given"
                   dir)
            else
              corrupt "no loadable snapshot in %s: %s" dir
                (String.concat "; "
                   (List.map (fun (g, m) -> Printf.sprintf "gen %d: %s" g m) skipped)))

  (* ------------------------------------------- hooks for dbh.replica *)

  (* The replica library lives outside this one and needs three pieces
     of the durable machinery the public API deliberately hides: load a
     snapshot file into an online index, apply one WAL record, and turn
     a caught-up follower into a leader by fencing a fresh generation. *)

  let online_of_snapshot ?pool ~space ?(config = Builder.default_config)
      ?(rebuild_factor = 2.0) ~target_accuracy ~decode ~path () =
    let _version, payload = read_expect_any ~path in
    online_of_payload ?pool ~space ~config ~rebuild_factor ~target_accuracy ~decode payload

  let apply_record ~decode o payload = apply_op ~decode o payload

  let attach ?(fsync = true) ~encode ~decode ~dir ~generation o =
    if generation < 1 then invalid_arg "Online.Durable.attach: generation must be >= 1";
    Layout.ensure_dir dir;
    (* Fencing: writing snapshot [generation] plus a fresh WAL makes
       every older generation's log superseded history — a recovery (or
       another follower) now loads this state and ignores records the
       old leader might still try to append behind our back. *)
    save_snapshot_raw ~dir ~encode o generation;
    let t =
      {
        online = o;
        dir;
        encode;
        decode;
        fsync;
        generation;
        wal = Wal.create ~fsync ~path:(Layout.wal_path ~dir generation) ();
        wal_ops = 0;
        closed = false;
      }
    in
    cleanup_before t generation;
    t
end
