module Rng = Dbh_util.Rng
module Vec = Dbh_util.Vec

type 'a result = {
  nn : (int * float) option;
  stats : Index.stats;
  truncated : bool;
}

type 'a t = {
  rng : Rng.t;
  space : 'a Dbh_space.Space.t;
  pool : Dbh_util.Pool.t option;  (* used by every (re)build and batched query *)
  config : Builder.config;
  rebuild_factor : float;
  target_accuracy : float;
  (* Stable registry: external handles never change. *)
  registry : 'a Vec.t;
  dead : (int, unit) Hashtbl.t;
  (* Current generation. *)
  mutable index : 'a Hierarchical.t;
  mutable external_of_internal : int Vec.t;  (* internal id -> handle *)
  mutable internal_of_external : (int, int) Hashtbl.t;
  mutable built_size : int;
  mutable rebuild_count : int;
}

let size t = Vec.length t.registry - Hashtbl.length t.dead
let rebuilds t = t.rebuild_count
let space t = t.space
let index t = t.index

let get t handle =
  if handle < 0 || handle >= Vec.length t.registry || Hashtbl.mem t.dead handle then
    invalid_arg "Online.get: dead or unknown handle";
  Vec.get t.registry handle

let alive_handles t =
  let out = ref [] in
  for h = Vec.length t.registry - 1 downto 0 do
    if not (Hashtbl.mem t.dead h) then out := h :: !out
  done;
  !out

(* Run the full offline pipeline on a snapshot of alive handles. *)
let build_generation ?pool ~rng ~space ~config ~target_accuracy registry handles =
  if Array.length handles = 0 then invalid_arg "Online: cannot build an empty database";
  let db = Array.map (Vec.get registry) handles in
  let prepared = Builder.prepare ?pool ~rng ~space ~config db in
  let index = Builder.hierarchical ?pool ~rng ~prepared ~db ~target_accuracy ~config () in
  let external_of_internal = Vec.create () in
  let internal_of_external = Hashtbl.create (Array.length handles) in
  Array.iteri
    (fun internal handle ->
      ignore (Vec.push external_of_internal handle);
      Hashtbl.replace internal_of_external handle internal)
    handles;
  (index, external_of_internal, internal_of_external)

let rebuild t =
  let handles = Array.of_list (alive_handles t) in
  let index, external_of_internal, internal_of_external =
    build_generation ?pool:t.pool ~rng:t.rng ~space:t.space ~config:t.config
      ~target_accuracy:t.target_accuracy t.registry handles
  in
  t.index <- index;
  t.external_of_internal <- external_of_internal;
  t.internal_of_external <- internal_of_external;
  t.built_size <- Array.length handles

let create ?pool ~rng ~space ?(config = Builder.default_config) ?(rebuild_factor = 2.0)
    ~target_accuracy db =
  if Array.length db = 0 then invalid_arg "Online.create: empty database";
  if rebuild_factor <= 1.0 then invalid_arg "Online.create: rebuild_factor must exceed 1";
  let registry = Vec.of_array db in
  let handles = Array.init (Array.length db) Fun.id in
  let index, external_of_internal, internal_of_external =
    build_generation ?pool ~rng ~space ~config ~target_accuracy registry handles
  in
  {
    rng;
    space;
    pool;
    config;
    rebuild_factor;
    target_accuracy;
    registry;
    dead = Hashtbl.create 16;
    index;
    external_of_internal;
    internal_of_external;
    built_size = Array.length db;
    rebuild_count = 0;
  }

let rebuild_now t =
  rebuild t;
  t.rebuild_count <- t.rebuild_count + 1

let maybe_rebuild t =
  let alive = size t in
  let hi = t.rebuild_factor *. float_of_int t.built_size in
  let lo = float_of_int t.built_size /. t.rebuild_factor in
  if float_of_int alive >= hi || float_of_int alive <= lo then begin
    rebuild t;
    t.rebuild_count <- t.rebuild_count + 1
  end

let insert t obj =
  let handle = Vec.push t.registry obj in
  let internal = Hierarchical.insert t.index obj in
  ignore (Vec.push t.external_of_internal handle);
  Hashtbl.replace t.internal_of_external handle internal;
  maybe_rebuild t;
  handle

let delete t handle =
  if handle < 0 || handle >= Vec.length t.registry then
    invalid_arg "Online.delete: unknown handle";
  if not (Hashtbl.mem t.dead handle) then begin
    Hashtbl.replace t.dead handle ();
    (match Hashtbl.find_opt t.internal_of_external handle with
    | Some internal -> Hierarchical.delete t.index internal
    | None -> ());
    maybe_rebuild t
  end

let query ?budget t q =
  let r = Hierarchical.query ?budget t.index q in
  let nn =
    Option.map
      (fun (internal, d) -> (Vec.get t.external_of_internal internal, d))
      r.Index.nn
  in
  { nn; stats = r.Index.stats; truncated = r.Index.truncated }

let query_batch ?pool ?budget t qs =
  let pool = match pool with Some _ -> pool | None -> t.pool in
  (* Handle translation reads generation state that only updates mutate,
     so a pure query batch is safe to fan out. *)
  let results = Hierarchical.query_batch ?pool ?budget t.index qs in
  Array.map
    (fun (r : 'a Index.result) ->
      let nn =
        Option.map
          (fun (internal, d) -> (Vec.get t.external_of_internal internal, d))
          r.Index.nn
      in
      { nn; stats = r.Index.stats; truncated = r.Index.truncated })
    results
