(** Structural health checks for built indexes.

    DBH's performance model assumes balanced binary functions and
    reasonably spread buckets; this module measures what an index
    actually looks like so deployments can notice degenerate hash
    families (e.g. a distance measure that collapses to few values)
    before queries get slow. *)

type table_stats = {
  tables : int;  (** l *)
  bits_per_key : int;  (** k *)
  indexed_objects : int;  (** alive objects in the store *)
  non_empty_buckets : int;
  largest_bucket : int;
  mean_bucket : float;  (** mean occupancy of non-empty buckets *)
  largest_bucket_fraction : float;
      (** largest bucket / objects — near 1.0 means hashing collapsed *)
  delta_entries : int;
      (** entries inserted since the last freeze/compaction, still in
          the tables' mutable deltas *)
  directory_fill : float;
      (** non-empty buckets / (l · 2^k) — how much of the key space the
          directories actually use *)
  approx_table_bytes : int;
      (** rough resident bytes of the CSR tables (excludes objects,
          family, pivots) *)
}

val index_stats : 'a Index.t -> table_stats
val pp_table_stats : Format.formatter -> table_stats -> unit

type table_profile = {
  table : int;  (** table (row) number, [0 .. l-1] *)
  directory_keys : int;  (** keys holding a bucket in this table *)
  key_density : float;  (** directory keys / 2^k *)
  empty_bucket_rate : float;
      (** fraction of this table's buckets with no alive entry — what a
          probe can hit and find nothing; high rates are the sparsity
          regime where multi-probe pays *)
  mean_alive_bucket : float;  (** mean alive entries per bucket *)
}

val table_profiles : 'a Index.t -> table_profile array
(** One profile per table, in table order — the per-table breakdown
    behind {!table_stats} (which aggregates across tables and counts
    dead entries). *)

val pp_table_profile : Format.formatter -> table_profile -> unit

val bucket_histogram : 'a Index.t -> (int * int) array
(** Sorted [(bucket_size, bucket_count)] pairs aggregated across every
    table (dead entries included, like {!table_stats}). *)

val hierarchical_stats : 'a Hierarchical.t -> (Hierarchical.level_info * table_stats) array
(** Per-level structural stats of a cascade. *)

val family_balance_profile :
  rng:Dbh_util.Rng.t ->
  ?num_fns:int ->
  'a Hash_family.t ->
  'a array ->
  float * float * float
(** [(mean, min, max)] balance (fraction hashed to the zero bit) of
    [num_fns] (default 200) random binary functions over the given
    sample — should straddle 0.5 (Eq. 6). *)

val healthy : ?max_bucket_fraction:float -> table_stats -> bool
(** Quick verdict: some bucket spread exists and no bucket holds more
    than [max_bucket_fraction] (default 0.5) of the objects. *)

type online_stats = {
  live : int;  (** alive objects *)
  tombstones : int;  (** deleted handles awaiting compaction/rebuild *)
  delta_size : int;  (** table entries awaiting compaction *)
}
(** Live-vs-tombstone occupancy of an {!Online} index — the compaction
    pressure an operator watches. *)

val online_stats : 'a Online.t -> online_stats
val pp_online_stats : Format.formatter -> online_stats -> unit
