module Rng = Dbh_util.Rng
module Bitvec = Dbh_util.Bitvec
module Space = Dbh_space.Space

type t = {
  db_size : int;
  c_nn : float array;  (* per sample query: collision rate with its true NN *)
  nn_dist : float array;
  c_db : float array array;  (* per sample query: rates against the db sample; nan = self *)
  scale : float;  (* db_size / db_sample, for Eq. 12 *)
  pivot_usage : float array;  (* per pivot: fraction of family functions using it *)
}

let brute_force_nn space db qi =
  let best = ref (-1) and best_d = ref infinity in
  Array.iteri
    (fun j x ->
      if j <> qi then begin
        let d = space.Space.distance db.(qi) x in
        if d < !best_d then begin
          best_d := d;
          best := j
        end
      end)
    db;
  (!best, !best_d)

let pivot_usage_of_family family =
  let m = Hash_family.num_pivots family in
  let counts = Array.make m 0 in
  let nf = Hash_family.size family in
  for i = 0 to nf - 1 do
    let f = Hash_family.fn family i in
    counts.(f.Hash_family.p1) <- counts.(f.Hash_family.p1) + 1;
    counts.(f.Hash_family.p2) <- counts.(f.Hash_family.p2) + 1
  done;
  Array.map (fun c -> float_of_int c /. float_of_int nf) counts

let build ?pool ~rng ~family ~db ~query_indices ?(num_fns = 250) ?(db_sample = 500)
    ?ground_truth () =
  let n = Array.length db in
  if n < 2 then invalid_arg "Analysis.build: database too small";
  if Array.length query_indices = 0 then invalid_arg "Analysis.build: no sample queries";
  let space = Hash_family.space family in
  let fn_indices = Hash_family.sample_fn_indices ~rng family num_fns in
  let sig_of = Hash_family.signature family ~fn_indices in
  (* All rng draws happen above/below on the submitting domain; the
     fanned-out work (brute-force NN scans, signatures, agreement rows)
     is pure per index, so the fitted model is bit-identical to the
     sequential build for the same seed. *)
  let map_array ?cost f arr =
    match pool with
    | None -> Array.map f arr
    | Some pool -> Dbh_util.Pool.parallel_map_array ?cost pool f arr
  in
  (* Chunking weight for a fan-out over db ids: each task's distance work
     (a brute-force scan or a signature) scales with the length of its
     own object when the space declares per-item costs. *)
  let id_cost ids =
    if Space.has_item_cost space then
      Some (fun i -> Space.item_cost space db.(ids.(i)))
    else None
  in
  (* Ground truth nearest neighbors of the sample queries — the dominant
     O(|queries| · |db|) distance cost when not supplied. *)
  let nn =
    match ground_truth with
    | Some gt ->
        if Array.length gt <> Array.length query_indices then
          invalid_arg "Analysis.build: ground_truth length mismatch";
        gt
    | None ->
        map_array ?cost:(id_cost query_indices)
          (fun qi -> brute_force_nn space db qi)
          query_indices
  in
  (* Database sample for the Eq. 12 lookup-cost sum. *)
  let sample_ids = Rng.sample_indices rng (min db_sample n) n in
  let sample_sigs = map_array ?cost:(id_cost sample_ids) (fun j -> sig_of db.(j)) sample_ids in
  (* Signatures are needed for every sample query and for every true NN,
     and one object can play several of those roles at once (the NN of
     many queries, or a query that is also some other query's NN).
     Compute each signature exactly once, over the deduplicated id list:
     this avoids repeating the pivot-distance work, and it keeps every
     distance pair on a single task so fault-injected spaces see a
     schedule-independent call sequence under a pool. *)
  let sig_ids =
    let seen = Hashtbl.create (2 * Array.length query_indices) in
    let order = ref [] in
    let add id =
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        order := id :: !order
      end
    in
    Array.iter add query_indices;
    Array.iter (fun (j, _) -> add j) nn;
    Array.of_list (List.rev !order)
  in
  let sigs = map_array ?cost:(id_cost sig_ids) (fun id -> sig_of db.(id)) sig_ids in
  let sig_tbl = Hashtbl.create (Array.length sig_ids) in
  Array.iteri (fun i id -> Hashtbl.replace sig_tbl id sigs.(i)) sig_ids;
  let sig_cached id = Hashtbl.find sig_tbl id in
  let c_nn = Array.make (Array.length query_indices) 0. in
  let nn_dist = Array.make (Array.length query_indices) 0. in
  let c_db = Array.make (Array.length query_indices) [||] in
  (* Pure bit-vector agreements from here on: no distance calls. *)
  let fit_query i =
    let qi = query_indices.(i) in
    let q_sig = sig_cached qi in
    let nn_j, nn_d = nn.(i) in
    c_nn.(i) <- Bitvec.agreement q_sig (sig_cached nn_j);
    nn_dist.(i) <- nn_d;
    c_db.(i) <-
      Array.mapi
        (fun s j -> if j = qi then nan else Bitvec.agreement q_sig sample_sigs.(s))
        sample_ids
  in
  (match pool with
  | None ->
      for i = 0 to Array.length query_indices - 1 do
        fit_query i
      done
  | Some pool -> Dbh_util.Pool.parallel_for pool (Array.length query_indices) fit_query);
  {
    db_size = n;
    c_nn;
    nn_dist;
    c_db;
    scale = float_of_int n /. float_of_int (Array.length sample_ids);
    pivot_usage = pivot_usage_of_family family;
  }

let num_queries t = Array.length t.c_nn
let db_size t = t.db_size
let nn_distance t i = t.nn_dist.(i)
let nn_collision t i = t.c_nn.(i)

(* The per-rate cascade map: plain Eq. 10, or its multi-probe extension
   when the knobs are on.  Dispatching keeps the default path running
   the exact historical float expressions — bit-identical estimates. *)
let rate_kl ~k ~l ~probes ~radius c =
  if probes > 1 && radius > 0 then Collision.c_kl_probed c ~k ~l ~probes ~radius
  else Collision.c_kl c ~k ~l

let accuracy_of_query ?(probes = 1) ?(radius = 0) t i ~k ~l =
  rate_kl ~k ~l ~probes ~radius t.c_nn.(i)

let accuracy ?(probes = 1) ?(radius = 0) t ~k ~l =
  let acc =
    Array.fold_left (fun acc c -> acc +. rate_kl ~k ~l ~probes ~radius c) 0. t.c_nn
  in
  acc /. float_of_int (num_queries t)

let lookup_cost_of_query ?(probes = 1) ?(radius = 0) t i ~k ~l =
  let acc =
    Array.fold_left
      (fun acc c -> if Float.is_nan c then acc else acc +. rate_kl ~k ~l ~probes ~radius c)
      0. t.c_db.(i)
  in
  t.scale *. acc

let lookup_cost ?(probes = 1) ?(radius = 0) t ~k ~l =
  let acc = ref 0. in
  for i = 0 to num_queries t - 1 do
    acc := !acc +. lookup_cost_of_query ~probes ~radius t i ~k ~l
  done;
  !acc /. float_of_int (num_queries t)

let hash_cost t ~k ~l =
  (* Expected distinct pivots among k·l functions drawn with replacement:
     sum over pivots of 1 - (1 - usage)^(k·l).  Multi-probe leaves this
     unchanged: extra probes reuse the pivot distances the base key
     already paid for (margins come from the same cache). *)
  let draws = float_of_int k *. float_of_int l in
  Array.fold_left (fun acc u -> acc +. (1. -. ((1. -. u) ** draws))) 0. t.pivot_usage

let total_cost ?(probes = 1) ?(radius = 0) t ~k ~l =
  lookup_cost ~probes ~radius t ~k ~l +. hash_cost t ~k ~l

let restrict t positions =
  if Array.length positions = 0 then invalid_arg "Analysis.restrict: empty subset";
  Array.iter
    (fun p ->
      if p < 0 || p >= num_queries t then invalid_arg "Analysis.restrict: position out of range")
    positions;
  {
    t with
    c_nn = Array.map (fun p -> t.c_nn.(p)) positions;
    nn_dist = Array.map (fun p -> t.nn_dist.(p)) positions;
    c_db = Array.map (fun p -> t.c_db.(p)) positions;
  }

let queries_by_nn_distance t =
  let order = Array.init (num_queries t) (fun i -> i) in
  Array.sort (fun a b -> compare t.nn_dist.(a) t.nn_dist.(b)) order;
  order
