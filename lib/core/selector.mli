(** How a hash family chooses its pivot pairs and threshold intervals.

    The paper's construction (Sec. V-B) is data-{e oblivious}: pivot
    pairs are drawn uniformly from X_small and the interval [t1,t2]
    uniformly from V(X1,X2) (Eq. 6).  Density-Sensitive Hashing
    (arXiv:1205.2930) and Neighbor-Sensitive Hashing (arXiv:1703.07867)
    show that spending the same construction sample on {e choosing}
    functions — instead of drawing them blindly — buys more selective
    families at identical query-time cost, because every selector still
    emits plain thresholded line projections that the collision model,
    optimal-(k,l) search, multi-probe margins and persistence treat
    identically.

    A selector only influences {!Hash_family.make}; it is recorded in
    the family (and its envelope) as a {!tag} for diagnostics. *)

type threshold_strategy =
  | Random_interval
      (** draw [t1,t2] uniformly from (a discretization of) V(X1,X2) —
          the paper's formulation (Eq. 6) and the default *)
  | Median_split
      (** always use the one-sided interval [(−∞, median)] — the simplest
          member of V(X1,X2); deterministic given the sample, less
          diverse *)

type t = private
  | Uniform of threshold_strategy
      (** the paper's data-oblivious construction: random pivot pairs,
          thresholds per [threshold_strategy].  Bit-identical to the
          pre-selector builds for the same seed. *)
  | Density of { grid : int }
      (** density-sensitive: for each candidate pair, place the interval
          boundary where the sample-projection density is lowest (over a
          [grid]-point discretization of V(X1,X2)), and keep the pairs
          whose boundaries fall in the sparsest regions.  Deterministic
          given the construction sample. *)
  | Neighbor of { neighbors : int; grid : int }
      (** neighbor-sensitive (NSH-style): prefer pairs/intervals that
          maximize bit disagreement among each sample point's [neighbors]
          nearest neighbors, so close points become distinguishable in
          Hamming space.  Nearest neighbors are approximated with the
          free pivot-embedding lower bound — no extra distance
          computations.  Deterministic given the construction sample. *)

val uniform : ?threshold_strategy:threshold_strategy -> unit -> t
val density_sensitive : ?grid:int -> unit -> t
(** [grid] (default 16): how many candidate intervals of V(X1,X2) are
    scored per pair.  Raises [Invalid_argument] when [grid < 2]. *)

val neighbor_sensitive : ?neighbors:int -> ?grid:int -> unit -> t
(** [neighbors] (default 8): the k of the per-sample-point kNN sets.
    Raises [Invalid_argument] on non-positive [neighbors] or
    [grid < 2]. *)

val default : t
(** [uniform ()] — the paper's construction. *)

(** {1 Tags}

    Stable one-word names used by the family envelope, the CLI
    ([--selector]) and bench/stats output. *)

val tag : t -> string
(** ["uniform"], ["median"], ["density"] or ["nsh"].  Parameters
    ([grid], [neighbors]) are build-time knobs and are not part of the
    tag. *)

val of_tag : string -> t option
(** Inverse of {!tag}, with default parameters. *)

val known_tags : string list

val pp : Format.formatter -> t -> unit
