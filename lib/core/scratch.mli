(** Reusable per-query workspace: seen mask + candidate buffer + pivot
    scratch.

    A query marks every candidate it dedupes into the scratch; [reset]
    clears only the marked bytes (O(candidates), not O(store)), so one
    scratch amortises the hot path's allocations to zero across queries.
    Thread one through [Query_opts.make ~scratch] — entry points without
    one allocate a private scratch per query, which is correct but costs
    the old per-query allocations.

    A scratch is single-domain state: share it across {e sequential}
    queries only.  Batch entry points reuse the caller's scratch when
    running sequentially and ignore it under a pool (each domain
    allocates its own). *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty scratch; [capacity] pre-sizes the seen mask. *)

val ensure : t -> int -> unit
(** Grow the seen mask to cover ids [0, n).  Called at query start, when
    the scratch is clean; marks never survive growth. *)

val capacity : t -> int

val mark : t -> int -> bool
(** [mark t id] is [true] the first time [id] is marked since the last
    {!reset} (and records it), [false] on every repeat — the query-side
    dedup test-and-set.  [id] must be below {!capacity}. *)

val mem : t -> int -> bool
(** Has [id] been marked since the last reset?  (No marking.) *)

val count : t -> int
(** Ids marked since the last reset. *)

val get : t -> int -> int
(** [get t i]: the [i]-th marked id, in discovery order, [i < count t].
    Valid until the next {!reset}. *)

val to_list : t -> int list
(** The marked ids in discovery order (allocates; diagnostics/tests). *)

val reset : t -> unit
(** Unmark everything, O(count).  Queries reset on exit — including
    exceptional exit — so the scratch is always clean between queries. *)

val pivot_dists : t -> int -> float array
(** A reusable row of at least [m] floats for the pivot-distance cache.
    Contents are unspecified — the cache constructor re-initialises it.
    The row is owned by the scratch: at most one live cache per scratch. *)

val bit_row : t -> int -> Bytes.t
(** A reusable row of at least [m] bytes for per-query hash bits.
    Contents are unspecified — the caller overwrites before reading. *)

val margin_row : t -> int -> float array
(** A reusable row of at least [m] floats for per-bit flip margins
    (multi-probe path).  Contents are unspecified — the caller
    overwrites before reading. *)

val probe_seq : t -> Probe_seq.t
(** The scratch's reusable multi-probe workspace (penalty-sorted bits +
    probe heap) — like the other rows, single-domain and reused across
    sequential queries. *)
