module Rng = Dbh_util.Rng
module Stats = Dbh_util.Stats
module Bitvec = Dbh_util.Bitvec
module Space = Dbh_space.Space

type binary_fn = {
  p1 : int;
  p2 : int;
  d12 : float;
  t1 : float;
  t2 : float;
  spread : float;
}

type 'a t = {
  space : 'a Space.t;
  pivots : 'a array;
  fns : binary_fn array;
}

let space t = t.space
let size t = Array.length t.fns
let num_pivots t = Array.length t.pivots
let pivots t = t.pivots
let fn t i = t.fns.(i)

(* Threshold interval drawn from (a discretized) V(X1,X2), Eq. 6: a random
   interval capturing half the sample mass.  u ~ U[0, 1/2] and
   [t1,t2] = [q(u), q(u+1/2)] ranges over all such intervals; edges that
   fall at the extreme order statistics are widened to ±infinity so that
   out-of-sample queries beyond the sample range are still classified with
   the nearby half. *)
type threshold_strategy = Random_interval | Median_split

let draw_interval rng sorted_projections =
  let n = Array.length sorted_projections in
  let u = Rng.float rng 0.5 in
  let edge_lo = 1. /. float_of_int (2 * n) in
  let edge_hi = 1. -. edge_lo in
  let t1 = if u <= edge_lo then neg_infinity else Stats.quantiles_of_sorted sorted_projections u in
  let hi = u +. 0.5 in
  let t2 = if hi >= edge_hi then infinity else Stats.quantiles_of_sorted sorted_projections hi in
  (t1, t2)

let all_pairs m =
  let pairs = Array.make (m * (m - 1) / 2) (0, 0) in
  let idx = ref 0 in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      pairs.(!idx) <- (i, j);
      incr idx
    done
  done;
  pairs

let sample_pairs rng m count =
  (* Distinct unordered pairs by rejection; count is assumed << C(m,2)/2
     or we fall back to enumerating. *)
  let total = m * (m - 1) / 2 in
  if count >= total then all_pairs m
  else begin
    let seen = Hashtbl.create (2 * count) in
    let pairs = Array.make count (0, 0) in
    let filled = ref 0 in
    while !filled < count do
      let i = Rng.int rng m in
      let j = Rng.int rng m in
      if i <> j then begin
        let p = (min i j, max i j) in
        if not (Hashtbl.mem seen p) then begin
          Hashtbl.add seen p ();
          pairs.(!filled) <- p;
          incr filled
        end
      end
    done;
    pairs
  end

let make ?pool ~rng ~space ?(num_pivots = 100) ?(threshold_sample = 500) ?max_functions
    ?(threshold_strategy = Random_interval) data =
  if Array.length data < 2 then invalid_arg "Hash_family.make: need at least 2 objects";
  if num_pivots < 2 then invalid_arg "Hash_family.make: need at least 2 pivots";
  let pivots = Rng.subsample rng num_pivots data in
  let m = Array.length pivots in
  let sample = Rng.subsample rng threshold_sample data in
  let s = Array.length sample in
  (* Pivot-sample distance matrix, shared across all pairs.  Rows are
     independent, so a pool computes them in parallel; values (and the
     NaN/negative validation) are identical either way. *)
  let dist_sp = Array.make_matrix m s 0. in
  let fill_row p =
    for i = 0 to s - 1 do
      let d = space.Space.distance sample.(i) pivots.(p) in
      (* Fail fast on broken distance functions: downstream quantiles and
         projections silently corrupt on NaN or negative values. *)
      if Float.is_nan d || d < 0. then
        invalid_arg "Hash_family.make: distance function returned NaN or a negative value";
      dist_sp.(p).(i) <- d
    done
  in
  (match pool with
  | None ->
      for p = 0 to m - 1 do
        fill_row p
      done
  | Some pool -> Dbh_util.Pool.parallel_for pool m fill_row);
  let pairs =
    match max_functions with
    | None -> all_pairs m
    | Some count ->
        if count < 1 then invalid_arg "Hash_family.make: max_functions must be positive";
        sample_pairs rng m count
  in
  (* Threshold drawing consumes [rng] and therefore stays sequential, in
     pair order, for every pool size: the family is bit-identical to the
     sequential build. *)
  let finish (i, j) d12 sorted =
    let t1, t2 =
      match threshold_strategy with
      | Random_interval -> draw_interval rng sorted
      | Median_split -> (neg_infinity, Stats.quantiles_of_sorted sorted 0.5)
    in
    let iqr =
      Stats.quantiles_of_sorted sorted 0.75 -. Stats.quantiles_of_sorted sorted 0.25
    in
    let spread = if iqr > 0. then iqr else 1. in
    { p1 = i; p2 = j; d12; t1; t2; spread }
  in
  let fns =
    match pool with
    | None ->
        (* Streaming path: one scratch projection buffer, thresholds drawn
           as each pair is processed. *)
        let projections = Array.make s 0. in
        Array.to_list pairs
        |> List.filter_map (fun (i, j) ->
               let d12 = space.Space.distance pivots.(i) pivots.(j) in
               if not (d12 > 0.) then None
               else begin
                 for k = 0 to s - 1 do
                   projections.(k) <-
                     Projection.project_with ~d1:dist_sp.(i).(k) ~d2:dist_sp.(j).(k) ~d12
                 done;
                 let sorted = Array.copy projections in
                 Array.sort compare sorted;
                 Some (finish (i, j) d12 sorted)
               end)
        |> Array.of_list
    | Some pool ->
        (* Two-phase: the pure, expensive part (pivot-pair distance,
           projections, sort) fans out across the pool; the rng-dependent
           thresholds are then drawn sequentially in pair order. *)
        let pre =
          Dbh_util.Pool.parallel_map_array pool
            (fun (i, j) ->
              let d12 = space.Space.distance pivots.(i) pivots.(j) in
              if not (d12 > 0.) then None
              else begin
                let sorted =
                  Array.init s (fun k ->
                      Projection.project_with ~d1:dist_sp.(i).(k) ~d2:dist_sp.(j).(k) ~d12)
                in
                Array.sort compare sorted;
                Some (d12, sorted)
              end)
            pairs
        in
        let out = ref [] in
        Array.iteri
          (fun idx pair ->
            match pre.(idx) with
            | None -> ()
            | Some (d12, sorted) -> out := finish pair d12 sorted :: !out)
          pairs;
        Array.of_list (List.rev !out)
  in
  if Array.length fns = 0 then
    invalid_arg "Hash_family.make: all pivot pairs are at distance 0";
  { space; pivots; fns }

type 'a cache = {
  obj : 'a;
  dists : float array;  (* nan = not yet computed *)
  mutable misses : int;
  mutable hits : int;
  budget : Budget.t option;  (* charged before each uncached distance *)
  trace : Dbh_obs.Trace.t option;
}

let cache ?budget ?trace t obj =
  { obj; dists = Array.make (num_pivots t) nan; misses = 0; hits = 0; budget; trace }

let cache_budgeted t ~budget obj = cache ~budget t obj

(* Like [cache], but over a caller-owned workspace row (e.g. a query
   scratch) so repeated queries allocate no distance array.  The row may
   be longer than the pivot count; it is re-initialised here, so a dirty
   row from a previous query is fine. *)
let cache_in ?budget ?trace t ~dists obj =
  if Array.length dists < num_pivots t then
    invalid_arg "Hash_family.cache_in: workspace shorter than pivot count";
  Array.fill dists 0 (Array.length dists) nan;
  { obj; dists; misses = 0; hits = 0; budget; trace }

let cache_with_distances t obj dists =
  if Array.length dists <> num_pivots t then
    invalid_arg "Hash_family.cache_with_distances: wrong number of distances";
  (* The row is only read (no nan entries), so sharing it is safe. *)
  { obj; dists; misses = 0; hits = 0; budget = None; trace = None }

let pivot_table ?pool t objs =
  let row obj = Array.map (fun p -> t.space.Space.distance obj p) t.pivots in
  match pool with
  | None -> Array.map row objs
  | Some pool -> Dbh_util.Pool.parallel_map_array pool row objs

let cache_cost c = c.misses
let cache_hits c = c.hits

let pivot_distance t c i =
  let d = c.dists.(i) in
  if Float.is_nan d then begin
    (match c.budget with Some b -> Budget.charge b | None -> ());
    let d = t.space.Space.distance c.obj t.pivots.(i) in
    c.dists.(i) <- d;
    c.misses <- c.misses + 1;
    (match c.trace with
    | Some tr -> Dbh_obs.Trace.record tr (Dbh_obs.Trace.Pivot_miss { pivot = i })
    | None -> ());
    d
  end
  else begin
    c.hits <- c.hits + 1;
    (match c.trace with
    | Some tr -> Dbh_obs.Trace.record tr (Dbh_obs.Trace.Pivot_hit { pivot = i })
    | None -> ());
    d
  end

let project t c i =
  let f = t.fns.(i) in
  let d1 = pivot_distance t c f.p1 in
  let d2 = pivot_distance t c f.p2 in
  Projection.project_with ~d1 ~d2 ~d12:f.d12

let eval t c i =
  let f = t.fns.(i) in
  let v = project t c i in
  v >= f.t1 && v <= f.t2

let margin t c i =
  let f = t.fns.(i) in
  let v = project t c i in
  let to_t1 = if f.t1 = neg_infinity then infinity else Float.abs (v -. f.t1) in
  let to_t2 = if f.t2 = infinity then infinity else Float.abs (v -. f.t2) in
  Float.min to_t1 to_t2 /. f.spread

let eval_direct t obj i =
  let f = t.fns.(i) in
  let d1 = t.space.Space.distance obj t.pivots.(f.p1) in
  let d2 = t.space.Space.distance obj t.pivots.(f.p2) in
  let v = Projection.project_with ~d1 ~d2 ~d12:f.d12 in
  v >= f.t1 && v <= f.t2

let sample_fn_indices ~rng t n =
  if n < 0 then invalid_arg "Hash_family.sample_fn_indices: negative count";
  Array.init n (fun _ -> Rng.int rng (size t))

let signature t ~fn_indices obj =
  let c = cache t obj in
  let bits = Bitvec.create (Array.length fn_indices) in
  Array.iteri (fun pos i -> if eval t c i then Bitvec.set bits pos true) fn_indices;
  bits

let balance t i sample =
  if Array.length sample = 0 then invalid_arg "Hash_family.balance: empty sample";
  let zeros = ref 0 in
  Array.iter (fun x -> if not (eval_direct t x i) then incr zeros) sample;
  float_of_int !zeros /. float_of_int (Array.length sample)

(* ----------------------------------------------------------- persistence *)

module Binio = Dbh_util.Binio

let format_tag = "DBH-family-v1"

let write ~encode buf t =
  Binio.write_string buf format_tag;
  Binio.write_int buf (Array.length t.pivots);
  Array.iter (fun p -> Binio.write_string buf (encode p)) t.pivots;
  Binio.write_int buf (Array.length t.fns);
  Array.iter
    (fun f ->
      Binio.write_int buf f.p1;
      Binio.write_int buf f.p2;
      Binio.write_float buf f.d12;
      Binio.write_float buf f.t1;
      Binio.write_float buf f.t2;
      Binio.write_float buf f.spread)
    t.fns

let read ~decode ~space r =
  let tag = Binio.read_string r in
  if tag <> format_tag then
    raise (Binio.Corrupt (Printf.sprintf "expected %s, found %S" format_tag tag));
  let num_pivots = Binio.read_int r in
  if num_pivots < 0 || num_pivots > Binio.remaining r then
    raise (Binio.Corrupt "implausible pivot count");
  let pivots =
    Array.init num_pivots (fun _ -> Binio.guard_decode decode (Binio.read_string r))
  in
  let num_fns = Binio.read_int r in
  if num_fns < 0 || num_fns > Binio.remaining r then
    raise (Binio.Corrupt "implausible function count");
  let fns =
    Array.init num_fns (fun _ ->
        let p1 = Binio.read_int r in
        let p2 = Binio.read_int r in
        let d12 = Binio.read_float r in
        let t1 = Binio.read_float r in
        let t2 = Binio.read_float r in
        let spread = Binio.read_float r in
        if p1 < 0 || p1 >= num_pivots || p2 < 0 || p2 >= num_pivots then
          raise (Binio.Corrupt "pivot index out of range");
        { p1; p2; d12; t1; t2; spread })
  in
  { space; pivots; fns }
