module Rng = Dbh_util.Rng
module Stats = Dbh_util.Stats
module Bitvec = Dbh_util.Bitvec
module Space = Dbh_space.Space

(* Estimated cost of the distance call behind pivot pair [pairs.(idx)]:
   sequence metrics cost the product of the endpoint lengths, so chunk
   boundaries in the pair fan-outs balance on that product.  [None]
   (constant-cost space) keeps the historical fixed-length chunks. *)
let pair_cost space pivots pairs =
  if Space.has_item_cost space then
    Some
      (fun idx ->
        let i, j = pairs.(idx) in
        Space.item_cost space pivots.(i) * Space.item_cost space pivots.(j))
  else None

type binary_fn = {
  p1 : int;
  p2 : int;
  d12 : float;
  t1 : float;
  t2 : float;
  spread : float;
}

type 'a t = {
  space : 'a Space.t;
  pivots : 'a array;
  fns : binary_fn array;
  selector : Selector.t;
}

let space t = t.space
let size t = Array.length t.fns
let num_pivots t = Array.length t.pivots
let pivots t = t.pivots
let fn t i = t.fns.(i)
let selector t = t.selector
let selector_tag t = Selector.tag t.selector

(* Threshold interval from (a discretized) V(X1,X2), Eq. 6: an interval
   capturing half the sample mass.  For u in [0, 1/2],
   [t1,t2] = [q(u), q(u+1/2)] ranges over all such intervals; edges that
   fall at the extreme order statistics are widened to ±infinity so that
   out-of-sample queries beyond the sample range are still classified with
   the nearby half. *)
let interval_at sorted_projections u =
  let n = Array.length sorted_projections in
  let edge_lo = 1. /. float_of_int (2 * n) in
  let edge_hi = 1. -. edge_lo in
  let t1 = if u <= edge_lo then neg_infinity else Stats.quantiles_of_sorted sorted_projections u in
  let hi = u +. 0.5 in
  let t2 = if hi >= edge_hi then infinity else Stats.quantiles_of_sorted sorted_projections hi in
  (t1, t2)

let draw_interval rng sorted_projections = interval_at sorted_projections (Rng.float rng 0.5)

let all_pairs m =
  let pairs = Array.make (m * (m - 1) / 2) (0, 0) in
  let idx = ref 0 in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      pairs.(!idx) <- (i, j);
      incr idx
    done
  done;
  pairs

let sample_pairs rng m count =
  (* Distinct unordered pairs by rejection; count is assumed << C(m,2)/2
     or we fall back to enumerating. *)
  let total = m * (m - 1) / 2 in
  if count >= total then all_pairs m
  else begin
    let seen = Hashtbl.create (2 * count) in
    let pairs = Array.make count (0, 0) in
    let filled = ref 0 in
    while !filled < count do
      let i = Rng.int rng m in
      let j = Rng.int rng m in
      if i <> j then begin
        let p = (min i j, max i j) in
        if not (Hashtbl.mem seen p) then begin
          Hashtbl.add seen p ();
          pairs.(!filled) <- p;
          incr filled
        end
      end
    done;
    pairs
  end

let spread_of sorted =
  let iqr =
    Stats.quantiles_of_sorted sorted 0.75 -. Stats.quantiles_of_sorted sorted 0.25
  in
  if iqr > 0. then iqr else 1.

(* ------------------------------------------------- uniform construction *)

(* The paper's data-oblivious path, kept bit-identical to the
   pre-selector builds: pairs are either all of C(m,2) or drawn from
   [rng] by rejection, and thresholds consume [rng] sequentially in pair
   order for every pool size. *)
let build_uniform ?pool ~rng ~space ~pivots ~dist_sp ~s ~max_functions strategy =
  let m = Array.length pivots in
  let pairs =
    match max_functions with
    | None -> all_pairs m
    | Some count ->
        if count < 1 then invalid_arg "Hash_family.make: max_functions must be positive";
        sample_pairs rng m count
  in
  let finish (i, j) d12 sorted =
    let t1, t2 =
      match (strategy : Selector.threshold_strategy) with
      | Random_interval -> draw_interval rng sorted
      | Median_split -> (neg_infinity, Stats.quantiles_of_sorted sorted 0.5)
    in
    { p1 = i; p2 = j; d12; t1; t2; spread = spread_of sorted }
  in
  match pool with
  | None ->
      (* Streaming path: one scratch projection buffer, thresholds drawn
         as each pair is processed. *)
      let projections = Array.make s 0. in
      Array.to_list pairs
      |> List.filter_map (fun (i, j) ->
             let d12 = space.Space.distance pivots.(i) pivots.(j) in
             if not (d12 > 0.) then None
             else begin
               for k = 0 to s - 1 do
                 projections.(k) <-
                   Projection.project_with ~d1:dist_sp.(i).(k) ~d2:dist_sp.(j).(k) ~d12
               done;
               let sorted = Array.copy projections in
               Array.sort compare sorted;
               Some (finish (i, j) d12 sorted)
             end)
      |> Array.of_list
  | Some pool ->
      (* Two-phase: the pure, expensive part (pivot-pair distance,
         projections, sort) fans out across the pool; the rng-dependent
         thresholds are then drawn sequentially in pair order. *)
      let pre =
        Dbh_util.Pool.parallel_map_array ?cost:(pair_cost space pivots pairs) pool
          (fun (i, j) ->
            let d12 = space.Space.distance pivots.(i) pivots.(j) in
            if not (d12 > 0.) then None
            else begin
              let sorted =
                Array.init s (fun k ->
                    Projection.project_with ~d1:dist_sp.(i).(k) ~d2:dist_sp.(j).(k) ~d12)
              in
              Array.sort compare sorted;
              Some (d12, sorted)
            end)
          pairs
      in
      let out = ref [] in
      Array.iteri
        (fun idx pair ->
          match pre.(idx) with
          | None -> ()
          | Some (d12, sorted) -> out := finish pair d12 sorted :: !out)
        pairs;
      Array.of_list (List.rev !out)

(* ------------------------------------------ data-dependent construction *)

(* Candidate interval positions: u = 0 (the one-sided member of V) plus
   grid-1 interior offsets.  Deterministic — data-dependent selectors
   consume no randomness beyond the shared pivot/sample draws, so pooled
   and sequential builds agree trivially. *)
let grid_offsets grid = Array.init grid (fun g -> 0.5 *. float_of_int g /. float_of_int grid)

(* Average spacing of the sorted sample projections around quantile [u] —
   the inverse of a local density estimate.  Window of ±max(1, n/50)
   order statistics smooths duplicate-heavy samples. *)
let local_gap sorted u =
  let n = Array.length sorted in
  let w = max 1 (n / 50) in
  let pos = int_of_float ((u *. float_of_int (n - 1)) +. 0.5) in
  let lo = max 0 (pos - w) in
  let hi = min (n - 1) (pos + w) in
  if hi <= lo then 0. else (sorted.(hi) -. sorted.(lo)) /. float_of_int (hi - lo)

(* Sparsity of the boundary at threshold [t] placed at quantile [u]:
   how much wider the local spacing is than the expected bulk spacing
   (spread covers half the mass, so bulk spacing ~ 2·spread/n).  Under an
   observed distance scale δ (re-tuning), a gap is scored against δ
   directly and saturates at 4δ — beyond "no near pair straddles the
   boundary", sparser buys nothing. *)
let boundary_sparsity ~scale ~spread ~n sorted u t =
  if Float.abs t = infinity then infinity
  else
    let gap = local_gap sorted u in
    match scale with
    | None -> gap *. float_of_int n /. (2. *. spread)
    | Some delta -> Float.min (gap /. delta) 4.

(* Score one candidate interval for the density-sensitive selector: the
   sparsity of its worst finite boundary (both boundaries must be hard to
   straddle).  Intervals with no finite boundary accept everything and
   score lowest. *)
let density_score ~scale ~spread sorted u (t1, t2) =
  let n = Array.length sorted in
  let s1 = boundary_sparsity ~scale ~spread ~n sorted u t1 in
  let s2 = boundary_sparsity ~scale ~spread ~n sorted (u +. 0.5) t2 in
  let s = Float.min s1 s2 in
  if s = infinity then neg_infinity else s

(* Approximate k-nearest-neighbor lists within the construction sample,
   using the pivot-embedding lower bound
   max_p |D(p,x_i) − D(p,x_j)| ≤ D(x_i,x_j) over a pivot prefix — free:
   dist_sp is already paid for.  With an observed distance scale δ the
   neighborhood adapts to live traffic: all sample points within δ
   (clamped to [1, 2k]). *)
let neighbor_lists ?pool ~dist_sp ~m ~s ~scale k =
  let np = min m 12 in
  let k = max 1 (min k (s - 1)) in
  let knn i =
    let cand = Array.make (s - 1) (0., 0) in
    let c = ref 0 in
    for j = 0 to s - 1 do
      if j <> i then begin
        let d = ref 0. in
        for p = 0 to np - 1 do
          let diff = Float.abs (dist_sp.(p).(i) -. dist_sp.(p).(j)) in
          if diff > !d then d := diff
        done;
        cand.(!c) <- (!d, j);
        incr c
      end
    done;
    Array.sort compare cand;
    let k_eff =
      match scale with
      | None -> k
      | Some delta ->
          let within = ref 0 in
          Array.iter (fun (d, _) -> if d <= delta then incr within) cand;
          max 1 (min !within (2 * k))
    in
    Array.init (min k_eff (s - 1)) (fun r -> snd cand.(r))
  in
  let ids = Array.init s (fun i -> i) in
  match pool with
  | None -> Array.map knn ids
  | Some pool -> Dbh_util.Pool.parallel_map_array pool knn ids

(* Score one candidate interval for the neighbor-sensitive selector: the
   fraction of (point, near-neighbor) sample pairs whose bits disagree —
   NSH magnifies distinctions among close points so their Hamming ranks
   track their distance ranks. *)
let disagreement_score ~nbrs proj (t1, t2) =
  let s = Array.length proj in
  let bit x = x >= t1 && x <= t2 in
  let total = ref 0 and disagree = ref 0 in
  for i = 0 to s - 1 do
    let bi = bit proj.(i) in
    Array.iter
      (fun j ->
        incr total;
        if bit proj.(j) <> bi then incr disagree)
      nbrs.(i)
  done;
  if !total = 0 then 0. else float_of_int !disagree /. float_of_int !total

(* Shared data-dependent skeleton: score every C(m,2) pair purely (fans
   out across the pool), then select the top-scoring subset sequentially
   and deterministically — same result at every pool size. *)
let build_selected ?pool ~space ~pivots ~dist_sp ~s ~max_functions ~grid ~score_interval () =
  let m = Array.length pivots in
  (match max_functions with
  | Some count when count < 1 -> invalid_arg "Hash_family.make: max_functions must be positive"
  | _ -> ());
  let offsets = grid_offsets grid in
  let score_pair (i, j) =
    let d12 = space.Space.distance pivots.(i) pivots.(j) in
    if not (d12 > 0.) then None
    else begin
      let proj =
        Array.init s (fun k ->
            Projection.project_with ~d1:dist_sp.(i).(k) ~d2:dist_sp.(j).(k) ~d12)
      in
      let sorted = Array.copy proj in
      Array.sort compare sorted;
      let spread = spread_of sorted in
      let best = ref neg_infinity and best_tie = ref neg_infinity in
      let best_iv = ref (interval_at sorted 0.) in
      Array.iter
        (fun u ->
          let iv = interval_at sorted u in
          let sc = score_interval ~spread ~proj ~sorted u iv in
          (* Secondary preference for central (two-sided) intervals keeps
             ties deterministic and the family diverse. *)
          let tie = -.Float.abs (u -. 0.25) in
          if sc > !best || (sc = !best && tie > !best_tie) then begin
            best := sc;
            best_tie := tie;
            best_iv := iv
          end)
        offsets;
      let t1, t2 = !best_iv in
      (* Bit signature of the winning interval over the shared sample:
         selection uses it to measure how correlated two candidate
         functions actually are (identical bit patterns hash points
         into the same buckets no matter how good each looks alone). *)
      let words = Array.make ((s + 62) / 63) 0 in
      Array.iteri
        (fun k x ->
          if x >= t1 && x <= t2 then
            words.(k / 63) <- words.(k / 63) lor (1 lsl (k mod 63)))
        proj;
      Some (!best, { p1 = i; p2 = j; d12; t1; t2; spread }, words)
    end
  in
  let pairs = all_pairs m in
  let scored =
    match pool with
    | None -> Array.map score_pair pairs
    | Some pool ->
        Dbh_util.Pool.parallel_map_array ?cost:(pair_cost space pivots pairs) pool score_pair
          pairs
  in
  let valid = ref [] in
  Array.iteri (fun idx -> function Some _ -> valid := idx :: !valid | None -> ()) scored;
  let valid = Array.of_list (List.rev !valid) in
  let chosen =
    match max_functions with
    | Some count when count < Array.length valid ->
        (* Queries pay one distance computation per distinct pivot their
           evaluated functions touch, so a family drawn from fewer,
           better pivots hashes strictly cheaper than a uniform draw
           over all m.  Rank pivots by the pair scores they support and
           restrict selection to the smallest strong subset that still
           offers ~1.2x [count] candidate pairs. *)
        let m_eff =
          let rec grow m' =
            if m' >= m || m' * (m' - 1) / 2 >= 6 * count / 5 then m' else grow (m' + 1)
          in
          grow 2
        in
        let allowed =
          if m_eff >= m then Array.make m true
          else begin
            (* A pivot is as strong as the best pairs it appears in:
               sum its top-5 pair scores so one lucky pair does not
               carry a pivot, then keep the strongest subset (growing
               it if filtering leaves fewer than [count] pairs). *)
            let per_pivot = Array.make m [] in
            Array.iter
              (fun idx ->
                let s, f, _ = Option.get scored.(idx) in
                per_pivot.(f.p1) <- s :: per_pivot.(f.p1);
                per_pivot.(f.p2) <- s :: per_pivot.(f.p2))
              valid;
            let strength =
              Array.map
                (fun scores ->
                  let sorted = List.sort (fun a b -> compare b a) scores in
                  let rec take n = function
                    | s :: tl when n > 0 && s > neg_infinity -> s +. take (n - 1) tl
                    | _ -> 0.
                  in
                  take 5 sorted)
                per_pivot
            in
            let order = Array.init m Fun.id in
            Array.sort
              (fun a b ->
                match compare strength.(b) strength.(a) with
                | 0 -> compare a b
                | c -> c)
              order;
            let allowed = Array.make m false in
            let available = ref 0 in
            let next = ref 0 in
            (* Admit pivots strongest-first until enough pairs survive. *)
            while !available < count && !next < m do
              let p = order.(!next) in
              allowed.(p) <- true;
              incr next;
              if !next >= m_eff then begin
                available := 0;
                Array.iter
                  (fun idx ->
                    let _, f, _ = Option.get scored.(idx) in
                    if allowed.(f.p1) && allowed.(f.p2) then incr available)
                  valid
              end
            done;
            allowed
          end
        in
        let valid =
          Array.of_seq
            (Seq.filter
               (fun idx ->
                 let _, f, _ = Option.get scored.(idx) in
                 allowed.(f.p1) && allowed.(f.p2))
               (Array.to_seq valid))
        in
        let by_score = Array.copy valid in
        Array.sort
          (fun a b ->
            let sa, _, _ = Option.get scored.(a) and sb, _, _ = Option.get scored.(b) in
            match compare sb sa with 0 -> compare a b | c -> c)
          by_score;
        (* Greedy selection discounted by measured redundancy: pure
           top-k concentrates on near-copies of the same few intervals
           — the tables stop being independent, buckets get heavy, and
           the (k, l) model overestimates accuracy while candidate
           sets balloon.  Each candidate's effective score is its raw
           score times (1 - rho), where rho is its strongest bit-level
           correlation with any function already kept:
           rho = |s - 2 * hamming(sig_a, sig_b)| / s, i.e. 0 for
           independent balanced bits and 1 for a duplicate (or exact
           complement).  Deterministic: ties break toward the higher
           raw score, then the lower pair index. *)
        let n = Array.length by_score in
        let target = min count n in
        let popcount x =
          let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
          go x 0
        in
        let correlation a b =
          let diff = ref 0 in
          Array.iteri (fun w wa -> diff := !diff + popcount (wa lxor b.(w))) a;
          Float.abs (float_of_int (s - (2 * !diff))) /. float_of_int (max 1 s)
        in
        let rho = Array.make n 0. in
        let picked = Array.make n false in
        let keep = Array.make target (-1) in
        for slot = 0 to target - 1 do
          let best_pos = ref (-1) and best_eff = ref neg_infinity in
          for pos = 0 to n - 1 do
            if not picked.(pos) then begin
              let sc, _, _ = Option.get scored.(by_score.(pos)) in
              (* A fully-correlated candidate is worthless even with a
                 top raw score (and 0 * infinity would poison the
                 comparison with a NaN). *)
              let eff = if rho.(pos) >= 1. then neg_infinity else sc *. (1. -. rho.(pos)) in
              if eff > !best_eff then begin
                best_eff := eff;
                best_pos := pos
              end
            end
          done;
          (* Every remaining candidate can be at -infinity (all exact
             duplicates of kept functions): fall back to the best raw
             score still available so the family reaches [count]. *)
          if !best_pos < 0 then begin
            let pos = ref 0 in
            while picked.(!pos) do incr pos done;
            best_pos := !pos
          end;
          let pos = !best_pos in
          picked.(pos) <- true;
          keep.(slot) <- by_score.(pos);
          let _, _, sig_p = Option.get scored.(by_score.(pos)) in
          for other = 0 to n - 1 do
            if not picked.(other) then begin
              let _, _, sig_o = Option.get scored.(by_score.(other)) in
              let c = correlation sig_p sig_o in
              if c > rho.(other) then rho.(other) <- c
            end
          done
        done;
        (* Emit in pair-enumeration order so function indices stay stable
           regardless of score ties. *)
        Array.sort compare keep;
        keep
    | _ -> valid
  in
  Array.map
    (fun idx ->
      let _, fn, _ = Option.get scored.(idx) in
      fn)
    chosen

(* ------------------------------------------------------------------ make *)

let build ?pool ~rng ~space ~num_pivots ~threshold_sample ~max_functions ~selector ~scale data
    =
  if Array.length data < 2 then invalid_arg "Hash_family.make: need at least 2 objects";
  if num_pivots < 2 then invalid_arg "Hash_family.make: need at least 2 pivots";
  let pivots = Rng.subsample rng num_pivots data in
  let m = Array.length pivots in
  let sample = Rng.subsample rng threshold_sample data in
  let s = Array.length sample in
  (* Pivot-sample distance matrix, shared across all pairs.  Rows are
     independent, so a pool computes them in parallel; values (and the
     NaN/negative validation) are identical either way. *)
  let dist_sp = Array.make_matrix m s 0. in
  let fill_row p =
    for i = 0 to s - 1 do
      let d = space.Space.distance sample.(i) pivots.(p) in
      (* Fail fast on broken distance functions: downstream quantiles and
         projections silently corrupt on NaN or negative values. *)
      if Float.is_nan d || d < 0. then
        invalid_arg "Hash_family.make: distance function returned NaN or a negative value";
      dist_sp.(p).(i) <- d
    done
  in
  (match pool with
  | None ->
      for p = 0 to m - 1 do
        fill_row p
      done
  | Some pool ->
      (* Row [p] computes the same [s] sample distances whatever [p] is,
         so only the pivot's own length differentiates row costs. *)
      Dbh_util.Pool.parallel_for ?cost:(Space.cost_estimator space pivots) pool m fill_row);
  let fns =
    match (selector : Selector.t) with
    | Uniform strategy ->
        build_uniform ?pool ~rng ~space ~pivots ~dist_sp ~s ~max_functions strategy
    | Density { grid } ->
        build_selected ?pool ~space ~pivots ~dist_sp ~s ~max_functions ~grid
          ~score_interval:(fun ~spread ~proj:_ ~sorted u iv ->
            density_score ~scale ~spread sorted u iv)
          ()
    | Neighbor { neighbors; grid } ->
        let nbrs = neighbor_lists ?pool ~dist_sp ~m ~s ~scale neighbors in
        build_selected ?pool ~space ~pivots ~dist_sp ~s ~max_functions ~grid
          ~score_interval:(fun ~spread:_ ~proj ~sorted:_ _u iv ->
            disagreement_score ~nbrs proj iv)
          ()
  in
  if Array.length fns = 0 then
    invalid_arg "Hash_family.make: all pivot pairs are at distance 0";
  { space; pivots; fns; selector }

let make ?pool ~rng ~space ?(num_pivots = 100) ?(threshold_sample = 500) ?max_functions
    ?(selector = Selector.default) data =
  build ?pool ~rng ~space ~num_pivots ~threshold_sample ~max_functions ~selector ~scale:None
    data

(* --------------------------------------------------------------- retune *)

type observations = {
  nn_distance_strata : (float * int) array;
  table_hit_rate : float;
}

let no_observations = { nn_distance_strata = [||]; table_hit_rate = 0. }

let observed_scale obs =
  let strata =
    Array.to_list obs.nn_distance_strata
    |> List.filter (fun (d, c) -> c > 0 && d > 0. && Float.is_finite d)
  in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 strata in
  if total = 0 then None
  else begin
    (* Weighted median of the observed D(Q,N(Q)) strata. *)
    let sorted = List.sort compare strata in
    let half = (total + 1) / 2 in
    let rec walk acc = function
      | [] -> None
      | (d, c) :: rest -> if acc + c >= half then Some d else walk (acc + c) rest
    in
    walk 0 sorted
  end

let observations_of_metrics (m : Dbh_obs.Metrics.t) =
  let module R = Dbh_obs.Registry in
  let buckets = R.histogram_buckets m.Dbh_obs.Metrics.query_nn_distance in
  let strata = ref [] in
  let prev_bound = ref 0. in
  Array.iter
    (fun (upper, count) ->
      if count > 0 then begin
        (* Representative distance for the stratum: the bucket midpoint,
           or an extrapolation for the open-ended +inf bucket. *)
        let d =
          if Float.is_finite upper then (!prev_bound +. upper) /. 2. else !prev_bound *. 2.
        in
        if d > 0. then strata := (d, count) :: !strata
      end;
      if Float.is_finite upper then prev_bound := upper)
    buckets;
  let probes = R.counter_value m.Dbh_obs.Metrics.bucket_probes_total in
  let looked = R.counter_value m.Dbh_obs.Metrics.lookup_distance_computations_total in
  {
    nn_distance_strata = Array.of_list (List.rev !strata);
    table_hit_rate = (if probes <= 0 then 0. else float_of_int looked /. float_of_int probes);
  }

let retune ?pool ~rng ?num_pivots ?threshold_sample ?max_functions ?selector ~observations t
    data =
  let selector = Option.value selector ~default:t.selector in
  let num_pivots = Option.value num_pivots ~default:(Array.length t.pivots) in
  let threshold_sample = Option.value threshold_sample ~default:500 in
  build ?pool ~rng ~space:t.space ~num_pivots ~threshold_sample ~max_functions ~selector
    ~scale:(observed_scale observations) data

(* ----------------------------------------------------------- evaluation *)

type 'a cache = {
  obj : 'a;
  dists : float array;  (* nan = not yet computed *)
  mutable misses : int;
  mutable hits : int;
  budget : Budget.t option;  (* charged before each uncached distance *)
  trace : Dbh_obs.Trace.t option;
}

let cache ?budget ?trace t obj =
  { obj; dists = Array.make (num_pivots t) nan; misses = 0; hits = 0; budget; trace }

(* Like [cache], but over a caller-owned workspace row (e.g. a query
   scratch) so repeated queries allocate no distance array.  The row may
   be longer than the pivot count; it is re-initialised here, so a dirty
   row from a previous query is fine. *)
let cache_in ?budget ?trace t ~dists obj =
  if Array.length dists < num_pivots t then
    invalid_arg "Hash_family.cache_in: workspace shorter than pivot count";
  Array.fill dists 0 (Array.length dists) nan;
  { obj; dists; misses = 0; hits = 0; budget; trace }

let cache_with_distances t obj dists =
  if Array.length dists <> num_pivots t then
    invalid_arg "Hash_family.cache_with_distances: wrong number of distances";
  (* The row is only read (no nan entries), so sharing it is safe. *)
  { obj; dists; misses = 0; hits = 0; budget = None; trace = None }

let pivot_table ?pool t objs =
  let row obj = Array.map (fun p -> t.space.Space.distance obj p) t.pivots in
  match pool with
  | None -> Array.map row objs
  | Some pool ->
      Dbh_util.Pool.parallel_map_array ?cost:(Space.cost_estimator t.space objs) pool row objs

let cache_cost c = c.misses
let cache_hits c = c.hits

let pivot_distance t c i =
  let d = c.dists.(i) in
  if Float.is_nan d then begin
    (match c.budget with Some b -> Budget.charge b | None -> ());
    let d = t.space.Space.distance c.obj t.pivots.(i) in
    c.dists.(i) <- d;
    c.misses <- c.misses + 1;
    (match c.trace with
    | Some tr -> Dbh_obs.Trace.record tr (Dbh_obs.Trace.Pivot_miss { pivot = i })
    | None -> ());
    d
  end
  else begin
    c.hits <- c.hits + 1;
    (match c.trace with
    | Some tr -> Dbh_obs.Trace.record tr (Dbh_obs.Trace.Pivot_hit { pivot = i })
    | None -> ());
    d
  end

let project t c i =
  let f = t.fns.(i) in
  let d1 = pivot_distance t c f.p1 in
  let d2 = pivot_distance t c f.p2 in
  Projection.project_with ~d1 ~d2 ~d12:f.d12

let eval t c i =
  let f = t.fns.(i) in
  let v = project t c i in
  v >= f.t1 && v <= f.t2

let margin t c i =
  let f = t.fns.(i) in
  let v = project t c i in
  let to_t1 = if f.t1 = neg_infinity then infinity else Float.abs (v -. f.t1) in
  let to_t2 = if f.t2 = infinity then infinity else Float.abs (v -. f.t2) in
  Float.min to_t1 to_t2 /. f.spread

let eval_direct t obj i =
  let f = t.fns.(i) in
  let d1 = t.space.Space.distance obj t.pivots.(f.p1) in
  let d2 = t.space.Space.distance obj t.pivots.(f.p2) in
  let v = Projection.project_with ~d1 ~d2 ~d12:f.d12 in
  v >= f.t1 && v <= f.t2

let sample_fn_indices ~rng t n =
  if n < 0 then invalid_arg "Hash_family.sample_fn_indices: negative count";
  Array.init n (fun _ -> Rng.int rng (size t))

let signature t ~fn_indices obj =
  let c = cache t obj in
  let bits = Bitvec.create (Array.length fn_indices) in
  Array.iteri (fun pos i -> if eval t c i then Bitvec.set bits pos true) fn_indices;
  bits

let balance t i sample =
  if Array.length sample = 0 then invalid_arg "Hash_family.balance: empty sample";
  let zeros = ref 0 in
  Array.iter (fun x -> if not (eval_direct t x i) then incr zeros) sample;
  float_of_int !zeros /. float_of_int (Array.length sample)

(* ----------------------------------------------------------- persistence *)

module Binio = Dbh_util.Binio

let format_tag = "DBH-family-v2"
let format_tag_v1 = "DBH-family-v1"

let write ~encode buf t =
  Binio.write_string buf format_tag;
  Binio.write_string buf (Selector.tag t.selector);
  Binio.write_int buf (Array.length t.pivots);
  Array.iter (fun p -> Binio.write_string buf (encode p)) t.pivots;
  Binio.write_int buf (Array.length t.fns);
  Array.iter
    (fun f ->
      Binio.write_int buf f.p1;
      Binio.write_int buf f.p2;
      Binio.write_float buf f.d12;
      Binio.write_float buf f.t1;
      Binio.write_float buf f.t2;
      Binio.write_float buf f.spread)
    t.fns

let read ~decode ~space r =
  let tag = Binio.read_string r in
  (* v1 envelopes predate selectors: everything written before the
     Selector redesign was the paper's uniform construction. *)
  let selector =
    if tag = format_tag_v1 then Selector.default
    else if tag = format_tag then begin
      let sel_tag = Binio.read_string r in
      match Selector.of_tag sel_tag with
      | Some s -> s
      | None -> raise (Binio.Corrupt (Printf.sprintf "unknown selector tag %S" sel_tag))
    end
    else raise (Binio.Corrupt (Printf.sprintf "expected %s, found %S" format_tag tag))
  in
  let num_pivots = Binio.read_int r in
  if num_pivots < 0 || num_pivots > Binio.remaining r then
    raise (Binio.Corrupt "implausible pivot count");
  let pivots =
    Array.init num_pivots (fun _ -> Binio.guard_decode decode (Binio.read_string r))
  in
  let num_fns = Binio.read_int r in
  if num_fns < 0 || num_fns > Binio.remaining r then
    raise (Binio.Corrupt "implausible function count");
  let fns =
    Array.init num_fns (fun _ ->
        let p1 = Binio.read_int r in
        let p2 = Binio.read_int r in
        let d12 = Binio.read_float r in
        let t1 = Binio.read_float r in
        let t2 = Binio.read_float r in
        let spread = Binio.read_float r in
        if p1 < 0 || p1 >= num_pivots || p2 < 0 || p2 >= num_pivots then
          raise (Binio.Corrupt "pivot index out of range");
        { p1; p2; d12; t1; t2; spread })
  in
  { space; pivots; fns; selector }
