(** Distance-Based Hashing (Athitsos, Potamias, Papapetrou & Kollios,
    ICDE 2008): hash-based approximate nearest-neighbor indexing for
    arbitrary — including non-metric — distance measures.

    Typical use:

    {[
      let rng = Dbh_util.Rng.create 42 in
      let space = Dbh_space.Space.make ~name:"dtw" my_distance in
      let index = Dbh.Builder.auto ~rng ~space ~target_accuracy:0.95 db in
      match (Dbh.Hierarchical.search index q).Dbh.Index.nn with
      | Some (id, distance) -> ...
      | None -> ...
    ]}

    Queries take their cross-cutting options — distance budget, domain
    pool, metrics, trace — through one {!Query_opts.t} record passed to
    the [search]/[search_batch] entry points.

    Module map (paper reference in parentheses):

    - {!Projection}: pseudo line projections (Eq. 4)
    - {!Selector}: pluggable pivot-pair/threshold selection strategies
      (uniform per the paper; density- and neighbor-sensitive variants)
    - {!Hash_family}: the binary hash function family over a pivot set
      X_small (Eq. 5–7, Sec. V-B), built through a {!Selector} and
      re-tunable from live-traffic observations
    - {!Collision}: collision-probability model C, C_k, C_{k,l}
      (Eq. 8–10)
    - {!Analysis}: sample-based accuracy and cost estimation (Eq. 11–14)
    - {!Params}: optimal (k, l) search (Sec. IV-D)
    - {!Store}: dynamic object store shared between indexes
    - {!Key}: packed k-bit bucket keys (one tagged int each) with
      Hamming-ball enumeration for multi-probe
    - {!Probe_seq}: the multi-probe sequence generator (penalty-ordered
      Hamming-adjacent keys)
    - {!Csr}: frozen CSR hash tables with a mutable insert delta
    - {!Scratch}: reusable per-query workspace (zero-alloc hot path)
    - {!Budget}: per-query distance-computation budgets
    - {!Query_opts}: the one-record query options (budget, pool,
      metrics, trace, scratch)
    - {!Index}: single-level index — build, NN / k-NN / range /
      multi-probe / budgeted queries, insert/delete, save/load
    - {!Hierarchical}: the s-level cascade (Sec. V-A)
    - {!Builder}: one-call offline pipeline
    - {!Diagnostics}: structural health checks for built indexes
    - {!Online}: self-maintaining wrapper that re-tunes as the database
      grows or shrinks *)

module Projection = Projection
module Selector = Selector
module Hash_family = Hash_family
module Collision = Collision
module Analysis = Analysis
module Params = Params
module Store = Store
module Key = Key
module Probe_seq = Probe_seq
module Csr = Csr
module Scratch = Scratch
module Budget = Budget
module Query_opts = Query_opts
module Index = Index
module Hierarchical = Hierarchical
module Builder = Builder
module Diagnostics = Diagnostics
module Online = Online
