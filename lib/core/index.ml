module Rng = Dbh_util.Rng
module Space = Dbh_space.Space
module Binio = Dbh_util.Binio

type stats = {
  hash_cost : int;
  lookup_cost : int;
  probes : int;
}

let total_cost s = s.hash_cost + s.lookup_cost

let add_stats a b =
  {
    hash_cost = a.hash_cost + b.hash_cost;
    lookup_cost = a.lookup_cost + b.lookup_cost;
    probes = a.probes + b.probes;
  }

type 'a result = {
  nn : (int * float) option;
  stats : stats;
  truncated : bool;
  levels_probed : int;
}

(* One metrics recording per completed query, from the query's own
   stats — never from raw distance calls — so the counters are logical:
   dbh_distance_computations_total is exactly the sum of per-query
   total_cost, whatever the domain count, and build/baseline distances
   never leak in.  Shared by every serving entry point (single-level,
   cascade, breaker fallback). *)
let observe_query ?metrics ?seconds ?(cache_hits = 0) ?nn_distance ~(stats : stats)
    ~truncated ~levels_probed () =
  match Dbh_obs.Metrics.resolve metrics with
  | None -> ()
  | Some m ->
      let module R = Dbh_obs.Registry in
      R.inc m.Dbh_obs.Metrics.queries_total;
      if truncated then R.inc m.Dbh_obs.Metrics.queries_truncated_total;
      R.add m.Dbh_obs.Metrics.distance_computations_total (total_cost stats);
      R.add m.Dbh_obs.Metrics.hash_distance_computations_total stats.hash_cost;
      R.add m.Dbh_obs.Metrics.lookup_distance_computations_total stats.lookup_cost;
      R.add m.Dbh_obs.Metrics.bucket_probes_total stats.probes;
      R.add m.Dbh_obs.Metrics.levels_probed_total levels_probed;
      R.add m.Dbh_obs.Metrics.pivot_cache_misses_total stats.hash_cost;
      R.add m.Dbh_obs.Metrics.pivot_cache_hits_total cache_hits;
      R.observe m.Dbh_obs.Metrics.query_cost (float_of_int (total_cost stats));
      (match nn_distance with
      | Some d -> R.observe m.Dbh_obs.Metrics.query_nn_distance d
      | None -> ());
      (match seconds with Some s -> R.observe m.Dbh_obs.Metrics.query_seconds s | None -> ())

type 'a t = {
  family : 'a Hash_family.t;
  store : 'a Store.t;
  k : int;
  l : int;
  fn_ids : int array array;  (* l rows of k function indices *)
  distinct_fns : int array;  (* deduplicated function indices *)
  fn_slots : int array array;  (* fn_ids mapped to positions in distinct_fns *)
  tables : Csr.t array;  (* frozen CSR base + insert delta, one per row *)
}

let k t = t.k
let l t = t.l
let store t = t.store
let family t = t.family
let size t = Store.alive_count t.store

(* Pack the k bits of table [row] into a key, evaluating each distinct
   function at most once via [bit_of]. *)
let key_of_row fn_ids bit_of row : Key.t =
  Array.fold_left
    (fun key fn_id -> Key.push_bit key (bit_of fn_id))
    Key.zero fn_ids.(row)

let distinct_of fn_ids =
  let seen = Hashtbl.create 64 in
  Array.iter (Array.iter (fun id -> Hashtbl.replace seen id ())) fn_ids;
  Array.of_seq (Hashtbl.to_seq_keys seen)

(* Evaluate all distinct functions once and return a memoized bit lookup. *)
let bits_of_cache t cache =
  let bits = Hashtbl.create (Array.length t.distinct_fns) in
  Array.iter
    (fun fn_id -> Hashtbl.replace bits fn_id (Hash_family.eval t.family cache fn_id))
    t.distinct_fns;
  fun fn_id -> Hashtbl.find bits fn_id

let slots_of fn_ids distinct_fns =
  let slot = Hashtbl.create (Array.length distinct_fns) in
  Array.iteri (fun i fn_id -> Hashtbl.replace slot fn_id i) distinct_fns;
  Array.map (Array.map (Hashtbl.find slot)) fn_ids

(* The allocation-free counterpart of [bits_of_cache] for the query hot
   path: evaluate every distinct function once — same order, so cache
   misses and hash_cost are identical — into a scratch-owned byte row
   indexed by slot. *)
let eval_bits t cache bits =
  Array.iteri
    (fun i fn_id ->
      Bytes.unsafe_set bits i
        (if Hash_family.eval t.family cache fn_id then '\001' else '\000'))
    t.distinct_fns

let key_of_slots t bits row : Key.t =
  let slots = t.fn_slots.(row) in
  let key = ref Key.zero in
  for j = 0 to Array.length slots - 1 do
    key := Key.push_bit !key (Bytes.unsafe_get bits (Array.unsafe_get slots j) <> '\000')
  done;
  !key

(* Per-bit flip margins, filled after [eval_bits]: every projection the
   margins need was just computed through the same cache, so this costs
   zero additional distance computations (and charges no budget). *)
let eval_margins t cache margins =
  Array.iteri
    (fun i fn_id -> margins.(i) <- Hash_family.margin t.family cache fn_id)
    t.distinct_fns

let insert_id t cache id =
  let bit_of = bits_of_cache t cache in
  for row = 0 to t.l - 1 do
    let key = key_of_row t.fn_ids bit_of row in
    Csr.add t.tables.(row) (key :> int) id
  done

(* All l bucket keys of one object, through a private distance cache —
   pure given the store and pivot table, so it can run on any domain. *)
let keys_of_id ~family ~store ~fn_ids ~distinct_fns pivot_table id =
  let cache =
    match pivot_table with
    | Some table -> Hash_family.cache_with_distances family (Store.get store id) table.(id)
    | None -> Hash_family.cache family (Store.get store id)
  in
  let bits = Hashtbl.create (Array.length distinct_fns) in
  Array.iter
    (fun fn_id -> Hashtbl.replace bits fn_id (Hash_family.eval family cache fn_id))
    distinct_fns;
  let bit_of fn_id = Hashtbl.find bits fn_id in
  Array.init (Array.length fn_ids) (key_of_row fn_ids bit_of)

let build_on ?pool ~rng ~family ~store ?pivot_table ~k ~l () =
  (try Key.check_width k
   with Invalid_argument _ ->
     invalid_arg (Printf.sprintf "Index.build: k must be in [1, %d]" Key.max_bits));
  if l < 1 then invalid_arg "Index.build: l must be >= 1";
  if Store.length store = 0 then invalid_arg "Index.build: empty database";
  (match pivot_table with
  | Some table when Array.length table <> Store.length store ->
      invalid_arg "Index.build: pivot_table length mismatch"
  | _ -> ());
  let fn_ids = Array.init l (fun _ -> Hash_family.sample_fn_indices ~rng family k) in
  let distinct_fns = distinct_of fn_ids in
  let n = Store.length store in
  (* Build cons-list buckets first (ascending id order, so each list ends
     up newest-first exactly as the incremental tables always were), then
     freeze every row into CSR form. *)
  let buckets = Array.init l (fun _ -> Hashtbl.create n) in
  let push row key id =
    let bucket = try Hashtbl.find buckets.(row) key with Not_found -> [] in
    Hashtbl.replace buckets.(row) key (id :: bucket)
  in
  let keys_of = keys_of_id ~family ~store ~fn_ids ~distinct_fns pivot_table in
  (match pool with
  | None ->
      for id = 0 to n - 1 do
        if Store.is_alive store id then
          Array.iteri (fun row (key : Key.t) -> push row (key :> int) id) (keys_of id)
      done
  | Some pool ->
      (* Hashing dominates the build cost and is pure per object, so it
         fans out; insertion then replays sequentially in ascending id
         order, reproducing the sequential bucket lists exactly. *)
      let keys = Array.make n [||] in
      let space = Hash_family.space family in
      let cost =
        if Space.has_item_cost space then
          Some
            (fun id ->
              if Store.is_alive store id then Space.item_cost space (Store.get store id) else 1)
        else None
      in
      Dbh_util.Pool.parallel_for ?cost pool n (fun id ->
          if Store.is_alive store id then keys.(id) <- keys_of id);
      for id = 0 to n - 1 do
        Array.iteri (fun row (key : Key.t) -> push row (key :> int) id) keys.(id)
      done);
  {
    family;
    store;
    k;
    l;
    fn_ids;
    distinct_fns;
    fn_slots = slots_of fn_ids distinct_fns;
    tables = Array.map Csr.freeze buckets;
  }

let build ?pool ~rng ~family ~db ?pivot_table ~k ~l () =
  build_on ?pool ~rng ~family ~store:(Store.of_array db) ?pivot_table ~k ~l ()

(* O(1): maintained by the CSR tables (dead entries included, exactly as
   the list buckets counted before). *)
let bucket_count t = Array.fold_left (fun acc tbl -> acc + Csr.bucket_count tbl) 0 t.tables

let largest_bucket t =
  Array.fold_left (fun acc tbl -> max acc (Csr.largest_bucket tbl)) 0 t.tables

let delta_size t = Array.fold_left (fun acc tbl -> acc + Csr.delta_size tbl) 0 t.tables
let approx_table_words t =
  Array.fold_left (fun acc tbl -> acc + Csr.approx_words tbl) 0 t.tables

let compact t =
  let is_alive = Store.is_alive t.store in
  Array.iter (fun tbl -> Csr.compact ~is_alive tbl) t.tables

(* Pure counterpart for atomic publication: fresh tables, everything
   else (store, family, function choices) shared. *)
let compacted t =
  let is_alive = Store.is_alive t.store in
  { t with tables = Array.map (Csr.compacted ~is_alive) t.tables }

let iter_buckets t f =
  Array.iteri (fun row tbl -> Csr.iter_buckets tbl (fun key ids -> f row key ids)) t.tables

(* --------------------------------------------------------------- queries *)

(* Queries own their scratch for the duration of the call: taken from
   opts when provided (so steady-state queries allocate no seen mask, no
   candidate cells, no pivot row), private otherwise; always reset on
   the way out — including exceptional exits — so a shared scratch is
   clean for the next query. *)
let scratch_of = function Some s -> s | None -> Scratch.create ()

let cache_for ?budget ?trace t scratch q =
  Hash_family.cache_in ?budget ?trace t.family
    ~dists:(Scratch.pivot_dists scratch (Hash_family.num_pivots t.family))
    q

let check_probe_knobs ~probes ~radius =
  if probes < 1 then invalid_arg "Index: probes_per_table must be >= 1";
  if radius < 0 || radius > Key.max_radius then
    invalid_arg
      (Printf.sprintf "Index: hamming_radius must be in [0, %d]" Key.max_radius)

(* The extra-probe engine, shared by every query path.  After the base
   buckets, each table probes up to [probes - 1] Hamming-adjacent keys
   within [radius] bit flips of its base key.  When the probe budget
   covers the whole radius ball the keys are served by code-only range
   scans over the sorted directory (one scan per consecutive-key run);
   otherwise the probe heap emits keys one by one in increasing
   flip-penalty order, cheapest bits — the projections that landed
   nearest their thresholds — first.  Margins reuse the pivot distances
   [eval_bits] already cached, so extra probes cost zero additional
   hash distance computations.  [counter] counts probed buckets: one
   per emitted key on the heap path, the full ball (claimed upfront) on
   the range path. *)
let probe_extras ?trace ~level t cache scratch bits ~probes ~radius ~counter visit =
  let extra = probes - 1 in
  let margins = Scratch.margin_row scratch (Array.length t.distinct_fns) in
  eval_margins t cache margins;
  let ball = Key.ball_size ~width:t.k ~radius in
  let ps = Scratch.probe_seq scratch in
  for row = 0 to t.l - 1 do
    let base = key_of_slots t bits row in
    let table = t.tables.(row) in
    if extra >= ball then begin
      counter := !counter + ball;
      match trace with
      | None ->
          Csr.iter_within table ~width:t.k ~radius (base :> int) (fun _ id -> visit id)
      | Some tr ->
          (* The range scan only surfaces non-empty keys; record one
             probe event per distinct key it visits. *)
          let last = ref min_int in
          Csr.iter_within table ~width:t.k ~radius (base :> int) (fun key id ->
              if key <> !last then begin
                last := key;
                Dbh_obs.Trace.record tr
                  (Dbh_obs.Trace.Bucket_probe
                     { level; table = row; key; found = Csr.bucket_size table key })
              end;
              visit id)
    end
    else begin
      let slots = t.fn_slots.(row) in
      let penalty j = margins.(Array.unsafe_get slots j) in
      Probe_seq.generate ps ~base ~width:t.k ~radius ~max_probes:extra ~penalty
        ~emit:(fun pk ->
          incr counter;
          (match trace with
          | Some tr ->
              Dbh_obs.Trace.record tr
                (Dbh_obs.Trace.Bucket_probe
                   {
                     level;
                     table = row;
                     key = (pk :> int);
                     found = Csr.bucket_size table (pk :> int);
                   })
          | None -> ());
          Csr.iter_bucket table (pk :> int) visit)
    end
  done

let candidates_into ?trace ?(level = 0) ?(limit = max_int) ?(probes = 1) ?(radius = 0)
    ?probe_counter t cache ~scratch =
  check_probe_knobs ~probes ~radius;
  (* The live store length can exceed the capacity the caller ensured
     when a writer inserts mid-query; admission is bounded by [limit]
     then, so only the visible prefix must fit the mask. *)
  if Scratch.capacity scratch < min limit (Store.length t.store) then
    invalid_arg "Index.candidates_into: scratch smaller than the store";
  (* Base probes are claimed before any hash evaluation — the historical
     accounting: a budget that dies inside [eval_bits] still counts this
     index's l probes. *)
  let counter = match probe_counter with Some c -> c | None -> ref 0 in
  counter := !counter + t.l;
  let bits = Scratch.bit_row scratch (Array.length t.distinct_fns) in
  eval_bits t cache bits;
  (* Ids at or past the mask capacity — or past the caller's published
     visibility bound — were inserted by a concurrent writer after this
     query started; skipping them linearizes the query before those
     inserts.  Sequentially neither guard ever fires. *)
  let cap = min (Scratch.capacity scratch) limit in
  let visit id =
    if id < cap && Store.is_alive t.store id then ignore (Scratch.mark scratch id)
  in
  for row = 0 to t.l - 1 do
    let key = key_of_slots t bits row in
    (match trace with
    | Some tr ->
        Dbh_obs.Trace.record tr
          (Dbh_obs.Trace.Bucket_probe
             {
               level;
               table = row;
               key = (key :> int);
               found = Csr.bucket_size t.tables.(row) (key :> int);
             })
    | None -> ());
    Csr.iter_bucket t.tables.(row) (key :> int) visit
  done;
  if probes > 1 && radius > 0 then
    probe_extras ?trace ~level t cache scratch bits ~probes ~radius ~counter visit

let with_candidates ?metrics ?trace ?scratch ~probes ~radius t q f =
  check_probe_knobs ~probes ~radius;
  let metrics = Dbh_obs.Metrics.resolve metrics in
  let t0 = match metrics with Some _ -> Dbh_obs.Metrics.now () | None -> 0. in
  let scratch = scratch_of scratch in
  Scratch.ensure scratch (Store.length t.store);
  let cache = cache_for ?trace t scratch q in
  let probed = ref 0 in
  let value, lookup_cost =
    Fun.protect
      ~finally:(fun () -> Scratch.reset scratch)
      (fun () ->
        candidates_into ~probes ~radius ~probe_counter:probed t cache ~scratch;
        f scratch)
  in
  let stats =
    { hash_cost = Hash_family.cache_cost cache; lookup_cost; probes = !probed }
  in
  let seconds =
    match metrics with Some _ -> Some (Dbh_obs.Metrics.now () -. t0) | None -> None
  in
  observe_query ?metrics ?seconds ~cache_hits:(Hash_family.cache_hits cache) ~stats
    ~truncated:false ~levels_probed:1 ();
  (value, stats)

let best_of_candidates t q candidates =
  let space = Hash_family.space t.family in
  let best = ref None in
  let count = ref 0 in
  List.iter
    (fun id ->
      incr count;
      let d = space.Space.distance q (Store.get t.store id) in
      match !best with
      | Some (_, bd) when bd <= d -> ()
      | _ -> best := Some (id, d))
    candidates;
  (!best, !count)

(* NN query, optionally under a distance-computation budget.  Buckets are
   probed row by row and candidates ranked as they surface (equivalent to
   collecting the union first: the candidate set, lookup cost and best
   answer are identical), so that when a budget runs out mid-query the
   best-so-far over everything already paid for is returned.  The budget
   is charged before every distance evaluation — both pivot distances
   inside the hash cache and candidate comparisons here — so the spend
   never exceeds the limit. *)
(* The single-level query core.  Trace events are recorded only behind a
   [match] on the trace option, so the untraced path allocates nothing
   for them; metrics are recorded once at the end from the final stats. *)
(* The body of [query_with] with the probe knobs as required labels:
   passing an int through an optional argument boxes a [Some] per call,
   and on the plain single-probe path (the storage bench's alloc gate)
   those two words per query are measurable.  [query_with] below is the
   optional-argument wrapper for external callers. *)
let query_probed ?budget ?metrics ?trace ?scratch ~probes ~radius t q =
  check_probe_knobs ~probes ~radius;
  let metrics = Dbh_obs.Metrics.resolve metrics in
  let t0 = match metrics with Some _ -> Dbh_obs.Metrics.now () | None -> 0. in
  (match trace with
  | Some tr ->
      Dbh_obs.Trace.record tr
        (Dbh_obs.Trace.Query_start { kind = Printf.sprintf "index(k=%d,l=%d)" t.k t.l })
  | None -> ());
  let scratch = scratch_of scratch in
  Scratch.ensure scratch (Store.length t.store);
  let cache = cache_for ?budget ?trace t scratch q in
  let space = Hash_family.space t.family in
  (* Unboxed best tracking: ids and float refs are flat, so improving
     the best allocates nothing until the final [Some]. *)
  let best_id = ref (-1) in
  let best_d = ref infinity in
  let lookup = ref 0 in
  let probed = ref 0 in
  Fun.protect
    ~finally:(fun () -> Scratch.reset scratch)
    (fun () ->
      try
        let bits = Scratch.bit_row scratch (Array.length t.distinct_fns) in
        eval_bits t cache bits;
        (* One visitor closure for the whole query: allocating it inside
           the row loop would cost a closure per probe.  The capacity
           guard skips ids a concurrent writer inserted after the seen
           mask was sized — never taken sequentially. *)
        let cap = Scratch.capacity scratch in
        let visit id =
          if id < cap && Store.is_alive t.store id && Scratch.mark scratch id then begin
            (match budget with Some b -> Budget.charge b | None -> ());
            incr lookup;
            let d = space.Space.distance q (Store.get t.store id) in
            let improved = d < !best_d in
            (match trace with
            | Some tr ->
                Dbh_obs.Trace.record tr
                  (Dbh_obs.Trace.Candidate { id; distance = d; improved })
            | None -> ());
            if improved then begin
              best_id := id;
              best_d := d
            end
          end
        in
        for row = 0 to t.l - 1 do
          incr probed;
          let key = key_of_slots t bits row in
          (match trace with
          | Some tr ->
              Dbh_obs.Trace.record tr
                (Dbh_obs.Trace.Bucket_probe
                   {
                     level = 0;
                     table = row;
                     key = (key :> int);
                     found = Csr.bucket_size t.tables.(row) (key :> int);
                   })
          | None -> ());
          Csr.iter_bucket t.tables.(row) (key :> int) visit
        done;
        if probes > 1 && radius > 0 then
          probe_extras ?trace ~level:0 t cache scratch bits ~probes ~radius
            ~counter:probed visit
      with Budget.Exhausted -> (
        match trace with
        | Some tr ->
            Dbh_obs.Trace.record tr
              (Dbh_obs.Trace.Budget_exhausted
                 { spent = (match budget with Some b -> Budget.spent b | None -> 0) })
        | None -> ()));
  let truncated = match budget with Some b -> Budget.exhausted b | None -> false in
  let stats =
    { hash_cost = Hash_family.cache_cost cache; lookup_cost = !lookup; probes = !probed }
  in
  (match trace with
  | Some tr ->
      Dbh_obs.Trace.record tr
        (Dbh_obs.Trace.Query_done
           {
             hash_cost = stats.hash_cost;
             lookup_cost = stats.lookup_cost;
             probes = stats.probes;
             levels_probed = 1;
             truncated;
           })
  | None -> ());
  let seconds =
    match metrics with Some _ -> Some (Dbh_obs.Metrics.now () -. t0) | None -> None
  in
  observe_query ?metrics ?seconds ~cache_hits:(Hash_family.cache_hits cache)
    ?nn_distance:(if !best_id < 0 then None else Some !best_d)
    ~stats ~truncated ~levels_probed:1 ();
  {
    nn = (if !best_id < 0 then None else Some (!best_id, !best_d));
    stats;
    truncated;
    levels_probed = 1;
  }

let query_with ?budget ?metrics ?trace ?scratch ?(probes = 1) ?(radius = 0) t q =
  query_probed ?budget ?metrics ?trace ?scratch ~probes ~radius t q

let search ?(opts = Query_opts.default) t q =
  let budget = Option.map Budget.create opts.Query_opts.budget in
  query_probed ?budget ?metrics:opts.Query_opts.metrics ?trace:opts.Query_opts.trace
    ?scratch:opts.Query_opts.scratch ~probes:opts.Query_opts.probes_per_table
    ~radius:opts.Query_opts.hamming_radius t q

(* Queries only read the index (tables, store, family), so a batch fans
   out with no shared mutable state beyond the atomic counters.  The
   metric set is resolved once up front and shared — its counters are
   atomic — while opts.trace is ignored: traces are single-domain by
   design.  Sequentially one scratch (the caller's, else a private one)
   serves the whole batch; under a pool each query allocates its own
   (a scratch is single-domain state). *)
let search_batch ?(opts = Query_opts.default) t qs =
  let metrics = Dbh_obs.Metrics.resolve opts.Query_opts.metrics in
  let probes = opts.Query_opts.probes_per_table in
  let radius = opts.Query_opts.hamming_radius in
  match opts.Query_opts.pool with
  | None ->
      let scratch = scratch_of opts.Query_opts.scratch in
      Array.map
        (fun q ->
          let budget = Option.map Budget.create opts.Query_opts.budget in
          query_probed ?budget ?metrics ~scratch ~probes ~radius t q)
        qs
  | Some pool ->
      Dbh_util.Pool.parallel_map_array
        ?cost:(Space.cost_estimator (Hash_family.space t.family) qs)
        pool
        (fun q ->
          let budget = Option.map Budget.create opts.Query_opts.budget in
          query_probed ?budget ?metrics ~probes ~radius t q)
        qs

(* Candidate consumers iterate the scratch newest-mark-first: that is the
   order the old code visited its consed candidate lists in, and
   tie-breaking (equal distances) depends on it. *)
let query_knn ?(opts = Query_opts.default) t m q =
  if m < 1 then invalid_arg "Index.query_knn: m must be >= 1";
  let space = Hash_family.space t.family in
  with_candidates ?metrics:opts.Query_opts.metrics ?trace:opts.Query_opts.trace
    ?scratch:opts.Query_opts.scratch ~probes:opts.Query_opts.probes_per_table
    ~radius:opts.Query_opts.hamming_radius t q (fun scratch ->
      let heap = Dbh_util.Bounded_heap.create m in
      let count = ref 0 in
      for i = Scratch.count scratch - 1 downto 0 do
        let id = Scratch.get scratch i in
        incr count;
        let d = space.Space.distance q (Store.get t.store id) in
        ignore (Dbh_util.Bounded_heap.push heap d id)
      done;
      let sorted =
        Dbh_util.Bounded_heap.to_sorted_list heap |> List.map (fun (d, i) -> (i, d))
      in
      (Array.of_list sorted, !count))

let query_range ?(opts = Query_opts.default) t radius q =
  if radius < 0. then invalid_arg "Index.query_range: negative radius";
  let space = Hash_family.space t.family in
  with_candidates ?metrics:opts.Query_opts.metrics ?trace:opts.Query_opts.trace
    ?scratch:opts.Query_opts.scratch ~probes:opts.Query_opts.probes_per_table
    ~radius:opts.Query_opts.hamming_radius t q (fun scratch ->
      let hits = ref [] in
      let count = ref 0 in
      for i = Scratch.count scratch - 1 downto 0 do
        let id = Scratch.get scratch i in
        incr count;
        let d = space.Space.distance q (Store.get t.store id) in
        if d <= radius then hits := (id, d) :: !hits
      done;
      (List.sort (fun (_, a) (_, b) -> compare a b) !hits, !count))

(* Multi-probe: per table, after the base bucket, probe the buckets whose
   keys flip the bit subsets with the smallest total margin — the bits
   whose projection values sit closest to a threshold.  Subsets of size 1
   and 2 suffice for practical probe counts. *)
let probe_masks t cache row probes =
  let fns = t.fn_ids.(row) in
  let k = Array.length fns in
  let margins = Array.map (fun fn_id -> Hash_family.margin t.family cache fn_id) fns in
  let flips = ref [] in
  for j = 0 to k - 1 do
    (* Bit j of the key corresponds to fns.(j); keys pack bit 0 first at
       the high end, so position j maps to mask bit (k-1-j). *)
    let mask = 1 lsl (k - 1 - j) in
    flips := (margins.(j), mask) :: !flips;
    for j2 = j + 1 to k - 1 do
      let mask2 = mask lor (1 lsl (k - 1 - j2)) in
      flips := (margins.(j) +. margins.(j2), mask2) :: !flips
    done
  done;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !flips in
  List.filteri (fun i _ -> i < probes) sorted |> List.map snd

let query_multiprobe ?(opts = Query_opts.default) t ~probes q =
  if probes < 0 then invalid_arg "Index.query_multiprobe: negative probes";
  let metrics = Dbh_obs.Metrics.resolve opts.Query_opts.metrics in
  let t0 = match metrics with Some _ -> Dbh_obs.Metrics.now () | None -> 0. in
  let scratch = scratch_of opts.Query_opts.scratch in
  Scratch.ensure scratch (Store.length t.store);
  let cache = cache_for ?trace:opts.Query_opts.trace t scratch q in
  let probe_count = ref 0 in
  let nn, lookup =
    Fun.protect
      ~finally:(fun () -> Scratch.reset scratch)
      (fun () ->
        let bit_of = bits_of_cache t cache in
        for row = 0 to t.l - 1 do
          let base_key = key_of_row t.fn_ids bit_of row in
          let keys =
            (base_key :> int)
            :: List.map
                 (fun mask -> (base_key :> int) lxor mask)
                 (probe_masks t cache row probes)
          in
          List.iter
            (fun key ->
              incr probe_count;
              Csr.iter_bucket t.tables.(row) key (fun id ->
                  if id < Scratch.capacity scratch && Store.is_alive t.store id then
                    ignore (Scratch.mark scratch id)))
            keys
        done;
        let space = Hash_family.space t.family in
        let best = ref None in
        let count = ref 0 in
        for i = Scratch.count scratch - 1 downto 0 do
          let id = Scratch.get scratch i in
          incr count;
          let d = space.Space.distance q (Store.get t.store id) in
          match !best with
          | Some (_, bd) when bd <= d -> ()
          | _ -> best := Some (id, d)
        done;
        (!best, !count))
  in
  let stats =
    { hash_cost = Hash_family.cache_cost cache; lookup_cost = lookup; probes = !probe_count }
  in
  let seconds =
    match metrics with Some _ -> Some (Dbh_obs.Metrics.now () -. t0) | None -> None
  in
  observe_query ?metrics ?seconds ~cache_hits:(Hash_family.cache_hits cache)
    ?nn_distance:(Option.map snd nn) ~stats ~truncated:false ~levels_probed:1 ();
  { nn; stats; truncated = false; levels_probed = 1 }

let query_budgeted ?(opts = Query_opts.default) t ~max_candidates q =
  if max_candidates < 1 then invalid_arg "Index.query_budgeted: budget must be >= 1";
  let metrics = Dbh_obs.Metrics.resolve opts.Query_opts.metrics in
  let t0 = match metrics with Some _ -> Dbh_obs.Metrics.now () | None -> 0. in
  let scratch = scratch_of opts.Query_opts.scratch in
  Scratch.ensure scratch (Store.length t.store);
  let cache = cache_for ?trace:opts.Query_opts.trace t scratch q in
  let chosen =
    Fun.protect
      ~finally:(fun () -> Scratch.reset scratch)
      (fun () ->
        let bit_of = bits_of_cache t cache in
        (* Count, per candidate, the number of tables it collides in. *)
        let counts = Hashtbl.create 64 in
        for row = 0 to t.l - 1 do
          let key = key_of_row t.fn_ids bit_of row in
          Csr.iter_bucket t.tables.(row) (key :> int) (fun id ->
              if Store.is_alive t.store id then
                Hashtbl.replace counts id
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
        done;
        let ranked =
          Hashtbl.fold (fun id c acc -> (c, id) :: acc) counts []
          |> List.sort (fun (c1, id1) (c2, id2) ->
                 if c1 <> c2 then compare c2 c1 else compare id1 id2)
        in
        List.filteri (fun i _ -> i < max_candidates) ranked |> List.map snd)
  in
  let nn, lookup = best_of_candidates t q chosen in
  let stats =
    { hash_cost = Hash_family.cache_cost cache; lookup_cost = lookup; probes = t.l }
  in
  let seconds =
    match metrics with Some _ -> Some (Dbh_obs.Metrics.now () -. t0) | None -> None
  in
  observe_query ?metrics ?seconds ~cache_hits:(Hash_family.cache_hits cache)
    ?nn_distance:(Option.map snd nn) ~stats ~truncated:false ~levels_probed:1 ();
  { nn; stats; truncated = false; levels_probed = 1 }

(* -------------------------------------------------------------- updates *)

let index_existing t id =
  if not (Store.is_alive t.store id) then invalid_arg "Index.index_existing: dead or unknown id";
  let cache = Hash_family.cache t.family (Store.get t.store id) in
  insert_id t cache id

let insert t obj =
  let id = Store.add t.store obj in
  index_existing t id;
  id

let delete t id = Store.delete t.store id

(* ----------------------------------------------------------- persistence *)

(* v1 bodies store bit-packed keys — k bits per indexed object per
   table — rather than bucket lists: for realistic (k, l) this is an
   order of magnitude smaller than naive int encoding, and buckets
   rebuild exactly from the keys.  Objects that are dead at save time are
   dropped (compaction); their ids stay reserved.  The v2 body (used by
   the packed Online.Durable snapshots) instead dumps the live CSR
   arrays directly, which loads without any re-bucketing. *)

let pack_keys buf ~k keys =
  let n = Array.length keys in
  let total_bits = n * k in
  let bytes = Bytes.make ((total_bits + 7) / 8) '\000' in
  let bit = ref 0 in
  Array.iter
    (fun key ->
      for b = k - 1 downto 0 do
        if key lsr b land 1 = 1 then begin
          let byte = !bit / 8 and off = !bit mod 8 in
          Bytes.set bytes byte (Char.chr (Char.code (Bytes.get bytes byte) lor (1 lsl off)))
        end;
        incr bit
      done)
    keys;
  Binio.write_int buf n;
  Binio.write_string buf (Bytes.to_string bytes)

let unpack_keys r ~k =
  let n = Binio.read_int r in
  if n < 0 then raise (Binio.Corrupt "negative key count");
  let data = Binio.read_string r in
  if String.length data < (n * k + 7) / 8 then raise (Binio.Corrupt "truncated key block");
  let bit = ref 0 in
  Array.init n (fun _ ->
      let key = ref 0 in
      for _ = 1 to k do
        let byte = !bit / 8 and off = !bit mod 8 in
        key := (!key lsl 1) lor (Char.code data.[byte] lsr off land 1);
        incr bit
      done;
      !key)

(* Ids this index holds, alive only, ascending; every indexed object
   appears in every table, so membership of the first table suffices. *)
let present_ids t =
  let members = Hashtbl.create 256 in
  Csr.iter_buckets t.tables.(0) (fun key bucket ->
      List.iter
        (fun id -> if Store.is_alive t.store id then Hashtbl.replace members id key)
        bucket);
  let ids = Array.of_seq (Hashtbl.to_seq_keys members) in
  Array.sort compare ids;
  ids

let keys_of_table table ids =
  let key_of = Hashtbl.create (Array.length ids) in
  Csr.iter_buckets table (fun key bucket ->
      List.iter (fun id -> Hashtbl.replace key_of id key) bucket);
  Array.map
    (fun id ->
      match Hashtbl.find_opt key_of id with
      | Some key -> key
      | None -> raise (Invalid_argument "Index.write: object missing from a table"))
    ids

let write_fn_ids buf t =
  Binio.write_int buf t.k;
  Binio.write_int buf t.l;
  Array.iter (fun row -> Binio.write_int_array buf row) t.fn_ids

let read_fn_ids ~family r =
  let k = Binio.read_int r in
  let l = Binio.read_int r in
  if k < 1 || k > Key.max_bits || l < 1 || l > Binio.remaining r then
    raise (Binio.Corrupt "invalid k or l");
  let fn_ids =
    Array.init l (fun _ ->
        let row = Binio.read_int_array r in
        if Array.length row <> k then raise (Binio.Corrupt "bad fn row length");
        Array.iter
          (fun id ->
            if id < 0 || id >= Hash_family.size family then
              raise (Binio.Corrupt "function id out of range"))
          row;
        row)
  in
  (k, l, fn_ids)

let write_body buf t =
  write_fn_ids buf t;
  let ids = present_ids t in
  Binio.write_int_array buf ids;
  Array.iter (fun table -> pack_keys buf ~k:t.k (keys_of_table table ids)) t.tables

let read_body ~family ~store r =
  let n = Store.length store in
  let k, l, fn_ids = read_fn_ids ~family r in
  let ids = Binio.read_int_array r in
  Array.iter
    (fun id -> if id < 0 || id >= n then raise (Binio.Corrupt "object id out of range"))
    ids;
  let tables =
    Array.init l (fun _ ->
        let keys = unpack_keys r ~k in
        if Array.length keys <> Array.length ids then
          raise (Binio.Corrupt "key block does not match id list");
        let table = Hashtbl.create (max 16 (Array.length ids)) in
        Array.iteri
          (fun pos id ->
            let key = keys.(pos) in
            let bucket = try Hashtbl.find table key with Not_found -> [] in
            Hashtbl.replace table key (id :: bucket))
          ids;
        Csr.freeze table)
  in
  let distinct_fns = distinct_of fn_ids in
  { family; store; k; l; fn_ids; distinct_fns; fn_slots = slots_of fn_ids distinct_fns; tables }

(* v2 body: the live CSR arrays verbatim.  Loading re-validates every
   structural invariant (sorted directory, in-range packed keys, offsets
   covering the ids, no duplicate id per table) so a corrupt or
   hand-edited snapshot cannot materialise a broken index. *)
let write_body_packed buf t =
  write_fn_ids buf t;
  let is_alive = Store.is_alive t.store in
  Array.iter (fun table -> Csr.write buf ~is_alive table) t.tables

let read_body_packed ~family ~store r =
  let n = Store.length store in
  let k, l, fn_ids = read_fn_ids ~family r in
  let seen = Bytes.create n in
  let validate_key key =
    try ignore (Key.of_int ~width:k key)
    with Invalid_argument _ -> raise (Binio.Corrupt "packed key out of range")
  in
  let tables = Array.init l (fun _ -> Csr.read r ~validate_key ~max_id:n ~seen) in
  let distinct_fns = distinct_of fn_ids in
  { family; store; k; l; fn_ids; distinct_fns; fn_slots = slots_of fn_ids distinct_fns; tables }

let write_store ~encode buf store =
  Binio.write_int buf (Store.length store);
  for id = 0 to Store.length store - 1 do
    Binio.write_string buf (encode (Store.get store id))
  done;
  let dead =
    List.filter (fun id -> not (Store.is_alive store id))
      (List.init (Store.length store) Fun.id)
  in
  Binio.write_int_array buf (Array.of_list dead)

let read_store ~decode r =
  let n = Binio.read_int r in
  (* Each stored object costs at least a length prefix; bound n before
     allocating so corrupt inputs cannot trigger huge allocations. *)
  if n < 0 || n > Binio.remaining r then raise (Binio.Corrupt "implausible store size");
  let objects = Array.init n (fun _ -> Binio.guard_decode decode (Binio.read_string r)) in
  let store = Store.of_array objects in
  let dead = Binio.read_int_array r in
  Array.iter (fun id -> Store.delete store id) dead;
  store

let format_tag = "DBH-index-v1"

let write ~encode buf t =
  Binio.write_string buf format_tag;
  Hash_family.write ~encode buf t.family;
  write_store ~encode buf t.store;
  write_body buf t

let read ~decode ~space r =
  let tag = Binio.read_string r in
  if tag <> format_tag then
    raise (Binio.Corrupt (Printf.sprintf "expected %s, found %S" format_tag tag));
  let family = Hash_family.read ~decode ~space r in
  let store = read_store ~decode r in
  read_body ~family ~store r

let snapshot_kind = "index"
let snapshot_version = 1

let save ~encode ~path t =
  let buf = Buffer.create 4096 in
  write ~encode buf t;
  Dbh_persist.Envelope.save ~path ~kind:snapshot_kind ~version:snapshot_version
    (Buffer.contents buf)

let load ~decode ~space ~path =
  let payload =
    Dbh_persist.Envelope.read_expect ~kind:snapshot_kind ~version:snapshot_version ~path
  in
  let r = Binio.reader payload in
  let t = read ~decode ~space r in
  if not (Binio.at_end r) then
    raise (Binio.Corrupt "trailing bytes after index payload");
  t
