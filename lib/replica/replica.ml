(* WAL-shipping read replica.

   A follower opens a leader's durability directory (or a shipped copy
   of it) strictly read-only: load the newest snapshot that verifies,
   then tail the WAL chain — apply records as they become visible,
   follow generation rollovers when the leader checkpoints, and fall
   back to a full reopen when the leader rewrote history under us
   (post-crash truncation, generation GC).  Because the snapshot
   carries the rng state and WAL replay consumes exactly the leader's
   random draws, a caught-up follower is a bit-identical twin: same rng
   state, same query answers.

   Nothing here ever writes inside the tailed directory until
   [promote], which is the point: fencing a fresh generation (snapshot
   + empty WAL above everything the old leader wrote) is exactly the
   write that turns the follower into the leader. *)

module Rng = Dbh_util.Rng
module Retry = Dbh_util.Retry
module Wal = Dbh_persist.Wal
module Layout = Dbh_persist.Layout
module Online = Dbh.Online
module Durable = Dbh.Online.Durable

type status = {
  generation : int;
  wal_offset : int;
  applied : int;
  retries : int;
  reopens : int;
  lag_records : int;
  last_error : string option;
}

type 'a t = {
  dir : string;
  decode : string -> 'a;
  space : 'a Dbh_space.Space.t;
  pool : Dbh_util.Pool.t option;
  config : Dbh.Builder.config option;
  rebuild_factor : float option;
  target_accuracy : float;
  retry : Retry.policy;
  jitter_rng : Rng.t;  (* backoff jitter only — never index randomness *)
  mutable online : 'a Online.t;
  mutable wal_gen : int;  (* generation of the log being tailed *)
  mutable cursor : int * int;  (* (byte offset, next sequence) into it *)
  mutable applied : int;
  mutable retries : int;
  mutable reopens : int;
  mutable attempt : int;  (* consecutive unproductive polls *)
  mutable promoted : bool;
  mutable closed : bool;
  mutable last_error : string option;
  (* Fired between a WAL read and the decision taken on it — lets the
     chaos tests interleave a leader append+checkpoint at exactly the
     racy instant.  Never set outside tests. *)
  mutable after_read_for_testing : (unit -> unit) option;
}

let set_after_read_hook_for_testing t hook = t.after_read_for_testing <- hook

let record_counter pick =
  match Dbh_obs.Metrics.get () with
  | None -> ()
  | Some m -> Dbh_obs.Registry.inc (pick m)

let set_gauge pick v =
  match Dbh_obs.Metrics.get () with
  | None -> ()
  | Some m -> Dbh_obs.Registry.set (pick m) v

let ensure_follower t =
  if t.promoted then invalid_arg "Replica: already promoted to leader";
  if t.closed then invalid_arg "Replica: closed"

(* ------------------------------------------------------------- loading *)

(* Newest snapshot that verifies wins, like leader recovery — but
   purely read-only: a corrupt snapshot is skipped, never deleted. *)
let load_newest_snapshot ?pool ?config ?rebuild_factor ~space ~target_accuracy ~decode
    ~dir () =
  let rec try_load errors = function
    | [] ->
        let detail =
          if errors = [] then "directory holds no snapshot"
          else
            String.concat "; "
              (List.map (fun (g, m) -> Printf.sprintf "gen %d: %s" g m) (List.rev errors))
        in
        Printf.ksprintf failwith "Replica: no loadable snapshot in %s: %s" dir detail
    | g :: rest -> (
        match
          Durable.online_of_snapshot ?pool ~space ?config ?rebuild_factor
            ~target_accuracy ~decode
            ~path:(Layout.snapshot_path ~dir g)
            ()
        with
        | o -> (g, o)
        | exception Dbh_util.Binio.Corrupt msg -> try_load ((g, msg) :: errors) rest
        | exception Sys_error msg -> try_load ((g, msg) :: errors) rest)
  in
  try_load [] (List.rev (Layout.snapshot_generations ~dir))

let load t =
  let g, o =
    load_newest_snapshot ?pool:t.pool ?config:t.config ?rebuild_factor:t.rebuild_factor
      ~space:t.space ~target_accuracy:t.target_accuracy ~decode:t.decode ~dir:t.dir ()
  in
  t.online <- o;
  t.wal_gen <- g;
  t.cursor <- (0, 1)

let reopen t =
  t.reopens <- t.reopens + 1;
  record_counter (fun m -> m.Dbh_obs.Metrics.replica_reopens_total);
  load t

(* ------------------------------------------------------------- tailing *)

let wal_path t g = Layout.wal_path ~dir:t.dir g
let newer_wal_exists t = Sys.file_exists (wal_path t (t.wal_gen + 1))

let apply_payloads t payloads =
  let n = Array.length payloads in
  if n > 0 then begin
    Array.iter (Durable.apply_record ~decode:t.decode t.online) payloads;
    t.applied <- t.applied + n;
    match Dbh_obs.Metrics.get () with
    | None -> ()
    | Some m -> Dbh_obs.Registry.add m.Dbh_obs.Metrics.replica_applied_total n
  end;
  n

(* Apply every record currently visible, following generation
   rollovers.  [reopened] caps full reloads at one per poll so a
   directory in a bad state degrades to periodic retries instead of a
   reopen storm.

   Rollover discipline: [wal-(g+1)] appearing means the leader
   checkpointed and will never append to [wal-g] again — but only an
   observation taken BEFORE reading [wal-g] proves the read covered
   the closed log in full.  Deciding on an observation taken after
   the read races the checkpoint: the leader may append tail records
   to gen [g] and roll over between our read and the check, and
   switching logs then would silently skip those records (with
   generation GC free to delete the evidence).  So we observe first
   and read second; when the newer log appears only after a clean-EOF
   read, gen [g] is re-read one final time before switching. *)
let rec drain t ~reopened =
  let off, seq = t.cursor in
  let path = wal_path t t.wal_gen in
  (* Before the read, so a clean EOF below proves full coverage. *)
  let closed_before_read = newer_wal_exists t in
  if not (Sys.file_exists path) then begin
    if (off > 0 || closed_before_read) && not reopened then begin
      (* Mid-tail the log vanished (generation GC or post-crash
         cleanup): the records between our cursor and the present are
         only reachable through a newer snapshot. *)
      reopen t;
      drain t ~reopened:true
    end
    else 0 (* nothing on disk yet for this generation *)
  end
  else begin
    let p = Wal.read_valid_prefix ~from:(off, seq) ~path () in
    (match t.after_read_for_testing with Some hook -> hook () | None -> ());
    if p.Wal.prefix_torn && p.Wal.file_bytes < off then begin
      (* The log shrank below our cursor: a recovering leader truncated
         a torn tail past records we already applied, or replaced the
         file.  Incremental state is unusable — reload. *)
      t.last_error <- p.Wal.prefix_torn_reason;
      if reopened then 0
      else begin
        reopen t;
        drain t ~reopened:true
      end
    end
    else begin
      let n = apply_payloads t p.Wal.payloads in
      t.cursor <- (p.Wal.next_offset, p.Wal.next_seq);
      if p.Wal.prefix_torn then
        if closed_before_read && not reopened then begin
          (* A log already closed when we started reading should never
             be torn — this is real corruption, not an append in
             flight.  Reload to get past it. *)
          t.last_error <- p.Wal.prefix_torn_reason;
          reopen t;
          n + drain t ~reopened:true
        end
        else begin
          (* Probably an append in flight: stop at the valid prefix and
             let the next poll retry from here. *)
          t.last_error <- p.Wal.prefix_torn_reason;
          n
        end
      else if closed_before_read then begin
        (* Generation rollover: the log was closed before we read it
           and we read it to a clean EOF, so every record the leader
           put into gen [t.wal_gen] is applied — switching logs IS the
           checkpoint. *)
        t.wal_gen <- t.wal_gen + 1;
        t.cursor <- (0, 1);
        n + drain t ~reopened
      end
      else if newer_wal_exists t then
        (* The leader checkpointed while we were reading: our clean
           EOF may predate tail records appended to this gen just
           before the rollover.  Go around once more — the newer log
           is now observed up front, so the next read drains the
           closed log and rolls over (or reopens if GC already
           removed it). *)
        n + drain t ~reopened
      else begin
        if n > 0 then t.last_error <- None;
        n
      end
    end
  end

(* Records visible on disk past the cursor, without applying anything —
   the instantaneous replication lag. *)
let lag_records t =
  if t.promoted || t.closed then 0
  else begin
    let rec count gen from acc =
      let path = wal_path t gen in
      if not (Sys.file_exists path) then acc
      else
        let p = Wal.read_valid_prefix ~from ~path () in
        let acc = acc + Array.length p.Wal.payloads in
        if p.Wal.prefix_torn then acc
        else if Sys.file_exists (wal_path t (gen + 1)) then count (gen + 1) (0, 1) acc
        else acc
    in
    let lag = count t.wal_gen t.cursor 0 in
    set_gauge (fun m -> m.Dbh_obs.Metrics.replica_lag_records) lag;
    lag
  end

(* Staleness in seconds: age of the newest leader WAL write we have not
   applied.  0 when caught up. *)
let lag_seconds t =
  if t.promoted || t.closed || lag_records t = 0 then 0.
  else begin
    let newest =
      List.fold_left
        (fun acc g ->
          match Unix.stat (wal_path t g) with
          | st -> Float.max acc st.Unix.st_mtime
          | exception Unix.Unix_error _ -> acc)
        0.
        (Layout.wal_generations ~dir:t.dir)
    in
    let s = if newest = 0. then 0. else Float.max 0. (Unix.gettimeofday () -. newest) in
    set_gauge (fun m -> m.Dbh_obs.Metrics.replica_lag_seconds) (int_of_float s);
    s
  end

let poll t =
  ensure_follower t;
  let n = drain t ~reopened:false in
  if n = 0 then begin
    t.attempt <- t.attempt + 1;
    if lag_records t > 0 then begin
      t.retries <- t.retries + 1;
      record_counter (fun m -> m.Dbh_obs.Metrics.replica_retries_total)
    end
  end
  else begin
    t.attempt <- 0;
    ignore (lag_records t)
  end;
  n

let backoff t = Retry.backoff ~rng:t.jitter_rng t.retry ~attempt:(max 1 t.attempt)

let catch_up ?(stall_limit = 8) ?deadline t =
  ensure_follower t;
  let started = Unix.gettimeofday () in
  let total = ref 0 in
  let stalled = ref 0 in
  let continue = ref true in
  while !continue do
    let n = poll t in
    total := !total + n;
    if lag_records t = 0 then continue := false
    else begin
      if n = 0 then incr stalled else stalled := 0;
      if !stalled >= stall_limit then continue := false
      else begin
        (* Under a caller deadline the backoff ladder is capped so the
           whole catch-up never exceeds the time budget: the last sleep
           is clamped to the remaining window, and a spent budget stops
           the loop with the lag still unapplied (see [status]). *)
        match deadline with
        | None -> Unix.sleepf (backoff t)
        | Some deadline -> (
            let elapsed = Unix.gettimeofday () -. started in
            match
              Retry.backoff_within ~rng:t.jitter_rng ~deadline ~elapsed t.retry
                ~attempt:(max 1 t.attempt)
            with
            | None -> continue := false
            | Some d -> Unix.sleepf d)
      end
    end
  done;
  ignore (lag_seconds t);
  !total

(* ------------------------------------------------------------- queries *)

let online t = t.online
let size t = Online.size t.online
let generation t = t.wal_gen
let applied t = t.applied
let rng_state t = Online.rng_state t.online
let dir t = t.dir

let status t =
  {
    generation = t.wal_gen;
    wal_offset = fst t.cursor;
    applied = t.applied;
    retries = t.retries;
    reopens = t.reopens;
    lag_records = lag_records t;
    last_error = t.last_error;
  }

let search ?opts t q = Online.search ?opts t.online q
let search_batch ?opts t qs = Online.search_batch ?opts t.online qs
let get t handle = Online.get t.online handle

(* ------------------------------------------------------------- opening *)

let open_ ?pool ?config ?rebuild_factor ?(retry = Retry.default) ?(jitter_seed = 0)
    ~space ~target_accuracy ~decode ~dir () =
  let g, o =
    load_newest_snapshot ?pool ?config ?rebuild_factor ~space ~target_accuracy ~decode
      ~dir ()
  in
  {
    dir;
    decode;
    space;
    pool;
    config;
    rebuild_factor;
    target_accuracy;
    retry;
    jitter_rng = Rng.create jitter_seed;
    online = o;
    wal_gen = g;
    cursor = (0, 1);
    applied = 0;
    retries = 0;
    reopens = 0;
    attempt = 0;
    promoted = false;
    closed = false;
    last_error = None;
    after_read_for_testing = None;
  }

(* ----------------------------------------------------------- promotion *)

let promote ?fsync ~encode t =
  ensure_follower t;
  (* Apply everything already visible, then fence: a snapshot and fresh
     WAL one generation above anything the old leader wrote make every
     older log superseded history — records a zombie leader appends
     after this point are behind the fence and can never be replayed
     over the new timeline. *)
  ignore (drain t ~reopened:false);
  let max_gen =
    List.fold_left max t.wal_gen
      (Layout.snapshot_generations ~dir:t.dir @ Layout.wal_generations ~dir:t.dir)
  in
  let handle =
    Durable.attach ?fsync ~encode ~decode:t.decode ~dir:t.dir ~generation:(max_gen + 1)
      t.online
  in
  t.promoted <- true;
  record_counter (fun m -> m.Dbh_obs.Metrics.replica_promotions_total);
  set_gauge (fun m -> m.Dbh_obs.Metrics.replica_lag_records) 0;
  set_gauge (fun m -> m.Dbh_obs.Metrics.replica_lag_seconds) 0;
  handle

(* ------------------------------------------------------------ shipping *)

(* One sync step of leader-directory files into a follower directory —
   the "rsync" of WAL shipping, for deployments where the follower
   cannot read the leader's filesystem directly.  Reads [src] strictly
   read-only; snapshots are copied once (they are write-once per
   generation name), WALs are appended incrementally, and a WAL that
   shrank or diverged in [src] (post-crash truncation) is recopied
   wholesale. *)

(* Trailing bytes of an already-shipped WAL prefix re-verified against
   [src] before appending — large enough that re-appended records
   byte-matching the torn garbage they replaced across the whole window
   is not a realistic coincidence. *)
let ship_overlap_bytes = 65536

let read_file path ~from =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if from >= len then ""
      else begin
        seek_in ic from;
        really_input_string ic (len - from)
      end)

let read_slice path ~pos ~len =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      seek_in ic pos;
      really_input_string ic len)

let file_size path = match Unix.stat path with
  | st -> Some st.Unix.st_size
  | exception Unix.Unix_error _ -> None

let append_file path data ~truncate =
  let flags =
    if truncate then [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
    else [ Open_wronly; Open_creat; Open_append; Open_binary ]
  in
  let oc = open_out_gen flags 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let ship ~src ~dst () =
  Layout.ensure_dir dst;
  let copied = ref 0 in
  List.iter
    (fun g ->
      let s = Layout.snapshot_path ~dir:src g in
      let d = Layout.snapshot_path ~dir:dst g in
      match (file_size s, file_size d) with
      | Some n, Some m when n = m -> ()
      | Some _, _ ->
          let data = read_file s ~from:0 in
          append_file d data ~truncate:true;
          copied := !copied + String.length data
      | None, _ -> ())
    (Layout.snapshot_generations ~dir:src);
  List.iter
    (fun g ->
      let s = Layout.wal_path ~dir:src g in
      let d = Layout.wal_path ~dir:dst g in
      match file_size s with
      | None -> ()
      | Some src_len ->
          let dst_len = Option.value ~default:0 (file_size d) in
          (* Growth alone does not prove pure append: a crash-recovering
             leader can truncate a torn tail and re-append past the
             shipped length within one ship interval.  A rewrite below
             [dst_len] starts at the old valid-prefix boundary and
             rewrites everything after it, so it always reaches into the
             trailing window of what we shipped — re-read that window
             from both sides and recopy wholesale on any mismatch, as
             for shrinkage. *)
          let overlap = min dst_len ship_overlap_bytes in
          let prefix_intact =
            src_len >= dst_len
            && (overlap = 0
                || read_slice s ~pos:(dst_len - overlap) ~len:overlap
                   = read_slice d ~pos:(dst_len - overlap) ~len:overlap)
          in
          if not prefix_intact then begin
            (* Shrunk or diverged in [src]: our copy's tail is not the
               leader's history — replace it wholesale. *)
            let data = read_file s ~from:0 in
            append_file d data ~truncate:true;
            copied := !copied + String.length data
          end
          else if src_len > dst_len then begin
            let data = read_file s ~from:dst_len in
            append_file d data ~truncate:false;
            copied := !copied + String.length data
          end)
    (Layout.wal_generations ~dir:src);
  !copied

(* ----------------------------------------------------- follow & close *)

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* The cursor state is dropped with the handle; flush the lag gauges
       so a scraper never keeps reading stale lag from a dead follower. *)
    set_gauge (fun m -> m.Dbh_obs.Metrics.replica_lag_records) 0;
    set_gauge (fun m -> m.Dbh_obs.Metrics.replica_lag_seconds) 0
  end

let closed t = t.closed

(* The tail-forever loop `dbh-cli replicate --follow` runs, factored
   here so a signal-driven shutdown can be regression-tested without a
   subprocess: [should_stop] is polled between small sleep slices (a
   SIGINT/SIGTERM handler flips an atomic), and returning — instead of
   dying mid-poll — closes the replica and flushes its gauges. *)
let follow ?ship_from ?(interval = 1.0) ?(should_stop = fun () -> false)
    ?(on_round = fun ~shipped:_ ~applied:_ -> ()) t =
  ensure_follower t;
  let sleep_slice = 0.05 in
  let sleep_interruptible total =
    let remaining = ref total in
    while !remaining > 0. && not (should_stop ()) do
      let step = Float.min sleep_slice !remaining in
      (try Unix.sleepf step with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      remaining := !remaining -. step
    done
  in
  while not (should_stop ()) do
    let shipped =
      match ship_from with None -> 0 | Some src -> ship ~src ~dst:t.dir ()
    in
    let applied = poll t in
    on_round ~shipped ~applied;
    if not (should_stop ()) then sleep_interruptible interval
  done;
  close t
