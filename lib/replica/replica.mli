(** WAL-shipping read replicas over a {!Dbh.Online.Durable} directory.

    A replica opens the durability directory of another instance — the
    live directory over a shared filesystem, or a copy maintained by
    {!ship} — {e strictly read-only}: it loads the newest snapshot that
    verifies, then tails the write-ahead-log chain, applying records as
    they become visible and following generation rollovers as the
    leader checkpoints.  Because snapshots carry the index rng state
    and WAL replay consumes exactly the leader's random draws, a
    caught-up replica is a {e bit-identical twin} of the leader: same
    rng state, same answers to every query.

    Fault model, in increasing severity:

    - {b Torn tail / append in flight}: {!poll} stops at the last valid
      record and retries from there next time; {!catch_up} sleeps a
      jittered exponential backoff ({!Dbh_util.Retry}) between retries.
    - {b Generation rollover}: when [wal-(g+1)] appears the leader has
      checkpointed, which closes [wal-g] exactly at the state its next
      snapshot captured — the replica drains [wal-g] fully and switches
      logs, no snapshot reload needed.
    - {b History rewritten} (log shrank below the cursor, tailed log
      GC'd, closed log torn): incremental state is unusable, so the
      replica reloads from the newest snapshot (a {e reopen}) and
      re-tails.  Reopens are capped at one per poll.

    The replica serves {!search}/{!search_batch} throughout: applying
    records uses the leader's lock-free publication path, so reads from
    other domains never block on catch-up.

    All calls that touch files are single-threaded per replica: drive
    each [t] from one domain (searches may come from any domain). *)

type 'a t

type status = {
  generation : int;  (** WAL generation currently tailed *)
  wal_offset : int;  (** byte offset of the cursor into it *)
  applied : int;  (** records applied since [open_] (reapplies included) *)
  retries : int;  (** unproductive polls with visible lag *)
  reopens : int;  (** full snapshot reloads forced by rewritten history *)
  lag_records : int;  (** valid records visible on disk but not applied *)
  last_error : string option;  (** most recent torn-prefix reason, if any *)
}

val open_ :
  ?pool:Dbh_util.Pool.t ->
  ?config:Dbh.Builder.config ->
  ?rebuild_factor:float ->
  ?retry:Dbh_util.Retry.policy ->
  ?jitter_seed:int ->
  space:'a Dbh_space.Space.t ->
  target_accuracy:float ->
  decode:(string -> 'a) ->
  dir:string ->
  unit ->
  'a t
(** Open [dir] as a follower: load the newest snapshot that verifies
    (corrupt ones are skipped, never deleted) and position the WAL
    cursor after it.  No record is applied yet — call {!poll} or
    {!catch_up}.  [space]/[config]/[target_accuracy] must match the
    leader's or the twin guarantee is void.  [retry] paces
    {!catch_up}'s sleeps (seconds); [jitter_seed] seeds the backoff
    jitter rng (never the index rng).  Raises [Failure] when [dir]
    holds no loadable snapshot. *)

val poll : 'a t -> int
(** Apply every record currently visible past the cursor, following
    rollovers (and reopening at most once if history was rewritten).
    Returns the number of records applied; never sleeps.  Raises
    [Invalid_argument] after {!promote}. *)

val catch_up : ?stall_limit:int -> ?deadline:float -> 'a t -> int
(** {!poll} in a loop until no visible lag remains, sleeping a jittered
    exponential backoff between unproductive polls.  Gives up after
    [stall_limit] (default 8) consecutive unproductive polls — e.g. a
    dead leader behind a permanently torn tail — leaving the survivors
    applied; check {!status} for remaining lag.  [deadline] caps the
    whole catch-up in seconds ({!Dbh_util.Retry.backoff_within}): the
    backoff ladder is clamped to the remaining budget and the loop
    stops once it is spent, however much lag remains.  Returns total
    records applied. *)

val lag_records : 'a t -> int
(** Valid records visible on disk past the cursor right now, without
    applying anything.  Reads the log tail; cost is proportional to the
    unapplied bytes.  Updates the [dbh_replica_lag_records] gauge. *)

val lag_seconds : 'a t -> float
(** Age of the newest leader WAL write ([0.] when {!lag_records} is 0):
    now minus the newest log mtime.  Updates [dbh_replica_lag_seconds]. *)

val status : 'a t -> status

(** {1 Reads}

    Plain {!Dbh.Online} reads over the replica's index — valid
    concurrently with {!poll} from another domain (lock-free
    publication), and always reflecting some applied prefix of the
    leader's history. *)

val search : ?opts:Dbh.Query_opts.t -> 'a t -> 'a -> 'a Dbh.Online.result
val search_batch : ?opts:Dbh.Query_opts.t -> 'a t -> 'a array -> 'a Dbh.Online.result array
val get : 'a t -> int -> 'a
val size : 'a t -> int
val rng_state : 'a t -> int64 array
(** Bit-identity fingerprint — equal to the leader's when caught up. *)

val online : 'a t -> 'a Dbh.Online.t
(** The underlying index.  Treat it as read-only: inserting or deleting
    through it forks the replica from the leader's history. *)

val generation : 'a t -> int
val applied : 'a t -> int
val dir : 'a t -> string

(** {1 Promotion} *)

val promote :
  ?fsync:bool -> encode:('a -> string) -> 'a t -> 'a Dbh.Online.Durable.t
(** Failover: apply everything already visible, then fence the old
    timeline by writing a snapshot and fresh WAL one generation above
    anything the old leader wrote, and return a leader handle rooted
    there.  Records a zombie leader might still append to older logs
    are behind the fence — no future recovery or replica will replay
    them over the new timeline.  The replica itself becomes inert:
    {!poll}/{!catch_up}/[promote] raise afterwards; use the returned
    {!Dbh.Online.Durable.t} (which shares the live index) instead. *)

(** {1 Following} *)

val follow :
  ?ship_from:string ->
  ?interval:float ->
  ?should_stop:(unit -> bool) ->
  ?on_round:(shipped:int -> applied:int -> unit) ->
  'a t ->
  unit
(** Tail forever: every [interval] (default 1s) seconds, optionally
    {!ship} from [ship_from] into the replica's directory, then {!poll},
    then report the round to [on_round].  [should_stop] is polled
    between 50ms sleep slices and before every round, so a signal
    handler that flips an atomic stops the loop promptly; on exit the
    replica is {!close}d — WAL cursors dropped, lag gauges flushed —
    instead of dying mid-poll.  Raises like {!poll} on corrupt state. *)

val close : 'a t -> unit
(** Drop the WAL cursor state and flush the lag gauges to 0; the replica
    becomes inert ({!poll}/{!catch_up}/{!follow}/{!promote} raise
    [Invalid_argument] afterwards).  Reads keep working on whatever was
    applied.  Idempotent. *)

val closed : 'a t -> bool

(** {1 Test hooks} *)

val set_after_read_hook_for_testing : 'a t -> (unit -> unit) option -> unit
(** Install a callback fired between each WAL read and the decision
    taken on it, so the chaos tests can interleave a leader
    append+checkpoint at exactly the instant a naive rollover check
    would lose records.  Testing only — never set this in production. *)

(** {1 Shipping} *)

val ship : src:string -> dst:string -> unit -> int
(** One sync step of durability files from [src] into [dst] (created if
    needed), for followers that cannot read the leader's filesystem
    directly: snapshots are copied once per generation, logs appended
    incrementally after re-verifying a trailing window of the shipped
    prefix, and a log that shrank or diverged in [src] (post-crash
    truncation, even when re-appends already grew it past the shipped
    length) is recopied wholesale.  [src] is only ever read.  Returns
    bytes copied; call repeatedly to keep [dst] fresh. *)
