module Rng = Dbh_util.Rng

type config = {
  targets : float array;
  vp_budget_fractions : float array;
  builder : Dbh.Builder.config;
  multiprobe_probes : int;
  multiprobe_radius : int;
}

let default_config =
  {
    targets = [| 0.80; 0.85; 0.90; 0.95; 0.975; 0.99 |];
    vp_budget_fractions = [| 0.02; 0.05; 0.1; 0.2; 0.35; 0.5; 0.75; 1.0 |];
    builder = Dbh.Builder.default_config;
    multiprobe_probes = 8;
    multiprobe_radius = 2;
  }

type result = {
  dataset : string;
  db_size : int;
  num_queries : int;
  vp : Tradeoff.series;
  single : Tradeoff.series;
  multiprobe : Tradeoff.series;
  hierarchical : Tradeoff.series;
  brute_force_cost : int;
}

let run ?pool ~rng ~dataset ~space ~db ~queries ?(config = default_config) () =
  let truth = Ground_truth.compute ?pool ~space ~db ~queries () in
  (* Offline: family + statistical model, from the database only. *)
  let prepared = Dbh.Builder.prepare ?pool ~rng ~space ~config:config.builder db in
  let dbh_run index q =
    let r = Dbh.Index.search index q in
    (r.Dbh.Index.nn, Dbh.Index.total_cost r.Dbh.Index.stats)
  in
  let single_methods =
    Array.to_list config.targets
    |> List.filter_map (fun target ->
           match
             Dbh.Builder.single ?pool ~rng ~prepared ~db ~target_accuracy:target
               ~config:config.builder ()
           with
           | None -> None
           | Some (index, _choice) ->
               Some
                 {
                   Tradeoff.label = "single-level DBH";
                   setting = Printf.sprintf "target=%.3f" target;
                   run = dbh_run index;
                 })
  in
  let hier_methods =
    Array.to_list config.targets
    |> List.map (fun target ->
           let h =
             Dbh.Builder.hierarchical ?pool ~rng ~prepared ~db ~target_accuracy:target
               ~config:config.builder ()
           in
           {
             Tradeoff.label = "hierarchical DBH";
             setting = Printf.sprintf "target=%.3f" target;
             run =
               (fun q ->
                 let r = Dbh.Hierarchical.search h q in
                 (r.Dbh.Index.nn, Dbh.Index.total_cost r.Dbh.Index.stats));
           })
  in
  (* Multi-probe series: each target is re-tuned under the probed
     collision model — typically landing on fewer tables — and queried
     with the matching runtime knobs, so the curve shows what the probe
     path buys at equal accuracy. *)
  let mp_probes = config.multiprobe_probes in
  let mp_radius = config.multiprobe_radius in
  let mp_opts = Dbh.Query_opts.multiprobe ~hamming_radius:mp_radius mp_probes in
  let multiprobe_methods =
    Array.to_list config.targets
    |> List.filter_map (fun target ->
           match
             Dbh.Builder.single ?pool ~probes:mp_probes ~radius:mp_radius ~rng ~prepared
               ~db ~target_accuracy:target ~config:config.builder ()
           with
           | None -> None
           | Some (index, _choice) ->
               Some
                 {
                   Tradeoff.label = "multi-probe DBH";
                   setting = Printf.sprintf "target=%.3f" target;
                   run =
                     (fun q ->
                       let r = Dbh.Index.search ~opts:mp_opts index q in
                       (r.Dbh.Index.nn, Dbh.Index.total_cost r.Dbh.Index.stats));
                 })
  in
  let vp_tree = Dbh_vptree.Vp_tree.build ~rng ~space db in
  let vp_methods =
    Array.to_list config.vp_budget_fractions
    |> List.map (fun frac ->
           let budget = max 1 (int_of_float (frac *. float_of_int (Array.length db))) in
           {
             Tradeoff.label = "VP-tree";
             setting = Printf.sprintf "budget=%d" budget;
             run =
               (fun q ->
                 let answer, spent = Dbh_vptree.Vp_tree.nn_budgeted vp_tree ~budget q in
                 (answer, spent));
           })
  in
  {
    dataset;
    db_size = Array.length db;
    num_queries = Array.length queries;
    vp = Tradeoff.sweep ~queries ~truth ~label:"VP-tree" vp_methods;
    single = Tradeoff.sweep ~queries ~truth ~label:"single-level DBH" single_methods;
    multiprobe = Tradeoff.sweep ~queries ~truth ~label:"multi-probe DBH" multiprobe_methods;
    hierarchical = Tradeoff.sweep ~queries ~truth ~label:"hierarchical DBH" hier_methods;
    brute_force_cost = truth.Ground_truth.cost_per_query;
  }

let cost_at_accuracy series ~accuracy =
  let best = ref None in
  Array.iter
    (fun (p : Tradeoff.point) ->
      if p.Tradeoff.accuracy >= accuracy then
        match !best with
        | Some c when c <= p.Tradeoff.mean_cost -> ()
        | _ -> best := Some p.Tradeoff.mean_cost)
    series.Tradeoff.points;
  !best

let speedup_at result ~accuracy =
  match
    ( cost_at_accuracy result.vp ~accuracy,
      cost_at_accuracy result.hierarchical ~accuracy,
      cost_at_accuracy result.single ~accuracy )
  with
  | Some vp, Some hier, Some single -> Some (vp /. hier, vp /. single)
  | _ -> None
