type 'q method_at = {
  label : string;
  setting : string;
  run : 'q -> (int * float) option * int;
}

type point = {
  method_label : string;
  setting : string;
  accuracy : float;
  mean_cost : float;
  cost_ci95 : float;
  total_cost : int;
}

let measure ~queries ~truth m =
  let n = Array.length queries in
  if n = 0 then invalid_arg "Tradeoff.measure: no queries";
  let answers = Array.make n None in
  let costs = Array.make n 0. in
  let total = ref 0 in
  Array.iteri
    (fun i q ->
      let answer, cost = m.run q in
      answers.(i) <- answer;
      costs.(i) <- float_of_int cost;
      total := !total + cost)
    queries;
  let mean_cost, cost_ci95 = Dbh_util.Stats.mean_ci95 costs in
  {
    method_label = m.label;
    setting = m.setting;
    accuracy = Ground_truth.accuracy truth answers;
    mean_cost;
    cost_ci95;
    total_cost = !total;
  }

type series = {
  series_label : string;
  points : point array;
}

let sweep ~queries ~truth ~label methods =
  let points = List.map (measure ~queries ~truth) methods in
  { series_label = label; points = Array.of_list points }

let sort_by_accuracy s =
  let points = Array.copy s.points in
  Array.sort (fun a b -> compare a.accuracy b.accuracy) points;
  { s with points }
