(** Exact nearest neighbors by brute force — the reference answers against
    which every method's retrieval accuracy is measured, and the
    definition of the "accuracy" axis of Figure 5. *)

type t = {
  nn_index : int array;  (** per query: database index of the true NN *)
  nn_distance : float array;
  cost_per_query : int;  (** distance computations brute force spends (= database size) *)
}

val compute :
  ?pool:Dbh_util.Pool.t ->
  space:'a Dbh_space.Space.t ->
  db:'a array ->
  queries:'a array ->
  unit ->
  t
(** O(|queries| · |db|) distance computations; [pool] fans the per-query
    scans across domains (results are identical either way). *)

val compute_self : space:'a Dbh_space.Space.t -> db:'a array -> query_indices:int array -> t
(** Ground truth for queries that are database members (self-match
    excluded) — used when tuning on database samples, as the paper does. *)

val is_correct : t -> int -> (int * float) option -> bool
(** [is_correct truth qi answer]: an answer is correct when it names the
    true NN or (tie) anything at the same distance (within 1e-9
    relative). *)

val accuracy : t -> (int * float) option array -> float
(** Fraction of correct answers. *)

(** {1 k-nearest neighbors} *)

type knn = {
  neighbor_ids : int array array;  (** per query: ids of the k nearest, best first *)
  neighbor_distances : float array array;
}

val compute_knn :
  space:'a Dbh_space.Space.t -> db:'a array -> queries:'a array -> k:int -> knn
(** Exact k-NN lists by brute force ([k] clamped to the database size). *)

val recall_at_k : knn -> (int * float) array array -> float
(** Mean fraction of each query's true k-NN retrieved by the answer
    lists.  Ties are honoured by distance: a returned neighbor no farther
    than the true k-th distance counts as a hit. *)

(** {1 Range queries}

    The paper's Section III notes the same table structure answers
    near-neighbor (range) queries; these helpers provide the exact
    reference sets and the recall measure for them. *)

val compute_range :
  space:'a Dbh_space.Space.t -> db:'a array -> queries:'a array -> radius:float -> int list array
(** Per query: ids of all database objects within [radius], ascending by
    id.  O(|queries|·|db|) distances. *)

val range_recall : int list array -> (int * float) list array -> float
(** Mean fraction of each query's true range set present in the returned
    lists.  Queries whose true range set is empty are skipped; if all are
    empty the recall is defined as [1.]. *)
