(** Accuracy-vs-cost measurement — the axes of the paper's Figure 5.

    A retrieval method at one operating point is a function from a query
    to an answer plus its distance-computation count; running it over a
    query set against ground truth yields one point of an
    accuracy/efficiency curve. *)

type 'q method_at = {
  label : string;  (** e.g. "hierarchical DBH" *)
  setting : string;  (** e.g. "target=0.95" or "budget=800" *)
  run : 'q -> (int * float) option * int;
      (** answer (database index, distance) and distance computations *)
}

type point = {
  method_label : string;
  setting : string;
  accuracy : float;  (** fraction of queries retrieving the true NN *)
  mean_cost : float;  (** mean distance computations per query *)
  cost_ci95 : float;  (** 95% confidence half-width of the mean cost *)
  total_cost : int;
      (** exact sum of the per-query distance computations — the integer
          that observability counters can be reconciled against *)
}

val measure : queries:'q array -> truth:Ground_truth.t -> 'q method_at -> point

type series = {
  series_label : string;
  points : point array;  (** one per operating point, as produced *)
}

val sweep :
  queries:'q array -> truth:Ground_truth.t -> label:string -> 'q method_at list -> series
(** Measure several operating points of one method. *)

val sort_by_accuracy : series -> series
(** Points ordered by increasing accuracy — plotting order. *)
