module Space = Dbh_space.Space

type t = {
  nn_index : int array;
  nn_distance : float array;
  cost_per_query : int;
}

let scan space db ~exclude q =
  let best = ref (-1) and best_d = ref infinity in
  Array.iteri
    (fun j x ->
      if j <> exclude then begin
        let d = space.Space.distance q x in
        if d < !best_d then begin
          best_d := d;
          best := j
        end
      end)
    db;
  (!best, !best_d)

let compute ?pool ~space ~db ~queries () =
  if Array.length db = 0 then invalid_arg "Ground_truth.compute: empty database";
  if Array.length queries = 0 then invalid_arg "Ground_truth.compute: no queries";
  let scan_query q = scan space db ~exclude:(-1) q in
  let pairs =
    match pool with
    | None -> Array.map scan_query queries
    | Some pool ->
        (* A scan pays |db| distances against its own query, so a long
           query costs proportionally more under sequence metrics. *)
        Dbh_util.Pool.parallel_map_array
          ?cost:(Space.cost_estimator space queries)
          pool scan_query queries
  in
  {
    nn_index = Array.map fst pairs;
    nn_distance = Array.map snd pairs;
    cost_per_query = Array.length db;
  }

let compute_self ~space ~db ~query_indices =
  if Array.length db < 2 then invalid_arg "Ground_truth.compute_self: database too small";
  if Array.length query_indices = 0 then invalid_arg "Ground_truth.compute_self: no queries";
  let pairs = Array.map (fun qi -> scan space db ~exclude:qi db.(qi)) query_indices in
  {
    nn_index = Array.map fst pairs;
    nn_distance = Array.map snd pairs;
    cost_per_query = Array.length db - 1;
  }

let compute_range ~space ~db ~queries ~radius =
  if Array.length db = 0 then invalid_arg "Ground_truth.compute_range: empty database";
  if radius < 0. then invalid_arg "Ground_truth.compute_range: negative radius";
  Array.map
    (fun q ->
      let hits = ref [] in
      Array.iteri (fun j x -> if space.Space.distance q x <= radius then hits := j :: !hits) db;
      List.rev !hits)
    queries

let range_recall truth returned =
  let nq = Array.length truth in
  if Array.length returned <> nq then invalid_arg "Ground_truth.range_recall: length mismatch";
  let total = ref 0. and counted = ref 0 in
  for qi = 0 to nq - 1 do
    match truth.(qi) with
    | [] -> ()
    | expected ->
        incr counted;
        let got = List.map fst returned.(qi) in
        let hits = List.length (List.filter (fun id -> List.mem id got) expected) in
        total := !total +. (float_of_int hits /. float_of_int (List.length expected))
  done;
  if !counted = 0 then 1. else !total /. float_of_int !counted

let is_correct t qi answer =
  match answer with
  | None -> false
  | Some (idx, d) ->
      idx = t.nn_index.(qi)
      ||
      let truth = t.nn_distance.(qi) in
      let tol = 1e-9 *. Float.max 1. (Float.abs truth) in
      d <= truth +. tol

type knn = {
  neighbor_ids : int array array;
  neighbor_distances : float array array;
}

let compute_knn ~space ~db ~queries ~k =
  if Array.length db = 0 then invalid_arg "Ground_truth.compute_knn: empty database";
  if k < 1 then invalid_arg "Ground_truth.compute_knn: k must be >= 1";
  let k = min k (Array.length db) in
  let per_query q =
    let heap = Dbh_util.Bounded_heap.create k in
    Array.iteri (fun j x -> ignore (Dbh_util.Bounded_heap.push heap (space.Space.distance q x) j)) db;
    let sorted = Dbh_util.Bounded_heap.to_sorted_list heap in
    ( Array.of_list (List.map snd sorted),
      Array.of_list (List.map fst sorted) )
  in
  let pairs = Array.map per_query queries in
  { neighbor_ids = Array.map fst pairs; neighbor_distances = Array.map snd pairs }

let recall_at_k t answers =
  let nq = Array.length t.neighbor_ids in
  if Array.length answers <> nq then invalid_arg "Ground_truth.recall_at_k: length mismatch";
  let total = ref 0. in
  for qi = 0 to nq - 1 do
    let truth_ids = t.neighbor_ids.(qi) in
    let k = Array.length truth_ids in
    let kth = t.neighbor_distances.(qi).(k - 1) in
    let tol = 1e-9 *. Float.max 1. (Float.abs kth) in
    let hits =
      Array.fold_left
        (fun acc (id, d) ->
          if Array.exists (fun tid -> tid = id) truth_ids || d <= kth +. tol then acc + 1
          else acc)
        0 answers.(qi)
    in
    total := !total +. (float_of_int (min hits k) /. float_of_int k)
  done;
  !total /. float_of_int nq

let accuracy t answers =
  if Array.length answers <> Array.length t.nn_index then
    invalid_arg "Ground_truth.accuracy: length mismatch";
  let correct = ref 0 in
  Array.iteri (fun qi a -> if is_correct t qi a then incr correct) answers;
  float_of_int !correct /. float_of_int (Array.length answers)
