type point = {
  target : float;
  predicted_accuracy : float;
  measured_accuracy : float;
  predicted_cost : float;
  measured_cost : float;
  k : int;
  l : int;
}

let single_level ~rng ~prepared ~db ~queries ~truth ~targets ?config () =
  Array.to_list targets
  |> List.filter_map (fun target ->
         match Dbh.Builder.single ~rng ~prepared ~db ~target_accuracy:target ?config () with
         | None -> None
         | Some (index, choice) ->
             let results = Array.map (fun q -> Dbh.Index.search index q) queries in
             let measured_accuracy =
               Ground_truth.accuracy truth (Array.map (fun r -> r.Dbh.Index.nn) results)
             in
             let measured_cost =
               Dbh_util.Stats.mean
                 (Array.map
                    (fun r -> float_of_int (Dbh.Index.total_cost r.Dbh.Index.stats))
                    results)
             in
             Some
               {
                 target;
                 predicted_accuracy = choice.Dbh.Params.predicted_accuracy;
                 measured_accuracy;
                 predicted_cost = choice.Dbh.Params.predicted_cost;
                 measured_cost;
                 k = choice.Dbh.Params.k;
                 l = choice.Dbh.Params.l;
               })

let accuracy_mae points =
  if points = [] then invalid_arg "Calibration.accuracy_mae: no points";
  let total =
    List.fold_left
      (fun acc p -> acc +. Float.abs (p.predicted_accuracy -. p.measured_accuracy))
      0. points
  in
  total /. float_of_int (List.length points)

let cost_mre points =
  if points = [] then invalid_arg "Calibration.cost_mre: no points";
  let total =
    List.fold_left
      (fun acc p ->
        acc +. (Float.abs (p.predicted_cost -. p.measured_cost) /. Float.max 1. p.measured_cost))
      0. points
  in
  total /. float_of_int (List.length points)

let pp_points ppf points =
  Format.fprintf ppf "%8s %6s %6s %12s %12s %10s %10s@." "target" "k" "l" "pred acc"
    "meas acc" "pred cost" "meas cost";
  List.iter
    (fun p ->
      Format.fprintf ppf "%8.3f %6d %6d %12.4f %12.4f %10.1f %10.1f@." p.target p.k p.l
        p.predicted_accuracy p.measured_accuracy p.predicted_cost p.measured_cost)
    points
