let print_heading title =
  print_newline ();
  print_endline title;
  print_endline (String.make (String.length title) '-');
  (* Sections can take minutes; keep redirected logs live. *)
  flush stdout

let print_series_table series_list =
  Printf.printf "  %-20s %-14s %9s %14s\n" "method" "setting" "accuracy" "cost/query";
  List.iter
    (fun (s : Tradeoff.series) ->
      Array.iter
        (fun (p : Tradeoff.point) ->
          Printf.printf "  %-20s %-14s %9.4f %9.1f ±%4.1f\n" p.Tradeoff.method_label
            p.Tradeoff.setting p.Tradeoff.accuracy p.Tradeoff.mean_cost p.Tradeoff.cost_ci95)
        (Tradeoff.sort_by_accuracy s).Tradeoff.points)
    series_list

let print_kv pairs =
  let width = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  List.iter (fun (k, v) -> Printf.printf "  %-*s : %s\n" width k v) pairs

let ascii_plot ?(width = 64) ?(height = 18) ?(x_label = "accuracy")
    ?(y_label = "cost/query") series_list =
  let points =
    List.concat_map
      (fun (s : Tradeoff.series) ->
        Array.to_list s.Tradeoff.points
        |> List.map (fun (p : Tradeoff.point) -> (p.Tradeoff.accuracy, p.Tradeoff.mean_cost)))
      series_list
  in
  if points = [] then print_endline "  (no points)"
  else begin
    let xs = Array.of_list (List.map fst points) in
    let ys = Array.of_list (List.map snd points) in
    let x_min = Dbh_util.Stats.minimum xs and x_max = Dbh_util.Stats.maximum xs in
    let y_min = Dbh_util.Stats.minimum ys and y_max = Dbh_util.Stats.maximum ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1. in
    let y_span = if y_max > y_min then y_max -. y_min else 1. in
    let grid = Array.make_matrix height width ' ' in
    let marker i = Char.chr (Char.code 'a' + (i mod 26)) in
    List.iteri
      (fun si (s : Tradeoff.series) ->
        Array.iter
          (fun (p : Tradeoff.point) ->
            let col =
              int_of_float ((p.Tradeoff.accuracy -. x_min) /. x_span *. float_of_int (width - 1))
            in
            let row =
              (* y grows downward in the grid; cost grows upward on the plot *)
              height - 1
              - int_of_float
                  ((p.Tradeoff.mean_cost -. y_min) /. y_span *. float_of_int (height - 1))
            in
            let col = max 0 (min (width - 1) col) and row = max 0 (min (height - 1) row) in
            grid.(row).(col) <- (if grid.(row).(col) = ' ' then marker si else '*'))
          s.Tradeoff.points)
      series_list;
    Printf.printf "  %s (max %.0f)\n" y_label y_max;
    Array.iter
      (fun row ->
        print_string "  |";
        Array.iter print_char row;
        print_newline ())
      grid;
    Printf.printf "  +%s\n" (String.make width '-');
    Printf.printf "   %-10.3f %s %45.3f\n" x_min x_label x_max;
    List.iteri
      (fun si (s : Tradeoff.series) ->
        Printf.printf "   %c = %s%s\n" (marker si) s.Tradeoff.series_label
          (if si = 0 then "   (* = overlap)" else ""))
      series_list
  end

let print_figure5 (r : Figure5.result) =
  print_heading (Printf.sprintf "Figure 5 — %s" r.Figure5.dataset);
  print_kv
    [
      ("database size", string_of_int r.Figure5.db_size);
      ("test queries", string_of_int r.Figure5.num_queries);
      ("brute-force cost/query", string_of_int r.Figure5.brute_force_cost);
    ];
  print_newline ();
  print_series_table
    [ r.Figure5.vp; r.Figure5.single; r.Figure5.multiprobe; r.Figure5.hierarchical ];
  print_newline ();
  ascii_plot
    [ r.Figure5.vp; r.Figure5.single; r.Figure5.multiprobe; r.Figure5.hierarchical ];
  List.iter
    (fun acc ->
      match Figure5.speedup_at r ~accuracy:acc with
      | None -> ()
      | Some (hier_speedup, single_speedup) ->
          Printf.printf
            "  at accuracy >= %.2f: hierarchical DBH %.2fx cheaper than VP-tree, single-level %.2fx\n"
            acc hier_speedup single_speedup)
    [ 0.85; 0.90; 0.95 ]

let csv_of_series series_list =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "method,setting,accuracy,mean_cost,cost_ci95,total_cost\n";
  List.iter
    (fun (s : Tradeoff.series) ->
      Array.iter
        (fun (p : Tradeoff.point) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%.6f,%.3f,%.3f,%d\n" p.Tradeoff.method_label
               p.Tradeoff.setting p.Tradeoff.accuracy p.Tradeoff.mean_cost
               p.Tradeoff.cost_ci95 p.Tradeoff.total_cost))
        s.Tradeoff.points)
    series_list;
  Buffer.contents buf
