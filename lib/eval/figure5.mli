(** The paper's headline experiment (Figure 5): accuracy versus number of
    distance computations per query, for VP-trees, single-level DBH and
    hierarchical DBH, on one dataset.

    Protocol, following Section VI: the hash family and the statistical
    model are fitted on the database only; the test queries are disjoint
    and used purely for measurement.  DBH curves are traced by sweeping
    the target accuracy handed to the offline optimizer; VP-tree curves
    by sweeping the search's distance budget. *)

type config = {
  targets : float array;  (** DBH accuracy targets, e.g. 0.80 … 0.99 *)
  vp_budget_fractions : float array;
      (** VP-tree budgets as fractions of the database size *)
  builder : Dbh.Builder.config;
  multiprobe_probes : int;
      (** buckets probed per table for the multi-probe series
          (default 8) *)
  multiprobe_radius : int;  (** Hamming radius of the probes (default 2) *)
}

val default_config : config

type result = {
  dataset : string;
  db_size : int;
  num_queries : int;
  vp : Tradeoff.series;
  single : Tradeoff.series;
  multiprobe : Tradeoff.series;
      (** single-level indexes re-tuned under the probed collision model
          and queried with the multi-probe knobs *)
  hierarchical : Tradeoff.series;
  brute_force_cost : int;  (** distance computations of the exact scan *)
}

val run :
  ?pool:Dbh_util.Pool.t ->
  rng:Dbh_util.Rng.t ->
  dataset:string ->
  space:'a Dbh_space.Space.t ->
  db:'a array ->
  queries:'a array ->
  ?config:config ->
  unit ->
  result

val speedup_at : result -> accuracy:float -> (float * float) option
(** [(cost_vp / cost_hier, cost_vp / cost_single)] at the smallest
    measured accuracy level at least [accuracy] on each curve — the
    "DBH is 2–3× faster than VP-trees" comparison.  [None] when a curve
    never reaches that accuracy. *)
