(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
   used by zlib/gzip/png.  Plain table-driven implementation over OCaml
   ints — all intermediate values fit in 32 bits, well inside the native
   int range on 64-bit platforms. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let sub ?(crc = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then invalid_arg "Crc32.sub";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string ?crc s = sub ?crc s ~pos:0 ~len:(String.length s)
