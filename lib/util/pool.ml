(* Fixed-size domain pool.  See pool.mli for the design notes; the short
   version: one caller submits one batch at a time, workers and the
   caller pull task indices from a shared cursor under a mutex, and the
   expensive part of every task runs with the lock released.  Chunk
   boundaries depend only on the input size — never on the pool size or
   on scheduling — so chunked reductions merge in a deterministic order
   and parallel runs are reproducible. *)

type batch = {
  run : int -> unit;
  n : int;
  mutable next : int;  (* first index not yet taken; n after cancel *)
  mutable live : int;  (* tasks taken but not yet finished *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;  (* a batch arrived, or the pool is shutting down *)
  finished : Condition.t;  (* some task of the current batch completed *)
  mutable batch : batch option;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

let batch_done b = b.next >= b.n && b.live = 0

(* Record the first failure and cancel the tasks not yet started.  Tasks
   already running elsewhere finish normally; their effects are
   discarded by the caller re-raising. *)
let record_failure t b e bt =
  Mutex.lock t.mutex;
  if b.failure = None then b.failure <- Some (e, bt);
  b.next <- b.n;
  Mutex.unlock t.mutex

(* Take and run tasks of [b] until none are left to start.  Called with
   the mutex held; returns with the mutex held. *)
let drain t b =
  while b.next < b.n do
    let i = b.next in
    b.next <- i + 1;
    b.live <- b.live + 1;
    Mutex.unlock t.mutex;
    (try b.run i
     with e -> record_failure t b e (Printexc.get_raw_backtrace ()));
    Mutex.lock t.mutex;
    b.live <- b.live - 1;
    if batch_done b then Condition.broadcast t.finished
  done

let worker t () =
  Mutex.lock t.mutex;
  let rec loop () =
    match t.batch with
    | Some b when b.next < b.n ->
        drain t b;
        loop ()
    | _ ->
        if t.closed then Mutex.unlock t.mutex
        else begin
          Condition.wait t.work t.mutex;
          loop ()
        end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      size = domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      closed = false;
      workers = [];
    }
  in
  if domains > 1 then
    t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let sequential = create ~domains:1

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Per-task timing wrapper, applied only when a metric set is installed:
   the uninstrumented path runs the raw task function unchanged. *)
let timed_task m f i =
  let t0 = Dbh_obs.Metrics.now () in
  Fun.protect
    ~finally:(fun () ->
      Dbh_obs.Registry.observe m.Dbh_obs.Metrics.pool_task_seconds
        (Dbh_obs.Metrics.now () -. t0))
    (fun () -> f i)

let run_tasks t ~n f =
  if n < 0 then invalid_arg "Pool: negative task count";
  if n = 0 then ()
  else begin
  let metrics = Dbh_obs.Metrics.get () in
  let f =
    match metrics with
    | None -> f
    | Some m ->
        Dbh_obs.Registry.inc m.Dbh_obs.Metrics.pool_batches_total;
        Dbh_obs.Registry.add m.Dbh_obs.Metrics.pool_tasks_total n;
        Dbh_obs.Registry.set m.Dbh_obs.Metrics.pool_queue_depth n;
        timed_task m f
  in
  let drained () =
    match metrics with
    | None -> ()
    | Some m -> Dbh_obs.Registry.set m.Dbh_obs.Metrics.pool_queue_depth 0
  in
  if t.size = 1 || n = 1 then begin
    (* Sequential fast path: no locking, exceptions propagate as is. *)
    for i = 0 to n - 1 do
      f i
    done;
    drained ()
  end
  else begin
    let b = { run = f; n; next = 0; live = 0; failure = None } in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: used after shutdown"
    end;
    if t.batch <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: nested or concurrent batch submission"
    end;
    t.batch <- Some b;
    Condition.broadcast t.work;
    drain t b;
    while not (batch_done b) do
      Condition.wait t.finished t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex;
    drained ();
    match b.failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
  end

(* Chunk layout is a function of [n] alone (at most 64 chunks): the same
   input always produces the same chunks, whatever the pool size, so
   chunk-order merges never depend on scheduling. *)
let chunks ?chunk n =
  if n <= 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c ->
          if c < 1 then invalid_arg "Pool: chunk must be >= 1";
          c
      | None -> max 1 ((n + 63) / 64)
    in
    let count = (n + chunk - 1) / chunk in
    Array.init count (fun ci ->
        let lo = ci * chunk in
        (lo, min n (lo + chunk)))
  end

let parallel_for ?chunk t n f =
  let cs = chunks ?chunk n in
  run_tasks t ~n:(Array.length cs) (fun ci ->
      let lo, hi = cs.(ci) in
      for i = lo to hi - 1 do
        f i
      done)

let parallel_map_array ?chunk t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* Seed the result with element 0 so no dummy value is needed; [f] is
       applied exactly once per element either way. *)
    let out = Array.make n (f arr.(0)) in
    parallel_for ?chunk t (n - 1) (fun i -> out.(i + 1) <- f arr.(i + 1));
    out
  end

let map_reduce_chunks ?chunk t ~n ~map ~fold ~init =
  let cs = chunks ?chunk n in
  let count = Array.length cs in
  if count = 0 then init
  else begin
    let results = Array.make count None in
    run_tasks t ~n:count (fun ci ->
        let lo, hi = cs.(ci) in
        results.(ci) <- Some (map ~lo ~hi));
    (* Merge strictly in chunk order: bit-identical for any pool size. *)
    Array.fold_left
      (fun acc r -> match r with Some c -> fold acc c | None -> acc)
      init results
  end
