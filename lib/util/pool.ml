(* Work-stealing domain pool.  See pool.mli for the contract; the short
   version: each batch pre-places its chunk tasks onto per-domain
   Chase-Lev deques (owner pops LIFO at the bottom, thieves steal FIFO
   at the top through [Atomic] compare-and-set), so a domain that
   finishes its share early drains the loaded domains instead of
   idling.  Chunk boundaries and task placement are deterministic
   functions of the input size and the cost estimator — never of
   scheduling — so chunked reductions merge in a fixed order and
   parallel runs stay bit-identical to sequential ones. *)

(* A single-batch Chase-Lev deque: the task array is placed before the
   batch is published and never grows, so there is no push protocol and
   no resizing — only the owner's bottom pop racing thieves' top CAS
   for the last element.  OCaml [Atomic] is sequentially consistent, so
   the classic algorithm needs no explicit fences. *)
type deque = {
  tasks : int array;  (* chunk ids owned by this slot, fixed at placement *)
  top : int Atomic.t;  (* next index a thief would take *)
  bottom : int Atomic.t;  (* one past the last index the owner still holds *)
}

type steal_result = Stolen of int | Empty | Contended

let pop d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if t > b then begin
    (* Already empty: canonicalize and give up. *)
    Atomic.set d.bottom t;
    None
  end
  else if t = b then begin
    (* Last element: race thieves for it.  Exactly one CAS on [top]
       succeeds, so the task runs exactly once. *)
    let won = Atomic.compare_and_set d.top t (t + 1) in
    Atomic.set d.bottom (t + 1);
    if won then Some d.tasks.(b) else None
  end
  else Some d.tasks.(b)

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then Empty
  else
    let task = d.tasks.(t) in
    if Atomic.compare_and_set d.top t (t + 1) then Stolen task else Contended

type batch = {
  run : int -> unit;
  deques : deque array;  (* one per pool slot *)
  remaining : int Atomic.t;  (* tasks not yet finished (ran or cancelled) *)
  cancelled : bool Atomic.t;  (* set on first failure; later tasks no-op *)
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;  (* a batch arrived, or the pool is shutting down *)
  finished : Condition.t;  (* the current batch fully drained *)
  mutable batch : batch option;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  (* Per-slot telemetry.  Each cell is written only by the domain owning
     that slot while a batch is live, and read by the submitter when the
     pool is quiescent, so plain arrays suffice. *)
  pops_t : int array;  (* tasks served from the slot's own deque *)
  steals_t : int array;  (* tasks stolen from other slots' deques *)
  busy_t : float array;  (* seconds spent inside task bodies *)
}

type telemetry = { local_pops : int array; steals : int array; busy_seconds : float array }

let size t = t.size

let telemetry t =
  {
    local_pops = Array.copy t.pops_t;
    steals = Array.copy t.steals_t;
    busy_seconds = Array.copy t.busy_t;
  }

let reset_telemetry t =
  Array.fill t.pops_t 0 t.size 0;
  Array.fill t.steals_t 0 t.size 0;
  Array.fill t.busy_t 0 t.size 0.

(* Run one task: skipped (but still counted down) once the batch is
   cancelled.  The busy-time write happens before this task's
   [remaining] decrement, so when the submitter observes zero remaining
   every telemetry write of the batch is visible. *)
let exec t b slot i =
  if not (Atomic.get b.cancelled) then begin
    let t0 = Dbh_obs.Metrics.now () in
    (try b.run i
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set b.failure None (Some (e, bt)));
       Atomic.set b.cancelled true);
    t.busy_t.(slot) <- t.busy_t.(slot) +. (Dbh_obs.Metrics.now () -. t0)
  end;
  if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
    (* Last task of the batch: wake the submitter.  Taking the mutex
       orders this broadcast after the submitter's remaining-check, so
       the wakeup cannot be missed. *)
    Mutex.lock t.mutex;
    Condition.broadcast t.finished;
    Mutex.unlock t.mutex
  end

(* Drain the slot's own deque, then hunt the other deques round-robin
   until a full scan finds every deque empty.  Nothing is ever pushed
   mid-batch, so an all-empty scan means the batch has no startable
   work left and this domain can retire.  A contended steal (CAS lost)
   means the victim may still hold work, so it resets the scan instead
   of counting as empty. *)
let run_batch t b slot =
  let width = Array.length b.deques in
  let own = b.deques.(slot) in
  let rec local () =
    match pop own with
    | Some i ->
        t.pops_t.(slot) <- t.pops_t.(slot) + 1;
        exec t b slot i;
        local ()
    | None -> ()
  in
  local ();
  let rec hunt idle victim =
    if idle >= width then ()
    else if victim = slot then hunt (idle + 1) ((victim + 1) mod width)
    else
      match steal b.deques.(victim) with
      | Stolen i ->
          t.steals_t.(slot) <- t.steals_t.(slot) + 1;
          exec t b slot i;
          hunt 0 victim (* keep milking the loaded victim *)
      | Contended -> hunt 0 ((victim + 1) mod width)
      | Empty -> hunt (idle + 1) ((victim + 1) mod width)
  in
  if width > 1 then hunt 0 ((slot + 1) mod width)

let worker t slot () =
  Mutex.lock t.mutex;
  let last = ref None in
  let rec loop () =
    match t.batch with
    | Some b when (match !last with Some prev -> prev != b | None -> true) ->
        last := Some b;
        Mutex.unlock t.mutex;
        run_batch t b slot;
        Mutex.lock t.mutex;
        loop ()
    | _ ->
        if t.closed then Mutex.unlock t.mutex
        else begin
          Condition.wait t.work t.mutex;
          loop ()
        end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      size = domains;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      closed = false;
      workers = [];
      pops_t = Array.make domains 0;
      steals_t = Array.make domains 0;
      busy_t = Array.make domains 0.;
    }
  in
  if domains > 1 then
    t.workers <- List.init (domains - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let sequential = create ~domains:1

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Deterministic weighted placement: heaviest chunks first (ties by
   ascending chunk id), each onto the least-loaded slot (ties to the
   lowest slot).  Depends only on the weights and the pool size, so the
   same batch always lands the same way. *)
let place width weights =
  let n = Array.length weights in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match compare weights.(b) weights.(a) with 0 -> compare a b | c -> c)
    order;
  let load = Array.make width 0 in
  let slot_of = Array.make n 0 in
  let counts = Array.make width 0 in
  Array.iter
    (fun ci ->
      let best = ref 0 in
      for s = 1 to width - 1 do
        if load.(s) < load.(!best) then best := s
      done;
      slot_of.(ci) <- !best;
      counts.(!best) <- counts.(!best) + 1;
      load.(!best) <- load.(!best) + max 1 weights.(ci))
    order;
  let deques =
    Array.init width (fun s ->
        {
          tasks = Array.make counts.(s) 0;
          top = Atomic.make 0;
          bottom = Atomic.make counts.(s);
        })
  in
  let fill = Array.make width 0 in
  (* Ascending chunk id within each deque, so owners and thieves both
     see a deterministic order (irrelevant to results, kept for
     debuggability). *)
  for ci = 0 to n - 1 do
    let s = slot_of.(ci) in
    deques.(s).tasks.(fill.(s)) <- ci;
    fill.(s) <- fill.(s) + 1
  done;
  deques

(* Per-task timing wrapper, applied only when a metric set is installed:
   the uninstrumented path runs the raw task function unchanged. *)
let timed_task m f i =
  let t0 = Dbh_obs.Metrics.now () in
  Fun.protect
    ~finally:(fun () ->
      Dbh_obs.Registry.observe m.Dbh_obs.Metrics.pool_task_seconds
        (Dbh_obs.Metrics.now () -. t0))
    (fun () -> f i)

let sum_ints a = Array.fold_left ( + ) 0 a

let run_tasks t ~weights f =
  let n = Array.length weights in
  if n = 0 then ()
  else begin
    let metrics = Dbh_obs.Metrics.get () in
    let f =
      match metrics with
      | None -> f
      | Some m ->
          Dbh_obs.Registry.inc m.Dbh_obs.Metrics.pool_batches_total;
          Dbh_obs.Registry.add m.Dbh_obs.Metrics.pool_tasks_total n;
          Dbh_obs.Registry.set m.Dbh_obs.Metrics.pool_queue_depth n;
          timed_task m f
    in
    let drained ~pops ~steals =
      match metrics with
      | None -> ()
      | Some m ->
          let open Dbh_obs in
          Registry.set m.Metrics.pool_queue_depth 0;
          Array.iter (fun g -> Registry.set g 0) m.Metrics.pool_deque_depth;
          if pops > 0 then Registry.add m.Metrics.pool_local_pops_total pops;
          if steals > 0 then Registry.add m.Metrics.pool_steals_total steals
    in
    if t.size = 1 || n = 1 then begin
      (* Sequential fast path: no deques, no locking, exceptions
         propagate as is.  Still counted as local pops of slot 0 so the
         pops + steals = tasks invariant holds at every width. *)
      let t0 = Dbh_obs.Metrics.now () in
      Fun.protect
        ~finally:(fun () ->
          t.busy_t.(0) <- t.busy_t.(0) +. (Dbh_obs.Metrics.now () -. t0))
        (fun () ->
          for i = 0 to n - 1 do
            f i
          done);
      t.pops_t.(0) <- t.pops_t.(0) + n;
      drained ~pops:n ~steals:0
    end
    else begin
      let pops0 = sum_ints t.pops_t and steals0 = sum_ints t.steals_t in
      let deques = place t.size weights in
      let b =
        {
          run = f;
          deques;
          remaining = Atomic.make n;
          cancelled = Atomic.make false;
          failure = Atomic.make None;
        }
      in
      Mutex.lock t.mutex;
      if t.closed then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool: used after shutdown"
      end;
      (match t.batch with
      | Some _ ->
          Mutex.unlock t.mutex;
          invalid_arg "Pool: nested or concurrent batch submission"
      | None -> ());
      t.batch <- Some b;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (match metrics with
      | None -> ()
      | Some m ->
          let gauges = m.Dbh_obs.Metrics.pool_deque_depth in
          Array.iteri
            (fun s d ->
              if s < Array.length gauges then
                Dbh_obs.Registry.set gauges.(s) (Array.length d.tasks))
            deques);
      run_batch t b 0;
      Mutex.lock t.mutex;
      while Atomic.get b.remaining > 0 do
        Condition.wait t.finished t.mutex
      done;
      t.batch <- None;
      Mutex.unlock t.mutex;
      drained ~pops:(sum_ints t.pops_t - pops0) ~steals:(sum_ints t.steals_t - steals0);
      match Atomic.get b.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* Chunk layout is a deterministic function of [n], [chunk] and [cost]
   alone — never of the pool size.  Without a cost estimator the layout
   is the historical fixed-length split (at most 64 chunks).  With one,
   boundaries are placed greedily so each chunk's estimated cost
   approaches total/target: a chunk closes once the running prefix cost
   crosses its proportional quota.  The quota test self-corrects after
   an outsized item (subsequent chunks shrink until the prefix catches
   up), and an explicit [chunk] doubles as a hard cap on chunk length
   so [~chunk:1] always means one item per task. *)
let layout ?chunk ?cost n =
  if n <= 0 then ([||], [||])
  else begin
    (match chunk with
    | Some c when c < 1 -> invalid_arg "Pool: chunk must be >= 1"
    | _ -> ());
    match cost with
    | None ->
        let c =
          match chunk with Some c -> c | None -> max 1 ((n + 63) / 64)
        in
        let count = (n + c - 1) / c in
        let ranges =
          Array.init count (fun ci ->
              let lo = ci * c in
              (lo, min n (lo + c)))
        in
        (ranges, Array.map (fun (lo, hi) -> hi - lo) ranges)
    | Some cost ->
        let target =
          match chunk with Some c -> (n + c - 1) / c | None -> min n 64
        in
        let cap = match chunk with Some c -> c | None -> max_int in
        let w = Array.init n (fun i -> max 1 (cost i)) in
        let total = Array.fold_left ( + ) 0 w in
        let ranges = ref [] and weights = ref [] in
        let lo = ref 0 and cum = ref 0 and start = ref 0 and produced = ref 0 in
        for i = 0 to n - 1 do
          cum := !cum + w.(i);
          let close =
            i = n - 1
            || i - !lo + 1 >= cap
            || (!produced < target - 1 && !cum * target >= (!produced + 1) * total)
          in
          if close then begin
            ranges := (!lo, i + 1) :: !ranges;
            weights := (!cum - !start) :: !weights;
            lo := i + 1;
            start := !cum;
            incr produced
          end
        done;
        (Array.of_list (List.rev !ranges), Array.of_list (List.rev !weights))
  end

let chunks ?chunk ?cost n = fst (layout ?chunk ?cost n)

let parallel_for ?chunk ?cost t n f =
  let ranges, weights = layout ?chunk ?cost n in
  run_tasks t ~weights (fun ci ->
      let lo, hi = ranges.(ci) in
      for i = lo to hi - 1 do
        f i
      done)

let parallel_map_array ?chunk ?cost t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* Seed the result with element 0 so no dummy value is needed; [f]
       is applied exactly once per element either way.  The remaining
       loop runs over shifted indices, so the cost estimator shifts
       with it. *)
    let out = Array.make n (f arr.(0)) in
    let cost = Option.map (fun c i -> c (i + 1)) cost in
    parallel_for ?chunk ?cost t (n - 1) (fun i -> out.(i + 1) <- f arr.(i + 1));
    out
  end

let map_reduce_chunks ?chunk ?cost t ~n ~map ~fold ~init =
  let ranges, weights = layout ?chunk ?cost n in
  let count = Array.length ranges in
  if count = 0 then init
  else begin
    let results = Array.make count None in
    run_tasks t ~weights (fun ci ->
        let lo, hi = ranges.(ci) in
        results.(ci) <- Some (map ~lo ~hi));
    (* Merge strictly in chunk order: bit-identical for any pool size. *)
    Array.fold_left
      (fun acc r -> match r with Some c -> fold acc c | None -> acc)
      init results
  end
