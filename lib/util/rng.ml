type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the seed into the xoshiro state, as
   recommended by the xoshiro authors. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let of_state a =
  if Array.length a <> 4 then invalid_arg "Rng.of_state: expected 4 state words";
  if Array.for_all (fun w -> w = 0L) a then invalid_arg "Rng.of_state: all-zero state";
  { s0 = a.(0); s1 = a.(1); s2 = a.(2); s3 = a.(3) }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  Array.init n (fun _ -> split t)

(* Non-negative 62-bit integer, avoiding the sign bit entirely. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (max62 mod bound) in
  let rec draw () =
    let v = bits62 t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits mapped to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1p-53

let float t bound = unit_float t *. bound

let float_in t lo hi = lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian ?(mu = 0.) ?(sigma = 1.) t =
  (* Box–Muller; draw u1 away from 0 so log is finite. *)
  let rec nonzero () =
    let u = unit_float t in
    if u <= 1e-300 then nonzero () else u
  in
  let u1 = nonzero () in
  let u2 = unit_float t in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let exponential t lambda =
  if lambda <= 0. then invalid_arg "Rng.exponential: lambda must be positive";
  let rec nonzero () =
    let u = unit_float t in
    if u <= 1e-300 then nonzero () else u
  in
  -.log (nonzero ()) /. lambda

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_index_weighted t weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Rng.choose_index_weighted: empty weights";
  let total = Array.fold_left (fun acc w ->
      if w < 0. then invalid_arg "Rng.choose_index_weighted: negative weight";
      acc +. w)
      0. weights
  in
  if total <= 0. then invalid_arg "Rng.choose_index_weighted: zero total weight";
  let target = float t total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle t arr =
  let copy = Array.copy arr in
  shuffle_in_place t copy;
  copy

let sample_indices t m n =
  if m < 0 || m > n then invalid_arg "Rng.sample_indices";
  (* Partial Fisher–Yates over an index array. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to m - 1 do
    let j = int_in t i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 m

let sample_without_replacement t m arr =
  let n = Array.length arr in
  if m < 0 || m > n then invalid_arg "Rng.sample_without_replacement";
  Array.map (fun i -> arr.(i)) (sample_indices t m n)

let permutation t n = sample_indices t n n

let subsample t m arr =
  if m >= Array.length arr then Array.copy arr
  else sample_without_replacement t m arr
