(* Jittered exponential backoff as a pure computation: the policy maps
   an attempt number to a delay, and the caller decides what a delay
   unit means (seconds for a WAL tailer, fallback queries for a circuit
   breaker's cooldown).  Keeping the module clock- and sleep-free makes
   every consumer deterministic under test. *)

type policy = {
  initial : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
}

let default = { initial = 0.05; multiplier = 2.0; max_delay = 5.0; jitter = 0.25 }

let make ?(initial = default.initial) ?(multiplier = default.multiplier)
    ?(max_delay = default.max_delay) ?(jitter = default.jitter) () =
  if initial <= 0. || Float.is_nan initial then
    invalid_arg "Retry.make: initial must be positive";
  if multiplier < 1. || Float.is_nan multiplier then
    invalid_arg "Retry.make: multiplier must be >= 1";
  if max_delay < initial || Float.is_nan max_delay then
    invalid_arg "Retry.make: max_delay must be >= initial";
  if jitter < 0. || jitter >= 1. || Float.is_nan jitter then
    invalid_arg "Retry.make: jitter must be in [0, 1)";
  { initial; multiplier; max_delay; jitter }

let raw_backoff policy ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff: attempt must be >= 1";
  (* Grow multiplicatively but stop exponentiating once the cap is
     passed, so huge attempt counts cannot overflow to infinity. *)
  let d = ref policy.initial in
  let i = ref 1 in
  while !i < attempt && !d < policy.max_delay do
    d := !d *. policy.multiplier;
    incr i
  done;
  Float.min !d policy.max_delay

let backoff ?rng policy ~attempt =
  let base = raw_backoff policy ~attempt in
  match rng with
  | None -> base
  | Some rng when policy.jitter > 0. ->
      (* Symmetric jitter: uniform in [base·(1-j), base·(1+j)]. *)
      base *. (1. -. policy.jitter +. Rng.float rng (2. *. policy.jitter))
  | Some _ -> base

(* The same ladder under an overall time budget: jitter is drawn first
   (same rng consumption as the uncapped ladder, so adding a generous
   deadline never perturbs a deterministic test), then the delay is
   clamped to whatever budget remains, and a spent budget stops the
   ladder outright. *)
let backoff_within ?rng ~deadline ~elapsed policy ~attempt =
  if deadline <= 0. || Float.is_nan deadline then
    invalid_arg "Retry.backoff_within: deadline must be positive";
  if elapsed < 0. || Float.is_nan elapsed then
    invalid_arg "Retry.backoff_within: elapsed must be non-negative";
  let d = backoff ?rng policy ~attempt in
  let remaining = deadline -. elapsed in
  if remaining <= 0. then None else Some (Float.min d remaining)
