(** Jittered exponential backoff policies.

    A {!policy} is a pure map from attempt number to delay — no clock,
    no sleeping, no hidden randomness — so retry loops built on it stay
    deterministic under test.  The delay unit is the caller's: a WAL
    tailer reads it as seconds between polls, a circuit breaker as
    fallback queries before the next recovery probe. *)

type policy = {
  initial : float;  (** delay for attempt 1 (must be positive) *)
  multiplier : float;  (** growth per attempt (must be >= 1) *)
  max_delay : float;  (** cap on the un-jittered delay *)
  jitter : float;
      (** symmetric jitter fraction in [0, 1): the final delay is
          uniform in [d·(1-jitter), d·(1+jitter)] when an rng is
          supplied, exactly [d] otherwise *)
}

val default : policy
(** 50ms doubling to a 5s cap with 25% jitter — a reasonable tailing
    policy when the unit is seconds. *)

val make :
  ?initial:float -> ?multiplier:float -> ?max_delay:float -> ?jitter:float -> unit -> policy
(** Validated constructor; raises [Invalid_argument] on a non-positive
    [initial], [multiplier < 1], [max_delay < initial] or [jitter]
    outside [0, 1). *)

val backoff : ?rng:Rng.t -> policy -> attempt:int -> float
(** Delay before retry number [attempt] (1-based).  Monotone in
    [attempt] up to [max_delay]; never overflows for huge attempt
    counts.  Without [rng] (or with zero [jitter]) the result is
    deterministic.  Raises [Invalid_argument] when [attempt < 1]. *)

val backoff_within :
  ?rng:Rng.t -> deadline:float -> elapsed:float -> policy -> attempt:int -> float option
(** {!backoff} under an overall deadline cap: the whole retry ladder may
    spend at most [deadline] units, of which [elapsed] are already gone.
    [None] once the budget is spent ([elapsed >= deadline] — stop
    retrying); otherwise [Some d], the jittered {!backoff} delay clamped
    to the remaining [deadline -. elapsed] so the ladder can never
    overshoot the caller's time budget.  Jitter draws happen exactly as
    in {!backoff} (same rng consumption), so ladders that stay inside
    the budget are unchanged.  Raises [Invalid_argument] when [deadline]
    is not positive, [elapsed] is negative, or [attempt < 1]. *)
