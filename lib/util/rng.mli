(** Deterministic pseudo-random number generation.

    Every stochastic component of the library threads an explicit generator
    so that index construction, dataset synthesis and experiments are
    reproducible from a single integer seed.  The generator is
    xoshiro256** seeded through splitmix64, which gives high-quality
    streams even from consecutive small seeds. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator from an integer seed.  Equal
    seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting at [t]'s current state. *)

val state : t -> int64 array
(** The four xoshiro256** state words, for persistence: a generator
    restored with {!of_state} continues the exact stream.  Used by the
    durability layer so that index maintenance replayed from a write-ahead
    log consumes the same random draws as the original run. *)

val of_state : int64 array -> t
(** Rebuild a generator from {!state} output.  Raises [Invalid_argument]
    unless given exactly four words with at least one non-zero (the
    all-zero state is a fixed point of xoshiro). *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of
    the parent and child are independent for practical purposes; use it to
    hand sub-components their own generators. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] fresh generators {!split} off [t] in order —
    one per parallel chunk, so that chunked computations consume
    independent streams while staying reproducible from the seed. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** Normally distributed sample (Box–Muller).  Defaults: [mu=0.],
    [sigma=1.]. *)

val exponential : t -> float -> float
(** [exponential t lambda] samples from Exp(lambda), [lambda > 0]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_index_weighted : t -> float array -> int
(** [choose_index_weighted t w] samples index [i] with probability
    proportional to [w.(i)].  Weights must be non-negative with a positive
    sum. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val shuffle : t -> 'a array -> 'a array
(** Shuffled copy; the input is left untouched. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t m arr] is [m] distinct elements of [arr]
    in random order.  Requires [0 <= m <= Array.length arr]. *)

val sample_indices : t -> int -> int -> int array
(** [sample_indices t m n] is [m] distinct indices drawn from [\[0, n)].
    Requires [0 <= m <= n]. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [\[0, n)]. *)

val subsample : t -> int -> 'a array -> 'a array
(** [subsample t m arr] is like {!sample_without_replacement} when
    [m <= Array.length arr], and a copy of [arr] otherwise. *)
