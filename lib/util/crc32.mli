(** CRC-32 (IEEE), pure OCaml.

    The checksum behind the persistence layer's corruption detection:
    every snapshot envelope and every write-ahead-log record carries the
    CRC-32 of its payload, verified before anything is decoded.  CRC-32
    detects all single-bit and single-byte errors and all bursts up to
    32 bits, which covers the torn-write and bit-rot cases the chaos
    tests exercise.

    Values are non-negative and fit in 32 bits. *)

val string : ?crc:int -> string -> int
(** [string s] is the CRC-32 of [s].  [crc] continues a running checksum:
    [string ~crc:(string a) b = string (a ^ b)]. *)

val sub : ?crc:int -> string -> pos:int -> len:int -> int
(** Checksum of a substring, without copying it out.  Raises
    [Invalid_argument] when the range is out of bounds. *)
