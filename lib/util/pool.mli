(** Fixed-size domain pool for data-parallel loops.

    A dependency-free parallel execution substrate over OCaml 5 domains:
    {!create} spawns [domains - 1] worker domains (the submitting domain
    is the remaining worker), and the combinators fan indexed tasks out
    to them.  Everything is opt-in — library code takes a [?pool]
    argument and runs sequentially without one — so existing call sites
    keep their exact semantics.

    {b Determinism.}  Work is split into chunks whose boundaries depend
    only on the input size, never on the pool size or on scheduling.
    {!parallel_for} and {!parallel_map_array} only run pure-per-index
    work, so their output is identical to the sequential loop;
    {!map_reduce_chunks} merges chunk results strictly in chunk order,
    so even non-commutative merges are bit-identical run to run and
    pool size to pool size.  Components that need randomness inside
    chunks should split one generator per chunk up front
    ({!Rng.split_n} over [Array.length (chunks n)]) so parallel runs
    stay reproducible from the seed.

    {b Discipline.}  One batch at a time per pool: the combinators are
    not reentrant (no nesting a parallel loop inside a task of the same
    pool) and a pool must not be shared by two concurrently-submitting
    owners.  Tasks must not touch the pool they run on.  These misuses
    raise [Invalid_argument] where detectable.

    {b Failures.}  If a task raises, tasks not yet started are
    cancelled, already-running ones finish, and the first exception is
    re-raised in the submitter with its backtrace.  The pool survives
    and can run further batches.

    {b Observability.}  When a {!Dbh_obs.Metrics} set is installed,
    every batch records its size, queue depth and per-task busy time
    ([dbh_pool_*]).  With nothing installed the combinators run the raw
    task function — no timing, no allocation. *)

type t

val create : domains:int -> t
(** [create ~domains] is a pool of [domains] domains total ([domains -
    1] spawned workers plus the caller).  [domains >= 1]; [domains = 1]
    spawns nothing and runs every combinator inline.  Pools hold OS
    resources: call {!shutdown} (or use {!with_pool}) when done —
    OCaml caps the number of live domains. *)

val sequential : t
(** A shared always-sequential pool ([size = 1], no worker domains, no
    shutdown needed).  Handy as an explicit "no parallelism" argument. *)

val size : t -> int
(** Total domains, counting the caller.  At least 1. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent in effect; using the pool's
    combinators afterwards raises [Invalid_argument]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val parallel_for : ?chunk:int -> t -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] runs [f i] for every [i] in [[0, n)],
    split into chunks across the pool's domains.  [f] must be safe to
    run concurrently for distinct [i] (e.g. writing only cell [i] of a
    result array).  [chunk] overrides the chunk length (default: at
    most 64 chunks, a function of [n] only). *)

val parallel_map_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map_array pool f arr] is [Array.map f arr] with the
    applications spread over the pool.  [f] is applied exactly once per
    element; output order is the input order. *)

val map_reduce_chunks :
  ?chunk:int ->
  t ->
  n:int ->
  map:(lo:int -> hi:int -> 'c) ->
  fold:('acc -> 'c -> 'acc) ->
  init:'acc ->
  'acc
(** [map_reduce_chunks pool ~n ~map ~fold ~init] computes
    [map ~lo ~hi] on each chunk of [[0, n)] in parallel, then folds the
    chunk results {e in chunk order} sequentially.  Because chunking
    ignores the pool size and the merge order is fixed, the result is
    bit-identical regardless of scheduling. *)

val chunks : ?chunk:int -> int -> (int * int) array
(** The deterministic chunk decomposition [[(lo, hi); ...)] of [[0, n)]
    used by the combinators above.  Exposed so callers can pre-split
    per-chunk state — typically one {!Rng.t} per chunk via
    {!Rng.split_n} — before going parallel. *)
