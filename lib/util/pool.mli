(** Work-stealing domain pool for data-parallel loops.

    A dependency-free parallel execution substrate over OCaml 5 domains:
    {!create} spawns [domains - 1] worker domains (the submitting domain
    is the remaining worker), and the combinators fan indexed tasks out
    to them.  Everything is opt-in — library code takes a [?pool]
    argument and runs sequentially without one — so existing call sites
    keep their exact semantics.

    {b Scheduling.}  Each batch pre-places its chunk tasks onto
    per-domain Chase–Lev deques: the owning domain pops LIFO at the
    bottom with plain reads, other domains steal FIFO at the top
    through an [Atomic] compare-and-set, and only the race for a
    deque's last element takes a CAS on the owner's side.  A domain
    that drains its own deque hunts the others round-robin until a full
    scan finds every deque empty, so heterogeneous task costs spread
    across domains instead of gating the batch on the unluckiest one.
    Initial placement is a deterministic greedy weighted assignment
    (heaviest chunk first onto the least-loaded slot), so steals only
    pay for what the cost estimate got wrong.

    {b Cost-aware chunking.}  The combinators accept
    [?cost:(int -> int)], a relative per-index work estimate (any unit;
    values are clamped to [>= 1]).  With it, chunk boundaries equalize
    {e estimated cost} rather than index count, which matters when one
    index is ~100x another (DTW on long trajectories vs. short ones).
    Without it the historical fixed-length layout (at most 64 chunks)
    is used unchanged.

    {b Determinism.}  Chunk boundaries depend only on the input size,
    [?chunk] and [?cost] — never on the pool size or on scheduling.
    {!parallel_for} and {!parallel_map_array} only run pure-per-index
    work, so their output is identical to the sequential loop;
    {!map_reduce_chunks} merges chunk results strictly in chunk order,
    so even non-commutative merges are bit-identical run to run and
    pool size to pool size.  Components that need randomness inside
    chunks should split one generator per chunk up front
    ({!Rng.split_n} over [Array.length (chunks n)]) so parallel runs
    stay reproducible from the seed.

    {b Discipline.}  One batch at a time per pool: the combinators are
    not reentrant (no nesting a parallel loop inside a task of the same
    pool) and a pool must not be shared by two concurrently-submitting
    owners.  Tasks must not touch the pool they run on.  These misuses
    raise [Invalid_argument] where detectable.

    {b Failures.}  If a task raises, tasks not yet started are
    cancelled, already-running ones finish, and the first exception is
    re-raised in the submitter with its backtrace.  The pool survives
    and can run further batches.

    {b Observability.}  When a {!Dbh_obs.Metrics} set is installed,
    every batch records its size, queue depth, per-task busy time, how
    many tasks each run served locally vs. by stealing
    ([dbh_pool_local_pops_total] / [dbh_pool_steals_total]) and the
    initial per-domain deque depths ([dbh_pool_deque_depth]).  With
    nothing installed the combinators run the raw task function — no
    timing wrapper, no allocation.  Independently of metrics, the pool
    keeps cheap per-domain {!telemetry} counters for benches and
    tests. *)

type t

val create : domains:int -> t
(** [create ~domains] is a pool of [domains] domains total ([domains -
    1] spawned workers plus the caller).  [domains >= 1]; [domains = 1]
    spawns nothing and runs every combinator inline.  Pools hold OS
    resources: call {!shutdown} (or use {!with_pool}) when done —
    OCaml caps the number of live domains. *)

val sequential : t
(** A shared always-sequential pool ([size = 1], no worker domains, no
    shutdown needed).  Handy as an explicit "no parallelism" argument. *)

val size : t -> int
(** Total domains, counting the caller.  At least 1. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent in effect; using the pool's
    combinators afterwards raises [Invalid_argument]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val parallel_for : ?chunk:int -> ?cost:(int -> int) -> t -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] runs [f i] for every [i] in [[0, n)],
    split into chunks across the pool's domains.  [f] must be safe to
    run concurrently for distinct [i] (e.g. writing only cell [i] of a
    result array).  [chunk] caps the chunk length (default: at most 64
    chunks); [cost i] estimates the relative work of index [i] so chunk
    boundaries equalize estimated cost instead of index count. *)

val parallel_map_array :
  ?chunk:int -> ?cost:(int -> int) -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map_array pool f arr] is [Array.map f arr] with the
    applications spread over the pool.  [f] is applied exactly once per
    element; output order is the input order.  [cost i] estimates the
    work of element [i] of [arr]. *)

val map_reduce_chunks :
  ?chunk:int ->
  ?cost:(int -> int) ->
  t ->
  n:int ->
  map:(lo:int -> hi:int -> 'c) ->
  fold:('acc -> 'c -> 'acc) ->
  init:'acc ->
  'acc
(** [map_reduce_chunks pool ~n ~map ~fold ~init] computes
    [map ~lo ~hi] on each chunk of [[0, n)] in parallel, then folds the
    chunk results {e in chunk order} sequentially.  Because chunking
    ignores the pool size and the merge order is fixed, the result is
    bit-identical regardless of scheduling.  Note that [cost] moves
    chunk {e boundaries}, so a non-associative [fold] sees different
    groupings with and without it — pick one layout and keep it. *)

val chunks : ?chunk:int -> ?cost:(int -> int) -> int -> (int * int) array
(** The deterministic chunk decomposition [[(lo, hi); ...)] of [[0, n)]
    used by the combinators above.  Exposed so callers can pre-split
    per-chunk state — typically one {!Rng.t} per chunk via
    {!Rng.split_n} — before going parallel. *)

(** {1 Telemetry}

    Cheap per-domain counters accumulated across batches, independent
    of the metrics registry.  Each cell is written only by the domain
    owning that slot; read them only while no batch is in flight. *)

type telemetry = {
  local_pops : int array;  (** tasks served from the slot's own deque *)
  steals : int array;  (** tasks the slot stole from other deques *)
  busy_seconds : float array;  (** wall time spent inside task bodies *)
}

val telemetry : t -> telemetry
(** A snapshot (copies) of the per-domain counters since {!create} or
    the last {!reset_telemetry}.  For every batch,
    [sum local_pops + sum steals] equals the number of tasks run.
    Sequential fast-path runs count as local pops of slot 0. *)

val reset_telemetry : t -> unit
(** Zero the counters.  Call only while the pool is quiescent. *)
