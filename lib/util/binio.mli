(** Minimal binary (de)serialization helpers.

    Used by the index persistence layer: little-endian fixed-width ints,
    IEEE doubles, and length-prefixed strings over [Buffer]/[string].
    The reader tracks its own offset and fails loudly on truncation. *)

val write_int : Buffer.t -> int -> unit
(** 8 bytes, little endian, two's complement. *)

val write_int64 : Buffer.t -> int64 -> unit
(** Full 64-bit word, little endian — for values (rng states, checksums)
    where the top bit matters and {!write_int}'s 63-bit round trip would
    not be exact. *)

val write_float : Buffer.t -> float -> unit
(** IEEE-754 double bits, 8 bytes little endian. *)

val write_string : Buffer.t -> string -> unit
(** Length-prefixed ({!write_int}) byte string. *)

val write_int_array : Buffer.t -> int array -> unit
val write_float_array : Buffer.t -> float array -> unit

type reader

val reader : string -> reader
(** Start reading at offset 0. *)

val pos : reader -> int
val at_end : reader -> bool

val remaining : reader -> int
(** Bytes left to read — used to sanity-check length prefixes before
    allocating. *)

val read_int : reader -> int
val read_int64 : reader -> int64
val read_float : reader -> float
val read_string : reader -> string
val read_int_array : reader -> int array
val read_float_array : reader -> float array

exception Corrupt of string
(** Raised on truncated input or impossible lengths. *)

val guard_decode : (string -> 'a) -> string -> 'a
(** Apply a user-supplied codec, converting any exception it raises into
    {!Corrupt}: a malformed object payload is a corruption mode of the
    containing snapshot, not a programming error of the caller. *)
