exception Corrupt of string

let write_int64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let write_int buf v = write_int64 buf (Int64.of_int v)
let write_float buf f = write_int64 buf (Int64.bits_of_float f)

let write_string buf s =
  write_int buf (String.length s);
  Buffer.add_string buf s

let write_int_array buf arr =
  write_int buf (Array.length arr);
  Array.iter (write_int buf) arr

let write_float_array buf arr =
  write_int buf (Array.length arr);
  Array.iter (write_float buf) arr

type reader = {
  data : string;
  mutable offset : int;
}

let reader data = { data; offset = 0 }
let pos r = r.offset
let at_end r = r.offset >= String.length r.data
let remaining r = max 0 (String.length r.data - r.offset)

let need r n =
  if r.offset + n > String.length r.data then
    raise (Corrupt (Printf.sprintf "truncated input at offset %d (need %d bytes)" r.offset n))

let read_raw64 r =
  need r 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.data.[r.offset + i]))
  done;
  r.offset <- r.offset + 8;
  !v

let read_int64 r = read_raw64 r
let read_int r = Int64.to_int (read_raw64 r)
let read_float r = Int64.float_of_bits (read_raw64 r)

let read_string r =
  let len = read_int r in
  if len < 0 then raise (Corrupt "negative string length");
  need r len;
  let s = String.sub r.data r.offset len in
  r.offset <- r.offset + len;
  s

let read_array read_elem r =
  let len = read_int r in
  if len < 0 then raise (Corrupt "negative array length");
  (* Guard absurd lengths before allocating. *)
  if len > String.length r.data - r.offset then raise (Corrupt "array length exceeds input");
  Array.init len (fun _ -> read_elem r)

let read_int_array r = read_array read_int r
let read_float_array r = read_array read_float r

(* User-supplied codecs can raise anything on malformed payloads; from
   the persistence layer's point of view that is just another corruption
   mode, so it must surface as [Corrupt] rather than escape arbitrarily. *)
let guard_decode decode s =
  try decode s with
  | Corrupt _ as e -> raise e
  | exn -> raise (Corrupt (Printf.sprintf "object decode failed: %s" (Printexc.to_string exn)))
