(** The well-known DBH metric set.

    One {!t} bundles every counter, gauge and histogram the library's
    hot paths know how to record — query costs broken down the way the
    paper reports them (hash distances, lookup distances, probes,
    cascade levels), pivot-cache effectiveness, build costs, guard and
    breaker activity, WAL/checkpoint durability costs, and domain-pool
    utilization — all registered on a single {!Registry.t} under
    [dbh_]-prefixed names.

    {b Ambient installation.}  Instrumented code resolves its metrics
    as: the explicit [?metrics] argument if given, otherwise the
    globally {!install}ed set, otherwise nothing.  With nothing
    installed the record path is a single [Atomic.get] returning [None],
    so uninstrumented runs stay at their previous speed.

    {b Semantics of the query counters.}  [queries_total] and the
    per-query cost counters are recorded once per completed query by the
    serving entry point ([Index.search], [Hierarchical.search], the
    breaker's linear fallback), from the query's own [stats] — never
    from raw distance calls — so [distance_computations_total] equals
    the sum of per-query [total_cost] exactly, and logical counters are
    identical between sequential and multi-domain runs of the same
    workload. *)

type t = {
  registry : Registry.t;
  (* queries *)
  queries_total : Registry.counter;
  queries_truncated_total : Registry.counter;
  distance_computations_total : Registry.counter;
      (** per-query [total_cost] (hash + lookup), summed *)
  hash_distance_computations_total : Registry.counter;
  lookup_distance_computations_total : Registry.counter;
  bucket_probes_total : Registry.counter;
  levels_probed_total : Registry.counter;
  pivot_cache_hits_total : Registry.counter;
  pivot_cache_misses_total : Registry.counter;
  query_cost : Registry.histogram;  (** per-query total distance computations *)
  query_seconds : Registry.histogram;
  query_nn_distance : Registry.histogram;
      (** observed D(Q, N(Q)) per answered query — the live-traffic
          strata {!Dbh.Hash_family.retune} re-tunes against *)
  (* spaces *)
  space_distance_calls_total : Registry.counter;
      (** raw calls through {!Dbh_space.Space.observed} spaces (includes
          build-time and ground-truth work — deliberately wider than
          [distance_computations_total]) *)
  (* guard *)
  guard_calls_total : Registry.counter;
  guard_anomalies_nan_total : Registry.counter;
  guard_anomalies_pos_inf_total : Registry.counter;
  guard_anomalies_neg_inf_total : Registry.counter;
  guard_anomalies_negative_total : Registry.counter;
  guard_anomalies_exn_total : Registry.counter;
  (* breaker *)
  breaker_trips_total : Registry.counter;
  breaker_recoveries_total : Registry.counter;
  breaker_fallback_queries_total : Registry.counter;
  (* online maintenance *)
  online_inserts_total : Registry.counter;
  online_deletes_total : Registry.counter;
  online_rebuilds_total : Registry.counter;
  (* durability *)
  wal_appends_total : Registry.counter;
  wal_records_replayed_total : Registry.counter;
  checkpoints_total : Registry.counter;
  snapshot_bytes : Registry.gauge;  (** size of the newest snapshot written *)
  fsync_seconds : Registry.histogram;
  checkpoint_seconds : Registry.histogram;
  (* pool *)
  pool_batches_total : Registry.counter;
  pool_tasks_total : Registry.counter;
  pool_queue_depth : Registry.gauge;  (** tasks of the batch currently being drained *)
  pool_task_seconds : Registry.histogram;  (** per-domain busy time, one sample per task *)
  pool_steals_total : Registry.counter;
      (** tasks a domain obtained by stealing from another domain's deque *)
  pool_local_pops_total : Registry.counter;
      (** tasks a domain popped from its own deque *)
  pool_deque_depth : Registry.gauge array;
      (** per-domain deque depth, labeled [domain="i"]; pools wider than
          the fixed slot count leave the extra domains unreported *)
  (* replication *)
  replica_applied_total : Registry.counter;
  replica_retries_total : Registry.counter;
      (** polls that backed off on a torn or stalled WAL tail *)
  replica_reopens_total : Registry.counter;
      (** full reopens after the tailed state was truncated or replaced *)
  replica_promotions_total : Registry.counter;
  replica_lag_records : Registry.gauge;
      (** leader records visible on disk but not yet applied *)
  replica_lag_seconds : Registry.gauge;
      (** whole seconds of staleness against the newest leader WAL write
          (0 when caught up) *)
}

val create : unit -> t
(** A fresh metric set on a fresh registry. *)

val on : Registry.t -> t
(** Register the metric set on an existing registry.  Raises
    [Invalid_argument] if (some of) the names are already taken. *)

(** {1 Ambient metrics} *)

val install : t -> unit
(** Make this set the process-wide default that instrumented code falls
    back to when no explicit [?metrics] is given.  Replaces any
    previously installed set. *)

val uninstall : unit -> unit

val get : unit -> t option
(** The installed set, if any — one [Atomic.get]. *)

val resolve : t option -> t option
(** [resolve explicit] is [explicit] when given, else {!get} [()]. *)

val with_installed : t -> (unit -> 'b) -> 'b
(** Install, run, restore whatever was installed before — for tests and
    CLI runs. *)

val now : unit -> float
(** Monotonic-enough wall clock used for the duration histograms. *)
