(** Per-query trace recorder.

    A trace is an opt-in, bounded event log attached to a single query
    (or a single durable operation): the query path records one {!event}
    per interesting step — pivot distance evaluations, bucket probes,
    candidate comparisons, cascade level transitions, budget exhaustion,
    breaker activity, WAL appends/fsyncs, checkpoints — and the caller
    pretty-prints or exports the timeline afterwards.

    Traces are not synchronized across domains: attach one trace to one
    query served on one domain (batch entry points ignore the trace for
    exactly this reason).  Recording past {!capacity} drops events and
    counts them in {!dropped} instead of growing without bound. *)

type event =
  | Query_start of { kind : string }  (** e.g. ["index(k=8,l=10)"], ["hierarchical(5 levels)"] *)
  | Pivot_hit of { pivot : int }  (** pivot distance served from the query's cache *)
  | Pivot_miss of { pivot : int }  (** pivot distance actually computed *)
  | Bucket_probe of { level : int; table : int; key : int; found : int }
      (** one hash-table lookup; [found] counts bucket members before dedup *)
  | Candidate of { id : int; distance : float; improved : bool }
      (** one exact candidate comparison; [improved] when it became the best *)
  | Level_enter of { level : int; threshold : float }
      (** the cascade moved into stratum [level] (threshold [D_i]) *)
  | Level_settled of { level : int; best : float }
      (** the cascade stopped at [level]: best distance within threshold *)
  | Budget_exhausted of { spent : int }
  | Breaker_state of { state : string }  (** breaker transition, e.g. ["closed -> open"] *)
  | Linear_fallback of { scanned : int }  (** breaker served this query by exact scan *)
  | Wal_append of { bytes : int }
  | Wal_fsync of { seconds : float }
  | Checkpoint of { generation : int; seconds : float }
  | Replay of { records : int }
  | Query_done of {
      hash_cost : int;
      lookup_cost : int;
      probes : int;
      levels_probed : int;
      truncated : bool;
    }

type t

val create : ?clock:(unit -> float) -> ?capacity:int -> unit -> t
(** [clock] stamps each event (default [Unix.gettimeofday]; pass a fake
    for deterministic tests).  [capacity] (default 100_000) bounds the
    number of retained events. *)

val record : t -> event -> unit

val events : t -> (float * event) array
(** Recorded [(timestamp, event)] pairs in recording order. *)

val length : t -> int
val dropped : t -> int
(** Events discarded because the trace was at capacity. *)

val clear : t -> unit
(** Forget all events (and the dropped count); the trace is reusable. *)

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
(** The full timeline, one event per line, with timestamps relative to
    the first event. *)

val to_json : t -> string
