type event =
  | Query_start of { kind : string }
  | Pivot_hit of { pivot : int }
  | Pivot_miss of { pivot : int }
  | Bucket_probe of { level : int; table : int; key : int; found : int }
  | Candidate of { id : int; distance : float; improved : bool }
  | Level_enter of { level : int; threshold : float }
  | Level_settled of { level : int; best : float }
  | Budget_exhausted of { spent : int }
  | Breaker_state of { state : string }
  | Linear_fallback of { scanned : int }
  | Wal_append of { bytes : int }
  | Wal_fsync of { seconds : float }
  | Checkpoint of { generation : int; seconds : float }
  | Replay of { records : int }
  | Query_done of {
      hash_cost : int;
      lookup_cost : int;
      probes : int;
      levels_probed : int;
      truncated : bool;
    }

type t = {
  clock : unit -> float;
  capacity : int;
  mutable events : (float * event) list;  (* newest first *)
  mutable count : int;
  mutable dropped : int;
}

let create ?(clock = Unix.gettimeofday) ?(capacity = 100_000) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { clock; capacity; events = []; count = 0; dropped = 0 }

let record t ev =
  if t.count >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    t.events <- (t.clock (), ev) :: t.events;
    t.count <- t.count + 1
  end

let events t = Array.of_list (List.rev t.events)
let length t = t.count
let dropped t = t.dropped

let clear t =
  t.events <- [];
  t.count <- 0;
  t.dropped <- 0

let pp_event ppf = function
  | Query_start { kind } -> Format.fprintf ppf "query-start %s" kind
  | Pivot_hit { pivot } -> Format.fprintf ppf "pivot-hit #%d" pivot
  | Pivot_miss { pivot } -> Format.fprintf ppf "pivot-distance #%d" pivot
  | Bucket_probe { level; table; key; found } ->
      Format.fprintf ppf "bucket-probe level=%d table=%d key=%#x found=%d" level table key found
  | Candidate { id; distance; improved } ->
      Format.fprintf ppf "candidate id=%d d=%.6g%s" id distance
        (if improved then " (new best)" else "")
  | Level_enter { level; threshold } ->
      Format.fprintf ppf "level-enter %d (threshold %.6g)" level threshold
  | Level_settled { level; best } ->
      Format.fprintf ppf "level-settled %d (best %.6g within threshold)" level best
  | Budget_exhausted { spent } -> Format.fprintf ppf "budget-exhausted after %d distances" spent
  | Breaker_state { state } -> Format.fprintf ppf "breaker %s" state
  | Linear_fallback { scanned } -> Format.fprintf ppf "linear-fallback scanned=%d" scanned
  | Wal_append { bytes } -> Format.fprintf ppf "wal-append %d bytes" bytes
  | Wal_fsync { seconds } -> Format.fprintf ppf "wal-fsync %.3gms" (seconds *. 1e3)
  | Checkpoint { generation; seconds } ->
      Format.fprintf ppf "checkpoint gen=%d (%.3gms)" generation (seconds *. 1e3)
  | Replay { records } -> Format.fprintf ppf "replay %d records" records
  | Query_done { hash_cost; lookup_cost; probes; levels_probed; truncated } ->
      Format.fprintf ppf
        "query-done hash_cost=%d lookup_cost=%d probes=%d levels_probed=%d%s" hash_cost
        lookup_cost probes levels_probed
        (if truncated then " (truncated)" else "")

let pp ppf t =
  let evs = events t in
  let t0 = if Array.length evs = 0 then 0. else fst evs.(0) in
  Array.iter
    (fun (ts, ev) -> Format.fprintf ppf "@[<h>%+9.3fms  %a@]@." ((ts -. t0) *. 1e3) pp_event ev)
    evs;
  if t.dropped > 0 then Format.fprintf ppf "... %d events dropped (capacity %d)@." t.dropped t.capacity

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_nan v then "null"
  else if v = infinity then "\"+Inf\""
  else if v = neg_infinity then "\"-Inf\""
  else Printf.sprintf "%.17g" v

let event_json = function
  | Query_start { kind } -> Printf.sprintf "{\"ev\":\"query_start\",\"kind\":\"%s\"}" (json_escape kind)
  | Pivot_hit { pivot } -> Printf.sprintf "{\"ev\":\"pivot_hit\",\"pivot\":%d}" pivot
  | Pivot_miss { pivot } -> Printf.sprintf "{\"ev\":\"pivot_miss\",\"pivot\":%d}" pivot
  | Bucket_probe { level; table; key; found } ->
      Printf.sprintf "{\"ev\":\"bucket_probe\",\"level\":%d,\"table\":%d,\"key\":%d,\"found\":%d}"
        level table key found
  | Candidate { id; distance; improved } ->
      Printf.sprintf "{\"ev\":\"candidate\",\"id\":%d,\"distance\":%s,\"improved\":%b}" id
        (json_float distance) improved
  | Level_enter { level; threshold } ->
      Printf.sprintf "{\"ev\":\"level_enter\",\"level\":%d,\"threshold\":%s}" level
        (json_float threshold)
  | Level_settled { level; best } ->
      Printf.sprintf "{\"ev\":\"level_settled\",\"level\":%d,\"best\":%s}" level (json_float best)
  | Budget_exhausted { spent } -> Printf.sprintf "{\"ev\":\"budget_exhausted\",\"spent\":%d}" spent
  | Breaker_state { state } ->
      Printf.sprintf "{\"ev\":\"breaker_state\",\"state\":\"%s\"}" (json_escape state)
  | Linear_fallback { scanned } ->
      Printf.sprintf "{\"ev\":\"linear_fallback\",\"scanned\":%d}" scanned
  | Wal_append { bytes } -> Printf.sprintf "{\"ev\":\"wal_append\",\"bytes\":%d}" bytes
  | Wal_fsync { seconds } -> Printf.sprintf "{\"ev\":\"wal_fsync\",\"seconds\":%s}" (json_float seconds)
  | Checkpoint { generation; seconds } ->
      Printf.sprintf "{\"ev\":\"checkpoint\",\"generation\":%d,\"seconds\":%s}" generation
        (json_float seconds)
  | Replay { records } -> Printf.sprintf "{\"ev\":\"replay\",\"records\":%d}" records
  | Query_done { hash_cost; lookup_cost; probes; levels_probed; truncated } ->
      Printf.sprintf
        "{\"ev\":\"query_done\",\"hash_cost\":%d,\"lookup_cost\":%d,\"probes\":%d,\"levels_probed\":%d,\"truncated\":%b}"
        hash_cost lookup_cost probes levels_probed truncated

let to_json t =
  let entries =
    events t |> Array.to_list
    |> List.map (fun (ts, ev) -> Printf.sprintf "{\"t\":%s,\"event\":%s}" (json_float ts) (event_json ev))
  in
  Printf.sprintf "{\"dropped\":%d,\"events\":[%s]}" t.dropped (String.concat "," entries)
