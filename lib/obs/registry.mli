(** Multicore-safe metrics registry.

    A registry is a named collection of {e counters} (monotone ints),
    {e gauges} (instantaneous ints) and {e histograms} (fixed float
    bucket bounds), all backed by [Atomic] so they stay exact when
    bumped from several domains at once — the same guarantee
    [Dbh_space.Space.counter] gives, generalized.

    Cost model: recording is one [Atomic] operation for counters and
    gauges, and one bucket search plus two [Atomic] operations for
    histograms.  No allocation happens on the record path, so
    instrumented code that checks for an installed registry first pays
    nothing measurable when observability is off.

    Snapshots come out as Prometheus-style text exposition
    ({!exposition}) or JSON ({!to_json}); {!parse_exposition} is the
    tiny inverse used by tests to round-trip the text format. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Registration}

    Metric names must match [[a-zA-Z_:][a-zA-Z0-9_:]*].  Registering
    the same name (and label set) twice raises [Invalid_argument].
    Registration takes a lock; do it at setup time, not per query. *)

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram : t -> ?help:string -> ?buckets:float array -> string -> histogram
(** [buckets] are the upper bounds (strictly increasing; a final +inf
    bucket is implicit).  Default: powers-of-ten style latency buckets
    from 1e-6 to 10 seconds. *)

(** {1 Recording} *)

val inc : counter -> unit
val add : counter -> int -> unit
(** [add c n] with [n < 0] raises [Invalid_argument]: counters are
    monotone. *)

val set : gauge -> int -> unit
val observe : histogram -> float -> unit

(** {1 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> int
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) array
(** [(upper_bound, count)] per bucket, in bound order, ending with the
    implicit [+inf] bucket.  Counts are per-bucket (not cumulative) —
    the typed counterpart of the [_bucket] exposition lines, for code
    that consumes its own histograms (e.g. re-tuning from observed
    strata). *)

(** {1 Export} *)

val exposition : t -> string
(** Prometheus text format: [# HELP]/[# TYPE] per family, one sample
    line per counter/gauge, and cumulative [_bucket{le="..."}] lines
    plus [_sum]/[_count] per histogram.  Metrics appear in registration
    order. *)

val to_json : t -> string
(** The same snapshot as a JSON object [{"metrics": [...]}]. *)

val parse_exposition : string -> (string * float) list
(** Parse text in the {!exposition} format back into
    [(sample_name, value)] pairs, in order, where [sample_name] includes
    any label set (e.g. ["dbh_query_cost_bucket{le=\"10\"}"]).  Comment
    and blank lines are skipped.  Raises [Invalid_argument] on a
    malformed sample line.  Only meant for tests and smoke checks. *)

val find_sample : t -> string -> float option
(** [find_sample t name] is the value of the named exposition sample —
    shorthand for looking [name] up in
    [parse_exposition (exposition t)]. *)
