(* See registry.mli.  Counters and gauges are one Atomic each; a
   histogram is one Atomic per bucket (non-cumulative internally,
   cumulated at exposition time) plus a CAS-looped float sum, so
   recording never takes a lock.  The registry lock only guards
   registration and snapshot iteration. *)

type counter = {
  c_name : string;
  c_help : string;
  c_labels : (string * string) list;
  c_value : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_help : string;
  g_labels : (string * string) list;
  g_value : int Atomic.t;
}

type histogram = {
  h_name : string;
  h_help : string;
  uppers : float array;  (* strictly increasing upper bounds; +inf implicit *)
  buckets : int Atomic.t array;  (* length = Array.length uppers + 1 *)
  h_sum : float Atomic.t;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  mutex : Mutex.t;
  mutable metrics : metric list;  (* newest first *)
  names : (string, unit) Hashtbl.t;  (* rendered name incl. labels *)
}

let create () = { mutex = Mutex.create (); metrics = []; names = Hashtbl.create 64 }

let valid_name n =
  String.length n > 0
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       n

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v)) labels)
      ^ "}"

let rendered_name name labels = name ^ render_labels labels

let register t ~name ~labels metric =
  if not (valid_name name) then invalid_arg (Printf.sprintf "Registry: bad metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_name k) then invalid_arg (Printf.sprintf "Registry: bad label name %S" k))
    labels;
  let key = rendered_name name labels in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if Hashtbl.mem t.names key then
        invalid_arg (Printf.sprintf "Registry: duplicate metric %s" key);
      Hashtbl.replace t.names key ();
      t.metrics <- metric :: t.metrics)

let counter t ?(help = "") ?(labels = []) name =
  let c = { c_name = name; c_help = help; c_labels = labels; c_value = Atomic.make 0 } in
  register t ~name ~labels (Counter c);
  c

let gauge t ?(help = "") ?(labels = []) name =
  let g = { g_name = name; g_help = help; g_labels = labels; g_value = Atomic.make 0 } in
  register t ~name ~labels (Gauge g);
  g

let default_buckets = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. |]

let histogram t ?(help = "") ?(buckets = default_buckets) name =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Registry.histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if Float.is_nan b || (i > 0 && b <= buckets.(i - 1)) then
        invalid_arg "Registry.histogram: buckets must be strictly increasing")
    buckets;
  let h =
    {
      h_name = name;
      h_help = help;
      uppers = Array.copy buckets;
      buckets = Array.init (n + 1) (fun _ -> Atomic.make 0);
      h_sum = Atomic.make 0.;
    }
  in
  register t ~name ~labels:[] (Histogram h);
  h

let inc c = Atomic.incr c.c_value

let add c n =
  if n < 0 then invalid_arg "Registry.add: counters are monotone";
  if n > 0 then ignore (Atomic.fetch_and_add c.c_value n)

let set g v = Atomic.set g.g_value v

(* compare_and_set on a float Atomic compares the boxes physically; the
   box we pass is the one we just read, so a failed CAS means another
   domain won the race and we retry on the fresh value. *)
let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let observe h v =
  let n = Array.length h.uppers in
  let i = ref 0 in
  while !i < n && not (v <= h.uppers.(!i)) do incr i done;
  (* NaN falls through every bound into the +inf bucket. *)
  Atomic.incr h.buckets.(!i);
  atomic_add_float h.h_sum v

let counter_value c = Atomic.get c.c_value
let gauge_value g = Atomic.get g.g_value

let histogram_count h = Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.buckets
let histogram_sum h = Atomic.get h.h_sum

let histogram_buckets h =
  Array.mapi
    (fun i b ->
      let upper = if i < Array.length h.uppers then h.uppers.(i) else infinity in
      (upper, Atomic.get b))
    h.buckets

let metrics_in_order t =
  Mutex.lock t.mutex;
  let ms = t.metrics in
  Mutex.unlock t.mutex;
  List.rev ms

(* %.17g-style shortest float that round-trips; ints print without a
   fractional part so counters read naturally. *)
let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let le_repr v = if v = infinity then "+Inf" else float_repr v

let exposition t =
  let buf = Buffer.create 4096 in
  let headed = Hashtbl.create 32 in
  let head name help kind =
    if not (Hashtbl.mem headed name) then begin
      Hashtbl.replace headed name ();
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (function
      | Counter c ->
          head c.c_name c.c_help "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" (rendered_name c.c_name c.c_labels) (counter_value c))
      | Gauge g ->
          head g.g_name g.g_help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" (rendered_name g.g_name g.g_labels) (gauge_value g))
      | Histogram h ->
          head h.h_name h.h_help "histogram";
          let cumulative = ref 0 in
          Array.iteri
            (fun i b ->
              cumulative := !cumulative + Atomic.get b;
              let le = if i < Array.length h.uppers then h.uppers.(i) else infinity in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name (le_repr le) !cumulative))
            h.buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" h.h_name (float_repr (histogram_sum h)));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" h.h_name !cumulative))
    (metrics_in_order t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) labels)
  ^ "}"

let json_float v =
  if Float.is_nan v then "null"
  else if v = infinity then "\"+Inf\""
  else if v = neg_infinity then "\"-Inf\""
  else float_repr v

let to_json t =
  let entries =
    List.map
      (function
        | Counter c ->
            Printf.sprintf "{\"name\":\"%s\",\"type\":\"counter\",\"labels\":%s,\"value\":%d}"
              (json_escape c.c_name) (json_labels c.c_labels) (counter_value c)
        | Gauge g ->
            Printf.sprintf "{\"name\":\"%s\",\"type\":\"gauge\",\"labels\":%s,\"value\":%d}"
              (json_escape g.g_name) (json_labels g.g_labels) (gauge_value g)
        | Histogram h ->
            let cumulative = ref 0 in
            let buckets =
              Array.mapi
                (fun i b ->
                  cumulative := !cumulative + Atomic.get b;
                  let le = if i < Array.length h.uppers then h.uppers.(i) else infinity in
                  Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float le) !cumulative)
                h.buckets
            in
            Printf.sprintf
              "{\"name\":\"%s\",\"type\":\"histogram\",\"buckets\":[%s],\"sum\":%s,\"count\":%d}"
              (json_escape h.h_name)
              (String.concat "," (Array.to_list buckets))
              (json_float (histogram_sum h)) !cumulative)
      (metrics_in_order t)
  in
  "{\"metrics\":[" ^ String.concat "," entries ^ "]}"

let parse_exposition text =
  let samples = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then begin
           match String.rindex_opt line ' ' with
           | None -> invalid_arg (Printf.sprintf "parse_exposition: malformed line %S" line)
           | Some i -> (
               let name = String.trim (String.sub line 0 i) in
               let value = String.sub line (i + 1) (String.length line - i - 1) in
               match float_of_string_opt (if value = "+Inf" then "infinity" else value) with
               | Some v -> samples := (name, v) :: !samples
               | None ->
                   invalid_arg (Printf.sprintf "parse_exposition: bad value %S in %S" value line))
         end);
  List.rev !samples

let find_sample t name = List.assoc_opt name (parse_exposition (exposition t))
