type t = {
  registry : Registry.t;
  queries_total : Registry.counter;
  queries_truncated_total : Registry.counter;
  distance_computations_total : Registry.counter;
  hash_distance_computations_total : Registry.counter;
  lookup_distance_computations_total : Registry.counter;
  bucket_probes_total : Registry.counter;
  levels_probed_total : Registry.counter;
  pivot_cache_hits_total : Registry.counter;
  pivot_cache_misses_total : Registry.counter;
  query_cost : Registry.histogram;
  query_seconds : Registry.histogram;
  query_nn_distance : Registry.histogram;
  space_distance_calls_total : Registry.counter;
  guard_calls_total : Registry.counter;
  guard_anomalies_nan_total : Registry.counter;
  guard_anomalies_pos_inf_total : Registry.counter;
  guard_anomalies_neg_inf_total : Registry.counter;
  guard_anomalies_negative_total : Registry.counter;
  guard_anomalies_exn_total : Registry.counter;
  breaker_trips_total : Registry.counter;
  breaker_recoveries_total : Registry.counter;
  breaker_fallback_queries_total : Registry.counter;
  online_inserts_total : Registry.counter;
  online_deletes_total : Registry.counter;
  online_rebuilds_total : Registry.counter;
  wal_appends_total : Registry.counter;
  wal_records_replayed_total : Registry.counter;
  checkpoints_total : Registry.counter;
  snapshot_bytes : Registry.gauge;
  fsync_seconds : Registry.histogram;
  checkpoint_seconds : Registry.histogram;
  pool_batches_total : Registry.counter;
  pool_tasks_total : Registry.counter;
  pool_queue_depth : Registry.gauge;
  pool_task_seconds : Registry.histogram;
  pool_steals_total : Registry.counter;
  pool_local_pops_total : Registry.counter;
  pool_deque_depth : Registry.gauge array;
  replica_applied_total : Registry.counter;
  replica_retries_total : Registry.counter;
  replica_reopens_total : Registry.counter;
  replica_promotions_total : Registry.counter;
  replica_lag_records : Registry.gauge;
  replica_lag_seconds : Registry.gauge;
}

let cost_buckets =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 10000. |]

(* Distances are dataset-scale-free, so the nn-distance strata use wide
   log-spaced bounds; re-tuning only needs the weighted median, which is
   insensitive to the bucket width. *)
let distance_buckets =
  [| 0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.;
     200.; 500.; 1000. |]

(* Fixed label space for the per-domain deque gauges: registries are
   built before any pool exists, so the domain dimension is bounded up
   front.  Pools wider than this simply leave the extra slots
   unreported. *)
let pool_depth_slots = 8

let on registry =
  let counter ?labels name help = Registry.counter registry ~help ?labels name in
  let gauge name help = Registry.gauge registry ~help name in
  let histogram ?buckets name help = Registry.histogram registry ~help ?buckets name in
  let anomaly kind = counter ~labels:[ ("kind", kind) ] "dbh_guard_anomalies_total"
      "anomalous distances intercepted by the guard, by kind" in
  {
    registry;
    queries_total = counter "dbh_queries_total" "completed NN queries";
    queries_truncated_total =
      counter "dbh_queries_truncated_total" "queries cut short by a distance budget";
    distance_computations_total =
      counter "dbh_distance_computations_total"
        "per-query distance computations (hash + lookup), summed over queries";
    hash_distance_computations_total =
      counter "dbh_hash_distance_computations_total" "pivot distances computed for hashing";
    lookup_distance_computations_total =
      counter "dbh_lookup_distance_computations_total" "exact candidate comparisons";
    bucket_probes_total = counter "dbh_bucket_probes_total" "hash-table buckets inspected";
    levels_probed_total = counter "dbh_levels_probed_total" "cascade levels probed";
    pivot_cache_hits_total =
      counter "dbh_pivot_cache_hits_total" "pivot distances served from the query cache";
    pivot_cache_misses_total =
      counter "dbh_pivot_cache_misses_total" "pivot distances actually computed at query time";
    query_cost =
      histogram ~buckets:cost_buckets "dbh_query_cost"
        "distribution of per-query total distance computations";
    query_seconds = histogram "dbh_query_seconds" "per-query wall time";
    query_nn_distance =
      histogram ~buckets:distance_buckets "dbh_query_nn_distance"
        "observed distance from each answered query to its returned neighbor";
    space_distance_calls_total =
      counter "dbh_space_distance_calls_total"
        "raw distance calls through observed spaces (build + query + baselines)";
    guard_calls_total = counter "dbh_guard_calls_total" "distance calls through guarded spaces";
    guard_anomalies_nan_total = anomaly "nan";
    guard_anomalies_pos_inf_total = anomaly "pos_inf";
    guard_anomalies_neg_inf_total = anomaly "neg_inf";
    guard_anomalies_negative_total = anomaly "negative";
    guard_anomalies_exn_total = anomaly "exn";
    breaker_trips_total = counter "dbh_breaker_trips_total" "circuit-breaker trips into open";
    breaker_recoveries_total =
      counter "dbh_breaker_recoveries_total" "circuit-breaker recoveries into closed";
    breaker_fallback_queries_total =
      counter "dbh_breaker_fallback_queries_total" "queries served by the exact linear scan";
    online_inserts_total = counter "dbh_online_inserts_total" "online index insertions";
    online_deletes_total = counter "dbh_online_deletes_total" "online index deletions";
    online_rebuilds_total =
      counter "dbh_online_rebuilds_total" "offline pipeline re-runs of the online index";
    wal_appends_total = counter "dbh_wal_appends_total" "records appended to write-ahead logs";
    wal_records_replayed_total =
      counter "dbh_wal_records_replayed_total" "WAL records re-applied during recovery";
    checkpoints_total = counter "dbh_checkpoints_total" "durable snapshots written";
    snapshot_bytes = gauge "dbh_snapshot_bytes" "size of the newest snapshot file";
    fsync_seconds = histogram "dbh_fsync_seconds" "WAL fsync latency";
    checkpoint_seconds = histogram "dbh_checkpoint_seconds" "checkpoint duration";
    pool_batches_total = counter "dbh_pool_batches_total" "task batches submitted to domain pools";
    pool_tasks_total = counter "dbh_pool_tasks_total" "tasks executed by domain pools";
    pool_queue_depth = gauge "dbh_pool_queue_depth" "tasks in the batch currently draining";
    pool_task_seconds = histogram "dbh_pool_task_seconds" "per-task busy time on pool domains";
    pool_steals_total =
      counter "dbh_pool_steals_total" "pool tasks obtained by stealing from another domain";
    pool_local_pops_total =
      counter "dbh_pool_local_pops_total" "pool tasks served from the owning domain's deque";
    pool_deque_depth =
      Array.init pool_depth_slots (fun d ->
          Registry.gauge registry
            ~help:"tasks waiting in a domain's work-stealing deque"
            ~labels:[ ("domain", string_of_int d) ]
            "dbh_pool_deque_depth");
    replica_applied_total =
      counter "dbh_replica_applied_total" "WAL records applied by the replica";
    replica_retries_total =
      counter "dbh_replica_retries_total" "replica polls backed off on a torn or stalled tail";
    replica_reopens_total =
      counter "dbh_replica_reopens_total"
        "full replica reopens after the leader truncated or replaced the tailed state";
    replica_promotions_total =
      counter "dbh_replica_promotions_total" "followers promoted to leader";
    replica_lag_records =
      gauge "dbh_replica_lag_records" "leader records visible on disk but not yet applied";
    replica_lag_seconds =
      gauge "dbh_replica_lag_seconds"
        "whole seconds since the newest leader WAL write the replica has not caught up to";
  }

let create () = on (Registry.create ())

let installed : t option Atomic.t = Atomic.make None

let install m = Atomic.set installed (Some m)
let uninstall () = Atomic.set installed None
let get () = Atomic.get installed
let resolve = function Some _ as m -> m | None -> get ()

let with_installed m f =
  let previous = Atomic.get installed in
  install m;
  Fun.protect ~finally:(fun () -> Atomic.set installed previous) f

let now = Unix.gettimeofday
